module secpb

go 1.22
