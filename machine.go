package secpb

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/recovery"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// BlockSize is the granularity of persistence: one cache line.
const BlockSize = addr.BlockBytes

// Machine is an interactive simulated system: a core with a SecPB over
// encrypted, integrity-protected persistent memory. Every store is
// persistent (and crash recoverable) the moment the call returns —
// strict persistency on a persistent hierarchy needs no flushes.
//
// A Machine is not safe for concurrent use; it models one hardware
// thread.
type Machine struct {
	eng     *engine.Engine
	crashed bool
}

// interactiveProfile supplies the CPI model for API-driven (rather than
// trace-driven) execution.
func interactiveProfile() workload.Profile {
	return workload.Profile{
		Name:            "interactive",
		StoresPerKilo:   30,
		LoadsPerKilo:    60,
		Burst:           4,
		Pattern:         workload.Stream,
		WriteWorkingSet: 1 << 16,
		ReadWorkingSet:  1 << 16,
		ReadRecentFrac:  0.3,
		NonMemCPI:       0.5,
	}
}

// NewMachine boots a machine with the given configuration and secret
// key material (the processor's memory-encryption key).
func NewMachine(cfg Config, key []byte) (*Machine, error) {
	eng, err := engine.New(cfg, interactiveProfile(), key)
	if err != nil {
		return nil, err
	}
	return &Machine{eng: eng}, nil
}

// checkAccess validates an access and returns its block offset.
func checkAccess(byteAddr uint64, size int) error {
	if size <= 0 || size > 8 {
		return fmt.Errorf("secpb: access size %d out of [1,8]", size)
	}
	if size&(size-1) == 0 && byteAddr%uint64(size) != 0 {
		return fmt.Errorf("secpb: address %#x not aligned to size %d", byteAddr, size)
	}
	return nil
}

// Store persists size bytes of val at the byte address. When Store
// returns, the data has reached the point of persistency: it will
// survive any subsequent crash.
func (m *Machine) Store(byteAddr uint64, size int, val uint64) error {
	if m.crashed {
		return fmt.Errorf("secpb: machine has crashed; recover or boot a new one")
	}
	if err := checkAccess(byteAddr, size); err != nil {
		return err
	}
	return m.eng.Step(trace.Op{Kind: trace.Store, Addr: byteAddr, Size: uint8(size), Data: val, Gap: 1})
}

// Load reads the 64-byte block containing the address, modeling the
// access's timing. Reads observe the newest data (SecPB, caches or PM).
func (m *Machine) Load(byteAddr uint64) ([BlockSize]byte, error) {
	if m.crashed {
		return [BlockSize]byte{}, fmt.Errorf("secpb: machine has crashed")
	}
	if err := m.eng.Step(trace.Op{Kind: trace.Load, Addr: byteAddr &^ 7, Size: 8, Gap: 1}); err != nil {
		return [BlockSize]byte{}, err
	}
	blk, _ := m.eng.MemoryBlock(addr.BlockOf(byteAddr))
	return blk, nil
}

// Fence drains the store buffer (only needed for relaxed-consistency
// reasoning; strict persistency already orders persists).
func (m *Machine) Fence() error {
	if m.crashed {
		return fmt.Errorf("secpb: machine has crashed")
	}
	return m.eng.Step(trace.Op{Kind: trace.Fence})
}

// Cycles returns the simulated core cycle.
func (m *Machine) Cycles() uint64 { return m.eng.Now() }

// Stats returns the run's statistics so far.
func (m *Machine) Stats() Result { return m.eng.Collect() }

// PendingEntries returns the number of SecPB entries awaiting drain —
// the state the battery must cover at this instant.
func (m *Machine) PendingEntries() int {
	if spb := m.eng.SecPB(); spb != nil {
		return spb.Len()
	}
	return 0
}

// CrashReport describes a crash-and-recovery episode.
type CrashReport struct {
	// EntriesDrained is how many SecPB entries the battery drained.
	EntriesDrained int
	// BlocksVerified is how many persisted blocks were recovered,
	// decrypted and integrity-verified.
	BlocksVerified int
	// BatteryCycles is how long the battery powered the draining and
	// sec-sync gaps.
	BatteryCycles uint64
	// Clean reports whether every block recovered to the exact
	// persist-order state with verification passing.
	Clean bool
	// Detail describes the first failure when not clean.
	Detail string
}

// Crash power-fails the machine: the battery drains the SecPB
// (completing the scheme's deferred memory-tuple work), and recovery
// decrypts and verifies every persisted block against the machine's
// committed state. After Crash the machine only serves ReadRecovered.
func (m *Machine) Crash() (CrashReport, error) {
	if m.crashed {
		return CrashReport{}, fmt.Errorf("secpb: machine already crashed")
	}
	m.crashed = true
	obs, err := recovery.Crash(m.eng, recovery.Blocking, recovery.PowerLoss)
	rep := CrashReport{
		EntriesDrained: obs.Report.EntriesDrained,
		BlocksVerified: obs.Report.BlocksChecked,
		BatteryCycles:  obs.DrainCycles,
		Clean:          obs.Report.Clean(),
		Detail:         obs.Report.FirstBad,
	}
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// DamageReport is the block-granular damage summary Machine.Triage
// distills from the full recovery.TriageReport.
type DamageReport struct {
	Blocks      int // persisted blocks triaged
	Clean       int // pass MAC and BMT path; recovered byte-identically
	Recoverable int // pass MAC but the BMT cannot corroborate the page
	Quarantined int // fail MAC; withheld from recovery
	// RootConsistent reports whether the BMT root register is derivable
	// from the persisted counter lines.
	RootConsistent bool
	// QuarantinedAddrs lists the withheld blocks' addresses in order.
	QuarantinedAddrs []uint64
}

// Degraded reports whether anything short of a fully clean image was
// found.
func (d DamageReport) Degraded() bool {
	return d.Quarantined > 0 || d.Recoverable > 0 || !d.RootConsistent
}

// Triage classifies every block of the post-crash image — clean,
// recoverable, or quarantined — instead of the all-or-nothing verdict
// Crash gives. Use it after a Crash that reported unclean (or after
// tampering experiments) to learn exactly which blocks were damaged;
// clean and recoverable blocks remain readable via ReadRecovered.
func (m *Machine) Triage() (DamageReport, error) {
	if !m.crashed {
		return DamageReport{}, fmt.Errorf("secpb: triage inspects a post-crash image; call Crash first")
	}
	rep, err := recovery.Triage(m.eng.Controller())
	if err != nil {
		return DamageReport{}, err
	}
	d := DamageReport{
		Blocks:         rep.Blocks,
		Clean:          rep.Clean,
		Recoverable:    rep.Recoverable,
		Quarantined:    rep.Quarantined,
		RootConsistent: rep.RootConsistent,
	}
	for _, v := range rep.Verdicts {
		if v.Class == recovery.ClassQuarantined {
			d.QuarantinedAddrs = append(d.QuarantinedAddrs, v.Block.Addr())
		}
	}
	return d, nil
}

// ReadRecovered fetches a block from the post-crash PM image through
// the full secure path: decrypt under the stored counter, verify the
// MAC and the BMT. It fails if the image was tampered with.
func (m *Machine) ReadRecovered(byteAddr uint64) ([BlockSize]byte, error) {
	got, _, err := m.eng.Controller().FetchBlock(addr.BlockOf(byteAddr))
	return got, err
}

// Scheme returns the machine's persistence scheme.
func (m *Machine) Scheme() Scheme {
	if spb := m.eng.SecPB(); spb != nil {
		return spb.Scheme()
	}
	return config.SchemeSP
}
