package pmem

import (
	"errors"
	"fmt"
)

// Map is a crash-consistent open-addressing hash map from uint64 keys
// to uint64 values. Each bucket is one block:
//
//	offset 0:  state (8B: empty / committed / tombstone)
//	offset 8:  key   (8B)
//	offset 16: value (8B)
//
// Insert writes key and value, then commits with one atomic 8-byte
// store of the state word. Updates overwrite the value with a single
// atomic store; deletes store the tombstone state atomically. Every
// mutation is therefore crash-atomic without logging.
type Map struct {
	dev     Device
	region  Region
	buckets uint64
	// live caches committed entries for O(1) lookups; the persistent
	// image stays authoritative (recovery rebuilds this cache).
	live map[uint64]uint64
	used uint64 // committed + tombstoned buckets (probe-chain bound)
}

// Bucket state words. Nonzero magic values make torn/blank states
// distinguishable from committed ones.
const (
	bucketEmpty     = 0
	bucketCommitted = 0xC0117117ED
	bucketTombstone = 0xDEAD7011B
)

// NewMap formats an empty map over the region. Capacity is the region's
// block count; the map refuses to exceed 85% occupancy.
func NewMap(dev Device, region Region) (*Map, error) {
	m, err := layoutMap(region)
	if err != nil {
		return nil, err
	}
	m.dev = dev
	// Format: zero every bucket's state word.
	for i := uint64(0); i < m.buckets; i++ {
		if err := dev.Store(m.bucketAddr(i), 8, bucketEmpty); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func layoutMap(region Region) (*Map, error) {
	if err := region.Validate(); err != nil {
		return nil, err
	}
	return &Map{
		region:  region,
		buckets: region.Blocks(),
		live:    make(map[uint64]uint64),
	}, nil
}

func (m *Map) bucketAddr(i uint64) uint64 { return m.region.Base + i*BlockSize }

// hash mixes the key (splitmix64 finalizer).
func hash(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Cap returns the bucket count.
func (m *Map) Cap() uint64 { return m.buckets }

// Len returns the number of committed entries.
func (m *Map) Len() int { return len(m.live) }

// findBucket probes for the key; returns (bucket index, found). When
// not found, the index is the first insertable slot on the probe chain.
func (m *Map) findBucket(key uint64) (uint64, bool, error) {
	insert := uint64(0)
	haveInsert := false
	for probe := uint64(0); probe < m.buckets; probe++ {
		i := (hash(key) + probe) % m.buckets
		blk, err := m.dev.Load(m.bucketAddr(i))
		if err != nil {
			return 0, false, err
		}
		switch word(blk, 0) {
		case bucketCommitted:
			if word(blk, 8) == key {
				return i, true, nil
			}
		case bucketTombstone:
			if !haveInsert {
				insert, haveInsert = i, true
			}
		default: // empty (or torn insert): end of probe chain
			if !haveInsert {
				insert, haveInsert = i, true
			}
			return insert, false, nil
		}
	}
	if haveInsert {
		return insert, false, nil
	}
	return 0, false, errors.New("pmem: map full")
}

// Put inserts or updates key -> val.
func (m *Map) Put(key, val uint64) error {
	if uint64(m.used)*100 >= m.buckets*85 {
		if _, ok := m.live[key]; !ok {
			return fmt.Errorf("pmem: map beyond 85%% occupancy (%d/%d)", m.used, m.buckets)
		}
	}
	i, found, err := m.findBucket(key)
	if err != nil {
		return err
	}
	a := m.bucketAddr(i)
	if found {
		// Update in place: one atomic 8-byte store.
		if err := m.dev.Store(a+16, 8, val); err != nil {
			return err
		}
		m.live[key] = val
		return nil
	}
	// Insert: payload first, then the atomic commit of the state word.
	if err := m.dev.Store(a+8, 8, key); err != nil {
		return err
	}
	if err := m.dev.Store(a+16, 8, val); err != nil {
		return err
	}
	if err := m.dev.Store(a, 8, bucketCommitted); err != nil {
		return err
	}
	m.live[key] = val
	m.used++
	return nil
}

// Get returns the committed value for key.
func (m *Map) Get(key uint64) (uint64, bool) {
	v, ok := m.live[key]
	return v, ok
}

// Delete removes the key; a single atomic tombstone store commits it.
func (m *Map) Delete(key uint64) error {
	if _, ok := m.live[key]; !ok {
		return nil
	}
	i, found, err := m.findBucket(key)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("pmem: live cache and image disagree on key %d", key)
	}
	if err := m.dev.Store(m.bucketAddr(i), 8, bucketTombstone); err != nil {
		return err
	}
	delete(m.live, key)
	return nil
}

// RecoverMap rebuilds the committed contents of a map from verified
// reads of a (post-crash) PM image.
func RecoverMap(read ReadFunc, region Region) (map[uint64]uint64, error) {
	m, err := layoutMap(region)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]uint64)
	for i := uint64(0); i < m.buckets; i++ {
		blk, err := read(m.bucketAddr(i))
		if err != nil {
			return nil, fmt.Errorf("pmem: bucket %d failed verification: %w", i, err)
		}
		if word(blk, 0) == bucketCommitted {
			out[word(blk, 8)] = word(blk, 16)
		}
	}
	return out, nil
}
