package pmem

import "fmt"

// Log is an append-only record log. Block 0 of its region holds the
// committed record count; records follow, each padded to whole blocks.
//
// Append writes the record's payload blocks and then commits with one
// 8-byte store to the count — the strict-persistency commit idiom. A
// crash between payload and commit leaves the log at its previous
// length with the torn payload invisible.
type Log struct {
	dev      Device
	region   Region
	recBytes int
	recBlks  uint64
	capacity uint64
	count    uint64
}

// NewLog formats an empty log over the region with fixed-size records
// of recBytes (1..1024 bytes).
func NewLog(dev Device, region Region, recBytes int) (*Log, error) {
	l, err := layoutLog(region, recBytes)
	if err != nil {
		return nil, err
	}
	l.dev = dev
	// Format: zero the count.
	if err := dev.Store(region.Base, 8, 0); err != nil {
		return nil, err
	}
	return l, nil
}

// layoutLog computes geometry shared by NewLog and RecoverLog.
func layoutLog(region Region, recBytes int) (*Log, error) {
	if err := region.Validate(); err != nil {
		return nil, err
	}
	if recBytes <= 0 || recBytes > 1024 {
		return nil, fmt.Errorf("pmem: record size %d out of [1,1024]", recBytes)
	}
	recBlks := uint64((recBytes + BlockSize - 1) / BlockSize)
	if region.Blocks() < 1+recBlks {
		return nil, fmt.Errorf("pmem: region too small for one record")
	}
	return &Log{
		region:   region,
		recBytes: recBytes,
		recBlks:  recBlks,
		capacity: (region.Blocks() - 1) / recBlks,
	}, nil
}

// Cap returns the maximum number of records.
func (l *Log) Cap() uint64 { return l.capacity }

// Len returns the committed record count.
func (l *Log) Len() uint64 { return l.count }

// recAddr returns the byte address of record i.
func (l *Log) recAddr(i uint64) uint64 {
	return l.region.Base + BlockSize + i*l.recBlks*BlockSize
}

// Append commits one record. The returned index is stable.
func (l *Log) Append(rec []byte) (uint64, error) {
	if len(rec) > l.recBytes {
		return 0, fmt.Errorf("pmem: record %d bytes exceeds %d", len(rec), l.recBytes)
	}
	if l.count >= l.capacity {
		return 0, fmt.Errorf("pmem: log full (%d records)", l.capacity)
	}
	buf := make([]byte, l.recBytes)
	copy(buf, rec)
	if err := storeBuf(l.dev, l.recAddr(l.count), buf); err != nil {
		return 0, err
	}
	idx := l.count
	l.count++
	// Commit: a single atomic 8-byte store.
	if err := l.dev.Store(l.region.Base, 8, l.count); err != nil {
		l.count--
		return 0, err
	}
	return idx, nil
}

// Get reads a committed record through the live device.
func (l *Log) Get(i uint64) ([]byte, error) {
	if i >= l.count {
		return nil, fmt.Errorf("pmem: record %d out of range (%d committed)", i, l.count)
	}
	return readRecord(l.dev.Load, l.recAddr(i), l.recBytes)
}

// readRecord assembles a record from its blocks via any block reader.
func readRecord(read ReadFunc, base uint64, recBytes int) ([]byte, error) {
	out := make([]byte, 0, recBytes)
	for off := 0; off < recBytes; off += BlockSize {
		blk, err := read(base + uint64(off))
		if err != nil {
			return nil, err
		}
		n := recBytes - off
		if n > BlockSize {
			n = BlockSize
		}
		out = append(out, blk[:n]...)
	}
	return out, nil
}

// RecoveredLog is a read-only view of a log recovered from a PM image.
type RecoveredLog struct {
	read   ReadFunc
	layout *Log
	Count  uint64
}

// RecoverLog rebuilds the committed view of a log from verified reads
// of the (post-crash) PM image.
func RecoverLog(read ReadFunc, region Region, recBytes int) (*RecoveredLog, error) {
	l, err := layoutLog(region, recBytes)
	if err != nil {
		return nil, err
	}
	hdr, err := read(region.Base)
	if err != nil {
		return nil, fmt.Errorf("pmem: log header failed verification: %w", err)
	}
	count := word(hdr, 0)
	if count > l.capacity {
		return nil, fmt.Errorf("pmem: recovered count %d exceeds capacity %d (corrupt header)", count, l.capacity)
	}
	return &RecoveredLog{read: read, layout: l, Count: count}, nil
}

// Get reads committed record i from the recovered image.
func (r *RecoveredLog) Get(i uint64) ([]byte, error) {
	if i >= r.Count {
		return nil, fmt.Errorf("pmem: record %d out of recovered range %d", i, r.Count)
	}
	return readRecord(r.read, r.layout.recAddr(i), r.layout.recBytes)
}
