package pmem

import "fmt"

// Queue is a crash-consistent FIFO ring of fixed-size records.
// Layout: block 0 holds the head counter, block 1 the tail counter,
// and the remaining blocks hold one record each (up to 56 bytes of
// payload per record; the record's final 8 bytes store its sequence
// number for recovery sanity checks).
//
// Push writes the record block and then commits by bumping the tail
// with one atomic store; Pop commits by bumping the head. Counters grow
// monotonically; slot = counter mod ring size.
type Queue struct {
	dev    Device
	region Region
	slots  uint64
	head   uint64
	tail   uint64
}

// MaxQueueRecord is the queue's per-record payload capacity.
const MaxQueueRecord = BlockSize - 8

// NewQueue formats an empty queue over the region.
func NewQueue(dev Device, region Region) (*Queue, error) {
	q, err := layoutQueue(region)
	if err != nil {
		return nil, err
	}
	q.dev = dev
	if err := dev.Store(region.Base, 8, 0); err != nil {
		return nil, err
	}
	if err := dev.Store(region.Base+BlockSize, 8, 0); err != nil {
		return nil, err
	}
	return q, nil
}

func layoutQueue(region Region) (*Queue, error) {
	if err := region.Validate(); err != nil {
		return nil, err
	}
	if region.Blocks() < 3 {
		return nil, fmt.Errorf("pmem: queue region needs >= 3 blocks")
	}
	return &Queue{region: region, slots: region.Blocks() - 2}, nil
}

func (q *Queue) slotAddr(counter uint64) uint64 {
	return q.region.Base + 2*BlockSize + (counter%q.slots)*BlockSize
}

// Len returns the number of committed, unconsumed records.
func (q *Queue) Len() uint64 { return q.tail - q.head }

// Cap returns the ring capacity.
func (q *Queue) Cap() uint64 { return q.slots }

// Push commits one record of at most MaxQueueRecord bytes.
func (q *Queue) Push(rec []byte) error {
	if len(rec) > MaxQueueRecord {
		return fmt.Errorf("pmem: record %d bytes exceeds %d", len(rec), MaxQueueRecord)
	}
	if q.Len() >= q.slots {
		return fmt.Errorf("pmem: queue full (%d records)", q.slots)
	}
	buf := make([]byte, BlockSize)
	copy(buf, rec)
	// Sequence stamp in the record's last word.
	seq := q.tail + 1
	for i := 0; i < 8; i++ {
		buf[MaxQueueRecord+i] = byte(seq >> (8 * i))
	}
	if err := storeBuf(q.dev, q.slotAddr(q.tail), buf); err != nil {
		return err
	}
	q.tail++
	return q.dev.Store(q.region.Base+BlockSize, 8, q.tail) // commit
}

// Pop removes and returns the oldest record.
func (q *Queue) Pop() ([]byte, error) {
	if q.Len() == 0 {
		return nil, fmt.Errorf("pmem: queue empty")
	}
	blk, err := q.dev.Load(q.slotAddr(q.head))
	if err != nil {
		return nil, err
	}
	out := make([]byte, MaxQueueRecord)
	copy(out, blk[:MaxQueueRecord])
	q.head++
	if err := q.dev.Store(q.region.Base, 8, q.head); err != nil { // commit
		q.head--
		return nil, err
	}
	return out, nil
}

// RecoveredQueue is the committed view of a queue after a crash.
type RecoveredQueue struct {
	Head, Tail uint64
	Records    [][]byte // the unconsumed records, oldest first
}

// RecoverQueue rebuilds the committed queue contents from verified
// reads of a (post-crash) PM image. Every unconsumed record's sequence
// stamp is checked against its position.
func RecoverQueue(read ReadFunc, region Region) (*RecoveredQueue, error) {
	q, err := layoutQueue(region)
	if err != nil {
		return nil, err
	}
	hb, err := read(region.Base)
	if err != nil {
		return nil, fmt.Errorf("pmem: queue head failed verification: %w", err)
	}
	tb, err := read(region.Base + BlockSize)
	if err != nil {
		return nil, fmt.Errorf("pmem: queue tail failed verification: %w", err)
	}
	head, tail := word(hb, 0), word(tb, 0)
	if tail < head || tail-head > q.slots {
		return nil, fmt.Errorf("pmem: recovered counters corrupt (head %d, tail %d)", head, tail)
	}
	rq := &RecoveredQueue{Head: head, Tail: tail}
	for c := head; c < tail; c++ {
		blk, err := read(q.slotAddr(c))
		if err != nil {
			return nil, fmt.Errorf("pmem: queue slot %d failed verification: %w", c, err)
		}
		if seq := word(blk, MaxQueueRecord); seq != c+1 {
			return nil, fmt.Errorf("pmem: slot %d stamped %d, want %d (torn commit?)", c, seq, c+1)
		}
		rec := make([]byte, MaxQueueRecord)
		copy(rec, blk[:MaxQueueRecord])
		rq.Records = append(rq.Records, rec)
	}
	return rq, nil
}
