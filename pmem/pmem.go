// Package pmem provides crash-consistent data structures built on
// SecPB's persistent hierarchy: an append-only log, a fixed-capacity
// hash map, and a FIFO queue.
//
// The structures demonstrate the paper's programmability result. With a
// persistent hierarchy under strict persistency, a store is persistent
// the moment it completes, and stores persist in program order — so
// crash consistency needs no cache-line flushes, no fences and no undo
// logging. Every structure here commits with a single 8-byte store
// (which the hardware persists atomically) issued after its payload
// stores; the crash observer therefore sees either the committed
// operation in full or not at all.
//
// Mutation requires a live Device (a *secpb.Machine). Recovery after a
// crash needs only verified reads of the PM image: pass
// (*secpb.Machine).ReadRecovered as the ReadFunc.
package pmem

import (
	"errors"
	"fmt"
)

// BlockSize is the persistence granularity (one cache line).
const BlockSize = 64

// Device is the mutation interface; *secpb.Machine implements it.
type Device interface {
	// Store persists size bytes of val at the byte address; when it
	// returns, the data has reached the point of persistency.
	Store(addr uint64, size int, val uint64) error
	// Load reads the block containing the address.
	Load(addr uint64) ([BlockSize]byte, error)
}

// ReadFunc reads one verified block from a (possibly post-crash) PM
// image.
type ReadFunc func(addr uint64) ([BlockSize]byte, error)

// Region is a byte range of persistent memory owned by one structure.
type Region struct {
	Base uint64
	Size uint64
}

// Validate checks alignment and size.
func (r Region) Validate() error {
	if r.Base%BlockSize != 0 || r.Size%BlockSize != 0 {
		return fmt.Errorf("pmem: region %#x+%#x not block aligned", r.Base, r.Size)
	}
	if r.Size == 0 {
		return errors.New("pmem: empty region")
	}
	return nil
}

// Blocks returns the number of blocks the region spans.
func (r Region) Blocks() uint64 { return r.Size / BlockSize }

// word reads the 8-byte little-endian word at byte offset off within a
// block image.
func word(blk [BlockSize]byte, off int) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(blk[off+i]) << (8 * i)
	}
	return v
}

// storeBytes writes p (at most 8 bytes) at the address via dev.
func storeBytes(dev Device, addr uint64, p []byte) error {
	var v uint64
	for i, b := range p {
		v |= uint64(b) << (8 * i)
	}
	return dev.Store(addr, len(p), v)
}

// storeBuf writes an arbitrary byte slice with 8-byte stores (tail with
// a short store). Addresses must be 8-byte aligned.
func storeBuf(dev Device, addr uint64, p []byte) error {
	for len(p) >= 8 {
		if err := storeBytes(dev, addr, p[:8]); err != nil {
			return err
		}
		addr += 8
		p = p[8:]
	}
	if len(p) > 0 {
		return storeBytes(dev, addr, p)
	}
	return nil
}
