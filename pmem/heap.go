package pmem

import "fmt"

// Heap is a crash-consistent bump allocator that carves Regions out of
// one large span of persistent memory. Its only persistent state is a
// single cursor word (block 0 of its span), so every allocation commits
// with one atomic 8-byte store; a crash mid-allocation loses at most
// the unacknowledged region, never the cursor's integrity.
//
// Structures built with NewLog/NewMap/NewQueue can take their regions
// from one Heap, and after a crash RecoverHeap re-derives the allocated
// extent so a recovery routine can walk its structures.
type Heap struct {
	dev    Device
	span   Region
	cursor uint64 // next free byte offset within the span (after block 0)
}

// NewHeap formats a heap over the span.
func NewHeap(dev Device, span Region) (*Heap, error) {
	if err := span.Validate(); err != nil {
		return nil, err
	}
	if span.Blocks() < 2 {
		return nil, fmt.Errorf("pmem: heap span needs >= 2 blocks")
	}
	h := &Heap{dev: dev, span: span, cursor: BlockSize}
	if err := dev.Store(span.Base, 8, h.cursor); err != nil {
		return nil, err
	}
	return h, nil
}

// Alloc carves a region of the given byte size (rounded up to whole
// blocks) and commits the new cursor atomically.
func (h *Heap) Alloc(size uint64) (Region, error) {
	if size == 0 {
		return Region{}, fmt.Errorf("pmem: zero-size allocation")
	}
	size = (size + BlockSize - 1) &^ (BlockSize - 1)
	if h.cursor+size > h.span.Size {
		return Region{}, fmt.Errorf("pmem: heap exhausted (%d of %d bytes used)", h.cursor, h.span.Size)
	}
	r := Region{Base: h.span.Base + h.cursor, Size: size}
	newCursor := h.cursor + size
	if err := h.dev.Store(h.span.Base, 8, newCursor); err != nil {
		return Region{}, err
	}
	h.cursor = newCursor
	return r, nil
}

// Used returns the allocated bytes (including the header block).
func (h *Heap) Used() uint64 { return h.cursor }

// Free returns the unallocated bytes.
func (h *Heap) Free() uint64 { return h.span.Size - h.cursor }

// RecoverHeap reads a heap's allocated extent from a (post-crash) PM
// image. The returned cursor tells recovery code how far the allocated
// area extends; region boundaries within it are the application's to
// know (they are deterministic for a deterministic allocation order).
func RecoverHeap(read ReadFunc, span Region) (used uint64, err error) {
	if err := span.Validate(); err != nil {
		return 0, err
	}
	hdr, err := read(span.Base)
	if err != nil {
		return 0, fmt.Errorf("pmem: heap header failed verification: %w", err)
	}
	cursor := word(hdr, 0)
	if cursor < BlockSize || cursor > span.Size {
		return 0, fmt.Errorf("pmem: recovered heap cursor %d out of range", cursor)
	}
	return cursor, nil
}
