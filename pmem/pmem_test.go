package pmem

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"secpb"
	"secpb/internal/xrand"
)

func newDev(t *testing.T) *secpb.Machine {
	t.Helper()
	m, err := secpb.NewMachine(secpb.DefaultConfig(), []byte("pmem test"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func region(base, blocks uint64) Region {
	return Region{Base: base, Size: blocks * BlockSize}
}

func TestRegionValidate(t *testing.T) {
	if err := (Region{Base: 1, Size: 64}).Validate(); err == nil {
		t.Error("misaligned base accepted")
	}
	if err := (Region{Base: 64, Size: 1}).Validate(); err == nil {
		t.Error("misaligned size accepted")
	}
	if err := (Region{Base: 64, Size: 0}).Validate(); err == nil {
		t.Error("empty region accepted")
	}
	if err := region(0x1000, 4).Validate(); err != nil {
		t.Error(err)
	}
}

func TestLogBasics(t *testing.T) {
	m := newDev(t)
	l, err := NewLog(m, region(0x1000_0000, 64), 100) // 2 blocks per record
	if err != nil {
		t.Fatal(err)
	}
	if l.Cap() != 31 {
		t.Errorf("cap = %d, want 31 ((64-1)/2)", l.Cap())
	}
	for i := 0; i < 5; i++ {
		rec := bytes.Repeat([]byte{byte('a' + i)}, 100)
		idx, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint64(i) {
			t.Errorf("index = %d, want %d", idx, i)
		}
	}
	if l.Len() != 5 {
		t.Errorf("len = %d", l.Len())
	}
	got, err := l.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{'c'}, 100)) {
		t.Error("record 2 contents wrong")
	}
	if _, err := l.Get(5); err == nil {
		t.Error("out-of-range get accepted")
	}
	if _, err := l.Append(make([]byte, 101)); err == nil {
		t.Error("oversize record accepted")
	}
}

func TestLogFull(t *testing.T) {
	m := newDev(t)
	l, err := NewLog(m, region(0x1000_0000, 3), 64) // capacity 2
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	if _, err := l.Append([]byte("c")); err == nil {
		t.Error("append into full log accepted")
	}
}

func TestLogRecoveryAfterCrash(t *testing.T) {
	m := newDev(t)
	reg := region(0x1000_0000, 128)
	l, err := NewLog(m, reg, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.Crash()
	if err != nil || !rep.Clean {
		t.Fatalf("crash: %+v err %v", rep, err)
	}
	rl, err := RecoverLog(m.ReadRecovered, reg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Count != 40 {
		t.Fatalf("recovered %d records", rl.Count)
	}
	for i := uint64(0); i < 40; i++ {
		rec, err := rl.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("record-%02d", i)
		if string(rec[:len(want)]) != want {
			t.Errorf("record %d corrupt", i)
		}
	}
	if _, err := rl.Get(40); err == nil {
		t.Error("recovered get beyond count accepted")
	}
}

func TestMapBasics(t *testing.T) {
	m := newDev(t)
	hm, err := NewMap(m, region(0x2000_0000, 64))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 30; k++ {
		if err := hm.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	if hm.Len() != 30 {
		t.Errorf("len = %d", hm.Len())
	}
	if v, ok := hm.Get(7); !ok || v != 70 {
		t.Errorf("Get(7) = %d,%v", v, ok)
	}
	// Update.
	if err := hm.Put(7, 777); err != nil {
		t.Fatal(err)
	}
	if v, _ := hm.Get(7); v != 777 {
		t.Errorf("updated value = %d", v)
	}
	// Delete, then reinsert reuses the tombstone.
	if err := hm.Delete(7); err != nil {
		t.Fatal(err)
	}
	if _, ok := hm.Get(7); ok {
		t.Error("deleted key still present")
	}
	if err := hm.Delete(7); err != nil {
		t.Error("idempotent delete failed")
	}
	if err := hm.Put(7, 7777); err != nil {
		t.Fatal(err)
	}
	if v, _ := hm.Get(7); v != 7777 {
		t.Error("reinsert after delete failed")
	}
}

func TestMapOccupancyLimit(t *testing.T) {
	m := newDev(t)
	hm, err := NewMap(m, region(0x2000_0000, 8))
	if err != nil {
		t.Fatal(err)
	}
	var full bool
	for k := uint64(0); k < 8; k++ {
		if err := hm.Put(k, k); err != nil {
			full = true
			break
		}
	}
	if !full {
		t.Error("map accepted 100% occupancy")
	}
	// Updates of existing keys still work at the limit.
	if err := hm.Put(0, 99); err != nil {
		t.Errorf("update at occupancy limit failed: %v", err)
	}
}

func TestMapRecovery(t *testing.T) {
	m := newDev(t)
	reg := region(0x2000_0000, 128)
	hm, err := NewMap(m, reg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{}
	for k := uint64(1); k <= 60; k++ {
		hm.Put(k, k*k)
		want[k] = k * k
	}
	hm.Delete(10)
	delete(want, 10)
	hm.Put(20, 42)
	want[20] = 42

	if rep, err := m.Crash(); err != nil || !rep.Clean {
		t.Fatalf("crash: %v", err)
	}
	got, err := RecoverMap(m.ReadRecovered, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d = %d, want %d", k, got[k], v)
		}
	}
}

func TestQueueBasics(t *testing.T) {
	m := newDev(t)
	q, err := NewQueue(m, region(0x3000_0000, 6)) // 4 slots
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 4 {
		t.Errorf("cap = %d", q.Cap())
	}
	// FIFO with wrap-around: push/pop more than capacity.
	next := 0
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			if err := q.Push([]byte(fmt.Sprintf("msg-%03d", next))); err != nil {
				t.Fatal(err)
			}
			next++
		}
		for i := 0; i < 3; i++ {
			rec, err := q.Pop()
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("msg-%03d", next-3+i)
			if string(rec[:len(want)]) != want {
				t.Fatalf("round %d pop %d = %q", round, i, rec[:len(want)])
			}
		}
	}
	if _, err := q.Pop(); err == nil {
		t.Error("pop from empty accepted")
	}
	for i := 0; i < 4; i++ {
		q.Push([]byte("x"))
	}
	if err := q.Push([]byte("y")); err == nil {
		t.Error("push into full accepted")
	}
	if err := q.Push(make([]byte, MaxQueueRecord+1)); err == nil {
		t.Error("oversize record accepted")
	}
}

func TestQueueRecovery(t *testing.T) {
	m := newDev(t)
	reg := region(0x3000_0000, 18) // 16 slots
	q, err := NewQueue(m, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q.Push([]byte(fmt.Sprintf("q-%d", i)))
	}
	for i := 0; i < 4; i++ {
		q.Pop()
	}
	if rep, err := m.Crash(); err != nil || !rep.Clean {
		t.Fatalf("crash: %v", err)
	}
	rq, err := RecoverQueue(m.ReadRecovered, reg)
	if err != nil {
		t.Fatal(err)
	}
	if rq.Head != 4 || rq.Tail != 10 || len(rq.Records) != 6 {
		t.Fatalf("recovered head/tail/records = %d/%d/%d", rq.Head, rq.Tail, len(rq.Records))
	}
	for i, rec := range rq.Records {
		want := fmt.Sprintf("q-%d", i+4)
		if string(rec[:len(want)]) != want {
			t.Errorf("record %d = %q", i, rec[:len(want)])
		}
	}
}

// crashDev wraps a machine and fails every store after a budget is
// exhausted — modelling a program that dies mid-operation at an
// arbitrary store boundary.
type crashDev struct {
	m      *secpb.Machine
	budget int
	dead   bool
}

var errDied = errors.New("program died")

func (c *crashDev) Store(addr uint64, size int, val uint64) error {
	if c.dead || c.budget <= 0 {
		c.dead = true
		return errDied
	}
	c.budget--
	return c.m.Store(addr, size, val)
}

func (c *crashDev) Load(addr uint64) ([BlockSize]byte, error) {
	if c.dead {
		return [BlockSize]byte{}, errDied
	}
	return c.m.Load(addr)
}

func TestLogCrashAtEveryStoreBoundary(t *testing.T) {
	// Property: for any store budget, recovery yields exactly the
	// acknowledged appends, each intact.
	r := xrand.New(0x106)
	for trial := 0; trial < 12; trial++ {
		m := newDev(t)
		dev := &crashDev{m: m, budget: 3 + r.Intn(300)}
		reg := region(0x1000_0000, 256)
		l, err := NewLog(dev, reg, 120) // 2-block records: torn appends possible
		if err != nil {
			t.Fatal(err)
		}
		var acked [][]byte
		for i := 0; ; i++ {
			rec := []byte(fmt.Sprintf("entry-%04d-%d", i, trial))
			if _, err := l.Append(rec); err != nil {
				break // died mid-append: not acknowledged
			}
			acked = append(acked, rec)
		}
		if rep, err := m.Crash(); err != nil || !rep.Clean {
			t.Fatalf("trial %d: crash: %v", trial, err)
		}
		rl, err := RecoverLog(m.ReadRecovered, reg, 120)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rl.Count != uint64(len(acked)) {
			t.Fatalf("trial %d: recovered %d, acknowledged %d", trial, rl.Count, len(acked))
		}
		for i, want := range acked {
			got, err := rl.Get(uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[:len(want)], want) {
				t.Fatalf("trial %d: record %d torn", trial, i)
			}
		}
	}
}

func TestMapCrashAtEveryStoreBoundary(t *testing.T) {
	// Property: acknowledged Puts/Deletes are visible after recovery;
	// the one in-flight operation is atomic (fully there or absent).
	r := xrand.New(0x107)
	for trial := 0; trial < 12; trial++ {
		m := newDev(t)
		dev := &crashDev{m: m, budget: 70 + r.Intn(200)}
		reg := region(0x2000_0000, 64)
		hm, err := NewMap(dev, reg)
		if err != nil { // formatting itself may die
			continue
		}
		want := map[uint64]uint64{}
		var inflightKey uint64
		alive := true
		for i := 0; alive && i < 200; i++ {
			k := uint64(r.Intn(40)) + 1
			switch r.Intn(3) {
			case 0, 1:
				v := r.Uint64()
				inflightKey = k
				if err := hm.Put(k, v); err != nil {
					alive = false
					break
				}
				want[k] = v
			case 2:
				inflightKey = k
				if err := hm.Delete(k); err != nil {
					alive = false
					break
				}
				delete(want, k)
			}
		}
		if rep, err := m.Crash(); err != nil || !rep.Clean {
			t.Fatalf("trial %d: crash: %v", trial, err)
		}
		got, err := RecoverMap(m.ReadRecovered, reg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k, v := range want {
			if k == inflightKey {
				continue // the dying op may have half-applied to this key
			}
			gv, ok := got[k]
			if !ok || gv != v {
				t.Fatalf("trial %d: key %d = %d,%v want %d", trial, k, gv, ok, v)
			}
		}
		for k := range got {
			if _, ok := want[k]; !ok && k != inflightKey {
				t.Fatalf("trial %d: ghost key %d after recovery", trial, k)
			}
		}
	}
}

func TestQueueCrashAtEveryStoreBoundary(t *testing.T) {
	r := xrand.New(0x108)
	for trial := 0; trial < 12; trial++ {
		m := newDev(t)
		dev := &crashDev{m: m, budget: 20 + r.Intn(250)}
		reg := region(0x3000_0000, 34) // 32 slots
		q, err := NewQueue(dev, reg)
		if err != nil {
			continue
		}
		var pushed, popped int
		alive := true
		for i := 0; alive && i < 150; i++ {
			if q.Len() > 0 && r.Bool(0.4) {
				if _, err := q.Pop(); err != nil {
					alive = false
				} else {
					popped++
				}
			} else if q.Len() < q.Cap() {
				if err := q.Push([]byte(fmt.Sprintf("m%04d", pushed))); err != nil {
					alive = false
				} else {
					pushed++
				}
			}
		}
		if rep, err := m.Crash(); err != nil || !rep.Clean {
			t.Fatalf("trial %d: crash: %v", trial, err)
		}
		rq, err := RecoverQueue(m.ReadRecovered, reg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Acknowledged pushes/pops bound the recovered counters: the
		// in-flight op may add one.
		if rq.Tail < uint64(pushed) || rq.Tail > uint64(pushed)+1 {
			t.Fatalf("trial %d: tail %d, acked pushes %d", trial, rq.Tail, pushed)
		}
		if rq.Head < uint64(popped) || rq.Head > uint64(popped)+1 {
			t.Fatalf("trial %d: head %d, acked pops %d", trial, rq.Head, popped)
		}
		// Every recovered record must carry the right contents.
		for i, rec := range rq.Records {
			want := fmt.Sprintf("m%04d", int(rq.Head)+i)
			if string(rec[:len(want)]) != want {
				t.Fatalf("trial %d: slot %d = %q want %q", trial, i, rec[:len(want)], want)
			}
		}
	}
}

func TestWordHelper(t *testing.T) {
	var blk [BlockSize]byte
	for i := 0; i < 8; i++ {
		blk[8+i] = byte(i + 1)
	}
	if got := word(blk, 8); got != 0x0807060504030201 {
		t.Errorf("word = %#x", got)
	}
}

func TestHeapAllocAndRecover(t *testing.T) {
	m := newDev(t)
	span := region(0x4000_0000, 64)
	h, err := NewHeap(m, span)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h.Alloc(100) // rounds to 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	if r1.Size != 128 || r1.Base != span.Base+BlockSize {
		t.Errorf("r1 = %+v", r1)
	}
	r2, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Base != r1.Base+r1.Size {
		t.Error("allocations not contiguous")
	}
	if err := r1.Validate(); err != nil {
		t.Error(err)
	}
	if h.Used() != BlockSize+128+64 || h.Free() != span.Size-h.Used() {
		t.Errorf("used/free = %d/%d", h.Used(), h.Free())
	}
	// Build a structure in an allocated region and survive a crash.
	l, err := NewLog(m, r1, 60)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("heap-backed"))
	if rep, err := m.Crash(); err != nil || !rep.Clean {
		t.Fatalf("crash: %v", err)
	}
	used, err := RecoverHeap(m.ReadRecovered, span)
	if err != nil {
		t.Fatal(err)
	}
	if used != BlockSize+128+64 {
		t.Errorf("recovered used = %d", used)
	}
	rl, err := RecoverLog(m.ReadRecovered, r1, 60)
	if err != nil || rl.Count != 1 {
		t.Fatalf("heap-backed log recovery: count=%d err=%v", rl.Count, err)
	}
}

func TestHeapExhaustion(t *testing.T) {
	m := newDev(t)
	h, err := NewHeap(m, region(0x4000_0000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(2 * BlockSize); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(1); err == nil {
		t.Error("over-allocation accepted")
	}
	if _, err := h.Alloc(0); err == nil {
		t.Error("zero allocation accepted")
	}
	if _, err := NewHeap(m, region(0x5000_0000, 1)); err == nil {
		t.Error("one-block heap accepted")
	}
}
