// Race-detector instrumentation itself allocates, so these exact-zero
// pins only hold on uninstrumented builds; ci.sh runs them in a
// dedicated non-race pass.
//go:build !race

package secpb

// Allocation pins for the per-op hot paths: the specialized kernels
// promise a zero-allocation steady state, and these tests fail on the
// first regression instead of leaving it to drift in benchmark noise
// (B/op rounding hides sub-1 averages).

import (
	"testing"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// TestEngineStoreHotPathZeroAlloc drives the BenchmarkEngineStore
// workload — sequential persist stores through the full COBCM pipeline,
// including watermark drains and coalesced BMT sweeps — to steady state
// and then requires exactly zero heap allocations per store.
func TestEngineStoreHotPathZeroAlloc(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(config.Default().WithScheme(config.SchemeCOBCM), prof, []byte("alloc-key"))
	if err != nil {
		t.Fatal(err)
	}
	const ws = 1 << 16
	i := uint64(0)
	step := func() {
		op := trace.Op{Kind: trace.Store, Addr: (i * 8) % ws, Size: 8, Data: i, Gap: 3}
		if err := eng.Step(op); err != nil {
			t.Fatal(err)
		}
		i++
	}
	// Warm to steady state: every ring, freelist, page and staging
	// buffer reaches its high-water capacity, after which stores only
	// recycle.
	for n := 0; n < 300_000; n++ {
		step()
	}
	if avg := testing.AllocsPerRun(50_000, step); avg != 0 {
		t.Fatalf("engine store hot path allocates: %g allocs/op at steady state", avg)
	}
}
