// multicore: the Section IV.C coherence protocol between per-core
// SecPBs — entry migration on remote writes, flush-to-PM on remote
// reads, no replication ever — followed by a whole-system crash where
// the battery drains every core's buffer and the shared PM image
// recovers exactly.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"secpb/internal/addr"
	"secpb/internal/coherence"
	"secpb/internal/config"
	"secpb/internal/xrand"
)

func main() {
	const cores = 4
	sys, err := coherence.New(config.Default().WithScheme(config.SchemeCM), cores, []byte("multicore"))
	if err != nil {
		log.Fatal(err)
	}

	// A producer/consumer pattern: core 0 fills a record, core 1 reads
	// it, core 2 takes over writing.
	rec := uint64(0x1000_0000)
	fmt.Println("== producer/consumer handoff ==")
	if err := sys.Store(0, rec, 8, 0xFEED); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core 0 stored; entry in SecPB 0: %v\n", sys.SecPB(0).Lookup(addr.BlockOf(rec)) != nil)

	v, err := sys.Load(1, rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core 1 read %#x; entry flushed to PM (SecPB 0 now holds it: %v)\n",
		uint64(v[0])|uint64(v[1])<<8, sys.SecPB(0).Lookup(addr.BlockOf(rec)) != nil)

	if err := sys.Store(2, rec+8, 8, 0xBEEF); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core 2 wrote; entry now owned by SecPB 2: %v\n",
		sys.SecPB(2).Lookup(addr.BlockOf(rec)) != nil)

	// Random sharing storm across all cores.
	fmt.Println("\n== 4-core sharing storm (6000 ops over 32 shared blocks) ==")
	r := xrand.New(2026)
	for i := 0; i < 6000; i++ {
		c := r.Intn(cores)
		a := 0x2000_0000 + uint64(r.Intn(32))*64 + uint64(r.Intn(8))*8
		if r.Bool(0.6) {
			if err := sys.Store(c, a, 8, r.Uint64()); err != nil {
				log.Fatal(err)
			}
		} else if _, err := sys.Load(c, a); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		log.Fatalf("coherence invariant broken: %v", err)
	}
	migs, flushes := sys.Stats()
	fmt.Printf("migrations: %d, read-triggered flushes: %d — invariants hold (no replication)\n", migs, flushes)

	// Whole-system power loss.
	fmt.Println("\n== power loss: battery drains every core's SecPB ==")
	n, err := sys.CrashDrainAll()
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.VerifyRecovery(); err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	fmt.Printf("drained %d entries across %d cores; every block decrypted and verified against the coherent view\n",
		n, cores)
}
