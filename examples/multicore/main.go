// multicore: the promoted multi-core simulation path — a 4-core socket
// where each core owns a private memory-channel shard and SecPB, a
// MESI-coherent shared region arbitrates cross-core traffic (entry
// migration on remote writes, flush-to-PM on remote reads, no
// replication ever), and cores step in parallel between deterministic
// drain-epoch barriers. A whole-socket power loss then drains every
// buffer on battery, and the sealed recovery journal shows why the
// cross-core replay order is data, not convention.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"
	"reflect"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/nvm"
	"secpb/internal/recovery"
	"secpb/internal/workload"
)

func main() {
	const cores = 4
	key := []byte("multicore-example-key")

	// A conflict-heavy shared plan: a small hot region with a high
	// redirect rate, so the MESI directory sees real contention.
	cfg := config.Default().WithScheme(config.SchemeCOBCM).WithCores(cores)
	cfg.MCSharedBlocks = 8
	cfg.MCSharedPerKilo = 150

	prof, err := workload.ByName("gromacs")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := engine.NewSystem(cfg, prof, key, 5000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %d-core socket, %s, 5000 ops/core ==\n", cores, cfg.Scheme)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	res := sys.Collect()
	if err := res.IntegrityErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	m := res.MESI
	fmt.Printf("MESI: %d reads / %d writes, %d cold misses, %d upgrades, %d invalidations\n",
		m.Reads, m.Writes, m.ColdMisses, m.Upgrades, m.Invalidations)
	fmt.Printf("      %d migrations (remote write of M line), %d read flushes (remote read of M line)\n",
		m.Migrations, m.ReadFlushes)
	if err := sys.Shared().CheckInvariants(); err != nil {
		log.Fatalf("coherence invariant broken: %v", err)
	}
	fmt.Println("coherence invariants hold: every Modified line has exactly one SecPB entry, never replicated")

	// Snapshot the socket as a crash would find it: per-shard media
	// images plus every buffer's entries, in the canonical drain order —
	// ascending core over private SecPBs, then ascending core over the
	// shared-region SecPBs.
	restore := func(mc *nvm.Controller) *nvm.Controller {
		r, err := nvm.Restore(mc.Config(), key, mc.PM().Snapshot(),
			mc.Counters().Snapshot(), mc.MACs().Snapshot(), mc.Tree().Snapshot())
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	var parts []recovery.CoreEntries
	for c := 0; c < cores; c++ {
		parts = append(parts, recovery.CoreEntries{
			Core: c, MC: restore(sys.Core(c).Controller()),
			Entries: sys.Core(c).SecPB().SnapshotEntries(),
		})
	}
	sharedMC := restore(sys.Shared().Controller())
	for c := 0; c < cores; c++ {
		parts = append(parts, recovery.CoreEntries{
			Core: c, MC: sharedMC,
			Entries: sys.Shared().SecPB(c).SnapshotEntries(),
		})
	}

	// Whole-socket power loss on the live system: the battery funds a
	// FIFO drain of all 2N buffers.
	fmt.Println("\n== power loss: battery drains every core's buffers ==")
	n, err := sys.CrashDrainAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drained %d entries across %d private + %d shared SecPBs\n", n, cores, cores)

	// Replay the same late work on the restored shards through the
	// sealed journal: the canonical order drains, any other order is
	// rejected before a single entry touches media.
	fmt.Println("\n== sealed recovery journal: replay order is data ==")
	j := recovery.NewSystemJournal(parts)
	if _, err := j.DrainPart(1); err != nil {
		fmt.Printf("draining core 1 before core 0: rejected (%v)\n", err)
	} else {
		log.Fatal("journal accepted an out-of-order drain")
	}
	cost, err := recovery.DrainSystemEntries(parts, nil)
	if err != nil {
		log.Fatal(err)
	}
	for c := 0; c < cores; c++ {
		if !reflect.DeepEqual(parts[c].MC.PM().Snapshot(), sys.Core(c).Controller().PM().Snapshot()) {
			log.Fatalf("core %d: recovered image differs from the live crash drain", c)
		}
	}
	if !reflect.DeepEqual(sharedMC.PM().Snapshot(), sys.Shared().Controller().PM().Snapshot()) {
		log.Fatal("shared region: recovered image differs from the live crash drain")
	}
	fmt.Printf("canonical order replayed: %d data + %d metadata PM writes; recovered shards match the live post-crash image\n",
		cost.PMDataWrites, cost.PMMetaWrites)
	if err := sys.Shared().VerifyRecovery(); err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	fmt.Println("every shared block decrypted and verified against the coherent view")
}
