// structures: the pmem package's crash-consistent data structures — a
// log, a hash map and a FIFO queue — running over one simulated secure
// PM, surviving a power loss together.
//
// Each structure commits every operation with a single 8-byte store
// (atomic under the persistent hierarchy), so none of them needs
// flushes, fences or undo logs.
//
//	go run ./examples/structures
package main

import (
	"fmt"
	"log"

	"secpb"
	"secpb/pmem"
)

func main() {
	m, err := secpb.NewMachine(secpb.DefaultConfig(), []byte("structures"))
	if err != nil {
		log.Fatal(err)
	}

	logRegion := pmem.Region{Base: 0x1000_0000, Size: 256 * pmem.BlockSize}
	mapRegion := pmem.Region{Base: 0x2000_0000, Size: 128 * pmem.BlockSize}
	qRegion := pmem.Region{Base: 0x3000_0000, Size: 34 * pmem.BlockSize}

	wal, err := pmem.NewLog(m, logRegion, 100)
	if err != nil {
		log.Fatal(err)
	}
	index, err := pmem.NewMap(m, mapRegion)
	if err != nil {
		log.Fatal(err)
	}
	inbox, err := pmem.NewQueue(m, qRegion)
	if err != nil {
		log.Fatal(err)
	}

	// Drive all three: a write-ahead log of operations, an index of
	// account balances, and a message queue.
	for i := uint64(1); i <= 50; i++ {
		if _, err := wal.Append([]byte(fmt.Sprintf("txn %d: credit account %d", i, i%7))); err != nil {
			log.Fatal(err)
		}
		if err := index.Put(i%7, i*100); err != nil {
			log.Fatal(err)
		}
		if err := inbox.Push([]byte(fmt.Sprintf("notify-%d", i))); err != nil {
			log.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := inbox.Pop(); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("before crash: log=%d records, map=%d keys, queue=%d pending, cycle=%d\n",
		wal.Len(), index.Len(), inbox.Len(), m.Cycles())

	// Power loss.
	rep, err := m.Crash()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash: %d entries drained on battery, %d blocks verified, clean=%v\n",
		rep.EntriesDrained, rep.BlocksVerified, rep.Clean)

	// Recover all three structures from the verified image.
	rlog, err := pmem.RecoverLog(m.ReadRecovered, logRegion, 100)
	if err != nil {
		log.Fatal(err)
	}
	rmap, err := pmem.RecoverMap(m.ReadRecovered, mapRegion)
	if err != nil {
		log.Fatal(err)
	}
	rq, err := pmem.RecoverQueue(m.ReadRecovered, qRegion)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: log=%d records, map=%d keys, queue=%d pending\n",
		rlog.Count, len(rmap), len(rq.Records))

	last, err := rlog.Get(rlog.Count - 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("last log record: %q\n", string(last[:30]))
	fmt.Printf("account 1 balance: %d\n", rmap[1])
	fmt.Printf("oldest pending message: %q\n", string(rq.Records[0][:9]))
}
