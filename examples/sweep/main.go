// sweep: explore the performance / battery trade-off space the paper's
// Section VI discusses — every scheme at several SecPB sizes for one
// benchmark, annotated with the battery each point requires.
//
//	go run ./examples/sweep [-bench gamess] [-ops 60000]
package main

import (
	"flag"
	"fmt"
	"log"

	"secpb/internal/config"
	"secpb/internal/energy"
	"secpb/internal/engine"
	"secpb/internal/stats"
	"secpb/internal/workload"
)

func main() {
	bench := flag.String("bench", "gamess", "benchmark profile")
	ops := flag.Uint64("ops", 60_000, "operations per design point")
	flag.Parse()

	prof, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	sizes := []int{8, 32, 128}

	tab := stats.NewTable(
		fmt.Sprintf("Design space for %s: slowdown vs battery (SuperCap)", *bench),
		"Scheme", "Size", "Slowdown", "Battery mm3", "Core area")
	for _, n := range sizes {
		base, err := engine.RunBenchmark(config.Default().WithScheme(config.SchemeBBB).WithSecPBEntries(n), prof, *ops)
		if err != nil {
			log.Fatal(err)
		}
		for _, scheme := range config.SecPBSchemes() {
			res, err := engine.RunBenchmark(config.Default().WithScheme(scheme).WithSecPBEntries(n), prof, *ops)
			if err != nil {
				log.Fatal(err)
			}
			j, err := energy.SecPBEnergy(scheme, n, config.Default().BMTLevels)
			if err != nil {
				log.Fatal(err)
			}
			est := energy.EstimateFor(scheme.String(), j)
			tab.AddRowStrings(
				scheme.String(),
				fmt.Sprintf("%d", n),
				stats.Percent(float64(res.Cycles)/float64(base.Cycles)),
				fmt.Sprintf("%.2f", est.SuperCapMM3),
				fmt.Sprintf("%.1f%%", est.SuperCapPct),
			)
		}
	}
	fmt.Println(tab)
	fmt.Println("Reading the frontier: COBCM minimizes slowdown but needs the biggest")
	fmt.Println("battery; NoGap minimizes the battery but pays the full metadata")
	fmt.Println("latency on every store. CM is the paper's budget-conscious pick.")
}
