// Quickstart: simulate a benchmark under two SecPB schemes, compare the
// overheads, then crash the machine and verify recovery.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/recovery"
	"secpb/internal/workload"
)

func main() {
	const ops = 40_000
	prof, err := workload.ByName("povray")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Baseline: the insecure battery-backed buffer (BBB).
	base, err := engine.RunBenchmark(config.Default().WithScheme(config.SchemeBBB), prof, ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("baseline ", base)

	// 2. Two SecPB design points: fully lazy (COBCM) vs fully eager
	// (NoGap). Both give encrypted, integrity-protected, crash
	// consistent PM; they differ in runtime overhead and battery size.
	for _, scheme := range []config.Scheme{config.SchemeCOBCM, config.SchemeNoGap} {
		res, err := engine.RunBenchmark(config.Default().WithScheme(scheme), prof, ops)
		if err != nil {
			log.Fatal(err)
		}
		slow := float64(res.Cycles)/float64(base.Cycles) - 1
		fmt.Printf("%-9s %v  -> overhead %+.1f%%\n", scheme, res, slow*100)
	}

	// 3. Crash the machine mid-run and recover.
	cfg := config.Default().WithScheme(config.SchemeCOBCM)
	eng, err := engine.New(cfg, prof, []byte("quickstart"))
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1, ops/2)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(gen); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrash at cycle %d with %d entries in the SecPB\n", eng.Now(), eng.SecPB().Len())
	obs, err := recovery.Crash(eng, recovery.Blocking, recovery.PowerLoss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(obs.Report)
	fmt.Printf("battery closed the draining + sec-sync gaps in %d cycles\n", obs.DrainCycles)
}
