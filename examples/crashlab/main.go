// crashlab: a guided tour of what SecPB protects against.
//
// It demonstrates, on real simulated state:
//
//  1. the recoverability gap of Figure 1(b) — a persistent hierarchy
//     without SecPB corrupts its PM image on power loss;
//
//  2. a correct SecPB crash drain for every scheme, with the battery
//     doing progressively more tuple work the lazier the scheme;
//
//  3. the four attacks on the post-crash image (data tamper, MAC
//     tamper, counter tamper, rollback), all detected.
//
//     go run ./examples/crashlab
package main

import (
	"fmt"
	"log"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/recovery"
	"secpb/internal/workload"
)

func runTo(scheme config.Scheme, ops uint64) *engine.Engine {
	cfg := config.Default().WithScheme(scheme)
	prof, err := workload.ByName("povray")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engine.New(cfg, prof, []byte("crashlab"))
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 42, ops)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(gen); err != nil {
		log.Fatal(err)
	}
	return eng
}

func main() {
	fmt.Println("== 1. The recoverability gap (no SecPB coordination) ==")
	eng := runTo(config.SchemeCOBCM, 20_000)
	rep, err := recovery.GapCrash(eng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Println("   -> data persisted on-chip, security metadata lost at the MC:")
	fmt.Println("      recovery fails integrity verification. This is the gap SecPB closes.")

	fmt.Println("\n== 2. Correct crash drains across the design spectrum ==")
	for _, scheme := range config.SecPBSchemes() {
		eng := runTo(scheme, 20_000)
		resident := eng.SecPB().Len()
		obs, err := recovery.Crash(eng, recovery.Blocking, recovery.PowerLoss)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s drained %2d entries in %6d battery cycles (%3d hashes, %2d AES ops) — %s\n",
			scheme, resident, obs.DrainCycles,
			obs.Report.DrainCost.Hashes, obs.Report.DrainCost.AESOps,
			map[bool]string{true: "clean"}[obs.Report.Clean()])
		fmt.Printf("        sec-sync gap work: %v\n", recovery.SchemeDrainWork(scheme))
	}

	fmt.Println("\n== 3. Attacks on the post-crash PM image ==")
	for _, attack := range recovery.Attacks() {
		eng := runTo(config.SchemeCOBCM, 20_000)
		victims := eng.Controller().PM().Blocks()
		if len(victims) == 0 {
			log.Fatal("nothing persisted")
		}
		detected, err := recovery.RunAttack(eng, attack, victims[0])
		if err != nil {
			log.Fatal(err)
		}
		status := "DETECTED"
		if !detected {
			status = "MISSED (security failure!)"
		}
		fmt.Printf("%-15s -> %s\n", attack, status)
	}
}
