// kvstore: a crash-consistent key-value log on simulated secure
// persistent memory, written against the public secpb API.
//
// The point of this example is the paper's programmability argument:
// with a persistent hierarchy (SecPB), every store is persistent the
// moment it returns, in program order — no clflush/clwb, no fences, no
// commit records. The KV store below appends records to a log and then
// bumps a head counter; crash consistency falls out of strict
// persistency alone. After a simulated power loss we recover the log
// from the (encrypted, integrity-protected) PM image and check that
// exactly the committed prefix survives.
//
//	go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"secpb"
)

const (
	headAddr = uint64(0x1000_0000)        // block 0: log head counter
	logBase  = headAddr + secpb.BlockSize // records start here
	// Each record is one 64B block: key (8B), value (48B), seq (8B).
	recordSize = uint64(secpb.BlockSize)
)

// kv wraps the machine with the log protocol.
type kv struct {
	m    *secpb.Machine
	head uint64 // committed record count
}

// Put appends a record and commits it by bumping the head. Note the
// total absence of flushes: program order IS persist order.
func (s *kv) Put(key uint64, value []byte) error {
	if len(value) > 48 {
		return fmt.Errorf("value too large")
	}
	rec := logBase + s.head*recordSize
	if err := s.m.Store(rec, 8, key); err != nil {
		return err
	}
	var buf [48]byte
	copy(buf[:], value)
	for i := 0; i < 48; i += 8 {
		if err := s.m.Store(rec+8+uint64(i), 8, binary.LittleEndian.Uint64(buf[i:])); err != nil {
			return err
		}
	}
	if err := s.m.Store(rec+56, 8, s.head+1); err != nil { // seq stamp
		return err
	}
	// Commit: advance the head pointer. Strict persistency guarantees
	// the record persisted before this store.
	s.head++
	return s.m.Store(headAddr, 8, s.head)
}

// recoverLog rebuilds the committed records from the post-crash PM
// image; every block read is decrypted and integrity-verified by the
// machine.
func recoverLog(m *secpb.Machine) (head uint64, records map[uint64][]byte, err error) {
	headBlock, err := m.ReadRecovered(headAddr)
	if err != nil {
		return 0, nil, fmt.Errorf("head block failed verification: %w", err)
	}
	head = binary.LittleEndian.Uint64(headBlock[:8])
	records = make(map[uint64][]byte, head)
	for i := uint64(0); i < head; i++ {
		blk, err := m.ReadRecovered(logBase + i*recordSize)
		if err != nil {
			return head, records, fmt.Errorf("record %d failed verification: %w", i, err)
		}
		seq := binary.LittleEndian.Uint64(blk[56:])
		if seq != i+1 {
			return head, records, fmt.Errorf("record %d has seq %d: committed prefix broken", i, seq)
		}
		key := binary.LittleEndian.Uint64(blk[:8])
		val := make([]byte, 48)
		copy(val, blk[8:56])
		records[key] = val
	}
	return head, records, nil
}

func main() {
	m, err := secpb.NewMachine(secpb.DefaultConfig(), []byte("kvstore key"))
	if err != nil {
		log.Fatal(err)
	}
	store := &kv{m: m}

	fmt.Println("inserting 500 records over simulated secure PM (no flushes, no fences)...")
	for i := uint64(0); i < 500; i++ {
		if err := store.Put(i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("done at cycle %d; %d SecPB entries pending; committed head = %d\n",
		m.Cycles(), m.PendingEntries(), store.head)

	// Power loss. The battery drains the SecPB, completing all memory
	// tuples; the PM image becomes crash consistent.
	rep, err := m.Crash()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash: drained %d entries in %d battery cycles, verified %d blocks, clean=%v\n",
		rep.EntriesDrained, rep.BatteryCycles, rep.BlocksVerified, rep.Clean)

	head, records, err := recoverLog(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered head = %d, records = %d\n", head, len(records))
	for _, probe := range []uint64{0, 250, 499} {
		got, ok := records[probe]
		want := fmt.Sprintf("value-%d", probe)
		if !ok || string(got[:len(want)]) != want {
			log.Fatalf("record %d corrupt after recovery", probe)
		}
	}
	fmt.Println("spot checks passed: every committed record decrypted and verified")
}
