package secpb

import (
	"fmt"

	"secpb/internal/config"
	"secpb/internal/energy"
	"secpb/internal/engine"
	"secpb/internal/workload"
)

// Scheme selects the persistence scheme: which memory-tuple elements
// are generated early (at store-persist time) versus late (post-crash).
type Scheme = config.Scheme

// The evaluated schemes, eager to lazy. BBB is the insecure baseline
// and SP the secure strict-persistency baseline with the security point
// of persistency at the memory controller.
const (
	SchemeBBB   = config.SchemeBBB
	SchemeSP    = config.SchemeSP
	SchemeNoGap = config.SchemeNoGap
	SchemeM     = config.SchemeM
	SchemeCM    = config.SchemeCM
	SchemeBCM   = config.SchemeBCM
	SchemeOBCM  = config.SchemeOBCM
	SchemeCOBCM = config.SchemeCOBCM
)

// Schemes returns the six SecPB design points from eager to lazy.
func Schemes() []Scheme { return config.SecPBSchemes() }

// Config holds every simulated system parameter (the paper's Table I).
type Config = config.Config

// DefaultConfig returns the paper's Table I configuration: a 32-entry
// SecPB running COBCM over an 8-level BMT and PCM at 55/150 ns.
func DefaultConfig() Config { return config.Default() }

// Result summarizes a simulation run: cycles, IPC, the paper's PPTI and
// NWPE statistics, stall breakdowns and memory-system counters.
type Result = engine.Result

// Benchmarks returns the names of the 18 built-in SPEC2006-like
// workload profiles.
func Benchmarks() []string { return workload.Names() }

// ZooBenchmarks lists the workload-zoo profile names (application-class
// and adversarial generators beyond the SPEC proxies); all of them are
// accepted by RunBenchmark.
func ZooBenchmarks() []string { return workload.ZooNames() }

// RunBenchmark simulates ops memory operations of the named benchmark
// profile under cfg. Runs are deterministic in (benchmark, cfg.Seed).
func RunBenchmark(cfg Config, benchmark string, ops uint64) (Result, error) {
	prof, err := workload.ByName(benchmark)
	if err != nil {
		return Result{}, err
	}
	return engine.RunBenchmark(cfg, prof, ops)
}

// Battery is a worst-case crash-drain energy estimate with the derived
// supercapacitor / lithium-thin-film volumes and core-area ratios.
type Battery = energy.Estimate

// BatteryFor returns the battery a SecPB of the given size needs under
// the given scheme (the paper's Table V/VI methodology).
func BatteryFor(scheme Scheme, entries int) (Battery, error) {
	cfg := config.Default()
	j, err := energy.SecPBEnergy(scheme, entries, cfg.BMTLevels)
	if err != nil {
		return Battery{}, err
	}
	return energy.EstimateFor(fmt.Sprintf("%v-%d", scheme, entries), j), nil
}
