package secpb

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/recovery"
)

// Attack identifies a post-crash tampering experiment against the PM
// image.
type Attack = recovery.Attack

// The implemented attack classes. Data, MAC and counter tampering are
// caught by the per-block MAC; rollback of a mutually consistent
// (data, counter, MAC) triple is caught only by the BMT and its on-chip
// root register.
const (
	AttackData     = recovery.AttackData
	AttackMAC      = recovery.AttackMAC
	AttackCounter  = recovery.AttackCounter
	AttackRollback = recovery.AttackRollback
)

// Attacks lists all implemented attacks.
func Attacks() []Attack { return recovery.Attacks() }

// SimulateGapCrash crashes the machine the way a persistent hierarchy
// WITHOUT SecPB coordination would (the recoverability gap of the
// paper's Figure 1b): buffered data reaches PM, but the counter, MAC
// and BMT updates are lost with the volatile metadata caches. The
// returned report is expected to be not Clean — that corruption is the
// problem SecPB exists to solve.
func (m *Machine) SimulateGapCrash() (CrashReport, error) {
	if m.crashed {
		return CrashReport{}, fmt.Errorf("secpb: machine already crashed")
	}
	m.crashed = true
	rep, err := recovery.GapCrash(m.eng)
	if err != nil {
		return CrashReport{}, err
	}
	return CrashReport{
		EntriesDrained: rep.EntriesDrained,
		BlocksVerified: rep.BlocksChecked,
		Clean:          rep.Clean(),
		Detail:         rep.FirstBad,
	}, nil
}

// AttackAndDetect crash-drains the machine cleanly, applies the attack
// to the persisted image at the block containing byteAddr, and reports
// whether recovery detected the tampering. A false return with nil
// error is a security failure.
func (m *Machine) AttackAndDetect(a Attack, byteAddr uint64) (detected bool, err error) {
	if m.crashed {
		return false, fmt.Errorf("secpb: machine already crashed")
	}
	m.crashed = true
	return recovery.RunAttack(m.eng, a, addr.BlockOf(byteAddr))
}
