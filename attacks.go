package secpb

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/energy"
	"secpb/internal/recovery"
	"secpb/internal/workload"
)

// Attack identifies a post-crash tampering experiment against the PM
// image.
type Attack = recovery.Attack

// The implemented attack classes. Data, MAC and counter tampering are
// caught by the per-block MAC; rollback of a mutually consistent
// (data, counter, MAC) triple is caught only by the BMT and its on-chip
// root register.
const (
	AttackData     = recovery.AttackData
	AttackMAC      = recovery.AttackMAC
	AttackCounter  = recovery.AttackCounter
	AttackRollback = recovery.AttackRollback
)

// Attacks lists all implemented attacks.
func Attacks() []Attack { return recovery.Attacks() }

// SimulateGapCrash crashes the machine the way a persistent hierarchy
// WITHOUT SecPB coordination would (the recoverability gap of the
// paper's Figure 1b): buffered data reaches PM, but the counter, MAC
// and BMT updates are lost with the volatile metadata caches. The
// returned report is expected to be not Clean — that corruption is the
// problem SecPB exists to solve.
func (m *Machine) SimulateGapCrash() (CrashReport, error) {
	if m.crashed {
		return CrashReport{}, fmt.Errorf("secpb: machine already crashed")
	}
	m.crashed = true
	rep, err := recovery.GapCrash(m.eng)
	if err != nil {
		return CrashReport{}, err
	}
	return CrashReport{
		EntriesDrained: rep.EntriesDrained,
		BlocksVerified: rep.BlocksChecked,
		Clean:          rep.Clean(),
		Detail:         rep.FirstBad,
	}, nil
}

// AttackAndDetect crash-drains the machine cleanly, applies the attack
// to the persisted image at the block containing byteAddr, and reports
// whether recovery detected the tampering. A false return with nil
// error is a security failure.
func (m *Machine) AttackAndDetect(a Attack, byteAddr uint64) (detected bool, err error) {
	if m.crashed {
		return false, fmt.Errorf("secpb: machine already crashed")
	}
	m.crashed = true
	return recovery.RunAttack(m.eng, a, addr.BlockOf(byteAddr))
}

// StressReport summarizes a live battery-drain attack: how full the
// adversary got the SecPB and what a crash at that instant would have
// demanded from the battery.
type StressReport struct {
	Ops         uint64 // attack operations executed
	PeakPending int    // high-water SecPB occupancy reached
	Capacity    int    // configured SecPB entries
	Saturated   bool   // PeakPending == Capacity
	// BackpressureCycles is how long the attack held the core stalled
	// on a full SecPB — the occupancy-attack signature.
	BackpressureCycles uint64
	// WorstDrainJ is the battery energy a power failure at peak
	// occupancy would have drawn; ProvisionedJ is the capacity-sized
	// budget from the paper's Table V model. WorstDrainJ can never
	// exceed ProvisionedJ — the attack shows how tight the bound is.
	WorstDrainJ  float64
	ProvisionedJ float64
}

// StressBattery runs the battery-drain pessimizer (the adv-battery zoo
// workload: zero-gap trains of distinct-block stores that defeat
// coalescing) against this machine for nops operations — a live
// persistence-based attack in the sense of Yao & Venkataramani, unlike
// the post-crash tampering attacks above. The machine stays usable
// afterwards. The stream is deterministic in seed.
func (m *Machine) StressBattery(nops, seed uint64) (StressReport, error) {
	if m.crashed {
		return StressReport{}, fmt.Errorf("secpb: machine has crashed")
	}
	prof, err := workload.ByName("adv-battery")
	if err != nil {
		return StressReport{}, err
	}
	gen, err := workload.NewGenerator(prof, seed, nops)
	if err != nil {
		return StressReport{}, err
	}
	before := m.eng.Collect()
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		if err := m.eng.Step(op); err != nil {
			return StressReport{}, err
		}
	}
	after := m.eng.Collect()
	cfg := m.eng.Config()
	rep := StressReport{
		Ops:                nops,
		PeakPending:        after.PeakOccupancy,
		Capacity:           cfg.SecPBEntries,
		BackpressureCycles: after.Backpressure - before.Backpressure,
	}
	rep.Saturated = rep.PeakPending == rep.Capacity
	perEntry, err := energy.PerEntryDrainJ(m.Scheme(), cfg.BMTLevels)
	if err != nil {
		return StressReport{}, err
	}
	provisioned, err := energy.SecPBEnergy(m.Scheme(), cfg.SecPBEntries, cfg.BMTLevels)
	if err != nil {
		return StressReport{}, err
	}
	rep.WorstDrainJ = float64(rep.PeakPending) * perEntry
	rep.ProvisionedJ = provisioned
	return rep, nil
}
