// Package secpb is the public API of the SecPB reproduction — a
// complete model of secure persistent memory with battery-backed
// persist buffers (Freij, Zhou, Solihin: "SecPB: Architectures for
// Secure Non-Volatile Memory with Battery-Backed Persist Buffers",
// HPCA 2023).
//
// The package offers three levels of entry:
//
//   - Machine: an interactive simulated system. Issue stores and loads,
//     crash it at any point, and recover the encrypted,
//     integrity-protected PM image. Every store is persistent the
//     moment it is accepted (persistent hierarchy + strict
//     persistency), so crash-consistent data structures need no flushes
//     or fences — see examples/kvstore.
//
//   - RunBenchmark: batch simulation of one of the 18 built-in
//     SPEC2006-like workload profiles under any persistence scheme,
//     returning timing results (cycles, IPC, PPTI, NWPE, stalls).
//
//   - Experiments: the full evaluation harness regenerating the paper's
//     tables and figures lives in internal/harness behind the
//     cmd/secpb-bench binary; battery sizing is exposed here via
//     BatteryFor.
//
// The six persistence schemes span the paper's design spectrum from
// fully eager (NoGap: the whole memory tuple — ciphertext, counter,
// MAC, BMT root — is generated as each store persists) to fully lazy
// (COBCM: everything is deferred to drain time or, after a crash, to
// the battery). Lazier schemes run faster and need bigger batteries.
package secpb
