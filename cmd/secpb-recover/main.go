// Command secpb-recover demonstrates the crash-recovery side of SecPB:
// it runs a workload to an arbitrary crash point, performs the battery
// drain, recovers, and verifies the persistent image — optionally with
// the broken recoverability-gap drain the paper motivates (Figure 1b)
// or a post-crash attack on the PM image.
//
// Usage:
//
//	secpb-recover -bench povray -scheme cobcm -ops 50000
//	secpb-recover -mode gap        # demonstrate the recoverability gap
//	secpb-recover -mode attack -attack rollback
package main

import (
	"flag"
	"fmt"
	"os"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/recovery"
	"secpb/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "povray", "benchmark profile")
		schemeStr = flag.String("scheme", "cobcm", "persistence scheme")
		ops       = flag.Uint64("ops", 50_000, "operations before the crash")
		mode      = flag.String("mode", "crash", "crash | gap | attack | audit")
		attackStr = flag.String("attack", "rollback", "data-tamper | mac-tamper | counter-tamper | rollback")
		policyStr = flag.String("policy", "blocking", "blocking | warning observer policy")
	)
	flag.Parse()

	scheme, err := config.SchemeByName(*schemeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-recover: %v\n", err)
		os.Exit(2)
	}
	prof, perr := workload.ByName(*bench)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "secpb-recover: %v\n", perr)
		os.Exit(2)
	}

	cfg := config.Default().WithScheme(scheme)
	eng, err := engine.New(cfg, prof, []byte("secpb-recover"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-recover: %v\n", err)
		os.Exit(1)
	}
	gen, err := workload.NewGenerator(prof, cfg.Seed, *ops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-recover: %v\n", err)
		os.Exit(1)
	}
	if err := eng.Run(gen); err != nil {
		fmt.Fprintf(os.Stderr, "secpb-recover: run: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("crash point: cycle %d, %d SecPB entries resident, %d blocks written\n",
		eng.Now(), eng.SecPB().Len(), len(eng.Memory()))
	fmt.Printf("sec-sync gap work for %v: %v\n", scheme, recovery.SchemeDrainWork(scheme))

	switch *mode {
	case "crash":
		policy := recovery.Blocking
		if *policyStr == "warning" {
			policy = recovery.Warning
		}
		obs, err := recovery.Crash(eng, policy, recovery.PowerLoss)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-recover: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(obs.Report)
		fmt.Printf("battery covered %d cycles of draining + sec-sync; state consistent at cycle %d (%s policy)\n",
			obs.DrainCycles, obs.ReadyCycle, obs.Policy)

	case "gap":
		rep, err := recovery.GapCrash(eng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-recover: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		if rep.Clean() {
			fmt.Println("unexpected: the recoverability gap did not corrupt state")
			os.Exit(1)
		}
		fmt.Println("=> this is the recoverability gap of Figure 1(b): without SecPB,")
		fmt.Println("   post-crash recovery yields wrong plaintext and integrity failures.")

	case "attack":
		var attack recovery.Attack
		okAttack := false
		for _, a := range recovery.Attacks() {
			if a.String() == *attackStr {
				attack, okAttack = a, true
			}
		}
		if !okAttack {
			fmt.Fprintf(os.Stderr, "secpb-recover: unknown attack %q\n", *attackStr)
			os.Exit(2)
		}
		victims := eng.Controller().PM().Blocks()
		if len(victims) == 0 {
			// Make sure something is persisted to attack.
			if _, _, err := eng.SecPB().CrashDrain(); err != nil {
				fmt.Fprintf(os.Stderr, "secpb-recover: %v\n", err)
				os.Exit(1)
			}
			victims = eng.Controller().PM().Blocks()
		}
		detected, err := recovery.RunAttack(eng, attack, victims[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-recover: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("attack %v on block %#x: detected=%v\n", attack, victims[0].Addr(), detected)
		if !detected {
			fmt.Println("SECURITY FAILURE: attack went undetected")
			os.Exit(1)
		}

	case "audit":
		if _, _, err := eng.SecPB().CrashDrain(); err != nil {
			fmt.Fprintf(os.Stderr, "secpb-recover: %v\n", err)
			os.Exit(1)
		}
		rep, err := recovery.AuditImage(eng.Controller())
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-recover: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		if !rep.Clean() {
			os.Exit(1)
		}

	default:
		fmt.Fprintf(os.Stderr, "secpb-recover: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
