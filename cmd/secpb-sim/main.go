// Command secpb-sim runs a single simulation: one benchmark profile (or
// a recorded trace file) under one persistence scheme, printing the
// timing results and memory-system statistics.
//
// Usage:
//
//	secpb-sim -bench gamess -scheme cobcm -ops 250000
//	secpb-sim -trace run.spb -scheme nogap
package main

import (
	"flag"
	"fmt"
	"os"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "gcc", "benchmark profile name")
		schemeStr = flag.String("scheme", "cobcm", "persistence scheme")
		ops       = flag.Uint64("ops", 250_000, "memory operations to simulate")
		entries   = flag.Int("secpb", 32, "SecPB entries")
		tracePath = flag.String("trace", "", "replay a binary trace file instead of a synthetic benchmark")
		seed      = flag.Uint64("seed", 0, "workload seed (0 = config default)")
	)
	flag.Parse()

	scheme, err := config.SchemeByName(*schemeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-sim: %v\n", err)
		os.Exit(2)
	}
	cfg := config.Default().WithScheme(scheme).WithSecPBEntries(*entries)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-sim: %v\n", err)
		os.Exit(2)
	}

	var src trace.Source
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-sim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		ops, err := trace.NewReader(f).ReadAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-sim: reading trace: %v\n", err)
			os.Exit(1)
		}
		src = trace.NewSliceSource(ops)
	} else {
		gen, err := workload.NewGenerator(prof, cfg.Seed, *ops)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-sim: %v\n", err)
			os.Exit(1)
		}
		src = gen
	}

	eng, err := engine.New(cfg, prof, []byte("secpb-sim"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-sim: %v\n", err)
		os.Exit(1)
	}
	if err := eng.Run(src); err != nil {
		fmt.Fprintf(os.Stderr, "secpb-sim: simulation failed: %v\n", err)
		os.Exit(1)
	}
	r := eng.Collect()

	fmt.Println(r)
	fmt.Printf("  instructions      %d\n", r.Instructions)
	fmt.Printf("  cycles            %d\n", r.Cycles)
	fmt.Printf("  IPC               %.3f\n", r.IPC)
	fmt.Printf("  loads / stores    %d / %d\n", r.Loads, r.Stores)
	fmt.Printf("  PPTI              %.1f\n", r.PPTI)
	fmt.Printf("  NWPE              %.2f\n", r.NWPE)
	fmt.Printf("  SecPB allocations %d\n", r.EntriesAllocated)
	fmt.Printf("  BMT root updates  %d (early walks: %d)\n", r.BMTRootUpdates, r.EarlyBMTWalks)
	fmt.Printf("  loads from SecPB  %d\n", r.PBServedLoads)
	fmt.Printf("  L1 / LLC hit rate %.3f / %.3f\n", r.L1Hit, r.LLCHit)
	fmt.Printf("  PM reads / writes %d / %d\n", r.PMReads, r.PMWrites)
	fmt.Printf("  stall cycles      loads %d, store-buffer %d, SecPB backpressure %d\n",
		r.LoadStall, r.SBStall, r.Backpressure)
	if r.Reencryptions > 0 {
		fmt.Printf("  page re-encrypts  %d\n", r.Reencryptions)
	}
}
