// Command secpb-bench regenerates the paper's evaluation artifacts:
// every table and figure of Section VI plus the ablation, sensitivity
// and gap-window extension studies — as plain text (default) or JSON.
//
// Usage:
//
//	secpb-bench -exp all
//	secpb-bench -exp table4 -ops 200000
//	secpb-bench -exp fig6,fig9 -bench gamess,povray -v
//	secpb-bench -exp table4,table5 -json > results.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"secpb/internal/bmt"
	"secpb/internal/config"
	"secpb/internal/crypto"
	"secpb/internal/engine"
	"secpb/internal/harness"
	"secpb/internal/runner"
	"secpb/internal/workload"
)

var allExperiments = []string{
	"table4", "fig6", "table5", "table6", "fig7", "fig8", "fig9",
	"stats", "ablation", "gaps", "sensitivity", "multicore", "zoo", "stress",
}

// parseCores parses the -cores flag: a comma list of positive core
// counts for the multicore battery grid.
func parseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad core count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// main delegates to benchMain so deferred cleanup (profile writers)
// runs before the process exits — os.Exit skips defers.
func main() {
	os.Exit(benchMain())
}

func benchMain() int {
	var (
		exp      = flag.String("exp", "all", "experiments: all or comma list of "+strings.Join(allExperiments, ","))
		ops      = flag.Uint64("ops", 100_000, "memory operations per benchmark per configuration")
		benches  = flag.String("bench", "", "comma list of benchmarks (default: all 18)")
		entries  = flag.Int("secpb", 32, "SecPB entries for the default configuration")
		parallel = flag.Int("parallel", 0, "simulation workers (0 = one per CPU core, 1 = serial); output is identical at any value")
		lanes    = flag.Int("lanes", 0, "pin the MAC hash lane width (0 = auto, 1 = scalar, 2/4 = interleaved); output is identical at any width")
		sweepW   = flag.Int("sweepworkers", 0, "pin the BMT sweep worker count (0 = auto, 1 = serial); output is identical at any count")
		cores    = flag.String("cores", "", "comma list of core counts for the multicore battery grid (default 1,8,64,256); cores=1 artifacts are byte-identical to the single-core path")
		memo     = flag.Bool("memo", true, "cache simulation cells by content so overlapping experiment grids simulate each unique (config, benchmark, ops) cell once; output is identical either way")
		memodir  = flag.String("memodir", "", "persist the cell cache in this directory: warm re-runs replay cached cells instead of simulating (records are content-keyed, version-stamped and checksummed; anything stale or corrupt is recomputed); output is identical either way")
		kernels  = flag.Bool("kernels", true, "use the scheme-specialized execution kernels for the per-op hot path; output is identical either way")
		tracedir = flag.String("tracedir", "", "replay each benchmark's recorded SPB2 trace from <dir>/<name>.spb2 instead of generating the stream live; traces recorded with -record at the same ops yield byte-identical artifacts")
		record   = flag.Bool("record", false, "record the selected benchmarks' traces (default: the workload zoo) into -tracedir before running")
		verbose  = flag.Bool("v", false, "print per-simulation progress")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of rendered text")
		timing   = flag.String("timing", "", "write per-experiment wall-clock timings as JSON to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err == nil {
				runtime.GC() // settle the heap so the profile shows retained memory
				err = pprof.WriteHeapProfile(f)
			}
			if err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "secpb-bench: memprofile: %v\n", err)
			}
		}()
	}

	// Reproducibility pins for the parallel data plane: both knobs steer
	// wall-clock strategy only — artifacts are identical at any setting.
	crypto.SetDefaultLanes(*lanes)
	bmt.SetDefaultSweepWorkers(*sweepW)
	engine.SetDefaultKernels(*kernels)

	gridCores, err := parseCores(*cores)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-bench: -cores: %v\n", err)
		return 2
	}
	if len(gridCores) == 0 {
		gridCores = []int{1, 8, 64, 256}
	}

	opt := harness.DefaultOptions()
	opt.Ops = *ops
	opt.Cfg = config.Default().WithSecPBEntries(*entries)
	opt.Parallelism = *parallel
	if *memo {
		opt.Memo = harness.NewCellMemo()
	}
	var cellStore *harness.DiskCellStore
	var batteryStore *harness.DiskBatteryStore
	if *memodir != "" {
		if opt.Memo == nil {
			fmt.Fprintln(os.Stderr, "secpb-bench: -memodir requires -memo=true")
			return 2
		}
		cellStore, err = harness.NewDiskCellStore(*memodir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: -memodir: %v\n", err)
			return 1
		}
		opt.Memo.SetStore(cellStore)
		batteryStore, err = harness.NewDiskBatteryStore(*memodir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: -memodir: %v\n", err)
			return 1
		}
		opt.Battery = harness.NewBatteryMemo()
		opt.Battery.SetStore(batteryStore)
	}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	if *record {
		if *tracedir == "" {
			fmt.Fprintln(os.Stderr, "secpb-bench: -record requires -tracedir")
			return 2
		}
		names := opt.Benchmarks
		if len(names) == 0 {
			names = workload.ZooNames()
		}
		if err := harness.RecordTraces(*tracedir, names, opt.Cfg.Seed, opt.Ops); err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: -record: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "recorded %d traces to %s\n", len(names), *tracedir)
	}
	opt.TraceDir = *tracedir
	if *verbose {
		// Simulations run concurrently under -parallel; serialize the
		// progress lines so they never interleave mid-line.
		var progressMu sync.Mutex
		opt.Progress = func(msg string) {
			progressMu.Lock()
			defer progressMu.Unlock()
			fmt.Fprintln(os.Stderr, "  "+msg)
		}
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range allExperiments {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	jsonOut := map[string]interface{}{}
	timings := map[string]float64{}
	startAll := time.Now()
	failed := false
	run := func(name string, fn func() (fmt.Stringer, interface{}, error)) {
		if failed || !want[name] {
			return
		}
		delete(want, name)
		fmt.Fprintf(os.Stderr, "== %s (ops=%d) ==\n", name, opt.Ops)
		start := time.Now()
		art, raw, err := fn()
		timings[name] = time.Since(start).Seconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: %s: %v\n", name, err)
			failed = true
			return
		}
		if *asJSON {
			if raw == nil {
				raw = art.String()
			}
			jsonOut[name] = raw
		} else {
			fmt.Println(art)
		}
	}

	run("table4", func() (fmt.Stringer, interface{}, error) {
		grid, tab, err := harness.Table4(opt)
		return tab, grid, err
	})
	run("fig6", func() (fmt.Stringer, interface{}, error) {
		grid, bars, err := harness.Figure6(opt)
		return bars, grid, err
	})
	run("table5", func() (fmt.Stringer, interface{}, error) {
		rows, tab, err := harness.Table5(opt.Cfg)
		return tab, rows, err
	})
	run("table6", func() (fmt.Stringer, interface{}, error) {
		tab, err := harness.Table6(opt.Cfg)
		return tab, nil, err
	})
	run("fig7", func() (fmt.Stringer, interface{}, error) {
		vals, bars, err := harness.Figure7(opt)
		return bars, vals, err
	})
	run("fig8", func() (fmt.Stringer, interface{}, error) {
		vals, tab, err := harness.Figure8(opt)
		return tab, vals, err
	})
	run("fig9", func() (fmt.Stringer, interface{}, error) {
		vals, bars, err := harness.Figure9(opt)
		return bars, vals, err
	})
	run("stats", func() (fmt.Stringer, interface{}, error) {
		tab, err := harness.StatsReport(opt)
		return tab, nil, err
	})
	run("ablation", func() (fmt.Stringer, interface{}, error) {
		tab, err := harness.Ablation(opt)
		return tab, nil, err
	})
	run("gaps", func() (fmt.Stringer, interface{}, error) {
		tab, err := harness.GapsReport(opt)
		return tab, nil, err
	})
	run("sensitivity", func() (fmt.Stringer, interface{}, error) {
		tab, err := harness.Sensitivity(opt)
		return tab, nil, err
	})
	run("multicore", func() (fmt.Stringer, interface{}, error) {
		grid, tab, err := harness.MulticoreBattery(opt, gridCores)
		return tab, grid, err
	})
	run("zoo", func() (fmt.Stringer, interface{}, error) {
		rows, tab, err := harness.Zoo(opt)
		return tab, rows, err
	})
	run("stress", func() (fmt.Stringer, interface{}, error) {
		rows, tab, err := harness.StressBattery(opt)
		return tab, rows, err
	})

	if failed {
		return 1
	}
	for leftover := range want {
		fmt.Fprintf(os.Stderr, "secpb-bench: unknown experiment %q\n", leftover)
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: encoding JSON: %v\n", err)
			return 1
		}
	}
	if *verbose && opt.Memo != nil {
		hits, misses := opt.Memo.Stats()
		fmt.Fprintf(os.Stderr, "memo: %d unique cells simulated, %d duplicate cells reused\n", misses, hits)
	}
	if *verbose && cellStore != nil {
		cs, bs := cellStore.Stats(), batteryStore.Stats()
		fmt.Fprintf(os.Stderr,
			"memodir: %d cells replayed from disk, %d simulated and saved, %d corrupt records recomputed\n",
			cs.Hits+bs.Hits, cs.Saves+bs.Saves, cs.Corrupt+bs.Corrupt)
	}
	if *timing != "" {
		workers := *parallel
		if workers <= 0 {
			workers = runner.DefaultWorkers()
		}
		report := map[string]interface{}{
			"ops":           *ops,
			"parallelism":   workers,
			"mac_lanes":     crypto.DefaultLanes(),
			"sweep_workers": bmt.DefaultSweepWorkers(),
			"cores":         gridCores,
			"experiments_s": timings,
			"total_s":       time.Since(startAll).Seconds(),
		}
		if opt.Memo != nil {
			hits, misses := opt.Memo.Stats()
			report["memo_hits"] = hits
			report["memo_misses"] = misses
		}
		report["kernels"] = *kernels
		if cellStore != nil {
			cs, bs := cellStore.Stats(), batteryStore.Stats()
			report["disk_hits"] = cs.Hits + bs.Hits
			report["disk_saves"] = cs.Saves + bs.Saves
			report["disk_corrupt"] = cs.Corrupt + bs.Corrupt
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*timing, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: writing timing report: %v\n", err)
			return 1
		}
	}
	return 0
}
