// Command secpb-bench regenerates the paper's evaluation artifacts:
// every table and figure of Section VI plus the ablation, sensitivity
// and gap-window extension studies — as plain text (default) or JSON.
//
// Usage:
//
//	secpb-bench -exp all
//	secpb-bench -exp table4 -ops 200000
//	secpb-bench -exp fig6,fig9 -bench gamess,povray -v
//	secpb-bench -exp table4,table5 -json > results.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"secpb/internal/config"
	"secpb/internal/harness"
	"secpb/internal/runner"
)

var allExperiments = []string{
	"table4", "fig6", "table5", "table6", "fig7", "fig8", "fig9",
	"stats", "ablation", "gaps", "sensitivity",
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiments: all or comma list of "+strings.Join(allExperiments, ","))
		ops      = flag.Uint64("ops", 100_000, "memory operations per benchmark per configuration")
		benches  = flag.String("bench", "", "comma list of benchmarks (default: all 18)")
		entries  = flag.Int("secpb", 32, "SecPB entries for the default configuration")
		parallel = flag.Int("parallel", 0, "simulation workers (0 = one per CPU core, 1 = serial); output is identical at any value")
		verbose  = flag.Bool("v", false, "print per-simulation progress")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of rendered text")
		timing   = flag.String("timing", "", "write per-experiment wall-clock timings as JSON to this file")
	)
	flag.Parse()

	opt := harness.DefaultOptions()
	opt.Ops = *ops
	opt.Cfg = config.Default().WithSecPBEntries(*entries)
	opt.Parallelism = *parallel
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	if *verbose {
		// Simulations run concurrently under -parallel; serialize the
		// progress lines so they never interleave mid-line.
		var progressMu sync.Mutex
		opt.Progress = func(msg string) {
			progressMu.Lock()
			defer progressMu.Unlock()
			fmt.Fprintln(os.Stderr, "  "+msg)
		}
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range allExperiments {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	jsonOut := map[string]interface{}{}
	timings := map[string]float64{}
	startAll := time.Now()
	run := func(name string, fn func() (fmt.Stringer, interface{}, error)) {
		if !want[name] {
			return
		}
		delete(want, name)
		fmt.Fprintf(os.Stderr, "== %s (ops=%d) ==\n", name, opt.Ops)
		start := time.Now()
		art, raw, err := fn()
		timings[name] = time.Since(start).Seconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *asJSON {
			if raw == nil {
				raw = art.String()
			}
			jsonOut[name] = raw
		} else {
			fmt.Println(art)
		}
	}

	run("table4", func() (fmt.Stringer, interface{}, error) {
		grid, tab, err := harness.Table4(opt)
		return tab, grid, err
	})
	run("fig6", func() (fmt.Stringer, interface{}, error) {
		grid, bars, err := harness.Figure6(opt)
		return bars, grid, err
	})
	run("table5", func() (fmt.Stringer, interface{}, error) {
		rows, tab, err := harness.Table5(opt.Cfg)
		return tab, rows, err
	})
	run("table6", func() (fmt.Stringer, interface{}, error) {
		tab, err := harness.Table6(opt.Cfg)
		return tab, nil, err
	})
	run("fig7", func() (fmt.Stringer, interface{}, error) {
		vals, bars, err := harness.Figure7(opt)
		return bars, vals, err
	})
	run("fig8", func() (fmt.Stringer, interface{}, error) {
		vals, tab, err := harness.Figure8(opt)
		return tab, vals, err
	})
	run("fig9", func() (fmt.Stringer, interface{}, error) {
		vals, bars, err := harness.Figure9(opt)
		return bars, vals, err
	})
	run("stats", func() (fmt.Stringer, interface{}, error) {
		tab, err := harness.StatsReport(opt)
		return tab, nil, err
	})
	run("ablation", func() (fmt.Stringer, interface{}, error) {
		tab, err := harness.Ablation(opt)
		return tab, nil, err
	})
	run("gaps", func() (fmt.Stringer, interface{}, error) {
		tab, err := harness.GapsReport(opt)
		return tab, nil, err
	})
	run("sensitivity", func() (fmt.Stringer, interface{}, error) {
		tab, err := harness.Sensitivity(opt)
		return tab, nil, err
	})

	for leftover := range want {
		fmt.Fprintf(os.Stderr, "secpb-bench: unknown experiment %q\n", leftover)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: encoding JSON: %v\n", err)
			os.Exit(1)
		}
	}
	if *timing != "" {
		workers := *parallel
		if workers <= 0 {
			workers = runner.DefaultWorkers()
		}
		report := map[string]interface{}{
			"ops":           *ops,
			"parallelism":   workers,
			"experiments_s": timings,
			"total_s":       time.Since(startAll).Seconds(),
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*timing, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-bench: writing timing report: %v\n", err)
			os.Exit(1)
		}
	}
}
