// Command secpb-serve runs the trace-streaming simulation service:
// a long-lived HTTP server that accepts named sessions and streams of
// SPB2 trace segments, checkpoints each session's durable cursor with
// the sealed temp+rename discipline, and — after a crash or kill -9 —
// resumes every session from its last checkpoint so the final results
// are byte-identical to an uninterrupted batch run.
//
// Usage:
//
//	secpb-serve -addr :8437 -data /var/lib/secpb
//	secpb-serve -addr 127.0.0.1:0 -addrfile /tmp/secpb.addr   # for scripts
//
// The API (see DESIGN.md §5.10):
//
//	POST   /v1/sessions                      create a session (idempotent)
//	PUT    /v1/sessions/{name}/segments/{n}  upload the n-th SPB2 segment
//	POST   /v1/sessions/{name}/finalize      finish and persist the result
//	GET    /v1/sessions/{name}/result        canonical result JSON
//	GET    /v1/sessions[/{name}]             status
//	DELETE /v1/sessions/{name}               discard a session
//	GET    /metrics                          Prometheus text exposition
//	GET    /healthz                          liveness
//
// SIGINT/SIGTERM trigger a graceful shutdown: every session is
// checkpointed before the process exits. A kill -9 is also survivable —
// that is the point — but resumes from the last durable checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"secpb/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8437", "listen address (host:port; port 0 picks a free port)")
		data        = flag.String("data", "secpb-data", "durable data directory (sessions/, quarantine/)")
		maxSessions = flag.Int("max-sessions", 64, "admission cap on concurrently active sessions")
		queueCap    = flag.Int("queue", 32, "per-session bounded ingest queue (segments)")
		ckptEvery   = flag.Int("ckpt-every", 4, "checkpoint every N applied segments")
		maxBody     = flag.Int64("max-body", 16<<20, "largest accepted upload body in bytes")
		addrFile    = flag.String("addrfile", "", "write the bound listen address to this file (for scripts using port 0)")
	)
	flag.Parse()

	sv, err := service.Open(service.Options{
		DataDir:     *data,
		MaxSessions: *maxSessions,
		QueueCap:    *queueCap,
		CkptEvery:   *ckptEvery,
		MaxBody:     *maxBody,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-serve: %v\n", err)
		os.Exit(1)
	}
	for _, q := range sv.Quarantined() {
		fmt.Fprintf(os.Stderr, "secpb-serve: quarantined session %q -> %s (%s)\n", q.Name, q.Dir, q.Err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-serve: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "secpb-serve: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "secpb-serve: listening on %s (data %s, %d sessions resumed)\n",
		bound, *data, len(sv.Statuses()))

	httpSrv := &http.Server{Handler: sv}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "secpb-serve: %v — checkpointing all sessions\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		httpSrv.Shutdown(ctx)
		cancel()
		if err := sv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "secpb-serve: shutdown: %v\n", err)
			os.Exit(1)
		}
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "secpb-serve: %v\n", err)
			os.Exit(1)
		}
	}
}
