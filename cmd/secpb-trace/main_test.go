package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"secpb/internal/trace"
)

// cli runs the command in-process and returns (exit code, stdout, stderr).
func cli(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestGenConvertDumpRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spb1 := filepath.Join(dir, "t.spb")
	spb2 := filepath.Join(dir, "t.spb2")
	conv := filepath.Join(dir, "conv.spb2")
	for _, args := range [][]string{
		{"gen", "-bench", "kvstore", "-ops", "20000", "-seed", "7", "-format", "spb1", "-o", spb1},
		{"gen", "-bench", "kvstore", "-ops", "20000", "-seed", "7", "-format", "spb2", "-o", spb2},
		{"convert", "-i", spb1, "-o", conv},
	} {
		if code, _, errs := cli(t, args...); code != 0 {
			t.Fatalf("%v: exit %d: %s", args, code, errs)
		}
	}

	// Converting the SPB1 trace re-encodes the same ops, and SPB2
	// segment boundaries depend only on -segops — so the converted file
	// is byte-identical to the directly generated one.
	direct, err := os.ReadFile(spb2)
	if err != nil {
		t.Fatal(err)
	}
	converted, err := os.ReadFile(conv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, converted) {
		t.Errorf("convert(spb1) differs from direct spb2 gen (%d vs %d bytes)", len(converted), len(direct))
	}

	// Both encodings dump to identical text.
	var dumps []string
	for _, f := range []string{spb1, spb2} {
		code, out, errs := cli(t, "dump", "-i", f)
		if code != 0 {
			t.Fatalf("dump %s: exit %d: %s", f, code, errs)
		}
		dumps = append(dumps, out)
	}
	if dumps[0] != dumps[1] {
		t.Error("spb1 and spb2 dumps differ")
	}
	if n := strings.Count(dumps[0], "\n"); n != 20000 {
		t.Errorf("dump has %d lines, want 20000", n)
	}

	// The columnar encoding earns its keep on a real zoo trace.
	s1, err := os.Stat(spb1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := os.Stat(spb2)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(s1.Size()) / float64(s2.Size()); ratio < 1.4 {
		t.Errorf("spb2 only %.2fx smaller than spb1 (%d vs %d bytes)", ratio, s2.Size(), s1.Size())
	}
}

func TestStatReportsFormat(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "t.spb2")
	if code, _, errs := cli(t, "gen", "-bench", "wal", "-ops", "5000", "-o", f); code != 0 {
		t.Fatalf("gen: %s", errs)
	}
	code, out, errs := cli(t, "stat", "-i", f)
	if code != 0 {
		t.Fatalf("stat: exit %d: %s", code, errs)
	}
	for _, want := range []string{"format       spb2", "ops          5000", "fences"} {
		if !strings.Contains(out, want) {
			t.Errorf("stat output missing %q:\n%s", want, out)
		}
	}
}

func TestAsmDumpRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "t.spb2")
	if code, _, errs := cli(t, "gen", "-bench", "gcc", "-ops", "300", "-o", f); code != 0 {
		t.Fatalf("gen: %s", errs)
	}
	_, text, _ := cli(t, "dump", "-i", f)

	src := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(src, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.spb2")
	if code, _, errs := cli(t, "asm", "-i", src, "-o", back); code != 0 {
		t.Fatalf("asm: exit %d: %s", code, errs)
	}
	_, text2, _ := cli(t, "dump", "-i", back)
	if text != text2 {
		t.Error("asm→dump round trip altered the trace")
	}
}

func TestReorderAcceptsSPB2(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "t.spb2")
	out := filepath.Join(dir, "r.spb2")
	if code, _, errs := cli(t, "gen", "-bench", "kvstore", "-ops", "2000", "-o", f); code != 0 {
		t.Fatalf("gen: %s", errs)
	}
	if code, _, errs := cli(t, "reorder", "-i", f, "-o", out, "-window", "8"); code != 0 {
		t.Fatalf("reorder: exit %d: %s", code, errs)
	}
	code, stat, errs := cli(t, "stat", "-i", out)
	if code != 0 {
		t.Fatalf("stat: exit %d: %s", code, errs)
	}
	if !strings.Contains(stat, "ops          2000") {
		t.Errorf("reordered trace lost ops:\n%s", stat)
	}
}

func TestDumpRejectsCorruptTrace(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "t.spb2")
	if code, _, errs := cli(t, "gen", "-bench", "kvstore", "-ops", "2000", "-o", f); code != 0 {
		t.Fatalf("gen: %s", errs)
	}
	raw, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(f, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errs := cli(t, "dump", "-i", f)
	if code == 0 {
		t.Fatal("dump decoded a corrupted trace without error")
	}
	if !strings.Contains(errs, "corrupt") {
		t.Errorf("stderr does not name the corruption: %s", errs)
	}
}

// A zero-op input (empty file, or header-only SPB2) must fail convert
// with the typed empty-trace error — not silently emit a stub output
// that the next tool in a pipeline would mistake for a real trace.
func TestConvertRejectsEmptyInput(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.spb2")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	headerOnly := filepath.Join(dir, "header.spb2")
	if err := os.WriteFile(headerOnly, trace.SPB2Header(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{empty, headerOnly} {
		out := filepath.Join(dir, "out.spb2")
		code, _, errs := cli(t, "convert", "-i", in, "-o", out)
		if code == 0 {
			t.Fatalf("convert %s: succeeded on a zero-op input", in)
		}
		if !strings.Contains(errs, "empty trace") {
			t.Errorf("convert %s: stderr does not name the typed empty-trace error: %s", in, errs)
		}
		if _, err := os.Stat(out); !os.IsNotExist(err) {
			t.Errorf("convert %s: left a stub output behind", in)
		}
	}
}

// split must produce one standalone SPB2 file per sealed segment, and
// concatenating their frame portions must reproduce the original trace.
func TestSplitProducesStandaloneSegments(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "t.spb2")
	if code, _, errs := cli(t, "gen", "-bench", "gcc", "-ops", "1000", "-segops", "256", "-o", f); code != 0 {
		t.Fatalf("gen: %s", errs)
	}
	segDir := filepath.Join(dir, "segs")
	if code, _, errs := cli(t, "split", "-i", f, "-d", segDir); code != 0 {
		t.Fatalf("split: exit %d: %s", code, errs)
	}
	names, err := filepath.Glob(filepath.Join(segDir, "seg-*.spb2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 { // 1000 ops at 256/segment
		t.Fatalf("split produced %d files, want 4: %v", len(names), names)
	}
	// Each piece is a decodable stream on its own, and splicing the
	// frames back onto one header reproduces the original bytes.
	rebuilt := trace.SPB2Header()
	for _, name := range names {
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if code, _, errs := cli(t, "stat", "-i", name); code != 0 {
			t.Fatalf("stat %s: %s", name, errs)
		}
		rebuilt = append(rebuilt, raw[trace.SPB2HeaderLen:]...)
	}
	orig, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, orig) {
		t.Error("reassembled segments differ from the original trace")
	}
}

// run over a recorded trace must emit exactly the canonical result
// bytes the service produces for a streamed session of the same spec —
// the byte-diff contract the ci smoke gate depends on.
func TestRunEmitsCanonicalResult(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "t.spb2")
	if code, _, errs := cli(t, "gen", "-bench", "gcc", "-ops", "2000", "-seed", "9", "-o", f); code != 0 {
		t.Fatalf("gen: %s", errs)
	}
	code, out, errs := cli(t, "run", "-i", f, "-scheme", "cobcm", "-bench", "gcc", "-seed", "9")
	if code != 0 {
		t.Fatalf("run: exit %d: %s", code, errs)
	}
	if !strings.HasSuffix(out, "\n") || !strings.Contains(out, `"scheme"`) {
		t.Fatalf("run output is not the canonical result encoding: %q", out)
	}
	// Deterministic: a second run is byte-identical.
	_, out2, _ := cli(t, "run", "-i", f, "-scheme", "cobcm", "-bench", "gcc", "-seed", "9")
	if out != out2 {
		t.Error("run is not deterministic across invocations")
	}
	// And it must refuse a bad scheme with a clean error.
	if code, _, _ := cli(t, "run", "-i", f, "-scheme", "no-such-scheme"); code == 0 {
		t.Error("run accepted an unknown scheme")
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		want string // substring of stderr
	}{
		{"no args", nil, 2, "usage"},
		{"unknown subcommand", []string{"frobnicate"}, 2, "unknown subcommand"},
		{"gen zero ops", []string{"gen", "-ops", "0"}, 1, "-ops must be positive"},
		{"gen unknown bench", []string{"gen", "-bench", "no-such-bench"}, 1, "no-such-bench"},
		{"gen bad format", []string{"gen", "-bench", "gcc", "-format", "spb9"}, 1, "unknown -format"},
		{"gen negative segops", []string{"gen", "-segops", "-1"}, 1, "-segops must be non-negative"},
		{"convert bad format", []string{"convert", "-i", "x", "-format", "zip"}, 1, ""},
		{"dump negative n", []string{"dump", "-n", "-5"}, 1, "-n must be non-negative"},
		{"reorder zero window", []string{"reorder", "-window", "0"}, 1, "-window must be at least 1"},
		{"reorder negative window", []string{"reorder", "-window", "-3"}, 1, "-window must be at least 1"},
		{"gen bad flag", []string{"gen", "-nonsense"}, 2, ""},
		{"dump missing file", []string{"dump", "-i", "/no/such/file.spb2"}, 1, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errs := cli(t, tc.args...)
			if code != tc.code {
				t.Errorf("exit %d, want %d (stderr: %s)", code, tc.code, errs)
			}
			if tc.want != "" && !strings.Contains(errs, tc.want) {
				t.Errorf("stderr %q missing %q", errs, tc.want)
			}
		})
	}
}
