// Command secpb-trace works with memory-operation traces: generate a
// synthetic benchmark trace, convert between the flat SPB1 and
// segmented-columnar SPB2 encodings, dump a binary trace as text,
// assemble text back into binary, report statistics, apply the
// relaxed-consistency reordering transform, split an SPB2 trace into
// per-segment upload bodies for the streaming service, or run a trace
// through the simulator and emit the canonical result JSON.
//
// gen, convert, dump, and stat stream batch-by-batch in constant
// memory, so they handle traces far larger than RAM. Readers
// auto-detect the format from the magic; writers default to SPB2
// (-format spb1 selects the legacy flat encoding).
//
// Usage:
//
//	secpb-trace gen -bench gamess -ops 100000 -o gamess.spb2
//	secpb-trace convert -i gamess.spb -o gamess.spb2
//	secpb-trace dump -i gamess.spb2 | head
//	secpb-trace asm -i trace.txt -o trace.spb2
//	secpb-trace stat -i gamess.spb2
//	secpb-trace reorder -i trace.spb2 -o relaxed.spb2 -window 16
//	secpb-trace split -i gamess.spb2 -d segs/            # seg-00000.spb2 ...
//	secpb-trace run -i gamess.spb2 -scheme cobcm -bench gamess -o result.json
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"secpb/internal/addr"
	"secpb/internal/engine"
	"secpb/internal/service"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = "usage: secpb-trace gen|convert|dump|asm|stat|reorder|split|run [flags]"

// run is the testable entry point: it never calls os.Exit and writes
// only to the given streams.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) < 1 {
		fmt.Fprintln(stderr, "secpb-trace: "+usage)
		return 2
	}
	cmd, args := argv[0], argv[1:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args, stdout, stderr)
	case "convert":
		err = cmdConvert(args, stdout, stderr)
	case "dump":
		err = cmdDump(args, stdout, stderr)
	case "asm":
		err = cmdAsm(args, stdout, stderr)
	case "stat":
		err = cmdStat(args, stdout, stderr)
	case "reorder":
		err = cmdReorder(args, stdout, stderr)
	case "split":
		err = cmdSplit(args, stdout, stderr)
	case "run":
		err = cmdRun(args, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "secpb-trace: unknown subcommand %q\n%s\n", cmd, usage)
		return 2
	}
	var uerr usageError
	if errors.As(err, &uerr) {
		if uerr.err != flag.ErrHelp {
			fmt.Fprintf(stderr, "secpb-trace: %s: %v\n", cmd, uerr.err)
		}
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "secpb-trace: %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

// usageError marks malformed command lines (bad flag syntax, -h) so
// run can exit 2 instead of 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }

func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// parseFlags wraps flag-syntax failures as usage errors.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	return nil
}

func openIn(path string) (io.ReadCloser, error) {
	if path == "" || path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func createOut(path string, stdout io.Writer) (io.WriteCloser, error) {
	if path == "" || path == "-" {
		return nopWriteCloser{stdout}, nil
	}
	return os.Create(path)
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// opWriter abstracts the two binary encoders so every subcommand picks
// an output format the same way.
type opWriter interface {
	Write(trace.Op) error
	Flush() error
}

func newOpWriter(w io.Writer, format string, segOps int) (opWriter, error) {
	switch format {
	case "spb2":
		return trace.NewSegWriter(w, segOps), nil
	case "spb1":
		return trace.NewWriter(w), nil
	default:
		return nil, fmt.Errorf("unknown -format %q (want spb1 or spb2)", format)
	}
}

func closeOut(out io.WriteCloser) error {
	if _, ok := out.(nopWriteCloser); ok {
		return nil
	}
	return out.Close()
}

func cmdGen(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("gen", stderr)
	bench := fs.String("bench", "gcc", "benchmark profile (SPEC proxy or zoo name)")
	ops := fs.Uint64("ops", 100_000, "operations to generate")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("o", "-", "output file (binary trace)")
	format := fs.String("format", "spb2", "output encoding: spb1 or spb2")
	segOps := fs.Int("segops", 0, "SPB2 ops per segment (0 = default)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *ops == 0 {
		return fmt.Errorf("-ops must be positive")
	}
	if *segOps < 0 {
		return fmt.Errorf("-segops must be non-negative")
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(prof, *seed, *ops)
	if err != nil {
		return err
	}
	dst, err := createOut(*out, stdout)
	if err != nil {
		return err
	}
	w, err := newOpWriter(dst, *format, *segOps)
	if err != nil {
		closeOut(dst)
		return err
	}
	var n uint64
	b := trace.NewBatch(trace.DefaultBatchCap)
	for gen.NextBatch(b) {
		if err := writeBatch(w, b); err != nil {
			closeOut(dst)
			return err
		}
		n += uint64(b.Len())
	}
	if err := w.Flush(); err != nil {
		closeOut(dst)
		return err
	}
	if err := closeOut(dst); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d ops\n", n)
	return nil
}

// writeBatch uses the columnar fast path when the writer has one.
func writeBatch(w opWriter, b *trace.Batch) error {
	if sw, ok := w.(*trace.SegWriter); ok {
		return sw.WriteBatch(b)
	}
	for i := 0; i < b.Len(); i++ {
		if err := w.Write(b.Op(i)); err != nil {
			return err
		}
	}
	return nil
}

func cmdConvert(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("convert", stderr)
	in := fs.String("i", "-", "input binary trace (format auto-detected)")
	out := fs.String("o", "-", "output binary trace")
	format := fs.String("format", "spb2", "output encoding: spb1 or spb2")
	segOps := fs.Int("segops", 0, "SPB2 ops per segment (0 = default)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *segOps < 0 {
		return fmt.Errorf("-segops must be non-negative")
	}
	src, err := openIn(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	dec, err := trace.NewDecoder(src)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *in, err)
	}
	dst, err := createOut(*out, stdout)
	if err != nil {
		return err
	}
	w, err := newOpWriter(dst, *format, *segOps)
	if err != nil {
		closeOut(dst)
		return err
	}
	var n uint64
	for {
		op, err := dec.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			closeOut(dst)
			return fmt.Errorf("reading %s: %w", *in, err)
		}
		if err := w.Write(op); err != nil {
			closeOut(dst)
			return err
		}
		n++
	}
	if n == 0 {
		// A zero-op input converts to a zero-op output — almost always a
		// truncated capture or the wrong file. Refuse with the typed
		// empty-trace error instead of silently writing a header-only
		// stream (and remove the stub output, which would otherwise look
		// like a successful conversion to the next tool in the pipeline).
		closeOut(dst)
		if *out != "" && *out != "-" {
			os.Remove(*out)
		}
		return fmt.Errorf("%s: %w", *in, &trace.EmptyTraceError{Detail: "zero operations to convert"})
	}
	if err := w.Flush(); err != nil {
		closeOut(dst)
		return err
	}
	if err := closeOut(dst); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "converted %d ops (%s -> %s)\n", n, dec.Format(), *format)
	return nil
}

func cmdDump(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("dump", stderr)
	in := fs.String("i", "-", "input binary trace (format auto-detected)")
	limit := fs.Int("n", 0, "dump at most n ops (0 = all)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *limit < 0 {
		return fmt.Errorf("-n must be non-negative")
	}
	src, err := openIn(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	dec, err := trace.NewDecoder(src)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *in, err)
	}
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	for i := 0; *limit == 0 || i < *limit; i++ {
		op, err := dec.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("reading %s: %w", *in, err)
		}
		fmt.Fprintln(w, trace.FormatText(op))
	}
	return nil
}

func cmdAsm(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("asm", stderr)
	in := fs.String("i", "-", "input text trace")
	out := fs.String("o", "-", "output binary trace")
	format := fs.String("format", "spb2", "output encoding: spb1 or spb2")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	src, err := openIn(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := createOut(*out, stdout)
	if err != nil {
		return err
	}
	w, err := newOpWriter(dst, *format, 0)
	if err != nil {
		closeOut(dst)
		return err
	}
	sc := bufio.NewScanner(src)
	line, n := 0, 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		op, err := trace.ParseText(sc.Text())
		if err != nil {
			closeOut(dst)
			return fmt.Errorf("line %d: %w", line, err)
		}
		if err := w.Write(op); err != nil {
			closeOut(dst)
			return err
		}
		n++
	}
	if err := sc.Err(); err != nil {
		closeOut(dst)
		return err
	}
	if err := w.Flush(); err != nil {
		closeOut(dst)
		return err
	}
	if err := closeOut(dst); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "assembled %d ops\n", n)
	return nil
}

func cmdStat(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("stat", stderr)
	in := fs.String("i", "-", "input binary trace (format auto-detected)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	src, err := openIn(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	dec, err := trace.NewDecoder(src)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *in, err)
	}
	var n, loads, stores, fences, instrs uint64
	blocks := map[addr.Block]uint64{}
	for {
		op, err := dec.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("reading %s: %w", *in, err)
		}
		n++
		instrs += op.Instructions()
		switch op.Kind {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
			blocks[addr.BlockOf(op.Addr)]++
		case trace.Fence:
			fences++
		}
	}
	fmt.Fprintf(stdout, "format       %s\n", dec.Format())
	fmt.Fprintf(stdout, "ops          %d\n", n)
	fmt.Fprintf(stdout, "instructions %d\n", instrs)
	fmt.Fprintf(stdout, "loads        %d\n", loads)
	fmt.Fprintf(stdout, "stores       %d\n", stores)
	fmt.Fprintf(stdout, "fences       %d\n", fences)
	if instrs > 0 {
		fmt.Fprintf(stdout, "PPTI         %.1f\n", float64(stores)/float64(instrs)*1000)
	}
	fmt.Fprintf(stdout, "store blocks %d\n", len(blocks))
	if len(blocks) > 0 {
		fmt.Fprintf(stdout, "stores/block %.2f\n", float64(stores)/float64(len(blocks)))
	}
	return nil
}

func cmdReorder(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("reorder", stderr)
	in := fs.String("i", "-", "input binary trace (format auto-detected)")
	out := fs.String("o", "-", "output binary trace")
	window := fs.Int("window", 16, "reorder window (stores)")
	seed := fs.Uint64("seed", 1, "reorder seed")
	format := fs.String("format", "spb2", "output encoding: spb1 or spb2")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *window < 1 {
		return fmt.Errorf("-window must be at least 1")
	}
	src, err := openIn(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	dec, err := trace.NewDecoder(src)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *in, err)
	}
	ops, err := dec.ReadAll()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *in, err)
	}
	dst, err := createOut(*out, stdout)
	if err != nil {
		return err
	}
	w, err := newOpWriter(dst, *format, 0)
	if err != nil {
		closeOut(dst)
		return err
	}
	for _, op := range trace.Reorder(ops, *window, *seed) {
		if err := w.Write(op); err != nil {
			closeOut(dst)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		closeOut(dst)
		return err
	}
	return closeOut(dst)
}

// cmdSplit explodes an SPB2 trace into one file per sealed segment,
// each a complete standalone SPB2 stream (header + frame) — exactly
// the upload bodies PUT /v1/sessions/{name}/segments/{n} expects, in
// ordinal order.
func cmdSplit(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("split", stderr)
	in := fs.String("i", "-", "input SPB2 trace")
	dir := fs.String("d", ".", "output directory for segment files")
	prefix := fs.String("prefix", "seg", "segment file name prefix")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	src, err := openIn(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	header := trace.SPB2Header()
	n, err := trace.ScanSegments(src, func(seg int, frame []byte) error {
		path := filepath.Join(*dir, fmt.Sprintf("%s-%05d.spb2", *prefix, seg))
		body := append(append([]byte{}, header...), frame...)
		return os.WriteFile(path, body, 0o644)
	})
	if err != nil {
		return fmt.Errorf("reading %s: %w", *in, err)
	}
	fmt.Fprintf(stderr, "split %d segments into %s\n", n, *dir)
	return nil
}

// cmdRun replays a recorded trace through the full simulator and emits
// the canonical result encoding — the same bytes GET
// /v1/sessions/{name}/result returns for a streamed session of the
// same trace, which is what makes the service smoke gate a byte-diff.
func cmdRun(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("run", stderr)
	in := fs.String("i", "-", "input binary trace (format auto-detected)")
	out := fs.String("o", "-", "output result JSON")
	scheme := fs.String("scheme", "cobcm", "protection scheme")
	bench := fs.String("bench", "gcc", "workload profile the trace was generated from")
	seed := fs.Uint64("seed", 1, "config seed (must match the session spec)")
	entries := fs.Int("secpb", 0, "SecPB entries (0 = config default)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	spec := service.Spec{Name: "cli", Scheme: *scheme, Bench: *bench, Seed: *seed, Entries: *entries}
	if err := spec.Validate(); err != nil {
		return err
	}
	cfg, prof, err := spec.Build()
	if err != nil {
		return err
	}
	src, err := openIn(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	fsrc, err := trace.NewFileBatchSource(src)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *in, err)
	}
	res, err := engine.RunRecorded(cfg, prof, fsrc)
	if err != nil {
		return err
	}
	dst, err := createOut(*out, stdout)
	if err != nil {
		return err
	}
	if _, err := dst.Write(service.EncodeResult(res)); err != nil {
		closeOut(dst)
		return err
	}
	return closeOut(dst)
}
