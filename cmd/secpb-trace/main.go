// Command secpb-trace works with memory-operation traces: generate a
// synthetic benchmark trace, dump a binary trace as text, assemble text
// back into binary, report statistics, or apply the relaxed-consistency
// reordering transform.
//
// Usage:
//
//	secpb-trace gen -bench gamess -ops 100000 -o gamess.spb
//	secpb-trace dump -i gamess.spb | head
//	secpb-trace asm -i trace.txt -o trace.spb
//	secpb-trace stat -i gamess.spb
//	secpb-trace reorder -i trace.spb -o relaxed.spb -window 16
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"secpb/internal/addr"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "secpb-trace: "+format+"\n", args...)
	os.Exit(1)
}

func openIn(path string) io.ReadCloser {
	if path == "" || path == "-" {
		return io.NopCloser(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	return f
}

func createOut(path string) io.WriteCloser {
	if path == "" || path == "-" {
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	return f
}

func readAll(path string) []trace.Op {
	in := openIn(path)
	defer in.Close()
	ops, err := trace.NewReader(in).ReadAll()
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return ops
}

func writeAll(path string, ops []trace.Op) {
	out := createOut(path)
	w := trace.NewWriter(out)
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			fatalf("writing: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		fatalf("flushing: %v", err)
	}
	if f, ok := out.(*os.File); ok && f != os.Stdout {
		if err := f.Close(); err != nil {
			fatalf("closing: %v", err)
		}
	}
}

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: secpb-trace gen|dump|asm|stat|reorder [flags]")
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "gen":
		fs := flag.NewFlagSet("gen", flag.ExitOnError)
		bench := fs.String("bench", "gcc", "benchmark profile")
		ops := fs.Uint64("ops", 100_000, "operations to generate")
		seed := fs.Uint64("seed", 1, "workload seed")
		out := fs.String("o", "-", "output file (binary trace)")
		fs.Parse(args)
		prof, err := workload.ByName(*bench)
		if err != nil {
			fatalf("%v", err)
		}
		all, err := workload.Generate(prof, *seed, int(*ops))
		if err != nil {
			fatalf("%v", err)
		}
		writeAll(*out, all)
		fmt.Fprintf(os.Stderr, "wrote %d ops\n", len(all))

	case "dump":
		fs := flag.NewFlagSet("dump", flag.ExitOnError)
		in := fs.String("i", "-", "input binary trace")
		limit := fs.Int("n", 0, "dump at most n ops (0 = all)")
		fs.Parse(args)
		ops := readAll(*in)
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for i, op := range ops {
			if *limit > 0 && i >= *limit {
				break
			}
			fmt.Fprintln(w, trace.FormatText(op))
		}

	case "asm":
		fs := flag.NewFlagSet("asm", flag.ExitOnError)
		in := fs.String("i", "-", "input text trace")
		out := fs.String("o", "-", "output binary trace")
		fs.Parse(args)
		src := openIn(*in)
		defer src.Close()
		var ops []trace.Op
		sc := bufio.NewScanner(src)
		line := 0
		for sc.Scan() {
			line++
			if len(sc.Bytes()) == 0 {
				continue
			}
			op, err := trace.ParseText(sc.Text())
			if err != nil {
				fatalf("line %d: %v", line, err)
			}
			ops = append(ops, op)
		}
		if err := sc.Err(); err != nil {
			fatalf("%v", err)
		}
		writeAll(*out, ops)
		fmt.Fprintf(os.Stderr, "assembled %d ops\n", len(ops))

	case "stat":
		fs := flag.NewFlagSet("stat", flag.ExitOnError)
		in := fs.String("i", "-", "input binary trace")
		fs.Parse(args)
		ops := readAll(*in)
		var loads, stores, fences, instrs uint64
		blocks := map[addr.Block]uint64{}
		for _, op := range ops {
			instrs += op.Instructions()
			switch op.Kind {
			case trace.Load:
				loads++
			case trace.Store:
				stores++
				blocks[addr.BlockOf(op.Addr)]++
			case trace.Fence:
				fences++
			}
		}
		fmt.Printf("ops          %d\n", len(ops))
		fmt.Printf("instructions %d\n", instrs)
		fmt.Printf("loads        %d\n", loads)
		fmt.Printf("stores       %d\n", stores)
		fmt.Printf("fences       %d\n", fences)
		if instrs > 0 {
			fmt.Printf("PPTI         %.1f\n", float64(stores)/float64(instrs)*1000)
		}
		fmt.Printf("store blocks %d\n", len(blocks))
		if len(blocks) > 0 {
			fmt.Printf("stores/block %.2f\n", float64(stores)/float64(len(blocks)))
		}

	case "reorder":
		fs := flag.NewFlagSet("reorder", flag.ExitOnError)
		in := fs.String("i", "-", "input binary trace")
		out := fs.String("o", "-", "output binary trace")
		window := fs.Int("window", 16, "reorder window (stores)")
		seed := fs.Uint64("seed", 1, "reorder seed")
		fs.Parse(args)
		writeAll(*out, trace.Reorder(readAll(*in), *window, *seed))

	default:
		fatalf("unknown subcommand %q", cmd)
	}
}
