// Command secpb-crash explores the crash matrix: it injects power
// failures at instrumented points of the persistence pipeline across a
// scheme × workload grid, runs each scheme's post-crash late work on
// the surviving state, and differentially verifies every recovered
// memory tuple against a golden replay of the committed-store prefix.
//
// With -service it instead runs the service-level kill matrix: each
// sampled kill point streams a trace prefix into a live streaming
// server, kills it mid-flight (torn log tails included), restarts it,
// and byte-diffs the resumed session against a golden committed-prefix
// replay and an uninterrupted batch run — plus a tampered-checkpoint
// negative control per cell that must be refused with a typed error.
//
// Usage:
//
//	secpb-crash -schemes all -bench gcc,povray -ops 6000 -points 300
//	secpb-crash -schemes cobcm -ops 300 -points 0          # exhaustive
//	secpb-crash -out crash-matrix.json
//	secpb-crash -service -schemes sp,cobcm -points 50 -out service-matrix.json
//
// The exit status is nonzero if any crash point fails verification.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"secpb/internal/config"
	"secpb/internal/crashsim"
	"secpb/internal/engine"
)

func main() {
	var (
		schemesStr = flag.String("schemes", "all", "comma-separated schemes, or 'all' for the six SecPB schemes")
		benchStr   = flag.String("bench", "gcc", "comma-separated benchmark profiles")
		ops        = flag.Int("ops", 4000, "trace length per grid cell")
		seed       = flag.Uint64("seed", 0x5ec9b, "base seed (each cell derives its own)")
		points     = flag.Int("points", 200, "crash points sampled per cell (0 = exhaustive)")
		entries    = flag.Int("secpb", 0, "SecPB entries (0 = config default)")
		workers    = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
		kernels    = flag.Bool("kernels", true, "use the scheme-specialized execution kernels where they engage (healthy replay phases); output is identical either way")
		out        = flag.String("out", "", "write the JSON crash-matrix artifact to this file")
		svc        = flag.Bool("service", false, "run the service-level kill matrix instead of the in-process crash matrix")
		segOps     = flag.Int("segops", 128, "service mode: SPB2 ops per uploaded segment")
		ckptEvery  = flag.Int("ckptevery", 2, "service mode: checkpoint cadence in segments")
		queueCap   = flag.Int("queue", 4, "service mode: per-session ingest queue depth")
		dir        = flag.String("dir", "", "service mode: scratch directory (empty = temp)")
	)
	flag.Parse()
	engine.SetDefaultKernels(*kernels)

	var schemes []config.Scheme
	if *schemesStr != "all" {
		for _, name := range strings.Split(*schemesStr, ",") {
			s, err := config.SchemeByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "secpb-crash: %v\n", err)
				os.Exit(2)
			}
			schemes = append(schemes, s)
		}
	}

	if *svc {
		runService(crashsim.ServiceOptions{
			Schemes:   schemes,
			Workloads: splitNonEmpty(*benchStr),
			Ops:       *ops,
			SegOps:    *segOps,
			Seed:      *seed,
			Points:    *points,
			Workers:   *workers,
			CkptEvery: *ckptEvery,
			QueueCap:  *queueCap,
			Dir:       *dir,
		}, *out)
		return
	}

	opts := crashsim.Options{
		Schemes:   schemes,
		Workloads: splitNonEmpty(*benchStr),
		Ops:       *ops,
		Seed:      *seed,
		Points:    *points,
		Workers:   *workers,
		Entries:   *entries,
	}
	m, err := crashsim.Explore(context.Background(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-crash: %v\n", err)
		os.Exit(1)
	}

	if err := m.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "secpb-crash: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-crash: %v\n", err)
			os.Exit(1)
		}
		if err := m.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "secpb-crash: writing artifact: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "secpb-crash: %v\n", err)
			os.Exit(1)
		}
	}
	if !m.Clean() {
		fmt.Fprintln(os.Stderr, "secpb-crash: FAILED — recovered state diverged from the golden model")
		os.Exit(1)
	}
	fmt.Println("crash matrix clean")
}

// runService drives the service-level kill matrix and exits the
// process with the same artifact/exit-status discipline as the
// in-process matrix: render a table, optionally write JSON, nonzero
// exit unless every kill point verified and every tamper was refused.
func runService(opts crashsim.ServiceOptions, out string) {
	m, err := crashsim.ExploreService(context.Background(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-crash: %v\n", err)
		os.Exit(1)
	}
	if err := m.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "secpb-crash: %v\n", err)
		os.Exit(1)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-crash: %v\n", err)
			os.Exit(1)
		}
		if err := m.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "secpb-crash: writing artifact: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "secpb-crash: %v\n", err)
			os.Exit(1)
		}
	}
	if !m.Clean() {
		fmt.Fprintln(os.Stderr, "secpb-crash: FAILED — a killed session resumed divergent or a tampered checkpoint was accepted")
		os.Exit(1)
	}
	fmt.Println("service kill matrix clean")
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
