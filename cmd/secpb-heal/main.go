// Command secpb-heal exercises degraded-mode recovery over a scheme ×
// workload grid: each cell runs a seeded workload on faulty NVM media
// (transient write failures, torn writes, latent bit rot), crashes,
// drains the battery-backed late work through budget-bounded recovery
// boots, lets the resting image decay, and triages every persisted
// block — clean, recoverable, or quarantined. The differential check
// requires every surviving block byte-identical to the committed memory
// model and every rotted block quarantined.
//
// Usage:
//
//	secpb-heal -schemes all -bench gcc -ops 4000 -faultrate 0.05
//	secpb-heal -writefail 0.1 -torn 0.1 -rot 0.02 -budget 4
//	secpb-heal -out heal-matrix.json
//
// -faultrate is shorthand that sets all three fault classes at once;
// the individual flags override it. The exit status is nonzero if any
// cell breaks the degraded-mode contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/recovery"
)

func main() {
	var (
		schemesStr = flag.String("schemes", "all", "comma-separated schemes, or 'all' for the six SecPB schemes")
		benchStr   = flag.String("bench", "gcc", "comma-separated benchmark profiles")
		ops        = flag.Uint64("ops", 4000, "trace length per grid cell")
		seed       = flag.Uint64("seed", 0x5ec9b, "base seed (each cell derives its own)")
		faultRate  = flag.Float64("faultrate", 0, "set write-fail, torn and rot rates at once")
		writeFail  = flag.Float64("writefail", -1, "transient write-fail rate (overrides -faultrate)")
		torn       = flag.Float64("torn", -1, "torn-write rate (overrides -faultrate)")
		rot        = flag.Float64("rot", -1, "latent bit-rot rate (overrides -faultrate)")
		budget     = flag.Float64("budget", 0, "battery reserve per recovery boot, in entries (0 = wall power)")
		workers    = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
		kernels    = flag.Bool("kernels", true, "use the scheme-specialized execution kernels where they engage (healthy replay phases); output is identical either way")
		out        = flag.String("out", "", "write the JSON heal-matrix artifact to this file")
	)
	flag.Parse()
	engine.SetDefaultKernels(*kernels)

	var schemes []config.Scheme
	if *schemesStr != "all" {
		for _, name := range strings.Split(*schemesStr, ",") {
			s, err := config.SchemeByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "secpb-heal: %v\n", err)
				os.Exit(2)
			}
			schemes = append(schemes, s)
		}
	}
	rate := func(specific float64) float64 {
		if specific >= 0 {
			return specific
		}
		return *faultRate
	}

	opts := recovery.HealOptions{
		Schemes:       schemes,
		Workloads:     splitNonEmpty(*benchStr),
		Ops:           *ops,
		Seed:          *seed,
		Workers:       *workers,
		WriteFailRate: rate(*writeFail),
		TornRate:      rate(*torn),
		RotRate:       rate(*rot),
		BudgetEntries: *budget,
	}
	m, err := recovery.ExploreHeal(context.Background(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secpb-heal: %v\n", err)
		os.Exit(1)
	}

	if err := m.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "secpb-heal: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secpb-heal: %v\n", err)
			os.Exit(1)
		}
		if err := m.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "secpb-heal: writing artifact: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "secpb-heal: %v\n", err)
			os.Exit(1)
		}
	}
	if !m.Healthy() {
		fmt.Fprintln(os.Stderr, "secpb-heal: FAILED — degraded-mode recovery broke its contract")
		os.Exit(1)
	}
	fmt.Println("heal matrix healthy")
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
