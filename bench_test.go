// Package secpb's root benchmark suite: one testing.B benchmark per
// table and figure of the paper's evaluation, plus micro-benchmarks of
// the core pipeline. Each table/figure benchmark regenerates its
// artifact on a reduced benchmark set per iteration and reports the
// headline number as a custom metric, so `go test -bench .` doubles as
// a smoke-run of the whole evaluation. Full-fidelity artifacts come
// from `go run ./cmd/secpb-bench -exp all -ops 200000`.
package secpb

import (
	"testing"

	"secpb/internal/addr"
	"secpb/internal/bmt"
	"secpb/internal/config"
	"secpb/internal/crypto"
	"secpb/internal/energy"
	"secpb/internal/engine"
	"secpb/internal/harness"
	"secpb/internal/meta"
	"secpb/internal/ptable"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// benchOpts uses a representative 3-benchmark subset so each iteration
// stays in benchmark-friendly time.
func benchOpts() harness.Options {
	o := harness.DefaultOptions()
	o.Ops = 20_000
	o.Benchmarks = []string{"gamess", "povray", "mcf"}
	return o
}

func BenchmarkTable4SchemeSlowdowns(b *testing.B) {
	o := benchOpts()
	var mean float64
	for i := 0; i < b.N; i++ {
		grid, _, err := harness.Table4(o)
		if err != nil {
			b.Fatal(err)
		}
		mean = grid.Mean[config.SchemeCOBCM]
	}
	b.ReportMetric((mean-1)*100, "cobcm-overhead-%")
}

func BenchmarkFigure6PerBenchmark(b *testing.B) {
	o := benchOpts()
	var gamessNoGap float64
	for i := 0; i < b.N; i++ {
		grid, _, err := harness.Figure6(o)
		if err != nil {
			b.Fatal(err)
		}
		gamessNoGap = grid.Ratio["gamess"][config.SchemeNoGap]
	}
	b.ReportMetric(gamessNoGap, "gamess-nogap-x")
}

func BenchmarkTable5BatteryEstimates(b *testing.B) {
	cfg := config.Default()
	var cobcm float64
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Table5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cobcm = rows[0].SuperCapMM3
	}
	b.ReportMetric(cobcm, "cobcm-supercap-mm3")
}

func BenchmarkTable6BatteryVsSize(b *testing.B) {
	cfg := config.Default()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table6(cfg); err != nil {
			b.Fatal(err)
		}
	}
	j, _ := energy.SecPBEnergy(config.SchemeCOBCM, 512, 8)
	b.ReportMetric(energy.EstimateFor("", j).SuperCapMM3, "cobcm512-supercap-mm3")
}

func BenchmarkFigure7SizeSweep(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"gobmk"}
	var r512 float64
	for i := 0; i < b.N; i++ {
		vals, _, err := harness.Figure7(o)
		if err != nil {
			b.Fatal(err)
		}
		r512 = vals[512]["gobmk"]
	}
	b.ReportMetric(r512, "gobmk-cm512-x")
}

func BenchmarkFigure8BMTRootUpdates(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"povray"}
	var frac float64
	for i := 0; i < b.N; i++ {
		vals, _, err := harness.Figure8(o)
		if err != nil {
			b.Fatal(err)
		}
		frac = vals["povray"]["cm-32"]
	}
	b.ReportMetric(frac*100, "povray-rootupd-%")
}

func BenchmarkFigure9BMFHeightStudy(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"povray"}
	var cmDBMF float64
	for i := 0; i < b.N; i++ {
		vals, _, err := harness.Figure9(o)
		if err != nil {
			b.Fatal(err)
		}
		cmDBMF = vals["povray"]["cm_dbmf"]
	}
	b.ReportMetric(cmDBMF, "povray-cmdbmf-x")
}

func BenchmarkStatsReport(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"gamess"}
	for i := 0; i < b.N; i++ {
		if _, err := harness.StatsReport(o); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks: the simulator pipeline itself.

func benchEngine(b *testing.B, scheme config.Scheme) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Default().WithScheme(scheme)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunBenchmark(cfg, prof, 10_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineBBB(b *testing.B)   { benchEngine(b, config.SchemeBBB) }
func BenchmarkEngineCOBCM(b *testing.B) { benchEngine(b, config.SchemeCOBCM) }
func BenchmarkEngineNoGap(b *testing.B) { benchEngine(b, config.SchemeNoGap) }
func BenchmarkEngineSP(b *testing.B)    { benchEngine(b, config.SchemeSP) }

// Hot-path micro-benchmarks: per-operation cost of the engine's store
// and load paths and of OTP generation, independent of workload mix.

func newBenchEngine(b *testing.B, scheme config.Scheme) *engine.Engine {
	b.Helper()
	prof, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New(config.Default().WithScheme(scheme), prof, []byte("bench-key"))
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkEngineStore measures one store through the COBCM fast path:
// program-view update, SecPB acceptance with early tuple work, and the
// cycle accounting — the per-op cost every sweep pays most often.
func BenchmarkEngineStore(b *testing.B) {
	eng := newBenchEngine(b, config.SchemeCOBCM)
	const ws = 1 << 16 // 64 KiB write working set
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := trace.Op{Kind: trace.Store, Addr: uint64(i*8) % ws, Size: 8, Data: uint64(i), Gap: 3}
		if err := eng.Step(op); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineLoad measures one load (mixed L1/SecPB/PM hits) after
// priming the working set with stores.
func BenchmarkEngineLoad(b *testing.B) {
	eng := newBenchEngine(b, config.SchemeCOBCM)
	const ws = 1 << 16
	for i := 0; i < ws/8; i++ {
		op := trace.Op{Kind: trace.Store, Addr: uint64(i * 8), Size: 8, Data: uint64(i), Gap: 3}
		if err := eng.Step(op); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := trace.Op{Kind: trace.Load, Addr: uint64(i*328) % ws, Size: 8, Gap: 3}
		if err := eng.Step(op); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOTPGen measures one 64-byte one-time-pad generation (four AES
// block encryptions) — the crypto engine's hottest primitive, in the
// write-into form the store and drain paths use.
func BenchmarkOTPGen(b *testing.B) {
	e, err := crypto.NewEngine([]byte("bench-key"))
	if err != nil {
		b.Fatal(err)
	}
	var pad [crypto.CacheLineSize]byte
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		e.OTPInto(&pad, uint64(i)<<6, uint64(i))
		sink ^= pad[0]
	}
	_ = sink
}

// BenchmarkOTPGenReference measures the same pad on the hand-rolled
// T-table AES (the pre-overhaul cost and differential-test oracle).
func BenchmarkOTPGenReference(b *testing.B) {
	e, err := crypto.NewEngine([]byte("bench-key"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		pad := e.OTPReference(uint64(i)<<6, uint64(i))
		sink ^= pad[0]
	}
	_ = sink
}

// Hash-layer micro-benchmarks: the keyed-midstate fast path against the
// hand-rolled reference, and per-walk vs batched BMT update cost.

func benchCryptoEngine(b *testing.B) *crypto.Engine {
	b.Helper()
	e, err := crypto.NewEngine([]byte("bench-key"))
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkMAC measures one block MAC on the fast path: a single SHA-512
// compression from the cached key midstate.
func BenchmarkMAC(b *testing.B) {
	e := benchCryptoEngine(b)
	var ct [crypto.CacheLineSize]byte
	b.SetBytes(crypto.CacheLineSize)
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		tag := e.MAC(&ct, uint64(i)<<6, uint64(i))
		sink ^= tag[0]
	}
	_ = sink
}

// BenchmarkMACReference measures the same MAC on the hand-rolled
// reference implementation (the pre-overhaul cost).
func BenchmarkMACReference(b *testing.B) {
	e := benchCryptoEngine(b)
	var ct [crypto.CacheLineSize]byte
	b.SetBytes(crypto.CacheLineSize)
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		tag := e.MACReference(&ct, uint64(i)<<6, uint64(i))
		sink ^= tag[0]
	}
	_ = sink
}

// BenchmarkHashNode measures one BMT interior-node hash (64 bytes of
// child digests) on the fast path.
func BenchmarkHashNode(b *testing.B) {
	e := benchCryptoEngine(b)
	children := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		h := e.HashNode(children)
		sink ^= h[0]
	}
	_ = sink
}

// BenchmarkHashNodeReference measures the same node hash on the
// hand-rolled reference implementation.
func BenchmarkHashNodeReference(b *testing.B) {
	e := benchCryptoEngine(b)
	children := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		h := e.HashNodeReference(children)
		sink ^= h[0]
	}
	_ = sink
}

// BenchmarkBMTUpdate measures one full physical leaf-to-root walk
// (Update immediately committed by Sweep) on a height-8 tree.
func BenchmarkBMTUpdate(b *testing.B) {
	e := benchCryptoEngine(b)
	tr, err := bmt.New(e, 8)
	if err != nil {
		b.Fatal(err)
	}
	line := make([]byte, meta.LineBytesLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Update(uint64(i%4096), line)
		tr.Sweep()
	}
}

// BenchmarkBMTBatchDrain measures a drain epoch: 512 update walks over a
// 256-page hot set committed with one coalesced sweep, the shape the
// controller's drain path produces. Compare walks/op × BenchmarkBMTUpdate
// against ns/op here for the coalescing win.
func BenchmarkBMTBatchDrain(b *testing.B) {
	e := benchCryptoEngine(b)
	tr, err := bmt.New(e, 8)
	if err != nil {
		b.Fatal(err)
	}
	const walks = 512
	line := make([]byte, meta.LineBytesLen)
	lineOf := func(uint64) []byte { return line }
	pages := make([]uint64, walks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pages {
			pages[j] = uint64((i*walks + j*7) % 256)
		}
		tr.UpdateBatch(pages, lineOf)
	}
	b.ReportMetric(walks, "walks/op")
}

// BenchmarkTable4Grid measures the wall-clock of a reduced Table IV
// sweep — the experiment-level number the parallel runner targets.
func BenchmarkTable4Grid(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.Table4(o); err != nil {
			b.Fatal(err)
		}
	}
}

// Data-plane micro-benchmarks: the paged state table against the map it
// replaced, batched against scalar trace replay, and the memoized
// experiment sweep.

// BenchmarkPTableVsMap compares the paged direct-index table against a
// Go map over the engine's actual access shape: a dense block-index
// working set, ~1/8 inserts, 7/8 re-lookups.
func BenchmarkPTableVsMap(b *testing.B) {
	const ws = 1 << 14
	b.Run("ptable", func(b *testing.B) {
		t := ptable.New[[addr.BlockBytes]byte]()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blk, _ := t.GetOrCreate(uint64(i*7) % ws)
			blk[i&63] = byte(i)
		}
	})
	b.Run("map", func(b *testing.B) {
		m := make(map[uint64]*[addr.BlockBytes]byte)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(i*7) % ws
			blk, ok := m[k]
			if !ok {
				blk = new([addr.BlockBytes]byte)
				m[k] = blk
			}
			blk[i&63] = byte(i)
		}
	})
}

// BenchmarkRunBatchVsRun compares the two replay dispatch strategies on
// the same generated stream: "scalar" drives the generic per-op step
// loop (the differential oracle, kernels pinned off), "batched" and
// "batched-pre" drive the columnar batch replay with the specialized
// kernels pinned on. The workload is replay-bound by design — povray's
// small hot working set keeps the stream in the modeled caches, so the
// comparison measures dispatch (per-op interface calls, validation,
// branch resolution) rather than the shared miss/crypto simulation
// work that dominates miss-bound or MAC-bound profiles and is
// identical code in both paths.
func BenchmarkRunBatchVsRun(b *testing.B) {
	prof, err := workload.ByName("povray")
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Default().WithScheme(config.SchemeCOBCM)
	const nops = 50_000
	b.Run("scalar", func(b *testing.B) {
		ops, err := workload.Generate(prof, cfg.Seed, nops)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(cfg, prof, []byte("bench-key"))
			if err != nil {
				b.Fatal(err)
			}
			eng.SetKernels(false)
			if err := eng.Run(trace.NewSliceSource(ops)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gen, err := workload.NewGenerator(prof, cfg.Seed, nops)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := engine.New(cfg, prof, []byte("bench-key"))
			if err != nil {
				b.Fatal(err)
			}
			eng.SetKernels(true)
			if err := eng.Run(gen); err != nil { // dispatches to RunBatch
				b.Fatal(err)
			}
		}
	})
	// Apples-to-apples with "scalar": the same pre-materialized op slice,
	// so the comparison isolates replay dispatch from generator cost
	// (the asymmetry noted in BENCH_PR3.json).
	b.Run("batched-pre", func(b *testing.B) {
		ops, err := workload.Generate(prof, cfg.Seed, nops)
		if err != nil {
			b.Fatal(err)
		}
		src := trace.NewSliceBatchSource(ops)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(cfg, prof, []byte("bench-key"))
			if err != nil {
				b.Fatal(err)
			}
			eng.SetKernels(true)
			src.Reset()
			if err := eng.RunBatch(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExpAllMemoized measures the overlapping Table IV + Figure 6
// + Figure 7 sweep with and without the cell cache: the grids share
// most of their cells, so the memoized run simulates each unique cell
// once and replays the rest.
func BenchmarkExpAllMemoized(b *testing.B) {
	sweep := func(b *testing.B, o harness.Options) {
		if _, _, err := harness.Table4(o); err != nil {
			b.Fatal(err)
		}
		if _, _, err := harness.Figure6(o); err != nil {
			b.Fatal(err)
		}
		if _, _, err := harness.Figure7(o); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := benchOpts()
			o.Memo = harness.NewCellMemo()
			sweep(b, o)
		}
	})
	b.Run("nomemo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, benchOpts())
		}
	})
}
