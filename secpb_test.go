package secpb

import (
	"strings"
	"testing"

	"secpb/internal/addr"
)

func TestPublicBenchmarkRun(t *testing.T) {
	res, err := RunBenchmark(DefaultConfig(), "povray", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Stores == 0 {
		t.Errorf("empty result: %+v", res)
	}
	if _, err := RunBenchmark(DefaultConfig(), "not-a-benchmark", 10); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPublicBenchmarkList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 18 {
		t.Fatalf("benchmarks = %d", len(names))
	}
	if len(Schemes()) != 6 {
		t.Fatalf("schemes = %d", len(Schemes()))
	}
}

func TestMachineStoreLoadRoundTrip(t *testing.T) {
	m, err := NewMachine(DefaultConfig(), []byte("api test"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store(0x1000, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(0x1008, 4, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	blk, err := m.Load(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if blk[0] != 0x88 || blk[7] != 0x11 || blk[8] != 0xFE || blk[9] != 0xCA {
		t.Errorf("block contents wrong: % x", blk[:12])
	}
	if m.Cycles() == 0 {
		t.Error("no time passed")
	}
	if m.Scheme() != SchemeCOBCM {
		t.Errorf("scheme = %v", m.Scheme())
	}
}

func TestMachineAccessValidation(t *testing.T) {
	m, _ := NewMachine(DefaultConfig(), []byte("k"))
	if err := m.Store(0x1001, 8, 1); err == nil {
		t.Error("misaligned store accepted")
	}
	if err := m.Store(0x1000, 0, 1); err == nil {
		t.Error("zero-size store accepted")
	}
	if err := m.Store(0x1000, 9, 1); err == nil {
		t.Error("oversize store accepted")
	}
}

func TestMachineCrashRecover(t *testing.T) {
	m, err := NewMachine(DefaultConfig(), []byte("crash"))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := m.Store(0x4000+i*8, 8, 0xF00D+i); err != nil {
			t.Fatal(err)
		}
	}
	if m.PendingEntries() == 0 {
		t.Fatal("nothing pending before crash")
	}
	rep, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("recovery not clean: %s", rep.Detail)
	}
	if rep.BlocksVerified == 0 || rep.BatteryCycles == 0 {
		t.Errorf("report: %+v", rep)
	}
	// Post-crash reads go through decrypt+verify.
	blk, err := m.ReadRecovered(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if blk[0] != 0x0D || blk[1] != 0xF0 {
		t.Errorf("recovered data wrong: % x", blk[:2])
	}
	// The machine refuses further execution.
	if err := m.Store(0x4000, 8, 1); err == nil {
		t.Error("store on crashed machine accepted")
	}
	if _, err := m.Load(0x4000); err == nil {
		t.Error("load on crashed machine accepted")
	}
	if err := m.Fence(); err == nil {
		t.Error("fence on crashed machine accepted")
	}
	if _, err := m.Crash(); err == nil {
		t.Error("double crash accepted")
	}
}

func TestMachineAllSchemes(t *testing.T) {
	for _, scheme := range Schemes() {
		m, err := NewMachine(DefaultConfig().WithScheme(scheme), []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 40; i++ {
			if err := m.Store(0x9000+i*16, 8, i); err != nil {
				t.Fatalf("%v: %v", scheme, err)
			}
		}
		rep, err := m.Crash()
		if err != nil || !rep.Clean {
			t.Fatalf("%v: crash = %+v, err %v", scheme, rep, err)
		}
	}
}

func TestBatteryFor(t *testing.T) {
	lazy, err := BatteryFor(SchemeCOBCM, 32)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := BatteryFor(SchemeNoGap, 32)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.SuperCapMM3 <= eager.SuperCapMM3 {
		t.Errorf("lazy battery %.2f not bigger than eager %.2f", lazy.SuperCapMM3, eager.SuperCapMM3)
	}
	if !strings.Contains(lazy.Name, "cobcm") {
		t.Errorf("name = %q", lazy.Name)
	}
	if _, err := BatteryFor(SchemeSP, 32); err == nil {
		t.Error("SP battery accepted")
	}
}

func TestMachineFenceAndStats(t *testing.T) {
	m, _ := NewMachine(DefaultConfig().WithScheme(SchemeNoGap), []byte("k"))
	m.Store(0x100, 8, 1)
	if err := m.Fence(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Stores != 1 {
		t.Errorf("stats stores = %d", st.Stores)
	}
}

func TestMachineGapCrashCorrupts(t *testing.T) {
	m, err := NewMachine(DefaultConfig(), []byte("gap"))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 60; i++ {
		if err := m.Store(0x7000+i*64, 8, i); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.SimulateGapCrash()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean {
		t.Fatal("the recoverability gap recovered cleanly — it must corrupt")
	}
	if _, err := m.SimulateGapCrash(); err == nil {
		t.Error("double gap crash accepted")
	}
}

func TestMachineAttacksDetected(t *testing.T) {
	for _, a := range Attacks() {
		m, err := NewMachine(DefaultConfig(), []byte("atk"))
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 50; i++ {
			if err := m.Store(0x8000+i*64, 8, i); err != nil {
				t.Fatal(err)
			}
		}
		detected, err := m.AttackAndDetect(a, 0x8000)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !detected {
			t.Errorf("attack %v undetected through public API", a)
		}
	}
}

func TestMachineTriage(t *testing.T) {
	m, err := NewMachine(DefaultConfig(), []byte("triage"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Triage(); err == nil {
		t.Error("triage on a live machine accepted; it inspects post-crash images")
	}
	for i := uint64(0); i < 40; i++ {
		if err := m.Store(0x9000+i*64, 8, i); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.Crash()
	if err != nil || !rep.Clean {
		t.Fatalf("crash not clean: %+v, %v", rep, err)
	}
	d, err := m.Triage()
	if err != nil {
		t.Fatal(err)
	}
	if d.Degraded() || d.Clean != d.Blocks || d.Blocks == 0 {
		t.Fatalf("clean image triaged degraded: %+v", d)
	}

	// Damage one recovered block's ciphertext; triage must quarantine
	// exactly it while the rest stays readable.
	victim := uint64(0x9000 + 7*64)
	if err := m.eng.Controller().PM().Tamper(addr.BlockOf(victim), 3); err != nil {
		t.Fatal(err)
	}
	d, err = m.Triage()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded() || d.Quarantined != 1 {
		t.Fatalf("tampered image: %+v", d)
	}
	if len(d.QuarantinedAddrs) != 1 || d.QuarantinedAddrs[0] != victim&^63 {
		t.Fatalf("quarantined %#x, want %#x", d.QuarantinedAddrs, victim)
	}
	if _, err := m.ReadRecovered(victim); err == nil {
		t.Error("quarantined block still readable through the secure path")
	}
	if _, err := m.ReadRecovered(0x9000); err != nil {
		t.Errorf("undamaged block unreadable after triage: %v", err)
	}
}

func TestMachineStressBattery(t *testing.T) {
	m, err := NewMachine(DefaultConfig(), []byte("api test"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.StressBattery(8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Saturated || rep.PeakPending != rep.Capacity {
		t.Errorf("pessimizer did not saturate the SecPB: peak %d of %d", rep.PeakPending, rep.Capacity)
	}
	if rep.BackpressureCycles == 0 {
		t.Error("no backpressure under the battery-drain pessimizer")
	}
	if rep.WorstDrainJ <= 0 || rep.WorstDrainJ > rep.ProvisionedJ {
		t.Errorf("worst-case drain %.2e J outside (0, provisioned %.2e J]", rep.WorstDrainJ, rep.ProvisionedJ)
	}
	// Saturated means the attack demand reaches the provisioned bound.
	if rep.WorstDrainJ != rep.ProvisionedJ {
		t.Errorf("saturated attack demand %.2e J != provisioned %.2e J", rep.WorstDrainJ, rep.ProvisionedJ)
	}
	// The machine survives the attack: it still serves stores and loads.
	if err := m.Store(0x2000, 8, 1); err != nil {
		t.Errorf("machine unusable after stress: %v", err)
	}
	if len(ZooBenchmarks()) == 0 {
		t.Error("zoo benchmark list empty")
	}
	if _, err := RunBenchmark(DefaultConfig(), "adv-battery", 2000); err != nil {
		t.Errorf("RunBenchmark rejects zoo workload: %v", err)
	}
}
