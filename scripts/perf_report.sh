#!/usr/bin/env bash
# Regenerates the raw measurements behind BENCH_PR1/PR2/PR3.json:
#   1. engine/crypto micro-benchmarks (ns/op), including the hash layer
#      (fast-path vs reference MAC/HashNode, per-walk vs batched BMT),
#   2. data-plane micro-benchmarks (paged table vs map, batched vs scalar
#      replay, AES-NI vs T-table pad generation, memoized sweep),
#   3. serial vs parallel table4 sweep wall-clock, with an output
#      byte-identity check across parallelism levels,
#   4. memoized vs unmemoized -exp all wall-clock, with a byte-identity
#      check between the two,
#   5. multi-core sharded stepping (BENCH_PR7.json): per-core-op cost as
#      the socket scales, the scheme x {1,8,64,256}-core battery grid
#      wall-clock, and a byte-identity check of the grid between a serial
#      run and a knobbed parallel run,
#   6. specialized kernels + persistent grid cache (BENCH_PR8.json):
#      BenchmarkEngineStore medians with kernels on, the kernel-vs-
#      generic replay ratio, and cold vs warm -memodir wall-clock with
#      byte-identity checks.
#
# Run on an idle machine; results land in /tmp/secpb-perf/. The JSON in
# BENCH_PR1.json is assembled by hand from these outputs together with a
# baseline run of the same benchmarks at the comparison commit (use a
# temporary `git worktree add` of the baseline so both trees are measured
# back-to-back under identical machine conditions).
set -euo pipefail
cd "$(dirname "$0")/.."

out=/tmp/secpb-perf
mkdir -p "$out"

echo "== micro-benchmarks =="
go test -bench 'BenchmarkEngineStore|BenchmarkEngineLoad|BenchmarkOTPGen|BenchmarkTable4Grid|BenchmarkEngineBBB|BenchmarkEngineCOBCM|BenchmarkEngineNoGap|BenchmarkEngineSP' \
    -benchtime 2s -run '^$' . | tee "$out/bench.txt"

echo "== hash-layer micro-benchmarks =="
go test -bench 'BenchmarkMAC$|BenchmarkMACReference$|BenchmarkHashNode$|BenchmarkHashNodeReference$|BenchmarkBMTUpdate$|BenchmarkBMTBatchDrain$' \
    -benchmem -benchtime 2s -run '^$' . | tee "$out/bench_hash.txt"

echo "== data-plane micro-benchmarks =="
go test -bench 'BenchmarkOTPGenReference$|BenchmarkPTableVsMap|BenchmarkRunBatchVsRun' \
    -benchmem -benchtime 2s -run '^$' . | tee "$out/bench_dataplane.txt"
go test -bench 'BenchmarkExpAllMemoized' -benchtime 1x -run '^$' . \
    | tee "$out/bench_memo.txt"

echo "== parallel data plane =="
# Multi-buffer MAC lanes vs the scalar fast path, the subtree-parallel
# BMT sweep vs serial (256 dirty leaves per op), and the batched replay
# with the OTP-prefetch pipeline. On 1-CPU hosts the parallel widths
# bound fork/join overhead rather than showing speedup — record the
# host's GOMAXPROCS next to these numbers.
go test -bench 'BenchmarkMACBatch|BenchmarkLaneCompression' \
    -benchmem -benchtime 2s -run '^$' ./internal/crypto/ | tee "$out/bench_maclanes.txt"
go test -bench 'BenchmarkSweepParallel' \
    -benchmem -benchtime 2s -run '^$' ./internal/bmt/ | tee "$out/bench_sweep.txt"
go test -bench 'BenchmarkRunBatchVsRun' \
    -benchmem -benchtime 2s -run '^$' . | tee "$out/bench_runbatch.txt"

echo "== table4 sweep: serial vs parallel =="
go build -o "$out/secpb-bench" ./cmd/secpb-bench
"$out/secpb-bench" -exp table4 -ops 60000 -parallel 1 \
    -timing "$out/timing_serial.json" > "$out/table4_serial.txt"
"$out/secpb-bench" -exp table4 -ops 60000 -parallel 0 \
    -timing "$out/timing_parallel.json" > "$out/table4_parallel.txt"

"$out/secpb-bench" -exp table4 -ops 60000 -parallel 0 -sweepworkers 8 -lanes 4 \
    > "$out/table4_parsweep.txt"

if diff -q "$out/table4_serial.txt" "$out/table4_parallel.txt" > /dev/null &&
    diff -q "$out/table4_serial.txt" "$out/table4_parsweep.txt" > /dev/null; then
    echo "output identical across parallelism, sweep-worker and lane levels"
else
    echo "ERROR: parallel output differs from serial" >&2
    exit 1
fi
cat "$out/timing_serial.json" "$out/timing_parallel.json"

echo "== exp all: memoized vs unmemoized =="
time "$out/secpb-bench" -exp all -ops 20000 -memo=false \
    > "$out/all_nomemo.txt" 2>&1
time "$out/secpb-bench" -exp all -ops 20000 \
    -timing "$out/timing_memo.json" > "$out/all_memo.txt" 2>&1

if diff -q "$out/all_nomemo.txt" "$out/all_memo.txt" > /dev/null; then
    echo "output identical with and without the cell memo"
else
    echo "ERROR: memoized output differs from unmemoized" >&2
    exit 1
fi
cat "$out/timing_memo.json"

echo "== multi-core sharded stepping =="
# Per-core-op cost as the socket scales: each core steps its own
# memory-channel shard between drain-epoch barriers, so total work grows
# linearly with the core count and the ns/op column divided by the core
# count exposes the sharding overhead. On 1-CPU hosts the parallel core
# stepping serializes (GOMAXPROCS=1), so this measures the serial epoch
# scheduler; byte-identity across worker counts is gated by
# TestSystemSerialParallelIdentity (forced GOMAXPROCS(4), in ci.sh under
# -race). Record GOMAXPROCS next to these numbers and re-run on a
# multi-core host for the wall-clock scaling curve in BENCH_PR7.json.
go test -bench 'BenchmarkSystemStep' -benchtime 2s -run '^$' \
    ./internal/engine/ | tee "$out/bench_system.txt"

# The battery-sizing grid end to end at paper scale (schemes x
# {1,8,64,256} cores), timed, then byte-diffed between a serial
# unmemoized run and a fully-knobbed parallel run.
"$out/secpb-bench" -exp multicore -ops 5000 -cores 1,8,64,256 -json \
    -parallel 1 -memo=false -timing "$out/timing_multicore.json" \
    > "$out/multicore_serial.json" 2>/dev/null
"$out/secpb-bench" -exp multicore -ops 5000 -cores 1,8,64,256 -json \
    -parallel 8 -sweepworkers 4 -lanes 4 \
    > "$out/multicore_knobs.json" 2>/dev/null
if diff -q "$out/multicore_serial.json" "$out/multicore_knobs.json" > /dev/null; then
    echo "multicore battery grid identical: serial vs parallel/knobbed"
else
    echo "ERROR: multicore grid differs between serial and knobbed runs" >&2
    exit 1
fi
cat "$out/timing_multicore.json"

echo "== specialized kernels + persistent grid cache =="
# The 100ns criterion: BenchmarkEngineStore, kernels on (the default),
# median of 5 x 2s runs. Noise on a 1-vCPU host is +/-15% — take the
# median, never a single run. BenchmarkRunBatchVsRun compares the
# columnar kernel replay (batched-pre) against the retained generic
# interpreter (scalar, kernels pinned off) on a replay-bound stream.
go test -bench 'BenchmarkEngineStore$' -benchmem -benchtime 2s -count 5 \
    -run '^$' . | tee "$out/bench_kernels.txt"
go test -bench 'BenchmarkRunBatchVsRun' -benchmem -benchtime 2s \
    -run '^$' . | tee "$out/bench_kernel_ratio.txt"

# Kernel-vs-oracle byte identity at the CLI, then the persistent cache:
# cold populates, warm must replay from disk byte-identically, and a
# byte flipped into every record must be rejected and recomputed.
"$out/secpb-bench" -exp table4 -ops 60000 -kernels=false \
    > "$out/table4_nokern.txt"
if ! diff -q "$out/table4_serial.txt" "$out/table4_nokern.txt" > /dev/null; then
    echo "ERROR: table4 differs with -kernels=false" >&2
    exit 1
fi
echo "table4 identical with and without specialized kernels"

rm -rf "$out/memod"
time "$out/secpb-bench" -exp all -ops 20000 -memodir "$out/memod" \
    -timing "$out/timing_cold.json" > "$out/all_cold.txt" 2>/dev/null
time "$out/secpb-bench" -exp all -ops 20000 -memodir "$out/memod" \
    -timing "$out/timing_warm.json" > "$out/all_warm.txt" 2>/dev/null
if ! diff -q "$out/all_cold.txt" "$out/all_warm.txt" > /dev/null; then
    echo "ERROR: warm -memodir run differs from cold" >&2
    exit 1
fi
for rec in "$out/memod"/*.spbc; do
    printf '\xff' | dd of="$rec" bs=1 seek=20 count=1 conv=notrunc status=none
done
"$out/secpb-bench" -exp all -ops 20000 -memodir "$out/memod" \
    > "$out/all_corrupt.txt" 2>/dev/null
if ! diff -q "$out/all_cold.txt" "$out/all_corrupt.txt" > /dev/null; then
    echo "ERROR: output differs after cache corruption (stale record trusted?)" >&2
    exit 1
fi
echo "exp all identical: cold vs warm vs corrupted -memodir"
cat "$out/timing_cold.json" "$out/timing_warm.json"
