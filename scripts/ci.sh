#!/usr/bin/env bash
# CI gate: build everything, vet, and run the full test suite under the
# race detector. The parallel experiment runner makes races possible in
# principle, so -race is part of the standard gate.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
