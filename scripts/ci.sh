#!/usr/bin/env bash
# CI gate: build everything, vet, and run the full test suite under the
# race detector. The parallel experiment runner makes races possible in
# principle, so -race is part of the standard gate.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Benchmarks must at least compile and run one iteration: the perf
# report scripts depend on them, and a bench-only regression would
# otherwise go unnoticed until the next perf run.
go test -run '^$' -bench . -benchtime 1x ./...

# Crypto differential fuzzers on their seed corpora: the fast SHA-512
# path must agree with the hand-rolled reference on every gate run.
go test -run Fuzz ./internal/crypto/...
