#!/usr/bin/env bash
# CI gate: build everything, vet, and run the full test suite under the
# race detector. The parallel experiment runner makes races possible in
# principle, so -race is part of the standard gate.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# Formatting gate: gofmt disagreements are build breaks here, not
# review nits.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "ERROR: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go test -race ./...

# Exact-zero allocation pins for the kernel hot paths. These carry a
# !race build tag — race instrumentation allocates on its own — so they
# need this uninstrumented pass to run at all.
go test -run 'ZeroAlloc' . ./internal/crypto/ ./internal/nvm/

# Benchmarks must at least compile and run one iteration: the perf
# report scripts depend on them, and a bench-only regression would
# otherwise go unnoticed until the next perf run.
go test -run '^$' -bench . -benchtime 1x ./...

# Differential fuzzers on their seed corpora: the fast SHA-512 and
# AES-NI OTP paths must agree with their hand-rolled references (the
# interleaved multi-buffer MAC lanes included, via FuzzMACLanesVsScalar),
# the paged table and the persist buffer must agree with their map
# models, and every seeded corruption must be flagged, on every gate run.
go test -run Fuzz ./internal/crypto/... ./internal/ptable/... \
    ./internal/pb/... ./internal/recovery/... ./internal/trace/...

# Parallel data plane: the subtree-parallel BMT sweep, the interleaved
# MAC lanes, and the OTP-prefetch replay pipeline must produce results
# identical to the serial paths — and do so race-free. These tests force
# GOMAXPROCS>=2 internally so the parallel code engages even on 1-CPU
# hosts.
go test -race \
    -run 'TestParallelSweepMatchesSerial|TestRunBatchPrefetchMatchesScalar|TestArtifactIdentityParallelSweep|TestCrashMatrixParallelSweepIdentity|TestFaultSweepParallelSweepIdentity' \
    ./internal/bmt/ ./internal/engine/ ./internal/harness/ \
    ./internal/crashsim/ ./internal/recovery/


# Determinism gate: the table4 artifact must be byte-identical between a
# serial run and a parallel memoized run — the cell memo and the worker
# pool are pure replay optimizations and may never leak into output.
tmp=$(mktemp -d)
serve_pid=""
trap '[ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null; rm -rf "$tmp"' EXIT
go build -o "$tmp/secpb-bench" ./cmd/secpb-bench
"$tmp/secpb-bench" -exp table4 -ops 5000 -parallel 1 -memo=false \
    > "$tmp/table4_serial.txt" 2>&1
"$tmp/secpb-bench" -exp table4 -ops 5000 -parallel 0 \
    > "$tmp/table4_parallel.txt" 2>&1
if ! diff -q "$tmp/table4_serial.txt" "$tmp/table4_parallel.txt"; then
    echo "ERROR: parallel memoized table4 differs from serial unmemoized" >&2
    exit 1
fi
echo "table4 identical: serial/-memo=false vs parallel/memoized"

# ... and across the parallel-data-plane knobs: sweep workers and MAC
# lane width are wall-clock strategies, never allowed to leak into the
# artifact bytes.
for knobs in "-parallel 4 -sweepworkers 4 -lanes 4" "-parallel 8 -sweepworkers 8 -lanes 2" "-parallel 4 -cores 1" "-parallel 4 -kernels=false"; do
    # shellcheck disable=SC2086
    "$tmp/secpb-bench" -exp table4 -ops 5000 $knobs \
        > "$tmp/table4_knobs.txt" 2>&1
    if ! diff -q "$tmp/table4_parallel.txt" "$tmp/table4_knobs.txt"; then
        echo "ERROR: table4 differs under $knobs" >&2
        exit 1
    fi
done
echo "table4 identical across sweep-worker, MAC-lane, -cores and -kernels settings"

# Persistent cell-cache gate: a warm -memodir run must replay from disk
# byte-identically, and a corrupted record must be rejected and
# recomputed — never trusted — still yielding identical bytes.
"$tmp/secpb-bench" -exp table4 -ops 5000 -memodir "$tmp/memod" \
    > "$tmp/table4_cold.txt" 2>&1
"$tmp/secpb-bench" -exp table4 -ops 5000 -memodir "$tmp/memod" \
    > "$tmp/table4_warm.txt" 2>&1
if ! diff -q "$tmp/table4_cold.txt" "$tmp/table4_warm.txt"; then
    echo "ERROR: warm -memodir table4 differs from cold run" >&2
    exit 1
fi
if ! diff -q "$tmp/table4_parallel.txt" "$tmp/table4_warm.txt"; then
    echo "ERROR: -memodir table4 differs from uncached run" >&2
    exit 1
fi
# Flip one byte mid-record in every cached cell: all must be rejected.
for rec in "$tmp/memod"/*.spbc; do
    printf '\xff' | dd of="$rec" bs=1 seek=20 count=1 conv=notrunc status=none
done
"$tmp/secpb-bench" -exp table4 -ops 5000 -memodir "$tmp/memod" \
    > "$tmp/table4_corrupt.txt" 2>&1
if ! diff -q "$tmp/table4_cold.txt" "$tmp/table4_corrupt.txt"; then
    echo "ERROR: table4 differs after cache corruption (stale record trusted?)" >&2
    exit 1
fi
echo "table4 identical: cold vs warm vs corrupted -memodir"

# Multi-core smoke, race-clean: the cores=2 exhaustive crash matrix with
# both negative drain/merge-order controls, the cross-core fault sweep,
# and the serial-vs-parallel core-stepping identity.
go test -race \
    -run 'TestSystemMatrixExhaustive|TestSystemNegativePermuted|TestSystemFaultSweep|TestSystemSerialParallelIdentity|TestSystemSingleCore|TestDrainSystem' \
    ./internal/engine/ ./internal/crashsim/ ./internal/recovery/

# Multi-core determinism gate: the battery-sizing grid must be
# byte-identical between a serial unmemoized run and a parallel run with
# every data-plane knob turned — core stepping, sweep workers, MAC lanes
# and the cell memo are all wall-clock strategies, never artifact bits.
"$tmp/secpb-bench" -exp multicore -ops 2000 -cores 1,2,4 -parallel 1 -memo=false \
    > "$tmp/multicore_serial.txt" 2>&1
"$tmp/secpb-bench" -exp multicore -ops 2000 -cores 1,2,4 -parallel 8 -sweepworkers 4 -lanes 4 \
    > "$tmp/multicore_knobs.txt" 2>&1
if ! diff -q "$tmp/multicore_serial.txt" "$tmp/multicore_knobs.txt"; then
    echo "ERROR: multicore battery grid differs between serial and knobbed parallel runs" >&2
    exit 1
fi
echo "multicore battery grid identical: serial vs parallel/knobbed"

# Crash-matrix smoke: every SecPB scheme survives a fixed-seed set of
# injected power failures on a short trace, recovering byte-identically
# to the golden model. The full-budget sweep is TestCrashMatrixFull.
go build -o "$tmp/secpb-crash" ./cmd/secpb-crash
"$tmp/secpb-crash" -schemes all -bench gcc -ops 1200 -points 30 -seed 42 \
    -out "$tmp/crash-matrix.json"
# The crash matrix is kernel-agnostic: crash-sink runs disengage the
# specialized kernels automatically, and the healthy golden replays
# must be identical either way.
"$tmp/secpb-crash" -schemes all -bench gcc -ops 1200 -points 30 -seed 42 \
    -kernels=false -out "$tmp/crash-matrix-nokern.json"
if ! diff -q "$tmp/crash-matrix.json" "$tmp/crash-matrix-nokern.json"; then
    echo "ERROR: crash matrix differs with -kernels=false" >&2
    exit 1
fi
echo "crash matrix identical with and without specialized kernels"

# Degraded-mode smoke: the fixed-seed fault sweep (six schemes across
# clean / torn-write / bit-rot media) plus the nested battery-exhaustion
# crash tests, then a secpb-heal grid on faulty media under a budgeted
# battery. The full-length sweep runs without -short in the suite above.
go test -short -race -run 'TestFaultSweep|TestNested' ./internal/recovery/ ./internal/crashsim/
go build -o "$tmp/secpb-heal" ./cmd/secpb-heal
"$tmp/secpb-heal" -schemes all -bench gcc -ops 1500 -faultrate 0.05 -budget 3 \
    -seed 42 -out "$tmp/heal-matrix.json"

# SPB2 trace-format gate: gen -> convert -> dump must round-trip the
# ops exactly between the flat SPB1 and segmented-columnar SPB2
# encodings, and SPB2 must earn its keep (>=2x smaller) on a zoo trace.
go build -o "$tmp/secpb-trace" ./cmd/secpb-trace
"$tmp/secpb-trace" gen -bench kvheavy -ops 40000 -seed 13 -format spb1 -o "$tmp/kv.spb"
"$tmp/secpb-trace" gen -bench kvheavy -ops 40000 -seed 13 -format spb2 -o "$tmp/kv.spb2"
"$tmp/secpb-trace" convert -i "$tmp/kv.spb" -o "$tmp/kv_conv.spb2"
if ! diff -q "$tmp/kv.spb2" "$tmp/kv_conv.spb2"; then
    echo "ERROR: convert(spb1) differs from direct spb2 generation" >&2
    exit 1
fi
"$tmp/secpb-trace" dump -i "$tmp/kv.spb" > "$tmp/kv1.txt"
"$tmp/secpb-trace" dump -i "$tmp/kv.spb2" > "$tmp/kv2.txt"
if ! diff -q "$tmp/kv1.txt" "$tmp/kv2.txt"; then
    echo "ERROR: SPB1 and SPB2 dumps of the same trace differ" >&2
    exit 1
fi
spb1_size=$(wc -c < "$tmp/kv.spb")
spb2_size=$(wc -c < "$tmp/kv.spb2")
if [ $((spb2_size * 2)) -gt "$spb1_size" ]; then
    echo "ERROR: SPB2 ($spb2_size B) is not >=2x smaller than SPB1 ($spb1_size B)" >&2
    exit 1
fi
echo "SPB2 round-trips exactly and is >=2x smaller than SPB1 ($spb1_size -> $spb2_size bytes)"

# Zoo replay-identity gate: the zoo artifact must be byte-identical
# between live generation and SPB2 replay of recorded traces, across
# the parallelism and kernel knobs.
"$tmp/secpb-bench" -exp zoo -ops 3000 -parallel 1 -memo=false \
    > "$tmp/zoo_live.txt" 2>&1
"$tmp/secpb-bench" -exp zoo -ops 3000 -record -tracedir "$tmp/traces" \
    > "$tmp/zoo_recorded.txt" 2>&1
"$tmp/secpb-bench" -exp zoo -ops 3000 -tracedir "$tmp/traces" -parallel 4 -kernels=false \
    > "$tmp/zoo_replay.txt" 2>&1
for f in "$tmp/zoo_recorded.txt" "$tmp/zoo_replay.txt"; do
    # Strip the record-phase progress line before comparing.
    grep -v '^recorded ' "$f" > "$f.clean"
    if ! diff -q "$tmp/zoo_live.txt" "$f.clean"; then
        echo "ERROR: zoo artifact differs between live generation and SPB2 replay ($f)" >&2
        exit 1
    fi
done
echo "zoo artifact identical: live generators vs recorded SPB2 replay"

# Streaming-service smoke gate: stream a zoo trace into a live
# secpb-serve, kill -9 the process mid-stream, restart it on the same
# data directory, resume the session from its durable cursor (uploads
# are idempotent, so replaying from segment 0 is also correct), and
# require the finalized result to be byte-identical to a batch
# `secpb-trace run` of the same trace.
go build -o "$tmp/secpb-serve" ./cmd/secpb-serve
"$tmp/secpb-trace" gen -bench kvstore -ops 4000 -seed 21 -segops 256 -o "$tmp/stream.spb2"
"$tmp/secpb-trace" split -i "$tmp/stream.spb2" -d "$tmp/segs"
"$tmp/secpb-trace" run -i "$tmp/stream.spb2" -scheme cobcm -bench kvstore -seed 21 \
    -o "$tmp/golden.json"

wait_for_addr() {
    local file=$1 i
    for i in $(seq 1 100); do
        [ -s "$file" ] && return 0
        sleep 0.1
    done
    echo "ERROR: secpb-serve did not write $file" >&2
    return 1
}

"$tmp/secpb-serve" -addr 127.0.0.1:0 -data "$tmp/served" -addrfile "$tmp/addr1" \
    2> "$tmp/serve1.log" &
serve_pid=$!
wait_for_addr "$tmp/addr1"
addr=$(tr -d '\n' < "$tmp/addr1")
curl -fsS -X POST "http://$addr/v1/sessions" \
    -d '{"name":"smoke","scheme":"cobcm","bench":"kvstore","seed":21}' > /dev/null
segs=("$tmp/segs"/seg-*.spb2)
half=$(( ${#segs[@]} / 2 ))
for i in $(seq 0 $((half - 1))); do
    curl -fsS -X PUT --data-binary @"${segs[$i]}" \
        "http://$addr/v1/sessions/smoke/segments/$i" > /dev/null
done
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true

"$tmp/secpb-serve" -addr 127.0.0.1:0 -data "$tmp/served" -addrfile "$tmp/addr2" \
    2> "$tmp/serve2.log" &
serve_pid=$!
wait_for_addr "$tmp/addr2"
addr=$(tr -d '\n' < "$tmp/addr2")
durable=$(curl -fsS "http://$addr/v1/sessions/smoke" \
    | sed -n 's/.*"durable_segs":\([0-9]*\).*/\1/p')
echo "secpb-serve killed after $half uploads, resumed with $durable durable segments"
for i in $(seq "$durable" $(( ${#segs[@]} - 1 ))); do
    curl -fsS -X PUT --data-binary @"${segs[$i]}" \
        "http://$addr/v1/sessions/smoke/segments/$i" > /dev/null
done
curl -fsS -X POST "http://$addr/v1/sessions/smoke/finalize" > /dev/null
curl -fsS "http://$addr/v1/sessions/smoke/result" > "$tmp/streamed.json"
curl -fsS "http://$addr/metrics" | grep -q '^secpb_segments_accepted_total' || {
    echo "ERROR: /metrics is missing the ingest counters" >&2
    exit 1
}
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
if ! diff -q "$tmp/golden.json" "$tmp/streamed.json"; then
    echo "ERROR: streamed session result differs from batch replay after kill -9" >&2
    exit 1
fi
echo "streamed session byte-identical to batch replay across a kill -9 restart"

# Service kill matrix: 50 sampled in-process kill points per scheme
# across two schemes (>=100 total), each resumed and differentially
# verified against the golden committed prefix, plus a
# tampered-checkpoint negative control per cell.
"$tmp/secpb-crash" -service -schemes sp,cobcm -bench gcc -ops 3200 -segops 64 \
    -points 50 -seed 42 -out "$tmp/service-matrix.json"
