package runner

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoComputesOnce(t *testing.T) {
	m := NewMemo[string, int]()
	var calls atomic.Int64
	for i := 0; i < 5; i++ {
		v, hit, err := m.Do("k", func() (int, error) {
			calls.Add(1)
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Fatalf("Do = (%d, %v), want (42, nil)", v, err)
		}
		if wantHit := i > 0; hit != wantHit {
			t.Errorf("call %d: hit = %v, want %v", i, hit, wantHit)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if hits, misses := m.Stats(); hits != 4 || misses != 1 {
		t.Errorf("Stats = (%d, %d), want (4, 1)", hits, misses)
	}
}

func TestMemoCollapsesConcurrentDuplicates(t *testing.T) {
	m := NewMemo[int, int]()
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 8

	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := m.Do(7, func() (int, error) {
				calls.Add(1)
				<-release // hold the computation open so others pile up
				return 99, nil
			})
			if err != nil || v != 99 {
				t.Errorf("Do = (%d, %v), want (99, nil)", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times under concurrency, want 1", n)
	}
}

func TestMemoDoesNotCacheErrors(t *testing.T) {
	m := NewMemo[string, int]()
	boom := errors.New("boom")
	if _, _, err := m.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := m.Do("k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 || hit {
		t.Fatalf("retry after error: Do = (%d, %v, hit=%v), want (5, nil, false)", v, err, hit)
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	m := NewMemo[int, int]()
	for k := 0; k < 10; k++ {
		v, hit, err := m.Do(k, func() (int, error) { return k * k, nil })
		if err != nil || v != k*k || hit {
			t.Fatalf("key %d: Do = (%d, %v, hit=%v)", k, v, err, hit)
		}
	}
}
