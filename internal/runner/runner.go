// Package runner is a bounded worker pool for fanning out independent
// simulation jobs. Every experiment in the harness is a grid of
// (config, profile) simulations with no shared state; runner executes
// such grids concurrently while keeping the results in deterministic
// input order, so a parallel sweep produces byte-identical artifacts to
// a serial one.
//
// Cancellation is cooperative: the first job error cancels the pool's
// context, queued jobs are abandoned, and Map returns the error of the
// lowest-indexed failing job (deterministic regardless of scheduling).
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when the caller passes
// workers <= 0: the process's GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn over every item with at most workers goroutines and
// returns the results in input order. fn receives the item's index so it
// can label work without shared state.
//
// On error, the pool context is cancelled, remaining unstarted jobs are
// skipped, and Map returns the error from the lowest-indexed failed job
// after all in-flight jobs finish. A cancelled ctx yields ctx.Err().
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(items) {
		workers = len(items)
	}

	if workers == 1 {
		// Serial fast path: no goroutines, same semantics.
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			r, err := fn(ctx, i, item)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next item index to claim
		mu       sync.Mutex
		firstErr error
		errIdx   = len(items) // index of the lowest-indexed error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				r, err := fn(ctx, i, items[i])
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	return results, firstErr
}
