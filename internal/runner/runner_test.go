package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndValues(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 7, 64, 1000} {
		got, err := Map(context.Background(), workers, items, func(_ context.Context, i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, nil, func(_ context.Context, i, v int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapFirstErrorIsLowestIndex(t *testing.T) {
	items := make([]int, 50)
	boom := func(i int) error { return fmt.Errorf("job %d failed", i) }
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), workers, items, func(_ context.Context, i, _ int) (int, error) {
			if i == 7 || i == 23 {
				return 0, boom(i)
			}
			return 0, nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("workers=%d: err = %v, want job 7 failed", workers, err)
		}
	}
}

// TestMapErrorAbortsPromptly asserts an injected failure stops the pool
// from starting the long tail of queued jobs.
func TestMapErrorAbortsPromptly(t *testing.T) {
	const n = 10_000
	items := make([]int, n)
	var ran atomic.Int64
	_, err := Map(context.Background(), 8, items, func(ctx context.Context, i, _ int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("injected")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Workers check ctx before running a claimed job, so only jobs
	// claimed before the cancellation propagated can run: a small
	// multiple of the worker count, never the whole queue.
	if got := ran.Load(); got > n/10 {
		t.Errorf("ran %d of %d jobs after early failure", got, n)
	}
}

func TestMapRespectsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := make([]int, 32)
	var ran atomic.Int64
	_, err := Map(ctx, 4, items, func(_ context.Context, i, _ int) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d jobs ran under a pre-cancelled context", ran.Load())
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
