package runner

import "sync"

// Memo is a concurrency-safe, content-keyed result cache with
// duplicate-collapse. The first caller of Do for a key computes the
// value; every other caller — concurrent or later — blocks until that
// computation finishes and shares its result. Experiment grids use it
// to simulate each unique cell once: the paper's figures re-run many
// identical (scheme, size, benchmark) cells, and because a simulation
// is a pure function of its inputs, replaying the cached result is
// indistinguishable from recomputing it.
type Memo[K comparable, V any] struct {
	mu     sync.Mutex
	cells  map[K]*memoCell[V]
	hits   uint64
	misses uint64
}

// memoCell is one in-flight or completed computation. done is closed
// when val/err are final.
type memoCell[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewMemo returns an empty memo.
func NewMemo[K comparable, V any]() *Memo[K, V] {
	return &Memo[K, V]{cells: make(map[K]*memoCell[V])}
}

// Do returns the memoized value for key, computing it with fn on the
// first call. hit reports whether an existing (possibly still in
// flight) computation was reused. A computation that fails is not
// cached: concurrent waiters observe the error, but a later Do retries.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (val V, hit bool, err error) {
	m.mu.Lock()
	if c, ok := m.cells[key]; ok {
		m.hits++
		m.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &memoCell[V]{done: make(chan struct{})}
	m.cells[key] = c
	m.misses++
	m.mu.Unlock()

	c.val, c.err = fn()
	if c.err != nil {
		m.mu.Lock()
		delete(m.cells, key)
		m.mu.Unlock()
	}
	close(c.done)
	return c.val, false, c.err
}

// Stats returns cumulative (hits, misses). A hit counted against an
// in-flight computation still waited for the real simulation; the
// wall-clock win is that it did not run a second one.
func (m *Memo[K, V]) Stats() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}
