package runner

import "sync"

// Memo is a concurrency-safe, content-keyed result cache with
// duplicate-collapse. The first caller of Do for a key computes the
// value; every other caller — concurrent or later — blocks until that
// computation finishes and shares its result. Experiment grids use it
// to simulate each unique cell once: the paper's figures re-run many
// identical (scheme, size, benchmark) cells, and because a simulation
// is a pure function of its inputs, replaying the cached result is
// indistinguishable from recomputing it.
type Memo[K comparable, V any] struct {
	mu     sync.Mutex
	cells  map[K]*memoCell[V]
	store  MemoStore[K, V]
	hits   uint64
	misses uint64

	storeHits  uint64
	storeSaves uint64
}

// MemoStore is an optional second-level backing store consulted on
// in-memory misses — typically a persistent on-disk cache, so repeat
// grids across processes skip simulation entirely. Load reports
// whether it holds a usable value for key; any unusable record
// (missing, truncated, corrupt, stale version) is simply a miss — the
// memo falls back to computing, then Save overwrites. Load and Save
// are never called concurrently for the same key (the memo's
// duplicate-collapse guarantees one flight per key) but may be called
// concurrently for different keys.
type MemoStore[K comparable, V any] interface {
	Load(key K) (V, bool)
	Save(key K, val V)
}

// SetStore attaches a backing store. It must be called before the memo
// is shared across goroutines (stores are consulted without the memo
// lock held).
func (m *Memo[K, V]) SetStore(s MemoStore[K, V]) { m.store = s }

// memoCell is one in-flight or completed computation. done is closed
// when val/err are final.
type memoCell[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewMemo returns an empty memo.
func NewMemo[K comparable, V any]() *Memo[K, V] {
	return &Memo[K, V]{cells: make(map[K]*memoCell[V])}
}

// Do returns the memoized value for key, computing it with fn on the
// first call. hit reports whether an existing (possibly still in
// flight) computation was reused. A computation that fails is not
// cached: concurrent waiters observe the error, but a later Do retries.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (val V, hit bool, err error) {
	m.mu.Lock()
	if c, ok := m.cells[key]; ok {
		m.hits++
		m.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &memoCell[V]{done: make(chan struct{})}
	m.cells[key] = c
	m.misses++
	m.mu.Unlock()

	if m.store != nil {
		if v, ok := m.store.Load(key); ok {
			c.val = v
			close(c.done)
			m.mu.Lock()
			m.storeHits++
			m.mu.Unlock()
			return c.val, true, nil
		}
	}

	c.val, c.err = fn()
	if c.err != nil {
		m.mu.Lock()
		delete(m.cells, key)
		m.mu.Unlock()
	} else if m.store != nil {
		m.store.Save(key, c.val)
		m.mu.Lock()
		m.storeSaves++
		m.mu.Unlock()
	}
	close(c.done)
	return c.val, false, c.err
}

// StoreStats returns cumulative backing-store (hits, saves): cells
// served from the store without computing, and computed cells written
// back. Both zero when no store is attached.
func (m *Memo[K, V]) StoreStats() (hits, saves uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.storeHits, m.storeSaves
}

// Stats returns cumulative (hits, misses). A hit counted against an
// in-flight computation still waited for the real simulation; the
// wall-clock win is that it did not run a second one.
func (m *Memo[K, V]) Stats() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}
