package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// Satellite coverage for the degenerate SegReader inputs the streaming
// service and the convert CLI must reject typed: empty file, zero
// segments, trailing garbage. Plus the ScanSegments framing contract.

func TestSegReaderEmptyFile(t *testing.T) {
	sr := NewSegReader(bytes.NewReader(nil))
	_, err := sr.ReadAll()
	var ee *EmptyTraceError
	if !errors.As(err, &ee) {
		t.Fatalf("empty file: error %T (%v), want *EmptyTraceError", err, err)
	}
	// Same through the scalar Read path.
	sr = NewSegReader(bytes.NewReader(nil))
	if _, err := sr.Read(); !errors.As(err, &ee) {
		t.Fatalf("empty file Read: %T (%v), want *EmptyTraceError", err, err)
	}
}

func TestSegReaderZeroSegments(t *testing.T) {
	// A header-only stream is a valid empty trace: ReadSegment reports
	// clean io.EOF, ReadAll yields zero ops and no error.
	enc := encodeSPB2(t, nil, 64)
	if len(enc) != SPB2HeaderLen {
		t.Fatalf("empty trace encodes to %d bytes, want header only (%d)", len(enc), SPB2HeaderLen)
	}
	sr := NewSegReader(bytes.NewReader(enc))
	b := NewBatch(8)
	if err := sr.ReadSegment(b); err != io.EOF {
		t.Fatalf("ReadSegment on zero-segment stream: %v, want io.EOF", err)
	}
	sr = NewSegReader(bytes.NewReader(enc))
	ops, err := sr.ReadAll()
	if err != nil || len(ops) != 0 {
		t.Fatalf("ReadAll on zero-segment stream: %d ops, %v", len(ops), err)
	}
}

func TestSegReaderTrailingGarbage(t *testing.T) {
	ops := genOps(200)
	enc := encodeSPB2(t, ops, 64)
	for _, tail := range [][]byte{
		{0x01},                   // length varint promising bytes that never come
		{0xff, 0xff, 0xff, 0xff}, // unterminated varint
		{0x00},                   // empty segment frame with no seal
		bytes.Repeat([]byte{0xaa}, 32),
	} {
		mut := append(bytes.Clone(enc), tail...)
		sr := NewSegReader(bytes.NewReader(mut))
		got, err := sr.ReadAll()
		requireCorrupt(t, err, "trailing garbage")
		// Everything before the garbage still decodes exactly.
		opsEqual(t, got, ops, "prefix before trailing garbage")
	}
}

// ScanSegments must reproduce the exact stored frames: header plus the
// concatenated frames is byte-identical to the original stream, and a
// frame spliced onto a fresh header decodes alone.
func TestScanSegmentsRoundTrip(t *testing.T) {
	ops := genOps(500)
	enc := encodeSPB2(t, ops, 128)
	rebuilt := SPB2Header()
	var frames [][]byte
	n, err := ScanSegments(bytes.NewReader(enc), func(seg int, frame []byte) error {
		if seg != len(frames) {
			t.Fatalf("segment ordinal %d, want %d", seg, len(frames))
		}
		frames = append(frames, bytes.Clone(frame))
		rebuilt = append(rebuilt, frame...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frames) || n != (len(ops)+127)/128 {
		t.Fatalf("scanned %d segments, want %d", n, (len(ops)+127)/128)
	}
	if !bytes.Equal(rebuilt, enc) {
		t.Fatal("header + frames does not reassemble the original stream")
	}
	// Each frame is independently decodable on a fresh header.
	var all []Op
	for i, frame := range frames {
		sr := NewSegReader(bytes.NewReader(append(SPB2Header(), frame...)))
		got, err := sr.ReadAll()
		if err != nil {
			t.Fatalf("frame %d alone: %v", i, err)
		}
		all = append(all, got...)
	}
	opsEqual(t, all, ops, "per-frame decode")
}

func TestScanSegmentsRejects(t *testing.T) {
	ops := genOps(120)
	enc := encodeSPB2(t, ops, 64)

	if _, err := ScanSegments(bytes.NewReader(nil), nil); err == nil {
		t.Fatal("empty input scanned silently")
	} else {
		var ee *EmptyTraceError
		if !errors.As(err, &ee) {
			t.Fatalf("empty input: %T, want *EmptyTraceError", err)
		}
	}
	if n, err := ScanSegments(bytes.NewReader(SPB2Header()), nil); err != nil || n != 0 {
		t.Fatalf("header-only: n=%d err=%v, want clean 0", n, err)
	}

	bad := [][]byte{
		[]byte("XXXX\x01"),                   // wrong magic
		append(bytes.Clone(enc), 0x05, 0x01), // trailing garbage
		flipByte(enc, len(enc)/2),            // body damage
		flipByte(enc, SPB2HeaderLen),         // first frame's length varint
		enc[:len(enc)-3],                     // truncated final seal
	}
	for i, mut := range bad {
		if _, err := ScanSegments(bytes.NewReader(mut), nil); err == nil {
			t.Errorf("damaged stream %d scanned silently", i)
		} else {
			var ce *CorruptTraceError
			if !errors.As(err, &ce) {
				t.Errorf("damaged stream %d: %T (%v), want *CorruptTraceError", i, err, err)
			}
		}
	}

	// Callback errors propagate as-is.
	sentinel := errors.New("stop here")
	if _, err := ScanSegments(bytes.NewReader(enc), func(seg int, frame []byte) error {
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("callback error: %v, want sentinel", err)
	}
}

func flipByte(b []byte, i int) []byte {
	c := bytes.Clone(b)
	c[i] ^= 0xff
	return c
}
