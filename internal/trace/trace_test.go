package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"secpb/internal/xrand"
)

func randomOps(seed uint64, n int) []Op {
	r := xrand.New(seed)
	ops := make([]Op, n)
	for i := range ops {
		switch r.Intn(10) {
		case 0:
			ops[i] = Op{Kind: Fence}
		case 1, 2, 3:
			size := uint8(1) << r.Intn(4)
			ops[i] = Op{
				Kind: Load,
				Addr: (r.Uint64() % (1 << 30)) &^ (uint64(size) - 1),
				Size: size,
				Gap:  uint32(r.Intn(100)),
			}
		default:
			size := uint8(1) << r.Intn(4)
			ops[i] = Op{
				Kind: Store,
				Addr: (r.Uint64() % (1 << 30)) &^ (uint64(size) - 1),
				Size: size,
				Data: r.Uint64() >> (64 - 8*uint(size)),
				Gap:  uint32(r.Intn(100)),
			}
		}
	}
	return ops
}

func TestBinaryRoundTrip(t *testing.T) {
	ops := randomOps(1, 5000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5000 {
		t.Errorf("Count = %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("read %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: got %+v want %+v", i, got[i], ops[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty trace read %d ops", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("XXXX....")))
	if _, err := r.Read(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Op{Kind: Store, Addr: 0x1000, Size: 8, Data: 42}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 5; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.Read(); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestWriterRejectsInvalidOp(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Op{Kind: Store, Addr: 0, Size: 0}); err == nil {
		t.Error("size-0 store accepted")
	}
	if err := w.Write(Op{Kind: Store, Addr: 1, Size: 8, Data: 1}); err == nil {
		t.Error("misaligned store accepted")
	}
	if err := w.Write(Op{Kind: Kind(9), Size: 8}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	ops := randomOps(7, 500)
	for _, op := range ops {
		got, err := ParseText(FormatText(op))
		if err != nil {
			t.Fatalf("%q: %v", FormatText(op), err)
		}
		if got != op {
			t.Fatalf("text round trip: got %+v want %+v", got, op)
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	bad := []string{
		"", "bogus 0x1 2", "st 0x1000 8", "ld 0x1000", "st zz 8 0x0 gap=1",
		"ld 0x1000 3 gap=x", "st 0x1001 8 0x0 gap=0",
	}
	for _, line := range bad {
		if _, err := ParseText(line); err == nil {
			t.Errorf("ParseText(%q) succeeded", line)
		}
	}
}

func TestOpInstructions(t *testing.T) {
	op := Op{Kind: Load, Addr: 0, Size: 8, Gap: 9}
	if op.Instructions() != 10 {
		t.Errorf("Instructions = %d, want 10", op.Instructions())
	}
}

func TestValidateProperty(t *testing.T) {
	// Every op produced by the random generator must validate.
	check := func(seed uint64) bool {
		for _, op := range randomOps(seed, 50) {
			if err := op.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSliceSource(t *testing.T) {
	ops := randomOps(3, 10)
	src := NewSliceSource(ops)
	var got []Op
	for {
		op, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, op)
	}
	if len(got) != 10 {
		t.Fatalf("drained %d ops", len(got))
	}
	if _, ok := src.Next(); ok {
		t.Error("Next after exhaustion returned ok")
	}
	src.Reset()
	if op, ok := src.Next(); !ok || op != ops[0] {
		t.Error("Reset did not rewind")
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "ld" || Store.String() != "st" || Fence.String() != "fence" {
		t.Error("kind mnemonics wrong")
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	ops := randomOps(1, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(io.Discard)
		for _, op := range ops {
			_ = w.Write(op)
		}
		_ = w.Flush()
	}
}

func BenchmarkReaderThroughput(b *testing.B) {
	ops := randomOps(1, 1000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, op := range ops {
		_ = w.Write(op)
	}
	_ = w.Flush()
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(raw))
		if _, err := r.ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}
