package trace

import (
	"testing"

	"secpb/internal/xrand"
)

func reorderInput(seed uint64, n int) []Op {
	r := xrand.New(seed)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		if i%37 == 36 {
			ops = append(ops, Op{Kind: Fence})
			continue
		}
		ops = append(ops, Op{
			Kind: Store,
			Addr: uint64(r.Intn(16)) * 64, // 16 blocks, word 0
			Size: 8,
			Data: uint64(i),
			Gap:  uint32(r.Intn(5)),
		})
	}
	return ops
}

func TestReorderPreservesMultiset(t *testing.T) {
	in := reorderInput(1, 500)
	out := Reorder(in, 8, 2)
	if len(out) != len(in) {
		t.Fatalf("length changed: %d -> %d", len(in), len(out))
	}
	count := map[Op]int{}
	for _, op := range in {
		count[op]++
	}
	for _, op := range out {
		count[op]--
	}
	for op, c := range count {
		if c != 0 {
			t.Fatalf("op %+v count off by %d", op, c)
		}
	}
}

func TestReorderActuallyReorders(t *testing.T) {
	in := reorderInput(1, 500)
	out := Reorder(in, 8, 2)
	moved := 0
	for i := range in {
		if in[i] != out[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("window 8 produced the identity permutation")
	}
}

func TestReorderPreservesPerBlockOrder(t *testing.T) {
	in := reorderInput(3, 2000)
	out := Reorder(in, 16, 4)
	lastData := map[uint64]uint64{}
	for _, op := range out {
		if op.Kind != Store {
			continue
		}
		blk := op.Addr &^ 63
		if prev, ok := lastData[blk]; ok && op.Data < prev {
			t.Fatalf("per-block order violated at block %#x: %d after %d", blk, op.Data, prev)
		}
		lastData[blk] = op.Data
	}
}

func TestReorderFencesAreBarriers(t *testing.T) {
	in := reorderInput(5, 1000)
	out := Reorder(in, 32, 6)
	// Count ops between fences: the partition sizes must match the
	// input's (no op crosses a fence).
	segment := func(ops []Op) []int {
		var sizes []int
		n := 0
		for _, op := range ops {
			if op.Kind == Fence {
				sizes = append(sizes, n)
				n = 0
			} else {
				n++
			}
		}
		return append(sizes, n)
	}
	inSeg, outSeg := segment(in), segment(out)
	if len(inSeg) != len(outSeg) {
		t.Fatalf("fence count changed")
	}
	for i := range inSeg {
		if inSeg[i] != outSeg[i] {
			t.Fatalf("segment %d size %d -> %d: op crossed a fence", i, inSeg[i], outSeg[i])
		}
	}
}

func TestReorderWindowOneIsIdentity(t *testing.T) {
	in := reorderInput(7, 200)
	out := Reorder(in, 1, 8)
	for i := range in {
		if in[i] != out[i] {
			t.Fatal("window 1 reordered")
		}
	}
}

func TestReorderDeterministic(t *testing.T) {
	in := reorderInput(9, 300)
	a := Reorder(in, 8, 11)
	b := Reorder(in, 8, 11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}
