package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// decodeAll attempts a full decode of raw as SPB2, returning the first
// error (nil only for a clean, complete decode).
func decodeAll(raw []byte) error {
	sr := NewSegReader(bytes.NewReader(raw))
	for {
		_, err := sr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// requireCorrupt fails unless err is a *CorruptTraceError: damage must
// surface typed, never as a silent decode or an untyped error.
func requireCorrupt(t *testing.T, err error, label string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: decoded silently, want *CorruptTraceError", label)
	}
	var ce *CorruptTraceError
	if !errors.As(err, &ce) {
		t.Fatalf("%s: error type %T (%v), want *CorruptTraceError", label, err, err)
	}
}

// TestSegBitFlipEveryByte flips every bit of every byte of an encoded
// trace in turn and requires each mutation to be rejected with a typed
// error and op-inexact never: no flipped stream may decode to the
// original op count with all ops valid AND no error.
func TestSegBitFlipEveryByte(t *testing.T) {
	ops := genOps(600)
	enc := encodeSPB2(t, ops, 128)
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(enc)
			mut[i] ^= 1 << bit
			err := decodeAll(mut)
			if err == nil {
				t.Fatalf("byte %d bit %d: flip decoded silently", i, bit)
			}
			var ce *CorruptTraceError
			if !errors.As(err, &ce) {
				t.Fatalf("byte %d bit %d: error type %T (%v), want *CorruptTraceError",
					i, bit, err, err)
			}
		}
	}
}

// TestSegTruncation cuts the stream at every prefix length. A cut that
// lands exactly on a segment boundary is indistinguishable from a
// shorter trace (segments are self-delimiting; there is no trailer) and
// must decode as an exact op prefix; every mid-segment cut must fail
// with a typed error — never a silent partial decode.
func TestSegTruncation(t *testing.T) {
	ops := genOps(300)
	enc := encodeSPB2(t, ops, 64)

	// Recover the segment boundary offsets by walking the framing.
	boundaries := map[int]bool{5: true}
	pos := 5
	for pos < len(enc) {
		plen, n := uvarintAt(enc, pos)
		pos += n + int(plen) + 8
		boundaries[pos] = true
	}

	for cut := 0; cut <= len(enc); cut++ {
		sr := NewSegReader(bytes.NewReader(enc[:cut]))
		got, err := sr.ReadAll()
		if boundaries[cut] {
			if err != nil {
				t.Fatalf("boundary cut %d: %v, want clean prefix decode", cut, err)
			}
			opsEqual(t, got, ops[:len(got)], "boundary prefix at "+itoa(cut))
			continue
		}
		if cut == 0 {
			// A zero-byte file is the typed empty-trace case, not
			// structural damage.
			var ee *EmptyTraceError
			if !errors.As(err, &ee) {
				t.Fatalf("cut 0: error type %T (%v), want *EmptyTraceError", err, err)
			}
			continue
		}
		requireCorrupt(t, err, "truncation at "+itoa(cut))
	}
}

func uvarintAt(p []byte, pos int) (uint64, int) {
	var v uint64
	for i := 0; ; i++ {
		b := p[pos+i]
		v |= uint64(b&0x7F) << (7 * i)
		if b < 0x80 {
			return v, i + 1
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSegStaleVersion stamps every other version byte and requires a
// typed rejection naming the mismatch.
func TestSegStaleVersion(t *testing.T) {
	enc := encodeSPB2(t, genOps(50), 0)
	for _, v := range []byte{0, SPB2Version + 1, 0xFF} {
		mut := bytes.Clone(enc)
		mut[4] = v
		requireCorrupt(t, decodeAll(mut), "version stamp")
	}
}

// TestSegBadMagic requires both the SegReader and the Decoder to refuse
// a wrong magic with a typed error.
func TestSegBadMagic(t *testing.T) {
	enc := encodeSPB2(t, genOps(50), 0)
	mut := bytes.Clone(enc)
	copy(mut, "SPBX")
	requireCorrupt(t, decodeAll(mut), "SegReader magic")
	_, err := NewDecoder(bytes.NewReader(mut))
	requireCorrupt(t, err, "Decoder magic")
}

// TestSegOversizeCaps requires fabricated payload lengths and op counts
// beyond the sanity caps to be rejected before any allocation attempt.
func TestSegOversizeCaps(t *testing.T) {
	// Fabricated segment claiming a payload beyond maxSegPayload.
	huge := append([]byte{}, magic2[:]...)
	huge = append(huge, SPB2Version)
	huge = appendUvarintBytes(huge, maxSegPayload+1)
	requireCorrupt(t, decodeAll(huge), "payload length cap")
}

func appendUvarintBytes(p []byte, v uint64) []byte {
	for v >= 0x80 {
		p = append(p, byte(v)|0x80)
		v >>= 7
	}
	return append(p, byte(v))
}

// TestFileBatchSourceSurfacesCorruption checks the replay source stops
// at damage and exposes the typed error through Err, so a harness
// replay can never silently run a damaged trace to completion.
func TestFileBatchSourceSurfacesCorruption(t *testing.T) {
	ops := genOps(2000)
	enc := encodeSPB2(t, ops, 256)
	mut := bytes.Clone(enc)
	mut[len(mut)/2] ^= 0x40 // damage a mid-stream segment
	fs, err := NewFileBatchSource(bytes.NewReader(mut))
	if err != nil {
		t.Fatalf("NewFileBatchSource: %v", err)
	}
	b := NewBatch(DefaultBatchCap)
	n := 0
	for fs.NextBatch(b) {
		n += b.Len()
	}
	if n >= len(ops) {
		t.Fatalf("replayed all %d ops from a damaged trace", n)
	}
	requireCorrupt(t, fs.Err(), "FileBatchSource.Err")
}
