package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// opsFromFuzz synthesizes a valid op stream from arbitrary fuzz bytes:
// every 8-byte window deterministically becomes one valid op, so the
// fuzzer explores kind mixes, address deltas, gap patterns and payload
// shapes without ever tripping Write's validity check.
func opsFromFuzz(data []byte) []Op {
	var ops []Op
	for len(data) >= 8 {
		w := binary.LittleEndian.Uint64(data)
		data = data[8:]
		switch w % 5 {
		case 0:
			ops = append(ops, Op{Kind: Fence})
		case 1, 2:
			sz := uint8(1 << (w >> 3 % 4))
			ops = append(ops, Op{
				Kind: Load,
				Addr: (w >> 5 % (1 << 30)) &^ uint64(sz-1),
				Size: sz,
				Gap:  uint32(w >> 35 % 1000),
			})
		default:
			sz := uint8(1 << (w >> 3 % 4))
			ops = append(ops, Op{
				Kind: Store,
				Addr: (w >> 5 % (1 << 30)) &^ uint64(sz-1),
				Size: sz,
				Data: w * 0x9e3779b97f4a7c15,
				Gap:  uint32(w >> 35 % 1000),
			})
		}
	}
	return ops
}

// FuzzSegRoundTrip: any valid op stream must encode and decode op-exact
// at any segment granularity, through both the scalar and the batched
// writer path.
func FuzzSegRoundTrip(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add(bytes.Repeat([]byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}, 16), 3)
	f.Add([]byte("the quick brown fox jumps over the lazy dog....."), 4096)
	f.Add(bytes.Repeat([]byte{0}, 64), 2)
	f.Fuzz(func(t *testing.T, data []byte, segOps int) {
		if segOps < 0 || segOps > 1<<16 {
			segOps %= 1 << 16
		}
		ops := opsFromFuzz(data)

		var buf bytes.Buffer
		sw := NewSegWriter(&buf, segOps)
		for _, op := range ops {
			if err := sw.Write(op); err != nil {
				t.Fatalf("Write(%+v): %v", op, err)
			}
		}
		if err := sw.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}

		got, err := NewSegReader(bytes.NewReader(buf.Bytes())).ReadAll()
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if len(got) != len(ops) {
			t.Fatalf("round trip: %d ops, want %d", len(got), len(ops))
		}
		for i := range ops {
			if got[i] != ops[i] {
				t.Fatalf("op %d: %+v, want %+v", i, got[i], ops[i])
			}
		}

		// The batched writer must produce the identical byte stream.
		if len(ops) > 0 {
			var buf2 bytes.Buffer
			sw2 := NewSegWriter(&buf2, segOps)
			src := NewSliceBatchSource(ops)
			b := NewBatch(DefaultBatchCap)
			for src.NextBatch(b) {
				if err := sw2.WriteBatch(b); err != nil {
					t.Fatalf("WriteBatch: %v", err)
				}
			}
			if err := sw2.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("batched encoding differs from scalar encoding")
			}
		}
	})
}

// FuzzSegReader: arbitrary bytes must never panic the decoder — every
// outcome is a clean EOF, a typed *CorruptTraceError or
// *EmptyTraceError, or (for a stream that happens to be valid) ops
// that re-encode round-trip.
func FuzzSegReader(f *testing.F) {
	var seed bytes.Buffer
	sw := NewSegWriter(&seed, 2)
	sw.Write(Op{Kind: Store, Addr: 0x1000, Size: 8, Data: 42, Gap: 7})
	sw.Write(Op{Kind: Load, Addr: 0x2000, Size: 4, Gap: 0})
	sw.Write(Op{Kind: Fence})
	sw.Flush()
	f.Add(seed.Bytes())
	mut := bytes.Clone(seed.Bytes())
	mut[9] ^= 0x10
	f.Add(mut)
	f.Add(seed.Bytes()[:len(seed.Bytes())-3])
	f.Add([]byte("SPB2"))
	f.Add([]byte{'S', 'P', 'B', '2', SPB2Version})
	f.Add([]byte{'S', 'P', 'B', '2', SPB2Version, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte("SPB1junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sr := NewSegReader(bytes.NewReader(data))
		var ops []Op
		for {
			op, err := sr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				var ce *CorruptTraceError
				var ee *EmptyTraceError
				if !errors.As(err, &ce) && !errors.As(err, &ee) {
					t.Fatalf("untyped decode error %T: %v", err, err)
				}
				return
			}
			if verr := op.Validate(); verr != nil {
				t.Fatalf("decoder emitted invalid op %+v: %v", op, verr)
			}
			ops = append(ops, op)
		}
		// Fully decoded: the stream must re-encode and re-decode stable.
		var out bytes.Buffer
		sw := NewSegWriter(&out, 0)
		for _, op := range ops {
			if err := sw.Write(op); err != nil {
				t.Fatalf("decoded op %+v does not re-encode: %v", op, err)
			}
		}
		if err := sw.Flush(); err != nil {
			t.Fatal(err)
		}
		ops2, err := NewSegReader(bytes.NewReader(out.Bytes())).ReadAll()
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(ops2) != len(ops) {
			t.Fatalf("re-decode count %d != %d", len(ops2), len(ops))
		}
		for i := range ops {
			if ops[i] != ops2[i] {
				t.Fatalf("op %d changed across re-encode", i)
			}
		}
	})
}
