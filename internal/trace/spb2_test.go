package trace

import (
	"bytes"
	"io"
	"testing"
)

// genOps builds a deterministic mixed op stream exercising every kind,
// size class, both address bases, zero and nonzero gaps, and data
// payloads of all widths.
func genOps(n int) []Op {
	ops := make([]Op, 0, n)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	seq := uint64(0)
	for len(ops) < n {
		switch next() % 8 {
		case 0:
			ops = append(ops, Op{Kind: Fence})
		case 1, 2:
			sz := uint8(1 << (next() % 4))
			addr := 0x8000_0000 + (next()%(1<<20))&^uint64(sz-1)
			ops = append(ops, Op{Kind: Load, Addr: addr, Size: sz, Gap: uint32(next() % 50)})
		default:
			sz := uint8(8)
			addr := 0x1000_0000 + (next()%(1<<20))&^uint64(sz-1)
			var data uint64
			if next()%2 == 0 {
				seq++
				data = seq // delta-friendly payload
			} else {
				data = next() // incompressible payload
			}
			var gap uint32
			if next()%3 == 0 {
				gap = uint32(next() % 30)
			}
			ops = append(ops, Op{Kind: Store, Addr: addr, Size: sz, Data: data, Gap: gap})
		}
	}
	return ops
}

// encodeSPB2 writes ops at the given segment granularity.
func encodeSPB2(t *testing.T, ops []Op, segOps int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewSegWriter(&buf, segOps)
	for _, op := range ops {
		if err := sw.Write(op); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if sw.Count() != uint64(len(ops)) {
		t.Fatalf("Count = %d, want %d", sw.Count(), len(ops))
	}
	return buf.Bytes()
}

func opsEqual(t *testing.T, got, want []Op, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ops, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: op %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestSegRoundTrip checks encode→decode is op-exact at several segment
// granularities, including ones that leave a partial final segment and
// a degenerate 1-op-per-segment stream.
func TestSegRoundTrip(t *testing.T) {
	ops := genOps(3000)
	for _, segOps := range []int{1, 7, 256, 1000, DefaultSegOps, 100000} {
		enc := encodeSPB2(t, ops, segOps)
		got, err := NewSegReader(bytes.NewReader(enc)).ReadAll()
		if err != nil {
			t.Fatalf("segOps=%d: ReadAll: %v", segOps, err)
		}
		opsEqual(t, got, ops, "segOps round trip")
	}
}

// TestSegRoundTripBatched checks WriteBatch produces a byte-identical
// stream to scalar Write regardless of producer chunking, and that
// ReadSegment yields the same ops.
func TestSegRoundTripBatched(t *testing.T) {
	ops := genOps(2500)
	scalar := encodeSPB2(t, ops, 512)

	var buf bytes.Buffer
	sw := NewSegWriter(&buf, 512)
	src := NewSliceBatchSource(ops)
	b := NewBatch(257) // odd producer chunking must not matter
	for i := 0; src.NextBatch(b); i++ {
		// NextBatch caps at its own chunk size; re-chunk through a copy
		// with odd lengths to stress boundary handling.
		if err := sw.WriteBatch(b); err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), scalar) {
		t.Fatal("WriteBatch stream differs from scalar Write stream")
	}

	sr := NewSegReader(bytes.NewReader(buf.Bytes()))
	var got []Op
	seg := NewBatch(512)
	for {
		err := sr.ReadSegment(seg)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadSegment: %v", err)
		}
		for i := 0; i < seg.Len(); i++ {
			got = append(got, seg.Op(i))
		}
	}
	opsEqual(t, got, ops, "ReadSegment round trip")
}

// TestSegWriterRejectsInvalid checks invalid ops are refused at write
// time, before they can poison a segment.
func TestSegWriterRejectsInvalid(t *testing.T) {
	sw := NewSegWriter(io.Discard, 0)
	if err := sw.Write(Op{Kind: Load, Addr: 0x1001, Size: 8}); err == nil {
		t.Fatal("misaligned load accepted")
	}
	if err := sw.Write(Op{Kind: Kind(9)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestSegEmptyTrace checks a flushed empty writer still emits a valid
// header and reads back as zero ops.
func TestSegEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSegWriter(&buf, 0)
	if err := sw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if buf.Len() != 5 {
		t.Fatalf("empty trace is %d bytes, want 5 (magic+version)", buf.Len())
	}
	got, err := NewSegReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace decoded %d ops", len(got))
	}
}

// TestDecoderAutoDetect checks the Decoder sniffs both formats and
// yields identical ops from each.
func TestDecoderAutoDetect(t *testing.T) {
	ops := genOps(800)

	var spb1 bytes.Buffer
	w := NewWriter(&spb1)
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatalf("SPB1 Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("SPB1 Flush: %v", err)
	}
	spb2 := encodeSPB2(t, ops, 0)

	for _, tc := range []struct {
		name string
		data []byte
		want Format
	}{
		{"spb1", spb1.Bytes(), FormatSPB1},
		{"spb2", spb2, FormatSPB2},
	} {
		d, err := NewDecoder(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatalf("%s: NewDecoder: %v", tc.name, err)
		}
		if d.Format() != tc.want {
			t.Fatalf("%s: Format = %v, want %v", tc.name, d.Format(), tc.want)
		}
		got, err := d.ReadAll()
		if err != nil {
			t.Fatalf("%s: ReadAll: %v", tc.name, err)
		}
		opsEqual(t, got, ops, tc.name+" decode")
	}

	if _, err := NewDecoder(bytes.NewReader([]byte("GARBAGE!"))); err == nil {
		t.Fatal("decoder accepted unknown magic")
	} else if _, ok := err.(*CorruptTraceError); !ok {
		t.Fatalf("unknown magic error type %T, want *CorruptTraceError", err)
	}
}

// TestFileBatchSourceMatchesSlice checks replaying an encoded trace
// through FileBatchSource yields exactly the ops of a SliceBatchSource
// over the original stream — through both the batched and the scalar
// interface, for both on-disk formats.
func TestFileBatchSourceMatchesSlice(t *testing.T) {
	ops := genOps(10_000)
	spb2 := encodeSPB2(t, ops, 777) // segments misaligned with DefaultBatchCap
	var spb1 bytes.Buffer
	w := NewWriter(&spb1)
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatalf("SPB1 Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("SPB1 Flush: %v", err)
	}

	for _, tc := range []struct {
		name string
		data []byte
	}{{"spb2", spb2}, {"spb1", spb1.Bytes()}} {
		// Batched interface.
		fs, err := NewFileBatchSource(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatalf("%s: NewFileBatchSource: %v", tc.name, err)
		}
		var got []Op
		b := NewBatch(DefaultBatchCap)
		for fs.NextBatch(b) {
			for i := 0; i < b.Len(); i++ {
				got = append(got, b.Op(i))
			}
		}
		if err := fs.Err(); err != nil {
			t.Fatalf("%s: Err after NextBatch drain: %v", tc.name, err)
		}
		opsEqual(t, got, ops, tc.name+" NextBatch")
		if fs.Count() != uint64(len(ops)) {
			t.Fatalf("%s: Count = %d, want %d", tc.name, fs.Count(), len(ops))
		}

		// Scalar interface.
		fs2, err := NewFileBatchSource(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatalf("%s: NewFileBatchSource: %v", tc.name, err)
		}
		got = got[:0]
		for {
			op, ok := fs2.Next()
			if !ok {
				break
			}
			got = append(got, op)
		}
		if err := fs2.Err(); err != nil {
			t.Fatalf("%s: Err after Next drain: %v", tc.name, err)
		}
		opsEqual(t, got, ops, tc.name+" Next")
	}
}

// TestFileBatchSourceDoubleBuffer checks the aliasing contract the
// engine's double-buffered replay loop depends on: the views installed
// into one consumer batch must stay intact while the source refills a
// second batch (i.e. the source alternates internal buffers rather than
// decoding over live data).
func TestFileBatchSourceDoubleBuffer(t *testing.T) {
	ops := genOps(3 * DefaultBatchCap)
	enc := encodeSPB2(t, ops, DefaultBatchCap)
	fs, err := NewFileBatchSource(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("NewFileBatchSource: %v", err)
	}
	cur, next := NewBatch(DefaultBatchCap), NewBatch(DefaultBatchCap)
	if !fs.NextBatch(cur) {
		t.Fatal("first NextBatch returned false")
	}
	pos := 0
	for fs.NextBatch(next) {
		// cur's views must still hold the previous chunk's ops even
		// though the source has since decoded the next segment.
		for i := 0; i < cur.Len(); i++ {
			if cur.Op(i) != ops[pos+i] {
				t.Fatalf("op %d clobbered while next batch decoded: %+v, want %+v",
					pos+i, cur.Op(i), ops[pos+i])
			}
		}
		pos += cur.Len()
		cur, next = next, cur
	}
	if err := fs.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	for i := 0; i < cur.Len(); i++ {
		if cur.Op(i) != ops[pos+i] {
			t.Fatalf("final batch op %d = %+v, want %+v", pos+i, cur.Op(i), ops[pos+i])
		}
	}
	if pos+cur.Len() != len(ops) {
		t.Fatalf("replayed %d ops, want %d", pos+cur.Len(), len(ops))
	}
}

// TestSPB2SmallerThanSPB1 checks SPB2 wins even on this deliberately
// hostile stream — random addresses, half the payloads incompressible.
// The headline >=2x gate runs against the real zoo traces in the
// workload package, next to the generators that produce them.
func TestSPB2SmallerThanSPB1(t *testing.T) {
	ops := genOps(20_000)
	var spb1 bytes.Buffer
	w := NewWriter(&spb1)
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	spb2 := encodeSPB2(t, ops, 0)
	if ratio := float64(spb1.Len()) / float64(len(spb2)); ratio < 1.25 {
		t.Fatalf("SPB2 only %.2fx smaller than SPB1 (%d vs %d bytes), want >= 1.25x",
			ratio, len(spb2), spb1.Len())
	}
}

// TestZigzag checks the zigzag helpers over edge values.
func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag64(zigzag64(v)); got != v {
			t.Fatalf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}
