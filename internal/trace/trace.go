// Package trace defines the memory-operation stream consumed by the
// simulator, plus binary and text codecs so traces can be stored,
// inspected, and replayed. The simulator is trace-driven: a workload
// generator (internal/workload) or a recorded application produces a
// stream of Ops; internal/engine replays them against the modelled
// hierarchy.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind is the operation type.
type Kind uint8

const (
	// Load is a data read.
	Load Kind = iota
	// Store is a data write to the persistent region; under strict
	// persistency every store is also a persist.
	Store
	// Fence orders persists in persistency models that require it; with
	// a persistent hierarchy and strict persistency it is a no-op but is
	// kept in the format so relaxed-model traces can be expressed.
	Fence
)

// String returns a short mnemonic.
func (k Kind) String() string {
	switch k {
	case Load:
		return "ld"
	case Store:
		return "st"
	case Fence:
		return "fence"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one memory operation. Gap is the number of non-memory
// instructions the core retires before this operation; it drives the
// timing model's instruction accounting.
type Op struct {
	Kind Kind
	Addr uint64 // byte address
	Size uint8  // access size in bytes (1..8)
	Data uint64 // little-endian store payload (Size bytes significant)
	Gap  uint32 // non-memory instructions preceding this op
}

// Instructions returns the number of instructions this op represents
// (its gap plus itself).
func (o Op) Instructions() uint64 { return uint64(o.Gap) + 1 }

// Validate reports whether the op is well formed.
func (o Op) Validate() error {
	switch o.Kind {
	case Load, Store:
		if o.Size == 0 || o.Size > 8 {
			return fmt.Errorf("trace: invalid access size %d", o.Size)
		}
		if o.Addr&(uint64(o.Size)-1) != 0 && o.Size&(o.Size-1) == 0 {
			return fmt.Errorf("trace: address %#x not aligned to size %d", o.Addr, o.Size)
		}
	case Fence:
		// No operands.
	default:
		return fmt.Errorf("trace: unknown kind %d", o.Kind)
	}
	return nil
}

// magic identifies the binary trace format.
var magic = [4]byte{'S', 'P', 'B', '1'}

// Writer streams ops in the compact binary format.
type Writer struct {
	w     *bufio.Writer
	n     uint64
	begun bool
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one op.
func (tw *Writer) Write(op Op) error {
	if !tw.begun {
		if _, err := tw.w.Write(magic[:]); err != nil {
			return err
		}
		tw.begun = true
	}
	if err := op.Validate(); err != nil {
		return err
	}
	var buf [1 + 4*binary.MaxVarintLen64]byte
	buf[0] = byte(op.Kind)<<4 | op.Size
	n := 1
	n += binary.PutUvarint(buf[n:], op.Addr)
	n += binary.PutUvarint(buf[n:], uint64(op.Gap))
	if op.Kind == Store {
		n += binary.PutUvarint(buf[n:], op.Data)
	}
	_, err := tw.w.Write(buf[:n])
	tw.n++
	return err
}

// Flush flushes buffered output. It must be called when done.
func (tw *Writer) Flush() error {
	if !tw.begun {
		if _, err := tw.w.Write(magic[:]); err != nil {
			return err
		}
		tw.begun = true
	}
	return tw.w.Flush()
}

// Count returns the number of ops written.
func (tw *Writer) Count() uint64 { return tw.n }

// Reader streams ops from the binary format.
type Reader struct {
	r      *bufio.Reader
	begun  bool
	badHdr error
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read returns the next op, or io.EOF at end of trace.
func (tr *Reader) Read() (Op, error) {
	if !tr.begun {
		var hdr [4]byte
		if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
			return Op{}, fmt.Errorf("trace: reading header: %w", err)
		}
		if hdr != magic {
			return Op{}, errors.New("trace: bad magic (not an SPB1 trace)")
		}
		tr.begun = true
	}
	tag, err := tr.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Op{}, io.EOF
		}
		return Op{}, err
	}
	op := Op{Kind: Kind(tag >> 4), Size: tag & 0x0F}
	if op.Addr, err = binary.ReadUvarint(tr.r); err != nil {
		return Op{}, fmt.Errorf("trace: truncated addr: %w", err)
	}
	gap, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Op{}, fmt.Errorf("trace: truncated gap: %w", err)
	}
	if gap > 1<<32-1 {
		return Op{}, fmt.Errorf("trace: gap %d overflows uint32", gap)
	}
	op.Gap = uint32(gap)
	if op.Kind == Store {
		if op.Data, err = binary.ReadUvarint(tr.r); err != nil {
			return Op{}, fmt.Errorf("trace: truncated data: %w", err)
		}
	}
	if err := op.Validate(); err != nil {
		return Op{}, err
	}
	return op, nil
}

// ReadAll drains the reader into a slice.
func (tr *Reader) ReadAll() ([]Op, error) {
	var ops []Op
	for {
		op, err := tr.Read()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		ops = append(ops, op)
	}
}

// FormatText renders one op per line, e.g.:
//
//	st 0x1040 8 0xdeadbeef gap=3
//	ld 0x1048 4 gap=0
//	fence
func FormatText(op Op) string {
	switch op.Kind {
	case Store:
		return fmt.Sprintf("st 0x%x %d 0x%x gap=%d", op.Addr, op.Size, op.Data, op.Gap)
	case Load:
		return fmt.Sprintf("ld 0x%x %d gap=%d", op.Addr, op.Size, op.Gap)
	case Fence:
		return "fence"
	default:
		return fmt.Sprintf("?%d", op.Kind)
	}
}

// ParseText parses the FormatText representation.
func ParseText(line string) (Op, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return Op{}, errors.New("trace: empty line")
	}
	parseHex := func(s string) (uint64, error) {
		return strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
	}
	parseGap := func(s string) (uint32, error) {
		v, err := strconv.ParseUint(strings.TrimPrefix(s, "gap="), 10, 32)
		return uint32(v), err
	}
	var op Op
	var err error
	switch fields[0] {
	case "fence":
		return Op{Kind: Fence}, nil
	case "st":
		if len(fields) != 5 {
			return Op{}, fmt.Errorf("trace: store needs 5 fields, got %d", len(fields))
		}
		op.Kind = Store
		if op.Addr, err = parseHex(fields[1]); err != nil {
			return Op{}, err
		}
		size, err := strconv.ParseUint(fields[2], 10, 8)
		if err != nil {
			return Op{}, err
		}
		op.Size = uint8(size)
		if op.Data, err = parseHex(fields[3]); err != nil {
			return Op{}, err
		}
		if op.Gap, err = parseGap(fields[4]); err != nil {
			return Op{}, err
		}
	case "ld":
		if len(fields) != 4 {
			return Op{}, fmt.Errorf("trace: load needs 4 fields, got %d", len(fields))
		}
		op.Kind = Load
		if op.Addr, err = parseHex(fields[1]); err != nil {
			return Op{}, err
		}
		size, err := strconv.ParseUint(fields[2], 10, 8)
		if err != nil {
			return Op{}, err
		}
		op.Size = uint8(size)
		if op.Gap, err = parseGap(fields[3]); err != nil {
			return Op{}, err
		}
	default:
		return Op{}, fmt.Errorf("trace: unknown mnemonic %q", fields[0])
	}
	if err := op.Validate(); err != nil {
		return Op{}, err
	}
	return op, nil
}

// Source is anything that yields a stream of ops: a Reader over a stored
// trace, or a live workload generator.
type Source interface {
	// Next returns the next op; ok is false at end of stream.
	Next() (op Op, ok bool)
}

// SliceSource replays a fixed slice of ops.
type SliceSource struct {
	ops []Op
	i   int
}

// NewSliceSource returns a Source over ops.
func NewSliceSource(ops []Op) *SliceSource { return &SliceSource{ops: ops} }

// Next implements Source.
func (s *SliceSource) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.i = 0 }
