package trace

import "testing"

func TestBatchAppendOpRoundTrip(t *testing.T) {
	b := NewBatch(4)
	ops := []Op{
		{Kind: Store, Addr: 0x1000, Size: 8, Data: 0xDEAD, Gap: 3},
		{Kind: Load, Addr: 0x2008, Size: 4, Gap: 0},
		{Kind: Store, Addr: 0x3010, Size: 1, Data: 0xFF, Gap: 1000},
	}
	for _, op := range ops {
		if b.Full() {
			t.Fatal("batch full before capacity")
		}
		b.Append(op)
	}
	if b.Len() != len(ops) || b.Cap() != 4 {
		t.Fatalf("Len/Cap = %d/%d, want %d/4", b.Len(), b.Cap(), len(ops))
	}
	for i, want := range ops {
		if got := b.Op(i); got != want {
			t.Errorf("Op(%d) = %+v, want %+v", i, got, want)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	b.Append(Op{Kind: Load, Addr: 0x40, Size: 8})
	if !b.Full() {
		t.Error("batch not full at capacity")
	}
	b.Reset()
	if b.Len() != 0 || b.Cap() != 4 {
		t.Errorf("after Reset: Len/Cap = %d/%d, want 0/4", b.Len(), b.Cap())
	}
}

func TestBatchValidateRejectsBadOp(t *testing.T) {
	b := NewBatch(2)
	b.Append(Op{Kind: Store, Addr: 0x1000, Size: 8, Data: 1})
	b.Append(Op{Kind: Store, Addr: 0x1000, Size: 0}) // invalid size
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted an invalid op")
	}
}

func TestNewBatchDefaultCap(t *testing.T) {
	if got := NewBatch(0).Cap(); got != DefaultBatchCap {
		t.Errorf("NewBatch(0).Cap() = %d, want %d", got, DefaultBatchCap)
	}
	if got := NewBatch(-3).Cap(); got != DefaultBatchCap {
		t.Errorf("NewBatch(-3).Cap() = %d, want %d", got, DefaultBatchCap)
	}
}
