package trace

import "secpb/internal/xrand"

// Reorder simulates a relaxed memory consistency model: stores may
// reach the persist buffer out of program order within a bounded
// window, as happens when the core's store buffer retires stores
// out of order (Section IV.C.b of the paper — the case that requires
// either a battery-backed store buffer or a lazy scheme like COBCM
// whose metadata updates tolerate out-of-order arrival).
//
// Two orderings are preserved, as real hardware preserves them:
//   - per-address program order (coherence: two stores to the same
//     block are never swapped), and
//   - fences are full barriers (no op crosses a Fence).
//
// Loads travel with their position. The transformation is deterministic
// in seed.
func Reorder(ops []Op, window int, seed uint64) []Op {
	if window <= 1 {
		out := make([]Op, len(ops))
		copy(out, ops)
		return out
	}
	r := xrand.New(seed)
	out := make([]Op, 0, len(ops))
	pending := make([]Op, 0, window)

	flush := func() {
		out = append(out, pending...)
		pending = pending[:0]
	}

	for _, op := range ops {
		if op.Kind == Fence {
			flush()
			out = append(out, op)
			continue
		}
		// Insert op at a random legal position within the pending
		// window: after the last op to the same block (per-address
		// order).
		lo := 0
		for i := len(pending) - 1; i >= 0; i-- {
			if pending[i].Kind != Fence && blockOf(pending[i].Addr) == blockOf(op.Addr) {
				lo = i + 1
				break
			}
		}
		pos := lo
		if lo < len(pending) {
			pos = lo + r.Intn(len(pending)-lo+1)
		}
		pending = append(pending, Op{})
		copy(pending[pos+1:], pending[pos:])
		pending[pos] = op
		if len(pending) >= window {
			out = append(out, pending[0])
			pending = pending[1:]
		}
	}
	flush()
	return out
}

func blockOf(a uint64) uint64 { return a &^ 63 }
