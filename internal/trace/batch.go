package trace

// DefaultBatchCap is the batch capacity the engine's batched replay
// path uses: large enough to amortize the per-batch refill call far
// below the per-op cost, small enough (~100KB of columns) to stay
// cache- and allocation-friendly.
const DefaultBatchCap = 4096

// Batch is a fixed-capacity columnar chunk of ops: one slice per Op
// field, appended in lockstep. Producers (the workload generator) fill
// the columns directly and consumers (the engine's batched replay loop)
// read them back with no per-op interface dispatch; Op(i) reassembles a
// scalar Op when one is needed.
type Batch struct {
	Kinds []Kind
	Addrs []uint64
	Sizes []uint8
	Datas []uint64
	Gaps  []uint32
}

// NewBatch returns an empty batch with the given capacity.
func NewBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchCap
	}
	return &Batch{
		Kinds: make([]Kind, 0, capacity),
		Addrs: make([]uint64, 0, capacity),
		Sizes: make([]uint8, 0, capacity),
		Datas: make([]uint64, 0, capacity),
		Gaps:  make([]uint32, 0, capacity),
	}
}

// Len returns the number of ops in the batch.
func (b *Batch) Len() int { return len(b.Kinds) }

// Cap returns the batch capacity.
func (b *Batch) Cap() int { return cap(b.Kinds) }

// Full reports whether the batch has reached its capacity.
func (b *Batch) Full() bool { return len(b.Kinds) == cap(b.Kinds) }

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() {
	b.Kinds = b.Kinds[:0]
	b.Addrs = b.Addrs[:0]
	b.Sizes = b.Sizes[:0]
	b.Datas = b.Datas[:0]
	b.Gaps = b.Gaps[:0]
}

// Append pushes one op onto every column. The caller is responsible for
// capacity (check Full) and validity (Validate checks whole batches).
func (b *Batch) Append(op Op) {
	b.Kinds = append(b.Kinds, op.Kind)
	b.Addrs = append(b.Addrs, op.Addr)
	b.Sizes = append(b.Sizes, op.Size)
	b.Datas = append(b.Datas, op.Data)
	b.Gaps = append(b.Gaps, op.Gap)
}

// Op reassembles the i'th op from the columns.
func (b *Batch) Op(i int) Op {
	return Op{
		Kind: b.Kinds[i],
		Addr: b.Addrs[i],
		Size: b.Sizes[i],
		Data: b.Datas[i],
		Gap:  b.Gaps[i],
	}
}

// Validate checks every op in the batch, returning the first error.
// Consumers validate once per batch instead of once per op, and the
// check itself is columnar: the common all-valid case scans the kind
// and size columns without materializing an Op; only a failing index
// reassembles its op to produce the identical per-op error.
func (b *Batch) Validate() error {
	for i, k := range b.Kinds {
		switch k {
		case Load, Store:
			sz := b.Sizes[i]
			if sz == 0 || sz > 8 ||
				(b.Addrs[i]&(uint64(sz)-1) != 0 && sz&(sz-1) == 0) {
				return b.Op(i).Validate()
			}
		case Fence:
		default:
			return b.Op(i).Validate()
		}
	}
	return nil
}

// BatchSource yields ops in columnar chunks. Implementations fill b
// (after resetting it) with up to its capacity of ops and report whether
// it holds any; false means end of stream. A BatchSource usually also
// implements Source so scalar consumers can drain it op by op, but a
// stream must be consumed through one interface or the other, not both.
type BatchSource interface {
	NextBatch(b *Batch) bool
}

// SliceBatchSource replays a pre-materialized op slice in columnar
// chunks — the batched counterpart of SliceSource, for benchmarks and
// tests that want the batched replay path without generator cost in
// the loop. The columns are decomposed once at construction; NextBatch
// installs zero-copy subslice views into the consumer's batch instead
// of copying op by op.
type SliceBatchSource struct {
	cols Batch
	pos  int
}

// NewSliceBatchSource returns a BatchSource over ops.
func NewSliceBatchSource(ops []Op) *SliceBatchSource {
	s := &SliceBatchSource{cols: *NewBatch(len(ops))}
	for _, op := range ops {
		s.cols.Append(op)
	}
	return s
}

// Reset rewinds the source to the start of the slice.
func (s *SliceBatchSource) Reset() { s.pos = 0 }

// NextBatch points b's columns at the next chunk of ops. The views
// alias the source's columns: consumers treat batches as read-only
// (the engine's replay loop does), and b's own backing array, if any,
// is left untouched for the next filling source.
func (s *SliceBatchSource) NextBatch(b *Batch) bool {
	n := s.cols.Len() - s.pos
	if n <= 0 {
		return false
	}
	if n > DefaultBatchCap {
		n = DefaultBatchCap
	}
	lo, hi := s.pos, s.pos+n
	b.Kinds = s.cols.Kinds[lo:hi:hi]
	b.Addrs = s.cols.Addrs[lo:hi:hi]
	b.Sizes = s.cols.Sizes[lo:hi:hi]
	b.Datas = s.cols.Datas[lo:hi:hi]
	b.Gaps = s.cols.Gaps[lo:hi:hi]
	s.pos = hi
	return true
}
