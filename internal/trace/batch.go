package trace

// DefaultBatchCap is the batch capacity the engine's batched replay
// path uses: large enough to amortize the per-batch refill call far
// below the per-op cost, small enough (~100KB of columns) to stay
// cache- and allocation-friendly.
const DefaultBatchCap = 4096

// Batch is a fixed-capacity columnar chunk of ops: one slice per Op
// field, appended in lockstep. Producers (the workload generator) fill
// the columns directly and consumers (the engine's batched replay loop)
// read them back with no per-op interface dispatch; Op(i) reassembles a
// scalar Op when one is needed.
type Batch struct {
	Kinds []Kind
	Addrs []uint64
	Sizes []uint8
	Datas []uint64
	Gaps  []uint32
}

// NewBatch returns an empty batch with the given capacity.
func NewBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchCap
	}
	return &Batch{
		Kinds: make([]Kind, 0, capacity),
		Addrs: make([]uint64, 0, capacity),
		Sizes: make([]uint8, 0, capacity),
		Datas: make([]uint64, 0, capacity),
		Gaps:  make([]uint32, 0, capacity),
	}
}

// Len returns the number of ops in the batch.
func (b *Batch) Len() int { return len(b.Kinds) }

// Cap returns the batch capacity.
func (b *Batch) Cap() int { return cap(b.Kinds) }

// Full reports whether the batch has reached its capacity.
func (b *Batch) Full() bool { return len(b.Kinds) == cap(b.Kinds) }

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() {
	b.Kinds = b.Kinds[:0]
	b.Addrs = b.Addrs[:0]
	b.Sizes = b.Sizes[:0]
	b.Datas = b.Datas[:0]
	b.Gaps = b.Gaps[:0]
}

// Append pushes one op onto every column. The caller is responsible for
// capacity (check Full) and validity (Validate checks whole batches).
func (b *Batch) Append(op Op) {
	b.Kinds = append(b.Kinds, op.Kind)
	b.Addrs = append(b.Addrs, op.Addr)
	b.Sizes = append(b.Sizes, op.Size)
	b.Datas = append(b.Datas, op.Data)
	b.Gaps = append(b.Gaps, op.Gap)
}

// Op reassembles the i'th op from the columns.
func (b *Batch) Op(i int) Op {
	return Op{
		Kind: b.Kinds[i],
		Addr: b.Addrs[i],
		Size: b.Sizes[i],
		Data: b.Datas[i],
		Gap:  b.Gaps[i],
	}
}

// Validate checks every op in the batch, returning the first error with
// its index. Consumers validate once per batch instead of once per op.
func (b *Batch) Validate() error {
	for i, n := 0, b.Len(); i < n; i++ {
		if err := b.Op(i).Validate(); err != nil {
			return err
		}
	}
	return nil
}

// BatchSource yields ops in columnar chunks. Implementations fill b
// (after resetting it) with up to its capacity of ops and report whether
// it holds any; false means end of stream. A BatchSource usually also
// implements Source so scalar consumers can drain it op by op, but a
// stream must be consumed through one interface or the other, not both.
type BatchSource interface {
	NextBatch(b *Batch) bool
}

// SliceBatchSource replays a pre-materialized op slice in columnar
// chunks — the batched counterpart of SliceSource, for benchmarks and
// tests that want the batched replay path without generator cost in
// the loop.
type SliceBatchSource struct {
	ops []Op
	pos int
}

// NewSliceBatchSource returns a BatchSource over ops.
func NewSliceBatchSource(ops []Op) *SliceBatchSource {
	return &SliceBatchSource{ops: ops}
}

// Reset rewinds the source to the start of the slice.
func (s *SliceBatchSource) Reset() { s.pos = 0 }

// NextBatch fills b with the next chunk of ops.
func (s *SliceBatchSource) NextBatch(b *Batch) bool {
	if s.pos >= len(s.ops) {
		return false
	}
	b.Reset()
	n := len(s.ops) - s.pos
	if c := b.Cap(); n > c {
		n = c
	}
	for _, op := range s.ops[s.pos : s.pos+n] {
		b.Append(op)
	}
	s.pos += n
	return true
}
