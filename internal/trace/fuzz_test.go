package trace

import (
	"bytes"
	"testing"
)

// FuzzParseText: the text parser must never panic and must round-trip
// whatever it accepts.
func FuzzParseText(f *testing.F) {
	f.Add("st 0x1000 8 0xdeadbeef gap=3")
	f.Add("ld 0x1048 4 gap=0")
	f.Add("fence")
	f.Add("st 0x0 1 0xff gap=4294967295")
	f.Add("")
	f.Add("st zz")
	f.Fuzz(func(t *testing.T, line string) {
		op, err := ParseText(line)
		if err != nil {
			return
		}
		// Anything accepted must be valid and must survive a format/
		// parse round trip.
		if verr := op.Validate(); verr != nil {
			t.Fatalf("parsed invalid op %+v from %q: %v", op, line, verr)
		}
		again, err := ParseText(FormatText(op))
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", FormatText(op), err)
		}
		if again != op {
			t.Fatalf("round trip changed op: %+v -> %+v", op, again)
		}
	})
}

// FuzzReader: the binary decoder must never panic on corrupt input, and
// anything it fully decodes must re-encode.
func FuzzReader(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	w.Write(Op{Kind: Store, Addr: 0x1000, Size: 8, Data: 42, Gap: 7})
	w.Write(Op{Kind: Load, Addr: 0x2000, Size: 4, Gap: 0})
	w.Write(Op{Kind: Fence})
	w.Flush()
	f.Add(seed.Bytes())
	f.Add([]byte("SPB1"))
	f.Add([]byte("XXXX"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := NewReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			return
		}
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, op := range ops {
			if werr := w.Write(op); werr != nil {
				t.Fatalf("decoded op %+v does not re-encode: %v", op, werr)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		ops2, err := NewReader(bytes.NewReader(out.Bytes())).ReadAll()
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(ops2) != len(ops) {
			t.Fatalf("re-decode count %d != %d", len(ops2), len(ops))
		}
		for i := range ops {
			if ops[i] != ops2[i] {
				t.Fatalf("op %d changed across re-encode", i)
			}
		}
	})
}
