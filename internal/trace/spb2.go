// SPB2 is the segmented columnar on-disk trace format: the Batch SoA
// layout, persisted. A file is the 5-byte header (magic + version)
// followed by independent segments; each segment carries per-kind op
// counts, delta/varint-compressed columns and an FNV-64a seal, so a
// reader can stream in constant memory, detect any bit flip, truncation
// or stale version with a typed error, and hand zero-copy column views
// straight to the engine's batched replay loop.
//
// Column encodings (all little-endian, all per segment):
//
//	kinds  2 bits per op, packed 4 per byte
//	sizes  run-length (size byte, varint run) over loads+stores in op order
//	addrs  zigzag varint delta from the previous same-kind address
//	       (separate load/store cursors, reset to 0 each segment)
//	gaps   presence bitmap (1 bit per op) + varint per nonzero gap
//	datas  1 codec byte, then per store in op order:
//	       0 raw varint, 1 fixed 8 bytes, 2 zigzag varint delta
//	       (the writer picks whichever is smallest for the segment)
//
// Store bursts delta to +8, sequence-numbered payloads delta to +1 and
// gaps inside bursts vanish into the bitmap, which is where the >=2x
// size win over the flat SPB1 encoding comes from.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// magic2 identifies the segmented columnar trace format.
var magic2 = [4]byte{'S', 'P', 'B', '2'}

// SPB2Version is the current format version, stamped after the magic.
// A reader rejects any other stamp with a *CorruptTraceError rather
// than guessing at a layout it does not know.
const SPB2Version = 1

// DefaultSegOps is the default ops-per-segment granularity: one
// segment per engine replay batch, so file segments and Batch chunks
// coincide.
const DefaultSegOps = DefaultBatchCap

// Decode-side sanity caps: a corrupted length or count must fail fast
// with a typed error, never drive a multi-gigabyte allocation.
const (
	maxSegPayload = 1 << 26
	maxSegOps     = 1 << 22
)

// Data-column codecs.
const (
	dataVarint byte = iota // raw uvarint per store
	dataRaw8               // fixed 8 bytes per store (incompressible payloads)
	dataDelta              // zigzag uvarint delta from the previous store's data
)

// CorruptTraceError reports structural damage in an SPB2 stream: a bad
// magic, an unsupported version stamp, a failed segment checksum, a
// truncation, or columns that do not decode to valid ops. It is typed
// (mirroring harness.CorruptCacheError) so callers can distinguish "the
// trace is damaged" from I/O errors; nothing damaged is ever silently
// decoded.
type CorruptTraceError struct {
	Seg    int // 0-based segment ordinal (-1 for the file header)
	Detail string
}

func (e *CorruptTraceError) Error() string {
	if e.Seg < 0 {
		return fmt.Sprintf("trace: corrupt SPB2 header: %s", e.Detail)
	}
	return fmt.Sprintf("trace: corrupt SPB2 segment %d: %s", e.Seg, e.Detail)
}

// EmptyTraceError reports a stream that is structurally valid (or
// entirely absent) but carries no operations: a zero-byte file, or an
// SPB2 header followed by zero segments. It is typed so tooling and the
// streaming service can distinguish "there is nothing here" from both
// I/O failures and corruption — converting or uploading an empty trace
// is almost always a caller bug, never something to silently succeed
// on.
type EmptyTraceError struct {
	Detail string
}

func (e *EmptyTraceError) Error() string {
	return fmt.Sprintf("trace: empty trace: %s", e.Detail)
}

func zigzag64(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag64(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }

// SegWriter streams ops into the segmented columnar format. Ops
// accumulate in a columnar staging batch and seal into one segment
// every segOps ops (and on Flush), so memory stays constant regardless
// of trace length.
type SegWriter struct {
	w       *bufio.Writer
	segOps  int
	begun   bool
	n       uint64
	cols    *Batch
	scratch []byte
}

// NewSegWriter returns a SegWriter emitting to w with the given segment
// granularity (segOps <= 0 selects DefaultSegOps).
func NewSegWriter(w io.Writer, segOps int) *SegWriter {
	if segOps <= 0 {
		segOps = DefaultSegOps
	}
	return &SegWriter{
		w:      bufio.NewWriter(w),
		segOps: segOps,
		cols:   NewBatch(segOps),
	}
}

// Count returns the number of ops written.
func (sw *SegWriter) Count() uint64 { return sw.n }

// Write appends one op, sealing a segment when the staging batch fills.
func (sw *SegWriter) Write(op Op) error {
	if err := op.Validate(); err != nil {
		return err
	}
	sw.cols.Append(op)
	sw.n++
	if sw.cols.Len() >= sw.segOps {
		return sw.seal()
	}
	return nil
}

// WriteBatch appends a whole columnar batch (validated once), sealing
// segments as the staging batch fills. Segment boundaries depend only
// on the op stream and segOps, never on how the producer chunked it.
func (sw *SegWriter) WriteBatch(b *Batch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	for i := 0; i < b.Len(); i++ {
		sw.cols.Append(b.Op(i))
		sw.n++
		if sw.cols.Len() >= sw.segOps {
			if err := sw.seal(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush seals any partial segment and flushes buffered output. It must
// be called when done; calling it mid-stream simply ends a segment
// early (segment boundaries are arbitrary).
func (sw *SegWriter) Flush() error {
	if err := sw.seal(); err != nil {
		return err
	}
	return sw.w.Flush()
}

// begin writes the file header once.
func (sw *SegWriter) begin() error {
	if sw.begun {
		return nil
	}
	sw.begun = true
	if _, err := sw.w.Write(magic2[:]); err != nil {
		return err
	}
	return sw.w.WriteByte(SPB2Version)
}

// seal encodes the staging batch as one segment and resets it.
func (sw *SegWriter) seal() error {
	if err := sw.begin(); err != nil {
		return err
	}
	if sw.cols.Len() == 0 {
		return nil
	}
	sw.scratch = encodeSegment(sw.scratch[:0], sw.cols)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(sw.scratch)))
	if _, err := sw.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := sw.w.Write(sw.scratch); err != nil {
		return err
	}
	h := fnv.New64a()
	h.Write(sw.scratch)
	var seal [8]byte
	binary.LittleEndian.PutUint64(seal[:], h.Sum64())
	if _, err := sw.w.Write(seal[:]); err != nil {
		return err
	}
	sw.cols.Reset()
	return nil
}

// encodeSegment appends the columnar payload for cols to p.
func encodeSegment(p []byte, cols *Batch) []byte {
	n := cols.Len()
	var nl, ns, nf int
	for _, k := range cols.Kinds {
		switch k {
		case Load:
			nl++
		case Store:
			ns++
		default:
			nf++
		}
	}
	p = binary.AppendUvarint(p, uint64(n))
	p = binary.AppendUvarint(p, uint64(nl))
	p = binary.AppendUvarint(p, uint64(ns))
	p = binary.AppendUvarint(p, uint64(nf))

	// Kinds: 2 bits each, 4 per byte, LSB first.
	var kb byte
	for i, k := range cols.Kinds {
		kb |= byte(k) << (2 * (i % 4))
		if i%4 == 3 {
			p = append(p, kb)
			kb = 0
		}
	}
	if n%4 != 0 {
		p = append(p, kb)
	}

	// Sizes: RLE over loads+stores in op order.
	runVal, runLen := uint8(0), 0
	for i, k := range cols.Kinds {
		if k == Fence {
			continue
		}
		s := cols.Sizes[i]
		if runLen > 0 && s == runVal {
			runLen++
			continue
		}
		if runLen > 0 {
			p = append(p, runVal)
			p = binary.AppendUvarint(p, uint64(runLen))
		}
		runVal, runLen = s, 1
	}
	if runLen > 0 {
		p = append(p, runVal)
		p = binary.AppendUvarint(p, uint64(runLen))
	}

	// Addrs: zigzag delta from the previous same-kind address.
	var prevLoad, prevStore uint64
	for i, k := range cols.Kinds {
		switch k {
		case Load:
			p = binary.AppendUvarint(p, zigzag64(int64(cols.Addrs[i]-prevLoad)))
			prevLoad = cols.Addrs[i]
		case Store:
			p = binary.AppendUvarint(p, zigzag64(int64(cols.Addrs[i]-prevStore)))
			prevStore = cols.Addrs[i]
		}
	}

	// Gaps: presence bitmap, then a varint per nonzero gap.
	var gb byte
	for i, g := range cols.Gaps {
		if g != 0 {
			gb |= 1 << (i % 8)
		}
		if i%8 == 7 {
			p = append(p, gb)
			gb = 0
		}
	}
	if n%8 != 0 {
		p = append(p, gb)
	}
	for _, g := range cols.Gaps {
		if g != 0 {
			p = binary.AppendUvarint(p, uint64(g))
		}
	}

	// Datas: pick the cheapest codec for this segment's store payloads.
	var rawCost, deltaCost int
	var prev uint64
	for i, k := range cols.Kinds {
		if k != Store {
			continue
		}
		d := cols.Datas[i]
		rawCost += uvarintLen(d)
		deltaCost += uvarintLen(zigzag64(int64(d - prev)))
		prev = d
	}
	codec := dataVarint
	best := rawCost
	if 8*ns < best {
		codec, best = dataRaw8, 8*ns
	}
	if deltaCost < best {
		codec = dataDelta
	}
	p = append(p, codec)
	prev = 0
	for i, k := range cols.Kinds {
		if k != Store {
			continue
		}
		d := cols.Datas[i]
		switch codec {
		case dataVarint:
			p = binary.AppendUvarint(p, d)
		case dataRaw8:
			p = binary.LittleEndian.AppendUint64(p, d)
		case dataDelta:
			p = binary.AppendUvarint(p, zigzag64(int64(d-prev)))
			prev = d
		}
	}
	return p
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// SegReader streams ops from the segmented columnar format, decoding
// one segment at a time (constant memory in trace length). Any
// structural damage surfaces as a *CorruptTraceError.
type SegReader struct {
	r       *bufio.Reader
	begun   bool
	segIdx  int
	payload []byte

	// Scalar-read cursor over the current decoded segment.
	seg *Batch
	pos int
}

// NewSegReader returns a SegReader consuming from r.
func NewSegReader(r io.Reader) *SegReader {
	return &SegReader{r: bufio.NewReader(r)}
}

// header consumes and validates the file header once.
func (sr *SegReader) header() error {
	if sr.begun {
		return nil
	}
	var hdr [5]byte
	if n, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		if n == 0 {
			return &EmptyTraceError{Detail: "no bytes (not even a magic)"}
		}
		return &CorruptTraceError{Seg: -1, Detail: fmt.Sprintf("short header: %v", err)}
	}
	if [4]byte(hdr[:4]) != magic2 {
		return &CorruptTraceError{Seg: -1, Detail: "bad magic (not an SPB2 trace)"}
	}
	if hdr[4] != SPB2Version {
		return &CorruptTraceError{Seg: -1,
			Detail: fmt.Sprintf("version stamp %d, this reader handles %d", hdr[4], SPB2Version)}
	}
	sr.begun = true
	return nil
}

// corrupt builds a typed error for the current segment.
func (sr *SegReader) corrupt(format string, args ...interface{}) error {
	return &CorruptTraceError{Seg: sr.segIdx, Detail: fmt.Sprintf(format, args...)}
}

// ReadSegment decodes the next segment's ops into b (reset first).
// It returns io.EOF at a clean end of stream; anything else wrong is a
// *CorruptTraceError.
func (sr *SegReader) ReadSegment(b *Batch) error {
	if err := sr.header(); err != nil {
		return err
	}
	plen, err := binary.ReadUvarint(sr.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return sr.corrupt("truncated segment length: %v", err)
	}
	if plen > maxSegPayload {
		return sr.corrupt("payload length %d exceeds cap %d", plen, maxSegPayload)
	}
	if uint64(cap(sr.payload)) < plen {
		sr.payload = make([]byte, plen)
	}
	sr.payload = sr.payload[:plen]
	if _, err := io.ReadFull(sr.r, sr.payload); err != nil {
		return sr.corrupt("truncated payload (%d bytes expected): %v", plen, err)
	}
	var seal [8]byte
	if _, err := io.ReadFull(sr.r, seal[:]); err != nil {
		return sr.corrupt("truncated seal: %v", err)
	}
	h := fnv.New64a()
	h.Write(sr.payload)
	if h.Sum64() != binary.LittleEndian.Uint64(seal[:]) {
		return sr.corrupt("checksum mismatch")
	}
	if err := sr.decodePayload(b); err != nil {
		return err
	}
	sr.segIdx++
	return nil
}

// decodePayload unpacks the sealed columns into b and validates every
// decoded op.
func (sr *SegReader) decodePayload(b *Batch) error {
	p := sr.payload
	pos := 0
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(p[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	count, ok1 := uv()
	nl, ok2 := uv()
	ns, ok3 := uv()
	nf, ok4 := uv()
	if !(ok1 && ok2 && ok3 && ok4) {
		return sr.corrupt("truncated segment header")
	}
	if count > maxSegOps {
		return sr.corrupt("op count %d exceeds cap %d", count, maxSegOps)
	}
	if nl+ns+nf != count {
		return sr.corrupt("op counts disagree: %d+%d+%d != %d", nl, ns, nf, count)
	}
	n := int(count)
	b.Reset()
	if b.Cap() < n {
		*b = *NewBatch(n)
	}

	// Kinds.
	kbytes := (n + 3) / 4
	if pos+kbytes > len(p) {
		return sr.corrupt("truncated kinds column")
	}
	var gotL, gotS, gotF uint64
	for i := 0; i < n; i++ {
		k := Kind(p[pos+i/4] >> (2 * (i % 4)) & 3)
		switch k {
		case Load:
			gotL++
		case Store:
			gotS++
		case Fence:
			gotF++
		default:
			return sr.corrupt("op %d: invalid kind %d", i, k)
		}
		b.Kinds = append(b.Kinds, k)
	}
	pos += kbytes
	if gotL != nl || gotS != ns || gotF != nf {
		return sr.corrupt("kinds column disagrees with header counts")
	}

	// Sizes (loads+stores in op order), via RLE runs.
	nmem := int(nl + ns)
	sizes := make([]uint8, 0, nmem)
	for len(sizes) < nmem {
		if pos >= len(p) {
			return sr.corrupt("truncated sizes column")
		}
		val := p[pos]
		pos++
		run, ok := uv()
		if !ok {
			return sr.corrupt("truncated sizes run length")
		}
		if run == 0 || run > uint64(nmem-len(sizes)) {
			return sr.corrupt("sizes run %d overflows column (%d of %d filled)", run, len(sizes), nmem)
		}
		for j := uint64(0); j < run; j++ {
			sizes = append(sizes, val)
		}
	}

	// Addrs (same-kind delta chains), interleaving sizes back per op.
	var prevLoad, prevStore uint64
	si := 0
	for i := 0; i < n; i++ {
		switch b.Kinds[i] {
		case Fence:
			b.Addrs = append(b.Addrs, 0)
			b.Sizes = append(b.Sizes, 0)
			continue
		case Load:
			z, ok := uv()
			if !ok {
				return sr.corrupt("truncated addrs column at op %d", i)
			}
			prevLoad += uint64(unzigzag64(z))
			b.Addrs = append(b.Addrs, prevLoad)
		case Store:
			z, ok := uv()
			if !ok {
				return sr.corrupt("truncated addrs column at op %d", i)
			}
			prevStore += uint64(unzigzag64(z))
			b.Addrs = append(b.Addrs, prevStore)
		}
		b.Sizes = append(b.Sizes, sizes[si])
		si++
	}

	// Gaps: bitmap + varints.
	gbytes := (n + 7) / 8
	if pos+gbytes > len(p) {
		return sr.corrupt("truncated gap bitmap")
	}
	bitmap := p[pos : pos+gbytes]
	pos += gbytes
	for i := 0; i < n; i++ {
		if bitmap[i/8]&(1<<(i%8)) == 0 {
			b.Gaps = append(b.Gaps, 0)
			continue
		}
		g, ok := uv()
		if !ok {
			return sr.corrupt("truncated gaps column at op %d", i)
		}
		if g == 0 || g > 1<<32-1 {
			return sr.corrupt("op %d: gap %d outside (0, 2^32)", i, g)
		}
		b.Gaps = append(b.Gaps, uint32(g))
	}

	// Datas.
	if pos >= len(p) {
		return sr.corrupt("truncated data codec byte")
	}
	codec := p[pos]
	pos++
	if codec > dataDelta {
		return sr.corrupt("unknown data codec %d", codec)
	}
	var prev uint64
	for i := 0; i < n; i++ {
		if b.Kinds[i] != Store {
			b.Datas = append(b.Datas, 0)
			continue
		}
		var d uint64
		switch codec {
		case dataVarint:
			v, ok := uv()
			if !ok {
				return sr.corrupt("truncated data column at op %d", i)
			}
			d = v
		case dataRaw8:
			if pos+8 > len(p) {
				return sr.corrupt("truncated data column at op %d", i)
			}
			d = binary.LittleEndian.Uint64(p[pos:])
			pos += 8
		case dataDelta:
			z, ok := uv()
			if !ok {
				return sr.corrupt("truncated data column at op %d", i)
			}
			prev += uint64(unzigzag64(z))
			d = prev
		}
		b.Datas = append(b.Datas, d)
	}

	if pos != len(p) {
		return sr.corrupt("%d trailing payload bytes", len(p)-pos)
	}
	if err := b.Validate(); err != nil {
		return sr.corrupt("decoded ops invalid: %v", err)
	}
	return nil
}

// Read returns the next op, or io.EOF at a clean end of trace.
func (sr *SegReader) Read() (Op, error) {
	for sr.seg == nil || sr.pos >= sr.seg.Len() {
		if sr.seg == nil {
			sr.seg = NewBatch(DefaultSegOps)
		}
		if err := sr.ReadSegment(sr.seg); err != nil {
			return Op{}, err
		}
		sr.pos = 0
	}
	op := sr.seg.Op(sr.pos)
	sr.pos++
	return op, nil
}

// ReadAll drains the reader into a slice.
func (sr *SegReader) ReadAll() ([]Op, error) {
	var ops []Op
	for {
		op, err := sr.Read()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		ops = append(ops, op)
	}
}

// SPB2HeaderLen is the size of the file header (magic + version byte)
// that precedes the first sealed segment frame.
const SPB2HeaderLen = 5

// SPB2Header returns the 5-byte file header a valid SPB2 stream opens
// with. Appending sealed frames from ScanSegments after it yields a
// valid stream again — the framing contract the trace-streaming
// service's session log relies on.
func SPB2Header() []byte {
	return append(append([]byte(nil), magic2[:]...), SPB2Version)
}

// ScanSegments iterates the raw sealed segment frames of an SPB2
// stream without decoding the columns. fn receives each segment's
// ordinal and its complete frame — length varint, payload, FNV-64a
// seal — exactly as stored, so frames can be spliced byte-identically
// into another SPB2 stream (split a trace into per-segment upload
// bodies, or append accepted segments to a session log). Each frame's
// seal is verified before fn sees it; any structural damage, including
// trailing garbage after the last frame, surfaces as a
// *CorruptTraceError. The frame slice is reused between calls: copy it
// if it must outlive fn. Returns the number of segments scanned.
func ScanSegments(r io.Reader, fn func(seg int, frame []byte) error) (int, error) {
	br := bufio.NewReader(r)
	var hdr [SPB2HeaderLen]byte
	if n, err := io.ReadFull(br, hdr[:]); err != nil {
		if n == 0 {
			return 0, &EmptyTraceError{Detail: "no bytes (not even a magic)"}
		}
		return 0, &CorruptTraceError{Seg: -1, Detail: fmt.Sprintf("short header: %v", err)}
	}
	if [4]byte(hdr[:4]) != magic2 {
		return 0, &CorruptTraceError{Seg: -1, Detail: "bad magic (not an SPB2 trace)"}
	}
	if hdr[4] != SPB2Version {
		return 0, &CorruptTraceError{Seg: -1,
			Detail: fmt.Sprintf("version stamp %d, this reader handles %d", hdr[4], SPB2Version)}
	}
	var frame []byte
	for seg := 0; ; seg++ {
		frame = frame[:0]
		// Length varint, byte at a time so the raw bytes are retained.
		var plen uint64
		for shift := uint(0); ; shift += 7 {
			b, err := br.ReadByte()
			if err != nil {
				if err == io.EOF && shift == 0 {
					return seg, nil // clean end of stream
				}
				return seg, &CorruptTraceError{Seg: seg, Detail: fmt.Sprintf("truncated segment length: %v", err)}
			}
			frame = append(frame, b)
			if shift >= 64 {
				return seg, &CorruptTraceError{Seg: seg, Detail: "segment length varint overflows"}
			}
			plen |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
		}
		if plen > maxSegPayload {
			return seg, &CorruptTraceError{Seg: seg, Detail: fmt.Sprintf("payload length %d exceeds cap %d", plen, maxSegPayload)}
		}
		off := len(frame)
		frame = append(frame, make([]byte, plen+8)...)
		if _, err := io.ReadFull(br, frame[off:]); err != nil {
			return seg, &CorruptTraceError{Seg: seg, Detail: fmt.Sprintf("truncated payload (%d bytes expected): %v", plen, err)}
		}
		h := fnv.New64a()
		h.Write(frame[off : off+int(plen)])
		if h.Sum64() != binary.LittleEndian.Uint64(frame[off+int(plen):]) {
			return seg, &CorruptTraceError{Seg: seg, Detail: "checksum mismatch"}
		}
		if fn != nil {
			if err := fn(seg, frame); err != nil {
				return seg, err
			}
		}
	}
}

// Format identifies an on-disk trace encoding.
type Format int

const (
	// FormatSPB1 is the flat per-op varint encoding (Writer/Reader).
	FormatSPB1 Format = iota + 1
	// FormatSPB2 is the segmented columnar encoding (SegWriter/SegReader).
	FormatSPB2
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatSPB1:
		return "spb1"
	case FormatSPB2:
		return "spb2"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// Decoder streams ops from either on-disk format, auto-detected from
// the magic, so tooling and replay accept old SPB1 traces and new SPB2
// traces through one interface.
type Decoder struct {
	format Format
	r1     *Reader
	r2     *SegReader
}

// NewDecoder sniffs r's magic and returns a streaming decoder for
// whichever format it holds.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	hdr, err := br.Peek(4)
	if err != nil {
		if len(hdr) == 0 {
			return nil, &EmptyTraceError{Detail: "no bytes (not even a magic)"}
		}
		return nil, &CorruptTraceError{Seg: -1, Detail: fmt.Sprintf("short header: %v", err)}
	}
	switch {
	case [4]byte(hdr) == magic:
		return &Decoder{format: FormatSPB1, r1: NewReader(br)}, nil
	case [4]byte(hdr) == magic2:
		return &Decoder{format: FormatSPB2, r2: NewSegReader(br)}, nil
	default:
		return nil, &CorruptTraceError{Seg: -1, Detail: "bad magic (neither SPB1 nor SPB2)"}
	}
}

// Format returns the detected encoding.
func (d *Decoder) Format() Format { return d.format }

// Read returns the next op, or io.EOF at end of trace.
func (d *Decoder) Read() (Op, error) {
	if d.r1 != nil {
		return d.r1.Read()
	}
	return d.r2.Read()
}

// ReadAll drains the decoder into a slice.
func (d *Decoder) ReadAll() ([]Op, error) {
	if d.r1 != nil {
		return d.r1.ReadAll()
	}
	return d.r2.ReadAll()
}

// readSegment fills b with the next chunk of ops: a whole decoded
// segment for SPB2, up to DefaultSegOps scalar reads for SPB1.
func (d *Decoder) readSegment(b *Batch) error {
	if d.r2 != nil {
		return d.r2.ReadSegment(b)
	}
	b.Reset()
	for b.Len() < DefaultSegOps {
		op, err := d.r1.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		b.Append(op)
	}
	if b.Len() == 0 {
		return io.EOF
	}
	return nil
}

// FileBatchSource replays a recorded trace as a trace.BatchSource (and
// scalar Source), so the harness and engine.RunBatch run recorded
// traces exactly as they run generated ones. Decoding is segment-at-a-
// time into two internal buffers, alternating so the zero-copy views
// handed to a double-buffered consumer stay valid while the next
// segment decodes — the FileBatchSource counterpart of the
// SliceBatchSource aliasing contract.
//
// NextBatch returning false means end of stream or error; callers must
// check Err afterwards. As with any BatchSource, consume the stream
// through NextBatch or Next, not both.
type FileBatchSource struct {
	c    io.Closer
	d    *Decoder
	bufs [2]*Batch
	flip int
	cur  *Batch
	pos  int
	n    uint64
	err  error
	done bool
}

// NewFileBatchSource returns a batched source over r (either format).
// If r is an io.Closer, Close closes it.
func NewFileBatchSource(r io.Reader) (*FileBatchSource, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	s := &FileBatchSource{d: d}
	if c, ok := r.(io.Closer); ok {
		s.c = c
	}
	s.bufs[0] = NewBatch(DefaultSegOps)
	s.bufs[1] = NewBatch(DefaultSegOps)
	return s, nil
}

// OpenFile opens a recorded trace file as a batched source.
func OpenFile(path string) (*FileBatchSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := NewFileBatchSource(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// advance decodes segments until the cursor points at unread ops.
func (s *FileBatchSource) advance() bool {
	if s.err != nil || s.done {
		return false
	}
	for s.cur == nil || s.pos >= s.cur.Len() {
		nb := s.bufs[s.flip]
		s.flip ^= 1
		err := s.d.readSegment(nb)
		if err == io.EOF {
			s.done = true
			return false
		}
		if err != nil {
			s.err = err
			return false
		}
		s.cur, s.pos = nb, 0
	}
	return true
}

// NextBatch implements trace.BatchSource: b's columns become read-only
// views into the current decoded segment.
func (s *FileBatchSource) NextBatch(b *Batch) bool {
	if !s.advance() {
		return false
	}
	n := s.cur.Len() - s.pos
	if n > DefaultBatchCap {
		n = DefaultBatchCap
	}
	lo, hi := s.pos, s.pos+n
	b.Kinds = s.cur.Kinds[lo:hi:hi]
	b.Addrs = s.cur.Addrs[lo:hi:hi]
	b.Sizes = s.cur.Sizes[lo:hi:hi]
	b.Datas = s.cur.Datas[lo:hi:hi]
	b.Gaps = s.cur.Gaps[lo:hi:hi]
	s.pos = hi
	s.n += uint64(n)
	return true
}

// Next implements trace.Source.
func (s *FileBatchSource) Next() (Op, bool) {
	if !s.advance() {
		return Op{}, false
	}
	op := s.cur.Op(s.pos)
	s.pos++
	s.n++
	return op, true
}

// Count returns the number of ops handed out so far.
func (s *FileBatchSource) Count() uint64 { return s.n }

// Format returns the underlying file's encoding.
func (s *FileBatchSource) Format() Format { return s.d.Format() }

// Err returns the first decode error (nil after a clean end of stream).
func (s *FileBatchSource) Err() error { return s.err }

// Close closes the underlying file, if any.
func (s *FileBatchSource) Close() error {
	if s.c == nil {
		return nil
	}
	return s.c.Close()
}
