// Package bmt implements the Bonsai Merkle Tree protecting the split
// counters (Rogers et al.), the on-chip non-volatile root register, and
// the Bonsai Merkle Forest (BMF) height-reduction models used by the
// paper's Figure 9 study.
//
// The tree is functional: nodes hold real SHA-512 hashes over real
// counter lines, so tamper and rollback attacks are actually detected by
// verification, and crash-recovery experiments validate real state. The
// tree is sparse — untouched subtrees collapse to precomputed
// default hashes — so an 8GB PM image costs memory proportional only to
// the touched footprint.
package bmt

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"

	"secpb/internal/crypto"
	"secpb/internal/ptable"
	"secpb/internal/runner"
)

// Arity is the tree fan-out: eight 8-byte child digests pack one 64B
// metadata line, exactly the node layout hardware integrity trees use.
const Arity = 8

// DigestSize is the per-node digest width: SHA-512 output truncated to
// 8 bytes, so Arity digests fill one metadata line. (Real BMTs use
// truncated hashes for the same reason; the full-width MAC protecting
// data blocks is unaffected.)
const DigestSize = 8

// Digest is one tree node's truncated hash.
type Digest [DigestSize]byte

// truncate folds a full SHA-512 output into a node digest.
func truncate(h [crypto.Size512]byte) Digest {
	var d Digest
	copy(d[:], h[:DigestSize])
	return d
}

// Hasher abstracts the crypto engine's node hash.
type Hasher interface {
	HashNode(children []byte) [crypto.Size512]byte
}

// Tree is a sparse Merkle tree of fixed height over counter lines.
// Level 0 holds leaf hashes (one per counter line); level height-1 holds
// the Arity children of the root; the root itself lives in an on-chip NV
// register and never leaves the TCB.
//
// Physical hashing is coalesced (Freij et al., "Streamlining Integrity
// Tree Updates"): Update stages the counter line in a dirty-leaf set and
// defers hashing; Sweep commits all staged leaves with one deduplicated
// bottom-up pass, so interior nodes shared by many updated leaves are
// hashed once per sweep instead of once per leaf-to-root walk. Every
// observation of tree state (Root, Verify, Tamper, Snapshot,
// NodesMaterialized) sweeps first, so stored nodes and the root register
// are always observationally identical to the eager per-walk scheme.
//
// Accounting stays logical: Updates() counts leaf-to-root walks exactly
// as the eager tree did (the Figure 8 statistic), while PhysicalHashes()
// separately counts node hashes actually computed.
type Tree struct {
	h        Hasher
	height   int
	capacity uint64 // number of leaves = Arity^height
	// levels[l] stores the materialized (non-default) node digests of
	// level l, keyed by node index. The index streams are dense block
	// ranges, so a radix table beats the per-node hash-and-probe of a
	// map on the sweep and verify paths.
	levels   []*ptable.Table[Digest]
	defaults []Digest // default node hash per level
	root     Digest
	updates  uint64 // leaf-to-root update walks performed (logical)
	// pending maps a dirty leaf index to its staged counter-line copy
	// (last writer wins, as in the eager scheme); freeLines recycles
	// staged-line buffers across sweeps and sweepIdx is the reusable
	// per-level index scratch for the deduplicated bottom-up pass.
	pending    map[uint64][]byte
	freeLines  [][]byte
	sweepIdx   []uint64
	physHashes uint64 // node hashes actually computed
	// nodeBuf is the reusable child-concatenation buffer for hashChildren;
	// a stack array would escape through the Hasher interface call and
	// cost one heap allocation per node hash on the drain path.
	nodeBuf [Arity * DigestSize]byte
	// sweepWorkers pins this tree's sweep parallelism: 0 defers to the
	// package default then to the automatic policy, 1 forces the serial
	// sweep, n>1 allows up to n concurrent subtree workers.
	sweepWorkers int
}

// New builds an empty tree of the given height (number of hash levels
// between a leaf and the root) using hasher h.
func New(h Hasher, height int) (*Tree, error) {
	if height <= 0 || height > 24 {
		return nil, fmt.Errorf("bmt: height %d out of range [1,24]", height)
	}
	t := &Tree{h: h, height: height}
	t.capacity = 1
	for i := 0; i < height; i++ {
		t.capacity *= Arity
	}
	t.levels = make([]*ptable.Table[Digest], height)
	for i := range t.levels {
		t.levels[i] = ptable.New[Digest]()
	}
	t.pending = make(map[uint64][]byte)
	// Default hashes: level 0 default is the hash of an absent (all
	// zero) leaf; level l default hashes Arity copies of level l-1's.
	t.defaults = make([]Digest, height+1)
	t.defaults[0] = truncate(h.HashNode(nil))
	for l := 1; l <= height; l++ {
		var buf [Arity * DigestSize]byte
		for i := 0; i < Arity; i++ {
			copy(buf[i*DigestSize:], t.defaults[l-1][:])
		}
		t.defaults[l] = truncate(h.HashNode(buf[:]))
	}
	t.root = t.defaults[height]
	return t, nil
}

// Height returns the number of hash levels from leaf to root.
func (t *Tree) Height() int { return t.height }

// Capacity returns the number of leaves.
func (t *Tree) Capacity() uint64 { return t.capacity }

// Root returns the current root register value, committing any staged
// updates first.
func (t *Tree) Root() Digest {
	t.Sweep()
	return t.root
}

// Updates returns the number of leaf-to-root update walks performed —
// the statistic Figure 8 reports. This is a logical count: it is
// unaffected by how many physical hashes sweep coalescing saved.
func (t *Tree) Updates() uint64 { return t.updates }

// PhysicalHashes returns the number of node hashes actually computed by
// sweeps — the wall-clock-relevant counterpart to Updates().
func (t *Tree) PhysicalHashes() uint64 { return t.physHashes }

// node returns the stored hash at (level, index), or the level default.
func (t *Tree) node(level int, idx uint64) Digest {
	if v := t.levels[level].Lookup(idx); v != nil {
		return *v
	}
	return t.defaults[level]
}

// hashChildren hashes the Arity children of parentIdx, whose children
// live at childLevel, taking stored values or level defaults.
func (t *Tree) hashChildren(parentIdx uint64, childLevel int) Digest {
	base := parentIdx * Arity
	if vals, present, ok := t.levels[childLevel].Octet(base); ok {
		// One directory walk covers all eight children (the range is
		// 8-aligned); absent bits take the level default.
		def := &t.defaults[childLevel]
		for i := 0; i < Arity; i++ {
			src := def
			if present&(1<<i) != 0 {
				src = &vals[i]
			}
			copy(t.nodeBuf[i*DigestSize:], src[:])
		}
		return truncate(t.h.HashNode(t.nodeBuf[:]))
	}
	for i := uint64(0); i < Arity; i++ {
		c := t.node(childLevel, base+i)
		copy(t.nodeBuf[i*DigestSize:], c[:])
	}
	return truncate(t.h.HashNode(t.nodeBuf[:]))
}

// leafIndex maps a counter-line (page) index onto the leaf space.
func (t *Tree) leafIndex(page uint64) uint64 { return page % t.capacity }

// LeafHash computes the leaf digest for a counter line's serialized
// contents.
func (t *Tree) LeafHash(counterLine []byte) Digest {
	return truncate(t.h.HashNode(counterLine))
}

// Update registers a leaf-to-root update walk for the counter line: the
// line is staged in the dirty-leaf set and the physical hashing is
// deferred to the next Sweep (triggered by any observation of tree
// state). It returns the number of node hashes the walk accounts for
// (height), exactly as the eager implementation did.
func (t *Tree) Update(page uint64, counterLine []byte) int {
	t.stage(page, counterLine)
	t.updates++
	return t.height
}

// UpdateBatch registers one update walk per page — lineOf must return
// the counter line for a given page — and commits them with a single
// deduplicated sweep. It returns the total logical node-hash count
// (len(pages) × height), matching what sequential Update calls would
// have returned; Updates() likewise advances by len(pages).
func (t *Tree) UpdateBatch(pages []uint64, lineOf func(page uint64) []byte) int {
	for _, p := range pages {
		t.stage(p, lineOf(p))
		t.updates++
	}
	t.Sweep()
	return len(pages) * t.height
}

// stage copies the counter line into the dirty-leaf set, recycling a
// previously swept buffer when one is free. Later writes to the same
// leaf overwrite earlier ones, as in the eager scheme.
func (t *Tree) stage(page uint64, counterLine []byte) {
	idx := t.leafIndex(page)
	buf := t.pending[idx]
	if buf == nil {
		if n := len(t.freeLines); n > 0 {
			buf, t.freeLines = t.freeLines[n-1], t.freeLines[:n-1]
		}
	}
	t.pending[idx] = append(buf[:0], counterLine...)
}

// Sweep commits all staged leaves in one deduplicated bottom-up pass:
// every dirty leaf is hashed once, then each level's touched parent set
// is deduplicated and hashed once, and the root register is recomputed
// once at the top. It returns the number of node hashes computed, which
// is also added to PhysicalHashes(). Sweeping is observationally
// equivalent to eager per-walk updates because each stored node is
// recomputed from the same final child values.
func (t *Tree) Sweep() int {
	if len(t.pending) == 0 {
		return 0
	}
	if w := t.resolveSweepWorkers(); w > 1 {
		if n, ok := t.sweepParallel(w); ok {
			return n
		}
	}
	n := 0
	idxs := t.sweepIdx[:0]
	for idx, line := range t.pending {
		t.levels[0].Put(idx, t.LeafHash(line))
		n++
		idxs = append(idxs, idx/Arity)
		t.freeLines = append(t.freeLines, line)
		delete(t.pending, idx)
	}
	for l := 1; l < t.height; l++ {
		slices.Sort(idxs)
		idxs = slices.Compact(idxs)
		for i, parent := range idxs {
			t.levels[l].Put(parent, t.hashChildren(parent, l-1))
			n++
			idxs[i] = parent / Arity
		}
	}
	t.root = t.hashChildren(0, t.height-1)
	n++
	t.sweepIdx = idxs[:0]
	t.physHashes += uint64(n)
	return n
}

// defaultSweepWorkers is the package-wide sweep-parallelism policy for
// trees that do not pin their own width, settable by tooling (the
// secpb-bench -parallel flag and the identity tests): 0 auto, 1 serial,
// n>1 that many subtree workers.
var defaultSweepWorkers atomic.Int32

// SetDefaultSweepWorkers sets the package-default sweep parallelism for
// trees that do not pin their own (same encoding as SetSweepWorkers).
func SetDefaultSweepWorkers(n int) { defaultSweepWorkers.Store(int32(n)) }

// DefaultSweepWorkers returns the package-default sweep parallelism.
func DefaultSweepWorkers() int { return int(defaultSweepWorkers.Load()) }

// SetSweepWorkers pins this tree's sweep parallelism, overriding the
// package default: 0 restores the automatic choice, 1 forces the serial
// sweep, n>1 allows up to n concurrent subtree workers.
func (t *Tree) SetSweepWorkers(n int) { t.sweepWorkers = n }

// parallelSweepMinLeaves is the automatic policy's floor: below this
// many dirty leaves the per-sweep partition and join overhead exceeds
// what eight-way hashing saves.
const parallelSweepMinLeaves = 64

// resolveSweepWorkers resolves the effective sweep width for the
// current pending set. Auto engages only when the process actually has
// parallel hardware and the dirty set is wide enough to amortize the
// fork/join; a pinned width is honored regardless (the identity tests
// force the parallel path on single-CPU hosts this way).
func (t *Tree) resolveSweepWorkers() int {
	n := t.sweepWorkers
	if n == 0 {
		n = DefaultSweepWorkers()
	}
	if n == 0 {
		if runtime.GOMAXPROCS(0) <= 1 || len(t.pending) < parallelSweepMinLeaves {
			return 1
		}
		n = runtime.GOMAXPROCS(0)
	}
	if n > Arity {
		// Subtree partitioning fans out over the root's children, so
		// more than Arity workers never get work.
		n = Arity
	}
	return n
}

// cloneHasher asks the hasher for an independent clone for a sweep
// worker. The crypto engine satisfies this through an untyped method
// (CloneHasher) discovered by interface assertion, so this package
// needs no dependency on the engine's concrete type.
func cloneHasher(h Hasher) (Hasher, bool) {
	c, ok := h.(interface{ CloneHasher() any })
	if !ok {
		return nil, false
	}
	h2, ok := c.CloneHasher().(Hasher)
	return h2, ok
}

// nodeWrite is one digest computed by a sweep worker, recorded in the
// worker's deterministic processing order and merged serially.
type nodeWrite struct {
	level int
	idx   uint64
	d     Digest
}

// sweepParallel commits the staged leaves with concurrent per-subtree
// workers. The dirty-leaf set is partitioned by the root's children:
// a leaf's whole update path below the root stays inside its top-level
// subtree, so the partitions touch disjoint node sets and every worker
// hashes its subtree bottom-up exactly as the serial sweep would.
// Workers read the shared tables (frozen during the sweep) plus a
// private overlay of their own writes; the writes merge serially after
// the join, in ascending subtree order, and the root is rehashed once
// at the end. Both the stored digests and the PhysicalHashes() count
// are identical to the serial sweep's: the same node set is recomputed
// from the same final child values, in a different order.
//
// Returns ok=false — leaving the pending set untouched — when the
// partition is degenerate (fewer than two dirty subtrees) or the
// hasher cannot clone; the caller then runs the serial sweep.
func (t *Tree) sweepParallel(workers int) (int, bool) {
	if _, ok := cloneHasher(t.h); !ok {
		return 0, false
	}
	div := t.capacity / Arity
	var parts [Arity][]uint64
	for idx := range t.pending {
		parts[idx/div] = append(parts[idx/div], idx)
	}
	tasks := make([][]uint64, 0, Arity)
	for s := range parts {
		if len(parts[s]) > 0 {
			slices.Sort(parts[s])
			tasks = append(tasks, parts[s])
		}
	}
	if len(tasks) < 2 {
		return 0, false
	}
	type result struct {
		writes []nodeWrite
		n      int
	}
	results, err := runner.Map(context.Background(), workers, tasks,
		func(_ context.Context, _ int, leaves []uint64) (result, error) {
			h, ok := cloneHasher(t.h)
			if !ok {
				return result{}, fmt.Errorf("bmt: hasher clone unavailable")
			}
			var buf [Arity * DigestSize]byte
			overlay := make([]map[uint64]Digest, t.height)
			for i := range overlay {
				overlay[i] = make(map[uint64]Digest)
			}
			res := result{writes: make([]nodeWrite, 0, 2*len(leaves))}
			idxs := make([]uint64, 0, len(leaves))
			for _, idx := range leaves {
				d := truncate(h.HashNode(t.pending[idx]))
				overlay[0][idx] = d
				res.writes = append(res.writes, nodeWrite{0, idx, d})
				res.n++
				idxs = append(idxs, idx/Arity)
			}
			for l := 1; l < t.height; l++ {
				// Sorted leaves keep the parent stream nondecreasing,
				// so compaction needs no re-sort.
				idxs = slices.Compact(idxs)
				for i, parent := range idxs {
					d := t.hashChildrenInto(h, &buf, overlay[l-1], parent, l-1)
					overlay[l][parent] = d
					res.writes = append(res.writes, nodeWrite{l, parent, d})
					res.n++
					idxs[i] = parent / Arity
				}
			}
			return res, nil
		})
	if err != nil {
		return 0, false
	}
	n := 0
	for _, r := range results {
		for _, w := range r.writes {
			t.levels[w.level].Put(w.idx, w.d)
		}
		n += r.n
	}
	for idx, line := range t.pending {
		t.freeLines = append(t.freeLines, line)
		delete(t.pending, idx)
	}
	t.root = t.hashChildren(0, t.height-1)
	n++
	t.physHashes += uint64(n)
	return n, true
}

// hashChildrenInto is hashChildren for a sweep worker: private hasher
// and concatenation buffer, child lookups consult the worker's overlay
// of this sweep's writes before the shared (frozen) level table.
func (t *Tree) hashChildrenInto(h Hasher, buf *[Arity * DigestSize]byte, overlay map[uint64]Digest, parentIdx uint64, childLevel int) Digest {
	for i := uint64(0); i < Arity; i++ {
		child := parentIdx*Arity + i
		c, ok := overlay[child]
		if !ok {
			if v := t.levels[childLevel].Lookup(child); v != nil {
				c = *v
			} else {
				c = t.defaults[childLevel]
			}
		}
		copy(buf[i*DigestSize:], c[:])
	}
	return truncate(h.HashNode(buf[:]))
}

// Verify checks the counter line against the tree: the stored leaf must
// match the line's hash, every stored parent must match the hash of its
// stored children, and the top level must match the root register. Any
// tampering of the counter line or of stored tree nodes — including
// consistent tampering of a whole path — is detected because the root
// register is on-chip.
func (t *Tree) Verify(page uint64, counterLine []byte) error {
	t.Sweep()
	idx := t.leafIndex(page)
	if got, want := t.node(0, idx), t.LeafHash(counterLine); got != want {
		return fmt.Errorf("bmt: leaf %d does not match counter line (stale or tampered counter)", idx)
	}
	for l := 1; l < t.height; l++ {
		parent := idx / Arity
		if got, want := t.node(l, parent), t.hashChildren(parent, l-1); got != want {
			return fmt.Errorf("bmt: node mismatch at level %d index %d", l, parent)
		}
		idx = parent
	}
	if got := t.hashChildren(0, t.height-1); got != t.root {
		return fmt.Errorf("bmt: root register mismatch")
	}
	return nil
}

// PathNodeIDs returns stable identifiers for the nodes on the page's
// leaf-to-root path (excluding the root register). The engine keys these
// into the BMT metadata cache for timing.
func (t *Tree) PathNodeIDs(page uint64) []uint64 {
	return t.AppendPathNodeIDs(make([]uint64, 0, t.height), page)
}

// AppendPathNodeIDs appends the path node identifiers to dst and returns
// the extended slice, letting hot-path callers reuse a scratch slice
// instead of allocating per walk.
func (t *Tree) AppendPathNodeIDs(dst []uint64, page uint64) []uint64 {
	idx := t.leafIndex(page)
	for l := 0; l < t.height; l++ {
		// Pack (level, index) into one word; level in the top bits.
		dst = append(dst, uint64(l)<<56|idx)
		idx /= Arity
	}
	return dst
}

// SetHasher re-homes the tree on a different hasher. A controller
// restored from a crash snapshot uses it to hash with its own fresh
// crypto engine; for the same key the results are identical, so stored
// nodes, defaults and the root register all remain valid.
func (t *Tree) SetHasher(h Hasher) { t.h = h }

// Node returns the stored hash at (level, idx) and whether that node was
// ever materialized (attack/test primitive: tamper experiments read a
// node before overwriting it with a corrupted value).
func (t *Tree) Node(level int, idx uint64) (Digest, bool) {
	t.Sweep()
	if level < 0 || level >= t.height {
		return Digest{}, false
	}
	if v := t.levels[level].Lookup(idx); v != nil {
		return *v, true
	}
	return Digest{}, false
}

// Tamper overwrites a stored node hash (attack primitive for tests). It
// reports an error if the node was never materialized.
func (t *Tree) Tamper(level int, idx uint64, newHash Digest) error {
	t.Sweep()
	if level < 0 || level >= t.height {
		return fmt.Errorf("bmt: level %d out of range", level)
	}
	v := t.levels[level].Lookup(idx)
	if v == nil {
		return fmt.Errorf("bmt: node (%d,%d) not materialized", level, idx)
	}
	*v = newHash
	return nil
}

// Snapshot deep-copies the tree (the persisted PM image plus the NV root
// register at a crash point). Staged updates are committed first: an
// Update models a persisted walk, so the crash image must contain it.
func (t *Tree) Snapshot() *Tree {
	t.Sweep()
	cp := &Tree{
		h:        t.h,
		height:   t.height,
		capacity: t.capacity,
		defaults: t.defaults,
		root:     t.root,
		updates:  t.updates,
	}
	cp.physHashes = t.physHashes
	cp.sweepWorkers = t.sweepWorkers
	cp.levels = make([]*ptable.Table[Digest], t.height)
	for l := range t.levels {
		cp.levels[l] = t.levels[l].Clone()
	}
	cp.pending = make(map[uint64][]byte)
	return cp
}

// NodesMaterialized returns the number of non-default nodes stored.
func (t *Tree) NodesMaterialized() int {
	t.Sweep()
	n := 0
	for _, m := range t.levels {
		n += m.Len()
	}
	return n
}
