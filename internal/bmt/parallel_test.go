package bmt

import (
	"fmt"
	"testing"

	"secpb/internal/crypto"
)

// stageSpread stages a deterministic pseudo-random dirty set of n
// distinct leaves spread over every top-level subtree.
func stageSpread(tr *Tree, n int, salt uint64) {
	rng := 0x9E3779B97F4A7C15 ^ salt
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		page := rng % tr.Capacity()
		tr.Update(page, lineBytes(rng, uint8(i), uint8(salt)))
	}
}

// TestParallelSweepMatchesSerial holds the parallel sweep identical to
// the serial one at every worker width: same root, same stored node set
// and values, same Updates() and PhysicalHashes() counts.
func TestParallelSweepMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			serial, _ := newTestTree(t, 5)
			par, _ := newTestTree(t, 5)
			serial.SetSweepWorkers(1)
			par.SetSweepWorkers(workers)
			for round := 0; round < 6; round++ {
				// Mix wide and narrow dirty sets so both the parallel
				// path and its degenerate-partition fallback run.
				n := 7 + round*97
				stageSpread(serial, n, uint64(round))
				stageSpread(par, n, uint64(round))
				sn := serial.Sweep()
				pn := par.Sweep()
				if sn != pn {
					t.Fatalf("round %d: sweep hashed %d nodes parallel vs %d serial", round, pn, sn)
				}
			}
			sr, sl, su := treeFingerprint(serial)
			pr, pl, pu := treeFingerprint(par)
			if sr != pr {
				t.Fatalf("root mismatch: serial %x, parallel %x", sr, pr)
			}
			if su != pu {
				t.Fatalf("updates mismatch: serial %d, parallel %d", su, pu)
			}
			if serial.PhysicalHashes() != par.PhysicalHashes() {
				t.Fatalf("physical hashes: serial %d, parallel %d",
					serial.PhysicalHashes(), par.PhysicalHashes())
			}
			for l := range sl {
				if len(sl[l]) != len(pl[l]) {
					t.Fatalf("level %d materialized %d nodes parallel vs %d serial", l, len(pl[l]), len(sl[l]))
				}
				for k, v := range sl[l] {
					if pl[l][k] != v {
						t.Fatalf("level %d node %d differs", l, k)
					}
				}
			}
			if err := par.Verify(1, lineBytes(0, 1)); err == nil {
				t.Fatal("verify of an unstaged line must fail after sweeps")
			}
		})
	}
}

// TestParallelSweepDefaultPolicy checks the package default steers
// unpinned trees and that a pinned width overrides it.
func TestParallelSweepDefaultPolicy(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	defer SetDefaultSweepWorkers(0)
	SetDefaultSweepWorkers(4)
	stageSpread(tr, 100, 7)
	if got := tr.resolveSweepWorkers(); got != 4 {
		t.Fatalf("default workers 4: resolved %d", got)
	}
	tr.SetSweepWorkers(1)
	if got := tr.resolveSweepWorkers(); got != 1 {
		t.Fatalf("pinned serial under default 4: resolved %d", got)
	}
	tr.SetSweepWorkers(16)
	if got := tr.resolveSweepWorkers(); got != Arity {
		t.Fatalf("width above arity must clamp to %d, resolved %d", Arity, got)
	}
}

// BenchmarkSweepParallel measures a wide coalesced sweep (256 distinct
// dirty leaves staged per op) at serial and parallel widths. On
// multi-core hosts the parallel widths show the subtree fan-out win;
// under GOMAXPROCS=1 they bound the fork/join overhead instead.
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			e, err := crypto.NewEngine([]byte("sweep bench"))
			if err != nil {
				b.Fatal(err)
			}
			tr, err := New(e, 5)
			if err != nil {
				b.Fatal(err)
			}
			tr.SetSweepWorkers(workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				stageSpread(tr, 256, uint64(i))
				b.StartTimer()
				tr.Sweep()
			}
		})
	}
}
