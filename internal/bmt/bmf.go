package bmt

import (
	"secpb/internal/config"
	"secpb/internal/mem"
)

// HeightModel computes how many tree levels a leaf-to-root update or
// verification walk must traverse, under the full BMT or a Bonsai Merkle
// Forest (BMF) height-reduction scheme (Freij et al., MICRO'21).
//
// Under BMF the tree is split into subtrees whose roots are pinned in an
// on-chip root cache; an update whose subtree root is cached stops at
// the subtree root (reduced height). A root-cache miss must first swap
// the subtree root in, paying a full-height walk.
//
//   - DBMF (dynamic) re-roots subtrees on demand: effective height 2 in
//     the paper's configuration.
//   - SBMF (static) partitions the tree statically: effective height 5.
//
// The functional tree (Tree) is unaffected: BMF changes where updates
// may stop for timing purposes, not the protection structure modeled
// functionally.
type HeightModel struct {
	mode       config.BMFMode
	fullHeight int
	redHeight  int
	rootCache  *mem.Cache
	subShift   uint // log2(pages per subtree root)

	hits, misses uint64
}

// NewHeightModel builds the model from the configuration.
func NewHeightModel(cfg config.Config) *HeightModel {
	m := &HeightModel{mode: cfg.BMFMode, fullHeight: cfg.BMTLevels}
	if cfg.BMFMode == config.BMFNone {
		m.redHeight = cfg.BMTLevels
		return m
	}
	switch cfg.BMFMode {
	case config.BMFDynamic:
		m.redHeight = cfg.DBMFHeight
	case config.BMFStatic:
		m.redHeight = cfg.SBMFHeight
	}
	// A subtree root at reduced height h covers Arity^h leaves (pages);
	// Arity is 8 so the shift is 3*h.
	m.subShift = uint(3 * m.redHeight)
	// The root cache holds 64B entries: 4KB -> 64 subtree roots.
	rootCfg := config.CacheConfig{
		SizeBytes:    cfg.RootCacheKB << 10,
		Ways:         8,
		BlockBytes:   64,
		AccessCycles: 1,
	}
	m.rootCache = mem.NewCache("bmfroot", rootCfg)
	return m
}

// Mode returns the configured BMF mode.
func (m *HeightModel) Mode() config.BMFMode { return m.mode }

// WalkLevels returns the number of hash levels an update/verify of the
// given page traverses. For BMF modes a root-cache miss pays the full
// height (subtree root swap-in) and installs the root for future walks.
func (m *HeightModel) WalkLevels(page uint64) int {
	if m.mode == config.BMFNone {
		return m.fullHeight
	}
	rootID := (page >> m.subShift) << 6 // pseudo-address of subtree root
	if m.rootCache.Access(rootID, true, false) {
		m.hits++
		return m.redHeight
	}
	m.misses++
	m.rootCache.Fill(rootID, true, false)
	return m.fullHeight
}

// Stats returns root-cache (hits, misses); both are zero under BMFNone.
func (m *HeightModel) Stats() (hits, misses uint64) { return m.hits, m.misses }
