package bmt

import (
	"testing"

	"secpb/internal/config"
	"secpb/internal/crypto"
	"secpb/internal/meta"
)

func newTestTree(t *testing.T, height int) (*Tree, *crypto.Engine) {
	t.Helper()
	e, err := crypto.NewEngine([]byte("bmt test"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(e, height)
	if err != nil {
		t.Fatal(err)
	}
	return tr, e
}

func lineBytes(major uint64, minors ...uint8) []byte {
	cl := &meta.CounterLine{Major: major}
	copy(cl.Minors[:], minors)
	return cl.Bytes()
}

func TestNewRejectsBadHeight(t *testing.T) {
	e, _ := crypto.NewEngine([]byte("k"))
	for _, h := range []int{0, -1, 25} {
		if _, err := New(e, h); err == nil {
			t.Errorf("height %d accepted", h)
		}
	}
}

func TestCapacity(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	if tr.Capacity() != 8*8*8*8 {
		t.Errorf("capacity = %d, want 4096", tr.Capacity())
	}
	if tr.Height() != 4 {
		t.Errorf("height = %d", tr.Height())
	}
}

func TestUpdateChangesRoot(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	r0 := tr.Root()
	n := tr.Update(5, lineBytes(0, 1))
	if n != 4 {
		t.Errorf("Update hashed %d levels, want 4", n)
	}
	if tr.Root() == r0 {
		t.Error("root unchanged after update")
	}
	if tr.Updates() != 1 {
		t.Errorf("Updates = %d", tr.Updates())
	}
}

func TestVerifyAfterUpdate(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	line := lineBytes(0, 1, 2, 3)
	tr.Update(17, line)
	if err := tr.Verify(17, line); err != nil {
		t.Fatalf("verify of fresh update failed: %v", err)
	}
}

func TestVerifyManyPages(t *testing.T) {
	tr, _ := newTestTree(t, 5)
	lines := map[uint64][]byte{}
	for p := uint64(0); p < 200; p += 7 {
		l := lineBytes(p, uint8(p), uint8(p+1))
		tr.Update(p, l)
		lines[p] = l
	}
	for p, l := range lines {
		if err := tr.Verify(p, l); err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
	}
}

func TestRollbackDetected(t *testing.T) {
	// Replay attack: present an older counter line with its (then
	// valid) value. The tree must reject it because the leaf has moved.
	tr, _ := newTestTree(t, 4)
	oldLine := lineBytes(0, 1)
	newLine := lineBytes(0, 2)
	tr.Update(9, oldLine)
	tr.Update(9, newLine)
	if err := tr.Verify(9, oldLine); err == nil {
		t.Fatal("rolled-back counter line accepted")
	}
	if err := tr.Verify(9, newLine); err != nil {
		t.Fatalf("current line rejected: %v", err)
	}
}

func TestNodeTamperDetected(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	line := lineBytes(1, 5)
	tr.Update(3, line)
	var evil Digest
	evil[0] = 0xFF
	// Tamper each materialized level on the path; every one must break
	// verification.
	for level := 0; level < tr.Height(); level++ {
		snap := tr.Snapshot()
		idx := uint64(3)
		for l := 0; l < level; l++ {
			idx /= Arity
		}
		if err := snap.Tamper(level, idx, evil); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if err := snap.Verify(3, line); err == nil {
			t.Errorf("tamper at level %d undetected", level)
		}
	}
}

func TestConsistentPathTamperDetectedByRoot(t *testing.T) {
	// An attacker who rewrites the leaf AND recomputes every ancestor
	// consistently still fails: the root register is on-chip.
	tr, e := newTestTree(t, 3)
	tr.Update(2, lineBytes(0, 1))
	forged := lineBytes(0, 9)
	// Build a fully consistent forged tree, then restore the real root
	// register (the attacker cannot touch it).
	forgedTree := tr.Snapshot()
	forgedTree.Update(2, forged)
	forgedTree.Sweep() // commit the forgery before poking the register
	realRoot := tr.Root()
	forgedTree.root = realRoot
	if err := forgedTree.Verify(2, forged); err == nil {
		t.Fatal("consistent path forgery accepted despite root register")
	}
	_ = e
}

func TestTamperErrors(t *testing.T) {
	tr, _ := newTestTree(t, 3)
	var h Digest
	if err := tr.Tamper(9, 0, h); err == nil {
		t.Error("out-of-range level accepted")
	}
	if err := tr.Tamper(0, 5, h); err == nil {
		t.Error("unmaterialized node accepted")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	line1 := lineBytes(0, 1)
	tr.Update(1, line1)
	snap := tr.Snapshot()
	line2 := lineBytes(0, 2)
	tr.Update(1, line2)
	if err := snap.Verify(1, line1); err != nil {
		t.Errorf("snapshot lost state: %v", err)
	}
	if err := snap.Verify(1, line2); err == nil {
		t.Error("snapshot sees post-snapshot update")
	}
}

func TestPathNodeIDs(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	ids := tr.PathNodeIDs(100)
	if len(ids) != 4 {
		t.Fatalf("path length = %d", len(ids))
	}
	seen := map[uint64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Error("duplicate node id on path")
		}
		seen[id] = true
	}
	// Sibling pages (same parent) share all but the leaf ID.
	a := tr.PathNodeIDs(0)
	b := tr.PathNodeIDs(1)
	if a[0] == b[0] {
		t.Error("distinct leaves share leaf id")
	}
	if a[1] != b[1] {
		t.Error("sibling leaves do not share parent id")
	}
}

func TestDistantPagesShareRootChild(t *testing.T) {
	tr, _ := newTestTree(t, 3)
	// Pages 0 and 63 are within the same 64-leaf subtree at level 2.
	a := tr.PathNodeIDs(0)
	b := tr.PathNodeIDs(63)
	if a[2] != b[2] {
		t.Error("pages 0 and 63 should share the level-2 ancestor in an arity-8 tree")
	}
}

func TestNodesMaterializedGrows(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	if tr.NodesMaterialized() != 0 {
		t.Fatal("fresh tree has materialized nodes")
	}
	tr.Update(0, lineBytes(0, 1))
	if got := tr.NodesMaterialized(); got != 4 {
		t.Errorf("after one update materialized = %d, want 4", got)
	}
}

// treeFingerprint captures everything observable about a tree's stored
// state: root register, per-level materialized nodes, and the logical
// update count.
func treeFingerprint(tr *Tree) (Digest, []map[uint64]Digest, uint64) {
	root := tr.Root()
	levels := make([]map[uint64]Digest, len(tr.levels))
	for l, m := range tr.levels {
		levels[l] = make(map[uint64]Digest, m.Len())
		m.Range(func(k uint64, v *Digest) bool {
			levels[l][k] = *v
			return true
		})
	}
	return root, levels, tr.Updates()
}

func TestUpdateBatchMatchesSequential(t *testing.T) {
	// UpdateBatch must be observationally identical to sequential Update
	// walks on randomized address streams: same root, same stored node
	// set and values, same Updates() count — only PhysicalHashes()
	// differs.
	seq, _ := newTestTree(t, 5)
	bat, _ := newTestTree(t, 5)
	// Deterministic pseudo-random stream with duplicates and leaf-space
	// wraparound (pages beyond capacity alias onto leaves mod capacity).
	rng := uint64(0x9E3779B97F4A7C15)
	const rounds, perBatch = 20, 37
	for r := 0; r < rounds; r++ {
		pages := make([]uint64, perBatch)
		lines := make(map[uint64][]byte, perBatch)
		for i := range pages {
			rng = rng*6364136223846793005 + 1442695040888963407
			p := rng % (seq.Capacity() + 100)
			pages[i] = p
			lines[p] = lineBytes(rng, uint8(r), uint8(i))
			seq.Update(p, lines[p])
			seq.Sweep() // emulate the eager per-walk scheme
		}
		bat.UpdateBatch(pages, func(p uint64) []byte { return lines[p] })
	}
	sr, sl, su := treeFingerprint(seq)
	br, bl, bu := treeFingerprint(bat)
	if sr != br {
		t.Fatalf("root mismatch: sequential %x, batch %x", sr, br)
	}
	if su != bu {
		t.Fatalf("Updates() mismatch: sequential %d, batch %d", su, bu)
	}
	for l := range sl {
		if len(sl[l]) != len(bl[l]) {
			t.Fatalf("level %d: %d vs %d stored nodes", l, len(sl[l]), len(bl[l]))
		}
		for k, v := range sl[l] {
			if bl[l][k] != v {
				t.Fatalf("level %d node %d: sequential %x, batch %x", l, k, v, bl[l][k])
			}
		}
	}
	if seq.PhysicalHashes() == 0 || bat.PhysicalHashes() == 0 {
		t.Fatal("physical hash accounting missing")
	}
	if bat.PhysicalHashes() >= seq.PhysicalHashes() {
		t.Errorf("batching saved no physical hashes: batch %d, sequential %d",
			bat.PhysicalHashes(), seq.PhysicalHashes())
	}
}

func TestUpdateBatchLogicalAccounting(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	line := lineBytes(7, 1)
	pages := []uint64{1, 2, 3, 2, 1}
	n := tr.UpdateBatch(pages, func(uint64) []byte { return line })
	if want := len(pages) * tr.Height(); n != want {
		t.Errorf("UpdateBatch logical hashes = %d, want %d", n, want)
	}
	if tr.Updates() != uint64(len(pages)) {
		t.Errorf("Updates = %d, want %d", tr.Updates(), len(pages))
	}
	// Duplicates collapse physically: 3 distinct leaves + shared
	// ancestors, well under the 5×4 logical walks.
	if tr.PhysicalHashes() >= uint64(n) {
		t.Errorf("PhysicalHashes = %d, want < %d", tr.PhysicalHashes(), n)
	}
}

func TestSweepIdempotentAndEmpty(t *testing.T) {
	tr, _ := newTestTree(t, 3)
	if n := tr.Sweep(); n != 0 {
		t.Errorf("empty sweep hashed %d nodes", n)
	}
	tr.Update(4, lineBytes(0, 1))
	if n := tr.Sweep(); n == 0 {
		t.Error("sweep of staged update hashed nothing")
	}
	if n := tr.Sweep(); n != 0 {
		t.Errorf("second sweep hashed %d nodes", n)
	}
}

func TestHeightModelNone(t *testing.T) {
	cfg := config.Default()
	m := NewHeightModel(cfg)
	if m.WalkLevels(0) != 8 || m.WalkLevels(12345) != 8 {
		t.Error("full BMT walk must be 8 levels")
	}
	if h, ms := m.Stats(); h != 0 || ms != 0 {
		t.Error("BMFNone should not touch the root cache")
	}
}

func TestHeightModelDBMF(t *testing.T) {
	cfg := config.Default()
	cfg.BMFMode = config.BMFDynamic
	m := NewHeightModel(cfg)
	// First touch of a subtree: full height (root swap-in).
	if got := m.WalkLevels(0); got != 8 {
		t.Errorf("cold DBMF walk = %d, want 8", got)
	}
	// Same subtree again: reduced height.
	if got := m.WalkLevels(1); got != 2 {
		t.Errorf("warm DBMF walk = %d, want 2", got)
	}
	hits, misses := m.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestHeightModelSBMFCoverage(t *testing.T) {
	cfg := config.Default()
	cfg.BMFMode = config.BMFStatic
	m := NewHeightModel(cfg)
	m.WalkLevels(0)
	// SBMF height 5 covers 8^5 = 32768 pages per subtree root.
	if got := m.WalkLevels(32767); got != 5 {
		t.Errorf("same-subtree walk = %d, want 5", got)
	}
	if got := m.WalkLevels(32768); got != 8 {
		t.Errorf("new-subtree walk = %d, want 8", got)
	}
}

func BenchmarkTreeUpdate(b *testing.B) {
	e, _ := crypto.NewEngine([]byte("bench"))
	tr, _ := New(e, 8)
	line := lineBytes(1, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Update + Sweep = one full physical leaf-to-root walk,
		// comparable to the former eager Update.
		tr.Update(uint64(i%4096), line)
		tr.Sweep()
	}
}

func BenchmarkTreeVerify(b *testing.B) {
	e, _ := crypto.NewEngine([]byte("bench"))
	tr, _ := New(e, 8)
	line := lineBytes(1, 2, 3)
	for i := 0; i < 4096; i++ {
		tr.Update(uint64(i), line)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Verify(uint64(i%4096), line); err != nil {
			b.Fatal(err)
		}
	}
}
