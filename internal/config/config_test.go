package config

import "testing"

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestSchemeNames(t *testing.T) {
	want := map[Scheme]string{
		SchemeBBB: "bbb", SchemeSP: "sp", SchemeNoGap: "nogap",
		SchemeM: "m", SchemeCM: "cm", SchemeBCM: "bcm",
		SchemeOBCM: "obcm", SchemeCOBCM: "cobcm",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme has empty name")
	}
}

func TestSchemeLists(t *testing.T) {
	if got := len(SecPBSchemes()); got != 6 {
		t.Errorf("SecPBSchemes count = %d, want 6", got)
	}
	if got := len(AllSchemes()); got != 8 {
		t.Errorf("AllSchemes count = %d, want 8", got)
	}
}

func TestEarlyWorkMonotonicity(t *testing.T) {
	// From NoGap (everything early) to COBCM (nothing early), the early
	// work set must only shrink — this is the design spectrum of Fig 4.
	order := SecPBSchemes()
	count := func(e EarlyWork) int {
		n := 0
		for _, b := range []bool{e.Counter, e.OTP, e.BMT, e.Ciphertext, e.MAC} {
			if b {
				n++
			}
		}
		return n
	}
	prev := 6
	for _, s := range order {
		n := count(s.Early())
		if n >= prev {
			t.Errorf("early work not strictly decreasing at %v: %d >= %d", s, n, prev)
		}
		prev = n
	}
	if !SchemeNoGap.Early().MAC || SchemeM.Early().MAC {
		t.Error("M must defer exactly MAC relative to NoGap")
	}
	if got := SchemeCOBCM.Early(); got != (EarlyWork{}) {
		t.Errorf("COBCM early work = %+v, want none", got)
	}
}

func TestEarlyWorkDependencyChain(t *testing.T) {
	// The metadata dependency graph (Fig 4) requires: OTP needs the
	// counter, ciphertext needs the OTP, MAC needs the ciphertext, BMT
	// needs the counter. Any scheme doing a later stage early must do
	// its prerequisites early.
	for _, s := range SecPBSchemes() {
		e := s.Early()
		if e.OTP && !e.Counter {
			t.Errorf("%v: OTP early without counter", s)
		}
		if e.Ciphertext && !e.OTP {
			t.Errorf("%v: ciphertext early without OTP", s)
		}
		if e.MAC && !e.Ciphertext {
			t.Errorf("%v: MAC early without ciphertext", s)
		}
		if e.BMT && !e.Counter {
			t.Errorf("%v: BMT early without counter", s)
		}
	}
}

func TestSecureFlag(t *testing.T) {
	if SchemeBBB.Secure() {
		t.Error("BBB must be insecure")
	}
	for _, s := range append(SecPBSchemes(), SchemeSP) {
		if !s.Secure() {
			t.Errorf("%v must be secure", s)
		}
	}
}

func TestCacheSets(t *testing.T) {
	cc := CacheConfig{SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64}
	if got := cc.Sets(); got != 128 {
		t.Errorf("64KB/8way/64B sets = %d, want 128", got)
	}
}

func TestPMLatencyConversion(t *testing.T) {
	c := Default()
	if got := c.PMReadCycles(); got != 220 {
		t.Errorf("PM read cycles = %d, want 220 (55ns at 4GHz)", got)
	}
	if got := c.PMWriteCycles(); got != 600 {
		t.Errorf("PM write cycles = %d, want 600 (150ns at 4GHz)", got)
	}
}

func TestEffectiveBMTLevels(t *testing.T) {
	c := Default()
	if c.EffectiveBMTLevels() != 8 {
		t.Errorf("full BMT levels = %d, want 8", c.EffectiveBMTLevels())
	}
	c.BMFMode = BMFDynamic
	if c.EffectiveBMTLevels() != 2 {
		t.Errorf("DBMF levels = %d, want 2", c.EffectiveBMTLevels())
	}
	c.BMFMode = BMFStatic
	if c.EffectiveBMTLevels() != 5 {
		t.Errorf("SBMF levels = %d, want 5", c.EffectiveBMTLevels())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Default()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero secpb", func(c *Config) { c.SecPBEntries = 0 }},
		{"inverted watermarks", func(c *Config) { c.DrainLo, c.DrainHi = 0.9, 0.5 }},
		{"hi over 1", func(c *Config) { c.DrainHi = 1.5 }},
		{"zero bmt", func(c *Config) { c.BMTLevels = 0 }},
		{"bad dbmf", func(c *Config) { c.BMFMode = BMFDynamic; c.DBMFHeight = 99 }},
		{"bad sbmf", func(c *Config) { c.BMFMode = BMFStatic; c.SBMFHeight = 0 }},
		{"zero store buffer", func(c *Config) { c.StoreBufferCap = 0 }},
		{"bad pm size", func(c *Config) { c.PMSizeBytes = 100 }},
		{"zero clock", func(c *Config) { c.ClockGHz = 0 }},
		{"non-pow2 sets", func(c *Config) { c.L1.SizeBytes = 3 * 64 * 8 * 24 }},
		{"zero ways", func(c *Config) { c.L2.Ways = 0 }},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestWithHelpers(t *testing.T) {
	c := Default().WithScheme(SchemeNoGap).WithSecPBEntries(128)
	if c.Scheme != SchemeNoGap || c.SecPBEntries != 128 {
		t.Errorf("With helpers failed: %v %d", c.Scheme, c.SecPBEntries)
	}
	// Original default untouched (value semantics).
	if Default().Scheme != SchemeCOBCM {
		t.Error("Default mutated")
	}
}

func TestBMFModeString(t *testing.T) {
	if BMFNone.String() != "none" || BMFDynamic.String() != "dbmf" || BMFStatic.String() != "sbmf" {
		t.Error("BMF mode names wrong")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, s := range AllSchemes() {
		got, err := SchemeByName(s.String())
		if err != nil || got != s {
			t.Errorf("SchemeByName(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSchemeMarshalText(t *testing.T) {
	b, err := SchemeCOBCM.MarshalText()
	if err != nil || string(b) != "cobcm" {
		t.Errorf("MarshalText = %q, %v", b, err)
	}
}
