// Package config defines the simulated system parameters (the paper's
// Table I), the evaluated persistence schemes (Table II), and validation.
package config

import "fmt"

// Scheme selects which parts of the memory tuple (ciphertext, counter,
// MAC, BMT root) are updated early — at store-persist time — versus late
// — post-crash on battery. The letters name the tuple elements deferred
// to post-crash time, so the longer the name, the lazier the scheme.
type Scheme int

const (
	// SchemeBBB is the insecure battery-backed-buffer baseline:
	// no encryption, MACs, or integrity tree at all.
	SchemeBBB Scheme = iota
	// SchemeSP is the strict-persistency secure baseline with the SPoP
	// at the memory controller (PLP-style): every persist waits for the
	// full tuple update at the MC.
	SchemeSP
	// SchemeNoGap eagerly updates all metadata at store persist time.
	SchemeNoGap
	// SchemeM defers only MAC generation to post-crash.
	SchemeM
	// SchemeCM defers ciphertext and MAC generation.
	SchemeCM
	// SchemeBCM defers BMT root update, ciphertext and MAC.
	SchemeBCM
	// SchemeOBCM additionally defers OTP generation; only the counter is
	// fetched and incremented early.
	SchemeOBCM
	// SchemeCOBCM defers everything; a store only writes plaintext data
	// into the SecPB.
	SchemeCOBCM
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeBBB:
		return "bbb"
	case SchemeSP:
		return "sp"
	case SchemeNoGap:
		return "nogap"
	case SchemeM:
		return "m"
	case SchemeCM:
		return "cm"
	case SchemeBCM:
		return "bcm"
	case SchemeOBCM:
		return "obcm"
	case SchemeCOBCM:
		return "cobcm"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// MarshalText renders the scheme name in JSON and text encodings.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// SchemeByName returns the scheme with the given paper name.
func SchemeByName(name string) (Scheme, error) {
	for _, s := range AllSchemes() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("config: unknown scheme %q", name)
}

// SecPBSchemes lists the six SecPB design points from eager to lazy.
func SecPBSchemes() []Scheme {
	return []Scheme{SchemeNoGap, SchemeM, SchemeCM, SchemeBCM, SchemeOBCM, SchemeCOBCM}
}

// AllSchemes lists baselines plus the six SecPB schemes.
func AllSchemes() []Scheme {
	return append([]Scheme{SchemeBBB, SchemeSP}, SecPBSchemes()...)
}

// Secure reports whether the scheme provides encryption + integrity.
func (s Scheme) Secure() bool { return s != SchemeBBB }

// Early work performed per scheme. Per-entry work happens once per newly
// dirtied SecPB entry (the data-value-independent coalescing optimization
// of Section IV.A); per-store work happens on every store.
type EarlyWork struct {
	Counter    bool // fetch + increment counter (per entry)
	OTP        bool // generate one-time pad (per entry)
	BMT        bool // update BMT leaf-to-root (per entry)
	Ciphertext bool // XOR plaintext with pad (per store)
	MAC        bool // compute MAC (per store)
}

// Early returns the early-work profile for a SecPB scheme. Baselines
// (BBB, SP) have no SecPB early/late split: BBB does nothing, SP performs
// the full tuple at the MC on each persist.
func (s Scheme) Early() EarlyWork {
	switch s {
	case SchemeNoGap:
		return EarlyWork{Counter: true, OTP: true, BMT: true, Ciphertext: true, MAC: true}
	case SchemeM:
		return EarlyWork{Counter: true, OTP: true, BMT: true, Ciphertext: true}
	case SchemeCM:
		return EarlyWork{Counter: true, OTP: true, BMT: true}
	case SchemeBCM:
		return EarlyWork{Counter: true, OTP: true}
	case SchemeOBCM:
		return EarlyWork{Counter: true}
	default:
		return EarlyWork{}
	}
}

// BMFMode selects the Bonsai-Merkle-Forest height reduction used for the
// Figure 9 study.
type BMFMode int

const (
	// BMFNone uses the single full-height BMT.
	BMFNone BMFMode = iota
	// BMFDynamic is DBMF: dynamically rooted subtrees with a root cache,
	// reducing the effective update height to DBMFHeight levels.
	BMFDynamic
	// BMFStatic is SBMF: statically partitioned forest, reducing the
	// effective update height to SBMFHeight levels.
	BMFStatic
)

// String returns the name of the BMF mode.
func (m BMFMode) String() string {
	switch m {
	case BMFNone:
		return "none"
	case BMFDynamic:
		return "dbmf"
	case BMFStatic:
		return "sbmf"
	default:
		return fmt.Sprintf("bmf(%d)", int(m))
	}
}

// CacheConfig describes one level of the data cache hierarchy.
type CacheConfig struct {
	SizeBytes    int
	Ways         int
	BlockBytes   int
	AccessCycles uint64
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

// Config collects every simulated system parameter. The zero value is
// not meaningful; start from Default.
type Config struct {
	// Core.
	ClockGHz       float64
	CommitWidth    int // instructions retired per cycle when not stalled
	StoreBufferCap int

	// Data caches (Table I).
	L1, L2, L3 CacheConfig

	// Volatile metadata caches in the MC (Table I).
	CtrCache, MACCache, BMTCache CacheConfig

	// SecPB / persist buffer.
	SecPBEntries     int
	SecPBAccessCyc   uint64
	DrainHi          float64 // high watermark fraction triggering drain
	DrainLo          float64 // low watermark fraction stopping drain
	SecPBEntryBytes  int     // tracked entry size for energy (260B)
	DrainBurstBlocks int     // entries the MC accepts per drain grant

	// Security mechanisms.
	BMTLevels   int     // full BMT height (8)
	MACLatency  uint64  // cycles per MAC / per BMT level hash (40)
	AESLatency  uint64  // cycles per OTP generation (40)
	BMFMode     BMFMode // height reduction for Fig 9
	DBMFHeight  int     // effective update height under DBMF (2)
	SBMFHeight  int     // effective update height under SBMF (5)
	RootCacheKB int     // BMF root cache (4KB)
	Speculative bool    // speculative integrity verification (PoisonIvy)
	WPQEntries  int     // ADR write pending queue
	Scheme      Scheme
	// UnifiedMDC replaces the three separate metadata caches with one
	// shared cache of their combined capacity (the paper notes the
	// metadata caches "may be physically separate or unified").
	UnifiedMDC bool
	// DisableDVICoalescing turns off the Section IV.A optimization:
	// eager schemes then regenerate data-value-independent metadata
	// (counter, OTP, BMT walk) on every store instead of once per
	// newly dirtied entry. Used by the ablation study.
	DisableDVICoalescing bool

	// NVM (Table I).
	PMSizeBytes  uint64
	PMReadNanos  float64
	PMWriteNanos float64
	PMWriteQueue int
	PMReadQueue  int

	// Media-fault model (internal/fault). All-zero rates model perfect
	// media and keep every artifact byte-identical to the fault-free
	// build; nonzero rates arm a deterministic injector under the PM
	// device and enable the controller's program-and-verify retry path.
	FaultSeed          uint64  // injector seed; 0 derives from Seed
	FaultWriteFailRate float64 // transient write failures, per attempt
	FaultTornRate      float64 // torn (partial-line) writes, per attempt
	FaultRotRate       float64 // latent bit rot, per read / decay visit
	MaxWriteRetries    int     // bounded retries before bad-block remap

	// Multi-core sharded simulation (engine.System). Cores <= 1 keeps the
	// classic single-core engine path — every existing artifact is
	// produced by exactly the same code. Cores >= 2 simulates N cores,
	// each with a private store buffer, SecPB, cache hierarchy and
	// memory-channel shard (own controller + PM + metadata stores), plus
	// one shared coherent region handled by the MESI directory of
	// internal/coherence at drain-epoch barriers.
	Cores int
	// MCSharedPerKilo is the per-kilo-op rate at which a core's stream is
	// redirected to the shared coherent region (0 uses the default).
	MCSharedPerKilo int
	// MCSharedBlocks is the size of the shared hot region in blocks
	// (0 uses the default).
	MCSharedBlocks int
	// MCEpochOps is the number of ops each core advances between
	// drain-epoch barriers (0 uses the default). Barriers are where
	// deferred shared-region ops replay in canonical core order, so this
	// knob trades cross-core merge latency for barrier frequency; the
	// result stream is deterministic at any setting of the worker pool.
	MCEpochOps int

	// Seed for workload generation.
	Seed uint64
}

// FaultEnabled reports whether any media-fault class has a nonzero rate.
func (c Config) FaultEnabled() bool {
	return c.FaultWriteFailRate > 0 || c.FaultTornRate > 0 || c.FaultRotRate > 0
}

// Default returns the paper's Table I configuration with a 32-entry
// SecPB running COBCM.
func Default() Config {
	return Config{
		ClockGHz:       4.0,
		CommitWidth:    1,
		StoreBufferCap: 8,

		L1: CacheConfig{SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64, AccessCycles: 2},
		L2: CacheConfig{SizeBytes: 512 << 10, Ways: 16, BlockBytes: 64, AccessCycles: 20},
		L3: CacheConfig{SizeBytes: 4 << 20, Ways: 32, BlockBytes: 64, AccessCycles: 30},

		CtrCache: CacheConfig{SizeBytes: 128 << 10, Ways: 8, BlockBytes: 64, AccessCycles: 2},
		MACCache: CacheConfig{SizeBytes: 128 << 10, Ways: 8, BlockBytes: 64, AccessCycles: 2},
		BMTCache: CacheConfig{SizeBytes: 128 << 10, Ways: 8, BlockBytes: 64, AccessCycles: 2},

		SecPBEntries:     32,
		SecPBAccessCyc:   2,
		DrainHi:          0.75,
		DrainLo:          0.25,
		SecPBEntryBytes:  260,
		DrainBurstBlocks: 4,

		BMTLevels:   8,
		MACLatency:  40,
		AESLatency:  40,
		BMFMode:     BMFNone,
		DBMFHeight:  2,
		SBMFHeight:  5,
		RootCacheKB: 4,
		Speculative: true,
		WPQEntries:  32,
		Scheme:      SchemeCOBCM,

		PMSizeBytes:  8 << 30,
		PMReadNanos:  55,
		PMWriteNanos: 150,
		PMWriteQueue: 128,
		PMReadQueue:  64,

		MaxWriteRetries: 3,

		Seed: 0x5ec9b,
	}
}

// PMReadCycles converts the PM read latency to core cycles.
func (c Config) PMReadCycles() uint64 {
	return uint64(c.PMReadNanos * c.ClockGHz)
}

// PMWriteCycles converts the PM write latency to core cycles.
func (c Config) PMWriteCycles() uint64 {
	return uint64(c.PMWriteNanos * c.ClockGHz)
}

// EffectiveBMTLevels returns the number of tree levels a leaf-to-root
// update traverses under the configured BMF mode.
func (c Config) EffectiveBMTLevels() int {
	switch c.BMFMode {
	case BMFDynamic:
		return c.DBMFHeight
	case BMFStatic:
		return c.SBMFHeight
	default:
		return c.BMTLevels
	}
}

// Validate reports the first invalid parameter, if any.
func (c Config) Validate() error {
	checkCache := func(name string, cc CacheConfig) error {
		if cc.SizeBytes <= 0 || cc.Ways <= 0 || cc.BlockBytes <= 0 {
			return fmt.Errorf("config: %s cache has non-positive geometry", name)
		}
		if cc.SizeBytes%(cc.Ways*cc.BlockBytes) != 0 {
			return fmt.Errorf("config: %s cache size %d not divisible by way*block", name, cc.SizeBytes)
		}
		sets := cc.Sets()
		if sets&(sets-1) != 0 {
			return fmt.Errorf("config: %s cache set count %d not a power of two", name, sets)
		}
		return nil
	}
	for _, e := range []struct {
		name string
		cc   CacheConfig
	}{{"L1", c.L1}, {"L2", c.L2}, {"L3", c.L3}, {"ctr", c.CtrCache}, {"mac", c.MACCache}, {"bmt", c.BMTCache}} {
		if err := checkCache(e.name, e.cc); err != nil {
			return err
		}
	}
	if c.SecPBEntries <= 0 {
		return fmt.Errorf("config: SecPBEntries must be positive, got %d", c.SecPBEntries)
	}
	if !(c.DrainLo >= 0 && c.DrainLo < c.DrainHi && c.DrainHi <= 1) {
		return fmt.Errorf("config: watermarks must satisfy 0 <= lo < hi <= 1, got lo=%v hi=%v", c.DrainLo, c.DrainHi)
	}
	if c.BMTLevels <= 0 || c.BMTLevels > 24 {
		return fmt.Errorf("config: BMTLevels out of range: %d", c.BMTLevels)
	}
	if c.BMFMode == BMFDynamic && (c.DBMFHeight <= 0 || c.DBMFHeight > c.BMTLevels) {
		return fmt.Errorf("config: DBMFHeight out of range: %d", c.DBMFHeight)
	}
	if c.BMFMode == BMFStatic && (c.SBMFHeight <= 0 || c.SBMFHeight > c.BMTLevels) {
		return fmt.Errorf("config: SBMFHeight out of range: %d", c.SBMFHeight)
	}
	if c.StoreBufferCap <= 0 {
		return fmt.Errorf("config: StoreBufferCap must be positive")
	}
	if c.PMSizeBytes == 0 || c.PMSizeBytes%(64<<10) != 0 {
		return fmt.Errorf("config: PM size must be a positive multiple of 64KB")
	}
	if c.ClockGHz <= 0 || c.PMReadNanos <= 0 || c.PMWriteNanos <= 0 {
		return fmt.Errorf("config: clock and PM latencies must be positive")
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"FaultWriteFailRate", c.FaultWriteFailRate}, {"FaultTornRate", c.FaultTornRate}, {"FaultRotRate", c.FaultRotRate}} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("config: %s must be in [0,1), got %v", r.name, r.v)
		}
	}
	if c.MaxWriteRetries < 0 || c.MaxWriteRetries > 16 {
		return fmt.Errorf("config: MaxWriteRetries out of range: %d", c.MaxWriteRetries)
	}
	if c.Cores < 0 || c.Cores > 1024 {
		return fmt.Errorf("config: Cores out of range [0,1024]: %d", c.Cores)
	}
	if c.MCSharedPerKilo < 0 || c.MCSharedPerKilo > 1000 {
		return fmt.Errorf("config: MCSharedPerKilo out of range [0,1000]: %d", c.MCSharedPerKilo)
	}
	if c.MCSharedBlocks < 0 {
		return fmt.Errorf("config: MCSharedBlocks must be non-negative, got %d", c.MCSharedBlocks)
	}
	if c.MCEpochOps < 0 {
		return fmt.Errorf("config: MCEpochOps must be non-negative, got %d", c.MCEpochOps)
	}
	return nil
}

// EffectiveCores returns the simulated core count (Cores, min 1).
func (c Config) EffectiveCores() int {
	if c.Cores <= 1 {
		return 1
	}
	return c.Cores
}

// WithScheme returns a copy of c running the given scheme.
func (c Config) WithScheme(s Scheme) Config {
	c.Scheme = s
	return c
}

// WithSecPBEntries returns a copy of c with the given SecPB capacity.
func (c Config) WithSecPBEntries(n int) Config {
	c.SecPBEntries = n
	return c
}

// WithCores returns a copy of c simulating n cores.
func (c Config) WithCores(n int) Config {
	c.Cores = n
	return c
}
