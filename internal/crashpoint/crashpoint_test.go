package crashpoint

import "testing"

func TestKindsCoverEveryKind(t *testing.T) {
	ks := Kinds()
	if len(ks) != NumKinds() {
		t.Fatalf("Kinds() lists %d kinds, NumKinds() says %d", len(ks), NumKinds())
	}
	seen := make(map[Kind]bool, len(ks))
	for i, k := range ks {
		if int(k) != i {
			t.Errorf("Kinds()[%d] = %v; list must be in declaration order", i, k)
		}
		if seen[k] {
			t.Errorf("kind %v listed twice", k)
		}
		seen[k] = true
		if k.String() == "crashpoint(?)" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(NumKinds()).String() != "crashpoint(?)" {
		t.Error("out-of-range kind should render the placeholder name")
	}
}
