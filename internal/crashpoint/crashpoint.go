// Package crashpoint defines the crash-injection hook vocabulary shared
// by the instrumented pipeline (engine, SecPB, memory controller) and
// the fault-injection harness (internal/crashsim).
//
// A crash point is an instant between micro-operations at which power
// may be lost. What survives such an instant is the persisted NV image
// (PM blocks, storage counters, MACs, BMT nodes and the on-chip NV root
// register) plus the battery-backed state (SecPB entries, including an
// entry whose drain is in flight at the memory controller, and the ADR
// write-pending queue). Everything else — caches, clocks, the core — is
// volatile and lost.
//
// The package is a dependency leaf: the instrumented layers import only
// this package, and the sink field they carry is nil in normal runs, so
// a disabled hook costs one pointer compare and no allocation.
package crashpoint

import "secpb/internal/addr"

// Kind identifies one class of crash point in the store/drain pipeline.
type Kind uint8

const (
	// StoreAccept fires in the engine immediately before a store is
	// offered to the SecPB: the program view and L1 were updated but the
	// store has not reached the point of persistency. A crash here must
	// recover to the state without this store.
	StoreAccept Kind = iota
	// EntryAlloc fires in the SecPB after a new entry's data block was
	// written (the store is persistent) but before any of the scheme's
	// early security-metadata work ran for it.
	EntryAlloc
	// WPQFlush fires in the memory controller after a block write was
	// accepted into the ADR write-pending queue and reached the device,
	// mid-way through a drain's tuple update (the MAC and BMT updates
	// for the drained block may not have happened yet).
	WPQFlush
	// CounterPersist fires in the memory controller right after a
	// draining block's storage-counter increment(s) were applied, before
	// the ciphertext write: the persisted counter is ahead of the
	// persisted data.
	CounterPersist
	// SweepBoundary fires at a drain-epoch boundary, immediately before
	// the coalesced BMT sweep commits the epoch's staged update walks.
	SweepBoundary

	numKinds
)

// NumKinds returns the number of distinct crash-point kinds.
func NumKinds() int { return int(numKinds) }

// Kinds lists every crash-point kind.
func Kinds() []Kind {
	return []Kind{StoreAccept, EntryAlloc, WPQFlush, CounterPersist, SweepBoundary}
}

// String names the crash point.
func (k Kind) String() string {
	switch k {
	case StoreAccept:
		return "store-accept"
	case EntryAlloc:
		return "entry-alloc"
	case WPQFlush:
		return "wpq-flush"
	case CounterPersist:
		return "counter-persist"
	case SweepBoundary:
		return "sweep-boundary"
	default:
		return "crashpoint(?)"
	}
}

// Sink receives crash points from the instrumented pipeline. The block
// is the address the firing micro-operation concerned (the page-less
// zero block for epoch-level points). Implementations must not retain
// references into live simulator state beyond the call: the instant the
// callback returns, execution continues.
type Sink interface {
	CrashPoint(k Kind, b addr.Block)
}
