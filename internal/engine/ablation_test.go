package engine

import (
	"testing"

	"secpb/internal/config"
	"secpb/internal/workload"
)

// Ablation tests for the design choices DESIGN.md calls out: the
// data-value-independent coalescing optimization (Section IV.A) and
// speculative integrity verification.

func TestAblationCoalescingOptimization(t *testing.T) {
	// Without the optimization, NoGap/M/CM must redo counter/OTP/BMT
	// per store; povray (NWPE ~17) should slow down dramatically.
	prof := mustProfile(t, "povray")
	withOpt := config.Default().WithScheme(config.SchemeCM)
	withoutOpt := withOpt
	withoutOpt.DisableDVICoalescing = true

	on, err := RunBenchmark(withOpt, prof, 20000)
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunBenchmark(withoutOpt, prof, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if off.Cycles < 2*on.Cycles {
		t.Errorf("disabling coalescing sped CM up?! on=%d off=%d cycles", on.Cycles, off.Cycles)
	}
	// The optimization is exactly what keeps BMT walks at one per entry.
	if off.EarlyBMTWalks <= on.EarlyBMTWalks {
		t.Errorf("early BMT walks: on=%d off=%d, ablation should walk per store",
			on.EarlyBMTWalks, off.EarlyBMTWalks)
	}
	if off.EarlyBMTWalks < off.Stores*9/10 {
		t.Errorf("ablated CM walked %d times for %d stores, want ~per-store", off.EarlyBMTWalks, off.Stores)
	}
}

func TestAblationCoalescingDelaysCounterOverflow(t *testing.T) {
	// Section IV.A: "this optimization avoids incrementing the counter
	// frequently for a single dirty block, delaying counter overflow
	// which requires page re-encryption." With 8-bit minors and a hot
	// block written thousands of times, the ablated design re-encrypts
	// pages while the optimized one does not.
	prof := mustProfile(t, "povray") // 96-block hot set, heavy rewrites
	base := config.Default().WithScheme(config.SchemeNoGap)
	ablated := base
	ablated.DisableDVICoalescing = true

	on, err := RunBenchmark(base, prof, 60000)
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunBenchmark(ablated, prof, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if off.Reencryptions <= on.Reencryptions {
		t.Errorf("re-encryptions: optimized=%d ablated=%d; ablation must overflow counters faster",
			on.Reencryptions, off.Reencryptions)
	}
}

func TestAblationCoalescingStillRecovers(t *testing.T) {
	// Correctness must not depend on the optimization: the ablated
	// design's multi-increment drains still produce a verifiable image.
	for _, scheme := range []config.Scheme{config.SchemeNoGap, config.SchemeCM} {
		cfg := config.Default().WithScheme(scheme)
		cfg.DisableDVICoalescing = true
		prof := mustProfile(t, "povray")
		e, err := New(cfg, prof, []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewGenerator(prof, 5, 8000)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(gen); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if _, _, err := e.SecPB().CrashDrain(); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for block, want := range e.Memory() {
			got, _, err := e.Controller().FetchBlock(block)
			if err != nil {
				t.Fatalf("%v: %v", scheme, err)
			}
			if got != want {
				t.Fatalf("%v: plaintext mismatch at %#x", scheme, block.Addr())
			}
		}
	}
}

func TestAblationSpeculativeVerification(t *testing.T) {
	// Non-speculative verification exposes the MAC + BMT-walk latency
	// on every PM read; a miss-heavy workload must slow down.
	prof := mustProfile(t, "mcf")
	spec := config.Default().WithScheme(config.SchemeCOBCM)
	nonspec := spec
	nonspec.Speculative = false

	fast, err := RunBenchmark(spec, prof, 30000)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunBenchmark(nonspec, prof, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles <= fast.Cycles {
		t.Errorf("non-speculative verification not slower: %d vs %d", slow.Cycles, fast.Cycles)
	}
	// And it must not change functional results.
	if slow.PMWrites != fast.PMWrites || slow.Stores != fast.Stores {
		t.Error("verification mode changed functional behaviour")
	}
}

func TestSpeculativeKnobIrrelevantForInsecure(t *testing.T) {
	prof := mustProfile(t, "mcf")
	a := config.Default().WithScheme(config.SchemeBBB)
	b := a
	b.Speculative = false
	ra, err := RunBenchmark(a, prof, 10000)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunBenchmark(b, prof, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cycles != rb.Cycles {
		t.Error("speculation knob changed the insecure baseline")
	}
}
