package engine

import (
	"reflect"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/crashpoint"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// nopSink is a do-nothing crash sink: installing any sink must force
// the engine back onto the generic path.
type nopSink struct{}

func (nopSink) CrashPoint(crashpoint.Kind, addr.Block) {}

// runWith builds an engine with the kernel pinned on or off, replays
// the deterministic workload stream, and returns the result plus the
// functional memory image. The generic interpreter is the differential
// oracle: every assertion in this file is "kernel ≡ generic".
func runWith(t *testing.T, cfg config.Config, prof workload.Profile, ops uint64, kernels bool) (Result, map[string]any) {
	t.Helper()
	eng, err := New(cfg, prof, []byte("secpb-experiment-key"))
	if err != nil {
		t.Fatalf("New(%v): %v", cfg.Scheme, err)
	}
	eng.SetKernels(kernels)
	if kernels && cfg.Scheme != config.SchemeSP && !cfg.DisableDVICoalescing && !eng.Kernelized() {
		t.Fatalf("kernel did not engage for eligible scheme %v", cfg.Scheme)
	}
	if !kernels && eng.Kernelized() {
		t.Fatalf("kernel engaged despite SetKernels(false)")
	}
	gen, err := workload.NewGenerator(prof, cfg.Seed, ops)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(gen); err != nil {
		t.Fatalf("Run(%v, kernels=%v): %v", cfg.Scheme, kernels, err)
	}
	state := map[string]any{
		"memory":    eng.Memory(),
		"occupancy": eng.Occupancy(),
		"peak":      eng.PeakOccupancy(),
	}
	return eng.Collect(), state
}

// TestKernelMatchesGeneric replays every scheme (and the knob variants
// that change the kernel's shape) through the specialized kernel and
// the generic interpreter and requires bit-identical results and
// functional state.
func TestKernelMatchesGeneric(t *testing.T) {
	prof, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	prof2, err := workload.ByName("gamess")
	if err != nil {
		t.Fatal(err)
	}
	base := config.Default()
	variants := map[string]func(config.Config) config.Config{
		"default": func(c config.Config) config.Config { return c },
		"blocking-verify": func(c config.Config) config.Config {
			c.Speculative = false
			return c
		},
		"tiny-secpb": func(c config.Config) config.Config {
			return c.WithSecPBEntries(4) // forces the backflow path
		},
		"no-dvi": func(c config.Config) config.Config {
			c.DisableDVICoalescing = true // kernel must stand down
			return c
		},
	}
	for _, scheme := range config.AllSchemes() {
		for name, mut := range variants {
			cfg := mut(base.WithScheme(scheme))
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%v/%s: %v", scheme, name, err)
			}
			for _, p := range []workload.Profile{prof, prof2} {
				kres, kstate := runWith(t, cfg, p, 4000, true)
				gres, gstate := runWith(t, cfg, p, 4000, false)
				if !reflect.DeepEqual(kres, gres) {
					t.Errorf("%v/%s/%s: kernel result differs\nkernel:  %+v\ngeneric: %+v",
						scheme, name, p.Name, kres, gres)
				}
				if !reflect.DeepEqual(kstate, gstate) {
					t.Errorf("%v/%s/%s: kernel functional state differs", scheme, name, p.Name)
				}
			}
		}
	}
}

// TestKernelBatchMatchesScalarStep replays the same op stream through
// the columnar batch path and the per-op Step path, both kernelized,
// and requires identical results — the batch loop's block column, the
// inlined CPI accumulation and the staged L1 probes are wall-clock
// strategies, never result bits.
func TestKernelBatchMatchesScalarStep(t *testing.T) {
	prof, err := workload.ByName("povray")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range config.SecPBSchemes() {
		cfg := config.Default().WithScheme(scheme)
		gen, err := workload.NewGenerator(prof, cfg.Seed, 6000)
		if err != nil {
			t.Fatal(err)
		}
		var ops []trace.Op
		for {
			op, ok := gen.Next()
			if !ok {
				break
			}
			ops = append(ops, op)
		}

		scalar, err := New(cfg, prof, []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		scalar.SetKernels(true)
		for _, op := range ops {
			if err := scalar.Step(op); err != nil {
				t.Fatal(err)
			}
		}
		if err := scalar.Finish(); err != nil {
			t.Fatal(err)
		}

		batched, err := New(cfg, prof, []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		batched.SetKernels(true)
		if err := batched.RunBatch(trace.NewSliceBatchSource(ops)); err != nil {
			t.Fatal(err)
		}

		sres, bres := scalar.Collect(), batched.Collect()
		if !reflect.DeepEqual(sres, bres) {
			t.Errorf("%v: batch replay differs from scalar Step\nscalar: %+v\nbatch:  %+v", scheme, sres, bres)
		}
		if !reflect.DeepEqual(scalar.Memory(), batched.Memory()) {
			t.Errorf("%v: batch replay memory image differs", scheme)
		}
	}
}

// TestKernelDisengagesUnderSink asserts the specialized kernel stands
// down while a crash sink is installed (crash points fire from the
// generic accept path) and re-engages when it is removed.
func TestKernelDisengagesUnderSink(t *testing.T) {
	prof, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	eng, err := New(cfg, prof, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	eng.SetKernels(true)
	if !eng.Kernelized() {
		t.Fatal("kernel should engage by default config")
	}
	eng.SetCrashSink(nopSink{})
	if eng.Kernelized() {
		t.Fatal("kernel must disengage while a crash sink is installed")
	}
	eng.SetCrashSink(nil)
	if !eng.Kernelized() {
		t.Fatal("kernel must re-engage once the sink is removed")
	}
}

// TestSetDefaultKernels asserts the package default seeds new engines
// and round-trips.
func TestSetDefaultKernels(t *testing.T) {
	orig := DefaultKernels()
	defer SetDefaultKernels(orig)

	prof, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	SetDefaultKernels(false)
	if DefaultKernels() {
		t.Fatal("DefaultKernels should report false")
	}
	eng, err := New(config.Default(), prof, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Kernelized() {
		t.Fatal("engine built under SetDefaultKernels(false) must start generic")
	}
	SetDefaultKernels(true)
	eng2, err := New(config.Default(), prof, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if !eng2.Kernelized() {
		t.Fatal("engine built under SetDefaultKernels(true) must start kernelized")
	}
}

// FuzzKernelVsGeneric decodes an arbitrary byte string into an op
// stream and replays it through the kernel and the generic oracle,
// requiring identical results, functional memory, and error outcomes.
func FuzzKernelVsGeneric(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08}, uint8(7))
	f.Add([]byte("secpb-kernel-differential-seed-corpus"), uint8(5))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xaa, 0x55, 0xaa, 0x55, 0x10, 0x42}, uint8(2))
	prof, err := workload.ByName("mcf")
	if err != nil {
		f.Fatal(err)
	}
	schemes := config.SecPBSchemes()
	f.Fuzz(func(t *testing.T, raw []byte, sel uint8) {
		scheme := schemes[int(sel)%len(schemes)]
		// Tiny buffer + blocking verification: exercises backflow,
		// forced drains and the load integrity-check latency.
		cfg := config.Default().WithScheme(scheme).WithSecPBEntries(8)
		cfg.Speculative = sel%2 == 0
		ops := decodeFuzzOps(raw)
		if len(ops) == 0 {
			return
		}
		run := func(kernels bool) (Result, map[any]any, error) {
			eng, err := New(cfg, prof, []byte("k"))
			if err != nil {
				t.Fatal(err)
			}
			eng.SetKernels(kernels)
			for _, op := range ops {
				if err := eng.Step(op); err != nil {
					return eng.Collect(), nil, err
				}
			}
			if err := eng.Finish(); err != nil {
				return eng.Collect(), nil, err
			}
			mem := make(map[any]any)
			for b, data := range eng.Memory() {
				mem[b] = data
			}
			return eng.Collect(), mem, nil
		}
		kres, kmem, kerr := run(true)
		gres, gmem, gerr := run(false)
		if (kerr == nil) != (gerr == nil) {
			t.Fatalf("error divergence: kernel=%v generic=%v", kerr, gerr)
		}
		if kerr != nil {
			if kerr.Error() != gerr.Error() {
				t.Fatalf("error text divergence: kernel=%q generic=%q", kerr, gerr)
			}
			return
		}
		if !reflect.DeepEqual(kres, gres) {
			t.Fatalf("result divergence\nkernel:  %+v\ngeneric: %+v", kres, gres)
		}
		if !reflect.DeepEqual(kmem, gmem) {
			t.Fatalf("memory image divergence")
		}
	})
}

// decodeFuzzOps turns a fuzz input into a bounded well-formed op
// stream: loads, stores of every size, and fences over a small working
// set (to make coalescing, eviction and backflow all reachable).
func decodeFuzzOps(raw []byte) []trace.Op {
	var ops []trace.Op
	for i := 0; i+2 < len(raw) && len(ops) < 512; i += 3 {
		b0, b1, b2 := raw[i], raw[i+1], raw[i+2]
		gap := uint32(b2 >> 5)
		switch b0 % 8 {
		case 0, 1, 2: // load
			ops = append(ops, trace.Op{
				Kind: trace.Load,
				Addr: uint64(b1) << 3,
				Size: 8,
				Gap:  gap,
			})
		case 3: // fence
			ops = append(ops, trace.Op{Kind: trace.Fence, Gap: gap})
		default: // store, size 1/2/4/8, aligned to size
			size := uint8(1) << (b2 & 3)
			a := (uint64(b1) << 3) &^ (uint64(size) - 1)
			ops = append(ops, trace.Op{
				Kind: trace.Store,
				Addr: a,
				Size: size,
				Data: uint64(b0)<<32 | uint64(b1)<<8 | uint64(b2),
				Gap:  gap,
			})
		}
	}
	return ops
}
