package engine

import (
	"bytes"
	"reflect"
	"testing"

	"secpb/internal/config"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// recordTrace encodes the benchmark's generator stream as an in-memory
// SPB2 trace, exactly as harness.RecordTraces writes to disk.
func recordTrace(t *testing.T, prof workload.Profile, seed, ops uint64) []byte {
	t.Helper()
	gen, err := workload.NewGenerator(prof, seed, ops)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := trace.NewSegWriter(&buf, 0)
	b := trace.NewBatch(trace.DefaultBatchCap)
	for gen.NextBatch(b) {
		if err := sw.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunRecordedMatchesLive is the replay-identity contract at the
// engine layer: a simulation replayed from a recorded SPB2 trace must
// produce a Result identical in every field to the live-generator run
// it was recorded from — SPEC proxies and zoo workloads alike.
func TestRunRecordedMatchesLive(t *testing.T) {
	cfg := config.Default()
	const ops = 4000
	for _, name := range []string{"gamess", "mcf", "kvstore", "wal", "adv-occupancy", "adv-battery"} {
		prof, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		live, err := RunBenchmark(cfg, prof, ops)
		if err != nil {
			t.Fatalf("%s: live run: %v", name, err)
		}
		raw := recordTrace(t, prof, cfg.Seed, ops)
		src, err := trace.NewFileBatchSource(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: opening recorded trace: %v", name, err)
		}
		rec, err := RunRecorded(cfg, prof, src)
		if err != nil {
			t.Fatalf("%s: replay run: %v", name, err)
		}
		if !reflect.DeepEqual(live, rec) {
			t.Errorf("%s: replayed result differs from live run:\nlive:   %+v\nreplay: %+v", name, live, rec)
		}
	}
}

// TestRunRecordedSurfacesCorruption: a bit flip mid-trace must fail the
// replay with the decoder's typed error, never silently truncate the
// simulation into a plausible-looking Result.
func TestRunRecordedSurfacesCorruption(t *testing.T) {
	cfg := config.Default()
	prof, err := workload.ByName("kvstore")
	if err != nil {
		t.Fatal(err)
	}
	raw := recordTrace(t, prof, cfg.Seed, 4000)
	raw[len(raw)/2] ^= 0x40
	src, err := trace.NewFileBatchSource(bytes.NewReader(raw))
	if err != nil {
		// Header-adjacent flips can fail at open; that also counts.
		return
	}
	if _, err := RunRecorded(cfg, prof, src); err == nil {
		t.Fatal("RunRecorded decoded a corrupted trace without error")
	}
}
