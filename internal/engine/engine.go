// Package engine is the whole-system simulator: it replays a memory-
// operation stream against the modelled core, cache hierarchy, SecPB,
// memory controller and PM, producing both timing results (cycles, IPC,
// slowdowns) and a functional persistent state that the recovery package
// can crash and verify at any point.
//
// The engine is a mechanistic cycle-accounting model rather than an
// event-driven simulator: time advances with each retired instruction,
// and shared resources (the SecPB port, the AES/MAC engines, the
// one-in-flight BMT walker, the MC drain pipeline, PM write bandwidth)
// are modelled as busy-until clocks. The paper's own analytical
// validation (Section VI.B) shows the evaluated effects are dominated by
// exactly these serializations.
package engine

import (
	"encoding/binary"
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/core"
	"secpb/internal/crashpoint"
	"secpb/internal/mem"
	"secpb/internal/nvm"
	"secpb/internal/ptable"
	"secpb/internal/stats"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// Engine simulates one core plus its memory system for one scheme.
type Engine struct {
	cfg    config.Config
	timing Timing
	prof   workload.Profile

	mc   *nvm.Controller
	spb  *core.SecPB // nil for the SP baseline
	hier *mem.Hierarchy
	sb   *mem.StoreBuffer

	// Specialized step kernel (see kernel.go): kern holds the
	// preresolved per-scheme constants and dispatch class, kernEnabled
	// the engine's pin (seeded from the package default), l1 the cached
	// L1 pointer the hot probes use, and blockCol the batch replay
	// loop's reusable bulk-decomposed block column.
	kern        kernel
	kernEnabled bool
	l1          *mem.Cache
	blockCol    []addr.Block
	// lastStoreBlock/lastStoreBlk memoize the kernel store path's most
	// recent memory-image lookup (ptable pointers are stable).
	lastStoreBlock addr.Block
	lastStoreBlk   *[addr.BlockBytes]byte

	// memory is the program's plaintext view of every written block —
	// the reference the crash observer compares recovery against, and
	// the source of initial contents for PB allocations. It is a paged
	// direct-index table keyed by block index: the per-store
	// read-modify-write is a radix lookup (no map hashing), block
	// storage never moves so the returned pointers stay valid, and one
	// 32KB page allocation covers the first touches of 512 neighbouring
	// blocks (the table doubles as the block arena).
	memory *ptable.Table[[addr.BlockBytes]byte]

	// Cycle-accounting clocks.
	now         uint64 // retirement time of the last instruction
	pbPortFree  uint64 // SecPB port: frees at the unblocking signal
	drainFree   uint64 // MC drain pipeline
	spUnitFree  uint64 // SP baseline MC pipeline
	lastUnblock uint64 // previous store's unblock time (in-order)

	// Virtual SecPB occupancy: functional drains happen at scheduling
	// time, but the slot stays occupied until the drain completes.
	inflight   []uint64 // completion times of scheduled drains (FIFO)
	draining   bool     // watermark drain in progress
	virtualOcc int
	peakOcc    int // high-water virtual occupancy (battery sizing)

	// gapHist measures the draining + sec-sync window the battery must
	// be able to cover (the gaps of Figure 3); each entry's point of
	// persistency rides on the entry itself (pb.Entry.AllocCycle).
	gapHist *stats.Histogram

	// sink, when non-nil, receives the store-accept crash point; the
	// same sink is propagated to the SecPB and controller by
	// SetCrashSink. Nil in normal runs: a disabled pipeline costs one
	// pointer compare per store and allocates nothing.
	sink crashpoint.Sink

	// Statistics.
	instrs        uint64
	loads, stores uint64
	loadStall     uint64
	backpressure  uint64 // cycles stores waited on a full SecPB
	pbServedLoads uint64
	integrityErr  error
	fracCPI       float64 // fractional cycle accumulator
	// cpiTab[n] = float64(n) * prof.NonMemCPI for small instruction
	// counts, precomputed so advance skips the int→float convert and
	// multiply on the per-op path. The products are the same IEEE
	// operations advance used to perform, so the accumulator trajectory
	// (and every derived cycle count) is bit-identical.
	cpiTab [64]float64
}

// New builds an engine for the given configuration and workload profile.
func New(cfg config.Config, prof workload.Profile, key []byte) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	mc, err := nvm.NewController(cfg, key)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		timing:  DefaultTiming(),
		prof:    prof,
		mc:      mc,
		hier:    mem.NewHierarchy(cfg),
		sb:      mem.NewStoreBuffer(cfg.StoreBufferCap),
		memory:  ptable.New[[addr.BlockBytes]byte](),
		gapHist: stats.NewHistogram(256, 512),
	}
	for n := range e.cpiTab {
		e.cpiTab[n] = float64(n) * prof.NonMemCPI
	}
	if cfg.Scheme != config.SchemeSP {
		spb, err := core.New(cfg, mc)
		if err != nil {
			return nil, err
		}
		e.spb = spb
	}
	e.kernEnabled = DefaultKernels()
	e.refreshKernel()
	return e, nil
}

// Controller exposes the memory controller (for recovery experiments).
func (e *Engine) Controller() *nvm.Controller { return e.mc }

// Config returns the configuration the engine was booted with.
func (e *Engine) Config() config.Config { return e.cfg }

// MediaStats reports the degraded-mode activity of the run so far: the
// controller's program-and-verify retries, bad-block remaps, and the PM
// fault injector's event counts. All zeros with the fault model off.
func (e *Engine) MediaStats() nvm.MediaStats { return e.mc.MediaStats() }

// SecPB exposes the persist buffer (nil under the SP baseline).
func (e *Engine) SecPB() *core.SecPB { return e.spb }

// Memory returns a snapshot of the program's plaintext view (the crash
// observer's reference for blocks that reached the point of
// persistency). The snapshot is rebuilt per call; per-block reads on hot
// paths should use MemoryBlock instead.
func (e *Engine) Memory() map[addr.Block][addr.BlockBytes]byte {
	out := make(map[addr.Block][addr.BlockBytes]byte, e.memory.Len())
	e.memory.Range(func(idx uint64, p *[addr.BlockBytes]byte) bool {
		out[addr.FromIndex(idx)] = *p
		return true
	})
	return out
}

// MemoryBlock returns the plaintext view of one block and whether the
// program ever wrote it.
func (e *Engine) MemoryBlock(b addr.Block) ([addr.BlockBytes]byte, bool) {
	if p := e.memory.Lookup(b.Index()); p != nil {
		return *p, true
	}
	return [addr.BlockBytes]byte{}, false
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// SetCrashSink installs (or, with nil, removes) a crash-injection sink
// across the whole pipeline: the engine's store-accept point, the
// SecPB's allocation point, and the controller's drain-path points.
func (e *Engine) SetCrashSink(s crashpoint.Sink) {
	e.sink = s
	if e.spb != nil {
		e.spb.SetCrashSink(s)
	}
	e.mc.SetCrashSink(s)
	// Crash points fire from inside the generic accept path; the
	// specialized kernel disengages while a sink is installed and
	// re-engages when it is removed.
	e.refreshKernel()
}

// advance adds non-memory instruction time: gap instructions plus the
// memory instruction itself, at the profile's baseline CPI.
func (e *Engine) advance(gap uint32) {
	n := uint64(gap) + 1
	e.instrs += n
	if n < uint64(len(e.cpiTab)) {
		e.fracCPI += e.cpiTab[n]
	} else {
		e.fracCPI += float64(n) * e.prof.NonMemCPI
	}
	// Convert through int64: the accumulator is a handful of op-CPIs
	// (nowhere near 2^63), and the signed truncation compiles to one
	// instruction on amd64 where the unsigned form is a branchy
	// sequence. The value — and so the cycle trajectory — is identical.
	whole := uint64(int64(e.fracCPI))
	e.fracCPI -= float64(whole)
	e.now += whole
}

// Step executes one memory operation.
func (e *Engine) Step(op trace.Op) error {
	if err := op.Validate(); err != nil {
		return err
	}
	return e.step(op)
}

// StepBatch executes one columnar batch of operations: validated once
// up front, then replayed through the same specialized kernels RunBatch
// uses. Callers that receive ops in externally-chosen chunks (the
// trace-streaming service steps one uploaded segment at a time) get the
// columnar fast path without committing to a whole-source Run; the
// result trajectory is identical to the equivalent Step sequence at any
// chunking, the same contract RunBatch's batching carries.
func (e *Engine) StepBatch(b *trace.Batch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	return e.replayBatch(b)
}

// step executes one already-validated operation (the batch replay path
// validates whole batches up front).
func (e *Engine) step(op trace.Op) error {
	e.advance(op.Gap)
	switch op.Kind {
	case trace.Load:
		if e.kern.class == kcSecPB {
			e.loadFast(op.Addr)
			return nil
		}
		e.doLoad(op)
	case trace.Store:
		if e.kern.class == kcSecPB {
			return e.storeFast(op.Addr, op.Size, op.Data)
		}
		if err := e.doStore(op); err != nil {
			return err
		}
	case trace.Fence:
		// Strict persistency on a persistent hierarchy: fences are
		// no-ops for persistency; they only drain the store buffer.
		if d := e.sb.DrainedBy(); d > e.now {
			e.now = d
		}
	}
	return nil
}

// Run drains the source. It returns the first error (trace corruption or
// an integrity violation, which indicates a simulator bug or an injected
// attack). Sources that also implement trace.BatchSource (the workload
// generator) are replayed through the batched path; scalar sources
// (codecs, recorded traces) take the per-op path. Both produce identical
// results.
func (e *Engine) Run(src trace.Source) error {
	if bs, ok := src.(trace.BatchSource); ok {
		return e.RunBatch(bs)
	}
	for {
		op, ok := src.Next()
		if !ok {
			break
		}
		if err := e.Step(op); err != nil {
			return err
		}
	}
	return e.finishRun()
}

// RunBatch drains a batched source: ops arrive in columnar chunks, each
// validated once up front and replayed with no per-op interface
// dispatch. The replay is double-buffered: while the current batch
// replays, a worker goroutine derives the one-time pads the next
// batch's store blocks are predicted to need (counter-mode pads depend
// only on the address/counter pair, so they can be computed off the
// critical path) on a cloned crypto engine. Predicted pads are
// installed in the controller's prefetch table after the join; wrong
// predictions are dropped at consumption time, so the pipeline changes
// wall-clock only, never results.
func (e *Engine) RunBatch(src trace.BatchSource) error {
	cur := trace.NewBatch(trace.DefaultBatchCap)
	if !src.NextBatch(cur) {
		return e.finishRun()
	}
	pf := e.newOTPPrefetcher()
	if pf == nil {
		// Single-buffered replay: without the pad pipeline there is
		// nothing to overlap, so skip the second batch and its refill
		// hand-off entirely.
		for {
			if err := cur.Validate(); err != nil {
				return err
			}
			if err := e.replayBatch(cur); err != nil {
				return err
			}
			if !src.NextBatch(cur) {
				break
			}
		}
		return e.finishRun()
	}
	next := trace.NewBatch(trace.DefaultBatchCap)
	for {
		if err := cur.Validate(); err != nil {
			return err
		}
		more := src.NextBatch(next)
		if more && pf != nil {
			pf.launch(next)
		}
		if err := e.replayBatch(cur); err != nil {
			pf.drain()
			return err
		}
		if more && pf != nil {
			pf.install(e.mc)
		}
		if !more {
			break
		}
		cur, next = next, cur
	}
	return e.finishRun()
}

// finishRun closes the region of interest. Execution time includes
// draining the core's store buffer (the last store must be persistently
// accepted) but not the PB drain, which proceeds in the background;
// deferred drain tuples and staged BMT walks are committed so post-run
// inspection starts from a settled controller.
func (e *Engine) finishRun() error {
	if d := e.sb.DrainedBy(); d > e.now {
		e.now = d
	}
	e.mc.FlushStaged()
	e.mc.CompleteSweep()
	return nil
}

// ExternalOp accounts for one memory operation executed outside this
// core's private data path — a shared-region access handled by the
// coherence layer in engine.System. The op's instruction gap retires at
// the profile CPI like any other op, and stall cycles (directory access,
// remote flush/migration latency) charge against retirement. The private
// caches, SecPB and controller are untouched.
func (e *Engine) ExternalOp(gap uint32, stall uint64) {
	e.advance(gap)
	e.now += stall
	e.loadStall += stall
}

// AddStall charges stall cycles accumulated on the core's behalf at a
// drain-epoch barrier (deferred shared-op latency).
func (e *Engine) AddStall(cycles uint64) {
	e.now += cycles
	e.loadStall += cycles
}

// EpochBarrier settles the controller at a drain-epoch boundary in
// multi-core runs: deferred drain tuples flush and staged BMT walks
// commit in one coalesced sweep. Functional state and Cost accounting
// are unchanged (the staging layer is wall-clock-only, see DESIGN.md
// §5.6), so calling this at any frequency never alters results.
func (e *Engine) EpochBarrier() {
	e.mc.FlushStaged()
	e.mc.CompleteSweep()
}

// Occupancy returns the current virtual SecPB occupancy (resident
// entries including scheduled drains still in flight).
func (e *Engine) Occupancy() int { return e.virtualOcc }

// PeakOccupancy returns the run's high-water virtual SecPB occupancy.
func (e *Engine) PeakOccupancy() int { return e.peakOcc }

// Finish closes the region of interest exactly as Run does — store
// buffer drained, staging settled — for callers that step the engine
// manually (engine.System drives per-core epochs itself).
func (e *Engine) Finish() error { return e.finishRun() }

// CrashDrain flushes the core's SecPB on battery power (FIFO order) and
// settles the engine's occupancy tracking: after it returns, every
// entry — including drains that were in flight — is persisted.
func (e *Engine) CrashDrain() (int, error) {
	if e.spb == nil {
		return 0, nil
	}
	n, _, err := e.spb.CrashDrain()
	e.inflight = e.inflight[:0]
	e.virtualOcc = 0
	return n, err
}

// doLoad models a data read.
func (e *Engine) doLoad(op trace.Op) {
	e.loads++
	block := addr.BlockOf(op.Addr)

	// L1 hit: fully pipelined, no retirement stall.
	if e.hier.L1().Access(block.Addr(), false, false) {
		return
	}
	// The persist buffer is at the L1 level and holds the freshest
	// data: an L1 miss that hits the SecPB is served from it.
	if e.spb != nil && e.spb.Lookup(block) != nil {
		e.pbServedLoads++
		e.hier.L1().Fill(block.Addr(), true, true)
		e.stall(e.cfg.SecPBAccessCyc)
		return
	}
	res := e.hier.Load(block.Addr())
	extra := uint64(0)
	if res.PMAccess {
		// Functional fetch: decrypt + verify.
		_, cost, err := e.mc.FetchBlock(block)
		if err != nil && e.integrityErr == nil {
			e.integrityErr = err
		}
		// With speculative verification (PoisonIvy) the MAC/BMT checks
		// run off the critical path; without it the load's use waits
		// for the MAC check and the BMT walk.
		if e.mc.Secure() && !e.cfg.Speculative {
			extra = e.cfg.MACLatency + uint64(cost.BMTLevels)*e.cfg.MACLatency
		}
	}
	e.stall(res.Cycles - e.hier.L1().Latency() + extra)
}

// stall charges a retirement stall of cycles/MLP (overlapped misses).
func (e *Engine) stall(cycles uint64) {
	s := cycles / e.timing.MLP
	e.loadStall += s
	e.now += s
}

// doStore models a persist: the store enters L1D and the SecPB in
// parallel; acceptance latency depends on the scheme's early work.
func (e *Engine) doStore(op trace.Op) error {
	e.stores++
	block := addr.BlockOf(op.Addr)
	off := int(op.Addr - block.Addr())

	// Functional: update the program view in place (whole-word stores,
	// the common case, skip the byte loop).
	blk, _ := e.memory.GetOrCreate(block.Index())
	if op.Size == 8 {
		binary.LittleEndian.PutUint64(blk[off:off+8], op.Data)
	} else {
		for i := 0; i < int(op.Size); i++ {
			blk[off+i] = byte(op.Data >> (8 * i))
		}
	}

	// Timing+state: L1D write in parallel with PB acceptance.
	e.hier.Store(block.Addr())

	// Crash boundary: the program view and L1 hold the store but it has
	// not reached the point of persistency yet.
	if e.sink != nil {
		e.sink.CrashPoint(crashpoint.StoreAccept, block)
	}

	if e.cfg.Scheme == config.SchemeSP {
		return e.doStoreSP(block, blk)
	}

	// Retire completed drains.
	e.reapDrains(e.now)

	accStart := max(e.now, e.pbPortFree)

	// Backflow test: the Lookup only matters when occupancy is at the
	// limit, so check the cheap counter first.
	if e.virtualOcc >= e.cfg.SecPBEntries && e.spb.Lookup(block) == nil {
		// Backflow: the SecPB is full including in-flight drains; the
		// store waits for the oldest drain to complete (draining is
		// already in progress by watermark, but force one if not).
		if len(e.inflight) == 0 {
			if err := e.scheduleDrain(accStart); err != nil {
				return err
			}
		}
		wait := e.inflight[0]
		if wait > accStart {
			e.backpressure += wait - accStart
			accStart = wait
		}
		e.reapDrains(accStart)
	}

	var cost core.AcceptCost
	if err := e.spb.AcceptStoreInit(0, block, off, int(op.Size), op.Data, blk, accStart, &cost); err != nil {
		return fmt.Errorf("engine: accept store: %w", err)
	}
	if cost.Allocated {
		e.virtualOcc++
		if e.virtualOcc > e.peakOcc {
			e.peakOcc = e.virtualOcc
		}
	}

	// Early-work timing follows Figure 4's dependency graph: the
	// counter gates everything; OTP → ciphertext → MAC form one chain;
	// the BMT walk branches off the counter in parallel. Distinct
	// hardware units pipeline across stores ("generation of several
	// MACs is overlapped with BMT updates", Sec VI.B), but stores
	// unblock the store buffer in order (persist order invariant).
	port := e.cfg.SecPBAccessCyc
	if cost.Allocated && e.cfg.Scheme == config.SchemeOBCM {
		// OBCM pays the SecPB access twice for new entries: once to
		// write the data block, once to check the counter valid bit.
		port += e.cfg.SecPBAccessCyc
	}
	t0 := accStart + port
	e.pbPortFree = t0

	tCtr := t0
	if cost.CounterStep {
		if cost.CtrCost.CtrFetchPM {
			tCtr += e.cfg.PMReadCycles()
		} else {
			tCtr += e.cfg.CtrCache.AccessCycles
		}
	}
	// OTP → ciphertext → MAC chain.
	tChain := tCtr
	if cost.OTPGenerated {
		tChain += e.cfg.AESLatency
	}
	if cost.CipherXOR {
		// Regenerating Dc costs a single-cycle XOR plus a SecPB write
		// port access to update the entry's ciphertext field.
		tChain += 1 + e.cfg.SecPBAccessCyc
	}
	if cost.MACGenerated {
		tChain += e.cfg.MACLatency
	}
	// BMT branch (parallel with the MAC chain within this store: both
	// hang off the counter, and "the generation of several MACs is
	// overlapped with BMT updates", Sec VI.B).
	tBMT := tCtr
	if cost.BMTLevels > 0 {
		tBMT += uint64(cost.BMTLevels)*e.cfg.MACLatency +
			uint64(cost.BMTNodeFetch)*e.cfg.PMReadCycles()
	}
	// The unblocking signal: the SecPB accepts the next store only
	// after this store's early tuple elements are updated (for NoGap,
	// the complete tuple — the persist order invariant).
	unblock := max(tChain, tBMT)
	e.pbPortFree = unblock
	e.lastUnblock = unblock

	// The core proceeds unless the store buffer is full; then the
	// shared watermark-drain epilogue.
	e.now = e.sb.Push(e.now, unblock)
	return e.storeDrainTail()
}

// doStoreSP models the SP baseline: every store streams through the
// MC's pipelined tuple-update path (no coalescing, SPoP at the MC).
func (e *Engine) doStoreSP(block addr.Block, data *[addr.BlockBytes]byte) error {
	levels := 0
	if h := e.mc.Heights(); h != nil {
		levels = h.WalkLevels(block.CounterLine())
	}
	busy := e.timing.SPBaseII + uint64(levels)*e.timing.SPLevelII
	start := max(e.now, e.spUnitFree)
	done := start + busy
	e.spUnitFree = done
	e.now = e.sb.Push(e.now, done)
	// Functional write-through persist of the whole block.
	if _, err := e.mc.PersistBlock(block, data, nil); err != nil {
		return fmt.Errorf("engine: SP persist: %w", err)
	}
	return nil
}

// scheduleDrain pops the oldest entry functionally, completes its tuple
// at the MC, and books the drain pipeline time; the SecPB slot frees
// when the drain completes.
func (e *Engine) scheduleDrain(at uint64) error {
	entry, cost, err := e.spb.DrainOne()
	if err != nil {
		return fmt.Errorf("engine: drain: %w", err)
	}
	if entry == nil {
		return nil
	}
	busy := e.timing.DrainBase +
		uint64(cost.Hashes)*e.timing.DrainHashII +
		uint64(cost.AESOps)*e.timing.DrainAESII +
		uint64(cost.PMDataWrites+cost.PMMetaWrites)*e.timing.DrainPMWrite +
		uint64(cost.PMReads)*e.timing.DrainPMRead
	start := max(e.drainFree, at)
	e.drainFree = start + busy
	e.inflight = append(e.inflight, e.drainFree)
	// Record the PoP -> SPoP window (draining gap + sec-sync gap): the
	// time this entry spent covered only by the battery guarantee.
	if e.drainFree > entry.AllocCycle {
		e.gapHist.Add(e.drainFree - entry.AllocCycle)
	}
	e.spb.Recycle(entry)
	return nil
}

// reapDrains frees SecPB slots whose drains completed by cycle t.
func (e *Engine) reapDrains(t uint64) {
	i := 0
	for i < len(e.inflight) && e.inflight[i] <= t {
		i++
	}
	if i > 0 {
		e.inflight = e.inflight[i:]
		e.virtualOcc -= i
	}
}
