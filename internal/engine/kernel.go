package engine

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/core"
	"secpb/internal/mem"
	"secpb/internal/trace"
)

// This file is the scheme-specialized execution kernel: a monomorphic
// per-(scheme, knob-set) step path instantiated at engine construction.
// Every config-invariant decision — secure vs. insecure, which tuple
// elements the scheme generates early, counter-cache vs. PM counter
// fetch cost, speculative vs. blocking integrity verification, crash-
// sink presence, the DVI-coalescing ablation — is resolved once into
// precomputed cycle constants and a class tag, so the per-op path pays
// none of the interpreter branches the generic path re-evaluates per
// store. The generic doLoad/doStore path is retained verbatim as the
// differential oracle: kernel and generic replay are asserted
// byte-identical (results, artifacts, and functional memory images) by
// kernel_test.go, including under fuzzing.
//
// The kernel engages only where it is provably equivalent:
//   - non-SP SecPB schemes (SP has its own doStoreSP path and no SecPB),
//   - no crash sink installed (sinks need the per-point callbacks), and
//   - DVI coalescing enabled (the ablation redoes per-entry work on
//     every store, which only the generic accept path models).
//
// Everything else falls back to the generic interpreter, and
// SetCrashSink re-resolves the choice whenever a sink comes or goes.

// defaultKernels is the package-wide default for newly built engines:
// nonzero = specialized kernels (the default), zero = generic
// interpreter. It steers host wall-clock strategy only — results are
// bit-identical either way — mirroring crypto.SetDefaultLanes. It is
// deliberately NOT a config.Config field: experiment cell keys hash the
// config, and a wall-clock knob must never perturb content keys (the
// persistent cell cache shares entries across processes and knob
// settings).
var defaultKernels atomic.Int32 // 0 = on (default), 1 = off

// SetDefaultKernels sets the package default for engines that do not
// pin their own choice via SetKernels.
func SetDefaultKernels(on bool) {
	if on {
		defaultKernels.Store(0)
	} else {
		defaultKernels.Store(1)
	}
}

// DefaultKernels reports the package default.
func DefaultKernels() bool { return defaultKernels.Load() == 0 }

// kernelClass selects the step dispatch.
type kernelClass uint8

const (
	kcGeneric kernelClass = iota // interpreter path (oracle)
	kcSecPB                      // specialized non-SP SecPB kernel
)

// kernel holds the constants the specialized step path needs, hoisted
// out of config.Config at engine construction (PMReadCycles alone is a
// float multiply per call on the generic path).
type kernel struct {
	class     kernelClass
	port      uint64 // SecPBAccessCyc
	allocPort uint64 // extra port cycles for new entries (OBCM: +port)
	ctrHit    uint64 // counter-cache access cycles
	pmRead    uint64 // PMReadCycles(): counter/BMT-node fetch from PM
	aes       uint64 // AESLatency
	mac       uint64 // MACLatency (also per BMT level)
	entries   int    // SecPBEntries (backflow limit)
	loadCheck bool   // secure && !Speculative: loads wait for MAC+BMT
}

// refreshKernel re-resolves the engine's step dispatch from its config,
// the sink state, and the enable flag. Called at construction and from
// SetCrashSink / SetKernels.
func (e *Engine) refreshKernel() {
	e.kern = kernel{}
	e.l1 = e.hier.L1()
	if !e.kernEnabled || e.sink != nil || e.spb == nil || e.cfg.DisableDVICoalescing {
		return
	}
	k := kernel{
		class:   kcSecPB,
		port:    e.cfg.SecPBAccessCyc,
		ctrHit:  e.cfg.CtrCache.AccessCycles,
		pmRead:  e.cfg.PMReadCycles(),
		aes:     e.cfg.AESLatency,
		mac:     e.cfg.MACLatency,
		entries: e.cfg.SecPBEntries,
	}
	if e.cfg.Scheme == config.SchemeOBCM {
		k.allocPort = k.port
	}
	if e.mc.Secure() && !e.cfg.Speculative {
		k.loadCheck = true
	}
	e.kern = k
}

// SetKernels pins this engine's step-path choice, overriding the
// package default: true = specialized kernels (where eligible), false =
// generic interpreter. Results are bit-identical either way.
func (e *Engine) SetKernels(on bool) {
	e.kernEnabled = on
	e.refreshKernel()
}

// Kernelized reports whether the specialized step path is active.
func (e *Engine) Kernelized() bool { return e.kern.class == kcSecPB }

// loadFast is the kernel load path: the L1 probe is issued against the
// cached *mem.Cache with the read-specialized probe; everything past an
// L1 hit (the overwhelmingly common case) is in loadMissSlow.
func (e *Engine) loadFast(a uint64) {
	e.loads++
	blockAddr := a &^ (addr.BlockBytes - 1)
	if e.l1.AccessRead(blockAddr) {
		return
	}
	e.loadMissSlow(blockAddr)
}

// loadMissSlow mirrors the generic doLoad after an L1 miss, with the
// config-invariant latencies read from the kernel. The generic path's
// hierarchy walk rescans the L1 set whose miss the caller just
// observed; the kernel recounts that probe arithmetically
// (LoadAfterL1Miss), so cache statistics stay bit-identical without
// the redundant scan.
func (e *Engine) loadMissSlow(blockAddr uint64) {
	block := addr.Block(blockAddr)
	if e.spb.Lookup(block) != nil {
		e.pbServedLoads++
		e.l1.Fill(blockAddr, true, true)
		e.stall(e.kern.port)
		return
	}
	res := e.hier.LoadAfterL1Miss(blockAddr)
	extra := uint64(0)
	if res.PMAccess {
		_, cost, err := e.mc.FetchBlock(block)
		if err != nil && e.integrityErr == nil {
			e.integrityErr = err
		}
		if e.kern.loadCheck {
			extra = e.kern.mac + uint64(cost.BMTLevels)*e.kern.mac
		}
	}
	e.stall(res.Cycles - e.hier.L1().Latency() + extra)
}

// storeFast is the kernel store path. The common case — the store
// coalesces into a resident entry — runs straight through: memory
// update, hierarchy touch, one index probe that doubles as the
// coalescing write plus the scheme's per-store early work, and the
// acceptance timing chain with all constants preresolved. Allocation
// (roughly one store in NWPE) takes storeAllocSlow.
func (e *Engine) storeFast(a uint64, size uint8, data uint64) error {
	e.stores++
	block := addr.BlockOf(a)
	off := int(a - uint64(block))

	// Consecutive stores overwhelmingly target the block they just
	// wrote; ptable block pointers never move, so the previous lookup
	// stays valid and the radix walk is skipped on a repeat.
	blk := e.lastStoreBlk
	if block != e.lastStoreBlock || blk == nil {
		blk, _ = e.memory.GetOrCreate(block.Index())
		e.lastStoreBlock, e.lastStoreBlk = block, blk
	}
	if size == 8 {
		binary.LittleEndian.PutUint64(blk[off:off+8], data)
	} else {
		for i := 0; i < int(size); i++ {
			blk[off+i] = byte(data >> (8 * i))
		}
	}

	e.hier.StoreTouch(uint64(block))
	e.reapDrains(e.now)

	accStart := e.now
	if e.pbPortFree > accStart {
		accStart = e.pbPortFree
	}

	found, xored, maced := e.spb.CoalesceStore(block, off, int(size), data)
	if !found {
		return e.storeAllocSlow(block, off, size, data, blk, accStart)
	}

	// Coalesced store: no counter step, no OTP, no BMT walk (the DVI
	// per-entry work ran at allocation), so the Figure 4 dependency
	// graph collapses to port → [cipher XOR] → [MAC].
	unblock := accStart + e.kern.port
	if xored {
		unblock += 1 + e.kern.port
	}
	if maced {
		unblock += e.kern.mac
	}
	e.pbPortFree = unblock
	e.lastUnblock = unblock
	e.now = e.sb.Push(e.now, unblock)
	return e.storeDrainTail()
}

// storeAllocSlow is the kernel store path's allocation case: the
// backflow test, the full accept (with cost accounting), and the
// complete early-work timing chain — the generic doStore sequence from
// the backflow test on, with kernel constants.
func (e *Engine) storeAllocSlow(block addr.Block, off int, size uint8, data uint64, blk *[addr.BlockBytes]byte, accStart uint64) error {
	if e.virtualOcc >= e.kern.entries && e.spb.Lookup(block) == nil {
		if len(e.inflight) == 0 {
			if err := e.scheduleDrain(accStart); err != nil {
				return err
			}
		}
		wait := e.inflight[0]
		if wait > accStart {
			e.backpressure += wait - accStart
			accStart = wait
		}
		e.reapDrains(accStart)
	}

	var cost core.AcceptCost
	if err := e.spb.AcceptStoreInit(0, block, off, int(size), data, blk, accStart, &cost); err != nil {
		return fmt.Errorf("engine: accept store: %w", err)
	}
	port := e.kern.port
	if cost.Allocated {
		e.virtualOcc++
		if e.virtualOcc > e.peakOcc {
			e.peakOcc = e.virtualOcc
		}
		port += e.kern.allocPort
	}

	t0 := accStart + port
	tCtr := t0
	if cost.CounterStep {
		if cost.CtrCost.CtrFetchPM {
			tCtr += e.kern.pmRead
		} else {
			tCtr += e.kern.ctrHit
		}
	}
	tChain := tCtr
	if cost.OTPGenerated {
		tChain += e.kern.aes
	}
	if cost.CipherXOR {
		tChain += 1 + e.kern.port
	}
	if cost.MACGenerated {
		tChain += e.kern.mac
	}
	tBMT := tCtr
	if cost.BMTLevels > 0 {
		tBMT += uint64(cost.BMTLevels)*e.kern.mac +
			uint64(cost.BMTNodeFetch)*e.kern.pmRead
	}
	unblock := tChain
	if tBMT > unblock {
		unblock = tBMT
	}
	e.pbPortFree = unblock
	e.lastUnblock = unblock
	e.now = e.sb.Push(e.now, unblock)
	return e.storeDrainTail()
}

// storeDrainTail is the watermark-drain epilogue every store path
// (generic and kernel) runs: start draining above the high watermark,
// continue to the low one, and commit the burst's staged BMT walks in
// one coalesced sweep.
func (e *Engine) storeDrainTail() error {
	if e.spb.AboveHigh() {
		e.draining = true
	}
	drained := false
	for e.draining && e.spb.AboveLow() {
		if err := e.scheduleDrain(e.now); err != nil {
			return err
		}
		drained = true
	}
	if !e.spb.AboveLow() {
		e.draining = false
	}
	if drained {
		// The drain burst is one epoch: commit its staged BMT walks with
		// a single coalesced sweep (timing/Cost accounting is unchanged —
		// the sweep only affects host wall-clock).
		e.mc.CompleteSweep()
	}
	return nil
}

// replayBatch replays one validated batch. With the kernel engaged the
// loop is genuinely columnar: the block column is bulk-decomposed up
// front via internal/addr, ops are read straight out of the columns
// (no per-op trace.Op materialization and no per-op Validate), the CPI
// accumulation is inlined against a batch-local cpiTab reference with
// the instruction counter held in a register across the batch (the
// float trajectory performs the identical IEEE operations in identical
// order, so every derived cycle count is bit-identical), and L1-hit
// loads — the bulk of every workload — complete inside the loop with a
// single set-indexed SoA probe.
func (e *Engine) replayBatch(b *trace.Batch) error {
	if e.kern.class != kcSecPB {
		for i, n := 0, b.Len(); i < n; i++ {
			if err := e.step(b.Op(i)); err != nil {
				return err
			}
		}
		return nil
	}

	kinds, addrs, sizes, datas, gaps := b.Kinds, b.Addrs, b.Sizes, b.Datas, b.Gaps
	e.blockCol = addr.AppendBlocks(e.blockCol[:0], addrs)
	blocks := e.blockCol
	l1 := e.l1
	cpiTab := &e.cpiTab
	nonMemCPI := e.prof.NonMemCPI
	instrs := uint64(0)

	for i := range kinds {
		// advance(), inlined: same accumulator, same operation order.
		n := uint64(gaps[i]) + 1
		instrs += n
		f := e.fracCPI
		if n < uint64(len(cpiTab)) {
			f += cpiTab[n]
		} else {
			f += float64(n) * nonMemCPI
		}
		whole := uint64(int64(f)) // see advance: value-identical, cheaper
		e.fracCPI = f - float64(whole)
		e.now += whole

		switch kinds[i] {
		case trace.Load:
			e.loads++
			if l1.AccessRead(uint64(blocks[i])) {
				continue
			}
			e.loadMissSlow(uint64(blocks[i]))
		case trace.Store:
			if err := e.storeFastBlock(blocks[i], addrs[i], sizes[i], datas[i]); err != nil {
				e.instrs += instrs
				return err
			}
		default: // trace.Fence
			if d := e.sb.DrainedBy(); d > e.now {
				e.now = d
			}
		}
	}
	e.instrs += instrs
	return nil
}

// storeFastBlock is storeFast with the block already decomposed (the
// batch replay loop reads it from the precomputed block column).
func (e *Engine) storeFastBlock(block addr.Block, a uint64, size uint8, data uint64) error {
	e.stores++
	off := int(a - uint64(block))

	blk := e.lastStoreBlk
	if block != e.lastStoreBlock || blk == nil {
		blk, _ = e.memory.GetOrCreate(block.Index())
		e.lastStoreBlock, e.lastStoreBlk = block, blk
	}
	if size == 8 {
		binary.LittleEndian.PutUint64(blk[off:off+8], data)
	} else {
		for i := 0; i < int(size); i++ {
			blk[off+i] = byte(data >> (8 * i))
		}
	}

	e.hier.StoreTouch(uint64(block))
	e.reapDrains(e.now)

	accStart := e.now
	if e.pbPortFree > accStart {
		accStart = e.pbPortFree
	}

	found, xored, maced := e.spb.CoalesceStore(block, off, int(size), data)
	if !found {
		return e.storeAllocSlow(block, off, size, data, blk, accStart)
	}

	unblock := accStart + e.kern.port
	if xored {
		unblock += 1 + e.kern.port
	}
	if maced {
		unblock += e.kern.mac
	}
	e.pbPortFree = unblock
	e.lastUnblock = unblock
	e.now = e.sb.Push(e.now, unblock)
	return e.storeDrainTail()
}

// l1Cache returns the cached L1 pointer (set by refreshKernel) for
// tests that assert the kernel wiring.
func (e *Engine) l1Cache() *mem.Cache { return e.l1 }
