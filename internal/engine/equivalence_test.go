package engine

import (
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/trace"
	"secpb/internal/workload"
	"secpb/internal/xrand"
)

// refInterp is the executable specification of the persistent state: a
// plain map applying every store in order.
func refInterp(ops []trace.Op) map[addr.Block][addr.BlockBytes]byte {
	mem := map[addr.Block][addr.BlockBytes]byte{}
	for _, op := range ops {
		if op.Kind != trace.Store {
			continue
		}
		b := addr.BlockOf(op.Addr)
		cur := mem[b]
		off := int(op.Addr - b.Addr())
		for i := 0; i < int(op.Size); i++ {
			cur[off+i] = byte(op.Data >> (8 * i))
		}
		mem[b] = cur
	}
	return mem
}

// TestCrossSchemeFunctionalEquivalence is the whole-system property:
// for the same op stream, every scheme (and the SP baseline) must leave
// PM in a state that decrypts and verifies to exactly the reference
// interpreter's final memory. Timing may differ wildly; plaintext must
// not.
func TestCrossSchemeFunctionalEquivalence(t *testing.T) {
	prof := mustProfile(t, "gcc")
	ops, err := workload.Generate(prof, 0xE71, 4000)
	if err != nil {
		t.Fatal(err)
	}
	want := refInterp(ops)
	if len(want) == 0 {
		t.Fatal("reference state empty")
	}
	for _, scheme := range config.AllSchemes() {
		cfg := config.Default().WithScheme(scheme)
		e, err := New(cfg, prof, []byte("equiv"))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(trace.NewSliceSource(ops)); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if spb := e.SecPB(); spb != nil {
			if _, _, err := spb.CrashDrain(); err != nil {
				t.Fatalf("%v: %v", scheme, err)
			}
		}
		for block, wantData := range want {
			got, _, err := e.Controller().FetchBlock(block)
			if err != nil {
				t.Fatalf("%v: block %#x: %v", scheme, block.Addr(), err)
			}
			if got != wantData {
				t.Fatalf("%v: block %#x diverges from reference interpreter", scheme, block.Addr())
			}
		}
	}
}

// TestRandomTraceEquivalence drives random op streams (not workload-
// shaped) through random schemes against the reference interpreter.
func TestRandomTraceEquivalence(t *testing.T) {
	r := xrand.New(0x5EED)
	prof := mustProfile(t, "mcf")
	for trial := 0; trial < 6; trial++ {
		scheme := config.SecPBSchemes()[trial%6]
		var ops []trace.Op
		nblocks := 8 + r.Intn(60)
		for i := 0; i < 1500; i++ {
			size := uint8(1) << r.Intn(4)
			a := 0x10000000 + uint64(r.Intn(nblocks))*64 + (r.Uint64()%64)&^(uint64(size)-1)
			if r.Bool(0.7) {
				ops = append(ops, trace.Op{Kind: trace.Store, Addr: a, Size: size,
					Data: r.Uint64() & (1<<(8*size) - 1), Gap: uint32(r.Intn(10))})
			} else {
				ops = append(ops, trace.Op{Kind: trace.Load, Addr: a, Size: size, Gap: uint32(r.Intn(10))})
			}
		}
		want := refInterp(ops)
		cfg := config.Default().WithScheme(scheme).WithSecPBEntries(8)
		e, err := New(cfg, prof, []byte("rand"))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(trace.NewSliceSource(ops)); err != nil {
			t.Fatalf("trial %d %v: %v", trial, scheme, err)
		}
		if _, _, err := e.SecPB().CrashDrain(); err != nil {
			t.Fatal(err)
		}
		for block, wantData := range want {
			got, _, err := e.Controller().FetchBlock(block)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, scheme, err)
			}
			if got != wantData {
				t.Fatalf("trial %d %v: block %#x diverges (sub-word merging broken?)", trial, scheme, block.Addr())
			}
		}
	}
}

// TestEpochFencesNearlyFree demonstrates the persistent-hierarchy
// programmability claim: under SecPB, strict persistency makes fences
// redundant, so sprinkling epoch boundaries through a workload must not
// change performance materially (they only drain the store buffer).
func TestEpochFencesNearlyFree(t *testing.T) {
	prof := mustProfile(t, "gcc")
	ops, err := workload.Generate(prof, 3, 20000)
	if err != nil {
		t.Fatal(err)
	}
	var fenced []trace.Op
	for i, op := range ops {
		fenced = append(fenced, op)
		if i%50 == 49 {
			fenced = append(fenced, trace.Op{Kind: trace.Fence})
		}
	}
	run := func(stream []trace.Op) uint64 {
		e, err := New(config.Default(), prof, []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(trace.NewSliceSource(stream)); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	plain := run(ops)
	withFences := run(fenced)
	slow := float64(withFences)/float64(plain) - 1
	if slow > 0.05 {
		t.Errorf("400 epoch fences cost %.1f%% under COBCM; persistent hierarchy should make them nearly free", slow*100)
	}
}
