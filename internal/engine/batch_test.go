package engine

import (
	"testing"

	"secpb/internal/config"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// TestRunBatchMatchesScalarRun replays the same generated stream
// through the scalar Step loop and the batched path and requires
// identical results — the batched replay is a pure dispatch
// optimization, invisible to the simulation.
func TestRunBatchMatchesScalarRun(t *testing.T) {
	for _, scheme := range []config.Scheme{config.SchemeBBB, config.SchemeCOBCM, config.SchemeNoGap} {
		cfg := config.Default().WithScheme(scheme)
		prof := mustProfile(t, "povray")

		// Scalar: materialize the ops and drive Run through a Source
		// that is not a BatchSource.
		ops, err := workload.Generate(prof, cfg.Seed, 20000)
		if err != nil {
			t.Fatal(err)
		}
		scalar := runOps(t, cfg, prof, ops)

		// Batched: Run on the generator itself dispatches to RunBatch
		// (workload.Generator implements trace.BatchSource).
		gen, err := workload.NewGenerator(prof, cfg.Seed, 20000)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := New(cfg, prof, []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		if err := batched.Run(gen); err != nil {
			t.Fatal(err)
		}

		a, b := scalar.Collect(), batched.Collect()
		if a != b {
			t.Errorf("%v: scalar result %+v != batched %+v", scheme, a, b)
		}
	}
}

// TestRunBatchValidates ensures batched replay still rejects invalid
// ops (validation is per batch, not skipped).
func TestRunBatchValidates(t *testing.T) {
	cfg := config.Default()
	prof := mustProfile(t, "povray")
	e, err := New(cfg, prof, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBatch(4)
	b.Append(trace.Op{Kind: trace.Store, Addr: 0x1000, Size: 0}) // invalid
	if err := e.RunBatch(oneBatchSource{b}); err == nil {
		t.Fatal("RunBatch accepted an invalid op")
	}
}

// oneBatchSource yields a single prefilled batch.
type oneBatchSource struct{ b *trace.Batch }

func (s oneBatchSource) NextBatch(b *trace.Batch) bool {
	if s.b == nil || s.b.Len() == 0 {
		return false
	}
	b.Reset()
	for i := 0; i < s.b.Len(); i++ {
		b.Append(s.b.Op(i))
	}
	s.b.Reset()
	return b.Len() > 0
}
