package engine

import (
	"runtime"
	"testing"

	"secpb/internal/config"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// TestRunBatchMatchesScalarRun replays the same generated stream
// through the scalar Step loop and the batched path and requires
// identical results — the batched replay is a pure dispatch
// optimization, invisible to the simulation.
func TestRunBatchMatchesScalarRun(t *testing.T) {
	for _, scheme := range []config.Scheme{config.SchemeBBB, config.SchemeCOBCM, config.SchemeNoGap} {
		cfg := config.Default().WithScheme(scheme)
		prof := mustProfile(t, "povray")

		// Scalar: materialize the ops and drive Run through a Source
		// that is not a BatchSource.
		ops, err := workload.Generate(prof, cfg.Seed, 20000)
		if err != nil {
			t.Fatal(err)
		}
		scalar := runOps(t, cfg, prof, ops)

		// Batched: Run on the generator itself dispatches to RunBatch
		// (workload.Generator implements trace.BatchSource).
		gen, err := workload.NewGenerator(prof, cfg.Seed, 20000)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := New(cfg, prof, []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		if err := batched.Run(gen); err != nil {
			t.Fatal(err)
		}

		a, b := scalar.Collect(), batched.Collect()
		if a != b {
			t.Errorf("%v: scalar result %+v != batched %+v", scheme, a, b)
		}
	}
}

// TestRunBatchPrefetchMatchesScalar forces the OTP-prefetch pipeline on
// (it needs GOMAXPROCS ≥ 2) and requires the batched replay to remain
// identical to the scalar one: the prefetcher may only move pad
// derivation off the critical path, never change a result. It also
// checks the pipeline actually ran and that consumed pads were real
// hits, not silent rederivations.
func TestRunBatchPrefetchMatchesScalar(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	for _, scheme := range []config.Scheme{config.SchemeBBB, config.SchemeCOBCM, config.SchemeNoGap} {
		cfg := config.Default().WithScheme(scheme)
		prof := mustProfile(t, "povray")
		ops, err := workload.Generate(prof, cfg.Seed, 30000)
		if err != nil {
			t.Fatal(err)
		}
		scalar := runOps(t, cfg, prof, ops)

		batched, err := New(cfg, prof, []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		if err := batched.RunBatch(trace.NewSliceBatchSource(ops)); err != nil {
			t.Fatal(err)
		}

		if a, b := scalar.Collect(), batched.Collect(); a != b {
			t.Errorf("%v: scalar result %+v != prefetched batched %+v", scheme, a, b)
		}
		if st := scalar.Controller().Tree(); st != nil {
			if sr, br := st.Root(), batched.Controller().Tree().Root(); sr != br {
				t.Errorf("%v: BMT root diverged under prefetch", scheme)
			}
		}
		if sp, bp := scalar.Controller().PM().Len(), batched.Controller().PM().Len(); sp != bp {
			t.Errorf("%v: PM block count %d scalar vs %d batched", scheme, sp, bp)
		}
		installed, hits := batched.Controller().OTPPrefetchStats()
		if !batched.Controller().Secure() {
			if installed != 0 {
				t.Errorf("%v: insecure scheme installed %d pads", scheme, installed)
			}
			continue
		}
		if installed == 0 {
			t.Fatalf("%v: prefetch pipeline never installed a pad", scheme)
		}
		if hits == 0 {
			t.Errorf("%v: %d pads installed but none consumed", scheme, installed)
		}
		t.Logf("%v: %d pads installed, %d consumed", scheme, installed, hits)
	}
}

// TestRunBatchValidates ensures batched replay still rejects invalid
// ops (validation is per batch, not skipped).
func TestRunBatchValidates(t *testing.T) {
	cfg := config.Default()
	prof := mustProfile(t, "povray")
	e, err := New(cfg, prof, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBatch(4)
	b.Append(trace.Op{Kind: trace.Store, Addr: 0x1000, Size: 0}) // invalid
	if err := e.RunBatch(oneBatchSource{b}); err == nil {
		t.Fatal("RunBatch accepted an invalid op")
	}
}

// oneBatchSource yields a single prefilled batch.
type oneBatchSource struct{ b *trace.Batch }

func (s oneBatchSource) NextBatch(b *trace.Batch) bool {
	if s.b == nil || s.b.Len() == 0 {
		return false
	}
	b.Reset()
	for i := 0; i < s.b.Len(); i++ {
		b.Append(s.b.Op(i))
	}
	s.b.Reset()
	return b.Len() > 0
}
