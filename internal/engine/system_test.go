package engine

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"secpb/internal/config"
	"secpb/internal/workload"
)

func runSystemWorkers(t *testing.T, cfg config.Config, prof workload.Profile, nops uint64, workers int) MCResult {
	t.Helper()
	sys, err := NewSystem(cfg, prof, []byte("secpb-experiment-key"), nops)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sys.SetWorkers(workers)
	if err := sys.Run(); err != nil {
		t.Fatalf("Run (workers=%d): %v", workers, err)
	}
	res := sys.Collect()
	if err := res.IntegrityErr(); err != nil {
		t.Fatalf("integrity violation (workers=%d): %v", workers, err)
	}
	return res
}

// TestSystemSerialParallelIdentity is the determinism backbone: stepping
// the cores on one worker or many must produce bit-identical results,
// because per-core state is disjoint during the parallel phase and all
// shared-state mutation happens at serialized barriers in canonical
// (core id, program order) order.
func TestSystemSerialParallelIdentity(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	prof := mustProfile(t, "gromacs")
	for _, scheme := range []config.Scheme{config.SchemeCM, config.SchemeCOBCM} {
		cfg := config.Default().WithScheme(scheme).WithCores(4)
		serial := runSystemWorkers(t, cfg, prof, 4000, 1)
		parallel := runSystemWorkers(t, cfg, prof, 4000, 4)
		if !reflect.DeepEqual(serial, parallel) {
			sj, _ := json.MarshalIndent(serial, "", " ")
			pj, _ := json.MarshalIndent(parallel, "", " ")
			t.Fatalf("%s: serial != parallel\nserial:  %s\nparallel: %s", scheme, sj, pj)
		}
		if serial.MESI.Migrations+serial.MESI.ReadFlushes == 0 {
			t.Fatalf("%s: no cross-core coherence traffic — test not exercising MESI", scheme)
		}
	}
}

// TestSystemRunDeterminism runs the same configuration twice and demands
// identical results (same seeds, same interleave decisions).
func TestSystemRunDeterminism(t *testing.T) {
	prof := mustProfile(t, "gcc")
	cfg := config.Default().WithCores(2)
	a := runSystemWorkers(t, cfg, prof, 3000, 2)
	b := runSystemWorkers(t, cfg, prof, 3000, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeat run diverged:\n%v\n%v", a, b)
	}
}

// TestSystemCoreSeedDivergence: distinct cores must see distinct
// workload streams (core 0 keeps the configured seed verbatim).
func TestSystemCoreSeedDivergence(t *testing.T) {
	if CoreSeed(42, 0) != 42 {
		t.Fatalf("core 0 must keep the configured seed, got %d", CoreSeed(42, 0))
	}
	seen := map[uint64]int{}
	for c := 0; c < 64; c++ {
		s := CoreSeed(42, c)
		if s == 0 {
			t.Fatalf("core %d derived the reserved zero seed", c)
		}
		if prev, ok := seen[s]; ok {
			t.Fatalf("cores %d and %d share seed %d", prev, c, s)
		}
		seen[s] = c
	}
}

// TestSystemInvariants: after a run the coherence directory must agree
// with SecPB residency (every Modified line resident at its owner, no
// replication of persist-buffer entries).
func TestSystemInvariants(t *testing.T) {
	prof := mustProfile(t, "gromacs")
	cfg := config.Default().WithCores(4)
	sys, err := NewSystem(cfg, prof, []byte("secpb-experiment-key"), 4000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Shared().CheckInvariants(); err != nil {
		t.Fatalf("coherence invariants violated after run: %v", err)
	}
}

// TestSystemCrashDrain: a whole-socket crash drain persists every
// private and shared SecPB entry; afterwards the coherent view matches
// shared PM exactly and no line remains Modified.
func TestSystemCrashDrain(t *testing.T) {
	prof := mustProfile(t, "gromacs")
	cfg := config.Default().WithCores(2)
	sys, err := NewSystem(cfg, prof, []byte("secpb-experiment-key"), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	drained, err := sys.CrashDrainAll()
	if err != nil {
		t.Fatalf("CrashDrainAll: %v", err)
	}
	t.Logf("crash drain persisted %d entries", drained)
	for i := 0; i < sys.Cores(); i++ {
		if occ := sys.Core(i).Occupancy(); occ != 0 {
			t.Fatalf("core %d still holds %d private entries after crash drain", i, occ)
		}
	}
	if err := sys.Shared().VerifyRecovery(); err != nil {
		t.Fatalf("shared region recovery mismatch: %v", err)
	}
	if mod := sys.Shared().Directory().Modified(); len(mod) != 0 {
		t.Fatalf("%d lines still Modified after crash drain", len(mod))
	}
}

// TestSystemSingleCore: a 1-core System must not engage the coherence
// layer at all — it is the classic engine with an epoch loop around it.
func TestSystemSingleCore(t *testing.T) {
	prof := mustProfile(t, "gcc")
	cfg := config.Default() // Cores zero value → EffectiveCores()==1
	res, err := RunSystem(cfg, prof, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 1 {
		t.Fatalf("Cores = %d, want 1", res.Cores)
	}
	if res.MESI.Reads+res.MESI.Writes != 0 {
		t.Fatalf("single-core run generated coherence traffic: %+v", res.MESI)
	}
	// The single-core System must reproduce the classic engine result
	// exactly: same instruction count, cycles, and memory traffic.
	classic, err := RunBenchmark(cfg, prof, 3000)
	if err != nil {
		t.Fatal(err)
	}
	pc := res.PerCore[0]
	if pc.Cycles != classic.Cycles || pc.Instructions != classic.Instructions ||
		pc.Stores != classic.Stores || pc.Loads != classic.Loads ||
		pc.PMWrites != classic.PMWrites || pc.PMReads != classic.PMReads {
		t.Fatalf("1-core System diverges from classic engine:\nsystem:  %+v\nclassic: %+v", pc, classic)
	}
}

// TestSystemRejectsSP: SP has no SecPB, so there is nothing to shard or
// migrate — the multi-core path must refuse it up front.
func TestSystemRejectsSP(t *testing.T) {
	prof := mustProfile(t, "gcc")
	cfg := config.Default().WithScheme(config.SchemeSP).WithCores(2)
	if _, err := NewSystem(cfg, prof, []byte("k"), 100); err == nil {
		t.Fatal("NewSystem accepted SchemeSP at cores=2")
	}
}

// TestSystemPeakOccupancy: the battery-sizing signal must be positive
// and at least as large as final occupancy on every core.
func TestSystemPeakOccupancy(t *testing.T) {
	prof := mustProfile(t, "gromacs")
	cfg := config.Default().WithCores(2)
	sys, err := NewSystem(cfg, prof, []byte("secpb-experiment-key"), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	res := sys.Collect()
	if len(res.PeakPerCore) != 2 {
		t.Fatalf("PeakPerCore has %d entries, want 2", len(res.PeakPerCore))
	}
	for i, peak := range res.PeakPerCore {
		if peak <= 0 {
			t.Fatalf("core %d peak occupancy %d, want > 0", i, peak)
		}
		if occ := sys.Core(i).Occupancy(); peak < occ {
			t.Fatalf("core %d peak %d < current occupancy %d", i, peak, occ)
		}
	}
	if res.PeakOccupancy <= 0 {
		t.Fatalf("socket peak occupancy %d, want > 0", res.PeakOccupancy)
	}
}

// TestSharedPlanDeterminism: the shared-region rewrite is a pure
// function of (seed, core, opIndex).
func TestSharedPlanDeterminism(t *testing.T) {
	cfg := config.Default().WithCores(2)
	p1, p2 := NewSharedPlan(cfg), NewSharedPlan(cfg)
	gen, err := workload.NewGenerator(mustProfile(t, "gcc"), cfg.Seed, 2000)
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for i := 0; ; i++ {
		op, ok := gen.Next()
		if !ok {
			break
		}
		r1, s1 := p1.Rewrite(1, i, op)
		r2, s2 := p2.Rewrite(1, i, op)
		if s1 != s2 || r1 != r2 {
			t.Fatalf("rewrite diverged at op %d", i)
		}
		if s1 {
			shared++
			if r1.Addr < SharedBase {
				t.Fatalf("shared rewrite produced private address %#x", r1.Addr)
			}
		}
	}
	if shared == 0 {
		t.Fatal("plan never redirected an op to the shared region")
	}
}

// BenchmarkSystemStep measures multi-core stepping throughput for the
// scaling study (scripts/perf_report.sh).
func BenchmarkSystemStep(b *testing.B) {
	prof, err := workload.ByName("gromacs")
	if err != nil {
		b.Fatal(err)
	}
	for _, cores := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "cores1", 2: "cores2", 4: "cores4"}[cores], func(b *testing.B) {
			cfg := config.Default().WithCores(cores)
			for i := 0; i < b.N; i++ {
				if _, err := RunSystem(cfg, prof, 2000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
