package engine

import (
	"fmt"

	"secpb/internal/config"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// ResultsVersion stamps persisted simulation results. Any change to
// the Result fields, their semantics, or anything that alters modeled
// numbers for the same inputs (cycle accounting, cache policy, crypto
// schedule) must bump it: persistent caches embed the stamp in every
// record and treat a mismatch as a miss, so stale results can never
// leak into artifacts after the simulator changes underneath them.
const ResultsVersion = "secpb-results-v1"

// ExperimentKey is the fixed memory-encryption key every experiment
// path uses (RunBenchmark, RunRecorded, and the streaming service), so
// results from any of them are comparable byte for byte.
var ExperimentKey = []byte("secpb-experiment-key")

// Result summarizes one simulation run.
type Result struct {
	Benchmark string
	Scheme    config.Scheme

	Cycles       uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64

	// Paper statistics.
	PPTI float64 // persists per kilo-instruction
	NWPE float64 // writes per drained SecPB entry
	IPC  float64

	// SecPB behaviour.
	EntriesAllocated uint64
	PeakOccupancy    int    // high-water SecPB occupancy (battery sizing)
	BMTRootUpdates   uint64 // functional leaf-to-root walks (drain-side)
	EarlyBMTWalks    uint64 // walks charged at allocation (eager schemes)
	PBServedLoads    uint64
	Backpressure     uint64 // cycles stalled on a full SecPB
	SBStall          uint64 // cycles stalled on a full store buffer
	LoadStall        uint64

	// Battery-exposure window (Figure 3's draining + sec-sync gaps):
	// cycles from an entry's point of persistency to the completion of
	// its memory-tuple drain.
	GapMean float64
	GapP99  uint64

	// Memory system.
	PMReads, PMWrites uint64
	L1Hit, LLCHit     float64
	Reencryptions     uint64

	IntegrityErr error
}

// Collect gathers the result after Run.
func (e *Engine) Collect() Result {
	r := Result{
		Benchmark:    e.prof.Name,
		Scheme:       e.cfg.Scheme,
		Cycles:       e.now,
		Instructions: e.instrs,
		Loads:        e.loads,
		Stores:       e.stores,
		LoadStall:    e.loadStall,
		Backpressure: e.backpressure,
		SBStall:      e.sb.StallCycles(),
		IntegrityErr: e.integrityErr,
	}
	if e.instrs > 0 {
		r.PPTI = float64(e.stores) / float64(e.instrs) * 1000
		if e.now > 0 {
			r.IPC = float64(e.instrs) / float64(e.now)
		}
	}
	if e.spb != nil {
		_, allocs := e.spb.Stats()
		r.EntriesAllocated = allocs
		r.PeakOccupancy = e.peakOcc
		r.NWPE = e.spb.NWPE()
		earlyBMT, _, _, _ := e.spb.EarlyWorkStats()
		r.EarlyBMTWalks = earlyBMT
		r.PBServedLoads = e.pbServedLoads
	}
	if t := e.mc.Tree(); t != nil {
		r.BMTRootUpdates = t.Updates()
	}
	r.GapMean = e.gapHist.Mean()
	r.GapP99 = e.gapHist.Percentile(0.99)
	r.PMReads, r.PMWrites = e.mc.PM().Stats()
	r.L1Hit = e.hier.L1().HitRate()
	r.LLCHit = e.hier.L3().HitRate()
	r.Reencryptions = e.mc.Reencrypts()
	return r
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: %d instrs in %d cycles (IPC %.2f, PPTI %.1f, NWPE %.1f)",
		r.Benchmark, r.Scheme, r.Instructions, r.Cycles, r.IPC, r.PPTI, r.NWPE)
}

// RunBenchmark simulates nops operations of the named profile under cfg
// and returns the result. The workload stream is deterministic in
// (profile, cfg.Seed).
func RunBenchmark(cfg config.Config, prof workload.Profile, nops uint64) (Result, error) {
	eng, err := New(cfg, prof, ExperimentKey)
	if err != nil {
		return Result{}, err
	}
	gen, err := workload.NewGenerator(prof, cfg.Seed, nops)
	if err != nil {
		return Result{}, err
	}
	if err := eng.Run(gen); err != nil {
		return Result{}, err
	}
	res := eng.Collect()
	if res.IntegrityErr != nil {
		return res, fmt.Errorf("engine: integrity violation during healthy run: %w", res.IntegrityErr)
	}
	return res, nil
}

// RunRecorded replays a recorded trace through the same engine
// RunBenchmark drives live: identical configuration, key, and batched
// replay path, so a trace recorded from workload.NewGenerator(prof,
// cfg.Seed, n) produces a byte-identical Result to RunBenchmark(cfg,
// prof, n). Sources that surface decode errors after end-of-stream
// (trace.FileBatchSource's Err) fail the run rather than silently
// truncating it.
func RunRecorded(cfg config.Config, prof workload.Profile, src trace.Source) (Result, error) {
	eng, err := New(cfg, prof, ExperimentKey)
	if err != nil {
		return Result{}, err
	}
	if err := eng.Run(src); err != nil {
		return Result{}, err
	}
	if c, ok := src.(interface{ Err() error }); ok {
		if err := c.Err(); err != nil {
			return Result{}, fmt.Errorf("engine: replaying recorded trace: %w", err)
		}
	}
	res := eng.Collect()
	if res.IntegrityErr != nil {
		return res, fmt.Errorf("engine: integrity violation during healthy run: %w", res.IntegrityErr)
	}
	return res, nil
}
