package engine

// Timing collects the engine's micro-architectural timing constants that
// are not already in config.Config. Latencies (how long one operation
// takes end-to-end) matter on the store-acceptance critical path;
// initiation intervals (how often a pipelined unit accepts a new
// operation) matter on the background drain path. The asymmetry is the
// paper's central mechanism: eager schemes pay full latencies per
// allocation in program order, lazy schemes stream the same work through
// the memory controller's pipelined engines (the PLP machinery of Freij
// et al. MICRO'20).
type Timing struct {
	// MLP divides load-miss stall cycles: an OOO core overlaps
	// independent misses, so only 1/MLP of each miss latency stalls
	// retirement on average.
	MLP uint64

	// Drain-side initiation intervals (MC pipeline, cycles per event).
	DrainBase    uint64 // fixed per-entry drain overhead
	DrainHashII  uint64 // per SHA-512 (BMT node or MAC)
	DrainAESII   uint64 // per OTP generation
	DrainPMWrite uint64 // per 64B PM write (device write bandwidth)
	DrainPMRead  uint64 // per 64B PM read issued by the drain path

	// SP baseline (strict persistency with SPoP at the MC, PLP-style
	// pipelined tuple updates): per-store initiation interval.
	SPBaseII  uint64 // fixed per-store cost at the MC
	SPLevelII uint64 // additional cost per BMT level walked
}

// DefaultTiming returns the calibrated constants.
func DefaultTiming() Timing {
	return Timing{
		MLP:          8,
		DrainBase:    8,
		DrainHashII:  1,
		DrainAESII:   1,
		DrainPMWrite: 4,
		DrainPMRead:  8,
		SPBaseII:     10,
		SPLevelII:    30,
	}
}
