package engine

import (
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runOps(t *testing.T, cfg config.Config, prof workload.Profile, ops []trace.Op) *Engine {
	t.Helper()
	e, err := New(cfg, prof, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(trace.NewSliceSource(ops)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFunctionalStoreLoadRoundTrip(t *testing.T) {
	for _, scheme := range config.AllSchemes() {
		cfg := config.Default().WithScheme(scheme)
		prof := mustProfile(t, "gcc")
		ops := []trace.Op{
			{Kind: trace.Store, Addr: 0x10000000, Size: 8, Data: 0xDEADBEEF, Gap: 1},
			{Kind: trace.Store, Addr: 0x10000008, Size: 4, Data: 0x1234, Gap: 1},
			{Kind: trace.Load, Addr: 0x10000000, Size: 8, Gap: 1},
		}
		e := runOps(t, cfg, prof, ops)
		block := addr.BlockOf(0x10000000)
		mem := e.Memory()[block]
		if mem[0] != 0xEF || mem[3] != 0xDE || mem[8] != 0x34 {
			t.Errorf("%v: program view wrong: % x", scheme, mem[:12])
		}
		res := e.Collect()
		if res.Stores != 2 || res.Loads != 1 {
			t.Errorf("%v: op counts %d/%d", scheme, res.Stores, res.Loads)
		}
	}
}

func TestSchemeOrderingOnEagerWorkload(t *testing.T) {
	// The fundamental result (Table IV): cycle counts must be ordered
	// BBB <= COBCM <= OBCM <= BCM <= CM <= M <= NoGap on a store-heavy
	// workload.
	prof := mustProfile(t, "gamess")
	order := []config.Scheme{
		config.SchemeBBB, config.SchemeCOBCM, config.SchemeOBCM,
		config.SchemeBCM, config.SchemeCM, config.SchemeM, config.SchemeNoGap,
	}
	var prev uint64
	for i, scheme := range order {
		res, err := RunBenchmark(config.Default().WithScheme(scheme), prof, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Cycles < prev {
			t.Errorf("%v is faster than its eager predecessor: %d < %d", scheme, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

func TestDeterminism(t *testing.T) {
	cfg := config.Default().WithScheme(config.SchemeCM)
	prof := mustProfile(t, "povray")
	a, err := RunBenchmark(cfg, prof, 10000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchmark(cfg, prof, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.PMWrites != b.PMWrites {
		t.Errorf("non-deterministic: %d/%d vs %d/%d", a.Cycles, a.PMWrites, b.Cycles, b.PMWrites)
	}
}

func TestPersistedStateVerifiesAfterRun(t *testing.T) {
	// After a healthy run plus a full crash drain, every persisted
	// block must decrypt to the program view and pass verification.
	for _, scheme := range config.SecPBSchemes() {
		cfg := config.Default().WithScheme(scheme)
		prof := mustProfile(t, "povray")
		e, err := New(cfg, prof, []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		gen, _ := workload.NewGenerator(prof, 42, 5000)
		if err := e.Run(gen); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if _, _, err := e.SecPB().CrashDrain(); err != nil {
			t.Fatalf("%v: crash drain: %v", scheme, err)
		}
		mc := e.Controller()
		checked := 0
		for block, want := range e.Memory() {
			got, _, err := mc.FetchBlock(block)
			if err != nil {
				t.Fatalf("%v: block %#x failed verification: %v", scheme, block.Addr(), err)
			}
			if got != want {
				t.Fatalf("%v: block %#x plaintext mismatch", scheme, block.Addr())
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("%v: no blocks persisted", scheme)
		}
	}
}

func TestSPBaselinePersistsPerStore(t *testing.T) {
	cfg := config.Default().WithScheme(config.SchemeSP)
	prof := mustProfile(t, "gcc")
	res, err := RunBenchmark(cfg, prof, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// Write-through: one BMT root update per store (sec_wt in Fig 8).
	if res.BMTRootUpdates < res.Stores {
		t.Errorf("SP root updates %d < stores %d", res.BMTRootUpdates, res.Stores)
	}
	if res.EntriesAllocated != 0 {
		t.Error("SP baseline should have no SecPB")
	}
}

func TestCoalescingReducesRootUpdates(t *testing.T) {
	// Fig 8's premise: SecPB schemes update the root once per entry,
	// far less than once per store when locality exists.
	prof := mustProfile(t, "povray") // NWPE ~17
	res, err := RunBenchmark(config.Default().WithScheme(config.SchemeCM), prof, 30000)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.BMTRootUpdates) / float64(res.Stores)
	if frac > 0.5 {
		t.Errorf("root updates fraction %.2f, want well below 1 (coalescing)", frac)
	}
	if res.NWPE < 4 {
		t.Errorf("povray NWPE = %.1f, expected strong coalescing", res.NWPE)
	}
}

func TestLoadsServedFromSecPB(t *testing.T) {
	cfg := config.Default()
	prof := mustProfile(t, "povray")
	res, err := RunBenchmark(cfg, prof, 20000)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Direct check: store then load with L1 pressure in between.
	ops := []trace.Op{{Kind: trace.Store, Addr: 0x10000000, Size: 8, Data: 7, Gap: 0}}
	// Evict the stored block from L1 (same set, 8 ways + extra), then
	// load it back: the SecPB (32 entries) still holds it.
	for i := uint64(1); i <= 9; i++ {
		ops = append(ops, trace.Op{Kind: trace.Load, Addr: 0x10000000 + i*8192, Size: 8, Gap: 0})
	}
	ops = append(ops, trace.Op{Kind: trace.Load, Addr: 0x10000000, Size: 8, Gap: 0})
	e := runOps(t, cfg, prof, ops)
	if e.Collect().PBServedLoads == 0 {
		t.Error("no loads served from SecPB despite L1 eviction")
	}
}

func TestFenceDrainsStoreBuffer(t *testing.T) {
	cfg := config.Default().WithScheme(config.SchemeNoGap) // slow acceptance
	prof := mustProfile(t, "gcc")
	ops := []trace.Op{
		{Kind: trace.Store, Addr: 0x10000000, Size: 8, Data: 1, Gap: 0},
		{Kind: trace.Fence},
	}
	e := runOps(t, cfg, prof, ops)
	// After the fence, now must cover the store's acceptance (>= MAC+BMT
	// latency ~360 cycles).
	if e.Now() < 300 {
		t.Errorf("fence did not wait for acceptance: now = %d", e.Now())
	}
}

func TestBackpressureOnTinySecPB(t *testing.T) {
	cfg := config.Default().WithScheme(config.SchemeCOBCM).WithSecPBEntries(4)
	prof := mustProfile(t, "gamess")
	res, err := RunBenchmark(cfg, prof, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backpressure == 0 {
		t.Error("4-entry SecPB under gamess produced no backpressure")
	}
}

func TestStatisticsSanity(t *testing.T) {
	res, err := RunBenchmark(config.Default(), mustProfile(t, "gamess"), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if res.PPTI < 40 || res.PPTI > 55 {
		t.Errorf("gamess PPTI = %.1f, want ~47.4", res.PPTI)
	}
	if res.IPC <= 0 || res.IPC > 4 {
		t.Errorf("IPC = %.2f out of sane range", res.IPC)
	}
	if res.L1Hit <= 0 || res.L1Hit > 1 {
		t.Errorf("L1 hit rate = %v", res.L1Hit)
	}
	if res.BMTRootUpdates == 0 {
		t.Error("no BMT root updates recorded")
	}
}

func TestRejectsInvalidConfig(t *testing.T) {
	cfg := config.Default()
	cfg.SecPBEntries = 0
	if _, err := New(cfg, mustProfile(t, "gcc"), []byte("k")); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRejectsInvalidOp(t *testing.T) {
	e, err := New(config.Default(), mustProfile(t, "gcc"), []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(trace.Op{Kind: trace.Store, Size: 0}); err == nil {
		t.Error("invalid op accepted")
	}
}

func BenchmarkEngineCOBCM(b *testing.B) {
	cfg := config.Default()
	prof, _ := workload.ByName("gcc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunBenchmark(cfg, prof, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGapWindowMeasured(t *testing.T) {
	// The battery-exposure window (Fig 3's draining + sec-sync gaps)
	// must be measured for any scheme that drains entries, and must be
	// bounded: an entry cannot complete its drain before it was
	// allocated, and windows should be finite under steady state.
	res, err := RunBenchmark(config.Default().WithScheme(config.SchemeCOBCM), mustProfile(t, "povray"), 30000)
	if err != nil {
		t.Fatal(err)
	}
	if res.GapMean <= 0 {
		t.Fatal("no gap samples recorded despite drains")
	}
	if res.GapP99 < uint64(res.GapMean) {
		t.Errorf("P99 %d below mean %.0f", res.GapP99, res.GapMean)
	}
}

func TestGapWindowGrowsWithBufferSize(t *testing.T) {
	// A larger SecPB holds entries longer before the watermark drains
	// them: the battery-exposure window must grow with capacity (the
	// energy-cost side of the size trade-off, Table VI).
	prof := mustProfile(t, "gcc")
	small, err := RunBenchmark(config.Default().WithSecPBEntries(8), prof, 30000)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunBenchmark(config.Default().WithSecPBEntries(128), prof, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if large.GapMean <= small.GapMean {
		t.Errorf("gap mean did not grow with capacity: 8-entry %.0f vs 128-entry %.0f",
			small.GapMean, large.GapMean)
	}
}
