package engine

import (
	"context"
	"fmt"
	"runtime"

	"secpb/internal/addr"
	"secpb/internal/coherence"
	"secpb/internal/config"
	"secpb/internal/crashpoint"
	"secpb/internal/nvm"
	"secpb/internal/runner"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// Multi-core defaults (overridable through config.MC* knobs).
const (
	// SharedBase is the byte address where the shared coherent region
	// starts — far above any per-core private range, so classification
	// is a single compare.
	SharedBase = uint64(1) << 40
	// defaultEpochOps is the per-core op count between drain-epoch
	// barriers.
	defaultEpochOps = 256
	// defaultSharedPerKilo redirects this many ops per kilo-op of each
	// core's stream to the shared region.
	defaultSharedPerKilo = 30
	// defaultSharedBlocks is the shared hot-region size in blocks, small
	// enough that cross-core conflicts (migrations, read flushes,
	// invalidations) actually occur.
	defaultSharedBlocks = 64
	// SharedReadCyc is the parallel-phase charge for reading a
	// non-Modified shared line: directory peek plus one interconnect hop.
	SharedReadCyc = coherence.DirAccessCyc + coherence.LinkCyc
)

// SharedPlan is the deterministic shared-region rewrite: a pure function
// of (seed, core, op index) deciding which ops of a core's private
// stream are redirected to the shared coherent region and to which
// block. crashsim's golden model replays the identical classification.
type SharedPlan struct {
	seed     uint64
	perKilo  uint64
	blocks   uint64
	epochOps int
}

// NewSharedPlan derives the plan from cfg (seed and MC* knobs, with
// defaults applied).
func NewSharedPlan(cfg config.Config) SharedPlan {
	p := SharedPlan{
		seed:     cfg.Seed,
		perKilo:  uint64(cfg.MCSharedPerKilo),
		blocks:   uint64(cfg.MCSharedBlocks),
		epochOps: cfg.MCEpochOps,
	}
	if cfg.MCSharedPerKilo == 0 {
		p.perKilo = defaultSharedPerKilo
	}
	if p.blocks == 0 {
		p.blocks = defaultSharedBlocks
	}
	if p.epochOps <= 0 {
		p.epochOps = defaultEpochOps
	}
	return p
}

// EpochOps returns the per-core ops per drain epoch.
func (p SharedPlan) EpochOps() int { return p.epochOps }

// Epoch returns the drain epoch containing a core's op index.
func (p SharedPlan) Epoch(opIndex int) int { return opIndex / p.epochOps }

// mix finalizes a 64-bit hash (splitmix64 finalizer).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Rewrite redirects op — the opIndex'th op of the given core's stream —
// to the shared region when the plan selects it, returning the rewritten
// op and whether it is shared. Fences are never redirected.
func (p SharedPlan) Rewrite(core, opIndex int, op trace.Op) (trace.Op, bool) {
	if op.Kind != trace.Load && op.Kind != trace.Store {
		return op, false
	}
	h := mix(p.seed ^ uint64(core)<<32 ^ uint64(opIndex) ^ 0x5ec9bc0de)
	if h%1000 >= p.perKilo {
		return op, false
	}
	blk := (h / 1000) % p.blocks
	// Preserve the word offset within the block (stores are word-sized).
	off := op.Addr & (addr.BlockBytes - 1) &^ 7
	op.Addr = SharedBase + blk*addr.BlockBytes + off
	return op, true
}

// CoreSeed derives core c's workload seed: streams decorrelate across
// cores but each is fully determined by (cfg.Seed, c).
func CoreSeed(seed uint64, c int) uint64 {
	if c == 0 {
		return seed
	}
	s := mix(seed ^ uint64(c)*0x9E3779B97F4A7C15)
	if s == 0 {
		s = 1
	}
	return s
}

// coreSim is one simulated core inside a System: a full private Engine
// (store buffer, SecPB, cache hierarchy, memory-channel shard with its
// own controller, PM and metadata stores) plus the core's op stream and
// per-epoch deferral state.
type coreSim struct {
	id   int
	eng  *Engine
	src  trace.Source
	done bool

	opIndex        int        // ops consumed from src so far
	deferred       []trace.Op // shared ops awaiting the barrier
	immediateReads uint64     // non-M shared reads served this epoch
}

// System simulates N cores: private data paths step in parallel on a
// bounded worker pool (each core's state is fully disjoint), while the
// shared coherent region is handled by the promoted MESI protocol of
// internal/coherence at drain-epoch barriers. Within an epoch each core
// may read non-Modified shared lines directly (the directory and
// coherent view are frozen between barriers, so those reads are
// deterministic and lock-striped); shared writes and reads of
// Modified lines defer to the barrier, where they replay serially in
// canonical order — ascending core id, program order within a core —
// making every result byte-identical at any worker count, the same
// discipline as the subtree-parallel BMT sweep (DESIGN.md §5.6).
type System struct {
	cfg   config.Config
	prof  workload.Profile
	plan  SharedPlan
	cores []*coreSim
	// shared is the coherence domain: per-core shared-region SecPBs and
	// the shared memory-channel controller behind the MESI directory.
	shared  *coherence.System
	sink    crashpoint.Sink
	workers int
	epochs  uint64
}

// NewSystem builds an n-core system (n = cfg.Cores, min 1) running nops
// operations of prof per core, streams generated from per-core seeds.
func NewSystem(cfg config.Config, prof workload.Profile, key []byte, nops uint64) (*System, error) {
	n := cfg.EffectiveCores()
	srcs := make([]trace.Source, n)
	for c := 0; c < n; c++ {
		gen, err := workload.NewGenerator(prof, CoreSeed(cfg.Seed, c), nops)
		if err != nil {
			return nil, err
		}
		srcs[c] = gen
	}
	return NewSystemSources(cfg, prof, key, srcs)
}

// NewSystemSources builds a System over caller-provided per-core op
// sources (crashsim uses pre-materialized slices so its golden model
// sees the identical stream).
func NewSystemSources(cfg config.Config, prof workload.Profile, key []byte, srcs []trace.Source) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scheme == config.SchemeSP {
		return nil, fmt.Errorf("engine: multi-core System requires per-core persist buffers; SP baseline is single-core only")
	}
	n := len(srcs)
	if n == 0 || n != cfg.EffectiveCores() {
		return nil, fmt.Errorf("engine: %d sources for %d cores", n, cfg.EffectiveCores())
	}
	shared, err := coherence.New(cfg, n, key)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		prof:   prof,
		plan:   NewSharedPlan(cfg),
		shared: shared,
	}
	if n == 1 {
		// A 1-core System is the classic engine with an epoch loop
		// around it: no shared region, no coherence traffic, results
		// byte-identical to RunBenchmark.
		s.plan.perKilo = 0
	}
	for c := 0; c < n; c++ {
		coreCfg := cfg
		if cfg.FaultEnabled() {
			// Independent, reproducible per-core fault streams on each
			// memory-channel shard.
			base := cfg.FaultSeed
			if base == 0 {
				base = cfg.Seed
			}
			coreCfg.FaultSeed = mix(base ^ uint64(c)*0xA24BAED4963EE407)
			if coreCfg.FaultSeed == 0 {
				coreCfg.FaultSeed = 1
			}
		}
		eng, err := New(coreCfg, prof, key)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, &coreSim{id: c, eng: eng, src: srcs[c]})
	}
	return s, nil
}

// Cores returns the core count.
func (s *System) Cores() int { return len(s.cores) }

// Core returns core i's private engine.
func (s *System) Core(i int) *Engine { return s.cores[i].eng }

// Shared returns the shared-region coherence domain.
func (s *System) Shared() *coherence.System { return s.shared }

// Plan returns the shared-region rewrite plan.
func (s *System) Plan() SharedPlan { return s.plan }

// SetWorkers pins the step-parallelism (0 = one worker per CPU, 1 =
// serial). Results are identical at any setting.
func (s *System) SetWorkers(n int) { s.workers = n }

// SetCrashSink installs a crash-injection sink across every core's
// pipeline and the shared coherence domain. A non-nil sink also forces
// serial core stepping so the global crash-point stream is
// deterministic (core 0's epoch, core 1's, ..., then the barrier replay
// in the same canonical order).
func (s *System) SetCrashSink(sink crashpoint.Sink) {
	s.sink = sink
	for _, c := range s.cores {
		c.eng.SetCrashSink(sink)
	}
	s.shared.SetCrashSink(sink)
}

// stepWorkers resolves the worker count for the parallel phase.
func (s *System) stepWorkers() int {
	if s.sink != nil {
		return 1
	}
	w := s.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(s.cores) {
		w = len(s.cores)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// stepEpoch advances one core by up to EpochOps operations against its
// private data path. Shared-region ops either read the frozen coherent
// view (non-Modified lines) or defer to the barrier. Runs concurrently
// with other cores' epochs: it touches only core-local state plus
// read-locked stripes of the frozen shared view/directory.
func (s *System) stepEpoch(c *coreSim) error {
	c.deferred = c.deferred[:0]
	for n := 0; n < s.plan.epochOps; n++ {
		op, ok := c.src.Next()
		if !ok {
			c.done = true
			return nil
		}
		idx := c.opIndex
		c.opIndex++
		op, shared := s.plan.Rewrite(c.id, idx, op)
		if !shared {
			if err := c.eng.Step(op); err != nil {
				return err
			}
			continue
		}
		block := addr.BlockOf(op.Addr)
		if st, _ := s.shared.Directory().Peek(block); op.Kind == trace.Store || st == coherence.Modified {
			c.deferred = append(c.deferred, op)
			c.eng.ExternalOp(op.Gap, 0) // latency charged at the barrier
		} else {
			// Non-Modified line: no SecPB holds it, so the coherent
			// view is current and frozen until the barrier.
			s.shared.PeekView(block)
			c.eng.ExternalOp(op.Gap, SharedReadCyc)
			c.immediateReads++
		}
	}
	return nil
}

// barrier replays every core's deferred shared ops in canonical order —
// ascending core id, program order within a core — through the MESI
// protocol, charges each core the accumulated protocol latency, and
// closes the drain epoch on every memory channel (deferred tuples
// flush, staged BMT walks commit in one coalesced sweep per shard).
func (s *System) barrier() error {
	for _, c := range s.cores {
		var stall uint64
		for i := range c.deferred {
			op := &c.deferred[i]
			if op.Kind == trace.Store {
				if s.sink != nil {
					// The shared store's point of persistency is its
					// barrier-time SecPB acceptance, mirroring the
					// engine's store-accept hook placement.
					s.sink.CrashPoint(crashpoint.StoreAccept, addr.BlockOf(op.Addr))
				}
				cc, err := s.shared.StoreEx(c.id, op.Addr, int(op.Size), op.Data)
				if err != nil {
					return fmt.Errorf("engine: core %d shared store: %w", c.id, err)
				}
				stall += cc.Cycles
			} else {
				_, cc, err := s.shared.LoadEx(c.id, op.Addr)
				if err != nil {
					return fmt.Errorf("engine: core %d shared load: %w", c.id, err)
				}
				stall += cc.Cycles
			}
		}
		if stall > 0 {
			c.eng.AddStall(stall)
		}
		if c.immediateReads > 0 {
			s.shared.Directory().NoteImmediateRead(c.immediateReads)
			c.immediateReads = 0
		}
		c.eng.EpochBarrier()
	}
	s.shared.Controller().FlushStaged()
	s.shared.Controller().CompleteSweep()
	s.epochs++
	return nil
}

// Run drains every core's source to completion: epochs of parallel
// per-core stepping separated by serialized barriers. The result stream
// is identical at any worker count.
func (s *System) Run() error {
	for {
		active := make([]*coreSim, 0, len(s.cores))
		for _, c := range s.cores {
			if !c.done {
				active = append(active, c)
			}
		}
		if len(active) == 0 {
			break
		}
		if w := s.stepWorkers(); w > 1 {
			if _, err := runner.Map(context.Background(), w, active, func(_ context.Context, _ int, c *coreSim) (struct{}, error) {
				return struct{}{}, s.stepEpoch(c)
			}); err != nil {
				return err
			}
		} else {
			for _, c := range active {
				if err := s.stepEpoch(c); err != nil {
					return err
				}
			}
		}
		if err := s.barrier(); err != nil {
			return err
		}
	}
	for _, c := range s.cores {
		if err := c.eng.Finish(); err != nil {
			return err
		}
	}
	return nil
}

// Epochs returns how many drain-epoch barriers the run crossed.
func (s *System) Epochs() uint64 { return s.epochs }

// CrashDrainAll drains every battery-backed buffer in the documented
// cross-core order — ascending core id over the private SecPBs (FIFO
// within each), then ascending core id over the shared-region SecPBs —
// and settles every controller. This is the live-system form of the
// recovery replay order recovery.DrainSystemEntries seals.
func (s *System) CrashDrainAll() (int, error) {
	total := 0
	for id, c := range s.cores {
		n, err := c.eng.CrashDrain()
		if err != nil {
			return total, fmt.Errorf("engine: core %d crash drain: %w", id, err)
		}
		total += n
	}
	n, err := s.shared.CrashDrainAll()
	if err != nil {
		return total, err
	}
	return total + n, nil
}

// MCResult aggregates a multi-core run: per-core results, whole-socket
// throughput, coherence-protocol activity, and the battery-sizing
// occupancy measurements.
type MCResult struct {
	Benchmark string        `json:"benchmark"`
	Scheme    config.Scheme `json:"scheme"`
	Cores     int           `json:"cores"`
	Cycles    uint64        `json:"cycles"` // makespan: max core clock
	Instrs    uint64        `json:"instructions"`
	Loads     uint64        `json:"loads"`
	Stores    uint64        `json:"stores"`
	AggIPC    float64       `json:"agg_ipc"` // total instrs / makespan
	Epochs    uint64        `json:"epochs"`

	// Shared-region / MESI activity.
	MESI        coherence.MESIStats `json:"mesi"`
	Migrations  uint64              `json:"migrations"`
	ReadFlushes uint64              `json:"read_flushes"`

	// Battery sizing: measured high-water SecPB occupancy, summed over
	// cores (private engine buffer + the core's shared-region buffer).
	// Per-core peaks need not coincide in time, so the sum is the
	// conservative measured bound a battery must fund, still ≤ the
	// all-slots-full worst case of cores × capacity.
	PeakOccupancy int   `json:"peak_occupancy"`
	PeakPerCore   []int `json:"peak_per_core"`

	Media nvm.MediaStats `json:"media"`

	PerCore []Result `json:"per_core"`
}

// Collect gathers the multi-core result after Run.
func (s *System) Collect() MCResult {
	r := MCResult{
		Benchmark: s.prof.Name,
		Scheme:    s.cfg.Scheme,
		Cores:     len(s.cores),
		Epochs:    s.epochs,
		MESI:      s.shared.Directory().Stats(),
	}
	r.Migrations, r.ReadFlushes = s.shared.Stats()
	for i, c := range s.cores {
		cr := c.eng.Collect()
		r.PerCore = append(r.PerCore, cr)
		r.Instrs += cr.Instructions
		r.Loads += cr.Loads
		r.Stores += cr.Stores
		if cr.Cycles > r.Cycles {
			r.Cycles = cr.Cycles
		}
		peak := cr.PeakOccupancy + s.shared.SecPB(i).PeakLen()
		r.PeakPerCore = append(r.PeakPerCore, peak)
		r.PeakOccupancy += peak
		r.Media.Add(c.eng.MediaStats())
	}
	r.Media.Add(s.shared.Controller().MediaStats())
	if r.Cycles > 0 {
		r.AggIPC = float64(r.Instrs) / float64(r.Cycles)
	}
	return r
}

// IntegrityErr returns the first core's integrity violation, if any.
func (r *MCResult) IntegrityErr() error {
	for i := range r.PerCore {
		if err := r.PerCore[i].IntegrityErr; err != nil {
			return fmt.Errorf("core %d: %w", i, err)
		}
	}
	return nil
}

// String renders a one-line summary.
func (r MCResult) String() string {
	return fmt.Sprintf("%s/%s x%d: %d instrs in %d cycles (agg IPC %.2f, %d migrations, %d read flushes, peak occ %d)",
		r.Benchmark, r.Scheme, r.Cores, r.Instrs, r.Cycles, r.AggIPC, r.MESI.Migrations, r.MESI.ReadFlushes, r.PeakOccupancy)
}

// RunSystem simulates nops operations per core of the named profile
// under cfg and returns the aggregate result — the multi-core analogue
// of RunBenchmark. Deterministic in (cfg, profile) at any worker count.
func RunSystem(cfg config.Config, prof workload.Profile, nops uint64) (MCResult, error) {
	sys, err := NewSystem(cfg, prof, ExperimentKey, nops)
	if err != nil {
		return MCResult{}, err
	}
	if err := sys.Run(); err != nil {
		return MCResult{}, err
	}
	res := sys.Collect()
	if err := res.IntegrityErr(); err != nil {
		return res, fmt.Errorf("engine: integrity violation during healthy run: %w", err)
	}
	return res, nil
}
