package engine

import (
	"runtime"

	"secpb/internal/addr"
	"secpb/internal/crypto"
	"secpb/internal/meta"
	"secpb/internal/nvm"
	"secpb/internal/trace"
)

// otpPrefetchCap bounds the unique store blocks predicted per batch: a
// 4096-op batch over a hot working set rarely touches more, and the cap
// bounds both the worker's latency and the pad buffer (512 × 64 B).
const otpPrefetchCap = 512

// otpPrefetcher overlaps one-time-pad derivation for the next batch's
// predicted drains with the current batch's replay. The main loop owns
// the prediction snapshot (counter reads must not race the replay's
// increments, so they happen serially at launch); the worker owns a
// cloned crypto engine and the pad buffer until the join. Pads are pure
// functions of the (address, counter) pair, and the controller drops
// mispredicted installs at consumption, so the pipeline can only move
// work off the critical path — it can never change a result.
type otpPrefetcher struct {
	eng     *crypto.Engine // worker-private clone
	ctrs    *meta.CounterStore
	blocks  []addr.Block
	preds   []uint64
	pads    [][addr.BlockBytes]byte
	seen    map[addr.Block]struct{}
	done    chan struct{}
	running bool
}

// newOTPPrefetcher returns a pipeline for this engine, or nil when the
// pipeline cannot help or must not run: single-proc hosts (the replay
// loop and the worker would just timeslice), insecure schemes (no
// pads), and crash-injected runs (kept on the exact serial path the
// injector's determinism contract is stated over).
func (e *Engine) newOTPPrefetcher() *otpPrefetcher {
	if runtime.GOMAXPROCS(0) < 2 || !e.mc.Secure() || e.sink != nil {
		return nil
	}
	return &otpPrefetcher{
		eng:    e.mc.Engine().Clone(),
		ctrs:   e.mc.Counters(),
		blocks: make([]addr.Block, 0, otpPrefetchCap),
		preds:  make([]uint64, 0, otpPrefetchCap),
		pads:   make([][addr.BlockBytes]byte, otpPrefetchCap),
		seen:   make(map[addr.Block]struct{}, otpPrefetchCap),
		done:   make(chan struct{}),
	}
}

// launch snapshots the next batch's predicted (block, counter) drains
// and starts the pad worker. The counter snapshot runs on the caller's
// goroutine — predictions for blocks the current batch also drains go
// stale and simply miss.
func (p *otpPrefetcher) launch(b *trace.Batch) {
	p.drain()
	p.blocks = p.blocks[:0]
	p.preds = p.preds[:0]
	clear(p.seen)
	for i, k := range b.Kinds {
		if k != trace.Store {
			continue
		}
		blk := addr.BlockOf(b.Addrs[i])
		if _, dup := p.seen[blk]; dup {
			continue
		}
		if len(p.blocks) >= otpPrefetchCap {
			break
		}
		p.seen[blk] = struct{}{}
		p.blocks = append(p.blocks, blk)
		p.preds = append(p.preds, p.ctrs.Value(blk)+1)
	}
	if len(p.blocks) == 0 {
		return
	}
	p.running = true
	go func() {
		for i, blk := range p.blocks {
			p.eng.OTPInto(&p.pads[i], blk.Addr(), p.preds[i])
		}
		p.done <- struct{}{}
	}()
}

// install joins the worker and deposits its pads in the controller's
// prefetch table. It must run before the predicted batch replays.
func (p *otpPrefetcher) install(mc *nvm.Controller) {
	if !p.running {
		return
	}
	<-p.done
	p.running = false
	for i, blk := range p.blocks {
		mc.InstallPrefetchedOTP(blk, p.preds[i], &p.pads[i])
	}
}

// drain joins a running worker without installing anything (error
// paths). Safe on a nil prefetcher.
func (p *otpPrefetcher) drain() {
	if p == nil || !p.running {
		return
	}
	<-p.done
	p.running = false
}
