package crashsim

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/bmt"
	"secpb/internal/config"
	"secpb/internal/core"
	"secpb/internal/crashpoint"
	"secpb/internal/engine"
	"secpb/internal/meta"
	"secpb/internal/nvm"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// Snapshot is everything that survives a power failure at one crash
// point: the persisted NV image (PM blocks, counter store, MAC store,
// BMT plus its NV root register) and the battery-backed domain (SecPB
// entries including an interrupted in-flight drain, which models the
// memory-controller latches the battery also sustains). Volatile state —
// metadata caches, clocks, the core's program view — is deliberately
// absent. A Snapshot is single-use: RecoverVerify mutates the captured
// image while draining.
type Snapshot struct {
	Kind       crashpoint.Kind
	PointIndex uint64 // ordinal among all points fired this run
	OpIndex    int    // trace op being executed when the point fired
	Cycle      uint64 // engine clock at capture
	Committed  int    // stores past the point of persistency
	InFlight   bool   // a drain was interrupted mid-tuple

	cfg     config.Config
	key     []byte
	pm      *nvm.PM
	ctrs    *meta.CounterStore
	macs    *meta.MACStore
	tree    *bmt.Tree
	entries []core.Entry
}

// Handler receives each captured snapshot together with the golden
// plaintext image for its committed prefix. The golden map is live
// shadow state: consume it synchronously, do not retain it. Custom
// handlers (InjectTraceWith) choose their own recovery procedure —
// e.g. RecoverVerifyResumable for nested-crash scenarios — and report
// findings through state they close over; a returned error aborts the
// run (harness failure, not a finding).
type Handler func(snap *Snapshot, golden map[addr.Block][addr.BlockBytes]byte) error

// NumEntries returns how many battery-backed entries the snapshot holds
// (the late work a recovery must fund).
func (s *Snapshot) NumEntries() int { return len(s.entries) }

// indexedSource feeds a fixed op slice to the engine while remembering
// which op is in flight, so snapshots can report their trace position.
type indexedSource struct {
	ops []trace.Op
	pos int // index of the op most recently handed out
}

func (s *indexedSource) Next() (trace.Op, bool) {
	if s.pos+1 >= len(s.ops) {
		if s.pos+1 == len(s.ops) {
			s.pos++
		}
		return trace.Op{}, false
	}
	s.pos++
	return s.ops[s.pos], true
}

// Injector drives one simulated run and crashes it at chosen points. It
// implements crashpoint.Sink: every hook firing is counted, and firings
// whose ordinal matches the sorted trigger list are captured, recovered
// and verified in place. Capturing in place (rather than halting and
// replaying) is equivalent to a real crash — recovery operates on deep
// clones of exactly the state a power failure would leave — and lets one
// pass service thousands of crash points with O(1) snapshots alive.
type Injector struct {
	eng      *engine.Engine
	cfg      config.Config
	key      []byte
	src      *indexedSource
	shadow   *shadow
	triggers []uint64 // sorted ascending, distinct
	cursor   int
	handle   Handler
	mask     []bool // per-kind enable; points of masked-out kinds are not counted

	points  uint64
	perKind []uint64 // indexed by crashpoint.Kind
	err     error
}

func newInjector(cfg config.Config, prof workload.Profile, key []byte, ops []trace.Op, triggers []uint64, h Handler) (*Injector, error) {
	eng, err := engine.New(cfg, prof, key)
	if err != nil {
		return nil, err
	}
	mask := make([]bool, crashpoint.NumKinds())
	for i := range mask {
		mask[i] = true
	}
	return &Injector{
		eng:      eng,
		cfg:      cfg,
		key:      append([]byte(nil), key...),
		src:      &indexedSource{ops: ops, pos: -1},
		shadow:   newShadow(ops),
		triggers: triggers,
		handle:   h,
		mask:     mask,
		perKind:  make([]uint64, crashpoint.NumKinds()),
	}, nil
}

// setKinds restricts the injector to the given crash-point kinds; other
// firings are invisible (not counted, never triggered). Empty = all.
func (in *Injector) setKinds(kinds []crashpoint.Kind) {
	if len(kinds) == 0 {
		return
	}
	for i := range in.mask {
		in.mask[i] = false
	}
	for _, k := range kinds {
		in.mask[k] = true
	}
}

// CrashPoint implements crashpoint.Sink.
func (in *Injector) CrashPoint(k crashpoint.Kind, _ addr.Block) {
	if !in.mask[k] {
		return
	}
	i := in.points
	in.points++
	in.perKind[k]++
	if in.err != nil || in.cursor >= len(in.triggers) || in.triggers[in.cursor] != i {
		return
	}
	in.cursor++
	snap := in.capture(k, i)
	if in.handle != nil {
		if err := in.handle(snap, in.shadow.view()); err != nil {
			in.err = err // first harness error wins; later triggers are skipped
		}
	}
}

// capture freezes the crash-surviving state at the instant the hook
// fired. The committed-store count is the SecPB's accepted-store stat:
// acceptance is the point of persistency, and the stat is bumped only
// after the entry's data is in battery-backed storage, so it is exact at
// every hook site regardless of which micro-op (backflow drain,
// watermark drain, sweep) the point interrupts.
func (in *Injector) capture(k crashpoint.Kind, i uint64) *Snapshot {
	spb := in.eng.SecPB()
	mc := in.eng.Controller()
	stores, _ := spb.Stats()
	committed := int(stores)
	in.shadow.advanceTo(committed)
	return &Snapshot{
		Kind:       k,
		PointIndex: i,
		OpIndex:    in.src.pos,
		Cycle:      in.eng.Now(),
		Committed:  committed,
		InFlight:   spb.InFlightDrain() != nil,
		cfg:        in.cfg,
		key:        in.key,
		pm:         mc.PM().Snapshot(),
		ctrs:       mc.Counters().Snapshot(),
		macs:       mc.MACs().Snapshot(),
		tree:       mc.Tree().Snapshot(),
		entries:    spb.SnapshotEntries(),
	}
}

// Run executes the trace to completion, firing the sink at every
// instrumented point. It returns the first harness error (engine
// failure, recovery machinery breakage) — differential verification
// failures are the handler's to accumulate, not errors here.
func (in *Injector) Run() error {
	in.eng.SetCrashSink(in)
	defer in.eng.SetCrashSink(nil)
	if err := in.eng.Run(in.src); err != nil {
		return fmt.Errorf("crashsim: engine run: %w", err)
	}
	if in.err != nil {
		return in.err
	}
	if in.cursor != len(in.triggers) {
		return fmt.Errorf("crashsim: run fired %d points but %d of %d triggers never matched (nondeterministic point stream?)",
			in.points, len(in.triggers)-in.cursor, len(in.triggers))
	}
	return nil
}

// Points returns the total number of crash points the run fired and the
// per-kind breakdown (indexed by crashpoint.Kind).
func (in *Injector) Points() (total uint64, perKind []uint64) {
	return in.points, in.perKind
}
