package crashsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/runner"
	"secpb/internal/service"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// Service-level crash injection: the same differential discipline the
// injector applies to the simulated machine, applied one level up to
// the process hosting it. Each kill point streams a prefix of a
// recorded trace into a live trace-streaming server, kills it without
// warning (workers abandon mid-flight, buffered bytes die, a torn tail
// is smeared onto the log), restarts it, and verifies two things
// differentially: the resumed session's durable state digest matches a
// golden committed-prefix replay, and — after re-uploading from the
// durable cursor — the finished artifact is byte-identical to an
// uninterrupted batch RunRecorded. A per-cell negative control tampers
// a sealed checkpoint and requires resume to fail with a typed
// *service.CorruptCheckpointError and fall back to a clean session.

// ServiceOptions selects the service kill matrix and its budget.
type ServiceOptions struct {
	Schemes   []config.Scheme // default: all six SecPB schemes
	Workloads []string        // default: gcc
	Ops       int             // trace length per cell (default 2000)
	SegOps    int             // segment granularity (default 128)
	Seed      uint64          // base seed; each cell derives its own
	Points    int             // kill points sampled per cell; <=0 = every upload boundary
	Workers   int             // worker pool size; <=0 = runner default
	CkptEvery int             // service checkpoint cadence in segments (default 2)
	QueueCap  int             // service ingest queue depth (default 4)
	Dir       string          // scratch root; empty = os.MkdirTemp
}

func (o ServiceOptions) withDefaults() ServiceOptions {
	if len(o.Schemes) == 0 {
		o.Schemes = config.SecPBSchemes()
	}
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"gcc"}
	}
	if o.Ops <= 0 {
		o.Ops = 2000
	}
	if o.SegOps <= 0 {
		o.SegOps = 128
	}
	if o.CkptEvery <= 0 {
		o.CkptEvery = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 4
	}
	return o
}

// ServiceCell is the kill-matrix outcome for one scheme × workload cell.
type ServiceCell struct {
	Scheme        string `json:"scheme"`
	Workload      string `json:"workload"`
	Ops           int    `json:"ops"`
	Segments      int    `json:"segments"`
	Seed          uint64 `json:"seed"`
	Kills         int    `json:"kills"`
	Resumed       int    `json:"resumed"`
	PrefixChecked int    `json:"prefix_checked"`
	Backpressure  int    `json:"backpressure_hits"`
	TamperRefused bool   `json:"tamper_refused"`
	Failures      int    `json:"failures"`
	FirstBad      string `json:"first_bad,omitempty"`
}

// ServiceMatrix is the service kill-matrix artifact.
type ServiceMatrix struct {
	Ops    int           `json:"ops"`
	SegOps int           `json:"seg_ops"`
	Seed   uint64        `json:"seed"`
	Points int           `json:"points_per_cell"`
	Cells  []ServiceCell `json:"cells"`
}

// Clean reports whether every kill point resumed byte-identical and
// every negative control was refused.
func (m *ServiceMatrix) Clean() bool {
	for i := range m.Cells {
		if m.Cells[i].Failures > 0 || !m.Cells[i].TamperRefused {
			return false
		}
	}
	return true
}

// WriteJSON emits the artifact.
func (m *ServiceMatrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Render writes a human-readable table.
func (m *ServiceMatrix) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tworkload\tsegs\tkills\tresumed\tprefix-ok\tbackpressure\ttamper\tfailures\tstatus")
	for i := range m.Cells {
		c := &m.Cells[i]
		status := "ok"
		if c.Failures > 0 {
			status = "FAIL: " + c.FirstBad
		}
		tamper := "refused"
		if !c.TamperRefused {
			tamper = "ACCEPTED"
			if status == "ok" {
				status = "FAIL: tampered checkpoint resumed"
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%s\n",
			c.Scheme, c.Workload, c.Segments, c.Kills, c.Resumed, c.PrefixChecked,
			c.Backpressure, tamper, c.Failures, status)
	}
	return tw.Flush()
}

// fnv64a is the plain FNV-64a the service uses for state digests.
func fnv64a(p []byte) uint64 {
	h := uint64(14695981039346269159)
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// serviceTrace prepares a cell's upload stream: the recorded ops, the
// sealed per-segment frames, and the golden state digest after every
// committed prefix (digest[p] = engine state after segments [0,p)).
type serviceTrace struct {
	ops     []trace.Op
	frames  [][]byte
	digests []uint64
	golden  []byte // final artifact of the uninterrupted run
}

func prepareServiceTrace(spec service.Spec, nops, segOps int) (*serviceTrace, error) {
	cfg, prof, err := spec.Build()
	if err != nil {
		return nil, err
	}
	ops, err := workload.Generate(prof, cfg.Seed, nops)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	sw := trace.NewSegWriter(&buf, segOps)
	for _, op := range ops {
		if err := sw.Write(op); err != nil {
			return nil, err
		}
	}
	if err := sw.Flush(); err != nil {
		return nil, err
	}
	st := &serviceTrace{ops: ops}
	if _, err := trace.ScanSegments(bytes.NewReader(buf.Bytes()), func(seg int, frame []byte) error {
		st.frames = append(st.frames, bytes.Clone(frame))
		return nil
	}); err != nil {
		return nil, err
	}

	// Golden committed-prefix digests: replay segment by segment with
	// the exact batching the live session applies, snapshotting the
	// canonical-result hash after each — the shadow model every resumed
	// session is differentially checked against.
	eng, err := engine.New(cfg, prof, engine.ExperimentKey)
	if err != nil {
		return nil, err
	}
	st.digests = append(st.digests, fnv64a(service.EncodeResult(eng.Collect())))
	for i, frame := range st.frames {
		b, err := decodeFrame(frame)
		if err != nil {
			return nil, fmt.Errorf("crashsim: golden frame %d: %w", i, err)
		}
		if err := eng.StepBatch(b); err != nil {
			return nil, err
		}
		st.digests = append(st.digests, fnv64a(service.EncodeResult(eng.Collect())))
	}

	res, err := engine.RunRecorded(cfg, prof, trace.NewSliceSource(ops))
	if err != nil {
		return nil, err
	}
	st.golden = service.EncodeResult(res)
	return st, nil
}

// decodeFrame decodes one sealed frame into a fresh batch.
func decodeFrame(frame []byte) (*trace.Batch, error) {
	sr := trace.NewSegReader(bytes.NewReader(append(trace.SPB2Header(), frame...)))
	b := trace.NewBatch(trace.DefaultSegOps)
	if err := sr.ReadSegment(b); err != nil {
		return nil, err
	}
	return b, nil
}

// uploadRange streams frames[from:to) into the session, absorbing
// backpressure by retrying the rejected ordinal (at-least-once
// semantics: duplicates are fine). Returns backpressure hits.
func uploadRange(s *service.Session, frames [][]byte, from, to int) (int, error) {
	bp := 0
	for i := from; i < to; i++ {
		for {
			b, err := decodeFrame(frames[i])
			if err != nil {
				return bp, err
			}
			_, err = s.Accept(uint64(i), bytes.Clone(frames[i]), b)
			if err == nil {
				break
			}
			var qf *service.QueueFullError
			if errors.As(err, &qf) {
				bp++
				time.Sleep(200 * time.Microsecond)
				continue
			}
			return bp, err
		}
	}
	return bp, nil
}

// finalizeWithRetry finalizes a session, absorbing 429-style queue
// backpressure the same way an HTTP client honouring Retry-After would.
func finalizeWithRetry(s *service.Session) ([]byte, int, error) {
	bp := 0
	for {
		got, err := s.Finalize(time.Minute)
		if err == nil {
			return got, bp, nil
		}
		var qf *service.QueueFullError
		if errors.As(err, &qf) {
			bp++
			time.Sleep(200 * time.Microsecond)
			continue
		}
		return nil, bp, err
	}
}

// RunServiceCell explores one scheme × workload cell: sampled kill
// points, each verified differentially, plus the tampered-checkpoint
// negative control.
func RunServiceCell(scheme config.Scheme, wl string, opts ServiceOptions) (ServiceCell, error) {
	opts = opts.withDefaults()
	cell := ServiceCell{Scheme: scheme.String(), Workload: wl, Ops: opts.Ops}
	seed := cellSeed(opts.Seed, scheme, wl)
	cell.Seed = seed
	spec := service.Spec{Name: "cell", Scheme: scheme.String(), Bench: wl, Seed: seed}
	st, err := prepareServiceTrace(spec, opts.Ops, opts.SegOps)
	if err != nil {
		return cell, err
	}
	nseg := len(st.frames)
	cell.Segments = nseg

	scratch, err := os.MkdirTemp(opts.Dir, "secpb-svc-"+scheme.String()+"-*")
	if err != nil {
		return cell, err
	}
	defer os.RemoveAll(scratch)

	// Kill points: after u accepted uploads, u ∈ [0, nseg] (0 = killed
	// right after create; nseg = killed with everything queued but the
	// finalize never sent). Sampled without replacement, like the
	// machine-level injector's crash points.
	kills := chooseTriggers(uint64(nseg+1), opts.Points, seed^0xDEADBEEF)
	svcOpts := func(dir string) service.Options {
		return service.Options{DataDir: dir, CkptEvery: opts.CkptEvery, QueueCap: opts.QueueCap}
	}
	fail := func(u uint64, format string, args ...interface{}) {
		cell.Failures++
		if cell.FirstBad == "" {
			cell.FirstBad = fmt.Sprintf("kill@%d: %s", u, fmt.Sprintf(format, args...))
		}
	}

	for ki, u := range kills {
		dir := filepath.Join(scratch, fmt.Sprintf("kill-%d", ki))
		sv, err := service.Open(svcOpts(dir))
		if err != nil {
			return cell, err
		}
		s, _, err := sv.CreateSession(spec)
		if err != nil {
			return cell, err
		}
		bp, err := uploadRange(s, st.frames, 0, int(u))
		cell.Backpressure += bp
		if err != nil {
			return cell, err
		}
		sv.Kill()
		cell.Kills++

		// Torn tail on odd points: a crashed append leaves junk past
		// the durable cursor. Resume must shear it off.
		if u%2 == 1 {
			logPath := filepath.Join(dir, "sessions", spec.Name, "trace.spb2")
			f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return cell, err
			}
			f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x13})
			f.Close()
		}

		sv2, err := service.Open(svcOpts(dir))
		if err != nil {
			return cell, err
		}
		if q := sv2.Quarantined(); len(q) != 0 {
			fail(u, "healthy session quarantined: %s", q[0].Err)
			sv2.Close()
			continue
		}
		s2, ok := sv2.Session(spec.Name)
		if !ok {
			fail(u, "session lost across restart")
			sv2.Close()
			continue
		}
		cell.Resumed++
		status := s2.Status()
		d := status.DurableSegs
		if d > u {
			fail(u, "durable cursor %d ahead of %d accepted uploads", d, u)
			sv2.Close()
			continue
		}
		// Differential committed-prefix check: the resumed state digest
		// must equal the golden replay of exactly d segments.
		if want := fmt.Sprintf("%016x", st.digests[d]); status.StateDigest != want {
			fail(u, "resumed digest %s, golden prefix(%d) %s", status.StateDigest, d, want)
			sv2.Close()
			continue
		}
		cell.PrefixChecked++

		// Resume streaming from the durable cursor and finish: the
		// final artifact must be byte-identical to the uninterrupted
		// batch run.
		bp, err = uploadRange(s2, st.frames, int(d), nseg)
		cell.Backpressure += bp
		if err != nil {
			return cell, err
		}
		got, bp, err := finalizeWithRetry(s2)
		cell.Backpressure += bp
		if err != nil {
			fail(u, "finalize after resume: %v", err)
			sv2.Close()
			continue
		}
		if !bytes.Equal(got, st.golden) {
			fail(u, "resumed artifact diverges from uninterrupted run")
		}
		sv2.Close()
		os.RemoveAll(dir)
	}

	ok, err := serviceTamperControl(spec, st, scratch, svcOpts)
	if err != nil {
		return cell, err
	}
	cell.TamperRefused = ok
	if !ok && cell.FirstBad == "" {
		cell.Failures++
		cell.FirstBad = "negative control: tampered checkpoint did not fail resume with a typed error"
	}
	return cell, nil
}

// serviceTamperControl proves the differential harness can actually
// see corruption: a sealed checkpoint with one flipped byte must fail
// resume with a typed *service.CorruptCheckpointError, quarantine the
// session, and leave the name free for a clean session.
func serviceTamperControl(spec service.Spec, st *serviceTrace, scratch string,
	svcOpts func(string) service.Options) (bool, error) {
	dir := filepath.Join(scratch, "tamper")
	sv, err := service.Open(svcOpts(dir))
	if err != nil {
		return false, err
	}
	s, _, err := sv.CreateSession(spec)
	if err != nil {
		return false, err
	}
	n := len(st.frames)
	if n > 4 {
		n = 4
	}
	if _, err := uploadRange(s, st.frames, 0, n); err != nil {
		return false, err
	}
	if err := sv.Close(); err != nil {
		return false, err
	}

	ckpt := filepath.Join(dir, "sessions", spec.Name, "ckpt.spbk")
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		return false, err
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(ckpt, raw, 0o644); err != nil {
		return false, err
	}

	sv2, err := service.Open(svcOpts(dir))
	if err != nil {
		return false, err
	}
	defer sv2.Close()
	if _, ok := sv2.Session(spec.Name); ok {
		return false, nil // tampered checkpoint resumed: control failed
	}
	causes := sv2.QuarantineCauses()
	if len(causes) != 1 {
		return false, nil
	}
	var cc *service.CorruptCheckpointError
	if !errors.As(causes[0], &cc) {
		return false, nil
	}
	// Clean-session fallback under the quarantined name.
	s2, created, err := sv2.CreateSession(spec)
	if err != nil || !created {
		return false, err
	}
	if st2 := s2.Status(); st2.DurableSegs != 0 {
		return false, nil
	}
	return true, nil
}

// ExploreService runs the scheme × workload service kill grid over a
// bounded worker pool.
func ExploreService(ctx context.Context, opts ServiceOptions) (*ServiceMatrix, error) {
	opts = opts.withDefaults()
	type cellKey struct {
		scheme config.Scheme
		wl     string
	}
	var cells []cellKey
	for _, s := range opts.Schemes {
		for _, w := range opts.Workloads {
			cells = append(cells, cellKey{s, w})
		}
	}
	results, err := runner.Map(ctx, opts.Workers, cells, func(_ context.Context, _ int, c cellKey) (ServiceCell, error) {
		return RunServiceCell(c.scheme, c.wl, opts)
	})
	if err != nil {
		return nil, err
	}
	return &ServiceMatrix{Ops: opts.Ops, SegOps: opts.SegOps, Seed: opts.Seed, Points: opts.Points, Cells: results}, nil
}
