package crashsim

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"secpb/internal/bmt"
	"secpb/internal/crypto"
)

// TestCrashMatrixParallelSweepIdentity re-runs the smoke crash matrix
// with the BMT sweep pinned parallel and the MAC lanes pinned wide, and
// requires the full matrix — every injected point, every recovery
// verdict — to equal the fully serial run. Crash-injected replays stay
// on the eager drain path by construction, but their sweeps and
// post-crash verification hashing do go through the parallel code, so
// this is the gate that crash experiments survive it.
func TestCrashMatrixParallelSweepIdentity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	defer bmt.SetDefaultSweepWorkers(0)
	defer crypto.SetDefaultLanes(0)

	opts := Options{Ops: 600, Seed: 42, Points: 25}

	bmt.SetDefaultSweepWorkers(1)
	crypto.SetDefaultLanes(1)
	serial, err := Explore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{4, 8} {
		bmt.SetDefaultSweepWorkers(workers)
		crypto.SetDefaultLanes(4)
		par, err := Explore(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Cells, par.Cells) {
			t.Errorf("crash matrix differs with %d sweep workers:\nserial: %+v\nparallel: %+v",
				workers, serial.Cells, par.Cells)
		}
	}
}
