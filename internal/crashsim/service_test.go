package crashsim

import (
	"context"
	"testing"

	"secpb/internal/config"
)

// A small but real slice of the service kill matrix: every sampled
// kill point must resume to the golden committed prefix and finish
// byte-identical, and the per-cell tamper control must be refused.
func TestServiceKillMatrixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("service kill matrix is a long test")
	}
	m, err := ExploreService(context.Background(), ServiceOptions{
		Schemes:   []config.Scheme{config.SchemeSP, config.SchemeCOBCM},
		Workloads: []string{"gcc"},
		Ops:       1200,
		SegOps:    128,
		Seed:      42,
		Points:    6,
		Dir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(m.Cells))
	}
	for _, c := range m.Cells {
		if c.Kills == 0 || c.Resumed != c.Kills || c.PrefixChecked != c.Kills {
			t.Errorf("%s/%s: kills=%d resumed=%d prefix=%d", c.Scheme, c.Workload, c.Kills, c.Resumed, c.PrefixChecked)
		}
		if !c.TamperRefused {
			t.Errorf("%s/%s: tamper control not refused", c.Scheme, c.Workload)
		}
		if c.Failures > 0 {
			t.Errorf("%s/%s: %d failures: %s", c.Scheme, c.Workload, c.Failures, c.FirstBad)
		}
	}
	if !m.Clean() {
		t.Fatal("matrix not clean")
	}
}

// The exhaustive tiny case: every upload boundary of a short trace is
// a kill point (Points<=0), including kill-at-create and
// kill-with-everything-queued.
func TestServiceKillEveryBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	cell, err := RunServiceCell(config.SchemeBCM, "gcc", ServiceOptions{
		Ops:    600,
		SegOps: 64,
		Seed:   7,
		Points: 0, // exhaustive
		Dir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Kills != cell.Segments+1 {
		t.Fatalf("kills=%d, want %d (every boundary)", cell.Kills, cell.Segments+1)
	}
	if cell.Failures > 0 {
		t.Fatalf("%d failures: %s", cell.Failures, cell.FirstBad)
	}
	if !cell.TamperRefused {
		t.Fatal("tamper control not refused")
	}
}
