package crashsim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/workload"
)

// TestCrashMatrixSmoke is the always-on gate: every SecPB scheme must
// recover byte-identically from a sampled set of crash points on a
// short trace. The full-budget sweep lives in TestCrashMatrixFull.
func TestCrashMatrixSmoke(t *testing.T) {
	m, err := Explore(context.Background(), Options{Ops: 600, Seed: 42, Points: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(m.Cells))
	}
	for _, c := range m.Cells {
		if c.Failures > 0 {
			t.Errorf("%s/%s: %d failures, first: %s", c.Scheme, c.Workload, c.Failures, c.FirstBad)
		}
		if c.Injected == 0 {
			t.Errorf("%s/%s: no crash points injected", c.Scheme, c.Workload)
		}
	}
}

// TestCrashMatrixFull is the acceptance-budget sweep: at least 500
// injected crash points per scheme, across two access patterns, every
// recovery byte-identical to the golden model.
func TestCrashMatrixFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash matrix skipped in -short")
	}
	m, err := Explore(context.Background(), Options{
		Ops:       6000,
		Seed:      0x5ec9b,
		Points:    300,
		Workloads: []string{"gcc", "povray"},
	})
	if err != nil {
		t.Fatal(err)
	}
	perScheme := make(map[string]int)
	for _, c := range m.Cells {
		if c.Failures > 0 {
			t.Errorf("%s/%s: %d failures, first: %s", c.Scheme, c.Workload, c.Failures, c.FirstBad)
		}
		perScheme[c.Scheme] += c.Injected
	}
	for _, s := range config.SecPBSchemes() {
		if perScheme[s.String()] < 500 {
			t.Errorf("scheme %s: only %d crash points injected, want >= 500", s, perScheme[s.String()])
		}
	}
}

// TestExhaustiveEnumeration drives every single crash point of a small
// trace (Points<=0 selects exhaustive mode).
func TestExhaustiveEnumeration(t *testing.T) {
	cell, err := RunCell(config.SchemeCOBCM, "gcc", Options{Ops: 300, Seed: 9, Points: 0})
	if err != nil {
		t.Fatal(err)
	}
	if cell.TotalPoints == 0 || uint64(cell.Injected) != cell.TotalPoints {
		t.Fatalf("exhaustive run injected %d of %d points", cell.Injected, cell.TotalPoints)
	}
	if cell.Failures > 0 {
		t.Fatalf("%d failures, first: %s", cell.Failures, cell.FirstBad)
	}
}

// TestExploreDeterministic pins the artifact: the same options must
// produce byte-identical JSON regardless of worker-pool size.
func TestExploreDeterministic(t *testing.T) {
	opts := Options{Ops: 500, Seed: 1234, Points: 10, Workloads: []string{"gcc"}}
	render := func(workers int) []byte {
		o := opts
		o.Workers = workers
		m, err := Explore(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("serial and parallel artifacts differ:\n%s\nvs\n%s", serial, parallel)
	}
	if again := render(4); !bytes.Equal(parallel, again) {
		t.Error("two identical parallel runs produced different artifacts")
	}
}

// TestInjectionIsTransparent checks that capturing, recovering and
// verifying snapshots mid-run does not perturb the run itself: an
// injected run must collect the exact Result of an uninstrumented one.
func TestInjectionIsTransparent(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithScheme(config.SchemeOBCM)
	cfg.Seed = 77
	key := []byte("transparency-key")
	ops, err := workload.Generate(prof, cfg.Seed, 1500)
	if err != nil {
		t.Fatal(err)
	}

	count, err := newInjector(cfg, prof, key, ops, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := count.Run(); err != nil {
		t.Fatal(err)
	}
	total, _ := count.Points()
	triggers := chooseTriggers(total, 30, 5)

	inj, err := newInjector(cfg, prof, key, ops, triggers, func(snap *Snapshot, golden map[addr.Block][addr.BlockBytes]byte) error {
		_, err := snap.RecoverVerify(golden)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Run(); err != nil {
		t.Fatal(err)
	}

	plain, err := newInjector(cfg, prof, key, ops, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Run without any sink installed at all: the reference execution.
	if err := plain.eng.Run(&indexedSource{ops: ops, pos: -1}); err != nil {
		t.Fatal(err)
	}

	got := inj.eng.Collect()
	want := plain.eng.Collect()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("injection perturbed the run:\ninjected: %+v\nreference: %+v", got, want)
	}
}

// TestDetectsDroppedEntry is the negative control for battery state: if
// recovery is denied one battery-backed entry, verification must notice
// — otherwise the whole matrix could pass vacuously.
func TestDetectsDroppedEntry(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithScheme(config.SchemeCOBCM)
	cfg.Seed = 3
	key := []byte("negative-control-key")
	ops, err := workload.Generate(prof, cfg.Seed, 1200)
	if err != nil {
		t.Fatal(err)
	}
	count, err := newInjector(cfg, prof, key, ops, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := count.Run(); err != nil {
		t.Fatal(err)
	}
	total, _ := count.Points()
	triggers := chooseTriggers(total, 20, 11)

	caught, eligible := 0, 0
	inj, err := newInjector(cfg, prof, key, ops, triggers, func(snap *Snapshot, golden map[addr.Block][addr.BlockBytes]byte) error {
		if len(snap.entries) == 0 {
			return nil
		}
		eligible++
		snap.entries = snap.entries[:len(snap.entries)-1] // the battery "fails" one entry
		res, err := snap.RecoverVerify(golden)
		if err != nil {
			return err
		}
		if res.Failures > 0 {
			caught++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Run(); err != nil {
		t.Fatal(err)
	}
	if eligible == 0 {
		t.Fatal("no crash point had battery-backed entries; negative control vacuous")
	}
	if caught == 0 {
		t.Errorf("dropped a battery-backed entry at %d crash points, verification never noticed", eligible)
	}
}

// TestDetectsWrongGolden is the negative control for the differential
// check itself: recovery against a falsified golden image must fail.
func TestDetectsWrongGolden(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithScheme(config.SchemeBCM)
	cfg.Seed = 21
	key := []byte("wrong-golden-key")
	ops, err := workload.Generate(prof, cfg.Seed, 800)
	if err != nil {
		t.Fatal(err)
	}
	count, err := newInjector(cfg, prof, key, ops, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := count.Run(); err != nil {
		t.Fatal(err)
	}
	total, _ := count.Points()
	// Pick one late crash point so plenty of blocks are committed.
	triggers := []uint64{total - 1}

	ran := false
	inj, err := newInjector(cfg, prof, key, ops, triggers, func(snap *Snapshot, golden map[addr.Block][addr.BlockBytes]byte) error {
		ran = true
		forged := make(map[addr.Block][addr.BlockBytes]byte, len(golden))
		for b, v := range golden {
			forged[b] = v
		}
		for b, v := range forged {
			v[0] ^= 0xFF
			forged[b] = v
			break
		}
		res, err := snap.RecoverVerify(forged)
		if err != nil {
			return err
		}
		if res.Failures == 0 {
			t.Error("verification accepted a falsified golden image")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("handler never ran")
	}
}

// TestNestedBudgetCrashResume models a degraded battery: the first
// recovery boot funds only one entry of late work, crashes again, and a
// second boot resumes from the persistent late-work journal. Every
// snapshot with enough pending entries must go through the nested crash
// and still recover byte-identical to the golden model.
func TestNestedBudgetCrashResume(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("nested-crash-resume-key")
	schemes := []config.Scheme{config.SchemeNoGap, config.SchemeCOBCM}
	if !testing.Short() {
		schemes = config.SecPBSchemes()
	}
	for _, scheme := range schemes {
		cfg := config.Default().WithScheme(scheme)
		cfg.Seed = 0xBA77
		ops, err := workload.Generate(prof, cfg.Seed, 1200)
		if err != nil {
			t.Fatal(err)
		}
		nested, skipped := 0, 0
		cell, err := InjectTraceWith(cfg, prof, key, ops, TraceOptions{Points: 25, Seed: 0xBA77 ^ 0xC0FFEE},
			func(snap *Snapshot, golden map[addr.Block][addr.BlockBytes]byte) error {
				if snap.NumEntries() < 2 {
					skipped++ // budget covers everything; no nested crash possible
					return nil
				}
				res, err := snap.RecoverVerifyResumable(golden, 1, false)
				if err != nil {
					return err
				}
				if !res.Exhausted || !res.Resumed {
					t.Errorf("%s point %d: %d entries but exhausted=%v resumed=%v",
						scheme, snap.PointIndex, snap.NumEntries(), res.Exhausted, res.Resumed)
				}
				if res.Failures > 0 {
					t.Errorf("%s point %d: resumed recovery failed: %s", scheme, snap.PointIndex, res.FirstBad)
				}
				nested++
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if nested == 0 {
			t.Errorf("%s: no crash point had >=2 pending entries (injected %d, skipped %d); nested-crash test vacuous",
				scheme, cell.Injected, skipped)
		}
	}
}

// TestNestedCrashDroppedJournalDetected is the negative control: when
// the nested crash also destroys the late-work journal, the second boot
// cannot resume, and verification must find the undrained entries
// missing at least somewhere — otherwise the resume path could be a
// no-op and the positive test above would pass vacuously.
func TestNestedCrashDroppedJournalDetected(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithScheme(config.SchemeCOBCM)
	cfg.Seed = 0xD10
	key := []byte("dropped-journal-key")
	ops, err := workload.Generate(prof, cfg.Seed, 1200)
	if err != nil {
		t.Fatal(err)
	}
	exhausted, caught := 0, 0
	_, err = InjectTraceWith(cfg, prof, key, ops, TraceOptions{Points: 25, Seed: 0xD10 ^ 0xC0FFEE},
		func(snap *Snapshot, golden map[addr.Block][addr.BlockBytes]byte) error {
			if snap.NumEntries() < 2 {
				return nil
			}
			res, err := snap.RecoverVerifyResumable(golden, 1, true)
			if err != nil {
				return err
			}
			if !res.Exhausted {
				t.Errorf("point %d: %d entries but no battery exhaustion", snap.PointIndex, snap.NumEntries())
			}
			if res.Resumed {
				t.Errorf("point %d: resumed despite dropped journal", snap.PointIndex)
			}
			exhausted++
			if res.Failures > 0 {
				caught++
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if exhausted == 0 {
		t.Fatal("no nested crash occurred; negative control vacuous")
	}
	if caught == 0 {
		t.Errorf("journal dropped at %d nested crashes, verification never noticed the undrained entries", exhausted)
	}
}

func TestChooseTriggers(t *testing.T) {
	got := chooseTriggers(1000, 50, 7)
	if len(got) != 50 {
		t.Fatalf("got %d triggers, want 50", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("triggers not strictly ascending at %d: %v", i, got[i-1:i+1])
		}
	}
	if got[len(got)-1] >= 1000 {
		t.Fatalf("trigger %d out of range", got[len(got)-1])
	}
	if again := chooseTriggers(1000, 50, 7); !reflect.DeepEqual(got, again) {
		t.Error("sampling not deterministic for equal seeds")
	}
	if all := chooseTriggers(12, 0, 1); len(all) != 12 || all[0] != 0 || all[11] != 11 {
		t.Errorf("exhaustive enumeration wrong: %v", all)
	}
	if all := chooseTriggers(5, 99, 1); len(all) != 5 {
		t.Errorf("k>total should enumerate, got %v", all)
	}
}
