// Package crashsim crash-tests the SecPB persistence pipeline by
// differential injection. A seeded workload trace is executed on the
// full engine/controller/persist-buffer stack, which fires a cheap hook
// at every crash-relevant micro-op boundary (store acceptance, SecPB
// entry allocation, WPQ flush, counter persist, BMT sweep). At chosen
// hook firings the simulated machine "loses power": the persisted NV
// image and the battery-backed SecPB/WPQ state are deep-copied, the
// scheme's post-crash late work is run on the copy, and the recovered
// memory tuple (ciphertext, counter, MAC, BMT root) is verified byte for
// byte against a shadow golden model that replays exactly the
// committed-store prefix of the trace. Crash points can be sampled
// (seeded, without replacement) for large traces or enumerated
// exhaustively for small ones, and cells of the scheme × workload grid
// fan out over a worker pool.
package crashsim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/crashpoint"
	"secpb/internal/runner"
	"secpb/internal/trace"
	"secpb/internal/workload"
	"secpb/internal/xrand"
)

// Options selects the crash-matrix grid and its exploration budget.
type Options struct {
	Schemes   []config.Scheme // default: all six SecPB schemes
	Workloads []string        // default: gcc
	Ops       int             // trace length per cell (default 2000)
	Seed      uint64          // base seed; each cell derives its own
	Points    int             // crash points sampled per cell; <=0 = exhaustive
	Workers   int             // worker pool size; <=0 = runner default
	Entries   int             // SecPB entries; <=0 = config default
	Key       []byte          // memory-encryption key (default fixed)
}

func (o Options) withDefaults() Options {
	if len(o.Schemes) == 0 {
		o.Schemes = config.SecPBSchemes()
	}
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"gcc"}
	}
	if o.Ops <= 0 {
		o.Ops = 2000
	}
	if len(o.Key) == 0 {
		o.Key = []byte("crashsim-fixed-verification-key!")
	}
	return o
}

// CellResult is the crash-matrix outcome for one scheme × workload cell.
type CellResult struct {
	Scheme      string            `json:"scheme"`
	Workload    string            `json:"workload"`
	Ops         int               `json:"ops"`
	Seed        uint64            `json:"seed"`
	TotalPoints uint64            `json:"total_points"`
	ByKind      map[string]uint64 `json:"points_by_kind"`
	Injected    int               `json:"injected"`
	Drained     int               `json:"entries_drained"`
	Checked     int               `json:"blocks_checked"`
	Failures    int               `json:"failures"`
	FirstBad    string            `json:"first_bad,omitempty"`
}

// Matrix is the full crash-matrix artifact.
type Matrix struct {
	Ops    int          `json:"ops"`
	Seed   uint64       `json:"seed"`
	Points int          `json:"points_per_cell"`
	Cells  []CellResult `json:"cells"`
}

// Clean reports whether every cell recovered every injected crash point
// byte-identical to the golden model.
func (m *Matrix) Clean() bool {
	for i := range m.Cells {
		if m.Cells[i].Failures > 0 {
			return false
		}
	}
	return true
}

// WriteJSON emits the artifact with deterministic key order (map keys
// are sorted by encoding/json; cells keep grid order).
func (m *Matrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Render writes a human-readable table of the matrix.
func (m *Matrix) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tworkload\tpoints\tinjected\tdrained\tchecked\tfailures\tstatus")
	for i := range m.Cells {
		c := &m.Cells[i]
		status := "ok"
		if c.Failures > 0 {
			status = "FAIL: " + c.FirstBad
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
			c.Scheme, c.Workload, c.TotalPoints, c.Injected, c.Drained, c.Checked, c.Failures, status)
	}
	return tw.Flush()
}

// cellSeed derives a per-cell seed so every cell samples an independent
// but reproducible trigger set and trace.
func cellSeed(base uint64, scheme config.Scheme, wl string) uint64 {
	h := base ^ 0x9E3779B97F4A7C15
	for _, s := range []string{scheme.String(), "/", wl} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// chooseTriggers picks k distinct point ordinals out of total using
// Floyd's sampling so huge totals never allocate more than k slots.
// k<=0 or k>=total enumerates every point.
func chooseTriggers(total uint64, k int, seed uint64) []uint64 {
	if k <= 0 || uint64(k) >= total {
		out := make([]uint64, total)
		for i := range out {
			out[i] = uint64(i)
		}
		return out
	}
	r := xrand.New(seed)
	chosen := make(map[uint64]struct{}, k)
	for j := total - uint64(k); j < total; j++ {
		t := r.Uint64n(j + 1)
		if _, dup := chosen[t]; dup {
			chosen[j] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	out := make([]uint64, 0, k)
	for t := range chosen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func cellConfig(opts Options, scheme config.Scheme, seed uint64) config.Config {
	cfg := config.Default().WithScheme(scheme)
	cfg.Seed = seed
	if opts.Entries > 0 {
		cfg = cfg.WithSecPBEntries(opts.Entries)
	}
	return cfg
}

// TraceOptions parameterizes a single-trace injection run.
type TraceOptions struct {
	Points int               // crash points to sample; <=0 = exhaustive
	Seed   uint64            // trigger-sampling seed
	Kinds  []crashpoint.Kind // restrict to these kinds; empty = all
}

// InjectTrace crash-tests one prepared op slice (synthetic, recorded, or
// reordered-for-relaxed-consistency) under cfg: a first pass counts the
// run's crash points, a trigger set is drawn, and a second identical run
// (the simulator is deterministic) crashes, recovers and verifies at
// each trigger with the standard four-way RecoverVerify.
func InjectTrace(cfg config.Config, prof workload.Profile, key []byte, ops []trace.Op, topt TraceOptions) (CellResult, error) {
	return InjectTraceWith(cfg, prof, key, ops, topt, nil)
}

// InjectTraceWith is InjectTrace with a custom recovery handler: the
// injection machinery (point counting, trigger sampling, snapshot
// capture, golden shadow) is identical, but each triggered crash is
// handed to h instead of the standard RecoverVerify — the hook for
// degraded-recovery scenarios such as nested battery-exhaustion crashes.
// A nil h uses the standard handler. The cell's Injected count is
// maintained for every handler; Drained/Checked/Failures are only
// meaningful under the standard one (custom handlers accumulate their
// own findings).
func InjectTraceWith(cfg config.Config, prof workload.Profile, key []byte, ops []trace.Op, topt TraceOptions, h Handler) (CellResult, error) {
	cell := CellResult{Scheme: cfg.Scheme.String(), Workload: prof.Name, Ops: len(ops), Seed: cfg.Seed}
	count, err := newInjector(cfg, prof, key, ops, nil, nil)
	if err != nil {
		return cell, err
	}
	count.setKinds(topt.Kinds)
	if err := count.Run(); err != nil {
		return cell, err
	}
	total, perKind := count.Points()
	cell.TotalPoints = total
	cell.ByKind = make(map[string]uint64, crashpoint.NumKinds())
	for _, k := range crashpoint.Kinds() {
		if n := perKind[k]; n > 0 {
			cell.ByKind[k.String()] = n
		}
	}
	if total == 0 {
		return cell, fmt.Errorf("crashsim: %s/%s fired no crash points", cfg.Scheme, prof.Name)
	}

	triggers := chooseTriggers(total, topt.Points, topt.Seed)
	inj, err := newInjector(cfg, prof, key, ops, triggers, func(snap *Snapshot, golden map[addr.Block][addr.BlockBytes]byte) error {
		cell.Injected++
		if h != nil {
			return h(snap, golden)
		}
		res, err := snap.RecoverVerify(golden)
		if err != nil {
			return err
		}
		cell.Drained += res.EntriesDrained
		cell.Checked += res.BlocksChecked
		if res.Failures > 0 {
			cell.Failures += res.Failures
			if cell.FirstBad == "" {
				cell.FirstBad = fmt.Sprintf("%s point %d (op %d, %d committed): %s",
					snap.Kind, snap.PointIndex, snap.OpIndex, snap.Committed, res.FirstBad)
			}
		}
		return nil
	})
	if err != nil {
		return cell, err
	}
	inj.setKinds(topt.Kinds)
	if err := inj.Run(); err != nil {
		return cell, err
	}
	return cell, nil
}

// RunCell explores one scheme × workload cell of the matrix grid with a
// derived per-cell seed for both the trace and the trigger sample.
func RunCell(scheme config.Scheme, wl string, opts Options) (CellResult, error) {
	opts = opts.withDefaults()
	cell := CellResult{Scheme: scheme.String(), Workload: wl, Ops: opts.Ops}
	prof, err := workload.ByName(wl)
	if err != nil {
		return cell, err
	}
	seed := cellSeed(opts.Seed, scheme, wl)
	cfg := cellConfig(opts, scheme, seed)
	ops, err := workload.Generate(prof, seed, opts.Ops)
	if err != nil {
		return cell, err
	}
	cell, err = InjectTrace(cfg, prof, opts.Key, ops, TraceOptions{Points: opts.Points, Seed: seed ^ 0xC0FFEE})
	cell.Workload = wl
	return cell, err
}

// Explore runs the full scheme × workload grid, fanning cells out over a
// bounded worker pool. Each cell is self-contained (own engine, own
// trace, own crypto engine), so cells parallelize without sharing.
func Explore(ctx context.Context, opts Options) (*Matrix, error) {
	opts = opts.withDefaults()
	type cellKey struct {
		scheme config.Scheme
		wl     string
	}
	var cells []cellKey
	for _, s := range opts.Schemes {
		for _, w := range opts.Workloads {
			cells = append(cells, cellKey{s, w})
		}
	}
	results, err := runner.Map(ctx, opts.Workers, cells, func(_ context.Context, _ int, c cellKey) (CellResult, error) {
		return RunCell(c.scheme, c.wl, opts)
	})
	if err != nil {
		return nil, err
	}
	return &Matrix{Ops: opts.Ops, Seed: opts.Seed, Points: opts.Points, Cells: results}, nil
}
