package crashsim

import (
	"reflect"
	"testing"

	"secpb/internal/config"
	"secpb/internal/crashpoint"
	"secpb/internal/workload"
)

// TestSystemMatrixExhaustive is the cores=2 crash matrix: every crash
// point of a small multi-core trace — private pipelines of both cores,
// shared-region barrier acceptances, drains, sweeps — is injected, the
// socket recovered in the sealed canonical order, and every shard
// verified against the committed-prefix goldens.
func TestSystemMatrixExhaustive(t *testing.T) {
	for _, scheme := range []config.Scheme{config.SchemeCM, config.SchemeOBCM, config.SchemeCOBCM} {
		cell, err := RunSystemCell(scheme, "gcc", 2, Options{Ops: 300, Seed: 0x5EC9})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if cell.Injected == 0 || uint64(cell.Injected) != cell.TotalPoints {
			t.Fatalf("%s: injected %d of %d points (exhaustive run must hit all)",
				scheme, cell.Injected, cell.TotalPoints)
		}
		if cell.Failures > 0 {
			t.Fatalf("%s: %d failures, first: %s", scheme, cell.Failures, cell.FirstBad)
		}
		if cell.Checked == 0 {
			t.Fatalf("%s: no blocks verified", scheme)
		}
		t.Logf("%s: %d points, %d drained, %d checked", scheme, cell.TotalPoints, cell.Drained, cell.Checked)
	}
}

// conflictConfig forces cross-core shared-write conflicts: a 2-block
// hot shared region with a high redirect rate, so nearly every epoch
// has both cores writing the same block and the merge order is
// observable in the committed data.
func conflictConfig(scheme config.Scheme) config.Config {
	cfg := config.Default().WithScheme(scheme).WithCores(2)
	cfg.Seed = 0xFACE5
	cfg.MCSharedBlocks = 2
	cfg.MCSharedPerKilo = 200
	cfg.MCEpochOps = 64
	return cfg
}

// TestSystemNegativePermutedDrainOrder: replaying the whole-socket late
// work in any order other than the sealed canonical one must fail — the
// journal rejects the out-of-turn part and the cell records a failure.
func TestSystemNegativePermutedDrainOrder(t *testing.T) {
	cfg := conflictConfig(config.SchemeCOBCM)
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	perCore, err := SystemTrace(cfg, prof, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Parts: 2 private + 2 shared = 4; swap the privates.
	order := []int{1, 0, 2, 3}
	checked := 0
	cell, err := InjectSystemTraceWith(cfg, prof, []byte("crashsim-fixed-verification-key!"), perCore,
		TraceOptions{Points: 12, Seed: 7}, func(snap *SystemSnapshot, golden *SystemGolden) error {
			if snap.NumEntries() == 0 {
				return nil // nothing to drain: order is vacuous at this point
			}
			res, err := snap.RecoverVerifyPermuted(golden, order)
			if err != nil {
				return err
			}
			checked++
			if res.Failures == 0 {
				t.Errorf("point %d: permuted drain order [1 0 2 3] verified clean", snap.PointIndex)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatalf("no snapshot held entries (injected %d); control never engaged", cell.Injected)
	}
}

// TestSystemNegativePermutedMergeOrder is the semantic control: a
// golden image built with the epoch-merge order reversed (descending
// core within each epoch) must fail differential verification wherever
// two cores' committed writes to the same shared block are merge-order
// dependent — proving the matrix pins which core's write wins at a
// barrier, not just that some value persisted.
func TestSystemNegativePermutedMergeOrder(t *testing.T) {
	cfg := conflictConfig(config.SchemeCM)
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	perCore, err := SystemTrace(cfg, prof, 800)
	if err != nil {
		t.Fatal(err)
	}
	engaged, failed := 0, 0
	_, err = InjectSystemTraceWith(cfg, prof, []byte("crashsim-fixed-verification-key!"), perCore,
		TraceOptions{Points: 0, Seed: 9, Kinds: []crashpoint.Kind{crashpoint.StoreAccept}},
		func(snap *SystemSnapshot, golden *SystemGolden) error {
			permuted := golden.SharedPermutedMerge()
			if reflect.DeepEqual(permuted, golden.Shared) {
				return nil // no merge-order-dependent conflict committed yet
			}
			engaged++
			res, err := snap.RecoverVerifyAgainst(golden.Priv, permuted)
			if err != nil {
				return err
			}
			if res.Failures > 0 {
				failed++
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if engaged == 0 {
		t.Fatal("conflict config produced no merge-order-dependent crash points")
	}
	if failed != engaged {
		t.Fatalf("permuted-merge golden verified clean at %d of %d conflicting points", engaged-failed, engaged)
	}
	t.Logf("merge-order control: %d conflicting points, all failed as demanded", engaged)
}

// TestSystemMatrixConflictHeavy runs the exhaustive matrix under the
// conflict-heavy shared configuration, where migrations and read
// flushes are frequent at every crash point.
func TestSystemMatrixConflictHeavy(t *testing.T) {
	cfg := conflictConfig(config.SchemeBCM)
	prof, err := workload.ByName("gromacs")
	if err != nil {
		t.Fatal(err)
	}
	perCore, err := SystemTrace(cfg, prof, 300)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := InjectSystemTrace(cfg, prof, []byte("crashsim-fixed-verification-key!"), perCore, TraceOptions{Points: 0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Failures > 0 {
		t.Fatalf("%d failures, first: %s", cell.Failures, cell.FirstBad)
	}
	if uint64(cell.Injected) != cell.TotalPoints {
		t.Fatalf("injected %d of %d", cell.Injected, cell.TotalPoints)
	}
}
