package crashsim

import (
	"errors"
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/energy"
	"secpb/internal/nvm"
	"secpb/internal/recovery"
)

// VerifyResult accumulates the outcome of recovering one snapshot and
// differentially checking it against the golden model.
type VerifyResult struct {
	EntriesDrained int
	BlocksChecked  int
	Failures       int
	FirstBad       string

	// Exhausted reports that the first recovery boot's battery died
	// mid-drain (a nested crash); Resumed that a second boot replayed
	// the late-work journal to completion.
	Exhausted bool
	Resumed   bool
}

func (v *VerifyResult) fail(msg string) {
	v.Failures++
	if v.FirstBad == "" {
		v.FirstBad = msg
	}
}

// RecoverVerify restores a memory controller from the snapshot's NV
// image, runs the scheme's post-crash late work over the battery-backed
// entries, and then checks the recovered state four ways:
//
//  1. the whole-image audit (per-block MAC, per-page BMT path, root
//     reconstruction by replay) must come back clean;
//  2. the persisted block set must equal the golden model's exactly —
//     no lost stores, no phantom blocks;
//  3. every block must decrypt to the golden plaintext; and
//  4. the stored tuple must be internally derivable byte for byte:
//     ciphertext == Enc(plaintext, counter) and MAC == MAC(ciphertext,
//     addr, counter) under the image's own counters.
//
// Tuple elements are checked for consistency rather than for equality
// with the pre-crash run: a drain interrupted after its counter persist
// legally re-increments on re-drain, yielding a different-but-valid
// tuple for the same plaintext. The returned error is a harness
// failure; verification findings land in the result.
func (s *Snapshot) RecoverVerify(golden map[addr.Block][addr.BlockBytes]byte) (VerifyResult, error) {
	var res VerifyResult
	mc, err := nvm.Restore(s.cfg, s.key, s.pm, s.ctrs, s.macs, s.tree)
	if err != nil {
		return res, fmt.Errorf("crashsim: restore controller: %w", err)
	}
	res.EntriesDrained = len(s.entries)
	if _, err := recovery.DrainEntries(mc, s.entries); err != nil {
		// A late drain that cannot complete is a correctness finding —
		// the battery-backed state was insufficient — not a harness bug.
		res.fail(fmt.Sprintf("late work failed: %v", err))
		return res, nil
	}
	return res, verifyImage(mc, golden, &res)
}

// RecoverVerifyResumable is RecoverVerify under a degraded battery: the
// first recovery boot funds only budgetEntries entries of late work, so
// a snapshot holding more suffers a nested crash mid-drain. A second
// boot then restores the partially-drained NV image (volatile state
// cold, exactly as after any power loss) and resumes from the persistent
// late-work journal where the first boot's cursor stopped. With
// dropJournal the journal is lost in the nested crash — the negative
// control: the second boot can only audit what already drained, and
// verification must find the undrained entries missing.
func (s *Snapshot) RecoverVerifyResumable(golden map[addr.Block][addr.BlockBytes]byte, budgetEntries int, dropJournal bool) (VerifyResult, error) {
	var res VerifyResult
	mc, err := nvm.Restore(s.cfg, s.key, s.pm, s.ctrs, s.macs, s.tree)
	if err != nil {
		return res, fmt.Errorf("crashsim: restore controller: %w", err)
	}
	perJ, err := energy.PerEntryDrainJ(s.cfg.Scheme, s.cfg.BMTLevels)
	if err != nil {
		return res, fmt.Errorf("crashsim: per-entry drain energy: %w", err)
	}
	// Half an entry of margin past the funded count: the battery browns
	// out at entry boundaries, never mid-tuple.
	budget := energy.NewBudget((float64(budgetEntries) + 0.5) * perJ)

	j := recovery.NewJournal(s.entries)
	_, derr := recovery.DrainEntriesBudget(mc, j, budget)
	switch {
	case derr == nil:
		// The budget covered everything; no nested crash occurred.
	case errors.Is(derr, recovery.ErrBatteryExhausted):
		res.Exhausted = true
		// Second boot: the nested crash preserved the partially-drained
		// NV image (DrainEntriesBudget committed the staged sweep before
		// dying); re-restore it so volatile state comes up cold.
		mc2, rerr := nvm.Restore(s.cfg, s.key, mc.PM(), mc.Counters(), mc.MACs(), mc.Tree())
		if rerr != nil {
			return res, fmt.Errorf("crashsim: restore after nested crash: %w", rerr)
		}
		mc = mc2
		if !dropJournal {
			if _, rerr := recovery.DrainEntriesBudget(mc, j, nil); rerr != nil {
				res.fail(fmt.Sprintf("journal resume failed: %v", rerr))
				return res, nil
			}
			res.Resumed = true
		}
	default:
		res.fail(fmt.Sprintf("late work failed: %v", derr))
		return res, nil
	}
	res.EntriesDrained = j.Done()
	return res, verifyImage(mc, golden, &res)
}

// verifyImage runs checks 1-4 (see RecoverVerify) over a recovered
// controller against the golden plaintext image. It is shard-agnostic:
// the multi-core matrix applies it to each private memory-channel shard
// and to the shared coherent region independently.
func verifyImage(mc *nvm.Controller, golden map[addr.Block][addr.BlockBytes]byte, res *VerifyResult) error {
	audit, err := recovery.AuditImage(mc)
	if err != nil {
		return fmt.Errorf("crashsim: audit: %w", err)
	}
	if !audit.Clean() {
		res.fail("audit: " + audit.FirstBad)
	}

	persisted := mc.PM().Blocks()
	have := make(map[addr.Block]struct{}, len(persisted))
	for _, b := range persisted {
		have[b] = struct{}{}
		if _, ok := golden[b]; !ok {
			res.fail(fmt.Sprintf("phantom block %#x persisted but never committed", b.Addr()))
		}
	}
	for _, b := range sortedBlocks(golden) {
		if _, ok := have[b]; !ok {
			res.fail(fmt.Sprintf("committed block %#x lost after recovery", b.Addr()))
		}
	}

	eng := mc.Engine()
	for _, b := range sortedBlocks(golden) {
		want, ok := golden[b]
		if !ok {
			continue
		}
		res.BlocksChecked++
		got, _, err := mc.FetchBlock(b)
		if err != nil {
			res.fail(fmt.Sprintf("block %#x: fetch: %v", b.Addr(), err))
			continue
		}
		if got != want {
			res.fail(fmt.Sprintf("block %#x: recovered plaintext differs from golden model", b.Addr()))
			continue
		}
		ct, ok := mc.PM().Peek(b)
		if !ok {
			continue // already reported as lost
		}
		ctr := mc.Counters().Value(b)
		if eng.Encrypt(&want, b.Addr(), ctr) != ct {
			res.fail(fmt.Sprintf("block %#x: ciphertext not derivable from plaintext under image counter %d", b.Addr(), ctr))
		}
		tag, ok := mc.MACs().Get(b)
		if !ok {
			res.fail(fmt.Sprintf("block %#x: MAC missing after recovery", b.Addr()))
		} else if eng.MAC(&ct, b.Addr(), ctr) != tag {
			res.fail(fmt.Sprintf("block %#x: stored MAC inconsistent with ciphertext/counter", b.Addr()))
		}
	}
	return nil
}
