package crashsim

import (
	"fmt"
	"sort"

	"secpb/internal/addr"
	"secpb/internal/bmt"
	"secpb/internal/config"
	"secpb/internal/core"
	"secpb/internal/crashpoint"
	"secpb/internal/engine"
	"secpb/internal/meta"
	"secpb/internal/nvm"
	"secpb/internal/recovery"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// shardState is one memory-channel shard's crash image: the persisted
// NV stores plus the battery-backed SecPB entries that drain into it.
type shardState struct {
	cfg     config.Config
	pm      *nvm.PM
	ctrs    *meta.CounterStore
	macs    *meta.MACStore
	tree    *bmt.Tree
	entries []core.Entry
}

func captureShard(cfg config.Config, mc *nvm.Controller, entries []core.Entry) shardState {
	return shardState{
		cfg:     cfg,
		pm:      mc.PM().Snapshot(),
		ctrs:    mc.Counters().Snapshot(),
		macs:    mc.MACs().Snapshot(),
		tree:    mc.Tree().Snapshot(),
		entries: entries,
	}
}

// SystemSnapshot is everything that survives a power failure of an
// N-core socket: each core's private memory-channel shard with its
// SecPB entries, the shared coherent region's shard, and each core's
// shared-region SecPB entries. The committed-store counts (the
// acceptance stats at the instant of the crash) gate the golden model.
type SystemSnapshot struct {
	Kind       crashpoint.Kind
	PointIndex uint64

	// Committed[c] is core c's private stores past the point of
	// persistency; SharedCommitted[c] its shared-region stores accepted
	// at barriers.
	Committed       []int
	SharedCommitted []int

	key           []byte
	priv          []shardState
	shared        shardState
	sharedEntries [][]core.Entry // per core, FIFO order
}

// NumEntries returns the total battery-backed entries across all
// buffers — the late work a whole-socket recovery must fund.
func (s *SystemSnapshot) NumEntries() int {
	n := len(s.shared.entries)
	for _, p := range s.priv {
		n += len(p.entries)
	}
	for _, e := range s.sharedEntries {
		n += len(e)
	}
	return n
}

// parts assembles the canonical cross-core drain order over freshly
// restored controllers: ascending core id over the private shards, then
// ascending core id over the shared-region buffers (all draining into
// one restored shared controller). It returns the parts plus the
// restored controllers for verification.
func (s *SystemSnapshot) parts() ([]recovery.CoreEntries, []*nvm.Controller, *nvm.Controller, error) {
	var parts []recovery.CoreEntries
	var privMCs []*nvm.Controller
	for c, sh := range s.priv {
		mc, err := nvm.Restore(sh.cfg, s.key, sh.pm, sh.ctrs, sh.macs, sh.tree)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("crashsim: restore core %d shard: %w", c, err)
		}
		privMCs = append(privMCs, mc)
		parts = append(parts, recovery.CoreEntries{Core: c, MC: mc, Entries: sh.entries})
	}
	sharedMC, err := nvm.Restore(s.shared.cfg, s.key, s.shared.pm, s.shared.ctrs, s.shared.macs, s.shared.tree)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("crashsim: restore shared shard: %w", err)
	}
	for c, entries := range s.sharedEntries {
		parts = append(parts, recovery.CoreEntries{Core: c, MC: sharedMC, Entries: entries})
	}
	return parts, privMCs, sharedMC, nil
}

// RecoverVerify replays the whole-socket late work in the canonical
// sealed order and differentially verifies every shard: each private
// memory-channel shard against its core's committed-prefix golden, the
// shared region against the epoch-merge golden. The four per-shard
// checks are the single-core RecoverVerify's (audit, block-set
// equality, plaintext, tuple derivability).
func (s *SystemSnapshot) RecoverVerify(g *SystemGolden) (VerifyResult, error) {
	return s.recoverVerifyOrder(g.Priv, g.Shared, nil)
}

// RecoverVerifyPermuted is the order negative control: the parts replay
// in the given non-canonical order, which the sealed system journal
// must reject — the rejection lands as a verification failure, so a
// matrix run that somehow tolerates out-of-order cross-core replay
// shows up as a clean cell where a failure was demanded.
func (s *SystemSnapshot) RecoverVerifyPermuted(g *SystemGolden, order []int) (VerifyResult, error) {
	return s.recoverVerifyOrder(g.Priv, g.Shared, order)
}

// RecoverVerifyAgainst verifies against caller-supplied goldens (the
// semantic negative control hands in an image built with a permuted
// epoch-merge order).
func (s *SystemSnapshot) RecoverVerifyAgainst(priv []map[addr.Block][addr.BlockBytes]byte, shared map[addr.Block][addr.BlockBytes]byte) (VerifyResult, error) {
	return s.recoverVerifyOrder(priv, shared, nil)
}

func (s *SystemSnapshot) recoverVerifyOrder(priv []map[addr.Block][addr.BlockBytes]byte, shared map[addr.Block][addr.BlockBytes]byte, order []int) (VerifyResult, error) {
	var res VerifyResult
	parts, privMCs, sharedMC, err := s.parts()
	if err != nil {
		return res, err
	}
	res.EntriesDrained = s.NumEntries()
	if _, err := recovery.DrainSystemEntries(parts, order); err != nil {
		// An out-of-order replay (journal rejection) or a drain that
		// cannot complete is a correctness finding, not a harness bug.
		res.fail(fmt.Sprintf("cross-core late work failed: %v", err))
		return res, nil
	}
	for c, mc := range privMCs {
		var shardRes VerifyResult
		if err := verifyImage(mc, priv[c], &shardRes); err != nil {
			return res, fmt.Errorf("crashsim: core %d shard: %w", c, err)
		}
		res.BlocksChecked += shardRes.BlocksChecked
		res.Failures += shardRes.Failures
		if res.FirstBad == "" && shardRes.FirstBad != "" {
			res.FirstBad = fmt.Sprintf("core %d: %s", c, shardRes.FirstBad)
		}
	}
	var sharedRes VerifyResult
	if err := verifyImage(sharedMC, shared, &sharedRes); err != nil {
		return res, fmt.Errorf("crashsim: shared shard: %w", err)
	}
	res.BlocksChecked += sharedRes.BlocksChecked
	res.Failures += sharedRes.Failures
	if res.FirstBad == "" && sharedRes.FirstBad != "" {
		res.FirstBad = "shared: " + sharedRes.FirstBad
	}
	return res, nil
}

// sharedStoreRec is one shared-region store in the global epoch-merge
// order: within an epoch, cores replay ascending at the barrier, each
// in program order.
type sharedStoreRec struct {
	epoch   int
	core    int
	pos     int // op index within the core's stream
	ordinal int // ordinal among the core's shared stores (gates commitment)
	op      trace.Op
}

// systemShadow is the multi-core golden model: one committed-prefix
// shadow per private stream plus the shared region's store sequence in
// global merge order, gated by per-core barrier-acceptance counts.
type systemShadow struct {
	priv      []*shadow
	sharedSeq []sharedStoreRec
	sharedMem map[addr.Block][addr.BlockBytes]byte
	applied   int
}

// newSystemShadow classifies each core's ops with the system's own
// rewrite plan (private vs shared, and the rewritten shared addresses),
// then sorts the shared stores into the canonical merge order.
func newSystemShadow(plan engine.SharedPlan, perCore [][]trace.Op) *systemShadow {
	s := &systemShadow{sharedMem: make(map[addr.Block][addr.BlockBytes]byte)}
	for c, ops := range perCore {
		var privOps []trace.Op
		ordinal := 0
		for i, op := range ops {
			rop, shared := plan.Rewrite(c, i, op)
			if !shared {
				privOps = append(privOps, rop)
				continue
			}
			if rop.Kind == trace.Store {
				s.sharedSeq = append(s.sharedSeq, sharedStoreRec{
					epoch: plan.Epoch(i), core: c, pos: i, ordinal: ordinal, op: rop,
				})
				ordinal++
			}
		}
		s.priv = append(s.priv, newShadow(privOps))
	}
	sort.Slice(s.sharedSeq, func(i, j int) bool {
		a, b := s.sharedSeq[i], s.sharedSeq[j]
		if a.epoch != b.epoch {
			return a.epoch < b.epoch
		}
		if a.core != b.core {
			return a.core < b.core
		}
		return a.pos < b.pos
	})
	return s
}

func applyStore(mem map[addr.Block][addr.BlockBytes]byte, op trace.Op) {
	block := addr.BlockOf(op.Addr)
	blk := mem[block]
	off := int(op.Addr - block.Addr())
	for i := 0; i < int(op.Size); i++ {
		blk[off+i] = byte(op.Data >> (8 * i))
	}
	mem[block] = blk
}

// advance catches the goldens up to the snapshot's committed counts.
// Barrier replay follows exactly the merge order, so the committed set
// is always a prefix of sharedSeq; advancing while the next record's
// per-core ordinal is under that core's accepted count is exact.
func (s *systemShadow) advance(committed, sharedCommitted []int) {
	for c, k := range committed {
		s.priv[c].advanceTo(k)
	}
	for s.applied < len(s.sharedSeq) {
		rec := s.sharedSeq[s.applied]
		if rec.ordinal >= sharedCommitted[rec.core] {
			break
		}
		applyStore(s.sharedMem, rec.op)
		s.applied++
	}
}

// SystemGolden is the committed-prefix plaintext image at one crash
// point. Maps are live shadow state: consume synchronously.
type SystemGolden struct {
	Priv   []map[addr.Block][addr.BlockBytes]byte
	Shared map[addr.Block][addr.BlockBytes]byte

	shadow          *systemShadow
	sharedCommitted []int
}

// SharedPermutedMerge rebuilds the shared golden with the epoch-merge
// order reversed (descending core within each epoch) over the same
// committed store set. Where two cores wrote the same block in one
// epoch, the last writer differs — the semantic negative control: a
// verifier given this image MUST report plaintext mismatches, proving
// the matrix actually pins the cross-core merge order.
func (g *SystemGolden) SharedPermutedMerge() map[addr.Block][addr.BlockBytes]byte {
	seq := append([]sharedStoreRec(nil), g.shadow.sharedSeq...)
	sort.Slice(seq, func(i, j int) bool {
		a, b := seq[i], seq[j]
		if a.epoch != b.epoch {
			return a.epoch < b.epoch
		}
		if a.core != b.core {
			return a.core > b.core // reversed
		}
		return a.pos < b.pos
	})
	mem := make(map[addr.Block][addr.BlockBytes]byte)
	for _, rec := range seq {
		if rec.ordinal < g.sharedCommitted[rec.core] {
			applyStore(mem, rec.op)
		}
	}
	return mem
}

// SystemHandler receives each captured whole-socket snapshot with its
// golden image.
type SystemHandler func(snap *SystemSnapshot, golden *SystemGolden) error

// systemInjector drives one multi-core run and crashes it at chosen
// points. The crash sink forces serial core stepping, so the global
// point stream is deterministic: core 0's epoch, core 1's, ..., then
// the barrier replay in canonical order.
type systemInjector struct {
	sys      *engine.System
	key      []byte
	shadow   *systemShadow
	triggers []uint64
	cursor   int
	handle   SystemHandler
	mask     []bool

	points  uint64
	perKind []uint64
	err     error
}

func newSystemInjector(cfg config.Config, prof workload.Profile, key []byte, perCore [][]trace.Op, triggers []uint64, h SystemHandler) (*systemInjector, error) {
	srcs := make([]trace.Source, len(perCore))
	for c, ops := range perCore {
		srcs[c] = &indexedSource{ops: ops, pos: -1}
	}
	sys, err := engine.NewSystemSources(cfg, prof, key, srcs)
	if err != nil {
		return nil, err
	}
	mask := make([]bool, crashpoint.NumKinds())
	for i := range mask {
		mask[i] = true
	}
	return &systemInjector{
		sys:      sys,
		key:      append([]byte(nil), key...),
		shadow:   newSystemShadow(sys.Plan(), perCore),
		triggers: triggers,
		handle:   h,
		mask:     mask,
		perKind:  make([]uint64, crashpoint.NumKinds()),
	}, nil
}

func (in *systemInjector) setKinds(kinds []crashpoint.Kind) {
	if len(kinds) == 0 {
		return
	}
	for i := range in.mask {
		in.mask[i] = false
	}
	for _, k := range kinds {
		in.mask[k] = true
	}
}

// CrashPoint implements crashpoint.Sink.
func (in *systemInjector) CrashPoint(k crashpoint.Kind, _ addr.Block) {
	if !in.mask[k] {
		return
	}
	i := in.points
	in.points++
	in.perKind[k]++
	if in.err != nil || in.cursor >= len(in.triggers) || in.triggers[in.cursor] != i {
		return
	}
	in.cursor++
	snap, golden := in.capture(k, i)
	if in.handle != nil {
		if err := in.handle(snap, golden); err != nil {
			in.err = err
		}
	}
}

// capture freezes the whole socket: every shard's NV image, every
// battery-backed buffer, and the per-buffer acceptance stats that gate
// the goldens.
func (in *systemInjector) capture(k crashpoint.Kind, i uint64) (*SystemSnapshot, *SystemGolden) {
	n := in.sys.Cores()
	snap := &SystemSnapshot{Kind: k, PointIndex: i, key: in.key}
	for c := 0; c < n; c++ {
		eng := in.sys.Core(c)
		spb := eng.SecPB()
		stores, _ := spb.Stats()
		snap.Committed = append(snap.Committed, int(stores))
		snap.priv = append(snap.priv, captureShard(eng.Controller().Config(), eng.Controller(), spb.SnapshotEntries()))
	}
	sharedMC := in.sys.Shared().Controller()
	for c := 0; c < n; c++ {
		spb := in.sys.Shared().SecPB(c)
		stores, _ := spb.Stats()
		snap.SharedCommitted = append(snap.SharedCommitted, int(stores))
		snap.sharedEntries = append(snap.sharedEntries, spb.SnapshotEntries())
	}
	snap.shared = captureShard(sharedMC.Config(), sharedMC, nil)

	in.shadow.advance(snap.Committed, snap.SharedCommitted)
	golden := &SystemGolden{
		Shared:          in.shadow.sharedMem,
		shadow:          in.shadow,
		sharedCommitted: append([]int(nil), snap.SharedCommitted...),
	}
	for c := 0; c < n; c++ {
		golden.Priv = append(golden.Priv, in.shadow.priv[c].view())
	}
	return snap, golden
}

// Run executes every core's trace to completion, firing the sink at
// every instrumented point across all shards.
func (in *systemInjector) Run() error {
	in.sys.SetCrashSink(in)
	if err := in.sys.Run(); err != nil {
		return fmt.Errorf("crashsim: system run: %w", err)
	}
	if in.err != nil {
		return in.err
	}
	if in.cursor != len(in.triggers) {
		return fmt.Errorf("crashsim: system run fired %d points but %d of %d triggers never matched (nondeterministic point stream?)",
			in.points, len(in.triggers)-in.cursor, len(in.triggers))
	}
	return nil
}

func (in *systemInjector) Points() (uint64, []uint64) { return in.points, in.perKind }

// SystemCellResult is the crash-matrix outcome for one multi-core cell.
type SystemCellResult struct {
	Scheme      string            `json:"scheme"`
	Workload    string            `json:"workload"`
	Cores       int               `json:"cores"`
	OpsPerCore  int               `json:"ops_per_core"`
	Seed        uint64            `json:"seed"`
	TotalPoints uint64            `json:"total_points"`
	ByKind      map[string]uint64 `json:"points_by_kind"`
	Injected    int               `json:"injected"`
	Drained     int               `json:"entries_drained"`
	Checked     int               `json:"blocks_checked"`
	Failures    int               `json:"failures"`
	FirstBad    string            `json:"first_bad,omitempty"`
}

// InjectSystemTrace crash-tests a multi-core socket over prepared
// per-core op slices: a first pass counts the run's crash points across
// every shard, a trigger set is drawn, and a second identical run
// (serial stepping under the sink keeps the point stream deterministic)
// crashes, recovers in the sealed canonical order, and verifies every
// shard at each trigger.
func InjectSystemTrace(cfg config.Config, prof workload.Profile, key []byte, perCore [][]trace.Op, topt TraceOptions) (SystemCellResult, error) {
	cell := SystemCellResult{
		Scheme: cfg.Scheme.String(), Workload: prof.Name,
		Cores: cfg.EffectiveCores(), OpsPerCore: 0, Seed: cfg.Seed,
	}
	if len(perCore) > 0 {
		cell.OpsPerCore = len(perCore[0])
	}
	count, err := newSystemInjector(cfg, prof, key, perCore, nil, nil)
	if err != nil {
		return cell, err
	}
	count.setKinds(topt.Kinds)
	if err := count.Run(); err != nil {
		return cell, err
	}
	total, perKind := count.Points()
	cell.TotalPoints = total
	cell.ByKind = make(map[string]uint64, crashpoint.NumKinds())
	for _, k := range crashpoint.Kinds() {
		if n := perKind[k]; n > 0 {
			cell.ByKind[k.String()] = n
		}
	}
	if total == 0 {
		return cell, fmt.Errorf("crashsim: %s/%s cores=%d fired no crash points", cfg.Scheme, prof.Name, cell.Cores)
	}

	triggers := chooseTriggers(total, topt.Points, topt.Seed)
	inj, err := newSystemInjector(cfg, prof, key, perCore, triggers, func(snap *SystemSnapshot, golden *SystemGolden) error {
		cell.Injected++
		res, err := snap.RecoverVerify(golden)
		if err != nil {
			return err
		}
		cell.Drained += res.EntriesDrained
		cell.Checked += res.BlocksChecked
		if res.Failures > 0 {
			cell.Failures += res.Failures
			if cell.FirstBad == "" {
				cell.FirstBad = fmt.Sprintf("%s point %d: %s", snap.Kind, snap.PointIndex, res.FirstBad)
			}
		}
		return nil
	})
	if err != nil {
		return cell, err
	}
	inj.setKinds(topt.Kinds)
	if err := inj.Run(); err != nil {
		return cell, err
	}
	return cell, nil
}

// InjectSystemTraceWith is InjectSystemTrace with a custom handler (the
// negative controls choose their own verification); only Injected is
// maintained for custom handlers.
func InjectSystemTraceWith(cfg config.Config, prof workload.Profile, key []byte, perCore [][]trace.Op, topt TraceOptions, h SystemHandler) (SystemCellResult, error) {
	cell := SystemCellResult{
		Scheme: cfg.Scheme.String(), Workload: prof.Name,
		Cores: cfg.EffectiveCores(), Seed: cfg.Seed,
	}
	if len(perCore) > 0 {
		cell.OpsPerCore = len(perCore[0])
	}
	count, err := newSystemInjector(cfg, prof, key, perCore, nil, nil)
	if err != nil {
		return cell, err
	}
	count.setKinds(topt.Kinds)
	if err := count.Run(); err != nil {
		return cell, err
	}
	total, _ := count.Points()
	cell.TotalPoints = total
	if total == 0 {
		return cell, fmt.Errorf("crashsim: %s/%s cores=%d fired no crash points", cfg.Scheme, prof.Name, cell.Cores)
	}
	triggers := chooseTriggers(total, topt.Points, topt.Seed)
	inj, err := newSystemInjector(cfg, prof, key, perCore, triggers, func(snap *SystemSnapshot, golden *SystemGolden) error {
		cell.Injected++
		return h(snap, golden)
	})
	if err != nil {
		return cell, err
	}
	inj.setKinds(topt.Kinds)
	if err := inj.Run(); err != nil {
		return cell, err
	}
	return cell, nil
}

// SystemTrace materializes the per-core op slices a multi-core cell
// runs: core c's stream is generated from CoreSeed(cfg.Seed, c),
// exactly as engine.NewSystem does internally.
func SystemTrace(cfg config.Config, prof workload.Profile, opsPerCore int) ([][]trace.Op, error) {
	n := cfg.EffectiveCores()
	perCore := make([][]trace.Op, n)
	for c := 0; c < n; c++ {
		ops, err := workload.Generate(prof, engine.CoreSeed(cfg.Seed, c), opsPerCore)
		if err != nil {
			return nil, err
		}
		perCore[c] = ops
	}
	return perCore, nil
}

// RunSystemCell explores one scheme × workload multi-core cell with
// derived seeds, exhaustively when opts.Points <= 0.
func RunSystemCell(scheme config.Scheme, wl string, cores int, opts Options) (SystemCellResult, error) {
	opts = opts.withDefaults()
	prof, err := workload.ByName(wl)
	if err != nil {
		return SystemCellResult{Scheme: scheme.String(), Workload: wl, Cores: cores}, err
	}
	seed := cellSeed(opts.Seed, scheme, wl) ^ uint64(cores)<<48
	cfg := cellConfig(opts, scheme, seed).WithCores(cores)
	perCore, err := SystemTrace(cfg, prof, opts.Ops)
	if err != nil {
		return SystemCellResult{Scheme: scheme.String(), Workload: wl, Cores: cores}, err
	}
	return InjectSystemTrace(cfg, prof, opts.Key, perCore, TraceOptions{Points: opts.Points, Seed: seed ^ 0xC0FFEE})
}
