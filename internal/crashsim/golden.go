package crashsim

import (
	"sort"

	"secpb/internal/addr"
	"secpb/internal/trace"
)

// shadow is the golden model: an independent replay of the trace's
// committed-store prefix. The engine's own program view cannot serve as
// the reference — it is updated before a store reaches the point of
// persistency, so at a store-accept crash point it is one store ahead of
// what recovery may legally reconstruct. The shadow applies a store only
// once the SecPB has accepted it, advancing monotonically as crash
// points are captured at ever-larger committed prefixes.
type shadow struct {
	ops      []trace.Op
	storeIdx []int // indices of store ops within ops, in program order
	mem      map[addr.Block][addr.BlockBytes]byte
	applied  int // stores applied so far
}

func newShadow(ops []trace.Op) *shadow {
	s := &shadow{
		ops: ops,
		mem: make(map[addr.Block][addr.BlockBytes]byte),
	}
	for i, op := range ops {
		if op.Kind == trace.Store {
			s.storeIdx = append(s.storeIdx, i)
		}
	}
	return s
}

// advanceTo applies stores until exactly committed of them are in the
// shadow. The committed count never decreases (acceptance is monotone
// within one run), so this is an incremental catch-up, not a rebuild.
func (s *shadow) advanceTo(committed int) {
	for s.applied < committed && s.applied < len(s.storeIdx) {
		op := s.ops[s.storeIdx[s.applied]]
		block := addr.BlockOf(op.Addr)
		blk := s.mem[block]
		off := int(op.Addr - block.Addr())
		for i := 0; i < int(op.Size); i++ {
			blk[off+i] = byte(op.Data >> (8 * i))
		}
		s.mem[block] = blk
		s.applied++
	}
}

// view returns the shadow's plaintext image. The map is live — callers
// use it synchronously and must not retain it across further advances.
func (s *shadow) view() map[addr.Block][addr.BlockBytes]byte { return s.mem }

// sortedBlocks returns golden's block set in ascending address order so
// verification order (and the first reported failure) is deterministic.
func sortedBlocks(golden map[addr.Block][addr.BlockBytes]byte) []addr.Block {
	out := make([]addr.Block, 0, len(golden))
	for b := range golden {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
