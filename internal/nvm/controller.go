package nvm

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/bmt"
	"secpb/internal/config"
	"secpb/internal/crashpoint"
	"secpb/internal/crypto"
	"secpb/internal/fault"
	"secpb/internal/mem"
	"secpb/internal/meta"
	"secpb/internal/ptable"
)

// Cost reports the micro-events one controller operation generated. The
// engine converts events into cycles; the energy model converts the same
// events into joules (Table III).
type Cost struct {
	CtrCacheHit   bool
	CtrFetchPM    bool // counter line fetched from PM
	AESOps        int  // OTP generations
	Hashes        int  // SHA-512 computations (MAC or BMT node)
	BMTLevels     int  // tree levels walked
	BMTNodeFetch  int  // BMT nodes fetched from PM (BMT cache misses)
	PMDataWrites  int  // 64B data writes to PM
	PMMetaWrites  int  // 64B metadata writes to PM
	PMReads       int  // 64B reads from PM
	PageReencrypt bool
}

// Add accumulates other into c.
func (c *Cost) Add(other Cost) {
	c.CtrCacheHit = c.CtrCacheHit || other.CtrCacheHit
	c.CtrFetchPM = c.CtrFetchPM || other.CtrFetchPM
	c.AESOps += other.AESOps
	c.Hashes += other.Hashes
	c.BMTLevels += other.BMTLevels
	c.BMTNodeFetch += other.BMTNodeFetch
	c.PMDataWrites += other.PMDataWrites
	c.PMMetaWrites += other.PMMetaWrites
	c.PMReads += other.PMReads
	c.PageReencrypt = c.PageReencrypt || other.PageReencrypt
}

// PreparedMeta carries memory-tuple elements a SecPB entry precomputed
// early (at store-persist time), so the drain path reuses them instead
// of recomputing. Architecturally these are the entry's O/Dc/C/M fields
// with their valid bits; the authoritative metadata stores in the MC are
// only updated when the entry drains.
type PreparedMeta struct {
	CounterDone bool   // counter incremented at allocation (C valid)
	Counter     uint64 // the new counter value assigned at allocation
	// CounterAdvance is how many increments the drain must apply to the
	// storage counter: 1 normally (one increment per dirty entry —
	// Section IV.A's coalescing), or the per-store count when the
	// coalescing optimization is disabled (ablation mode). Zero means 1.
	CounterAdvance int
	OTPDone        bool
	OTP            [addr.BlockBytes]byte
	CipherDone     bool
	Cipher         [addr.BlockBytes]byte
	MACDone        bool
	MAC            [crypto.MACSize]byte
	BMTDone        bool // BMT walk already charged at allocation
}

// Controller is the memory controller: the security point of persistency
// in baseline systems, and the tuple-completion point of SecPB drains.
// Its metadata stores always describe the ciphertext currently in PM, so
// integrity verification is meaningful at any instant.
type Controller struct {
	cfg    config.Config
	secure bool

	eng  *crypto.Engine
	ctrs *meta.CounterStore
	macs *meta.MACStore
	tree *bmt.Tree
	pm   *PM

	ctrCache *mem.Cache
	macCache *mem.Cache
	bmtCache *mem.Cache
	heights  *bmt.HeightModel
	wpq      *WPQ

	// onReencrypt hooks are invoked with the page number after a page
	// re-encryption so every SecPB can invalidate prepared metadata that
	// the counter reset made stale.
	onReencrypt []func(page uint64)

	// sink, when non-nil, receives crash-injection points from the drain
	// pipeline (WPQ flush, counter persist, sweep boundary). inReencrypt
	// suppresses points inside a page re-encryption: the operation's
	// plaintexts live only in MC latches, so it is modelled as atomic —
	// completed on battery like any in-flight MC operation.
	sink        crashpoint.Sink
	inReencrypt bool

	reencrypts uint64
	media      MediaStats // retry/remap/backoff counters (pmWriteFaulty)

	// Reusable scratch for the drain-path BMT walk and OTP generation;
	// the controller models one hardware unit and is not safe for
	// concurrent use, so one buffer of each suffices.
	lineBuf [meta.LineBytesLen]byte
	pathIDs []uint64
	otpBuf  [addr.BlockBytes]byte

	// Deferred drain-tuple materialization (see stageTuple/flushStaged):
	// staged tuples in insertion order, the block→slot index (slot+1;
	// zero means unstaged), and the reusable MAC-batch request scratch.
	staged          []stagedTuple
	stagedIx        *ptable.Table[int32]
	macReqs         []crypto.MACRequest
	stagedFlushes   uint64
	stagedCoalesced uint64

	// otpPre holds pads speculatively derived for predicted (block,
	// counter) pairs by the engine's batch pipeline, consumed (or
	// invalidated) on the next pad generation for the block.
	otpPre       *ptable.Table[otpPrefetch]
	preInstalled uint64
	preHits      uint64
}

// stagedTuple is one drain whose physical materialization is deferred:
// the PM cell is already allocated and all costs, caches and queues are
// charged, but the cell holds plaintext until flush derives the pad
// (needOTP) and the MAC store's tag cell is filled by the flush's
// batched hash pass (needMAC).
type stagedTuple struct {
	block   addr.Block
	cell    *[addr.BlockBytes]byte
	ctr     uint64
	needOTP bool
	needMAC bool
}

// maxStagedTuples bounds the staged set; reaching the bound flushes
// before staging continues. Re-drains of an already-staged block
// coalesce into their slot, so the bound is on distinct dirty blocks.
const maxStagedTuples = 4096

// otpPrefetch is one speculatively derived pad awaiting its drain.
type otpPrefetch struct {
	ctr   uint64
	pad   [addr.BlockBytes]byte
	valid bool
}

// NewController builds the controller for the given configuration. The
// insecure BBB baseline (scheme bbb) stores plaintext and keeps no
// metadata.
func NewController(cfg config.Config, key []byte) (*Controller, error) {
	c := &Controller{
		cfg:    cfg,
		secure: cfg.Scheme.Secure(),
		pm:     NewPM(cfg.PMSizeBytes),
		wpq:    NewWPQ(cfg.WPQEntries),
	}
	c.armFault()
	if !c.secure {
		return c, nil
	}
	eng, err := crypto.NewEngine(key)
	if err != nil {
		return nil, err
	}
	tree, err := bmt.New(eng, cfg.BMTLevels)
	if err != nil {
		return nil, err
	}
	c.eng = eng
	c.tree = tree
	c.ctrs = meta.NewCounterStore()
	c.macs = meta.NewMACStore()
	c.stagedIx = ptable.New[int32]()
	c.initVolatile()
	return c, nil
}

// armFault arms the PM device's media-fault injector when the config
// enables one. The seed defaults to a derivation of the workload seed so
// fault patterns vary with the experiment but stay reproducible.
func (c *Controller) armFault() {
	if !c.cfg.FaultEnabled() {
		return
	}
	seed := c.cfg.FaultSeed
	if seed == 0 {
		seed = c.cfg.Seed ^ 0xFA017B10C5
	}
	c.pm.SetFault(fault.New(fault.Config{
		Seed:          seed,
		WriteFailRate: c.cfg.FaultWriteFailRate,
		TornRate:      c.cfg.FaultTornRate,
		RotRate:       c.cfg.FaultRotRate,
	}))
}

// initVolatile builds the controller's volatile structures: the metadata
// caches and the BMF height model. Both a fresh controller and one
// restored from a crash snapshot start with them cold.
func (c *Controller) initVolatile() {
	cfg := c.cfg
	if cfg.UnifiedMDC {
		// One shared structure with the three caches' combined capacity;
		// associativity scales with the merge so the set count stays a
		// power of two for any valid per-cache geometry.
		unified := cfg.CtrCache
		unified.SizeBytes = cfg.CtrCache.SizeBytes + cfg.MACCache.SizeBytes + cfg.BMTCache.SizeBytes
		unified.Ways = cfg.CtrCache.Ways * 3
		for unified.SizeBytes%(unified.Ways*unified.BlockBytes) != 0 ||
			(unified.Sets()&(unified.Sets()-1)) != 0 {
			unified.Ways++
		}
		shared := mem.NewCache("mdc$", unified)
		c.ctrCache, c.macCache, c.bmtCache = shared, shared, shared
	} else {
		c.ctrCache = mem.NewCache("ctr$", cfg.CtrCache)
		c.macCache = mem.NewCache("mac$", cfg.MACCache)
		c.bmtCache = mem.NewCache("bmt$", cfg.BMTCache)
	}
	c.heights = bmt.NewHeightModel(cfg)
}

// Restore rebuilds a secure controller around the NV state captured at a
// crash point: the PM image, storage counters, MACs, and the BMT with
// its root register. The caller owns the passed stores (they are adopted,
// not copied). Volatile state — the metadata caches, the WPQ occupancy,
// the crypto engine's derived-key schedule — is rebuilt cold, exactly as
// a post-crash memory controller would come up; the tree is re-homed on
// the fresh crypto engine, which hashes identically for the same key.
// The device's bad-block table is validated against its checksum before
// the image is trusted (a corrupted table would silently redirect
// blocks); a mismatch returns a *CorruptStateError.
func Restore(cfg config.Config, key []byte, pm *PM, ctrs *meta.CounterStore, macs *meta.MACStore, tree *bmt.Tree) (*Controller, error) {
	if !cfg.Scheme.Secure() {
		return nil, fmt.Errorf("nvm: Restore requires a secure scheme, got %v", cfg.Scheme)
	}
	if err := pm.CheckBadBlocks(); err != nil {
		return nil, err
	}
	eng, err := crypto.NewEngine(key)
	if err != nil {
		return nil, err
	}
	tree.SetHasher(eng)
	c := &Controller{
		cfg:    cfg,
		secure: true,
		pm:     pm,
		wpq:    NewWPQ(cfg.WPQEntries),
		eng:    eng,
		tree:   tree,
		ctrs:   ctrs,
		macs:   macs,
	}
	c.stagedIx = ptable.New[int32]()
	c.armFault()
	c.initVolatile()
	return c, nil
}

// SetCrashSink installs (or, with nil, removes) the crash-injection sink
// receiving the controller's drain-pipeline crash points. Any staged
// drain tuples are materialized first: crash injection requires the
// fully-eager pipeline, and the switchover must not leave deferred work
// behind.
func (c *Controller) SetCrashSink(s crashpoint.Sink) {
	c.flushStaged()
	c.sink = s
}

// Secure reports whether the controller runs the secure data path.
func (c *Controller) Secure() bool { return c.secure }

// Config returns the configuration the controller was built with.
func (c *Controller) Config() config.Config { return c.cfg }

// PM returns the device model. Staged drain tuples are materialized
// first, so every observation of device state sees the same image the
// eager pipeline would have produced.
func (c *Controller) PM() *PM {
	c.flushStaged()
	return c.pm
}

// Counters returns the storage-counter store (nil when insecure).
// Counters advance eagerly at drain time, so no flush is needed.
func (c *Controller) Counters() *meta.CounterStore { return c.ctrs }

// MACs returns the MAC store (nil when insecure). Staged drain tuples
// are materialized first (their tags are computed by the flush).
func (c *Controller) MACs() *meta.MACStore {
	c.flushStaged()
	return c.macs
}

// Tree returns the BMT (nil when insecure).
func (c *Controller) Tree() *bmt.Tree { return c.tree }

// Engine returns the crypto engine (nil when insecure).
func (c *Controller) Engine() *crypto.Engine { return c.eng }

// Heights returns the BMF height model (nil when insecure).
func (c *Controller) Heights() *bmt.HeightModel { return c.heights }

// WPQStats returns the ADR write-pending-queue statistics.
func (c *Controller) WPQStats() (accepted, retired uint64, highWater int, fullHits uint64) {
	return c.wpq.Stats()
}

// Reencrypts returns the number of page re-encryption events.
func (c *Controller) Reencrypts() uint64 { return c.reencrypts }

// SetReencryptHook registers a page re-encryption callback. Every
// registered hook fires (one per SecPB in multi-core systems).
func (c *Controller) SetReencryptHook(fn func(page uint64)) {
	c.onReencrypt = append(c.onReencrypt, fn)
}

// Metadata-type tags keep counter, MAC and BMT lines from aliasing in
// a unified metadata cache (distinct high address bits per type).
const (
	ctrTag = uint64(1) << 60
	macTag = uint64(2) << 60
	bmtTag = uint64(3) << 60
)

// touchCtrCache models a counter-cache access for the block's line.
func (c *Controller) touchCtrCache(b addr.Block, write bool) Cost {
	a := ctrTag | meta.LineAddr(b.CounterLine())
	hit := false
	if write {
		hit = c.ctrCache.AccessWrite(a)
	} else {
		hit = c.ctrCache.AccessRead(a)
	}
	if hit {
		return Cost{CtrCacheHit: true}
	}
	c.ctrCache.Fill(a, write, false)
	return Cost{CtrFetchPM: true, PMReads: 1}
}

// touchMACCache models a MAC-cache access for the block's MAC line.
func (c *Controller) touchMACCache(b addr.Block, write bool) Cost {
	a := macTag | meta.MACLineAddr(b)
	hit := false
	if write {
		hit = c.macCache.AccessWrite(a)
	} else {
		hit = c.macCache.AccessRead(a)
	}
	if hit {
		return Cost{}
	}
	c.macCache.Fill(a, write, false)
	return Cost{PMReads: 1}
}

// walkBMT charges a leaf-to-root walk for the block's page: BMT-cache
// accesses for each node plus one hash per level, then updates (or
// verifies) the functional tree. The returned cost carries the levels
// walked under the configured BMF mode.
func (c *Controller) walkBMT(b addr.Block, update bool) Cost {
	page := b.CounterLine()
	levels := c.heights.WalkLevels(page)
	var cost Cost
	cost.BMTLevels = levels
	cost.Hashes += levels
	c.pathIDs = c.tree.AppendPathNodeIDs(c.pathIDs[:0], page)
	ids := c.pathIDs
	for i := 0; i < levels && i < len(ids); i++ {
		nodeAddr := bmtTag | ids[i]<<6 // distinct pseudo-address per node
		hit := false
		if update {
			hit = c.bmtCache.AccessWrite(nodeAddr)
		} else {
			hit = c.bmtCache.AccessRead(nodeAddr)
		}
		if !hit {
			c.bmtCache.Fill(nodeAddr, update, false)
			cost.BMTNodeFetch++
			cost.PMReads++
		}
	}
	if update {
		// Update stages the walk in the tree's dirty-leaf set; the
		// physical hashing is coalesced into the next sweep (see
		// CompleteSweep). Cost accounting above stays per-walk.
		c.ctrs.Line(page).PutBytes(c.lineBuf[:])
		c.tree.Update(page, c.lineBuf[:])
	}
	return cost
}

// CompleteSweep commits all BMT updates staged by drained blocks with one
// deduplicated bottom-up sweep, hashing each shared interior node once
// instead of once per drained line. Drain loops call it at the end of a
// drain burst/epoch; any read-path verification triggers the same sweep
// implicitly, so calling it affects only wall-clock, never results or
// Cost statistics. It returns the number of physical node hashes the
// sweep computed.
func (c *Controller) CompleteSweep() int {
	if !c.secure {
		return 0
	}
	if c.sink != nil {
		c.sink.CrashPoint(crashpoint.SweepBoundary, 0)
	}
	return c.tree.Sweep()
}

// NextCounter returns the counter value a new SecPB entry should carry:
// the storage counter plus one. Eager schemes call this at allocation
// and pay the counter-cache access there; the authoritative increment
// happens at drain.
func (c *Controller) NextCounter(b addr.Block) (value uint64, cost Cost) {
	cost = c.touchCtrCache(b, false)
	return c.ctrs.Value(b) + 1, cost
}

// MakeOTP generates the pad for a block under the given counter.
func (c *Controller) MakeOTP(b addr.Block, counter uint64) ([addr.BlockBytes]byte, Cost) {
	var pad [addr.BlockBytes]byte
	c.eng.OTPInto(&pad, b.Addr(), counter)
	return pad, Cost{AESOps: 1}
}

// MakeOTPInto is MakeOTP writing the pad directly into dst (hot-path
// form for per-entry early OTP generation into a SecPB entry field).
// A matching prefetched pad is consumed instead of rederived; the
// charged cost is identical either way.
func (c *Controller) MakeOTPInto(dst *[addr.BlockBytes]byte, b addr.Block, counter uint64) Cost {
	c.otpIntoPrefetched(dst, b, counter)
	return Cost{AESOps: 1}
}

// MakeMAC computes the tag for ciphertext under the given counter.
func (c *Controller) MakeMAC(b addr.Block, cipher *[addr.BlockBytes]byte, counter uint64) ([crypto.MACSize]byte, Cost) {
	var tag [crypto.MACSize]byte
	c.eng.MACInto(&tag, cipher, b.Addr(), counter)
	return tag, Cost{Hashes: 1}
}

// MakeMACInto is MakeMAC writing the tag directly into dst (hot-path
// form for per-store early MAC regeneration into a SecPB entry field).
func (c *Controller) MakeMACInto(dst *[crypto.MACSize]byte, b addr.Block, cipher *[addr.BlockBytes]byte, counter uint64) Cost {
	c.eng.MACInto(dst, cipher, b.Addr(), counter)
	return Cost{Hashes: 1}
}

// ChargeBMTWalk accounts an eager BMT root update at allocation time
// (timing/energy only; the functional tree is updated when the entry
// drains so tree and storage counters stay consistent).
func (c *Controller) ChargeBMTWalk(b addr.Block) Cost {
	return c.walkBMT(b, false)
}

// pmWrite stages a block write through the ADR WPQ into the device.
func (c *Controller) pmWrite(b addr.Block, data *[addr.BlockBytes]byte) {
	c.wpq.Accept()
	c.pm.Write(b, *data)
	if c.sink != nil && !c.inReencrypt {
		c.sink.CrashPoint(crashpoint.WPQFlush, b)
	}
	// The device drains the queue continuously; retire lazily at half
	// occupancy to produce a realistic high-water profile.
	if c.wpq.Occupancy() > c.wpq.Capacity()/2 {
		c.wpq.Retire(1)
	}
}

// PersistInsecure writes plaintext directly (BBB baseline drain). The
// error is non-nil only on faulty media whose retry/remap path is
// exhausted (*MediaError).
func (c *Controller) PersistInsecure(b addr.Block, plain *[addr.BlockBytes]byte) (Cost, error) {
	cost := Cost{PMDataWrites: 1}
	if c.pm.Faulty() {
		extra, err := c.pmWriteFaulty(b, plain)
		cost.Add(extra)
		if err != nil {
			return cost, fmt.Errorf("nvm: persist block %#x: %w", b.Addr(), err)
		}
	} else {
		c.pmWrite(b, plain)
	}
	return cost, nil
}

// zeroPrepared is the shared empty PreparedMeta that PersistBlock
// substitutes when prepared metadata is absent (nil) or went stale.
// It is only ever read through.
var zeroPrepared PreparedMeta

// PersistBlock completes and persists the memory tuple for a draining
// entry: (ciphertext, counter, MAC, BMT root) all become durable and
// mutually consistent. Prepared elements are consumed instead of being
// recomputed — the cost difference between eager and lazy schemes.
// Both plain and prep are passed by pointer: drains run once per store
// at steady state, and the ~280 bytes of by-value argument copies were
// measurable in drain-heavy profiles. A nil prep means "nothing
// prepared"; PersistBlock never writes through prep.
func (c *Controller) PersistBlock(b addr.Block, plain *[addr.BlockBytes]byte, prep *PreparedMeta) (Cost, error) {
	if !c.secure {
		return c.PersistInsecure(b, plain)
	}
	if prep == nil {
		prep = &zeroPrepared
	}
	var cost Cost

	// Counter: apply the increment(s) to the storage counters.
	cost.Add(c.touchCtrCache(b, true))
	advance := prep.CounterAdvance
	if advance <= 0 {
		advance = 1
	}
	var newCtr uint64
	for i := 0; i < advance; i++ {
		if c.ctrs.WouldOverflow(b) {
			reCost, err := c.reencryptPage(b)
			cost.Add(reCost)
			if err != nil {
				return cost, err
			}
			// The overflow reset invalidates any prepared metadata.
			prep = &zeroPrepared
		}
		var overflow bool
		newCtr, overflow = c.ctrs.Increment(b)
		if overflow {
			return cost, fmt.Errorf("nvm: unhandled counter overflow for block %#x", b.Addr())
		}
	}
	if prep.CounterDone && prep.Counter != newCtr {
		// Prepared metadata went stale (page re-encrypted since
		// allocation, or the entry is being re-drained after a crash
		// interrupted its first drain past the counter increment).
		prep = &zeroPrepared
	}
	if c.sink != nil {
		c.sink.CrashPoint(crashpoint.CounterPersist, b)
	}

	if c.canStage() {
		c.stageTuple(b, plain, prep, newCtr, &cost)
		if prep.BMTDone {
			c.ctrs.Line(b.CounterLine()).PutBytes(c.lineBuf[:])
			c.tree.Update(b.CounterLine(), c.lineBuf[:])
		} else {
			cost.Add(c.walkBMT(b, true))
		}
		return cost, nil
	}

	// OTP and ciphertext.
	var ct [addr.BlockBytes]byte
	switch {
	case prep.CipherDone:
		ct = prep.Cipher
	case prep.OTPDone:
		crypto.XOR(&ct, plain, &prep.OTP)
	default:
		cost.Add(c.MakeOTPInto(&c.otpBuf, b, newCtr))
		crypto.XOR(&ct, plain, &c.otpBuf)
	}
	if c.pm.Faulty() {
		extra, werr := c.pmWriteFaulty(b, &ct)
		cost.Add(extra)
		if werr != nil {
			cost.PMDataWrites++
			return cost, fmt.Errorf("nvm: persist block %#x: %w", b.Addr(), werr)
		}
	} else {
		c.pmWrite(b, &ct)
	}
	cost.PMDataWrites++

	// MAC.
	var tag [crypto.MACSize]byte
	if prep.MACDone {
		tag = prep.MAC
	} else {
		var macCost Cost
		tag, macCost = c.MakeMAC(b, &ct, newCtr)
		cost.Add(macCost)
	}
	cost.Add(c.touchMACCache(b, true))
	c.macs.Put(b, tag)

	// BMT root: the functional tree always updates here (it must hash
	// the post-increment storage counters); the walk cost is charged
	// only if the scheme did not already pay it at allocation.
	if prep.BMTDone {
		c.ctrs.Line(b.CounterLine()).PutBytes(c.lineBuf[:])
		c.tree.Update(b.CounterLine(), c.lineBuf[:])
	} else {
		cost.Add(c.walkBMT(b, true))
	}
	return cost, nil
}

// canStage reports whether drain-tuple materialization may defer: only
// on the fast path — no crash sink (crash snapshots must observe the
// exact eager pipeline state), perfect media (the fault model's
// write/verify stream is per-write), and outside a page re-encryption.
func (c *Controller) canStage() bool {
	return c.sink == nil && !c.inReencrypt && !c.pm.Faulty()
}

// stageTuple is the deferred form of the eager OTP/cipher/MAC sections
// of PersistBlock. Everything the rest of the simulator can observe
// mid-run is done now, identically to the eager path: the Cost events
// (AESOps, Hashes, PMDataWrites), the WPQ accept/retire stream, the
// device write counter, the MAC-cache touch, and (when prepared) the
// final MAC value. Only the pad derivation, the XOR, and the MAC hash
// move to flushStaged — and a later drain of the same block before the
// flush overwrites the slot, which is where the win comes from: at
// steady state a hot working set re-drains into its staged slots and
// the physical hashing coalesces to once per flush epoch instead of
// once per drain. Every observation of PM or MAC state flushes first,
// so results are byte-identical to the eager pipeline.
func (c *Controller) stageTuple(b addr.Block, plain *[addr.BlockBytes]byte, prep *PreparedMeta, newCtr uint64, cost *Cost) {
	slot, _ := c.stagedIx.GetOrCreate(b.Index())
	var t *stagedTuple
	if *slot > 0 {
		t = &c.staged[*slot-1]
		c.stagedCoalesced++
		c.pm.StageBlock(b) // re-drain writes the device again
	} else {
		if len(c.staged) >= maxStagedTuples {
			c.flushStaged()
			slot, _ = c.stagedIx.GetOrCreate(b.Index())
		}
		c.staged = append(c.staged, stagedTuple{block: b, cell: c.pm.StageBlock(b)})
		t = &c.staged[len(c.staged)-1]
		*slot = int32(len(c.staged))
	}
	c.wpq.Accept()
	if c.wpq.Occupancy() > c.wpq.Capacity()/2 {
		c.wpq.Retire(1)
	}
	t.ctr = newCtr
	switch {
	case prep.CipherDone:
		*t.cell = prep.Cipher
		t.needOTP = false
	case prep.OTPDone:
		crypto.XOR(t.cell, plain, &prep.OTP)
		t.needOTP = false
	default:
		*t.cell = *plain
		t.needOTP = true
		cost.AESOps++
	}
	cost.PMDataWrites++
	if prep.MACDone {
		t.needMAC = false
		c.macs.Put(b, prep.MAC)
	} else {
		t.needMAC = true
		cost.Hashes++
	}
	cost.Add(c.touchMACCache(b, true))
}

// flushStaged materializes every staged drain tuple, in insertion
// order: derive the pad (or consume a prefetched one) and encrypt the
// cell in place, then compute all outstanding MACs in one batched pass
// straight into the MAC store's tag cells. No Cost events are charged
// here — stageTuple charged them at drain time.
func (c *Controller) flushStaged() {
	if len(c.staged) == 0 {
		return
	}
	c.stagedFlushes++
	reqs := c.macReqs[:0]
	for i := range c.staged {
		t := &c.staged[i]
		if t.needOTP {
			c.otpIntoPrefetched(&c.otpBuf, t.block, t.ctr)
			crypto.XOR(t.cell, t.cell, &c.otpBuf)
		}
		if t.needMAC {
			reqs = append(reqs, crypto.MACRequest{
				Tag: c.macs.PutSlot(t.block), CT: t.cell,
				Addr: t.block.Addr(), Ctr: t.ctr,
			})
		}
		*c.stagedIx.Lookup(t.block.Index()) = 0
	}
	c.eng.MACBatch(reqs)
	c.macReqs = reqs[:0]
	c.staged = c.staged[:0]
}

// FlushStaged materializes all deferred drain tuples. The engine calls
// it at end-of-run; any observation of PM or MAC state flushes
// implicitly, so forgetting a call can never change results.
func (c *Controller) FlushStaged() { c.flushStaged() }

// StagedStats returns (flush epochs, re-drains coalesced into an
// existing staged slot).
func (c *Controller) StagedStats() (flushes, coalesced uint64) {
	return c.stagedFlushes, c.stagedCoalesced
}

// otpIntoPrefetched derives the pad for (b, ctr), consuming a matching
// prefetched pad when one is present. Pads are pure functions of the
// (address, counter) pair, so a hit changes wall-clock only, never the
// pad; the caller charges the same one-AESOp cost either way. A staled
// prefetch (counter moved past the prediction) is dropped.
func (c *Controller) otpIntoPrefetched(dst *[addr.BlockBytes]byte, b addr.Block, ctr uint64) {
	if c.otpPre != nil {
		if p := c.otpPre.Lookup(b.Index()); p != nil && p.valid {
			p.valid = false
			if p.ctr == ctr {
				*dst = p.pad
				c.preHits++
				return
			}
		}
	}
	c.eng.OTPInto(dst, b.Addr(), ctr)
}

// InstallPrefetchedOTP deposits a speculatively derived pad for the
// predicted (b, ctr) drain. The engine's batch pipeline derives pads
// for the next batch's write set on a worker while the current batch
// drains; a wrong prediction is dropped at consumption time.
func (c *Controller) InstallPrefetchedOTP(b addr.Block, ctr uint64, pad *[addr.BlockBytes]byte) {
	if !c.secure {
		return
	}
	if c.otpPre == nil {
		c.otpPre = ptable.New[otpPrefetch]()
	}
	p, _ := c.otpPre.GetOrCreate(b.Index())
	p.ctr, p.pad, p.valid = ctr, *pad, true
	c.preInstalled++
}

// OTPPrefetchStats returns (pads installed, pads consumed).
func (c *Controller) OTPPrefetchStats() (installed, hits uint64) {
	return c.preInstalled, c.preHits
}

// reencryptPage re-encrypts every resident block of b's page: decrypt
// each under its current storage counter, reset happens in the caller's
// Increment, then re-encrypt under the new counters. Counter-mode pads
// die with their counter, so this is mandatory on overflow; the paper
// notes counter coalescing delays it.
func (c *Controller) reencryptPage(b addr.Block) (Cost, error) {
	c.flushStaged() // reads the page's resident ciphertext
	c.reencrypts++
	// A page re-encryption's intermediate plaintexts exist only in MC
	// latches; the battery completes it atomically, so no crash point
	// may split it (see the crashpoint package doc).
	c.inReencrypt = true
	defer func() { c.inReencrypt = false }()
	var cost Cost
	cost.PageReencrypt = true
	page := b.Page()
	firstIdx := page * addr.BlocksPerPage

	type saved struct {
		blk   addr.Block
		plain [addr.BlockBytes]byte
	}
	var plains []saved
	for i := uint64(0); i < addr.BlocksPerPage; i++ {
		blk := addr.FromIndex(firstIdx + i)
		ctOld, ok := c.pm.Peek(blk)
		if !ok {
			continue
		}
		oldCtr := c.ctrs.Value(blk)
		plain := c.eng.Decrypt(&ctOld, blk.Addr(), oldCtr)
		plains = append(plains, saved{blk, plain})
		cost.AESOps++
		cost.PMReads++
	}

	// Advance the major counter and reset minors.
	c.ctrs.ForceMajorRollover(page)

	for _, s := range plains {
		newCtr := c.ctrs.Value(s.blk)
		ct := c.eng.Encrypt(&s.plain, s.blk.Addr(), newCtr)
		if c.pm.Faulty() {
			extra, werr := c.pmWriteFaulty(s.blk, &ct)
			cost.Add(extra)
			if werr != nil {
				return cost, fmt.Errorf("nvm: re-encrypt page %d: %w", page, werr)
			}
		} else {
			c.pmWrite(s.blk, &ct)
		}
		c.macs.Put(s.blk, c.eng.MAC(&ct, s.blk.Addr(), newCtr))
		cost.AESOps++
		cost.Hashes++
		cost.PMDataWrites++
		cost.PMMetaWrites++
	}
	cost.Add(c.walkBMT(b, true))
	for _, hook := range c.onReencrypt {
		hook(page)
	}
	return cost, nil
}

// FetchBlock reads a block from PM on an LLC miss: decrypt under the
// storage counter, verify the MAC, and (non-speculatively or as the
// background check of speculative verification) verify the counter's
// BMT path. A verification error means the PM image is corrupt or
// stale — in a healthy run it never fires, and the attack experiments
// assert that tampering makes it fire.
func (c *Controller) FetchBlock(b addr.Block) ([addr.BlockBytes]byte, Cost, error) {
	c.flushStaged()
	if _, written := c.pm.Peek(b); !written {
		// Fresh media: never-written blocks read as zeros and carry no
		// tuple yet (memory is initialized lazily on first persist).
		return c.pm.Read(b), Cost{PMReads: 1}, nil
	}
	ct := c.pm.Read(b)
	cost := Cost{PMReads: 1}
	if !c.secure {
		return ct, cost, nil
	}
	cost.Add(c.touchCtrCache(b, false))
	ctr := c.ctrs.Value(b)
	plain := c.eng.Decrypt(&ct, b.Addr(), ctr)
	cost.AESOps++

	wantTag, macCost := c.MakeMAC(b, &ct, ctr)
	cost.Add(macCost)
	cost.Add(c.touchMACCache(b, false))
	if err := c.macs.Verify(b, wantTag); err != nil {
		return plain, cost, fmt.Errorf("nvm: integrity failure: %w", err)
	}
	cost.Add(c.walkBMT(b, false))
	page := b.CounterLine()
	c.ctrs.Line(page).PutBytes(c.lineBuf[:])
	if err := c.tree.Verify(page, c.lineBuf[:]); err != nil {
		return plain, cost, fmt.Errorf("nvm: integrity failure: %w", err)
	}
	return plain, cost, nil
}

// MetadataCaches exposes (ctr$, mac$, bmt$) for statistics; entries are
// nil when insecure.
func (c *Controller) MetadataCaches() (ctr, mac, bmtc *mem.Cache) {
	return c.ctrCache, c.macCache, c.bmtCache
}
