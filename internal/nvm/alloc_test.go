// Race-detector instrumentation itself allocates, so these exact-zero
// pins only hold on uninstrumented builds; ci.sh runs them in a
// dedicated non-race pass.
//go:build !race

package nvm

import (
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
)

// TestStagedDrainZeroAlloc pins the deferred drain machinery — the
// stageTuple fast path inside PersistBlock and the flushStaged
// materialization — to zero heap allocations at steady state: the
// staging list, counter lines and metadata pages all recycle.
func TestStagedDrainZeroAlloc(t *testing.T) {
	cfg := config.Default() // COBCM: full encrypt+MAC+BMT tuple
	c, err := NewController(cfg, []byte("alloc test key"))
	if err != nil {
		t.Fatal(err)
	}
	var data [addr.BlockBytes]byte
	const blocks = 512
	i := uint64(0)
	persist := func() {
		b := addr.Block((i % blocks) * addr.BlockBytes)
		data[0] = byte(i)
		if _, err := c.PersistBlock(b, &data, nil); err != nil {
			t.Fatal(err)
		}
		i++
		if i%16 == 0 {
			c.FlushStaged()
			c.CompleteSweep()
		}
	}
	for n := 0; n < 50_000; n++ {
		persist()
	}
	if avg := testing.AllocsPerRun(20_000, persist); avg != 0 {
		t.Fatalf("staged drain allocates: %g allocs/op at steady state", avg)
	}
}
