package nvm

import (
	"errors"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/fault"
)

func faultyConfig(wf, torn, rot float64) config.Config {
	cfg := config.Default()
	cfg.FaultWriteFailRate = wf
	cfg.FaultTornRate = torn
	cfg.FaultRotRate = rot
	cfg.FaultSeed = 0xDECAF
	return cfg
}

// TestRetryPathAbsorbsWriteFaults drives the secure persist path over
// media with frequent transient and torn write failures: every block
// must still land byte-exact (program-and-verify catches each fault),
// the retry counters must show the loop actually worked, and the extra
// cost must appear in the existing Cost events.
func TestRetryPathAbsorbsWriteFaults(t *testing.T) {
	cfg := faultyConfig(0.1, 0.1, 0)
	mc, err := NewController(cfg, []byte("media-test-key"))
	if err != nil {
		t.Fatal(err)
	}
	var plain [addr.BlockBytes]byte
	var extraWrites int
	for i := uint64(0); i < 400; i++ {
		b := addr.FromIndex(i * 3)
		plain[0], plain[1] = byte(i), byte(i>>8)
		cost, err := mc.PersistBlock(b, &plain, nil)
		if err != nil {
			t.Fatalf("persist %#x: %v", b.Addr(), err)
		}
		if cost.PMReads < 1 {
			t.Fatalf("write-verify read-back missing from cost: %+v", cost)
		}
		extraWrites += cost.PMDataWrites - 1
	}
	mc.CompleteSweep()
	st := mc.MediaStats()
	if st.WriteRetries == 0 || st.Faults.Total() == 0 {
		t.Fatalf("fault rates 10%%/10%% over 400 writes produced no retries: %+v", st)
	}
	if uint64(extraWrites) != st.WriteRetries {
		t.Errorf("retry writes not reflected in Cost: %d events vs %d retries", extraWrites, st.WriteRetries)
	}
	if st.BackoffCycles == 0 {
		t.Error("retries charged no backoff cycles")
	}
	// Every block must decrypt correctly despite the faulty writes.
	for i := uint64(0); i < 400; i++ {
		b := addr.FromIndex(i * 3)
		got, _, err := mc.FetchBlock(b)
		if err != nil {
			t.Fatalf("fetch %#x: %v", b.Addr(), err)
		}
		if got[0] != byte(i) || got[1] != byte(i>>8) {
			t.Fatalf("block %#x recovered wrong plaintext", b.Addr())
		}
	}
}

// TestPerfectMediaHasZeroMediaStats pins the byte-identity contract: with
// the fault model off, the checked write path is exactly the old one —
// no extra cost events, no retry state, no injector.
func TestPerfectMediaHasZeroMediaStats(t *testing.T) {
	mc, err := NewController(config.Default(), []byte("media-test-key"))
	if err != nil {
		t.Fatal(err)
	}
	var plain [addr.BlockBytes]byte
	for i := uint64(0); i < 50; i++ {
		if _, err := mc.PersistBlock(addr.FromIndex(i), &plain, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := mc.MediaStats(); st != (MediaStats{}) {
		t.Fatalf("perfect media accumulated media stats: %+v", st)
	}
	if mc.PM().Faulty() {
		t.Fatal("injector armed without fault config")
	}
}

// TestBadBlockRemapSurvivesSnapshot retires cells and checks the table
// rides through Snapshot/Restore with its checksum intact.
func TestBadBlockRemapSurvivesSnapshot(t *testing.T) {
	cfg := config.Default()
	mc, err := NewController(cfg, []byte("media-test-key"))
	if err != nil {
		t.Fatal(err)
	}
	var plain [addr.BlockBytes]byte
	for i := uint64(0); i < 8; i++ {
		if _, err := mc.PersistBlock(addr.FromIndex(i), &plain, nil); err != nil {
			t.Fatal(err)
		}
	}
	mc.CompleteSweep()
	mc.PM().Retire(addr.FromIndex(2))
	mc.PM().Retire(addr.FromIndex(5))

	pm := mc.PM().Snapshot()
	if pm.BadBlocks() != 2 {
		t.Fatalf("snapshot lost bad-block entries: %d", pm.BadBlocks())
	}
	mc2, err := Restore(cfg, []byte("media-test-key"), pm,
		mc.Counters().Snapshot(), mc.MACs().Snapshot(), mc.Tree().Snapshot())
	if err != nil {
		t.Fatalf("restore with valid bad-block table: %v", err)
	}
	if mc2.PM().BadBlocks() != 2 {
		t.Fatalf("restore lost bad-block entries: %d", mc2.PM().BadBlocks())
	}
}

// TestRestoreRejectsCorruptBadBlockTable is the satellite bugfix: a
// snapshot whose bad-block table no longer matches its checksum must be
// refused with a typed error, not adopted (or panicked over).
func TestRestoreRejectsCorruptBadBlockTable(t *testing.T) {
	cfg := config.Default()
	mc, err := NewController(cfg, []byte("media-test-key"))
	if err != nil {
		t.Fatal(err)
	}
	var plain [addr.BlockBytes]byte
	if _, err := mc.PersistBlock(addr.FromIndex(1), &plain, nil); err != nil {
		t.Fatal(err)
	}
	mc.CompleteSweep()
	mc.PM().Retire(addr.FromIndex(1))

	pm := mc.PM().Snapshot()
	if err := pm.CorruptBadBlockTable(); err != nil {
		t.Fatal(err)
	}
	_, err = Restore(cfg, []byte("media-test-key"), pm,
		mc.Counters().Snapshot(), mc.MACs().Snapshot(), mc.Tree().Snapshot())
	var corrupt *CorruptStateError
	if !errors.As(err, &corrupt) {
		t.Fatalf("Restore accepted a corrupt bad-block table: err=%v", err)
	}
	if corrupt.Component != "bad-block table" {
		t.Fatalf("wrong component: %q", corrupt.Component)
	}
}

// TestWriteAttemptTearsAndFails exercises the device-level fault
// outcomes directly: at rate 1 every attempt faults, and torn writes
// must latch a strict prefix.
func TestWriteAttemptTearsAndFails(t *testing.T) {
	pm := NewPM(1 << 20)
	pm.SetFault(fault.New(fault.Config{Seed: 5, TornRate: 0.999}))
	var line [addr.BlockBytes]byte
	for i := range line {
		line[i] = 0xAA
	}
	b := addr.FromIndex(7)
	pm.WriteAttempt(b, &line)
	if pm.VerifyWrite(b, &line) {
		t.Fatal("torn write at rate ~1 verified clean")
	}
	got, ok := pm.Peek(b)
	if !ok {
		t.Fatal("torn write latched nothing at all")
	}
	n := 0
	for n < addr.BlockBytes && got[n] == 0xAA {
		n++
	}
	if n == 0 || n == addr.BlockBytes {
		t.Fatalf("torn write latched %d bytes, want strict prefix", n)
	}
	for _, rest := range got[n:] {
		if rest != 0 {
			t.Fatal("torn write latched non-prefix bytes")
		}
	}

	pm2 := NewPM(1 << 20)
	pm2.SetFault(fault.New(fault.Config{Seed: 5, WriteFailRate: 0.999}))
	pm2.WriteAttempt(b, &line)
	if _, ok := pm2.Peek(b); ok {
		t.Fatal("failed write latched cells")
	}
}

// TestReadRotIsPersistent checks that a rot flip observed by Read is
// damage to the stored line, not noise on the returned copy.
func TestReadRotIsPersistent(t *testing.T) {
	pm := NewPM(1 << 20)
	pm.SetFault(fault.New(fault.Config{Seed: 11, RotRate: 0.999}))
	var line [addr.BlockBytes]byte
	b := addr.FromIndex(3)
	pm.Write(b, line)
	got := pm.Read(b)
	if got == line {
		t.Fatal("read at rot rate ~1 observed no flip")
	}
	stored, _ := pm.Peek(b)
	if stored != got {
		t.Fatal("rot flip was not persisted to the stored line")
	}
}
