package nvm

import (
	"strings"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/crypto"
)

func secureController(t *testing.T) *Controller {
	t.Helper()
	cfg := config.Default() // COBCM: secure
	c, err := NewController(cfg, []byte("test key"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func plainBlock(fill byte) [addr.BlockBytes]byte {
	var d [addr.BlockBytes]byte
	for i := range d {
		d[i] = fill
	}
	return d
}

// persist is PersistBlock without prepared metadata, taking the block
// by value for test-site convenience.
func persist(c *Controller, b addr.Block, data [addr.BlockBytes]byte) (Cost, error) {
	return c.PersistBlock(b, &data, nil)
}

func TestPMReadWrite(t *testing.T) {
	pm := NewPM(1 << 20)
	b := addr.BlockOf(0x1000)
	if d := pm.Read(b); d != ([addr.BlockBytes]byte{}) {
		t.Error("fresh PM not zero")
	}
	pm.Write(b, plainBlock(7))
	if d := pm.Read(b); d[0] != 7 {
		t.Error("readback mismatch")
	}
	r, w := pm.Stats()
	if r != 2 || w != 1 {
		t.Errorf("stats = %d/%d", r, w)
	}
	if pm.Len() != 1 || len(pm.Blocks()) != 1 {
		t.Error("block accounting wrong")
	}
}

func TestPMSnapshotAndTamper(t *testing.T) {
	pm := NewPM(1 << 20)
	b := addr.BlockOf(0x40)
	pm.Write(b, plainBlock(1))
	snap := pm.Snapshot()
	pm.Write(b, plainBlock(2))
	if d, _ := snap.Peek(b); d[0] != 1 {
		t.Error("snapshot mutated")
	}
	if err := snap.Tamper(b, 3); err != nil {
		t.Fatal(err)
	}
	if d, _ := snap.Peek(b); d[0] != 1^(1<<3) {
		t.Error("tamper did not flip bit 3")
	}
	if err := snap.Tamper(addr.BlockOf(0x9000), 0); err == nil {
		t.Error("tampering absent block succeeded")
	}
}

func TestInsecureControllerRoundTrip(t *testing.T) {
	cfg := config.Default().WithScheme(config.SchemeBBB)
	c, err := NewController(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Secure() {
		t.Fatal("BBB controller claims secure")
	}
	b := addr.BlockOf(0x2000)
	data := plainBlock(0xAA)
	cost, err := persist(c, b, data)
	if err != nil {
		t.Fatal(err)
	}
	if cost.PMDataWrites != 1 || cost.Hashes != 0 || cost.AESOps != 0 {
		t.Errorf("insecure persist cost = %+v", cost)
	}
	// Insecure PM holds plaintext.
	if d, _ := c.PM().Peek(b); d != data {
		t.Error("BBB did not store plaintext")
	}
	got, _, err := c.FetchBlock(b)
	if err != nil || got != data {
		t.Errorf("fetch = %v, err %v", got[0], err)
	}
}

func TestSecurePersistEncryptsAndVerifies(t *testing.T) {
	c := secureController(t)
	b := addr.BlockOf(0x3000)
	data := plainBlock(0x5C)
	cost, err := persist(c, b, data)
	if err != nil {
		t.Fatal(err)
	}
	// Ciphertext in PM must differ from plaintext.
	if ct, _ := c.PM().Peek(b); ct == data {
		t.Error("PM holds plaintext under secure scheme")
	}
	// Lazy drain pays for everything: OTP, MAC, full BMT walk.
	if cost.AESOps != 1 {
		t.Errorf("AES ops = %d, want 1", cost.AESOps)
	}
	if cost.BMTLevels != 8 {
		t.Errorf("BMT levels = %d, want 8", cost.BMTLevels)
	}
	if cost.Hashes != 8+1 {
		t.Errorf("hashes = %d, want 9 (8 BMT + MAC)", cost.Hashes)
	}
	got, _, err := c.FetchBlock(b)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if got != data {
		t.Error("decrypted plaintext mismatch")
	}
}

func TestPreparedMetaSkipsWork(t *testing.T) {
	c := secureController(t)
	b := addr.BlockOf(0x4000)
	data := plainBlock(0x11)

	// Simulate an eager scheme: precompute everything at allocation.
	ctr, _ := c.NextCounter(b)
	otp, _ := c.MakeOTP(b, ctr)
	var ct [addr.BlockBytes]byte
	crypto.XOR(&ct, &data, &otp)
	mac, _ := c.MakeMAC(b, &ct, ctr)
	chargeCost := c.ChargeBMTWalk(b)
	if chargeCost.BMTLevels != 8 {
		t.Errorf("eager BMT charge levels = %d", chargeCost.BMTLevels)
	}

	prep := PreparedMeta{
		CounterDone: true, Counter: ctr,
		OTPDone: true, OTP: otp,
		CipherDone: true, Cipher: ct,
		MACDone: true, MAC: mac,
		BMTDone: true,
	}
	cost, err := c.PersistBlock(b, &data, &prep)
	if err != nil {
		t.Fatal(err)
	}
	if cost.AESOps != 0 {
		t.Errorf("prepared drain ran AES %d times", cost.AESOps)
	}
	if cost.BMTLevels != 0 {
		t.Errorf("prepared drain walked %d BMT levels", cost.BMTLevels)
	}
	// MAC hash must not be recomputed; only possible hash cost is zero.
	if cost.Hashes != 0 {
		t.Errorf("prepared drain hashed %d times", cost.Hashes)
	}
	got, _, err := c.FetchBlock(b)
	if err != nil || got != data {
		t.Fatalf("fetch after prepared drain: %v err %v", got[0], err)
	}
}

func TestStalePreparedCounterIsDiscarded(t *testing.T) {
	c := secureController(t)
	b := addr.BlockOf(0x5000)
	data := plainBlock(0x22)
	// Prepared under a counter that will not match (simulate staleness).
	prep := PreparedMeta{CounterDone: true, Counter: 999, OTPDone: true}
	if _, err := c.PersistBlock(b, &data, &prep); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.FetchBlock(b)
	if err != nil || got != data {
		t.Errorf("stale prep produced wrong recovery: %v err %v", got[0], err)
	}
}

func TestRepeatedPersistBumpsCounter(t *testing.T) {
	c := secureController(t)
	b := addr.BlockOf(0x6000)
	var cts [3][addr.BlockBytes]byte
	for i := range cts {
		if _, err := persist(c, b, plainBlock(0x33)); err != nil {
			t.Fatal(err)
		}
		cts[i], _ = c.PM().Peek(b)
	}
	if cts[0] == cts[1] || cts[1] == cts[2] {
		t.Error("same plaintext re-encrypted to same ciphertext (counter not fresh)")
	}
	if got := c.Counters().Value(b); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
}

func TestFetchDetectsDataTamper(t *testing.T) {
	c := secureController(t)
	b := addr.BlockOf(0x7000)
	if _, err := persist(c, b, plainBlock(0x44)); err != nil {
		t.Fatal(err)
	}
	if err := c.PM().Tamper(b, 17); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchBlock(b); err == nil {
		t.Fatal("tampered ciphertext passed verification")
	} else if !strings.Contains(err.Error(), "integrity") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFetchDetectsCounterRollback(t *testing.T) {
	c := secureController(t)
	b := addr.BlockOf(0x8000)
	persist(c, b, plainBlock(1))
	oldCT, _ := c.PM().Peek(b)
	oldTag, _ := c.MACs().Get(b)
	persist(c, b, plainBlock(2))
	// Replay attack: restore old ciphertext+MAC and roll the counter
	// back so (data, counter, MAC) are mutually consistent.
	c.PM().Write(b, oldCT)
	c.MACs().Put(b, oldTag)
	if err := c.Counters().Tamper(b, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchBlock(b); err == nil {
		t.Fatal("rollback of consistent (data,counter,MAC) triple passed — BMT must catch this")
	}
}

func TestFetchFreshBlockIsZero(t *testing.T) {
	c := secureController(t)
	got, cost, err := c.FetchBlock(addr.BlockOf(0xABC000))
	if err != nil {
		t.Fatalf("fresh fetch errored: %v", err)
	}
	if got != ([addr.BlockBytes]byte{}) {
		t.Error("fresh block not zero")
	}
	if cost.PMReads != 1 {
		t.Errorf("fresh fetch cost = %+v", cost)
	}
}

func TestCounterOverflowReencryptsPage(t *testing.T) {
	c := secureController(t)
	b := addr.BlockOf(0x9000)
	sib := addr.BlockOf(0x9040)
	sibData := plainBlock(0x77)
	if _, err := persist(c, sib, sibData); err != nil {
		t.Fatal(err)
	}
	// Drive b's minor counter to overflow (255 persists reach max,
	// the 256th triggers re-encryption).
	var sawReencrypt bool
	c.SetReencryptHook(func(page uint64) {
		if page == b.Page() {
			sawReencrypt = true
		}
	})
	for i := 0; i < 256; i++ {
		if _, err := persist(c, b, plainBlock(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !sawReencrypt {
		t.Fatal("256 persists did not trigger page re-encryption")
	}
	if c.Reencrypts() != 1 {
		t.Errorf("reencrypts = %d", c.Reencrypts())
	}
	// The sibling must still decrypt and verify under its new counter.
	got, _, err := c.FetchBlock(sib)
	if err != nil {
		t.Fatalf("sibling fetch after re-encryption: %v", err)
	}
	if got != sibData {
		t.Error("sibling plaintext lost across page re-encryption")
	}
	// And b itself.
	got, _, err = c.FetchBlock(b)
	if err != nil || got != plainBlock(255) {
		t.Errorf("b fetch after overflow: err %v", err)
	}
}

func TestCtrCacheHitsOnLocality(t *testing.T) {
	c := secureController(t)
	b1 := addr.BlockOf(0xA000)
	b2 := addr.BlockOf(0xA040) // same page -> same counter line
	persist(c, b1, plainBlock(1))
	cost, _ := persist(c, b2, plainBlock(2))
	if !cost.CtrCacheHit {
		t.Error("second block of same page missed counter cache")
	}
}

func TestMetadataCachesExposed(t *testing.T) {
	c := secureController(t)
	ctr, mac, bmtc := c.MetadataCaches()
	if ctr == nil || mac == nil || bmtc == nil {
		t.Fatal("metadata caches nil on secure controller")
	}
	cfg := config.Default().WithScheme(config.SchemeBBB)
	ic, _ := NewController(cfg, nil)
	ctr, _, _ = ic.MetadataCaches()
	if ctr != nil {
		t.Error("insecure controller has metadata caches")
	}
}

func BenchmarkPersistBlockLazy(b *testing.B) {
	cfg := config.Default()
	c, _ := NewController(cfg, []byte("k"))
	data := plainBlock(0x5C)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := persist(c, addr.FromIndex(uint64(i%10000)), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchBlock(b *testing.B) {
	cfg := config.Default()
	c, _ := NewController(cfg, []byte("k"))
	data := plainBlock(0x5C)
	for i := 0; i < 1000; i++ {
		persist(c, addr.FromIndex(uint64(i)), data)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.FetchBlock(addr.FromIndex(uint64(i % 1000))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUnifiedMDC(t *testing.T) {
	cfg := config.Default()
	cfg.UnifiedMDC = true
	c, err := NewController(cfg, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	ctr, mac, bmtc := c.MetadataCaches()
	if ctr != mac || mac != bmtc {
		t.Fatal("unified MDC did not share one cache")
	}
	// The full data path still works and verifies.
	b := addr.BlockOf(0xB000)
	if _, err := persist(c, b, plainBlock(0x3C)); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.FetchBlock(b)
	if err != nil || got != plainBlock(0x3C) {
		t.Fatalf("unified MDC round trip: err=%v", err)
	}
}

func TestUnifiedMDCKeysDoNotAlias(t *testing.T) {
	// Counter line 0, MAC line 0 and BMT leaf 0 all have base pseudo-
	// address 0: with a unified cache they must still occupy distinct
	// lines (type tags). Touch all three for block 0 and ensure the
	// second round hits for each.
	cfg := config.Default()
	cfg.UnifiedMDC = true
	c, err := NewController(cfg, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	b := addr.BlockOf(0)
	if _, err := persist(c, b, plainBlock(1)); err != nil {
		t.Fatal(err)
	}
	// Second persist: counter and MAC lines must now hit.
	cost, err := persist(c, b, plainBlock(2))
	if err != nil {
		t.Fatal(err)
	}
	if !cost.CtrCacheHit {
		t.Error("counter line evicted/aliased in unified MDC")
	}
	if cost.BMTNodeFetch != 0 {
		t.Error("BMT path re-fetched despite unified MDC residency")
	}
}
