package nvm

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/crashpoint"
	"secpb/internal/fault"
)

// MediaError reports a block whose write could not be made durable even
// after the bounded retry loop and a spare-cell remap: the device is out
// of usable cells at that address.
type MediaError struct {
	Block    addr.Block
	Attempts int // total write attempts across the original and spare cell
}

func (e *MediaError) Error() string {
	return fmt.Sprintf("nvm: media failure at block %#x after %d write attempts (remap exhausted)",
		e.Block.Addr(), e.Attempts)
}

// CorruptStateError reports NV state whose integrity metadata failed
// validation while being restored (bad-block table, late-work journal).
// It is a typed error so recovery policy can distinguish "the snapshot
// itself is damaged" from ordinary recovery findings.
type CorruptStateError struct {
	Component string
	Detail    string
}

func (e *CorruptStateError) Error() string {
	return fmt.Sprintf("nvm: corrupt %s: %s", e.Component, e.Detail)
}

// MediaStats aggregates the controller's degraded-mode activity: the
// program-and-verify retry loop, bad-block remaps, and the fault
// injector's own event counts. All zeros on perfect media.
type MediaStats struct {
	WriteRetries  uint64 // write attempts beyond each first try
	Remaps        uint64 // blocks retired to spare cells
	BackoffCycles uint64 // deterministic backoff stalls charged before retries
	BadBlocks     int    // current bad-block table size
	Faults        fault.Counts
}

// Add accumulates another controller's counters into s — the cross-core
// aggregation engine.System uses to report whole-socket media activity
// over per-core memory-channel shards.
func (s *MediaStats) Add(o MediaStats) {
	s.WriteRetries += o.WriteRetries
	s.Remaps += o.Remaps
	s.BackoffCycles += o.BackoffCycles
	s.BadBlocks += o.BadBlocks
	s.Faults.WriteFails += o.Faults.WriteFails
	s.Faults.TornWrites += o.Faults.TornWrites
	s.Faults.RotFlips += o.Faults.RotFlips
}

// MediaStats returns the controller's degraded-mode counters.
func (c *Controller) MediaStats() MediaStats {
	s := c.media
	s.BadBlocks = c.pm.BadBlocks()
	s.Faults = c.pm.Fault().Counts()
	return s
}

// backoffCycles is the deterministic exponential backoff before retry n
// (0-based): base, 2x, 4x, ... capped at 64x base, so retry schedules
// are reproducible cycle for cycle.
func backoffCycles(base uint64, n int) uint64 {
	if n > 6 {
		n = 6
	}
	return base << n
}

// maxRemapsPerWrite bounds how many spare cells one write may consume
// before the controller reports a MediaError.
const maxRemapsPerWrite = 1

// pmWriteFaulty is pmWrite hardened for faulty media: each attempt is
// followed by a write-verify read-back (program-and-verify), failed
// attempts retry up to cfg.MaxWriteRetries times with deterministic
// exponential backoff, and a line that exhausts its retries is marked
// bad and remapped to a spare cell before one final retry round. The
// returned Cost carries only the extra events (retry writes, verify
// reads). Callers branch on pm.Faulty() and use plain pmWrite when no
// injector is armed — keeping the perfect-media machine code (and its
// artifacts) identical to the unhardened path.
func (c *Controller) pmWriteFaulty(b addr.Block, data *[addr.BlockBytes]byte) (Cost, error) {
	var extra Cost
	c.wpq.Accept()
	retries := c.cfg.MaxWriteRetries
	if retries < 0 {
		retries = 0
	}
	ok := false
	for remaps := 0; ; remaps++ {
		for attempt := 0; attempt <= retries; attempt++ {
			if attempt > 0 || remaps > 0 {
				extra.PMDataWrites++ // the retried write itself
				c.media.WriteRetries++
				n := attempt
				if n > 0 {
					n--
				}
				c.media.BackoffCycles += backoffCycles(c.cfg.PMWriteCycles(), n)
			}
			c.pm.WriteAttempt(b, data)
			extra.PMReads++ // write-verify read-back
			if c.pm.VerifyWrite(b, data) {
				ok = true
				break
			}
		}
		if ok || remaps >= maxRemapsPerWrite {
			break
		}
		c.pm.Retire(b)
		c.media.Remaps++
	}
	if !ok {
		return extra, &MediaError{Block: b, Attempts: (retries + 1) * (maxRemapsPerWrite + 1)}
	}
	if c.sink != nil && !c.inReencrypt {
		c.sink.CrashPoint(crashpoint.WPQFlush, b)
	}
	if c.wpq.Occupancy() > c.wpq.Capacity()/2 {
		c.wpq.Retire(1)
	}
	return extra, nil
}
