// Package nvm models the persistent memory device and the memory
// controller that fronts it: the ADR write-pending queue, the crypto
// engine, the authoritative security-metadata state (split counters,
// MACs, BMT), and the volatile metadata caches.
//
// The device is functional — it stores real (ciphertext) bytes — so
// crash-recovery and tamper experiments operate on real state, while
// every operation also reports an event Cost the timing and energy
// models consume.
package nvm

import (
	"fmt"

	"secpb/internal/addr"
)

// PM is the byte-addressable persistent memory device, tracked at block
// granularity. Contents are whatever the controller writes: ciphertext
// under secure schemes, plaintext under the insecure baseline.
type PM struct {
	sizeBytes uint64
	data      map[addr.Block][addr.BlockBytes]byte
	reads     uint64
	writes    uint64
}

// NewPM returns an empty device of the given size.
func NewPM(sizeBytes uint64) *PM {
	return &PM{
		sizeBytes: sizeBytes,
		data:      make(map[addr.Block][addr.BlockBytes]byte),
	}
}

// Write stores a block.
func (p *PM) Write(b addr.Block, data [addr.BlockBytes]byte) {
	p.data[b] = data
	p.writes++
}

// Read loads a block; absent blocks read as zero (fresh media).
func (p *PM) Read(b addr.Block) [addr.BlockBytes]byte {
	p.reads++
	return p.data[b]
}

// Peek returns the block without touching access counters, and whether
// it was ever written.
func (p *PM) Peek(b addr.Block) ([addr.BlockBytes]byte, bool) {
	d, ok := p.data[b]
	return d, ok
}

// Blocks returns the addresses of all written blocks (unordered).
func (p *PM) Blocks() []addr.Block {
	out := make([]addr.Block, 0, len(p.data))
	for b := range p.data {
		out = append(out, b)
	}
	return out
}

// Len returns the number of written blocks.
func (p *PM) Len() int { return len(p.data) }

// Stats returns cumulative (reads, writes).
func (p *PM) Stats() (reads, writes uint64) { return p.reads, p.writes }

// Snapshot deep-copies the device image.
func (p *PM) Snapshot() *PM {
	cp := NewPM(p.sizeBytes)
	cp.reads, cp.writes = p.reads, p.writes
	for b, d := range p.data {
		cp.data[b] = d
	}
	return cp
}

// Tamper flips one bit of a stored block (attack primitive).
func (p *PM) Tamper(b addr.Block, bit int) error {
	d, ok := p.data[b]
	if !ok {
		return fmt.Errorf("nvm: block %#x not present", b.Addr())
	}
	d[(bit/8)%addr.BlockBytes] ^= 1 << (bit % 8)
	p.data[b] = d
	return nil
}
