// Package nvm models the persistent memory device and the memory
// controller that fronts it: the ADR write-pending queue, the crypto
// engine, the authoritative security-metadata state (split counters,
// MACs, BMT), and the volatile metadata caches.
//
// The device is functional — it stores real (ciphertext) bytes — so
// crash-recovery and tamper experiments operate on real state, while
// every operation also reports an event Cost the timing and energy
// models consume.
package nvm

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/fault"
	"secpb/internal/ptable"
)

// PM is the byte-addressable persistent memory device, tracked at block
// granularity. Contents are whatever the controller writes: ciphertext
// under secure schemes, plaintext under the insecure baseline. The image
// lives in a paged direct-index table keyed by block index, so the
// drain-path write and fetch-path read are radix lookups, and traversal
// (Blocks, Snapshot) is deterministic in address order.
//
// The device optionally carries a media-fault injector (SetFault) and a
// bad-block table. The table maps logical block indices to spare
// physical cells past the device's addressable range: data stays keyed
// by logical index (so Blocks/Snapshot traversal is unchanged), and the
// remap only redirects which physical cell the fault model judges. The
// table is part of the NV image — Snapshot carries it, and its checksum
// is validated on Restore.
type PM struct {
	sizeBytes uint64
	data      *ptable.Table[[addr.BlockBytes]byte]
	reads     uint64
	writes    uint64

	flt    *fault.Injector       // nil = perfect media
	remap  *ptable.Table[uint64] // logical block index -> spare physical cell
	spares uint64                // spare cells handed out
	badSum uint64                // FNV-1a over the remap table contents
}

// NewPM returns an empty device of the given size.
func NewPM(sizeBytes uint64) *PM {
	return &PM{
		sizeBytes: sizeBytes,
		data:      ptable.New[[addr.BlockBytes]byte](),
	}
}

// SetFault arms (or, with nil, disarms) the media-fault injector.
func (p *PM) SetFault(in *fault.Injector) { p.flt = in }

// Fault returns the armed injector, nil for perfect media.
func (p *PM) Fault() *fault.Injector { return p.flt }

// Faulty reports whether a fault injector is armed.
func (p *PM) Faulty() bool { return p.flt != nil }

// phys returns the physical cell index backing a logical block index:
// itself, unless the block was remapped to a spare.
func (p *PM) phys(idx uint64) uint64 {
	if p.remap == nil {
		return idx
	}
	if s := p.remap.Lookup(idx); s != nil {
		return *s
	}
	return idx
}

// Write stores a block faithfully, bypassing the fault model. The
// controller uses it on the fault-free fast path; harnesses use it to
// build images directly.
func (p *PM) Write(b addr.Block, data [addr.BlockBytes]byte) {
	blk, _ := p.data.GetOrCreate(b.Index())
	*blk = data
	p.writes++
}

// StageBlock returns the device cell for b (creating it) and counts one
// write, without storing content — the zero-copy form of Write: the
// caller fills the cell in place. The pointer stays valid for the
// device's lifetime. Only the controller's staged-drain path (which
// guarantees the cell is materialized before any observation) uses it.
func (p *PM) StageBlock(b addr.Block) *[addr.BlockBytes]byte {
	blk, _ := p.data.GetOrCreate(b.Index())
	p.writes++
	return blk
}

// WriteAttempt stores a block through the fault model: the write may
// complete, silently fail (old contents remain), or tear after a prefix
// of the line. Callers pairing it with VerifyWrite implement the
// program-and-verify loop real PCM controllers use. With no injector
// armed it is exactly Write.
func (p *PM) WriteAttempt(b addr.Block, data *[addr.BlockBytes]byte) {
	idx := b.Index()
	if p.flt == nil {
		p.Write(b, *data)
		return
	}
	p.writes++
	ev, faulted := p.flt.OnWrite(p.phys(idx))
	if !faulted {
		blk, _ := p.data.GetOrCreate(idx)
		*blk = *data
		return
	}
	switch ev.Kind {
	case fault.WriteFail:
		// No cell latched; previous contents (or fresh zeros) remain.
	case fault.TornWrite:
		blk, _ := p.data.GetOrCreate(idx)
		copy(blk[:ev.Bytes], data[:ev.Bytes])
	}
}

// VerifyWrite is the controller's write-verify read-back: it reports
// whether the stored line matches want, without disturbing the fault
// stream (an immediate read-back leaves no window for rot) or the access
// counters (the caller accounts the read explicitly).
func (p *PM) VerifyWrite(b addr.Block, want *[addr.BlockBytes]byte) bool {
	blk := p.data.Lookup(b.Index())
	return blk != nil && *blk == *want
}

// Retire marks the logical block's current physical cell bad and remaps
// the block to a fresh spare cell past the addressable range. The stored
// contents are untouched (the caller rewrites them through the new
// cell); the bad-block table and its checksum update in place.
func (p *PM) Retire(b addr.Block) {
	if p.remap == nil {
		p.remap = ptable.New[uint64]()
	}
	spare := p.sizeBytes>>addr.BlockShift + p.spares
	p.spares++
	p.remap.Put(b.Index(), spare)
	p.badSum = p.badBlockSum()
}

// BadBlocks returns the number of remapped (retired) blocks.
func (p *PM) BadBlocks() int {
	if p.remap == nil {
		return 0
	}
	return p.remap.Len()
}

// badBlockSum hashes the remap table (FNV-1a over index/spare pairs in
// ascending order, plus the spare cursor).
func (p *PM) badBlockSum() uint64 {
	sum := fnvOffset
	var buf [16]byte
	if p.remap != nil {
		p.remap.Range(func(idx uint64, spare *uint64) bool {
			putU64(buf[:8], idx)
			putU64(buf[8:], *spare)
			sum = fnvAdd(sum, buf[:])
			return true
		})
	}
	putU64(buf[:8], p.spares)
	sum = fnvAdd(sum, buf[:8])
	return sum
}

// CheckBadBlocks validates the bad-block table against its stored
// checksum; Restore calls it so a corrupted snapshot surfaces as a typed
// error instead of silently redirecting blocks.
func (p *PM) CheckBadBlocks() error {
	if p.badSum == 0 && p.remap == nil && p.spares == 0 {
		return nil // never-retired device; the sum was never sealed
	}
	if got := p.badBlockSum(); got != p.badSum {
		return &CorruptStateError{
			Component: "bad-block table",
			Detail:    fmt.Sprintf("checksum %#x does not match stored %#x over %d entries", got, p.badSum, p.BadBlocks()),
		}
	}
	return nil
}

// CorruptBadBlockTable damages the remap table without resealing its
// checksum (test hook for the Restore validation path).
func (p *PM) CorruptBadBlockTable() error {
	if p.remap == nil || p.remap.Len() == 0 {
		return fmt.Errorf("nvm: no bad-block entries to corrupt")
	}
	p.remap.Range(func(idx uint64, spare *uint64) bool {
		*spare ^= 1
		return false
	})
	return nil
}

// Read loads a block; absent blocks read as zero (fresh media). With a
// fault injector armed, the read may observe a fresh bit-rot flip; rot
// is persistent — the stored line is what drifted, so the flip is
// applied to the device image, not just the returned copy.
func (p *PM) Read(b addr.Block) [addr.BlockBytes]byte {
	p.reads++
	blk := p.data.Lookup(b.Index())
	if blk == nil {
		return [addr.BlockBytes]byte{}
	}
	if p.flt != nil {
		if ev, rotted := p.flt.OnRead(p.phys(b.Index())); rotted {
			blk[ev.Bit/8] ^= 1 << (ev.Bit % 8)
		}
	}
	return *blk
}

// Decay runs one at-rest bit-rot pass over every written block (the
// dead time between a crash and recovery, when no controller is
// scrubbing), returning the blocks that rotted in address order. A
// device with no injector (or zero rot rate) never decays.
func (p *PM) Decay() []addr.Block {
	if p.flt == nil {
		return nil
	}
	var rotted []addr.Block
	p.data.Range(func(idx uint64, blk *[addr.BlockBytes]byte) bool {
		if ev, ok := p.flt.Decay(p.phys(idx)); ok {
			blk[ev.Bit/8] ^= 1 << (ev.Bit % 8)
			rotted = append(rotted, addr.FromIndex(idx))
		}
		return true
	})
	return rotted
}

// Peek returns the block without touching access counters or the fault
// stream, and whether it was ever written.
func (p *PM) Peek(b addr.Block) ([addr.BlockBytes]byte, bool) {
	if blk := p.data.Lookup(b.Index()); blk != nil {
		return *blk, true
	}
	return [addr.BlockBytes]byte{}, false
}

// Blocks returns the addresses of all written blocks in ascending
// address order.
func (p *PM) Blocks() []addr.Block {
	out := make([]addr.Block, 0, p.data.Len())
	p.data.Range(func(idx uint64, _ *[addr.BlockBytes]byte) bool {
		out = append(out, addr.FromIndex(idx))
		return true
	})
	return out
}

// Len returns the number of written blocks.
func (p *PM) Len() int { return p.data.Len() }

// Stats returns cumulative (reads, writes).
func (p *PM) Stats() (reads, writes uint64) { return p.reads, p.writes }

// Snapshot deep-copies the device image, including the bad-block table
// and its checksum (both are NV state). The fault injector is not
// carried over: a snapshot is an inert captured image, and sharing the
// live injector's decision stream would make the donor device's future
// faults depend on what the snapshot's consumer reads. Re-arm with
// SetFault if the restored device should keep degrading.
func (p *PM) Snapshot() *PM {
	cp := NewPM(p.sizeBytes)
	cp.reads, cp.writes = p.reads, p.writes
	cp.data = p.data.Clone()
	if p.remap != nil {
		cp.remap = p.remap.Clone()
	}
	cp.spares = p.spares
	cp.badSum = p.badSum
	return cp
}

// Tamper flips one bit of a stored block (attack primitive).
func (p *PM) Tamper(b addr.Block, bit int) error {
	blk := p.data.Lookup(b.Index())
	if blk == nil {
		return fmt.Errorf("nvm: block %#x not present", b.Addr())
	}
	blk[(bit/8)%addr.BlockBytes] ^= 1 << (bit % 8)
	return nil
}

// FNV-1a, inlined so NV-image checksums stay dependency-free and the
// hash layout is explicit (little-endian u64 fields).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvAdd(h uint64, p []byte) uint64 {
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

func putU64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}
