// Package nvm models the persistent memory device and the memory
// controller that fronts it: the ADR write-pending queue, the crypto
// engine, the authoritative security-metadata state (split counters,
// MACs, BMT), and the volatile metadata caches.
//
// The device is functional — it stores real (ciphertext) bytes — so
// crash-recovery and tamper experiments operate on real state, while
// every operation also reports an event Cost the timing and energy
// models consume.
package nvm

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/ptable"
)

// PM is the byte-addressable persistent memory device, tracked at block
// granularity. Contents are whatever the controller writes: ciphertext
// under secure schemes, plaintext under the insecure baseline. The image
// lives in a paged direct-index table keyed by block index, so the
// drain-path write and fetch-path read are radix lookups, and traversal
// (Blocks, Snapshot) is deterministic in address order.
type PM struct {
	sizeBytes uint64
	data      *ptable.Table[[addr.BlockBytes]byte]
	reads     uint64
	writes    uint64
}

// NewPM returns an empty device of the given size.
func NewPM(sizeBytes uint64) *PM {
	return &PM{
		sizeBytes: sizeBytes,
		data:      ptable.New[[addr.BlockBytes]byte](),
	}
}

// Write stores a block.
func (p *PM) Write(b addr.Block, data [addr.BlockBytes]byte) {
	blk, _ := p.data.GetOrCreate(b.Index())
	*blk = data
	p.writes++
}

// Read loads a block; absent blocks read as zero (fresh media).
func (p *PM) Read(b addr.Block) [addr.BlockBytes]byte {
	p.reads++
	if blk := p.data.Lookup(b.Index()); blk != nil {
		return *blk
	}
	return [addr.BlockBytes]byte{}
}

// Peek returns the block without touching access counters, and whether
// it was ever written.
func (p *PM) Peek(b addr.Block) ([addr.BlockBytes]byte, bool) {
	if blk := p.data.Lookup(b.Index()); blk != nil {
		return *blk, true
	}
	return [addr.BlockBytes]byte{}, false
}

// Blocks returns the addresses of all written blocks in ascending
// address order.
func (p *PM) Blocks() []addr.Block {
	out := make([]addr.Block, 0, p.data.Len())
	p.data.Range(func(idx uint64, _ *[addr.BlockBytes]byte) bool {
		out = append(out, addr.FromIndex(idx))
		return true
	})
	return out
}

// Len returns the number of written blocks.
func (p *PM) Len() int { return p.data.Len() }

// Stats returns cumulative (reads, writes).
func (p *PM) Stats() (reads, writes uint64) { return p.reads, p.writes }

// Snapshot deep-copies the device image.
func (p *PM) Snapshot() *PM {
	cp := NewPM(p.sizeBytes)
	cp.reads, cp.writes = p.reads, p.writes
	cp.data = p.data.Clone()
	return cp
}

// Tamper flips one bit of a stored block (attack primitive).
func (p *PM) Tamper(b addr.Block, bit int) error {
	blk := p.data.Lookup(b.Index())
	if blk == nil {
		return fmt.Errorf("nvm: block %#x not present", b.Addr())
	}
	blk[(bit/8)%addr.BlockBytes] ^= 1 << (bit % 8)
	return nil
}
