package nvm

import (
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
)

func TestWPQBasics(t *testing.T) {
	w := NewWPQ(4)
	for i := 0; i < 3; i++ {
		w.Accept()
	}
	if w.Occupancy() != 3 || w.Capacity() != 4 {
		t.Fatalf("occupancy/capacity = %d/%d", w.Occupancy(), w.Capacity())
	}
	w.Retire(2)
	if w.Occupancy() != 1 {
		t.Errorf("after retire occupancy = %d", w.Occupancy())
	}
	w.Retire(10) // over-retire clamps
	if w.Occupancy() != 0 {
		t.Errorf("over-retire occupancy = %d", w.Occupancy())
	}
	acc, ret, hw, full := w.Stats()
	if acc != 3 || ret != 3 || hw != 3 || full != 0 {
		t.Errorf("stats = %d/%d/%d/%d", acc, ret, hw, full)
	}
}

func TestWPQBackpressure(t *testing.T) {
	w := NewWPQ(2)
	for i := 0; i < 5; i++ {
		w.Accept()
	}
	_, _, _, full := w.Stats()
	if full == 0 {
		t.Error("overflow did not register backpressure")
	}
	if w.Occupancy() > 2 {
		t.Errorf("occupancy %d exceeds capacity", w.Occupancy())
	}
}

func TestWPQZeroEntries(t *testing.T) {
	if NewWPQ(0).Capacity() != 1 {
		t.Error("zero-entry WPQ not clamped")
	}
}

func TestControllerRoutesWritesThroughWPQ(t *testing.T) {
	c := secureController(t)
	for i := uint64(0); i < 10; i++ {
		if _, err := persist(c, addr.FromIndex(i), plainBlock(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	acc, _, hw, _ := c.WPQStats()
	if acc != 10 {
		t.Errorf("WPQ accepted %d writes, want 10", acc)
	}
	if hw == 0 || hw > config.Default().WPQEntries {
		t.Errorf("high water = %d", hw)
	}
}
