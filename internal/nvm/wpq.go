package nvm

// WPQ models the ADR write-pending queue occupancy at the memory
// controller (Table I: 32 entries). Writes accepted into the WPQ are in
// the persistence domain — ADR guarantees they reach PM on power loss —
// so the functional store (PM) is updated at acceptance; the WPQ model
// tracks occupancy and backpressure statistics that the drain pipeline's
// bandwidth model reflects in timing.
type WPQ struct {
	capacity  int
	occupied  int
	accepted  uint64
	retired   uint64
	highWater int
	fullHits  uint64 // accepts that found the queue full (backpressure)
}

// NewWPQ returns a queue with the given entry count.
func NewWPQ(entries int) *WPQ {
	if entries <= 0 {
		entries = 1
	}
	return &WPQ{capacity: entries}
}

// Accept records one 64B write entering the WPQ. If the queue is full,
// the oldest write retires first (the device absorbs it) and the event
// counts as backpressure.
func (w *WPQ) Accept() {
	if w.occupied >= w.capacity {
		w.fullHits++
		w.occupied--
		w.retired++
	}
	w.occupied++
	w.accepted++
	if w.occupied > w.highWater {
		w.highWater = w.occupied
	}
}

// Retire records n writes leaving the WPQ for the PM device.
func (w *WPQ) Retire(n int) {
	if n > w.occupied {
		n = w.occupied
	}
	w.occupied -= n
	w.retired += uint64(n)
}

// Occupancy returns the current entry count.
func (w *WPQ) Occupancy() int { return w.occupied }

// Capacity returns the configured entry count.
func (w *WPQ) Capacity() int { return w.capacity }

// Stats returns (accepted, retired, high-water mark, full-queue hits).
func (w *WPQ) Stats() (accepted, retired uint64, highWater int, fullHits uint64) {
	return w.accepted, w.retired, w.highWater, w.fullHits
}
