package analytic

import (
	"math"
	"testing"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/workload"
)

func TestPaperFormulaReproducesSectionVIB(t *testing.T) {
	// The paper: gamess, PPTI 47.4, NWPE 2.1, 8-level BMT at 40 cycles,
	// MAC 40 cycles -> estimated IPC 0.11.
	m := New(config.Default())
	ipc, err := m.PaperNoGapIPC(Inputs{PPTI: 47.4, NWPE: 2.1, BaseCPI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ipc-0.11) > 0.005 {
		t.Errorf("paper formula IPC = %.3f, want 0.11", ipc)
	}
}

func TestAcceptCyclesOrdering(t *testing.T) {
	// Eager schemes must consume strictly more acceptance cycles.
	m := New(config.Default())
	in := Inputs{PPTI: 30, NWPE: 6, BaseCPI: 0.6}
	order := []config.Scheme{
		config.SchemeCOBCM, config.SchemeOBCM, config.SchemeBCM,
		config.SchemeCM, config.SchemeM, config.SchemeNoGap,
	}
	prev := -1.0
	for _, s := range order {
		c, err := m.AcceptCyclesPerKilo(s, in)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Errorf("%v acceptance %.0f not above predecessor %.0f", s, c, prev)
		}
		prev = c
	}
}

func TestModelBoundsSimulator(t *testing.T) {
	// Cross-validation (the paper's own methodology, VI.B): for each
	// scheme, the simulated slowdown must lie between the perfect-
	// overlap (overlap=0) and fully-serial (overlap=1) model envelopes,
	// within a modelling margin.
	prof, err := workload.ByName("gamess")
	if err != nil {
		t.Fatal(err)
	}
	const ops = 60000
	base, err := engine.RunBenchmark(config.Default().WithScheme(config.SchemeBBB), prof, ops)
	if err != nil {
		t.Fatal(err)
	}
	m := New(config.Default())
	for _, s := range []config.Scheme{config.SchemeCM, config.SchemeNoGap, config.SchemeBCM} {
		res, err := engine.RunBenchmark(config.Default().WithScheme(s), prof, ops)
		if err != nil {
			t.Fatal(err)
		}
		measured := float64(res.Cycles) / float64(base.Cycles)
		in := Inputs{
			PPTI:    res.PPTI,
			NWPE:    res.NWPE,
			BaseCPI: 1 / base.IPC,
		}
		lower, err := m.Slowdown(s, in, 0)
		if err != nil {
			t.Fatal(err)
		}
		upper, err := m.Slowdown(s, in, 1)
		if err != nil {
			t.Fatal(err)
		}
		const margin = 0.25
		if measured < lower*(1-margin) || measured > upper*(1+margin) {
			t.Errorf("%v: simulated %.2fx outside model envelope [%.2f, %.2f]",
				s, measured, lower, upper)
		}
	}
}

func TestCOBCMModelNearBaseline(t *testing.T) {
	m := New(config.Default())
	in := Inputs{PPTI: 25, NWPE: 8, BaseCPI: 0.7}
	slow, err := m.Slowdown(config.SchemeCOBCM, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow != 1.0 {
		t.Errorf("COBCM perfect-overlap slowdown = %.3f, want 1.0 (port cost hidden)", slow)
	}
}

func TestBMFHeightEntersModel(t *testing.T) {
	cfg := config.Default()
	full := New(cfg)
	cfg.BMFMode = config.BMFDynamic
	dbmf := New(cfg)
	in := Inputs{PPTI: 30, NWPE: 4, BaseCPI: 0.6}
	cFull, _ := full.AcceptCyclesPerKilo(config.SchemeCM, in)
	cDBMF, _ := dbmf.AcceptCyclesPerKilo(config.SchemeCM, in)
	if cDBMF >= cFull {
		t.Errorf("DBMF acceptance %.0f not below full-height %.0f", cDBMF, cFull)
	}
}

func TestInputValidation(t *testing.T) {
	m := New(config.Default())
	bad := []Inputs{
		{PPTI: 0, NWPE: 1, BaseCPI: 1},
		{PPTI: 1, NWPE: 0, BaseCPI: 1},
		{PPTI: 1, NWPE: 1, BaseCPI: 0},
		{PPTI: 1, NWPE: 1, BaseCPI: 1, CtrMissPK: -1},
	}
	for i, in := range bad {
		if _, err := m.AcceptCyclesPerKilo(config.SchemeCM, in); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := m.PaperNoGapIPC(in); err == nil {
			t.Errorf("case %d accepted by paper formula", i)
		}
	}
}
