// Package analytic implements a closed-form performance model of the
// SecPB schemes, generalizing the paper's own Section VI.B validation
// formula (for gamess under NoGap: IPC ≈ 1000/(320·PPTI/NWPE + 40·PPTI))
// to every scheme. The simulator's results are cross-checked against
// this model in tests, exactly as the paper cross-checks gem5.
//
// The model is a throughput bound: per kilo-instruction, the core needs
//
//	base cycles   = 1000·CPI_base + load-stall cycles
//	accept cycles = A·L_entry + S·L_store
//
// where A = PPTI/NWPE is the entry-allocation rate, S = PPTI the store
// rate, L_entry the scheme's per-allocation unblocking latency (counter
// access, OTP, BMT walk — the BMT branch and the MAC chain overlap), and
// L_store the per-store latency (SecPB port, ciphertext, MAC). Because
// acceptance serializes behind the unblocking signal while the core
// runs ahead through the store buffer, execution time per
// kilo-instruction is approximately max(base, accept) + overlap term;
// the model uses the conservative sum for eager schemes, which the
// paper's own estimate also uses ("our estimate is lower because MAC
// generation overlaps BMT updates").
package analytic

import (
	"fmt"

	"secpb/internal/config"
)

// Inputs are the workload statistics the model needs — the same ones
// the paper reports (Section VI.B).
type Inputs struct {
	PPTI      float64 // persists (stores) per kilo-instruction
	NWPE      float64 // writes coalesced per SecPB entry
	BaseCPI   float64 // baseline cycles per instruction (BBB)
	CtrMissPK float64 // counter-cache misses per kilo-instruction (early-counter schemes)
}

// Validate reports the first invalid field.
func (in Inputs) Validate() error {
	if in.PPTI <= 0 || in.NWPE <= 0 || in.BaseCPI <= 0 {
		return fmt.Errorf("analytic: PPTI, NWPE, BaseCPI must be positive, got %+v", in)
	}
	if in.CtrMissPK < 0 {
		return fmt.Errorf("analytic: CtrMissPK must be non-negative")
	}
	return nil
}

// Model evaluates the closed-form cycles-per-kilo-instruction and the
// slowdown over the baseline for a scheme under cfg.
type Model struct {
	cfg config.Config
}

// New returns a model for the configuration's latency parameters.
func New(cfg config.Config) *Model { return &Model{cfg: cfg} }

// AcceptCyclesPerKilo returns the store-acceptance cycles per
// kilo-instruction the scheme's unblocking chain consumes.
func (m *Model) AcceptCyclesPerKilo(s config.Scheme, in Inputs) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	e := s.Early()
	allocRate := in.PPTI / in.NWPE

	// Per-allocation latency: port + counter access + max(OTP chain,
	// BMT walk) — the BMT branch overlaps the OTP/cipher/MAC chain.
	perAlloc := float64(m.cfg.SecPBAccessCyc)
	if s == config.SchemeOBCM {
		perAlloc += float64(m.cfg.SecPBAccessCyc) // counter valid-bit check
	}
	var chain, bmtWalk float64
	if e.Counter {
		perAlloc += float64(m.cfg.CtrCache.AccessCycles)
	}
	if e.OTP {
		chain += float64(m.cfg.AESLatency)
	}
	if e.BMT {
		bmtWalk = float64(m.cfg.EffectiveBMTLevels()) * float64(m.cfg.MACLatency)
	}
	if chain > bmtWalk {
		perAlloc += chain
	} else {
		perAlloc += bmtWalk
	}

	// Per-store latency for coalesced stores: port plus any data-value-
	// dependent regeneration.
	perStore := float64(m.cfg.SecPBAccessCyc)
	if e.Ciphertext {
		perStore += 1 + float64(m.cfg.SecPBAccessCyc)
	}
	if e.MAC {
		perStore += float64(m.cfg.MACLatency)
	}

	coalesced := in.PPTI - allocRate
	if coalesced < 0 {
		coalesced = 0
	}
	total := allocRate*perAlloc + coalesced*perStore +
		in.CtrMissPK*float64(m.cfg.PMReadCycles())
	return total, nil
}

// CyclesPerKilo returns the modelled execution cycles per
// kilo-instruction: the base pipeline and the acceptance pipeline
// proceed concurrently until acceptance saturates, after which the
// store buffer fills and acceptance becomes the bottleneck. A smooth
// upper envelope max(base, accept) + min(base, accept)·overlap captures
// the partial overlap; overlap is the fraction of the faster pipeline
// hidden under the slower one (0 = perfect overlap, 1 = full serial).
// The simulator's measured behaviour sits between; tests bound it.
func (m *Model) CyclesPerKilo(s config.Scheme, in Inputs, overlap float64) (float64, error) {
	accept, err := m.AcceptCyclesPerKilo(s, in)
	if err != nil {
		return 0, err
	}
	base := 1000 * in.BaseCPI
	hi, lo := base, accept
	if accept > base {
		hi, lo = accept, base
	}
	return hi + overlap*lo, nil
}

// Slowdown returns the modelled execution-time ratio over the baseline.
func (m *Model) Slowdown(s config.Scheme, in Inputs, overlap float64) (float64, error) {
	c, err := m.CyclesPerKilo(s, in, overlap)
	if err != nil {
		return 0, err
	}
	return c / (1000 * in.BaseCPI), nil
}

// PaperNoGapIPC evaluates the paper's literal Section VI.B formula:
// IPC ≈ 1000 / (BMTlat·PPTI/NWPE + MAClat·PPTI). For gamess (PPTI 47.4,
// NWPE 2.1) it yields 0.11, against a simulated 0.13.
func (m *Model) PaperNoGapIPC(in Inputs) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	bmtLat := float64(m.cfg.BMTLevels) * float64(m.cfg.MACLatency)
	return 1000 / (bmtLat*in.PPTI/in.NWPE + float64(m.cfg.MACLatency)*in.PPTI), nil
}
