package addr

import (
	"testing"
	"testing/quick"
)

func TestBlockOfAligns(t *testing.T) {
	check := func(a uint64) bool {
		b := BlockOf(a)
		return Aligned(b.Addr()) && b.Addr() <= a && a-b.Addr() < BlockBytes
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	check := func(idx uint32) bool {
		b := FromIndex(uint64(idx))
		return b.Index() == uint64(idx)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPageMath(t *testing.T) {
	b := BlockOf(0x1000) // first block of page 1
	if b.Page() != 1 || b.PageOffset() != 0 {
		t.Errorf("page/offset = %d/%d, want 1/0", b.Page(), b.PageOffset())
	}
	b2 := BlockOf(0x1FC0) // last block of page 1
	if b2.Page() != 1 || b2.PageOffset() != BlocksPerPage-1 {
		t.Errorf("page/offset = %d/%d, want 1/%d", b2.Page(), b2.PageOffset(), BlocksPerPage-1)
	}
	if b.CounterLine() != b2.CounterLine() {
		t.Error("blocks in the same page map to different counter lines")
	}
	if BlockOf(0x2000).CounterLine() == b.CounterLine() {
		t.Error("blocks in different pages share a counter line")
	}
}

func TestBlocksPerPage(t *testing.T) {
	if BlocksPerPage != 64 {
		t.Errorf("BlocksPerPage = %d, want 64", BlocksPerPage)
	}
}

func TestMACLineMath(t *testing.T) {
	// Consecutive blocks 0..7 share MAC line 0, block 8 starts line 1.
	for i := uint64(0); i < 8; i++ {
		b := FromIndex(i)
		if b.MACLine() != 0 || b.MACOffset() != int(i) {
			t.Errorf("block %d: MAC line/off = %d/%d", i, b.MACLine(), b.MACOffset())
		}
	}
	if FromIndex(8).MACLine() != 1 {
		t.Error("block 8 not on MAC line 1")
	}
}

func TestAligned(t *testing.T) {
	if !Aligned(0) || !Aligned(64) || !Aligned(0xFFC0) {
		t.Error("aligned addresses reported unaligned")
	}
	if Aligned(1) || Aligned(63) || Aligned(0xFFC1) {
		t.Error("unaligned addresses reported aligned")
	}
}
