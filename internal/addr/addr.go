// Package addr centralizes physical-address arithmetic: cache blocks,
// pages, split-counter lines and MAC lines all derive from a block
// address in one place so the mapping is consistent across the data
// path, metadata path and recovery.
package addr

// Layout constants shared across the simulator.
const (
	// BlockBytes is the cache line / SecPB entry data size.
	BlockBytes = 64
	// BlockShift is log2(BlockBytes).
	BlockShift = 6
	// PageBytes is the encryption-page size used by the split-counter
	// scheme: one 64B counter line covers one 4KB page.
	PageBytes = 4096
	// PageShift is log2(PageBytes).
	PageShift = 12
	// BlocksPerPage is the number of data blocks per encryption page,
	// i.e. the number of minor counters per counter line.
	BlocksPerPage = PageBytes / BlockBytes
	// MACsPerLine is the number of block MACs stored per 64B MAC line
	// when MACs are truncated to 8B in PM (the full 512-bit MAC lives
	// in the SecPB entry; PM stores the truncated tag line).
	MACsPerLine = 8
)

// Block is a physical cache-block address (always block aligned).
type Block uint64

// BlockOf returns the block containing byte address b.
func BlockOf(byteAddr uint64) Block { return Block(byteAddr &^ (BlockBytes - 1)) }

// Index returns the block index (address / 64).
func (b Block) Index() uint64 { return uint64(b) >> BlockShift }

// Addr returns the byte address of the block.
func (b Block) Addr() uint64 { return uint64(b) }

// Page returns the encryption page number containing the block.
func (b Block) Page() uint64 { return uint64(b) >> PageShift }

// PageOffset returns the block's index within its encryption page,
// which selects the minor counter within the counter line.
func (b Block) PageOffset() int { return int(b.Index() % BlocksPerPage) }

// CounterLine returns the index of the 64B counter line holding the
// block's split counter (one line per page).
func (b Block) CounterLine() uint64 { return b.Page() }

// MACLine returns the index of the 64B MAC line holding the block's
// truncated MAC.
func (b Block) MACLine() uint64 { return b.Index() / MACsPerLine }

// MACOffset returns the slot within the MAC line.
func (b Block) MACOffset() int { return int(b.Index() % MACsPerLine) }

// AppendBlocks bulk-decomposes a column of byte addresses into their
// containing blocks, appending to dst and returning it. The engine's
// columnar batch replay decomposes a whole trace.Batch in one pass
// (reusing dst's backing array across batches) instead of per op.
func AppendBlocks(dst []Block, byteAddrs []uint64) []Block {
	for _, a := range byteAddrs {
		dst = append(dst, Block(a&^(BlockBytes-1)))
	}
	return dst
}

// Aligned reports whether a byte address is block aligned.
func Aligned(byteAddr uint64) bool { return byteAddr&(BlockBytes-1) == 0 }

// FromIndex returns the block with the given index.
func FromIndex(idx uint64) Block { return Block(idx << BlockShift) }
