package ptable

import (
	"runtime"
	"sync"
	"testing"
)

// TestShardedBasic checks lookup/put/len/keys against a map model over a
// key mix spanning every stripe and the overflow region of the backing
// tables.
func TestShardedBasic(t *testing.T) {
	s := NewSharded[uint64]()
	model := map[uint64]uint64{}
	keys := []uint64{0, 1, 63, 64, 65, 511, 512, 1 << 20, 1<<34 + 17, 1<<40 + 63}
	for i, k := range keys {
		v := uint64(i)*1000 + 7
		s.Put(k, v)
		model[k] = v
	}
	s.Update(keys[3], func(p *uint64) { *p += 5 })
	model[keys[3]] += 5

	if s.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(model))
	}
	for k, want := range model {
		got, ok := s.Lookup(k)
		if !ok || got != want {
			t.Fatalf("Lookup(%d) = %d,%v want %d", k, got, ok, want)
		}
	}
	if _, ok := s.Lookup(999999); ok {
		t.Fatalf("Lookup of absent key reported present")
	}

	ks := s.Keys()
	if len(ks) != len(model) {
		t.Fatalf("Keys len = %d, want %d", len(ks), len(model))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("Keys not strictly ascending at %d: %d >= %d", i, ks[i-1], ks[i])
		}
	}
	seen := 0
	s.Range(func(idx uint64, v uint64) bool {
		if model[idx] != v {
			t.Fatalf("Range(%d) = %d, want %d", idx, v, model[idx])
		}
		seen++
		return true
	})
	if seen != len(model) {
		t.Fatalf("Range visited %d keys, want %d", seen, len(model))
	}
}

// TestShardedConcurrent hammers disjoint per-goroutine key ranges plus a
// shared read set from many goroutines; run under -race this is the
// stripe-lock correctness check.
func TestShardedConcurrent(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	s := NewSharded[uint64]()
	for k := uint64(0); k < 256; k++ {
		s.Put(k, k)
	}
	var wg sync.WaitGroup
	const writers = 8
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			base := (w + 1) << 32
			for i := uint64(0); i < 2000; i++ {
				s.Put(base+i, w)
				if v, ok := s.Lookup(i % 256); !ok || v != i%256 {
					t.Errorf("shared read %d corrupted: %d,%v", i%256, v, ok)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if want := 256 + writers*2000; s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
}
