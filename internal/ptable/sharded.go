package ptable

import (
	"sort"
	"sync"
)

// shardCount is the number of lock stripes in a Sharded table. 64 keeps
// the stripe array small (one cache line of mutex state per stripe is
// amortized across the whole simulation) while making same-stripe
// collisions between a handful of concurrently stepping cores rare.
const shardCount = 64

// Sharded is a Table variant safe for concurrent use, striped into
// shardCount independently locked sub-tables by the low bits of the key
// (neighbouring blocks land on different stripes, so a multi-core burst
// over one region fans out across locks instead of convoying on one).
//
// It exists for state that genuinely is shared between concurrently
// stepping cores — the coherent shared-region view of engine.System —
// where the plain Table's directory-growth reallocation would race.
// Readers take a stripe RLock; the common multi-core phase (cores
// reading a frozen shared region in parallel, mutations only at
// serialized drain-epoch barriers) therefore never blocks.
type Sharded[T any] struct {
	shards [shardCount]struct {
		mu sync.RWMutex
		t  *Table[T]
	}
}

// NewSharded returns an empty sharded table.
func NewSharded[T any]() *Sharded[T] {
	s := &Sharded[T]{}
	for i := range s.shards {
		s.shards[i].t = New[T]()
	}
	return s
}

func (s *Sharded[T]) shard(idx uint64) (*sync.RWMutex, *Table[T], uint64) {
	sh := &s.shards[idx%shardCount]
	return &sh.mu, sh.t, idx / shardCount
}

// Lookup returns the value stored at idx, copied out under the stripe
// read lock, and whether the key is present. (A pointer into the table
// would escape the lock; concurrent callers get values.)
func (s *Sharded[T]) Lookup(idx uint64) (T, bool) {
	mu, t, sub := s.shard(idx)
	mu.RLock()
	defer mu.RUnlock()
	if p := t.Lookup(sub); p != nil {
		return *p, true
	}
	var zero T
	return zero, false
}

// Contains reports whether idx is present.
func (s *Sharded[T]) Contains(idx uint64) bool {
	mu, t, sub := s.shard(idx)
	mu.RLock()
	defer mu.RUnlock()
	return t.Lookup(sub) != nil
}

// Put stores v at idx under the stripe write lock.
func (s *Sharded[T]) Put(idx uint64, v T) {
	mu, t, sub := s.shard(idx)
	mu.Lock()
	defer mu.Unlock()
	p, _ := t.GetOrCreate(sub)
	*p = v
}

// Update applies fn to the value at idx (zero value if absent) under the
// stripe write lock and stores the result.
func (s *Sharded[T]) Update(idx uint64, fn func(*T)) {
	mu, t, sub := s.shard(idx)
	mu.Lock()
	defer mu.Unlock()
	p, _ := t.GetOrCreate(sub)
	fn(p)
}

// Len returns the total number of keys across all stripes.
func (s *Sharded[T]) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += s.shards[i].t.Len()
		s.shards[i].mu.RUnlock()
	}
	return n
}

// Keys returns every key in ascending order (deterministic regardless of
// which stripes the keys live on or how they were inserted).
func (s *Sharded[T]) Keys() []uint64 {
	var out []uint64
	for i := range s.shards {
		s.shards[i].mu.RLock()
		for _, sub := range s.shards[i].t.Keys() {
			out = append(out, sub*shardCount+uint64(i))
		}
		s.shards[i].mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Range calls fn for every (key, value) pair in ascending key order.
// The whole iteration runs under stripe read locks taken one at a time
// during key collection; values are copied out per call, so fn may call
// back into the table.
func (s *Sharded[T]) Range(fn func(idx uint64, v T) bool) {
	for _, k := range s.Keys() {
		v, ok := s.Lookup(k)
		if !ok {
			continue
		}
		if !fn(k, v) {
			return
		}
	}
}
