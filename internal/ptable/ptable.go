// Package ptable provides a two-level, lazily-allocated direct-index
// table over dense uint64 keys — a page-table layout for the simulator's
// state tables (the engine's plaintext memory image, the split-counter
// and MAC stores, the PM device image). The address streams those tables
// see are dense block/page indices, so a radix lookup replaces the
// hash-and-probe a Go map pays on every load, store and counter touch
// while keeping deterministic, key-ordered traversal for snapshots,
// audits and recovery replay.
//
// Layout: a directory of lazily-allocated pages, each holding 2^PageBits
// values plus a presence bitmap. Pages are allocated on first touch of
// any key they cover (slab behaviour: one allocation covers the
// surrounding 2^PageBits keys), and value storage never moves, so
// pointers returned by Lookup and GetOrCreate stay valid for the
// table's lifetime. Keys at or above the direct-index bound fall back
// to an overflow map, so arbitrary (fuzzed or adversarial) keys cost
// bounded memory instead of a proportionally sized directory.
//
// Table is not safe for concurrent use; like the rest of the simulator
// state it is confined to one simulation goroutine.
package ptable

import (
	"math/bits"
	"slices"
)

const (
	// PageBits is log2 of the number of values per page. 512 values per
	// page keeps a page of 64-byte blocks at 32KB — large enough to
	// amortize allocation, small enough that sparse key ranges do not
	// waste much.
	PageBits = 9
	pageLen  = 1 << PageBits
	pageMask = pageLen - 1
	// bitmap words per page (64 presence bits per word).
	bmWords = pageLen / 64

	// maxDirect bounds the direct-indexed key range: the directory for
	// it tops out at 2^19 pointers (4MB), far above any real block or
	// page index the simulator produces (a 2^28 block index is a 16GB
	// physical address). Larger keys go to the overflow map.
	maxDirect = uint64(1) << 28
)

// page holds one directory leaf: the values and their presence bitmap.
type page[T any] struct {
	present [bmWords]uint64
	vals    [pageLen]T
}

// Table is the two-level direct-index table. The zero value is not
// ready; use New.
type Table[T any] struct {
	dir      []*page[T]
	overflow map[uint64]*T
	n        int
}

// New returns an empty table.
func New[T any]() *Table[T] {
	return &Table[T]{}
}

// Len returns the number of present keys.
func (t *Table[T]) Len() int { return t.n }

// Lookup returns a pointer to the value for key, or nil if the key was
// never created. The pointer stays valid for the table's lifetime.
func (t *Table[T]) Lookup(key uint64) *T {
	if key < maxDirect {
		d := key >> PageBits
		if d < uint64(len(t.dir)) {
			if p := t.dir[d]; p != nil {
				i := key & pageMask
				if p.present[i>>6]&(1<<(i&63)) != 0 {
					return &p.vals[i]
				}
			}
		}
		return nil
	}
	return t.overflow[key]
}

// Get returns the value pointer and whether the key is present.
func (t *Table[T]) Get(key uint64) (*T, bool) {
	v := t.Lookup(key)
	return v, v != nil
}

// GetOrCreate returns the value pointer for key, creating a zero value
// (and marking the key present) if absent. created reports whether this
// call performed the creation.
func (t *Table[T]) GetOrCreate(key uint64) (v *T, created bool) {
	if key >= maxDirect {
		if p, ok := t.overflow[key]; ok {
			return p, false
		}
		if t.overflow == nil {
			t.overflow = make(map[uint64]*T)
		}
		p := new(T)
		t.overflow[key] = p
		t.n++
		return p, true
	}
	d := key >> PageBits
	if d >= uint64(len(t.dir)) {
		t.dir = append(t.dir, make([]*page[T], int(d)+1-len(t.dir))...)
	}
	p := t.dir[d]
	if p == nil {
		p = new(page[T])
		t.dir[d] = p
	}
	i := key & pageMask
	if p.present[i>>6]&(1<<(i&63)) != 0 {
		return &p.vals[i], false
	}
	p.present[i>>6] |= 1 << (i & 63)
	t.n++
	return &p.vals[i], true
}

// Octet returns a view of the eight values covering keys
// [base, base+8) together with their presence bits (bit i for
// base+i), for an 8-aligned base in the direct-indexed range. An
// 8-aligned run of eight keys never straddles a page or a bitmap
// word, so one directory walk serves all eight — the BMT sweep reads
// a node's children this way instead of probing per key. ok=false
// means the range is outside the direct-indexed bound and the caller
// must fall back to per-key lookups; ok=true with a nil slice means
// the covering page was never allocated (no key present).
func (t *Table[T]) Octet(base uint64) (vals []T, present uint8, ok bool) {
	if base >= maxDirect || base&7 != 0 {
		return nil, 0, false
	}
	d := base >> PageBits
	if d < uint64(len(t.dir)) {
		if p := t.dir[d]; p != nil {
			i := base & pageMask
			return p.vals[i : i+8 : i+8], uint8(p.present[i>>6] >> (i & 63)), true
		}
	}
	return nil, 0, true
}

// Put sets the value for key, creating it if absent.
func (t *Table[T]) Put(key uint64, v T) {
	p, _ := t.GetOrCreate(key)
	*p = v
}

// Range calls fn for every present key in ascending key order, stopping
// early if fn returns false. Mutating present values through the passed
// pointer is allowed; creating keys during iteration is not.
func (t *Table[T]) Range(fn func(key uint64, v *T) bool) {
	for d, p := range t.dir {
		if p == nil {
			continue
		}
		base := uint64(d) << PageBits
		for w, word := range p.present {
			for word != 0 {
				i := w<<6 + bits.TrailingZeros64(word)
				if !fn(base+uint64(i), &p.vals[i]) {
					return
				}
				word &= word - 1 // clear lowest set bit
			}
		}
	}
	if len(t.overflow) == 0 {
		return
	}
	keys := make([]uint64, 0, len(t.overflow))
	for k := range t.overflow {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		if !fn(k, t.overflow[k]) {
			return
		}
	}
}

// Keys returns every present key in ascending order.
func (t *Table[T]) Keys() []uint64 {
	out := make([]uint64, 0, t.n)
	t.Range(func(k uint64, _ *T) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clone deep-copies the table (values are copied by assignment).
func (t *Table[T]) Clone() *Table[T] {
	cp := &Table[T]{n: t.n}
	if t.dir != nil {
		cp.dir = make([]*page[T], len(t.dir))
		for d, p := range t.dir {
			if p != nil {
				dup := *p
				cp.dir[d] = &dup
			}
		}
	}
	if len(t.overflow) > 0 {
		cp.overflow = make(map[uint64]*T, len(t.overflow))
		for k, v := range t.overflow {
			dup := *v
			cp.overflow[k] = &dup
		}
	}
	return cp
}
