package ptable

import (
	"math/rand"
	"sort"
	"testing"
)

// TestTableVsMapDifferential drives a Table and a reference map through
// the same random insert/lookup/overwrite sequence and checks they
// agree at every step and under full iteration.
func TestTableVsMapDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tab := New[uint64]()
	ref := map[uint64]uint64{}

	// Key mix: dense low keys (the direct pages), sparse high keys, and
	// keys past maxDirect (the overflow map).
	randKey := func() uint64 {
		switch r.Intn(3) {
		case 0:
			return uint64(r.Intn(4096))
		case 1:
			return uint64(r.Int63n(1 << 27))
		default:
			return maxDirect + uint64(r.Int63n(1<<30))
		}
	}

	for step := 0; step < 20000; step++ {
		k := randKey()
		switch r.Intn(3) {
		case 0: // Put
			v := r.Uint64()
			tab.Put(k, v)
			ref[k] = v
		case 1: // GetOrCreate + mutate through the pointer
			p, created := tab.GetOrCreate(k)
			if _, inRef := ref[k]; created == inRef {
				t.Fatalf("step %d: GetOrCreate(%d) created=%v but ref has=%v", step, k, created, inRef)
			}
			if !created && *p != ref[k] {
				t.Fatalf("step %d: GetOrCreate(%d) = %d, ref %d", step, k, *p, ref[k])
			}
			v := r.Uint64()
			*p = v
			ref[k] = v
		case 2: // Lookup / Get
			p := tab.Lookup(k)
			want, ok := ref[k]
			if (p != nil) != ok {
				t.Fatalf("step %d: Lookup(%d) present=%v, ref %v", step, k, p != nil, ok)
			}
			if ok && *p != want {
				t.Fatalf("step %d: Lookup(%d) = %d, ref %d", step, k, *p, want)
			}
			if v, gok := tab.Get(k); gok != ok || (ok && v == nil) {
				t.Fatalf("step %d: Get(%d) ok=%v, ref %v", step, k, gok, ok)
			}
		}
		if tab.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref %d", step, tab.Len(), len(ref))
		}
	}

	// Range must visit exactly the reference keys, ascending.
	wantKeys := make([]uint64, 0, len(ref))
	for k := range ref {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	var got []uint64
	tab.Range(func(k uint64, v *uint64) bool {
		if *v != ref[k] {
			t.Fatalf("Range(%d) = %d, ref %d", k, *v, ref[k])
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(wantKeys) {
		t.Fatalf("Range visited %d keys, ref %d", len(got), len(wantKeys))
	}
	for i := range got {
		if got[i] != wantKeys[i] {
			t.Fatalf("Range order: key[%d] = %d, want %d", i, got[i], wantKeys[i])
		}
	}

	// Keys agrees with Range; Clone is deep for values.
	keys := tab.Keys()
	for i := range keys {
		if keys[i] != wantKeys[i] {
			t.Fatalf("Keys[%d] = %d, want %d", i, keys[i], wantKeys[i])
		}
	}
	cl := tab.Clone()
	if cl.Len() != tab.Len() {
		t.Fatalf("Clone Len = %d, want %d", cl.Len(), tab.Len())
	}
	if len(wantKeys) > 0 {
		k := wantKeys[0]
		*cl.Lookup(k) = ^ref[k]
		if *tab.Lookup(k) != ref[k] {
			t.Error("mutating a clone changed the original")
		}
	}
}

func TestTableRangeEarlyStop(t *testing.T) {
	tab := New[int]()
	for i := uint64(0); i < 100; i++ {
		tab.Put(i*37, int(i))
	}
	seen := 0
	tab.Range(func(uint64, *int) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("Range visited %d entries after early stop, want 5", seen)
	}
}

func TestTablePointerStability(t *testing.T) {
	tab := New[uint64]()
	p0, _ := tab.GetOrCreate(1)
	*p0 = 11
	// Grow the directory far past the first page.
	for i := uint64(0); i < 1<<16; i += 101 {
		tab.Put(i, i)
	}
	if q := tab.Lookup(1); q != p0 {
		t.Error("entry pointer moved after directory growth")
	}
}

// FuzzTableVsMap differentially fuzzes the paged table against a map
// over an arbitrary operation tape: each byte triple (op, key material)
// drives one operation on both structures.
func FuzzTableVsMap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 128, 9, 1, 7})
	f.Fuzz(func(t *testing.T, tape []byte) {
		tab := New[uint16]()
		ref := map[uint64]uint16{}
		for i := 0; i+3 <= len(tape); i += 3 {
			op, k0, k1 := tape[i], tape[i+1], tape[i+2]
			// Spread 16 bits of key material across the interesting
			// ranges: in-page, cross-page, and past maxDirect.
			k := uint64(k0)<<uint(k1%56) | uint64(k1)
			switch op % 3 {
			case 0:
				tab.Put(k, uint16(k0)<<8|uint16(k1))
				ref[k] = uint16(k0)<<8 | uint16(k1)
			case 1:
				p, created := tab.GetOrCreate(k)
				if _, ok := ref[k]; created == ok {
					t.Fatalf("GetOrCreate(%d): created=%v, ref has=%v", k, created, ok)
				}
				*p = uint16(op)
				ref[k] = uint16(op)
			case 2:
				p := tab.Lookup(k)
				want, ok := ref[k]
				if (p != nil) != ok || (ok && *p != want) {
					t.Fatalf("Lookup(%d) mismatch", k)
				}
			}
		}
		if tab.Len() != len(ref) {
			t.Fatalf("Len = %d, ref %d", tab.Len(), len(ref))
		}
		var last uint64
		n := 0
		tab.Range(func(k uint64, v *uint16) bool {
			if n > 0 && k <= last {
				t.Fatalf("Range not ascending: %d after %d", k, last)
			}
			if want, ok := ref[k]; !ok || *v != want {
				t.Fatalf("Range(%d) = %d, ref (%d, %v)", k, *v, want, ok)
			}
			last = k
			n++
			return true
		})
		if n != len(ref) {
			t.Fatalf("Range visited %d, ref %d", n, len(ref))
		}
	})
}
