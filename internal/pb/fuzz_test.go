package pb

import (
	"bytes"
	"testing"

	"secpb/internal/addr"
)

// FuzzBufferModel differentially fuzzes the open-addressed Fibonacci
// index against the map-based reference model. The script is decoded
// into write/drain/remove operations with a deliberate delete bias:
// backward-shift deletion is the index's subtlest path, and small
// capacities (down to 1, i.e. a 4-slot table) make probe wraparound at
// the table's top edge a routine event rather than a corner case.
func FuzzBufferModel(f *testing.F) {
	// Delete-heavy churn: allocate and immediately remove, cycling
	// blocks so backward shifts repeatedly compact probe chains.
	churn := make([]byte, 0, 96)
	for i := 0; i < 16; i++ {
		churn = append(churn, 7, byte(i), byte(i*3)) // write block i
		churn = append(churn, 1, byte(i), 0)         // remove block i
	}
	f.Add(uint8(0), churn) // capacity 1: 4-slot table, constant wraparound
	f.Add(uint8(3), churn)

	// Fill far past capacity, then drain dry: exercises ErrFull and the
	// FIFO skip-list of already-removed blocks.
	fill := make([]byte, 0, 120)
	for i := 0; i < 24; i++ {
		fill = append(fill, 7, byte(i*5), byte(i))
	}
	for i := 0; i < 16; i++ {
		fill = append(fill, 0, 0, 0) // drain oldest
	}
	f.Add(uint8(7), fill)

	// Interleaved remove/write on colliding low blocks.
	mix := []byte{7, 0, 1, 7, 1, 2, 7, 2, 3, 1, 1, 0, 7, 3, 4, 1, 0, 0, 7, 4, 5, 0, 0, 0}
	f.Add(uint8(1), mix)
	f.Add(uint8(31), bytes.Repeat(mix, 4))

	f.Fuzz(func(t *testing.T, capSel uint8, script []byte) {
		capacity := 1 + int(capSel)%32
		impl, err := New[noExt](capacity, 0.75, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefBuffer(capacity)
		const blocks = 48 // > max capacity, so full-buffer and collision paths both run

		for i := 0; i+2 < len(script); i += 3 {
			op, bsel, vb := script[i], script[i+1], script[i+2]
			b := addr.FromIndex(uint64(bsel) % blocks)
			switch op % 8 {
			case 0: // drain oldest
				wantBlock, wantData, wantOK := ref.drainOldest()
				e := impl.DrainOldest()
				if (e != nil) != wantOK {
					t.Fatalf("step %d: drain presence %v want %v", i, e != nil, wantOK)
				}
				if e != nil && (e.Block != wantBlock || e.Data != wantData) {
					t.Fatalf("step %d: drained %#x, reference %#x", i, e.Block, wantBlock)
				}
			case 1, 2, 3: // remove (delete-heavy: 3 of 8 opcodes)
				var wantData [addr.BlockBytes]byte
				if d, ok := ref.data[b]; ok {
					wantData = *d
				}
				wantOK := ref.remove(b)
				e := impl.Remove(b)
				if (e != nil) != wantOK {
					t.Fatalf("step %d: remove %#x presence %v want %v", i, b, e != nil, wantOK)
				}
				if e != nil && (e.Block != b || e.Data != wantData) {
					t.Fatalf("step %d: removed entry for %#x corrupt", i, b)
				}
			default: // write
				size := 1 << (vb & 3)
				off := (int(vb>>2) * size) % (addr.BlockBytes - size + 1)
				val := uint64(vb) * 0x0101010101010101
				wantAlloc, wantFull := ref.write(b, off, size, val)
				e, gotAlloc, err := impl.Write(b, off, size, val, nil)
				if wantFull {
					if err == nil {
						t.Fatalf("step %d: write into full buffer accepted", i)
					}
					continue
				}
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if gotAlloc != wantAlloc {
					t.Fatalf("step %d: allocated=%v want %v", i, gotAlloc, wantAlloc)
				}
				if e.Data != *ref.data[b] {
					t.Fatalf("step %d: data mismatch for %#x", i, b)
				}
			}
			if impl.Len() != len(ref.data) {
				t.Fatalf("step %d: occupancy %d want %d", i, impl.Len(), len(ref.data))
			}
		}

		// Final cross-check: both directions of the block set, via the
		// index (Lookup) and via the entry list.
		for b, want := range ref.data {
			e := impl.Lookup(b)
			if e == nil {
				t.Fatalf("block %#x in reference but not in index", b)
			}
			if e.Data != *want {
				t.Fatalf("block %#x: final data mismatch", b)
			}
		}
		if got := len(impl.Entries()); got != len(ref.data) {
			t.Fatalf("entry list has %d entries, reference %d", got, len(ref.data))
		}
		for _, e := range impl.Entries() {
			if _, ok := ref.data[e.Block]; !ok {
				t.Fatalf("block %#x in buffer but not in reference", e.Block)
			}
		}
	})
}
