package pb

import (
	"testing"

	"secpb/internal/addr"
	"secpb/internal/xrand"
)

// refBuffer is the executable specification of the persist buffer: a
// map of block → data plus an allocation-ordered list.
type refBuffer struct {
	capacity int
	data     map[addr.Block]*[addr.BlockBytes]byte
	order    []addr.Block
}

func newRefBuffer(capacity int) *refBuffer {
	return &refBuffer{capacity: capacity, data: map[addr.Block]*[addr.BlockBytes]byte{}}
}

func (r *refBuffer) write(block addr.Block, off, size int, val uint64) (allocated, full bool) {
	d, ok := r.data[block]
	if !ok {
		if len(r.data) >= r.capacity {
			return false, true
		}
		d = &[addr.BlockBytes]byte{}
		r.data[block] = d
		r.order = append(r.order, block)
		allocated = true
	}
	for i := 0; i < size; i++ {
		d[off+i] = byte(val >> (8 * i))
	}
	return allocated, false
}

func (r *refBuffer) drainOldest() (addr.Block, [addr.BlockBytes]byte, bool) {
	for len(r.order) > 0 {
		b := r.order[0]
		r.order = r.order[1:]
		if d, ok := r.data[b]; ok {
			delete(r.data, b)
			return b, *d, true
		}
	}
	return 0, [addr.BlockBytes]byte{}, false
}

func (r *refBuffer) remove(block addr.Block) bool {
	if _, ok := r.data[block]; ok {
		delete(r.data, block)
		return true
	}
	return false
}

func TestBufferMatchesReferenceModel(t *testing.T) {
	const capacity = 8
	impl, err := New[noExt](capacity, 0.75, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefBuffer(capacity)
	r := xrand.New(0xB0FFE2)
	const blocks = 20
	for step := 0; step < 30000; step++ {
		switch r.Intn(10) {
		case 0: // drain oldest
			wantBlock, wantData, wantOK := ref.drainOldest()
			e := impl.DrainOldest()
			if (e != nil) != wantOK {
				t.Fatalf("step %d: drain presence %v want %v", step, e != nil, wantOK)
			}
			if e != nil && (e.Block != wantBlock || e.Data != wantData) {
				t.Fatalf("step %d: drained %#x, reference %#x", step, e.Block, wantBlock)
			}
		case 1: // remove random block
			b := addr.FromIndex(uint64(r.Intn(blocks)))
			wantOK := ref.remove(b)
			e := impl.Remove(b)
			if (e != nil) != wantOK {
				t.Fatalf("step %d: remove presence %v want %v", step, e != nil, wantOK)
			}
		default: // write
			b := addr.FromIndex(uint64(r.Intn(blocks)))
			size := 1 << r.Intn(4)
			off := r.Intn(addr.BlockBytes-size+1) &^ (size - 1)
			val := r.Uint64()
			wantAlloc, wantFull := ref.write(b, off, size, val)
			e, gotAlloc, err := impl.Write(b, off, size, val, nil)
			if wantFull {
				if err == nil {
					t.Fatalf("step %d: impl accepted write into full buffer", step)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if gotAlloc != wantAlloc {
				t.Fatalf("step %d: allocated=%v want %v", step, gotAlloc, wantAlloc)
			}
			if *ref.data[b] != e.Data {
				t.Fatalf("step %d: data mismatch for %#x", step, b)
			}
		}
		if impl.Len() != len(ref.data) {
			t.Fatalf("step %d: occupancy %d want %d", step, impl.Len(), len(ref.data))
		}
	}
}
