// Package pb implements the battery-backed persist buffer of BBB
// (Alshboul et al., HPCA'21): a small per-core coalescing buffer that is
// the point of persistency. Stores enter the buffer in parallel with the
// L1D; blocks drain to the memory controller when a high watermark is
// reached (until a low watermark) or, on a crash, entirely on battery.
//
// The buffer is generic over a per-entry extension payload so the SecPB
// of internal/core can attach its security-metadata fields (O, Dc, C, B,
// M and their valid bits) without duplicating the coalescing mechanics.
package pb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"secpb/internal/addr"
)

// ErrFull reports that the buffer cannot accept a new block until an
// entry drains.
var ErrFull = errors.New("pb: buffer full")

// Entry is one persist-buffer slot: a 64B data block plus bookkeeping
// and the caller's extension payload.
type Entry[E any] struct {
	Block addr.Block
	Data  [addr.BlockBytes]byte
	// ASID tags the owning process's address space, enabling the
	// drain-process policy for application crashes (Section III.B).
	// The drain-all policy ignores it.
	ASID   uint16
	Writes int    // stores coalesced into this entry (drives NWPE)
	Seq    uint64 // allocation sequence for FIFO draining
	// AllocCycle is the simulation cycle at which the entry reached the
	// point of persistency (stamped by the owning engine; zero when the
	// caller keeps no clock). It feeds the battery-exposure histogram.
	AllocCycle uint64
	Ext        E
}

// Buffer is a coalescing persist buffer with watermark-based draining.
type Buffer[E any] struct {
	capacity int
	hi, lo   int      // watermark entry counts
	idx      index[E] // block → resident entry
	// fifo holds allocation order (oldest first) from fifoHead onward;
	// the consumed prefix is compacted away periodically so the slice
	// reuses its capacity at steady state instead of growing (and
	// triggering GC) once per drain.
	fifo     []addr.Block
	fifoHead int
	seq      uint64

	// free recycles drained entries the owner explicitly Released:
	// allocation churn (one ~400-byte entry per drain at steady state)
	// was the engine store path's last per-op heap traffic.
	free []*Entry[E]

	// lastBlock/lastEntry memoize the most recent CoalesceWrite index
	// hit: consecutive stores overwhelmingly land in the block just
	// written, so the repeat skips the hash probe. Every removal path
	// funnels through recordDrain, which clears the memo when the
	// memoized entry leaves — a non-nil lastEntry is therefore always
	// the resident entry for lastBlock (resident entries never change
	// block, and freelist reuse requires a prior removal).
	lastBlock addr.Block
	lastEntry *Entry[E]

	allocs uint64
	writes uint64
	drains uint64
	// peak is the high-water occupancy (entries resident at once) over
	// the buffer's lifetime — the measured battery exposure a multi-core
	// sizing study compares against the all-slots-full worst case.
	peak int
	// Writes-per-drained-entry accumulators (NWPE). The per-drain sample
	// list this replaces grew without bound and was only ever averaged.
	drainWriteSum uint64
	drainWriteCnt uint64
}

// index is the buffer's block→entry lookup structure: a fixed-size
// open-addressed table (linear probing, backward-shift deletion) sized
// at a quarter load for the buffer's bounded capacity. Every store
// probes it once (twice on allocation) and every drain deletes from it,
// which made the previous map's hashing and bucket chasing the last
// per-op map cost on the engine's store path. At ≤25% load a probe is
// almost always a single cache line.
type index[E any] struct {
	slots []idxSlot[E]
	mask  uint64
	shift uint // 64 - log2(len(slots)), for multiplicative hashing
	n     int
}

type idxSlot[E any] struct {
	key addr.Block
	e   *Entry[E] // nil marks an empty slot
}

func newIndex[E any](capacity int) index[E] {
	size, shift := 8, uint(61)
	for size < 4*capacity {
		size <<= 1
		shift--
	}
	return index[E]{
		slots: make([]idxSlot[E], size),
		mask:  uint64(size - 1),
		shift: shift,
	}
}

// home returns the block's preferred slot (Fibonacci hashing: the high
// multiplier bits are well mixed even for the sequential block numbers
// streaming workloads produce).
func (ix *index[E]) home(b addr.Block) uint64 {
	return (uint64(b) * 0x9E3779B97F4A7C15) >> ix.shift
}

func (ix *index[E]) get(b addr.Block) *Entry[E] {
	for i := ix.home(b); ; i = (i + 1) & ix.mask {
		s := &ix.slots[i]
		if s.e == nil {
			return nil
		}
		if s.key == b {
			return s.e
		}
	}
}

// put inserts an entry for a block the caller has verified absent. The
// table is never more than quarter full (capacity entries in ≥4×
// capacity slots), so the probe always terminates at an empty slot.
func (ix *index[E]) put(b addr.Block, e *Entry[E]) {
	i := ix.home(b)
	for ix.slots[i].e != nil {
		i = (i + 1) & ix.mask
	}
	ix.slots[i] = idxSlot[E]{key: b, e: e}
	ix.n++
}

// del removes and returns the entry for b (nil if absent), compacting
// the probe sequence by backward-shift deletion so no tombstones
// accumulate under the buffer's allocate/drain churn.
func (ix *index[E]) del(b addr.Block) *Entry[E] {
	i := ix.home(b)
	for {
		s := &ix.slots[i]
		if s.e == nil {
			return nil
		}
		if s.key == b {
			break
		}
		i = (i + 1) & ix.mask
	}
	e := ix.slots[i].e
	ix.n--
	for j := (i + 1) & ix.mask; ; j = (j + 1) & ix.mask {
		s := ix.slots[j]
		if s.e == nil {
			break
		}
		// s may fill the hole at i iff i lies on s's probe path, i.e.
		// the cyclic distance home→i does not exceed home→j.
		if (j-ix.home(s.key))&ix.mask >= (j-i)&ix.mask {
			ix.slots[i] = s
			i = j
		}
	}
	ix.slots[i] = idxSlot[E]{}
	return e
}

// New returns a buffer with the given capacity and watermark fractions
// (0 <= lo < hi <= 1).
func New[E any](capacity int, hiFrac, loFrac float64) (*Buffer[E], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("pb: capacity %d must be positive", capacity)
	}
	if !(loFrac >= 0 && loFrac < hiFrac && hiFrac <= 1) {
		return nil, fmt.Errorf("pb: watermarks lo=%v hi=%v invalid", loFrac, hiFrac)
	}
	hi := int(hiFrac * float64(capacity))
	if hi < 1 {
		hi = 1
	}
	lo := int(loFrac * float64(capacity))
	return &Buffer[E]{
		capacity: capacity,
		hi:       hi,
		lo:       lo,
		idx:      newIndex[E](capacity),
	}, nil
}

// Len returns the number of occupied entries.
func (b *Buffer[E]) Len() int { return b.idx.n }

// PeakLen returns the buffer's high-water occupancy: the most entries
// ever resident at once (battery-sizing studies compare this measured
// exposure against the all-slots-full worst case).
func (b *Buffer[E]) PeakLen() int {
	if b.idx.n > b.peak {
		return b.idx.n
	}
	return b.peak
}

// Capacity returns the configured entry count.
func (b *Buffer[E]) Capacity() int { return b.capacity }

// Full reports whether no entry can be allocated.
func (b *Buffer[E]) Full() bool { return b.idx.n >= b.capacity }

// AboveHigh reports whether occupancy has reached the high watermark
// (draining should start).
func (b *Buffer[E]) AboveHigh() bool { return b.idx.n >= b.hi }

// AboveLow reports whether occupancy is above the low watermark
// (draining, once started, should continue).
func (b *Buffer[E]) AboveLow() bool { return b.idx.n > b.lo }

// Lookup returns the entry holding the block, or nil.
func (b *Buffer[E]) Lookup(block addr.Block) *Entry[E] {
	return b.idx.get(block)
}

// Write coalesces a store of size bytes of val at byte offset off within
// the block. If the block has no entry one is allocated, initialized
// from fetch (the block's current contents, since the buffer is
// memory-side and must merge partial writes); allocated reports this.
// Write fails with ErrFull when allocation is needed but no space is
// left — the caller must drain first.
func (b *Buffer[E]) Write(block addr.Block, off, size int, val uint64, fetch func() [addr.BlockBytes]byte) (entry *Entry[E], allocated bool, err error) {
	return b.WriteFor(0, block, off, size, val, fetch)
}

// WriteFor is Write with an explicit address-space tag for the
// allocating process; a coalescing write does not re-tag the entry.
func (b *Buffer[E]) WriteFor(asid uint16, block addr.Block, off, size int, val uint64, fetch func() [addr.BlockBytes]byte) (entry *Entry[E], allocated bool, err error) {
	var init *[addr.BlockBytes]byte
	if fetch != nil {
		data := fetch()
		init = &data
	}
	return b.WriteInit(asid, block, off, size, val, init)
}

// WriteInit is WriteFor without the closure: init, if non-nil, points at
// the block's current contents, copied only when a new entry is
// allocated. Callers on the per-store hot path use this form so no
// closure (and no captured 64-byte snapshot) escapes per store.
func (b *Buffer[E]) WriteInit(asid uint16, block addr.Block, off, size int, val uint64, init *[addr.BlockBytes]byte) (entry *Entry[E], allocated bool, err error) {
	if off < 0 || size <= 0 || size > 8 || off+size > addr.BlockBytes {
		return nil, false, fmt.Errorf("pb: invalid write off=%d size=%d", off, size)
	}
	e := b.idx.get(block)
	if e == nil {
		if b.Full() {
			return nil, false, ErrFull
		}
		if n := len(b.free); n > 0 {
			e, b.free = b.free[n-1], b.free[:n-1]
			e.Block, e.Seq, e.ASID = block, b.seq, asid
		} else {
			e = &Entry[E]{Block: block, Seq: b.seq, ASID: asid}
		}
		if init != nil {
			e.Data = *init
		}
		b.seq++
		b.idx.put(block, e)
		b.fifoPush(block)
		b.allocs++
		allocated = true
	}
	if size == 8 {
		binary.LittleEndian.PutUint64(e.Data[off:off+8], val)
	} else {
		for i := 0; i < size; i++ {
			e.Data[off+i] = byte(val >> (8 * i))
		}
	}
	e.Writes++
	b.writes++
	return e, allocated, nil
}

// CoalesceWrite coalesces a store into the block's resident entry and
// returns it — the hot-path subset of WriteInit for callers that
// handle allocation separately. It returns nil with no side effects
// when the block has no entry or the write parameters are invalid (the
// caller falls back to WriteInit, which allocates or reports the
// error), so one index probe serves as both the residency test and the
// coalescing write.
func (b *Buffer[E]) CoalesceWrite(block addr.Block, off, size int, val uint64) *Entry[E] {
	if off < 0 || size <= 0 || size > 8 || off+size > addr.BlockBytes {
		return nil
	}
	e := b.lastEntry
	if e == nil || b.lastBlock != block {
		e = b.idx.get(block)
		if e == nil {
			return nil
		}
		b.lastBlock, b.lastEntry = block, e
	}
	if size == 8 {
		binary.LittleEndian.PutUint64(e.Data[off:off+8], val)
	} else {
		for i := 0; i < size; i++ {
			e.Data[off+i] = byte(val >> (8 * i))
		}
	}
	e.Writes++
	b.writes++
	return e
}

// Insert adopts an entry migrated from another buffer (cache-coherence
// migration between per-core persist buffers). The entry keeps its data
// and extension payload but receives a new allocation sequence in this
// buffer. It fails with ErrFull when no slot is free and with an error
// if the block is already resident (replication is forbidden).
func (b *Buffer[E]) Insert(e *Entry[E]) error {
	if b.idx.get(e.Block) != nil {
		return fmt.Errorf("pb: block %#x already resident (replication forbidden)", uint64(e.Block))
	}
	if b.Full() {
		return ErrFull
	}
	e.Seq = b.seq
	b.seq++
	b.idx.put(e.Block, e)
	b.fifoPush(e.Block)
	b.allocs++
	return nil
}

// fifoPush appends a block to the allocation-order queue, compacting the
// consumed prefix first once it dominates the slice. Amortized O(1) with
// a bounded footprint: at steady state the same backing array is reused
// forever.
func (b *Buffer[E]) fifoPush(block addr.Block) {
	if b.idx.n > b.peak {
		b.peak = b.idx.n
	}
	if b.fifoHead > 0 && b.fifoHead*2 >= len(b.fifo) {
		n := copy(b.fifo, b.fifo[b.fifoHead:])
		b.fifo = b.fifo[:n]
		b.fifoHead = 0
	}
	b.fifo = append(b.fifo, block)
}

// recordDrain accumulates the NWPE sample for a removed entry.
func (b *Buffer[E]) recordDrain(e *Entry[E]) {
	if e == b.lastEntry {
		b.lastEntry = nil
	}
	b.drains++
	b.drainWriteSum += uint64(e.Writes)
	b.drainWriteCnt++
}

// DrainOldest removes and returns the oldest entry, or nil if empty.
func (b *Buffer[E]) DrainOldest() *Entry[E] {
	for b.fifoHead < len(b.fifo) {
		block := b.fifo[b.fifoHead]
		b.fifoHead++
		e := b.idx.del(block)
		if e == nil {
			continue // already removed (flush/invalidate)
		}
		b.recordDrain(e)
		return e
	}
	b.fifo = b.fifo[:0]
	b.fifoHead = 0
	return nil
}

// DrainOldestWhere removes and returns the oldest entry satisfying
// pred, or nil if none does. Non-matching entries keep their place —
// the drain-process policy drains one process's entries in allocation
// order without disturbing other processes' coalescing.
func (b *Buffer[E]) DrainOldestWhere(pred func(*Entry[E]) bool) *Entry[E] {
	for _, block := range b.fifo[b.fifoHead:] {
		e := b.idx.get(block)
		if e == nil || !pred(e) {
			continue
		}
		b.idx.del(block)
		b.recordDrain(e)
		return e
	}
	return nil
}

// Remove deletes a specific entry (coherence flush to another core, or
// a forced eviction) and returns it, or nil if absent. The FIFO keeps a
// stale reference that DrainOldest skips.
func (b *Buffer[E]) Remove(block addr.Block) *Entry[E] {
	e := b.idx.del(block)
	if e == nil {
		return nil
	}
	b.recordDrain(e)
	return e
}

// Entries returns the resident entries oldest-first (crash drains
// preserve allocation order). A block removed and later re-allocated
// leaves a stale FIFO slot behind that resolves to the live entry, so
// each block is emitted only at its first live position — matching
// where DrainOldest would drain it.
func (b *Buffer[E]) Entries() []*Entry[E] {
	out := make([]*Entry[E], 0, b.idx.n)
	seen := make(map[addr.Block]struct{}, b.idx.n)
	for _, block := range b.fifo[b.fifoHead:] {
		if _, dup := seen[block]; dup {
			continue
		}
		if e := b.idx.get(block); e != nil {
			seen[block] = struct{}{}
			out = append(out, e)
		}
	}
	return out
}

// Release returns a drained entry to the buffer's free list for reuse by
// a later allocation. The caller asserts no reference to the entry (or
// anything it points into) survives the call: crash snapshots deep-copy
// entries, so the drain loop may release an entry as soon as its persist
// completes. Releasing is optional — unreleased entries are simply
// garbage collected.
func (b *Buffer[E]) Release(e *Entry[E]) {
	if e == nil || len(b.free) >= b.capacity {
		return
	}
	*e = Entry[E]{}
	b.free = append(b.free, e)
}

// Stats returns cumulative (allocations, writes, drains).
func (b *Buffer[E]) Stats() (allocs, writes, drains uint64) {
	return b.allocs, b.writes, b.drains
}

// NWPE returns the mean number of writes per drained entry — the
// coalescing statistic the paper reports. Entries still resident are
// not counted.
func (b *Buffer[E]) NWPE() float64 {
	if b.drainWriteCnt == 0 {
		return 0
	}
	return float64(b.drainWriteSum) / float64(b.drainWriteCnt)
}
