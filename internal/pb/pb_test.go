package pb

import (
	"errors"
	"testing"

	"secpb/internal/addr"
)

type noExt struct{}

func newBuf(t *testing.T, capacity int) *Buffer[noExt] {
	t.Helper()
	b, err := New[noExt](capacity, 0.75, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New[noExt](0, 0.75, 0.25); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New[noExt](8, 0.25, 0.75); err == nil {
		t.Error("inverted watermarks accepted")
	}
	if _, err := New[noExt](8, 1.5, 0.25); err == nil {
		t.Error("hi > 1 accepted")
	}
}

func TestWriteAllocatesAndCoalesces(t *testing.T) {
	b := newBuf(t, 4)
	blk := addr.BlockOf(0x1000)
	e, allocated, err := b.Write(blk, 0, 8, 0x1122334455667788, nil)
	if err != nil || !allocated {
		t.Fatalf("first write: alloc=%v err=%v", allocated, err)
	}
	if e.Data[0] != 0x88 || e.Data[7] != 0x11 {
		t.Error("little-endian merge wrong")
	}
	// Second store to same block coalesces.
	e2, allocated, err := b.Write(blk, 8, 4, 0xAABBCCDD, nil)
	if err != nil || allocated {
		t.Fatalf("coalescing write: alloc=%v err=%v", allocated, err)
	}
	if e2 != e {
		t.Error("coalescing created a new entry")
	}
	if e.Writes != 2 {
		t.Errorf("writes = %d", e.Writes)
	}
	if e.Data[8] != 0xDD || e.Data[11] != 0xAA {
		t.Error("second merge wrong")
	}
	if b.Len() != 1 {
		t.Errorf("len = %d", b.Len())
	}
}

func TestWriteFetchesInitialContents(t *testing.T) {
	b := newBuf(t, 4)
	var init [addr.BlockBytes]byte
	for i := range init {
		init[i] = 0xEE
	}
	e, _, err := b.Write(addr.BlockOf(0x40), 4, 1, 0x07, func() [addr.BlockBytes]byte { return init })
	if err != nil {
		t.Fatal(err)
	}
	if e.Data[3] != 0xEE || e.Data[4] != 0x07 || e.Data[5] != 0xEE {
		t.Error("fetch-merge wrong: partial store must preserve other bytes")
	}
}

func TestWriteValidation(t *testing.T) {
	b := newBuf(t, 4)
	cases := []struct{ off, size int }{{-1, 8}, {0, 0}, {0, 9}, {60, 8}}
	for _, c := range cases {
		if _, _, err := b.Write(addr.BlockOf(0), c.off, c.size, 0, nil); err == nil {
			t.Errorf("off=%d size=%d accepted", c.off, c.size)
		}
	}
}

func TestFullReturnsErrFull(t *testing.T) {
	b := newBuf(t, 2)
	b.Write(addr.BlockOf(0x000), 0, 8, 1, nil)
	b.Write(addr.BlockOf(0x040), 0, 8, 2, nil)
	if !b.Full() {
		t.Fatal("buffer not full after capacity allocations")
	}
	// Coalescing write still works when full.
	if _, _, err := b.Write(addr.BlockOf(0x000), 8, 8, 3, nil); err != nil {
		t.Errorf("coalescing write failed on full buffer: %v", err)
	}
	// New allocation fails.
	_, _, err := b.Write(addr.BlockOf(0x080), 0, 8, 4, nil)
	if !errors.Is(err, ErrFull) {
		t.Errorf("err = %v, want ErrFull", err)
	}
}

func TestWatermarks(t *testing.T) {
	b := newBuf(t, 8) // hi = 6, lo = 2
	for i := 0; i < 5; i++ {
		b.Write(addr.FromIndex(uint64(i)), 0, 8, 0, nil)
	}
	if b.AboveHigh() {
		t.Error("above high at 5/8")
	}
	b.Write(addr.FromIndex(5), 0, 8, 0, nil)
	if !b.AboveHigh() {
		t.Error("not above high at 6/8")
	}
	for b.Len() > 2 {
		b.DrainOldest()
	}
	if b.AboveLow() {
		t.Error("above low at 2/8 (lo=2)")
	}
}

func TestDrainOldestFIFO(t *testing.T) {
	b := newBuf(t, 4)
	blocks := []addr.Block{addr.FromIndex(3), addr.FromIndex(1), addr.FromIndex(2)}
	for _, blk := range blocks {
		b.Write(blk, 0, 8, 0, nil)
	}
	for i, want := range blocks {
		e := b.DrainOldest()
		if e == nil || e.Block != want {
			t.Fatalf("drain %d = %v, want %v", i, e, want)
		}
	}
	if b.DrainOldest() != nil {
		t.Error("drain of empty buffer returned entry")
	}
}

func TestRemoveSkipsStaleFIFO(t *testing.T) {
	b := newBuf(t, 4)
	b.Write(addr.FromIndex(1), 0, 8, 0, nil)
	b.Write(addr.FromIndex(2), 0, 8, 0, nil)
	if e := b.Remove(addr.FromIndex(1)); e == nil || e.Block != addr.FromIndex(1) {
		t.Fatal("Remove failed")
	}
	if e := b.Remove(addr.FromIndex(1)); e != nil {
		t.Error("double remove returned entry")
	}
	// DrainOldest must skip the removed block's stale FIFO slot.
	e := b.DrainOldest()
	if e == nil || e.Block != addr.FromIndex(2) {
		t.Fatalf("drain after remove = %v", e)
	}
}

func TestReallocationAfterDrainIsNewEntry(t *testing.T) {
	b := newBuf(t, 4)
	blk := addr.FromIndex(9)
	b.Write(blk, 0, 8, 1, nil)
	b.DrainOldest()
	e, allocated, err := b.Write(blk, 0, 8, 2, nil)
	if err != nil || !allocated {
		t.Fatalf("realloc: alloc=%v err=%v", allocated, err)
	}
	if e.Writes != 1 {
		t.Errorf("recycled entry writes = %d, want 1", e.Writes)
	}
}

func TestNWPE(t *testing.T) {
	b := newBuf(t, 4)
	blk1, blk2 := addr.FromIndex(1), addr.FromIndex(2)
	b.Write(blk1, 0, 8, 0, nil)
	b.Write(blk1, 8, 8, 0, nil)
	b.Write(blk1, 16, 8, 0, nil) // 3 writes
	b.Write(blk2, 0, 8, 0, nil)  // 1 write
	if b.NWPE() != 0 {
		t.Error("NWPE counted resident entries")
	}
	b.DrainOldest()
	b.DrainOldest()
	if got := b.NWPE(); got != 2 {
		t.Errorf("NWPE = %v, want 2", got)
	}
}

func TestEntriesOldestFirst(t *testing.T) {
	b := newBuf(t, 4)
	for i := 0; i < 3; i++ {
		b.Write(addr.FromIndex(uint64(10-i)), 0, 8, 0, nil)
	}
	es := b.Entries()
	if len(es) != 3 {
		t.Fatalf("entries = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Seq < es[i-1].Seq {
			t.Error("entries not in allocation order")
		}
	}
}

func TestStats(t *testing.T) {
	b := newBuf(t, 4)
	b.Write(addr.FromIndex(1), 0, 8, 0, nil)
	b.Write(addr.FromIndex(1), 0, 8, 0, nil)
	b.Write(addr.FromIndex(2), 0, 8, 0, nil)
	b.DrainOldest()
	allocs, writes, drains := b.Stats()
	if allocs != 2 || writes != 3 || drains != 1 {
		t.Errorf("stats = %d/%d/%d", allocs, writes, drains)
	}
}

func TestExtPayload(t *testing.T) {
	type secExt struct {
		counter uint64
		valid   bool
	}
	b, err := New[secExt](4, 0.75, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	e, _, _ := b.Write(addr.FromIndex(1), 0, 8, 0, nil)
	e.Ext.counter = 42
	e.Ext.valid = true
	if got := b.Lookup(addr.FromIndex(1)); got.Ext.counter != 42 || !got.Ext.valid {
		t.Error("extension payload not retained")
	}
}

func BenchmarkWriteCoalesce(b *testing.B) {
	buf, _ := New[noExt](32, 0.75, 0.25)
	blk := addr.FromIndex(1)
	buf.Write(blk, 0, 8, 0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Write(blk, i%8*8, 8, uint64(i), nil)
	}
}
