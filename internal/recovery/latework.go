package recovery

import (
	"errors"
	"fmt"

	"secpb/internal/core"
	"secpb/internal/energy"
	"secpb/internal/nvm"
)

// ErrBatteryExhausted reports that the battery budget died before the
// late-work journal completed: a nested crash. The NV image is left
// self-consistent for the drained prefix (the staged BMT sweep is
// committed before the error returns), and the journal cursor records
// exactly where a second recovery must resume.
var ErrBatteryExhausted = errors.New("recovery: battery budget exhausted during late work")

// Journal is the persistent late-work journal: the battery-backed
// entries a crash left behind plus a durable cursor recording how many
// have completed their tuple. It survives a nested crash (the battery
// region that holds the SecPB entries holds it, by construction — it IS
// those entries plus one counter), so a second recovery boot resumes
// instead of restarting, and its checksum is validated before any entry
// is replayed so a corrupted journal surfaces as a typed error rather
// than draining garbage into PM.
type Journal struct {
	entries   []core.Entry
	done      int
	sweepDone bool
	sum       uint64
}

// NewJournal captures the entries (copied; the caller's slice is not
// retained) and seals the initial checksum.
func NewJournal(entries []core.Entry) *Journal {
	j := &Journal{entries: append([]core.Entry(nil), entries...)}
	j.seal()
	return j
}

// Len returns the total number of journaled entries.
func (j *Journal) Len() int { return len(j.entries) }

// Done returns how many entries have completed their tuple.
func (j *Journal) Done() int { return j.done }

// Remaining returns how many entries still owe late work.
func (j *Journal) Remaining() int { return len(j.entries) - j.done }

// Complete reports whether every entry drained and the closing BMT
// sweep committed.
func (j *Journal) Complete() bool { return j.done == len(j.entries) && j.sweepDone }

// checksum hashes the journal contents: cursor, sweep flag, and every
// entry's identity and payload (block, data, coalescing metadata, and
// the prepared-tuple fields with their valid bits).
func (j *Journal) checksum() uint64 {
	h := fnvOffset
	var buf [8]byte
	u64 := func(v uint64) {
		putU64(buf[:], v)
		h = fnvAdd(h, buf[:])
	}
	u64(uint64(j.done))
	if j.sweepDone {
		u64(1)
	} else {
		u64(0)
	}
	u64(uint64(len(j.entries)))
	for i := range j.entries {
		e := &j.entries[i]
		u64(e.Block.Addr())
		h = fnvAdd(h, e.Data[:])
		u64(uint64(e.ASID))
		u64(uint64(e.Writes))
		u64(e.Seq)
		m := &e.Ext
		u64(boolBits(m.OTPValid) | boolBits(m.CipherValid)<<1 | boolBits(m.CounterValid)<<2 |
			boolBits(m.BMTDone)<<3 | boolBits(m.MACValid)<<4)
		h = fnvAdd(h, m.OTP[:])
		h = fnvAdd(h, m.Cipher[:])
		u64(m.Counter)
		u64(uint64(m.CounterAdvance))
		h = fnvAdd(h, m.MAC[:])
	}
	return h
}

func boolBits(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// FNV-1a over little-endian u64 fields, mirroring the nvm package's
// NV-image checksums.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvAdd(h uint64, p []byte) uint64 {
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

func putU64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

// seal re-signs the journal after a durable update.
func (j *Journal) seal() { j.sum = j.checksum() }

// Validate checks the journal against its checksum, returning a typed
// *nvm.CorruptStateError on mismatch.
func (j *Journal) Validate() error {
	if got := j.checksum(); got != j.sum {
		return &nvm.CorruptStateError{
			Component: "late-work journal",
			Detail: fmt.Sprintf("checksum %#x does not match stored %#x over %d entries (cursor %d)",
				got, j.sum, len(j.entries), j.done),
		}
	}
	return nil
}

// Tamper damages the journal without resealing it (test hook for the
// validation path).
func (j *Journal) Tamper() error {
	if len(j.entries) == 0 {
		return fmt.Errorf("recovery: empty journal cannot be tampered")
	}
	j.entries[0].Data[0] ^= 1
	return nil
}

// DrainEntries performs the post-crash late work for battery-backed
// SecPB state captured at a crash point: every entry's memory tuple is
// completed at the (restored) memory controller in allocation order,
// consuming whatever prepared metadata the scheme generated early, and
// the epoch ends with one coalesced BMT sweep — exactly the procedure
// SecPB.CrashDrain runs on a live buffer. It is the unlimited-budget
// form of DrainEntriesBudget.
//
// Entries are passed by value (a crash snapshot owns copies, not the
// live buffer): an entry whose first drain was interrupted mid-tuple is
// simply re-drained, and PersistBlock's stale-prepared-metadata check
// regenerates any element the interrupted drain had built under a
// now-superseded counter.
func DrainEntries(mc *nvm.Controller, entries []core.Entry) (nvm.Cost, error) {
	return DrainEntriesBudget(mc, NewJournal(entries), nil)
}

// DrainEntriesBudget is DrainEntries under a battery: each entry's drain
// first withdraws the scheme's worst-case per-entry energy (the same
// Table V arithmetic the battery was sized with, via
// energy.PerEntryDrainJ) from the budget. If the withdrawal fails the
// battery is dead — the staged BMT sweep is committed (the per-entry
// worst case covers the entry's own tree walk, so the reserve that
// admitted the last entry also closes its sweep), the journal cursor is
// sealed, and ErrBatteryExhausted reports the nested crash. Re-invoking
// with the same journal — after the harness re-restores the NV image —
// resumes at the cursor; completed work is never replayed. A nil budget
// is wall power.
//
// The journal is validated before any entry is replayed; a corrupted
// journal returns *nvm.CorruptStateError and touches nothing.
func DrainEntriesBudget(mc *nvm.Controller, j *Journal, budget *energy.Budget) (total nvm.Cost, err error) {
	if err := j.Validate(); err != nil {
		return total, err
	}
	var perEntryJ float64
	if budget != nil {
		cfg := mc.Config()
		perEntryJ, err = energy.PerEntryDrainJ(cfg.Scheme, cfg.BMTLevels)
		if err != nil {
			return total, err
		}
	}
	var prep nvm.PreparedMeta
	for j.done < len(j.entries) {
		if !budget.Consume(perEntryJ) {
			mc.CompleteSweep()
			j.seal()
			return total, ErrBatteryExhausted
		}
		e := &j.entries[j.done]
		e.Ext.PrepareInto(&prep)
		cost, perr := mc.PersistBlock(e.Block, &e.Data, &prep)
		if perr != nil {
			return total, fmt.Errorf("recovery: late work for block %#x: %w", e.Block.Addr(), perr)
		}
		total.Add(cost)
		j.done++
		j.seal() // the cursor advance is a durable journal update
	}
	mc.CompleteSweep()
	j.sweepDone = true
	j.seal()
	return total, nil
}
