package recovery

import (
	"fmt"

	"secpb/internal/core"
	"secpb/internal/nvm"
)

// DrainEntries performs the post-crash late work for battery-backed
// SecPB state captured at a crash point: every entry's memory tuple is
// completed at the (restored) memory controller in allocation order,
// consuming whatever prepared metadata the scheme generated early, and
// the epoch ends with one coalesced BMT sweep — exactly the procedure
// SecPB.CrashDrain runs on a live buffer.
//
// Entries are passed by value (a crash snapshot owns copies, not the
// live buffer): an entry whose first drain was interrupted mid-tuple is
// simply re-drained, and PersistBlock's stale-prepared-metadata check
// regenerates any element the interrupted drain had built under a
// now-superseded counter.
func DrainEntries(mc *nvm.Controller, entries []core.Entry) (total nvm.Cost, err error) {
	var prep nvm.PreparedMeta
	for i := range entries {
		e := &entries[i]
		e.Ext.PrepareInto(&prep)
		cost, perr := mc.PersistBlock(e.Block, &e.Data, &prep)
		if perr != nil {
			return total, fmt.Errorf("recovery: late work for block %#x: %w", e.Block.Addr(), perr)
		}
		total.Add(cost)
	}
	mc.CompleteSweep()
	return total, nil
}
