package recovery

import (
	"fmt"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/crypto"
	"secpb/internal/xrand"
)

// FuzzTriageQuarantine is the exactness property of block-granular
// triage: tamper with 1-4 distinct blocks (a ciphertext bit or a MAC
// bit each) and quarantine must contain exactly the tampered set — no
// false negatives (damage escaping quarantine) and no false positives
// (healthy blocks withheld). Every untampered block must additionally
// be salvaged byte-identical to its pre-damage plaintext. Fuzzed inputs
// steer scheme choice, victim count, and a seed from which victims,
// damage kinds, and bit positions derive deterministically.
func FuzzTriageQuarantine(f *testing.F) {
	getCorruptionBases(f)
	f.Add(uint8(0), uint8(1), uint64(0))
	f.Add(uint8(1), uint8(2), uint64(42))
	f.Add(uint8(3), uint8(3), uint64(0xDEAD))
	f.Add(uint8(5), uint8(4), uint64(0xFA017))
	f.Fuzz(func(t *testing.T, schemeSel uint8, nSel uint8, seed uint64) {
		bases := getCorruptionBases(t)
		base := bases[int(schemeSel)%len(bases)]
		mc, err := base.clone()
		if err != nil {
			t.Fatal(err)
		}
		eng := mc.Engine()

		// Golden plaintexts before any damage.
		want := make(map[addr.Block][addr.BlockBytes]byte, len(base.blocks))
		for _, b := range base.blocks {
			ct, _ := mc.PM().Peek(b)
			want[b] = eng.Decrypt(&ct, b.Addr(), mc.Counters().Value(b))
		}

		n := int(nSel)%4 + 1
		if n > len(base.blocks) {
			n = len(base.blocks)
		}
		r := xrand.New(seed | 1)
		tampered := make(map[addr.Block]string, n)
		for len(tampered) < n {
			victim := base.blocks[r.Intn(len(base.blocks))]
			if _, dup := tampered[victim]; dup {
				continue
			}
			if r.Bool(0.5) {
				bit := r.Intn(addr.BlockBytes * 8)
				if err := mc.PM().Tamper(victim, bit); err != nil {
					t.Fatal(err)
				}
				tampered[victim] = fmt.Sprintf("ciphertext bit %d", bit)
			} else {
				bit := r.Intn(crypto.MACSize * 8)
				if err := mc.MACs().Tamper(victim, bit); err != nil {
					t.Fatal(err)
				}
				tampered[victim] = fmt.Sprintf("MAC bit %d", bit)
			}
		}

		rep, err := Triage(mc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Quarantined != len(tampered) {
			t.Errorf("%s: %d blocks tampered, %d quarantined", base.cfg.Scheme, len(tampered), rep.Quarantined)
		}
		for _, b := range base.blocks {
			class, ok := rep.Class(b)
			if !ok {
				t.Fatalf("%s: block %#x not triaged", base.cfg.Scheme, b.Addr())
			}
			if what, hit := tampered[b]; hit {
				if class != ClassQuarantined {
					t.Errorf("%s: %s on block %#x classed %v, want quarantined (false negative)",
						base.cfg.Scheme, what, b.Addr(), class)
				}
				continue
			}
			if class == ClassQuarantined {
				t.Errorf("%s: untampered block %#x quarantined (false positive)", base.cfg.Scheme, b.Addr())
				continue
			}
			if got, ok := rep.Recovered(b); !ok || got != want[b] {
				t.Errorf("%s: untampered block %#x not salvaged byte-identically", base.cfg.Scheme, b.Addr())
			}
		}
	})
}
