package recovery

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/nvm"
)

// AuditReport summarizes a full-image integrity audit.
type AuditReport struct {
	Blocks       int // data blocks audited
	CounterLines int // counter lines verified against the BMT
	MACFailures  int
	TreeFailures int
	FirstBad     string
}

// Clean reports whether the image audited clean.
func (a AuditReport) Clean() bool { return a.MACFailures == 0 && a.TreeFailures == 0 }

// String renders a summary.
func (a AuditReport) String() string {
	status := "CLEAN"
	if !a.Clean() {
		status = "CORRUPT: " + a.FirstBad
	}
	return fmt.Sprintf("audit: %d blocks, %d counter lines, %d MAC failures, %d tree failures [%s]",
		a.Blocks, a.CounterLines, a.MACFailures, a.TreeFailures, status)
}

// AuditImage exhaustively verifies a post-crash PM image: every
// persisted data block's MAC under its storage counter, and every
// touched counter line's path to the on-chip BMT root. This is the
// recovery-time integrity pass at full scope — a per-block FetchBlock
// only checks one path; the audit proves the whole image is mutually
// consistent before the system exposes it to the crash observer.
func AuditImage(mc *nvm.Controller) (AuditReport, error) {
	var rep AuditReport
	if !mc.Secure() {
		return rep, fmt.Errorf("recovery: audit requires a secure controller")
	}
	eng := mc.Engine()
	pages := map[uint64]bool{}
	for _, b := range sortedPMBlocks(mc) {
		rep.Blocks++
		ct, _ := mc.PM().Peek(b)
		ctr := mc.Counters().Value(b)
		want := eng.MAC(&ct, b.Addr(), ctr)
		if err := mc.MACs().Verify(b, want); err != nil {
			rep.MACFailures++
			if rep.FirstBad == "" {
				rep.FirstBad = err.Error()
			}
		}
		pages[b.CounterLine()] = true
	}
	for page := range pages {
		rep.CounterLines++
		line, ok := mc.Counters().Peek(page)
		if !ok {
			rep.TreeFailures++
			if rep.FirstBad == "" {
				rep.FirstBad = fmt.Sprintf("page %d has data but no counters", page)
			}
			continue
		}
		if err := mc.Tree().Verify(page, line.Bytes()); err != nil {
			rep.TreeFailures++
			if rep.FirstBad == "" {
				rep.FirstBad = err.Error()
			}
		}
	}
	return rep, nil
}

// sortedPMBlocks returns the persisted blocks in address order.
func sortedPMBlocks(mc *nvm.Controller) []addr.Block {
	blocks := mc.PM().Blocks()
	for i := 1; i < len(blocks); i++ {
		for j := i; j > 0 && blocks[j] < blocks[j-1]; j-- {
			blocks[j], blocks[j-1] = blocks[j-1], blocks[j]
		}
	}
	return blocks
}
