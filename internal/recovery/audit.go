package recovery

import (
	"fmt"
	"slices"

	"secpb/internal/addr"
	"secpb/internal/bmt"
	"secpb/internal/nvm"
)

// AuditReport summarizes a full-image integrity audit.
type AuditReport struct {
	Blocks       int // data blocks audited
	CounterLines int // counter lines verified against the BMT
	MACFailures  int
	TreeFailures int
	FirstBad     string
}

// Clean reports whether the image audited clean.
func (a AuditReport) Clean() bool { return a.MACFailures == 0 && a.TreeFailures == 0 }

// String renders a summary.
func (a AuditReport) String() string {
	status := "CLEAN"
	if !a.Clean() {
		status = "CORRUPT: " + a.FirstBad
	}
	return fmt.Sprintf("audit: %d blocks, %d counter lines, %d MAC failures, %d tree failures [%s]",
		a.Blocks, a.CounterLines, a.MACFailures, a.TreeFailures, status)
}

// AuditImage exhaustively verifies a post-crash PM image: every
// persisted data block's MAC under its storage counter, and every
// touched counter line's path to the on-chip BMT root. This is the
// recovery-time integrity pass at full scope — a per-block FetchBlock
// only checks one path; the audit proves the whole image is mutually
// consistent before the system exposes it to the crash observer.
func AuditImage(mc *nvm.Controller) (AuditReport, error) {
	var rep AuditReport
	if !mc.Secure() {
		return rep, fmt.Errorf("recovery: audit requires a secure controller")
	}
	eng := mc.Engine()
	pages := map[uint64]bool{}
	for _, b := range sortedPMBlocks(mc) {
		rep.Blocks++
		ct, _ := mc.PM().Peek(b)
		ctr := mc.Counters().Value(b)
		want := eng.MAC(&ct, b.Addr(), ctr)
		if err := mc.MACs().Verify(b, want); err != nil {
			rep.MACFailures++
			if rep.FirstBad == "" {
				rep.FirstBad = err.Error()
			}
		}
		pages[b.CounterLine()] = true
	}
	pageList := make([]uint64, 0, len(pages))
	for page := range pages {
		pageList = append(pageList, page)
	}
	slices.Sort(pageList) // deterministic audit order (and FirstBad)
	replay := make([]uint64, 0, len(pageList))
	for _, page := range pageList {
		rep.CounterLines++
		line, ok := mc.Counters().Peek(page)
		if !ok {
			rep.TreeFailures++
			if rep.FirstBad == "" {
				rep.FirstBad = fmt.Sprintf("page %d has data but no counters", page)
			}
			continue
		}
		replay = append(replay, page)
		if err := mc.Tree().Verify(page, line.Bytes()); err != nil {
			rep.TreeFailures++
			if rep.FirstBad == "" {
				rep.FirstBad = err.Error()
			}
		}
	}

	// Root reconstruction: the recovery-time replay. Every persisted
	// counter line is replayed into a fresh tree through one coalesced
	// UpdateBatch sweep, and the rebuilt root must equal the NV root
	// register. The per-path checks above trust the stored interior
	// nodes they traverse; the replay proves the register is derivable
	// from the persisted counters alone, so a crash path that persisted
	// data without completing its tree updates (the recoverability gap)
	// cannot audit clean.
	rebuilt, err := bmt.New(eng, mc.Tree().Height())
	if err != nil {
		return rep, fmt.Errorf("recovery: replay tree: %w", err)
	}
	var lineBuf []byte
	rebuilt.UpdateBatch(replay, func(page uint64) []byte {
		line, _ := mc.Counters().Peek(page)
		lineBuf = line.AppendBytes(lineBuf[:0])
		return lineBuf
	})
	if rebuilt.Root() != mc.Tree().Root() {
		rep.TreeFailures++
		if rep.FirstBad == "" {
			rep.FirstBad = "replayed counter lines do not reproduce the root register"
		}
	}
	return rep, nil
}

// AuditError is a full-image audit that found inconsistencies: the
// settled PM image does not mutually verify (MAC or BMT failures). It
// is typed so callers that gate on a clean image — the streaming
// service refuses to serve a session result off an image that does not
// audit clean — can distinguish an integrity finding from harness
// failures.
type AuditError struct {
	Report AuditReport
}

func (e *AuditError) Error() string {
	return "recovery: " + e.Report.String()
}

// AuditClean runs the full-image audit on a settled controller and
// converts an unclean report into a typed *AuditError. Insecure
// controllers (the BBB baseline) have nothing to audit and pass
// trivially. The controller must be settled first — battery-backed
// buffers drained, staged walks committed — since a mid-stream image
// legitimately lacks the tuples still held in the SecPB.
func AuditClean(mc *nvm.Controller) error {
	if !mc.Secure() {
		return nil
	}
	rep, err := AuditImage(mc)
	if err != nil {
		return err
	}
	if !rep.Clean() {
		return &AuditError{Report: rep}
	}
	return nil
}

// sortedPMBlocks returns the persisted blocks in address order. The PM
// image's paged table traverses in ascending address order already, so
// this is a plain read.
func sortedPMBlocks(mc *nvm.Controller) []addr.Block {
	return mc.PM().Blocks()
}
