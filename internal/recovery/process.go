package recovery

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/core"
	"secpb/internal/nvm"
)

// DrainScope selects how a detected application crash is handled
// (Section III.B): the paper's chosen drain-all policy, or the
// alternative drain-process policy that drains only the crashing
// process's ASID-tagged entries (at the cost of tagging the buffer).
type DrainScope int

const (
	// DrainAll drains and sec-syncs every entry regardless of owner —
	// the paper's choice: simpler hardware, rare event, and no ASID
	// tags needed.
	DrainAll DrainScope = iota
	// DrainProcess drains only the crashing process's entries, keeping
	// other processes' coalescing opportunities intact.
	DrainProcess
)

// String names the scope.
func (s DrainScope) String() string {
	if s == DrainAll {
		return "drain-all"
	}
	return "drain-process"
}

// ProcessCrashReport describes the handling of one application crash.
type ProcessCrashReport struct {
	Scope          DrainScope
	ASID           uint16
	EntriesDrained int
	EntriesLeft    int // other processes' entries still resident
	DrainCost      nvm.Cost
}

// String renders a summary.
func (r ProcessCrashReport) String() string {
	return fmt.Sprintf("app crash (asid %d, %v): drained %d entries, %d left resident",
		r.ASID, r.Scope, r.EntriesDrained, r.EntriesLeft)
}

// HandleAppCrash applies the selected policy to a SecPB after a detected
// application crash, then verifies that every drained block is
// recoverable from PM against the supplied reference view (the crashing
// process's committed state).
func HandleAppCrash(spb *core.SecPB, mc *nvm.Controller, asid uint16, scope DrainScope,
	reference map[addr.Block][addr.BlockBytes]byte) (ProcessCrashReport, error) {
	rep := ProcessCrashReport{Scope: scope, ASID: asid}
	var err error
	switch scope {
	case DrainAll:
		rep.EntriesDrained, rep.DrainCost, err = spb.CrashDrain()
	case DrainProcess:
		rep.EntriesDrained, rep.DrainCost, err = spb.DrainProcess(asid)
	default:
		return rep, fmt.Errorf("recovery: unknown drain scope %d", scope)
	}
	if err != nil {
		return rep, fmt.Errorf("recovery: app-crash drain: %w", err)
	}
	rep.EntriesLeft = spb.Len()
	for block, want := range reference {
		got, _, err := mc.FetchBlock(block)
		if err != nil {
			return rep, fmt.Errorf("recovery: app-crash recovery of %#x: %w", block.Addr(), err)
		}
		if got != want {
			return rep, fmt.Errorf("recovery: app-crash recovery of %#x: wrong plaintext", block.Addr())
		}
	}
	return rep, nil
}
