package recovery

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/bmt"
	"secpb/internal/config"
	"secpb/internal/crypto"
	"secpb/internal/engine"
	"secpb/internal/meta"
	"secpb/internal/nvm"
	"secpb/internal/workload"
)

// corruptionBase is a pristine post-crash-drain NV image for one scheme,
// built once and cloned per fuzz execution so tampering never leaks
// between iterations.
type corruptionBase struct {
	cfg    config.Config
	key    []byte
	pm     *nvm.PM
	ctrs   *meta.CounterStore
	macs   *meta.MACStore
	tree   *bmt.Tree
	blocks []addr.Block // persisted blocks, address order
}

func (b *corruptionBase) clone() (*nvm.Controller, error) {
	return nvm.Restore(b.cfg, b.key, b.pm.Snapshot(), b.ctrs.Snapshot(), b.macs.Snapshot(), b.tree.Snapshot())
}

var corruptionBases struct {
	once  sync.Once
	bases []*corruptionBase
	err   error
}

func buildCorruptionBases() ([]*corruptionBase, error) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		return nil, err
	}
	key := []byte("corruption-fuzz-key")
	var bases []*corruptionBase
	for _, scheme := range config.SecPBSchemes() {
		cfg := config.Default().WithScheme(scheme)
		cfg.Seed = 0xFACE
		e, err := engine.New(cfg, prof, key)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(prof, cfg.Seed, 2500)
		if err != nil {
			return nil, err
		}
		if err := e.Run(gen); err != nil {
			return nil, err
		}
		rep, err := CrashAndRecover(e)
		if err != nil {
			return nil, err
		}
		if !rep.Clean() {
			return nil, fmt.Errorf("%v base image not clean: %s", scheme, rep)
		}
		mc := e.Controller()
		blocks := mc.PM().Blocks()
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		if len(blocks) == 0 {
			return nil, fmt.Errorf("%v base image has no persisted blocks", scheme)
		}
		bases = append(bases, &corruptionBase{
			cfg:    cfg,
			key:    key,
			pm:     mc.PM().Snapshot(),
			ctrs:   mc.Counters().Snapshot(),
			macs:   mc.MACs().Snapshot(),
			tree:   mc.Tree().Snapshot(),
			blocks: blocks,
		})
	}
	return bases, nil
}

func getCorruptionBases(tb testing.TB) []*corruptionBase {
	corruptionBases.once.Do(func() {
		corruptionBases.bases, corruptionBases.err = buildCorruptionBases()
	})
	if corruptionBases.err != nil {
		tb.Fatal(corruptionBases.err)
	}
	return corruptionBases.bases
}

// FuzzCorruptionDetection is the zero-false-negative property of the
// integrity machinery: flip any single element of the persisted image —
// a ciphertext bit, a MAC bit, a counter value, or a stored BMT node —
// and the full-image audit must flag it. Fuzzed inputs only steer which
// element is corrupted; every execution that reaches the assert has
// genuinely damaged the image first.
func FuzzCorruptionDetection(f *testing.F) {
	getCorruptionBases(f)
	f.Add(uint8(0), uint16(0), uint8(0), uint16(0))
	f.Add(uint8(1), uint16(7), uint8(1), uint16(100))
	f.Add(uint8(2), uint16(31), uint8(2), uint16(3))
	f.Add(uint8(3), uint16(255), uint8(3), uint16(40))
	f.Add(uint8(4), uint16(1000), uint8(3), uint16(511))
	f.Add(uint8(5), uint16(65535), uint8(0), uint16(511))
	f.Fuzz(func(t *testing.T, schemeSel uint8, victimSel uint16, kindSel uint8, bitSel uint16) {
		bases := getCorruptionBases(t)
		base := bases[int(schemeSel)%len(bases)]
		mc, err := base.clone()
		if err != nil {
			t.Fatal(err)
		}
		victim := base.blocks[int(victimSel)%len(base.blocks)]

		var what string
		switch kindSel % 4 {
		case 0:
			bit := int(bitSel) % (addr.BlockBytes * 8)
			if err := mc.PM().Tamper(victim, bit); err != nil {
				t.Fatal(err)
			}
			what = fmt.Sprintf("ciphertext bit %d", bit)
		case 1:
			bit := int(bitSel) % (crypto.MACSize * 8)
			if err := mc.MACs().Tamper(victim, bit); err != nil {
				t.Fatal(err)
			}
			what = fmt.Sprintf("MAC bit %d", bit)
		case 2:
			// Any nonzero delta mod 256 yields a different minor counter.
			delta := uint8(bitSel%255) + 1
			old := uint8(mc.Counters().Value(victim))
			if err := mc.Counters().Tamper(victim, old+delta); err != nil {
				t.Fatal(err)
			}
			what = fmt.Sprintf("counter minor %d -> %d", old, old+delta)
		case 3:
			// Flip one bit of a stored node on the victim page's BMT
			// path. All path nodes of a persisted page are materialized.
			ids := mc.Tree().PathNodeIDs(victim.Page())
			id := ids[int(bitSel)%len(ids)]
			level, idx := int(id>>56), id&((1<<56)-1)
			node, ok := mc.Tree().Node(level, idx)
			if !ok {
				t.Fatalf("path node (%d,%d) of persisted page not materialized", level, idx)
			}
			bit := int(bitSel) % (bmt.DigestSize * 8)
			node[bit/8] ^= 1 << (bit % 8)
			if err := mc.Tree().Tamper(level, idx, node); err != nil {
				t.Fatal(err)
			}
			what = fmt.Sprintf("BMT node (%d,%d) bit %d", level, idx, bit)
		}

		rep, err := AuditImage(mc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clean() {
			t.Errorf("%s: %s on block %#x escaped the audit (false negative)",
				base.cfg.Scheme, what, victim.Addr())
		}
	})
}
