package recovery

import (
	"errors"
	"sort"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/energy"
	"secpb/internal/engine"
	"secpb/internal/nvm"
	"secpb/internal/workload"
)

// faultMode is one column of the fault-rate sweep.
type faultMode struct {
	name     string
	wf, torn float64 // write-path rates
	rot      float64 // latent bit-rot rate
}

// Rates are high relative to real media because the lazy schemes defer
// most PM traffic to the post-crash drain, leaving only tens of write
// visits per short run to sample from.
var faultModes = []faultMode{
	{name: "clean"},
	{name: "torn-write", wf: 0.1, torn: 0.1},
	{name: "bit-rot", rot: 0.05},
}

// TestFaultSweep is the end-to-end degraded-mode gate: every scheme runs
// a seeded workload under each media-fault mode, crashes, drains its
// late work through battery-budgeted boots, suffers post-crash bit-rot
// decay, and triages the image. Clean media must leave zero media
// stats and a byte-perfect image; torn writes must be fully absorbed by
// the retry path; bit-rot must quarantine exactly the rotted blocks
// while everything else recovers byte-identically.
func TestFaultSweep(t *testing.T) {
	ops := uint64(4000)
	if testing.Short() {
		ops = 1200
	}
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("fault-sweep-fixed-key")
	for _, scheme := range config.SecPBSchemes() {
		for _, mode := range faultModes {
			t.Run(scheme.String()+"/"+mode.name, func(t *testing.T) {
				cfg := config.Default().WithScheme(scheme)
				cfg.Seed = 0x5EED
				cfg.FaultSeed = 0xFA017
				cfg.FaultWriteFailRate = mode.wf
				cfg.FaultTornRate = mode.torn
				cfg.FaultRotRate = mode.rot
				e, err := engine.New(cfg, prof, key)
				if err != nil {
					t.Fatal(err)
				}
				gen, err := workload.NewGenerator(prof, cfg.Seed, ops)
				if err != nil {
					t.Fatal(err)
				}
				if err := e.Run(gen); err != nil {
					t.Fatal(err)
				}
				golden := e.Memory()
				entries := e.SecPB().SnapshotEntries()
				mc := e.Controller()

				// Battery-budgeted boot loop: ~3 entries per boot until the
				// journal completes (clean media finishes in one boot when
				// few entries are pending).
				perJ, err := energy.PerEntryDrainJ(scheme, cfg.BMTLevels)
				if err != nil {
					t.Fatal(err)
				}
				j := NewJournal(entries)
				for !j.Complete() {
					budget := energy.NewBudget(3.5 * perJ)
					if _, derr := DrainEntriesBudget(mc, j, budget); derr != nil && !errors.Is(derr, ErrBatteryExhausted) {
						t.Fatal(derr)
					}
				}

				stats := mc.MediaStats()
				if mode.name == "clean" {
					if stats != (nvm.MediaStats{}) {
						t.Fatalf("clean media accumulated stats %+v", stats)
					}
				}
				if mode.wf > 0 || mode.torn > 0 {
					if stats.WriteRetries == 0 {
						t.Error("faulty write path never retried")
					}
				}

				// Post-crash latent decay: rot flips bits in resting blocks.
				decayed := mc.PM().Decay()
				if mode.rot > 0 && len(decayed) == 0 {
					t.Fatal("rot mode decayed nothing; sweep vacuous (adjust seed or rate)")
				}
				if mode.rot == 0 && len(decayed) != 0 {
					t.Fatalf("rot disabled but %d blocks decayed", len(decayed))
				}
				rotted := make(map[addr.Block]bool, len(decayed))
				for _, b := range decayed {
					rotted[b] = true
				}

				rep, err := Triage(mc)
				if err != nil {
					t.Fatal(err)
				}
				if mode.rot == 0 {
					// Write-path faults are absorbed before acceptance; the
					// image must triage perfectly clean.
					if rep.Degraded() {
						t.Fatalf("image degraded without rot: %s", rep)
					}
				} else {
					// Quarantine must cover every decayed block and nothing
					// else (rot flips ciphertext; the MAC convicts exactly).
					if rep.Quarantined != len(decayed) {
						t.Errorf("%d blocks decayed but %d quarantined", len(decayed), rep.Quarantined)
					}
					for _, v := range rep.Verdicts {
						if v.Class == ClassQuarantined && !rotted[v.Block] {
							t.Errorf("block %#x quarantined but never decayed (false positive)", v.Block.Addr())
						}
						if v.Class != ClassQuarantined && rotted[v.Block] {
							t.Errorf("decayed block %#x classed %v (false negative)", v.Block.Addr(), v.Class)
						}
					}
				}

				// Every non-quarantined block must match the golden model.
				blocks := make([]addr.Block, 0, len(golden))
				for b := range golden {
					blocks = append(blocks, b)
				}
				sort.Slice(blocks, func(i, k int) bool { return blocks[i] < blocks[k] })
				for _, b := range blocks {
					if rotted[b] {
						continue
					}
					class, ok := rep.Class(b)
					if !ok {
						t.Fatalf("golden block %#x missing from triage", b.Addr())
					}
					if class == ClassQuarantined {
						continue // already reported above
					}
					got, ok := rep.Recovered(b)
					if !ok || got != golden[b] {
						t.Errorf("block %#x (%v) not byte-identical to golden model", b.Addr(), class)
					}
				}
			})
		}
	}
}
