package recovery

import (
	"bytes"
	"context"
	"testing"
)

// TestHealMatrixSmoke gates the degraded-mode grid: all six schemes on
// faulty media under a budgeted battery must hold the heal contract.
func TestHealMatrixSmoke(t *testing.T) {
	m, err := ExploreHeal(context.Background(), HealOptions{
		Ops:           1500,
		Seed:          42,
		WriteFailRate: 0.05,
		TornRate:      0.05,
		RotRate:       0.05,
		BudgetEntries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(m.Cells))
	}
	sawRetry, sawQuar := false, false
	for i := range m.Cells {
		c := &m.Cells[i]
		if !c.Healthy() {
			t.Errorf("%s/%s: mismatches=%d missedDecay=%d first: %s",
				c.Scheme, c.Workload, c.Mismatches, c.MissedDecay, c.FirstBad)
		}
		if c.Blocks == 0 || c.Drained == 0 {
			t.Errorf("%s/%s: vacuous cell (%d blocks, %d drained)", c.Scheme, c.Workload, c.Blocks, c.Drained)
		}
		sawRetry = sawRetry || c.WriteRetries > 0
		sawQuar = sawQuar || c.Quarantined > 0
	}
	if !sawRetry {
		t.Error("no cell exercised the retry path; fault rates too low for this trace")
	}
	if !sawQuar {
		t.Error("no cell quarantined anything; rot rate too low for this trace")
	}
}

// TestHealMatrixDeterministic pins the artifact: identical options must
// yield byte-identical JSON regardless of worker-pool size.
func TestHealMatrixDeterministic(t *testing.T) {
	opts := HealOptions{
		Ops:           800,
		Seed:          7,
		WriteFailRate: 0.05,
		TornRate:      0.05,
		RotRate:       0.03,
		BudgetEntries: 2,
	}
	render := func(workers int) []byte {
		o := opts
		o.Workers = workers
		m, err := ExploreHeal(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("serial and parallel heal artifacts differ:\n%s\nvs\n%s", serial, parallel)
	}
}
