package recovery

import (
	"errors"
	"runtime"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/bmt"
	"secpb/internal/config"
	"secpb/internal/crypto"
	"secpb/internal/energy"
	"secpb/internal/engine"
	"secpb/internal/workload"
)

// faultRunFingerprint runs one seeded faulty-media crash/drain cycle
// (COBCM, torn-write media) end to end and returns the recovered PM
// image plus the BMT root — everything downstream triage depends on.
func faultRunFingerprint(t *testing.T) (map[addr.Block][addr.BlockBytes]byte, bmt.Digest) {
	t.Helper()
	cfg := config.Default().WithScheme(config.SchemeCOBCM)
	cfg.Seed = 0x5EED
	cfg.FaultSeed = 0xFA017
	cfg.FaultWriteFailRate = 0.1
	cfg.FaultTornRate = 0.1
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(cfg, prof, []byte("parallel-sweep-key"))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, cfg.Seed, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(gen); err != nil {
		t.Fatal(err)
	}
	mc := e.Controller()
	perJ, err := energy.PerEntryDrainJ(cfg.Scheme, cfg.BMTLevels)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(e.SecPB().SnapshotEntries())
	for !j.Complete() {
		budget := energy.NewBudget(3.5 * perJ)
		if _, derr := DrainEntriesBudget(mc, j, budget); derr != nil && !errors.Is(derr, ErrBatteryExhausted) {
			t.Fatal(derr)
		}
	}
	img := make(map[addr.Block][addr.BlockBytes]byte)
	for _, b := range mc.PM().Blocks() {
		ct, _ := mc.PM().Peek(b)
		img[b] = ct
	}
	return img, mc.Tree().Root()
}

// TestFaultSweepParallelSweepIdentity holds a degraded-media
// crash-and-drain run byte-identical between the serial and parallel
// sweep configurations: faulty media disables drain-tuple staging, but
// the BMT sweeps (and any batched MAC hashing) still run, and the
// recovered NV image must not depend on how they were scheduled.
func TestFaultSweepParallelSweepIdentity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	defer bmt.SetDefaultSweepWorkers(0)
	defer crypto.SetDefaultLanes(0)

	bmt.SetDefaultSweepWorkers(1)
	crypto.SetDefaultLanes(1)
	serialImg, serialRoot := faultRunFingerprint(t)

	for _, workers := range []int{4, 8} {
		bmt.SetDefaultSweepWorkers(workers)
		crypto.SetDefaultLanes(4)
		img, root := faultRunFingerprint(t)
		if root != serialRoot {
			t.Errorf("BMT root differs with %d sweep workers", workers)
		}
		if len(img) != len(serialImg) {
			t.Fatalf("PM image has %d blocks with %d sweep workers, %d serial", len(img), workers, len(serialImg))
		}
		for b, ct := range serialImg {
			if img[b] != ct {
				t.Errorf("block %#x ciphertext differs with %d sweep workers", b.Addr(), workers)
			}
		}
	}
}
