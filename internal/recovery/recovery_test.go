package recovery

import (
	"strings"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/workload"
	"secpb/internal/xrand"
)

// crashedEngine runs nops of the named benchmark under the scheme and
// returns the engine at the crash point.
func crashedEngine(t *testing.T, scheme config.Scheme, bench string, seed uint64, nops uint64) *engine.Engine {
	t.Helper()
	cfg := config.Default().WithScheme(scheme)
	cfg.Seed = seed
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(cfg, prof, []byte("recovery-test"))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, seed, nops)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(gen); err != nil {
		t.Fatal(err)
	}
	return e
}

// someVictim returns a persisted block to attack.
func someVictim(t *testing.T, e *engine.Engine) addr.Block {
	t.Helper()
	blocks := e.Controller().PM().Blocks()
	if len(blocks) == 0 {
		t.Fatal("no persisted blocks")
	}
	best := blocks[0]
	for _, b := range blocks {
		if b < best {
			best = b
		}
	}
	return best
}

func TestCrashRecoveryCleanAllSchemes(t *testing.T) {
	// The headline invariant: for every scheme, a crash at an arbitrary
	// point recovers exactly the persist-order prefix with verification
	// passing.
	for _, scheme := range config.SecPBSchemes() {
		e := crashedEngine(t, scheme, "gcc", 1, 3000)
		rep, err := CrashAndRecover(e)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !rep.Clean() {
			t.Fatalf("%v: %s", scheme, rep)
		}
		if rep.BlocksChecked == 0 {
			t.Fatalf("%v: nothing recovered", scheme)
		}
	}
}

func TestCrashRecoveryRandomized(t *testing.T) {
	// Sweep schemes x crash points x workloads with derived seeds.
	r := xrand.New(0xC4A54)
	benches := []string{"gamess", "povray", "mcf", "bwaves"}
	for trial := 0; trial < 24; trial++ {
		scheme := config.SecPBSchemes()[trial%6]
		bench := benches[trial%len(benches)]
		nops := 500 + uint64(r.Intn(4000))
		e := crashedEngine(t, scheme, bench, r.Uint64(), nops)
		rep, err := CrashAndRecover(e)
		if err != nil {
			t.Fatalf("trial %d (%v/%s/%d ops): %v", trial, scheme, bench, nops, err)
		}
		if !rep.Clean() {
			t.Fatalf("trial %d (%v/%s/%d ops): %s", trial, scheme, bench, nops, rep)
		}
	}
}

func TestGapCrashCorrupts(t *testing.T) {
	// The motivation (Figure 1b): without SecPB's coordination, a
	// persistent-hierarchy crash yields wrong plaintext and failed
	// integrity verification.
	e := crashedEngine(t, config.SchemeCOBCM, "povray", 7, 3000)
	if e.SecPB().Len() == 0 {
		t.Fatal("no entries resident at crash; pick a larger run")
	}
	rep, err := GapCrash(e)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("recoverability-gap crash recovered cleanly — the gap the paper closes is not being modelled")
	}
	if rep.VerifyFailures == 0 {
		t.Error("gap crash produced no verification failures")
	}
}

func TestGapCrashRequiresSecureController(t *testing.T) {
	e := crashedEngine(t, config.SchemeBBB, "gcc", 1, 500)
	if _, err := GapCrash(e); err == nil {
		t.Error("GapCrash accepted insecure controller")
	}
}

func TestAllAttacksDetected(t *testing.T) {
	for _, scheme := range []config.Scheme{config.SchemeCOBCM, config.SchemeNoGap, config.SchemeCM} {
		for _, a := range Attacks() {
			e := crashedEngine(t, scheme, "gcc", 11, 2000)
			victim := someVictim(t, e)
			detected, err := RunAttack(e, a, victim)
			if err != nil {
				t.Fatalf("%v/%v: %v", scheme, a, err)
			}
			if !detected {
				t.Errorf("%v: attack %v went undetected", scheme, a)
			}
		}
	}
}

func TestAttackOnMissingVictim(t *testing.T) {
	e := crashedEngine(t, config.SchemeCOBCM, "gcc", 1, 500)
	if _, err := RunAttack(e, AttackData, addr.BlockOf(0x7FFF0000)); err == nil {
		t.Error("attack on unpersisted block accepted")
	}
}

func TestObserverPolicies(t *testing.T) {
	e := crashedEngine(t, config.SchemeCOBCM, "gamess", 3, 3000)
	obs, err := Crash(e, Blocking, PowerLoss)
	if err != nil {
		t.Fatal(err)
	}
	if obs.DrainCycles == 0 || obs.ReadyCycle != obs.CrashCycle+obs.DrainCycles {
		t.Errorf("drain timing wrong: %+v", obs)
	}
	// Blocking: querying early stalls to ReadyCycle.
	ok, at := obs.ConsistentAt(obs.CrashCycle)
	if !ok || at != obs.ReadyCycle {
		t.Errorf("blocking query = (%v,%d), want (true,%d)", ok, at, obs.ReadyCycle)
	}
	ok, at = obs.ConsistentAt(obs.ReadyCycle + 5)
	if !ok || at != obs.ReadyCycle+5 {
		t.Errorf("late blocking query = (%v,%d)", ok, at)
	}
	// Warning: early queries see the warning.
	obs.Policy = Warning
	if ok, _ := obs.ConsistentAt(obs.CrashCycle); ok {
		t.Error("warning policy reported consistent before drain finished")
	}
	if ok, _ := obs.ConsistentAt(obs.ReadyCycle); !ok {
		t.Error("warning policy still inconsistent after drain")
	}
}

func TestLazySchemesNeedBiggerCrashDrain(t *testing.T) {
	// The sec-sync gap: COBCM's battery does strictly more work than
	// NoGap's for the same resident entries.
	eLazy := crashedEngine(t, config.SchemeCOBCM, "povray", 5, 2000)
	eEager := crashedEngine(t, config.SchemeNoGap, "povray", 5, 2000)
	repLazy, err := CrashAndRecover(eLazy)
	if err != nil {
		t.Fatal(err)
	}
	repEager, err := CrashAndRecover(eEager)
	if err != nil {
		t.Fatal(err)
	}
	if repLazy.EntriesDrained == 0 || repEager.EntriesDrained == 0 {
		t.Skip("no resident entries at crash point")
	}
	lazyPerEntry := float64(repLazy.DrainCost.Hashes) / float64(repLazy.EntriesDrained)
	eagerPerEntry := float64(repEager.DrainCost.Hashes) / float64(repEager.EntriesDrained)
	if lazyPerEntry <= eagerPerEntry {
		t.Errorf("COBCM crash drain (%.1f hashes/entry) not heavier than NoGap (%.1f)",
			lazyPerEntry, eagerPerEntry)
	}
}

func TestAppCrashDrainAll(t *testing.T) {
	e := crashedEngine(t, config.SchemeOBCM, "gcc", 9, 2000)
	resident := e.SecPB().Len()
	obs, err := Crash(e, Warning, AppCrash)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Report.EntriesDrained != resident {
		t.Errorf("drain-all drained %d of %d entries", obs.Report.EntriesDrained, resident)
	}
	if e.SecPB().Len() != 0 {
		t.Error("entries left after app-crash drain")
	}
}

func TestSchemeDrainWork(t *testing.T) {
	if w := SchemeDrainWork(config.SchemeNoGap); len(w) != 1 || !strings.Contains(w[0], "none") {
		t.Errorf("NoGap drain work = %v", w)
	}
	w := SchemeDrainWork(config.SchemeCOBCM)
	if len(w) != 5 {
		t.Errorf("COBCM drain work = %v, want all five tuple steps", w)
	}
	if w := SchemeDrainWork(config.SchemeBCM); len(w) != 3 {
		t.Errorf("BCM drain work = %v, want 3 (ct, MAC, BMT)", w)
	}
}

func TestNames(t *testing.T) {
	if Blocking.String() != "blocking" || Warning.String() != "warning" {
		t.Error("policy names")
	}
	if PowerLoss.String() != "power-loss" || AppCrash.String() != "app-crash" {
		t.Error("crash kind names")
	}
	for _, a := range Attacks() {
		if strings.Contains(a.String(), "attack(") {
			t.Errorf("attack %d unnamed", a)
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{EntriesDrained: 3, BlocksChecked: 10}
	if !strings.Contains(r.String(), "CLEAN") {
		t.Errorf("clean report: %s", r)
	}
	r.VerifyFailures = 1
	r.FirstBad = "block 0x40"
	if !strings.Contains(r.String(), "CORRUPT") {
		t.Errorf("corrupt report: %s", r)
	}
}

func TestAuditCleanImage(t *testing.T) {
	e := crashedEngine(t, config.SchemeCOBCM, "gcc", 21, 4000)
	if _, err := CrashAndRecover(e); err != nil {
		t.Fatal(err)
	}
	rep, err := AuditImage(e.Controller())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("healthy image failed audit: %s", rep)
	}
	if rep.Blocks == 0 || rep.CounterLines == 0 {
		t.Errorf("audit scope empty: %s", rep)
	}
}

func TestAuditDetectsEveryTamperClass(t *testing.T) {
	mutate := []struct {
		name string
		do   func(t *testing.T, e *engine.Engine)
	}{
		{"data bit", func(t *testing.T, e *engine.Engine) {
			if err := e.Controller().PM().Tamper(someVictim(t, e), 5); err != nil {
				t.Fatal(err)
			}
		}},
		{"mac bit", func(t *testing.T, e *engine.Engine) {
			if err := e.Controller().MACs().Tamper(someVictim(t, e), 9); err != nil {
				t.Fatal(err)
			}
		}},
		{"counter", func(t *testing.T, e *engine.Engine) {
			v := someVictim(t, e)
			if err := e.Controller().Counters().Tamper(v, uint8(e.Controller().Counters().Value(v))+3); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range mutate {
		e := crashedEngine(t, config.SchemeCOBCM, "gcc", 23, 3000)
		if _, err := CrashAndRecover(e); err != nil {
			t.Fatal(err)
		}
		tc.do(t, e)
		rep, err := AuditImage(e.Controller())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clean() {
			t.Errorf("%s tamper passed the full audit", tc.name)
		}
	}
}

func TestAuditRejectsInsecure(t *testing.T) {
	e := crashedEngine(t, config.SchemeBBB, "gcc", 1, 500)
	if _, err := AuditImage(e.Controller()); err == nil {
		t.Error("insecure controller audited")
	}
}
