package recovery

import (
	"testing"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// Section IV.C.b: under relaxed memory consistency, stores may reach the
// SecPB out of program order. For lazy schemes (COBCM) the security
// metadata update is performed out of order too, which is legal because
// the crash observer only sees post-drain state. These tests run a
// store stream through a bounded-window reordering (per-block order and
// fences preserved, as hardware guarantees) and require that crash
// recovery still yields exactly the final state.

func relaxedEngine(t *testing.T, scheme config.Scheme, window int) *engine.Engine {
	t.Helper()
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	ops, err := workload.Generate(prof, 77, 6000)
	if err != nil {
		t.Fatal(err)
	}
	reordered := trace.Reorder(ops, window, 123)
	cfg := config.Default().WithScheme(scheme)
	e, err := engine.New(cfg, prof, []byte("relaxed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(trace.NewSliceSource(reordered)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRelaxedOrderRecoversCleanly(t *testing.T) {
	for _, scheme := range []config.Scheme{config.SchemeCOBCM, config.SchemeOBCM, config.SchemeNoGap} {
		e := relaxedEngine(t, scheme, 16)
		rep, err := CrashAndRecover(e)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !rep.Clean() {
			t.Fatalf("%v: %s", scheme, rep)
		}
	}
}

func TestRelaxedAndInOrderConverge(t *testing.T) {
	// Because per-block order is preserved, the final persistent state
	// after a full drain must be identical regardless of the window.
	inOrder := relaxedEngine(t, config.SchemeCOBCM, 1)
	relaxed := relaxedEngine(t, config.SchemeCOBCM, 32)
	if _, err := CrashAndRecover(inOrder); err != nil {
		t.Fatal(err)
	}
	if _, err := CrashAndRecover(relaxed); err != nil {
		t.Fatal(err)
	}
	memA, memB := inOrder.Memory(), relaxed.Memory()
	if len(memA) != len(memB) {
		t.Fatalf("footprints differ: %d vs %d blocks", len(memA), len(memB))
	}
	for block, want := range memA {
		gotA, _, err := inOrder.Controller().FetchBlock(block)
		if err != nil {
			t.Fatal(err)
		}
		gotB, _, err := relaxed.Controller().FetchBlock(block)
		if err != nil {
			t.Fatal(err)
		}
		if gotA != want || gotB != want {
			t.Fatalf("block %#x: in-order/relaxed final states diverge", block.Addr())
		}
	}
}
