package recovery

import (
	"errors"
	"reflect"
	"testing"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/nvm"
	"secpb/internal/workload"
)

// systemSnapshot runs a 2-core System and captures, per battery-backed
// buffer, the canonical CoreEntries parts over freshly restored
// controllers — the state a whole-socket recovery boot sees. It also
// returns the live System so tests can compare against its own
// CrashDrainAll image.
func systemSnapshot(t *testing.T) (*engine.System, []CoreEntries) {
	t.Helper()
	prof, err := workload.ByName("gromacs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithCores(2)
	cfg.Seed = 0xC07E5
	key := []byte("secpb-experiment-key")
	sys, err := engine.NewSystem(cfg, prof, key, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	restore := func(mc *nvm.Controller) *nvm.Controller {
		t.Helper()
		r, err := nvm.Restore(mc.Config(), key, mc.PM().Snapshot(), mc.Counters().Snapshot(),
			mc.MACs().Snapshot(), mc.Tree().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	var parts []CoreEntries
	for c := 0; c < sys.Cores(); c++ {
		eng := sys.Core(c)
		parts = append(parts, CoreEntries{
			Core:    c,
			MC:      restore(eng.Controller()),
			Entries: eng.SecPB().SnapshotEntries(),
		})
	}
	// The shared region: both cores' shared-SecPBs drain into ONE
	// restored controller, in ascending core order after the privates.
	sharedMC := restore(sys.Shared().Controller())
	for c := 0; c < sys.Cores(); c++ {
		parts = append(parts, CoreEntries{
			Core:    c,
			MC:      sharedMC,
			Entries: sys.Shared().SecPB(c).SnapshotEntries(),
		})
	}
	pending := 0
	for _, p := range parts {
		pending += len(p.Entries)
	}
	if pending == 0 {
		t.Fatal("run left no pending entries; recovery test needs late work")
	}
	return sys, parts
}

// TestDrainSystemCanonical: replaying a whole-socket snapshot in
// canonical order yields, shard by shard, exactly the PM image a live
// battery-backed CrashDrainAll produces, and every shard audits clean.
func TestDrainSystemCanonical(t *testing.T) {
	sys, parts := systemSnapshot(t)
	if _, err := DrainSystemEntries(parts, nil); err != nil {
		t.Fatalf("canonical system drain: %v", err)
	}
	if _, err := sys.CrashDrainAll(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < sys.Cores(); c++ {
		live := sys.Core(c).Controller().PM().Snapshot()
		rec := parts[c].MC.PM().Snapshot()
		if !reflect.DeepEqual(live, rec) {
			t.Fatalf("core %d: recovered PM image differs from live crash drain", c)
		}
	}
	liveShared := sys.Shared().Controller().PM().Snapshot()
	recShared := parts[sys.Cores()].MC.PM().Snapshot()
	if !reflect.DeepEqual(liveShared, recShared) {
		t.Fatal("shared region: recovered PM image differs from live crash drain")
	}
	for i, p := range parts {
		rep, err := AuditImage(p.MC)
		if err != nil {
			t.Fatalf("part %d audit: %v", i, err)
		}
		if !rep.Clean() {
			t.Fatalf("part %d (core %d) audit not clean: %v", i, p.Core, rep)
		}
	}
}

// TestDrainSystemPermutedOrderFails is the negative control demanded by
// the cross-core drain semantics: any replay order other than the
// sealed canonical one must surface as a typed corruption error before
// an entry drains out of turn.
func TestDrainSystemPermutedOrderFails(t *testing.T) {
	_, parts := systemSnapshot(t)
	permutations := [][]int{
		{1, 0, 2, 3}, // private cores swapped
		{2, 3, 0, 1}, // shared region before private
		{3, 2, 1, 0}, // full reversal
	}
	for _, order := range permutations {
		_, err := DrainSystemEntries(parts, order)
		if err == nil {
			t.Fatalf("order %v: permuted replay did not fail", order)
		}
		var cerr *nvm.CorruptStateError
		if !errors.As(err, &cerr) {
			t.Fatalf("order %v: want *nvm.CorruptStateError, got %v", order, err)
		}
	}
}

// TestDrainSystemCursorEnforced: the journal's cursor survives partial
// replay — after draining part 0, offering part 0 again or part 2 next
// both fail, while part 1 proceeds.
func TestDrainSystemCursorEnforced(t *testing.T) {
	_, parts := systemSnapshot(t)
	j := NewSystemJournal(parts)
	if _, err := j.DrainPart(0); err != nil {
		t.Fatal(err)
	}
	var cerr *nvm.CorruptStateError
	if _, err := j.DrainPart(0); !errors.As(err, &cerr) {
		t.Fatalf("replayed part 0 out of turn: %v", err)
	}
	if _, err := j.DrainPart(2); !errors.As(err, &cerr) {
		t.Fatalf("skipped ahead to part 2: %v", err)
	}
	if _, err := j.DrainPart(1); err != nil {
		t.Fatalf("canonical part 1 refused: %v", err)
	}
	if j.Drained() != 2 {
		t.Fatalf("cursor %d after two drains", j.Drained())
	}
}

// TestSystemJournalTamperDetected: entry payload damage after sealing is
// caught before any drain.
func TestSystemJournalTamperDetected(t *testing.T) {
	_, parts := systemSnapshot(t)
	j := NewSystemJournal(parts)
	tampered := false
	for i := range j.parts {
		if len(j.parts[i].Entries) > 0 {
			j.parts[i].Entries[0].Data[0] ^= 1
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no entries to tamper")
	}
	var cerr *nvm.CorruptStateError
	if _, err := j.DrainPart(0); !errors.As(err, &cerr) {
		t.Fatalf("tampered journal drained: %v", err)
	}
}
