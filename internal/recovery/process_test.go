package recovery

import (
	"strings"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/core"
	"secpb/internal/nvm"
)

// twoProcessSecPB builds a SecPB holding entries from two processes and
// returns it plus each process's reference view.
func twoProcessSecPB(t *testing.T, scheme config.Scheme) (*core.SecPB, *nvm.Controller,
	map[addr.Block][addr.BlockBytes]byte, map[addr.Block][addr.BlockBytes]byte) {
	t.Helper()
	cfg := config.Default().WithScheme(scheme)
	mc, err := nvm.NewController(cfg, []byte("proc"))
	if err != nil {
		t.Fatal(err)
	}
	spb, err := core.New(cfg, mc)
	if err != nil {
		t.Fatal(err)
	}
	ref1 := map[addr.Block][addr.BlockBytes]byte{}
	ref2 := map[addr.Block][addr.BlockBytes]byte{}
	for i := uint64(0); i < 5; i++ {
		b1 := addr.FromIndex(0x1000 + i)
		b2 := addr.FromIndex(0x2000 + i)
		if _, err := spb.AcceptStoreFor(1, b1, 0, 8, 0xA0+i, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := spb.AcceptStoreFor(2, b2, 0, 8, 0xB0+i, nil); err != nil {
			t.Fatal(err)
		}
		var d1, d2 [addr.BlockBytes]byte
		d1[0] = byte(0xA0 + i)
		d2[0] = byte(0xB0 + i)
		ref1[b1], ref2[b2] = d1, d2
	}
	return spb, mc, ref1, ref2
}

func TestAppCrashDrainAllPolicy(t *testing.T) {
	spb, mc, ref1, ref2 := twoProcessSecPB(t, config.SchemeCOBCM)
	// Drain-all persists everyone's entries.
	all := map[addr.Block][addr.BlockBytes]byte{}
	for b, d := range ref1 {
		all[b] = d
	}
	for b, d := range ref2 {
		all[b] = d
	}
	rep, err := HandleAppCrash(spb, mc, 1, DrainAll, all)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EntriesDrained != 10 || rep.EntriesLeft != 0 {
		t.Errorf("drain-all: %s", rep)
	}
}

func TestAppCrashDrainProcessPolicy(t *testing.T) {
	for _, scheme := range []config.Scheme{config.SchemeCOBCM, config.SchemeNoGap} {
		spb, mc, ref1, _ := twoProcessSecPB(t, scheme)
		rep, err := HandleAppCrash(spb, mc, 1, DrainProcess, ref1)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if rep.EntriesDrained != 5 {
			t.Errorf("%v: drained %d, want 5", scheme, rep.EntriesDrained)
		}
		if rep.EntriesLeft != 5 {
			t.Errorf("%v: left %d, want 5 (process 2 untouched)", scheme, rep.EntriesLeft)
		}
		// Process 2's blocks must NOT have persisted yet.
		for i := uint64(0); i < 5; i++ {
			if _, ok := mc.PM().Peek(addr.FromIndex(0x2000 + i)); ok {
				t.Errorf("%v: drain-process persisted another process's block", scheme)
			}
		}
	}
}

func TestAppCrashBadScope(t *testing.T) {
	spb, mc, ref1, _ := twoProcessSecPB(t, config.SchemeCOBCM)
	if _, err := HandleAppCrash(spb, mc, 1, DrainScope(9), ref1); err == nil {
		t.Error("invalid scope accepted")
	}
}

func TestProcessCrashReportString(t *testing.T) {
	r := ProcessCrashReport{Scope: DrainProcess, ASID: 3, EntriesDrained: 2, EntriesLeft: 1}
	if !strings.Contains(r.String(), "drain-process") || !strings.Contains(r.String(), "asid 3") {
		t.Errorf("report: %s", r)
	}
	if DrainAll.String() != "drain-all" {
		t.Error("scope name")
	}
}
