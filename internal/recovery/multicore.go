package recovery

import (
	"fmt"

	"secpb/internal/core"
	"secpb/internal/nvm"
)

// CoreEntries is one battery-backed buffer's crash snapshot in a
// multi-core system: the core that owned it, the restored memory
// controller its entries drain into, and the entries themselves in FIFO
// order. A 2-core system typically contributes four parts — the two
// private SecPBs (each draining into its own memory-channel shard) and
// the two shared-region SecPBs (both draining into the shared
// controller).
type CoreEntries struct {
	Core    int
	MC      *nvm.Controller
	Entries []core.Entry
}

// SystemJournal seals the cross-core drain order for a whole-socket
// recovery. The canonical order is the order the parts are given in —
// ascending core id over the private SecPBs, then ascending core id
// over the shared-region SecPBs, matching engine.(*System).CrashDrainAll
// on a live socket. The journal's checksum covers that sequence (each
// part's core id and every entry's identity and payload) plus a durable
// cursor, so recovery code that replays parts in any other order trips
// a typed *nvm.CorruptStateError before it can drain a single entry out
// of turn: the replay discipline is data, not convention.
type SystemJournal struct {
	parts  []CoreEntries // entries copied; callers' slices not retained
	cursor int           // next canonical position to drain
	sum    uint64
}

// NewSystemJournal captures the parts in canonical order and seals the
// checksum. Entry slices are copied.
func NewSystemJournal(parts []CoreEntries) *SystemJournal {
	j := &SystemJournal{parts: make([]CoreEntries, len(parts))}
	for i, p := range parts {
		j.parts[i] = CoreEntries{
			Core:    p.Core,
			MC:      p.MC,
			Entries: append([]core.Entry(nil), p.Entries...),
		}
	}
	j.seal()
	return j
}

// Parts returns the number of journaled parts.
func (j *SystemJournal) Parts() int { return len(j.parts) }

// Drained returns how many parts have completed their drain.
func (j *SystemJournal) Drained() int { return j.cursor }

// Complete reports whether every part drained.
func (j *SystemJournal) Complete() bool { return j.cursor == len(j.parts) }

// checksum hashes the cursor and the canonical part sequence. The
// per-entry fields reuse the single-core late-work journal's hashing so
// an entry swap between parts is as detectable as a part swap.
func (j *SystemJournal) checksum() uint64 {
	h := fnvOffset
	var buf [8]byte
	u64 := func(v uint64) {
		putU64(buf[:], v)
		h = fnvAdd(h, buf[:])
	}
	u64(uint64(j.cursor))
	u64(uint64(len(j.parts)))
	for i := range j.parts {
		p := &j.parts[i]
		u64(uint64(p.Core))
		u64(uint64(len(p.Entries)))
		for k := range p.Entries {
			e := &p.Entries[k]
			u64(e.Block.Addr())
			h = fnvAdd(h, e.Data[:])
			u64(uint64(e.ASID))
			u64(uint64(e.Writes))
			u64(e.Seq)
			m := &e.Ext
			u64(boolBits(m.OTPValid) | boolBits(m.CipherValid)<<1 | boolBits(m.CounterValid)<<2 |
				boolBits(m.BMTDone)<<3 | boolBits(m.MACValid)<<4)
			h = fnvAdd(h, m.OTP[:])
			h = fnvAdd(h, m.Cipher[:])
			u64(m.Counter)
			u64(uint64(m.CounterAdvance))
			h = fnvAdd(h, m.MAC[:])
		}
	}
	return h
}

func (j *SystemJournal) seal() { j.sum = j.checksum() }

// Validate checks the journal against its seal.
func (j *SystemJournal) Validate() error {
	if got := j.checksum(); got != j.sum {
		return &nvm.CorruptStateError{
			Component: "cross-core drain journal",
			Detail: fmt.Sprintf("checksum %#x does not match stored %#x over %d parts (cursor %d)",
				got, j.sum, len(j.parts), j.cursor),
		}
	}
	return nil
}

// DrainPart drains the part at canonical index idx. The journal permits
// this only when idx is exactly the sealed cursor position: draining
// core 1 before core 0, or a shared-region buffer before the private
// buffers, returns *nvm.CorruptStateError without touching PM.
func (j *SystemJournal) DrainPart(idx int) (nvm.Cost, error) {
	var zero nvm.Cost
	if err := j.Validate(); err != nil {
		return zero, err
	}
	if idx < 0 || idx >= len(j.parts) {
		return zero, fmt.Errorf("recovery: drain part %d of %d", idx, len(j.parts))
	}
	if idx != j.cursor {
		return zero, &nvm.CorruptStateError{
			Component: "cross-core drain journal",
			Detail: fmt.Sprintf("replay order violates sealed journal: part %d (core %d) offered at cursor %d (core %d)",
				idx, j.parts[idx].Core, j.cursor, j.parts[j.cursor].Core),
		}
	}
	p := &j.parts[idx]
	cost, err := DrainEntries(p.MC, p.Entries)
	if err != nil {
		return cost, fmt.Errorf("recovery: core %d drain: %w", p.Core, err)
	}
	j.cursor++
	j.seal() // cursor advance is a durable journal update
	return cost, nil
}

// DrainSystemEntries replays a whole-socket crash snapshot. parts must
// be in canonical order (ascending core id, private buffers before the
// shared-region buffers); order selects the replay sequence by index
// into parts, with nil meaning canonical. Any order other than the
// canonical one fails with *nvm.CorruptStateError on its first
// out-of-turn part — the negative control crashsim's multi-core matrix
// exercises.
func DrainSystemEntries(parts []CoreEntries, order []int) (nvm.Cost, error) {
	j := NewSystemJournal(parts)
	if order == nil {
		order = make([]int, len(parts))
		for i := range order {
			order[i] = i
		}
	}
	var total nvm.Cost
	if len(order) != len(parts) {
		return total, fmt.Errorf("recovery: replay order lists %d of %d parts", len(order), len(parts))
	}
	for _, idx := range order {
		cost, err := j.DrainPart(idx)
		if err != nil {
			return total, err
		}
		total.Add(cost)
	}
	return total, nil
}
