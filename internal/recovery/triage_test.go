package recovery

import (
	"testing"

	"secpb/internal/addr"
)

// TestTriageCleanImage: an undamaged post-drain image triages fully
// clean, with every block salvaged byte-identically.
func TestTriageCleanImage(t *testing.T) {
	for _, base := range getCorruptionBases(t) {
		mc, err := base.clone()
		if err != nil {
			t.Fatal(err)
		}
		eng := mc.Engine()
		rep, err := Triage(mc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Degraded() {
			t.Fatalf("%v: pristine image triaged degraded: %s", base.cfg.Scheme, rep)
		}
		if rep.Clean != len(base.blocks) || rep.Blocks != len(base.blocks) {
			t.Fatalf("%v: %d of %d blocks clean", base.cfg.Scheme, rep.Clean, len(base.blocks))
		}
		for _, b := range base.blocks {
			ct, _ := mc.PM().Peek(b)
			want := eng.Decrypt(&ct, b.Addr(), mc.Counters().Value(b))
			got, ok := rep.Recovered(b)
			if !ok || got != want {
				t.Fatalf("%v: clean block %#x not salvaged byte-identically", base.cfg.Scheme, b.Addr())
			}
		}
	}
}

// TestTriageClassifiesDamage stages all three damage shapes on one image
// and checks each lands in its class while untouched blocks stay clean
// and byte-identical.
func TestTriageClassifiesDamage(t *testing.T) {
	bases := getCorruptionBases(t)
	base := bases[len(bases)-1] // laziest scheme
	if len(base.blocks) < 4 {
		t.Fatalf("base image too small: %d blocks", len(base.blocks))
	}
	mc, err := base.clone()
	if err != nil {
		t.Fatal(err)
	}
	eng := mc.Engine()

	// Golden plaintexts before any damage.
	want := make(map[addr.Block][addr.BlockBytes]byte, len(base.blocks))
	for _, b := range base.blocks {
		ct, _ := mc.PM().Peek(b)
		want[b] = eng.Decrypt(&ct, b.Addr(), mc.Counters().Value(b))
	}

	// Damage 1: ciphertext bit -> quarantined.
	ctVictim := base.blocks[0]
	if err := mc.PM().Tamper(ctVictim, 13); err != nil {
		t.Fatal(err)
	}
	// Damage 2: MAC bit -> quarantined.
	macVictim := base.blocks[1]
	if err := mc.MACs().Tamper(macVictim, 5); err != nil {
		t.Fatal(err)
	}
	// Damage 3: stored BMT node on some page's path -> every MAC-clean
	// block of that page becomes recoverable. Pick a page none of the
	// quarantine victims sit on so the classes stay disjoint.
	var treeVictim addr.Block
	for _, b := range base.blocks[2:] {
		if b.CounterLine() != ctVictim.CounterLine() && b.CounterLine() != macVictim.CounterLine() {
			treeVictim = b
			break
		}
	}
	if treeVictim == 0 && base.blocks[2].CounterLine() == ctVictim.CounterLine() {
		t.Skip("no block on an undamaged page; image too clustered")
	}
	ids := mc.Tree().PathNodeIDs(treeVictim.Page())
	id := ids[0]
	level, idx := int(id>>56), id&((1<<56)-1)
	node, ok := mc.Tree().Node(level, idx)
	if !ok {
		t.Fatalf("path node (%d,%d) not materialized", level, idx)
	}
	node[0] ^= 1
	if err := mc.Tree().Tamper(level, idx, node); err != nil {
		t.Fatal(err)
	}
	// The tampered node breaks path verification for every page whose
	// walk touches it (as ancestor or sibling); those pages' MAC-clean
	// blocks must all triage recoverable. Establish the blast radius
	// directly from the tree.
	treeDamaged := make(map[uint64]bool)
	for _, b := range base.blocks {
		page := b.CounterLine()
		if _, seen := treeDamaged[page]; seen {
			continue
		}
		line, ok := mc.Counters().Peek(page)
		if !ok {
			t.Fatalf("page %d has no counters", page)
		}
		treeDamaged[page] = mc.Tree().Verify(page, line.Bytes()) != nil
	}
	if !treeDamaged[treeVictim.CounterLine()] {
		t.Fatal("tampered node did not break its own page's path")
	}

	rep, err := Triage(mc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded() {
		t.Fatal("damaged image triaged clean")
	}
	for _, b := range base.blocks {
		class, ok := rep.Class(b)
		if !ok {
			t.Fatalf("block %#x not triaged", b.Addr())
		}
		switch {
		case b == ctVictim || b == macVictim:
			if class != ClassQuarantined {
				t.Errorf("damaged block %#x classed %v, want quarantined", b.Addr(), class)
			}
			if _, salvaged := rep.Recovered(b); salvaged {
				t.Errorf("quarantined block %#x was salvaged", b.Addr())
			}
		case treeDamaged[b.CounterLine()]:
			if class != ClassRecoverable {
				t.Errorf("block %#x on tree-damaged page classed %v, want recoverable", b.Addr(), class)
			}
			if got, ok := rep.Recovered(b); !ok || got != want[b] {
				t.Errorf("recoverable block %#x not salvaged byte-identically", b.Addr())
			}
		default:
			if class != ClassClean {
				t.Errorf("untouched block %#x classed %v (false positive)", b.Addr(), class)
			}
			if got, ok := rep.Recovered(b); !ok || got != want[b] {
				t.Errorf("clean block %#x not salvaged byte-identically", b.Addr())
			}
		}
	}
	// A tampered stored node breaks paths but not the register replay.
	if !rep.RootConsistent {
		t.Error("replayed root should still match the register (counters untouched)")
	}
}

// TestTriageCounterDamage: a tampered counter quarantines its block (the
// MAC is counter-bound), flags the page, and breaks root derivability.
func TestTriageCounterDamage(t *testing.T) {
	bases := getCorruptionBases(t)
	base := bases[0]
	mc, err := base.clone()
	if err != nil {
		t.Fatal(err)
	}
	victim := base.blocks[len(base.blocks)/2]
	old := uint8(mc.Counters().Value(victim))
	if err := mc.Counters().Tamper(victim, old+1); err != nil {
		t.Fatal(err)
	}
	rep, err := Triage(mc)
	if err != nil {
		t.Fatal(err)
	}
	if class, _ := rep.Class(victim); class != ClassQuarantined {
		t.Errorf("counter-tampered block classed %v, want quarantined", class)
	}
	if rep.RootConsistent {
		t.Error("tampered counter should break root derivability")
	}
	if rep.BadPages == 0 {
		t.Error("tampered counter's page should fail its BMT path")
	}
}
