package recovery

import (
	"testing"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/nvm"
	"secpb/internal/workload"
)

// TestSystemFaultSweep threads media faults through the multi-core
// path: each core's memory-channel shard runs its own derived fault
// stream, the whole socket crash-recovers through the sealed canonical
// drain order, and every shard triages per the single-core contract
// (write-path faults absorbed, rot quarantined exactly).
func TestSystemFaultSweep(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("secpb-experiment-key")
	modes := []struct {
		name     string
		wf, torn float64
		rot      float64
	}{
		{name: "clean"},
		{name: "torn-write", wf: 0.1, torn: 0.1},
		{name: "bit-rot", rot: 0.05},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			cfg := config.Default().WithCores(2)
			cfg.Seed = 0x5EED
			cfg.FaultSeed = 0xFA017
			cfg.FaultWriteFailRate = mode.wf
			cfg.FaultTornRate = mode.torn
			cfg.FaultRotRate = mode.rot
			sys, err := engine.NewSystem(cfg, prof, key, 4000)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			res := sys.Collect()
			if mode.name == "clean" && res.Media != (nvm.MediaStats{}) {
				t.Fatalf("clean media accumulated stats %+v", res.Media)
			}
			if mode.wf > 0 || mode.torn > 0 {
				if res.Media.WriteRetries == 0 {
					t.Error("faulty write path never retried across the socket")
				}
				// Per-core fault streams are derived independently; with
				// these rates every shard must see its own retries.
				for c := 0; c < sys.Cores(); c++ {
					if s := sys.Core(c).Controller().MediaStats(); s.WriteRetries == 0 {
						t.Errorf("core %d shard saw no write retries (fault stream not threaded?)", c)
					}
				}
			}

			// Whole-socket recovery: restore every shard and drain in the
			// sealed canonical order.
			restore := func(mc *nvm.Controller) *nvm.Controller {
				t.Helper()
				r, err := nvm.Restore(mc.Config(), key, mc.PM().Snapshot(), mc.Counters().Snapshot(),
					mc.MACs().Snapshot(), mc.Tree().Snapshot())
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			var parts []CoreEntries
			var shards []*nvm.Controller
			for c := 0; c < sys.Cores(); c++ {
				mc := restore(sys.Core(c).Controller())
				shards = append(shards, mc)
				parts = append(parts, CoreEntries{Core: c, MC: mc, Entries: sys.Core(c).SecPB().SnapshotEntries()})
			}
			sharedMC := restore(sys.Shared().Controller())
			shards = append(shards, sharedMC)
			for c := 0; c < sys.Cores(); c++ {
				parts = append(parts, CoreEntries{Core: c, MC: sharedMC, Entries: sys.Shared().SecPB(c).SnapshotEntries()})
			}
			if _, err := DrainSystemEntries(parts, nil); err != nil {
				t.Fatalf("system drain under %s faults: %v", mode.name, err)
			}

			// Post-crash decay and triage, shard by shard.
			decayedTotal := 0
			for i, mc := range shards {
				decayed := mc.PM().Decay()
				decayedTotal += len(decayed)
				rotted := make(map[uint64]bool, len(decayed))
				for _, b := range decayed {
					rotted[b.Addr()] = true
				}
				rep, err := Triage(mc)
				if err != nil {
					t.Fatalf("shard %d triage: %v", i, err)
				}
				if mode.rot == 0 {
					if rep.Degraded() {
						t.Fatalf("shard %d degraded without rot: %s", i, rep)
					}
				} else {
					if rep.Quarantined != len(decayed) {
						t.Errorf("shard %d: %d decayed but %d quarantined", i, len(decayed), rep.Quarantined)
					}
					for _, v := range rep.Verdicts {
						if v.Class == ClassQuarantined && !rotted[v.Block.Addr()] {
							t.Errorf("shard %d: block %#x quarantined but never decayed", i, v.Block.Addr())
						}
					}
				}
			}
			if mode.rot > 0 && decayedTotal == 0 {
				t.Fatal("rot mode decayed nothing across all shards; sweep vacuous")
			}
		})
	}
}

// TestSystemFaultSeedsDiverge: the per-core derived fault seeds must
// give each shard an independent stream — identical seeds would fault
// the same ordinal writes on every core, hiding cross-core bugs.
func TestSystemFaultSeedsDiverge(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithCores(4)
	cfg.FaultSeed = 0xFA017
	cfg.FaultWriteFailRate = 0.05
	sys, err := engine.NewSystem(cfg, prof, []byte("secpb-experiment-key"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for c := 0; c < sys.Cores(); c++ {
		fs := sys.Core(c).Controller().Config().FaultSeed
		if fs == 0 {
			t.Fatalf("core %d has zero fault seed", c)
		}
		if prev, ok := seen[fs]; ok {
			t.Fatalf("cores %d and %d share fault seed %#x", prev, c, fs)
		}
		seen[fs] = c
	}
}
