// The recovery matrix: every SecPB scheme, under both strict and
// relaxed persist ordering, crash-injected specifically at drain-epoch
// points (WPQ flush, counter persist, BMT sweep boundary) — the moments
// when the memory tuple is partially written and recovery is hardest.
// This file is an external test package because it drives the crashsim
// injector, which itself builds on the recovery package's late work.
package recovery_test

import (
	"fmt"
	"testing"

	"secpb/internal/config"
	"secpb/internal/crashpoint"
	"secpb/internal/crashsim"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

func TestRecoveryMatrixDrainEpoch(t *testing.T) {
	drainKinds := []crashpoint.Kind{
		crashpoint.WPQFlush,
		crashpoint.CounterPersist,
		crashpoint.SweepBoundary,
	}
	persistency := []struct {
		name   string
		window int // reorder window; <=1 keeps strict program order
	}{
		{"strict", 1},
		{"relaxed", 16},
	}
	schemes := config.SecPBSchemes()
	nops, points := 3000, 40
	if testing.Short() {
		// Smoke subset: the most eager and the laziest scheme bracket
		// the design space; the full grid runs in regular mode.
		schemes = []config.Scheme{config.SchemeNoGap, config.SchemeCOBCM}
		nops, points = 1500, 10
	}

	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	base, err := workload.Generate(prof, 77, nops)
	if err != nil {
		t.Fatal(err)
	}

	for _, scheme := range schemes {
		for _, p := range persistency {
			t.Run(fmt.Sprintf("%s/%s", scheme, p.name), func(t *testing.T) {
				ops := base
				if p.window > 1 {
					ops = trace.Reorder(base, p.window, 123)
				}
				cfg := config.Default().WithScheme(scheme)
				cfg.Seed = 77
				cell, err := crashsim.InjectTrace(cfg, prof, []byte("recovery-matrix"), ops, crashsim.TraceOptions{
					Points: points,
					Seed:   99,
					Kinds:  drainKinds,
				})
				if err != nil {
					t.Fatal(err)
				}
				if cell.Injected == 0 {
					t.Fatal("no drain-epoch crash points injected; matrix cell vacuous")
				}
				if cell.Failures > 0 {
					t.Errorf("%d of %d drain-epoch crashes failed recovery, first: %s",
						cell.Failures, cell.Injected, cell.FirstBad)
				}
			})
		}
	}
}
