package recovery

import (
	"fmt"

	"secpb/internal/config"
	"secpb/internal/engine"
)

// Policy is what the system does with the crash observer while the
// draining and sec-sync gaps are being closed (Section III.B): block it
// entirely, or let it see a "not yet consistent" warning.
type Policy int

const (
	// Blocking prevents the observer from seeing any state until the
	// persistent image is crash consistent.
	Blocking Policy = iota
	// Warning exposes a warning flag the observer must poll before
	// trusting the state.
	Warning
)

// String names the policy.
func (p Policy) String() string {
	if p == Blocking {
		return "blocking"
	}
	return "warning"
}

// CrashKind distinguishes crash causes. Both whole-system events and
// detected application crashes (segfault, divide by zero, debugger
// single-step) trigger the drain; per the paper's choice we implement
// the drain-all policy, so the two kinds differ only in reporting.
type CrashKind int

const (
	// PowerLoss is a whole-system power failure (battery takes over).
	PowerLoss CrashKind = iota
	// AppCrash is a detected application crash (drain-all policy:
	// every SecPB entry drains regardless of owning process).
	AppCrash
)

// String names the crash kind.
func (k CrashKind) String() string {
	if k == PowerLoss {
		return "power-loss"
	}
	return "app-crash"
}

// Observation is the observer's view of the post-crash system.
type Observation struct {
	Policy      Policy
	Kind        CrashKind
	CrashCycle  uint64 // when the crash was detected
	ReadyCycle  uint64 // when the image became crash consistent
	DrainCycles uint64 // battery time closing draining + sec-sync gaps
	Report      Report
}

// ConsistentAt reports whether the observer may trust the state when
// querying at the given cycle. Under Blocking the query itself stalls
// until ReadyCycle, so it always returns true along with the cycle the
// answer became available; under Warning it returns false before
// ReadyCycle.
func (o Observation) ConsistentAt(cycle uint64) (ok bool, availableAt uint64) {
	if o.Policy == Blocking {
		if cycle < o.ReadyCycle {
			return true, o.ReadyCycle
		}
		return true, cycle
	}
	return cycle >= o.ReadyCycle, cycle
}

// DrainTiming converts a crash drain's Cost into battery-powered cycles
// using the same pipelined-MC intervals as background draining.
func DrainTiming(t engine.Timing, rep Report) uint64 {
	c := rep.DrainCost
	return uint64(rep.EntriesDrained)*t.DrainBase +
		uint64(c.Hashes)*t.DrainHashII +
		uint64(c.AESOps)*t.DrainAESII +
		uint64(c.PMDataWrites+c.PMMetaWrites)*t.DrainPMWrite +
		uint64(c.PMReads)*t.DrainPMRead
}

// Crash performs the full crash procedure on the engine under the given
// policy and kind: battery drain, tuple completion, verification, and
// observer bookkeeping.
func Crash(e *engine.Engine, p Policy, k CrashKind) (Observation, error) {
	obs := Observation{Policy: p, Kind: k, CrashCycle: e.Now()}
	rep, err := CrashAndRecover(e)
	if err != nil {
		return obs, err
	}
	obs.Report = rep
	obs.DrainCycles = DrainTiming(engine.DefaultTiming(), rep)
	obs.ReadyCycle = obs.CrashCycle + obs.DrainCycles
	if !rep.Clean() {
		return obs, fmt.Errorf("recovery: %s crash under %v left corrupt state: %s", k, e.SecPB().Scheme(), rep.FirstBad)
	}
	return obs, nil
}

// SchemeDrainWork returns, for documentation and the harness, which
// tuple elements the battery must still generate at crash time under a
// scheme — the sec-sync gap contents.
func SchemeDrainWork(s config.Scheme) []string {
	e := s.Early()
	var work []string
	if !e.Counter {
		work = append(work, "counter fetch+increment")
	}
	if !e.OTP {
		work = append(work, "OTP generation")
	}
	if !e.Ciphertext {
		work = append(work, "ciphertext XOR")
	}
	if !e.MAC {
		work = append(work, "MAC computation")
	}
	if !e.BMT {
		work = append(work, "BMT leaf-to-root update")
	}
	if len(work) == 0 {
		work = []string{"none (sec-sync gap fully closed at store time)"}
	}
	return work
}
