package recovery

import (
	"fmt"
	"slices"

	"secpb/internal/addr"
	"secpb/internal/bmt"
	"secpb/internal/nvm"
)

// BlockClass is a triage verdict for one persisted block. Where
// AuditImage is all-or-nothing — one bad bit and the whole image reports
// corrupt — Triage degrades block by block, Osiris-style.
type BlockClass uint8

const (
	// ClassClean blocks pass their MAC and their page's BMT path; they
	// are recovered byte-identically.
	ClassClean BlockClass = iota
	// ClassRecoverable blocks pass their MAC — the strongest per-block
	// evidence, keyed and counter-bound — but sit on a page whose
	// counter line fails its BMT path, so the tree cannot corroborate
	// them. Their plaintext is recovered, flagged for the operator.
	ClassRecoverable
	// ClassQuarantined blocks fail MAC verification: the ciphertext,
	// counter or stored tag is damaged, the plaintext is not
	// trustworthy, and the block is withheld from recovery.
	ClassQuarantined
)

// String returns the triage-class name.
func (c BlockClass) String() string {
	switch c {
	case ClassClean:
		return "clean"
	case ClassRecoverable:
		return "recoverable"
	case ClassQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// BlockVerdict is one block's triage outcome.
type BlockVerdict struct {
	Block  addr.Block
	Class  BlockClass
	Reason string // empty for clean blocks
}

// TriageReport is the structured damage report for one post-crash image.
type TriageReport struct {
	Blocks      int // persisted blocks triaged
	Clean       int
	Recoverable int
	Quarantined int

	Pages          int // counter pages checked against the BMT
	BadPages       int // pages whose counter line fails its path
	RootConsistent bool

	// Verdicts lists every block in address order.
	Verdicts []BlockVerdict

	index     map[addr.Block]int
	recovered map[addr.Block][addr.BlockBytes]byte
}

// Degraded reports whether anything short of a fully clean image was
// found.
func (r *TriageReport) Degraded() bool {
	return r.Quarantined > 0 || r.Recoverable > 0 || !r.RootConsistent
}

// Class returns the verdict for a block, if it was triaged.
func (r *TriageReport) Class(b addr.Block) (BlockClass, bool) {
	i, ok := r.index[b]
	if !ok {
		return 0, false
	}
	return r.Verdicts[i].Class, true
}

// Recovered returns the plaintext triage salvaged for a clean or
// recoverable block; quarantined (and unknown) blocks return false.
func (r *TriageReport) Recovered(b addr.Block) ([addr.BlockBytes]byte, bool) {
	p, ok := r.recovered[b]
	return p, ok
}

// String renders the damage summary.
func (r *TriageReport) String() string {
	status := "CLEAN"
	if r.Degraded() {
		status = "DEGRADED"
	}
	return fmt.Sprintf("triage: %d blocks (%d clean, %d recoverable, %d quarantined), %d/%d pages bad, root consistent=%v [%s]",
		r.Blocks, r.Clean, r.Recoverable, r.Quarantined, r.BadPages, r.Pages, r.RootConsistent, status)
}

// Triage classifies every persisted block of a post-crash image and
// salvages what it can. The state machine per block:
//
//	MAC(ciphertext, addr, counter) fails  -> quarantined
//	MAC ok, page's BMT path fails         -> recoverable (salvaged, flagged)
//	MAC ok, page's BMT path ok            -> clean (salvaged)
//
// plus one image-wide check: the BMT root register must be derivable by
// replaying all persisted counter lines (RootConsistent). Triage reads
// through Peek — a damaged image must not be further disturbed by the
// fault model — and never mutates the image. Run the scheme's late work
// (DrainEntries) first; triage judges the drained image.
func Triage(mc *nvm.Controller) (*TriageReport, error) {
	if !mc.Secure() {
		return nil, fmt.Errorf("recovery: triage requires a secure controller")
	}
	eng := mc.Engine()
	rep := &TriageReport{
		index:          make(map[addr.Block]int),
		recovered:      make(map[addr.Block][addr.BlockBytes]byte),
		RootConsistent: true,
	}

	blocks := sortedPMBlocks(mc)

	// Pass 1: per-page BMT path verdicts (shared by the page's blocks).
	pageOK := make(map[uint64]bool)
	pageList := make([]uint64, 0, 16)
	for _, b := range blocks {
		page := b.CounterLine()
		if _, seen := pageOK[page]; seen {
			continue
		}
		pageList = append(pageList, page)
		line, ok := mc.Counters().Peek(page)
		pageOK[page] = ok && mc.Tree().Verify(page, line.Bytes()) == nil
	}
	slices.Sort(pageList)
	rep.Pages = len(pageList)
	for _, page := range pageList {
		if !pageOK[page] {
			rep.BadPages++
		}
	}

	// Pass 2: per-block verdicts.
	for _, b := range blocks {
		rep.Blocks++
		ct, _ := mc.PM().Peek(b)
		ctr := mc.Counters().Value(b)
		verdict := BlockVerdict{Block: b}

		tag, haveTag := mc.MACs().Get(b)
		switch {
		case !haveTag:
			verdict.Class = ClassQuarantined
			verdict.Reason = "no stored MAC"
		case eng.MAC(&ct, b.Addr(), ctr) != tag:
			verdict.Class = ClassQuarantined
			verdict.Reason = "MAC mismatch (ciphertext, counter or tag damaged)"
		case !pageOK[b.CounterLine()]:
			verdict.Class = ClassRecoverable
			verdict.Reason = fmt.Sprintf("BMT path for page %d fails; MAC vouches alone", b.CounterLine())
		default:
			verdict.Class = ClassClean
		}

		switch verdict.Class {
		case ClassClean:
			rep.Clean++
		case ClassRecoverable:
			rep.Recoverable++
		case ClassQuarantined:
			rep.Quarantined++
		}
		if verdict.Class != ClassQuarantined {
			rep.recovered[b] = eng.Decrypt(&ct, b.Addr(), ctr)
		}
		rep.index[b] = len(rep.Verdicts)
		rep.Verdicts = append(rep.Verdicts, verdict)
	}

	// Image-wide root reconstruction, as in AuditImage: the root register
	// must be derivable from the persisted counter lines alone.
	rebuilt, err := bmt.New(eng, mc.Tree().Height())
	if err != nil {
		return nil, fmt.Errorf("recovery: replay tree: %w", err)
	}
	replay := make([]uint64, 0, len(pageList))
	for _, page := range pageList {
		if _, ok := mc.Counters().Peek(page); ok {
			replay = append(replay, page)
		}
	}
	var lineBuf []byte
	rebuilt.UpdateBatch(replay, func(page uint64) []byte {
		line, _ := mc.Counters().Peek(page)
		lineBuf = line.AppendBytes(lineBuf[:0])
		return lineBuf
	})
	if rebuilt.Root() != mc.Tree().Root() {
		rep.RootConsistent = false
	}
	return rep, nil
}
