package recovery

import (
	"errors"
	"testing"

	"secpb/internal/config"
	"secpb/internal/core"
	"secpb/internal/energy"
	"secpb/internal/engine"
	"secpb/internal/nvm"
	"secpb/internal/workload"
)

// pendingImage builds a run whose SecPB still holds undrained entries,
// then restores a fresh controller around the captured NV image — the
// state a recovery boot sees.
func pendingImage(t *testing.T, scheme config.Scheme) (*nvm.Controller, []core.Entry) {
	t.Helper()
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default().WithScheme(scheme)
	cfg.Seed = 0xBA77E
	key := []byte("latework-test-key")
	e, err := engine.New(cfg, prof, key)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, cfg.Seed, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(gen); err != nil {
		t.Fatal(err)
	}
	entries := e.SecPB().SnapshotEntries()
	if len(entries) < 3 {
		t.Fatalf("run left only %d pending entries; budgeted-resume test needs several", len(entries))
	}
	mc := e.Controller()
	restored, err := nvm.Restore(cfg, key, mc.PM().Snapshot(), mc.Counters().Snapshot(),
		mc.MACs().Snapshot(), mc.Tree().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return restored, entries
}

// TestBudgetedDrainResumes kills the battery every ~2 entries and checks
// the journal cursor turns the nested crashes into forward progress:
// every boot drains what its budget covers, the final boot completes,
// and the recovered image is exactly as clean as an uninterrupted drain.
func TestBudgetedDrainResumes(t *testing.T) {
	mc, entries := pendingImage(t, config.SchemeCOBCM)
	cfg := mc.Config()
	perJ, err := energy.PerEntryDrainJ(cfg.Scheme, cfg.BMTLevels)
	if err != nil {
		t.Fatal(err)
	}

	j := NewJournal(entries)
	boots := 0
	for !j.Complete() {
		// 2.5 entries of reserve per boot: two full drains plus margin,
		// never a third.
		budget := energy.NewBudget(2.5 * perJ)
		_, derr := DrainEntriesBudget(mc, j, budget)
		if derr == nil {
			break
		}
		if !errors.Is(derr, ErrBatteryExhausted) {
			t.Fatal(derr)
		}
		boots++
		if boots > len(entries) {
			t.Fatalf("budgeted drain made no progress: %d boots for %d entries", boots, len(entries))
		}
	}
	if boots == 0 {
		t.Fatalf("budget of 2.5 entries never exhausted across %d entries", len(entries))
	}
	if !j.Complete() || j.Done() != len(entries) {
		t.Fatalf("journal not complete: done %d of %d", j.Done(), len(entries))
	}

	audit, err := AuditImage(mc)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Clean() {
		t.Fatalf("resumed drain left a dirty image: %s", audit)
	}
	for i := range entries {
		e := &entries[i]
		got, _, ferr := mc.FetchBlock(e.Block)
		if ferr != nil {
			t.Fatalf("block %#x after resumed drain: %v", e.Block.Addr(), ferr)
		}
		if got != e.Data {
			t.Fatalf("block %#x recovered wrong plaintext after resumed drain", e.Block.Addr())
		}
	}
}

// TestBudgetedDrainMatchesUnbudgeted checks the nested-crash path is
// cost-transparent: draining through N budgeted boots accumulates the
// same entry costs and yields the same image as one wall-powered drain.
func TestBudgetedDrainMatchesUnbudgeted(t *testing.T) {
	mcA, entries := pendingImage(t, config.SchemeOBCM)
	mcB, _ := pendingImage(t, config.SchemeOBCM)
	cfg := mcA.Config()
	perJ, err := energy.PerEntryDrainJ(cfg.Scheme, cfg.BMTLevels)
	if err != nil {
		t.Fatal(err)
	}

	costA, err := DrainEntries(mcA, entries)
	if err != nil {
		t.Fatal(err)
	}

	var costB nvm.Cost
	j := NewJournal(entries)
	for !j.Complete() {
		budget := energy.NewBudget(1.5 * perJ) // one entry per boot
		c, derr := DrainEntriesBudget(mcB, j, budget)
		costB.Add(c)
		if derr != nil && !errors.Is(derr, ErrBatteryExhausted) {
			t.Fatal(derr)
		}
	}
	if costA != costB {
		t.Errorf("budgeted drain cost %+v != unbudgeted %+v", costB, costA)
	}
	if mcA.Tree().Root() != mcB.Tree().Root() {
		t.Error("budgeted and unbudgeted drains reached different BMT roots")
	}
}

// TestDrainRejectsTamperedJournal is the satellite bugfix's journal
// half: a journal whose contents no longer match its checksum must be
// refused with a typed error before anything is drained into PM.
func TestDrainRejectsTamperedJournal(t *testing.T) {
	mc, entries := pendingImage(t, config.SchemeCOBCM)
	j := NewJournal(entries)
	if err := j.Validate(); err != nil {
		t.Fatalf("fresh journal failed validation: %v", err)
	}
	if err := j.Tamper(); err != nil {
		t.Fatal(err)
	}
	_, writesBefore := mc.PM().Stats()
	_, err := DrainEntriesBudget(mc, j, nil)
	var corrupt *nvm.CorruptStateError
	if !errors.As(err, &corrupt) {
		t.Fatalf("tampered journal drained anyway: err=%v", err)
	}
	if corrupt.Component != "late-work journal" {
		t.Fatalf("wrong component: %q", corrupt.Component)
	}
	if _, writesAfter := mc.PM().Stats(); writesAfter != writesBefore {
		t.Error("corrupt journal still wrote to PM")
	}
}
