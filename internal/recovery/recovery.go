// Package recovery implements the crash-recovery side of SecPB: the
// battery-powered crash drain, post-crash recovery with integrity
// verification, the crash-observer policies (blocking / warning), and an
// attack harness (tampering, rollback, and the recoverability-gap
// failure the paper motivates with Figure 1b).
//
// The central correctness statement (the PLP invariants of Section
// III.A) is checked end-to-end: after a crash at any point, recovery
// must decrypt every persisted block to exactly the plaintext the crash
// observer is allowed to see (the persist-order prefix), and integrity
// verification must succeed — or, if the crash drain is broken or the
// PM image tampered with, must fail loudly.
package recovery

import (
	"fmt"
	"sort"

	"secpb/internal/addr"
	"secpb/internal/engine"
	"secpb/internal/nvm"
)

// Report summarizes one crash-recovery experiment.
type Report struct {
	EntriesDrained  int      // SecPB entries drained on battery
	DrainCost       nvm.Cost // work the battery paid for
	BlocksChecked   int      // persisted blocks recovered and compared
	PlainMismatches int      // wrong plaintext after recovery
	VerifyFailures  int      // integrity verification failures
	FirstBad        string   // description of the first failure, if any
}

// Clean reports whether recovery was fully successful.
func (r Report) Clean() bool {
	return r.PlainMismatches == 0 && r.VerifyFailures == 0
}

// String renders a summary.
func (r Report) String() string {
	status := "CLEAN"
	if !r.Clean() {
		status = "CORRUPT: " + r.FirstBad
	}
	return fmt.Sprintf("recovery: drained %d entries, checked %d blocks, %d plaintext mismatches, %d verify failures [%s]",
		r.EntriesDrained, r.BlocksChecked, r.PlainMismatches, r.VerifyFailures, status)
}

// sortedBlocks returns the blocks of the program view in address order
// so reports and iteration are deterministic.
func sortedBlocks(mem map[addr.Block][addr.BlockBytes]byte) []addr.Block {
	blocks := make([]addr.Block, 0, len(mem))
	for b := range mem {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	return blocks
}

// CrashAndRecover performs the full correct procedure on a crashed
// engine: battery-drain every SecPB entry (completing memory tuples per
// the scheme's laziness), then recover: fetch, decrypt and verify every
// block the crash observer is entitled to see, comparing against the
// program's plaintext view.
func CrashAndRecover(e *engine.Engine) (Report, error) {
	var rep Report
	if spb := e.SecPB(); spb != nil {
		n, cost, err := spb.CrashDrain()
		if err != nil {
			return rep, fmt.Errorf("recovery: crash drain: %w", err)
		}
		rep.EntriesDrained = n
		rep.DrainCost = cost
	}
	verify(e, &rep)
	return rep, nil
}

// verify recovers every persisted block and fills in the report.
func verify(e *engine.Engine, rep *Report) {
	mc := e.Controller()
	mem := e.Memory()
	for _, b := range sortedBlocks(mem) {
		want := mem[b]
		rep.BlocksChecked++
		got, _, err := mc.FetchBlock(b)
		if err != nil {
			rep.VerifyFailures++
			if rep.FirstBad == "" {
				rep.FirstBad = fmt.Sprintf("block %#x: %v", b.Addr(), err)
			}
			continue
		}
		if got != want {
			rep.PlainMismatches++
			if rep.FirstBad == "" {
				rep.FirstBad = fmt.Sprintf("block %#x: wrong plaintext", b.Addr())
			}
		}
	}
}

// GapCrash simulates the recoverability gap of Figure 1(b): a persistent
// hierarchy whose point of persistency moved on-chip (stores persisted
// on entry to the buffer) but whose security point of persistency stayed
// at the memory controller with no crash coordination. On power loss
// the buffered data blocks reach PM — encrypted under the counters the
// MC's volatile metadata caches had already advanced — but the counter,
// MAC, and BMT updates themselves are lost with the volatile caches.
//
// Recovery after GapCrash demonstrates the failure the paper closes:
// stale counters decrypt to garbage and integrity verification fails.
func GapCrash(e *engine.Engine) (Report, error) {
	var rep Report
	spb := e.SecPB()
	if spb == nil {
		return rep, fmt.Errorf("recovery: GapCrash requires a persist buffer")
	}
	mc := e.Controller()
	if !mc.Secure() {
		return rep, fmt.Errorf("recovery: GapCrash requires a secure controller")
	}
	for {
		entry := spb.PopOldest()
		if entry == nil {
			break
		}
		rep.EntriesDrained++
		// The in-flight counter value (storage counter + 1) was only
		// in the volatile metadata cache; the data reaches PM under it
		// but the metadata stores never learn.
		staleCtr := mc.Counters().Value(entry.Block) + 1
		ct := mc.Engine().Encrypt(&entry.Data, entry.Block.Addr(), staleCtr)
		mc.PM().Write(entry.Block, ct)
	}
	verify(e, &rep)
	return rep, nil
}

// Attack identifies a post-crash tampering experiment.
type Attack int

const (
	// AttackData flips a bit in a persisted data block.
	AttackData Attack = iota
	// AttackMAC flips a bit in a stored MAC.
	AttackMAC
	// AttackCounter overwrites a stored minor counter.
	AttackCounter
	// AttackRollback restores an old (data, counter, MAC) triple that
	// was once valid — the replay attack only the BMT can catch.
	AttackRollback
)

// String names the attack.
func (a Attack) String() string {
	switch a {
	case AttackData:
		return "data-tamper"
	case AttackMAC:
		return "mac-tamper"
	case AttackCounter:
		return "counter-tamper"
	case AttackRollback:
		return "rollback"
	default:
		return fmt.Sprintf("attack(%d)", int(a))
	}
}

// Attacks lists all implemented attacks.
func Attacks() []Attack {
	return []Attack{AttackData, AttackMAC, AttackCounter, AttackRollback}
}

// RunAttack crash-drains the engine cleanly, applies the attack to the
// persisted image at the given block, and reports whether recovery
// detected it. A nil error with detected=false means the attack went
// unnoticed — a security failure the tests assert never happens.
func RunAttack(e *engine.Engine, a Attack, victim addr.Block) (detected bool, err error) {
	if spb := e.SecPB(); spb != nil {
		if _, _, err := spb.CrashDrain(); err != nil {
			return false, err
		}
	}
	mc := e.Controller()
	if _, ok := mc.PM().Peek(victim); !ok {
		return false, fmt.Errorf("recovery: victim block %#x not persisted", victim.Addr())
	}

	switch a {
	case AttackData:
		if err := mc.PM().Tamper(victim, 7); err != nil {
			return false, err
		}
	case AttackMAC:
		if err := mc.MACs().Tamper(victim, 3); err != nil {
			return false, err
		}
	case AttackCounter:
		cur := mc.Counters().Value(victim)
		if err := mc.Counters().Tamper(victim, uint8(cur)+1); err != nil {
			return false, err
		}
	case AttackRollback:
		// Build a consistent old triple: re-persist the block to move
		// it forward, then restore the captured old state.
		oldCT, _ := mc.PM().Peek(victim)
		oldTag, ok := mc.MACs().Get(victim)
		if !ok {
			return false, fmt.Errorf("recovery: victim has no MAC")
		}
		oldMinor := uint8(mc.Counters().Value(victim))
		plain, _ := e.MemoryBlock(victim)
		if _, err := mc.PersistBlock(victim, &plain, nil); err != nil {
			return false, err
		}
		mc.PM().Write(victim, oldCT)
		mc.MACs().Put(victim, oldTag)
		if err := mc.Counters().Tamper(victim, oldMinor); err != nil {
			return false, err
		}
	default:
		return false, fmt.Errorf("recovery: unknown attack %d", a)
	}

	_, _, ferr := mc.FetchBlock(victim)
	return ferr != nil, nil
}
