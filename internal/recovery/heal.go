package recovery

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/energy"
	"secpb/internal/engine"
	"secpb/internal/runner"
	"secpb/internal/workload"
)

// HealOptions selects the degraded-mode heal grid: every scheme ×
// workload cell runs a seeded trace on faulty media, crashes, drains
// its late work through battery-budgeted boots, suffers latent bit-rot
// decay, and triages the image block by block. The differential check
// compares every non-quarantined block against the engine's committed
// memory model.
type HealOptions struct {
	Schemes   []config.Scheme // default: all six SecPB schemes
	Workloads []string        // default: gcc
	Ops       uint64          // trace length per cell (default 4000)
	Seed      uint64          // base seed; each cell derives its own
	Workers   int             // worker pool size; <=0 = runner default

	WriteFailRate float64 // transient write-fail probability per PM write
	TornRate      float64 // torn-write probability per PM write
	RotRate       float64 // latent bit-rot probability per block visit
	BudgetEntries float64 // battery reserve per recovery boot, in entries (<=0 = wall power)

	Key []byte // memory-encryption key (default fixed)
}

func (o HealOptions) withDefaults() HealOptions {
	if len(o.Schemes) == 0 {
		o.Schemes = config.SecPBSchemes()
	}
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"gcc"}
	}
	if o.Ops == 0 {
		o.Ops = 4000
	}
	if len(o.Key) == 0 {
		o.Key = []byte("secpb-heal-fixed-key-material!!!")
	}
	return o
}

// HealCell is the heal-grid outcome for one scheme × workload cell.
type HealCell struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Ops      uint64 `json:"ops"`
	Seed     uint64 `json:"seed"`

	Boots       int `json:"recovery_boots"`  // budgeted boots until the journal completed
	Drained     int `json:"entries_drained"` // late-work entries replayed
	Blocks      int `json:"blocks"`          // persisted blocks triaged
	Clean       int `json:"clean"`
	Recoverable int `json:"recoverable"`
	Quarantined int `json:"quarantined"`
	Decayed     int `json:"decayed"` // blocks hit by post-crash bit rot

	WriteRetries  uint64 `json:"write_retries"`
	Remaps        uint64 `json:"remaps"`
	BackoffCycles uint64 `json:"backoff_cycles"`

	// Mismatches counts clean/recoverable blocks whose salvaged
	// plaintext differs from the committed memory model; MissedDecay
	// counts rotted blocks that escaped quarantine. Both must be zero
	// for the cell to be healthy.
	Mismatches  int    `json:"mismatches"`
	MissedDecay int    `json:"missed_decay"`
	FirstBad    string `json:"first_bad,omitempty"`
}

// Healthy reports whether degraded-mode recovery held its contract in
// this cell: all surviving data byte-identical, all rot quarantined.
func (c *HealCell) Healthy() bool { return c.Mismatches == 0 && c.MissedDecay == 0 }

// HealMatrix is the full heal-grid artifact.
type HealMatrix struct {
	Ops           uint64     `json:"ops"`
	Seed          uint64     `json:"seed"`
	WriteFailRate float64    `json:"write_fail_rate"`
	TornRate      float64    `json:"torn_rate"`
	RotRate       float64    `json:"rot_rate"`
	BudgetEntries float64    `json:"budget_entries"`
	Cells         []HealCell `json:"cells"`
}

// Healthy reports whether every cell held the degraded-mode contract.
func (m *HealMatrix) Healthy() bool {
	for i := range m.Cells {
		if !m.Cells[i].Healthy() {
			return false
		}
	}
	return true
}

// WriteJSON emits the artifact with deterministic field order.
func (m *HealMatrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Render writes a human-readable table of the heal grid.
func (m *HealMatrix) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tworkload\tboots\tdrained\tblocks\tclean\trecov\tquar\tdecayed\tretries\tremaps\tstatus")
	for i := range m.Cells {
		c := &m.Cells[i]
		status := "ok"
		if !c.Healthy() {
			status = "FAIL: " + c.FirstBad
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			c.Scheme, c.Workload, c.Boots, c.Drained, c.Blocks, c.Clean, c.Recoverable,
			c.Quarantined, c.Decayed, c.WriteRetries, c.Remaps, status)
	}
	return tw.Flush()
}

// healSeed derives a per-cell seed (same derivation discipline as the
// crash matrix: independent but reproducible cells).
func healSeed(base uint64, scheme config.Scheme, wl string) uint64 {
	h := base ^ 0x9E3779B97F4A7C15
	for _, s := range []string{scheme.String(), "/", wl} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

func (c *HealCell) fail(msg string) {
	if c.FirstBad == "" {
		c.FirstBad = msg
	}
}

// RunHealCell runs one scheme × workload cell of the heal grid.
func RunHealCell(scheme config.Scheme, wl string, opts HealOptions) (HealCell, error) {
	opts = opts.withDefaults()
	cell := HealCell{Scheme: scheme.String(), Workload: wl, Ops: opts.Ops}
	prof, err := workload.ByName(wl)
	if err != nil {
		return cell, err
	}
	seed := healSeed(opts.Seed, scheme, wl)
	cell.Seed = seed
	cfg := config.Default().WithScheme(scheme)
	cfg.Seed = seed
	cfg.FaultSeed = seed ^ 0xFA017
	cfg.FaultWriteFailRate = opts.WriteFailRate
	cfg.FaultTornRate = opts.TornRate
	cfg.FaultRotRate = opts.RotRate

	e, err := engine.New(cfg, prof, opts.Key)
	if err != nil {
		return cell, err
	}
	gen, err := workload.NewGenerator(prof, seed, opts.Ops)
	if err != nil {
		return cell, err
	}
	if err := e.Run(gen); err != nil {
		return cell, err
	}
	golden := e.Memory()
	mc := e.Controller()

	// Crash: drain the battery-backed late work through budgeted boots.
	j := NewJournal(e.SecPB().SnapshotEntries())
	for !j.Complete() {
		var budget *energy.Budget
		if opts.BudgetEntries > 0 {
			perJ, perr := energy.PerEntryDrainJ(scheme, cfg.BMTLevels)
			if perr != nil {
				return cell, perr
			}
			budget = energy.NewBudget(opts.BudgetEntries * perJ)
		}
		_, derr := DrainEntriesBudget(mc, j, budget)
		cell.Boots++
		if derr == nil {
			break
		}
		if !errors.Is(derr, ErrBatteryExhausted) {
			return cell, derr
		}
		if cell.Boots > j.Len()+1 {
			return cell, fmt.Errorf("heal: budget of %.2f entries makes no progress", opts.BudgetEntries)
		}
	}
	cell.Drained = j.Done()

	stats := mc.MediaStats()
	cell.WriteRetries = stats.WriteRetries
	cell.Remaps = stats.Remaps
	cell.BackoffCycles = stats.BackoffCycles

	// Latent decay over the resting image, then block-granular triage.
	decayed := mc.PM().Decay()
	cell.Decayed = len(decayed)
	rotted := make(map[addr.Block]bool, len(decayed))
	for _, b := range decayed {
		rotted[b] = true
	}
	rep, err := Triage(mc)
	if err != nil {
		return cell, err
	}
	cell.Blocks = rep.Blocks
	cell.Clean = rep.Clean
	cell.Recoverable = rep.Recoverable
	cell.Quarantined = rep.Quarantined

	// Differential check: every non-quarantined block byte-identical to
	// the committed model; every rotted block quarantined.
	blocks := make([]addr.Block, 0, len(golden))
	for b := range golden {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, k int) bool { return blocks[i] < blocks[k] })
	for _, b := range blocks {
		class, ok := rep.Class(b)
		if !ok {
			cell.Mismatches++
			cell.fail(fmt.Sprintf("committed block %#x missing from triage", b.Addr()))
			continue
		}
		if rotted[b] {
			if class != ClassQuarantined {
				cell.MissedDecay++
				cell.fail(fmt.Sprintf("rotted block %#x classed %v, not quarantined", b.Addr(), class))
			}
			continue
		}
		if class == ClassQuarantined {
			// Quarantine without injected rot is a false positive.
			cell.Mismatches++
			cell.fail(fmt.Sprintf("unrotted block %#x quarantined", b.Addr()))
			continue
		}
		if got, ok := rep.Recovered(b); !ok || got != golden[b] {
			cell.Mismatches++
			cell.fail(fmt.Sprintf("block %#x (%v) salvaged wrong plaintext", b.Addr(), class))
		}
	}
	return cell, nil
}

// ExploreHeal runs the full scheme × workload heal grid over a bounded
// worker pool; cells are self-contained and the artifact is
// byte-identical regardless of pool size.
func ExploreHeal(ctx context.Context, opts HealOptions) (*HealMatrix, error) {
	opts = opts.withDefaults()
	type cellKey struct {
		scheme config.Scheme
		wl     string
	}
	var cells []cellKey
	for _, s := range opts.Schemes {
		for _, w := range opts.Workloads {
			cells = append(cells, cellKey{s, w})
		}
	}
	results, err := runner.Map(ctx, opts.Workers, cells, func(_ context.Context, _ int, c cellKey) (HealCell, error) {
		return RunHealCell(c.scheme, c.wl, opts)
	})
	if err != nil {
		return nil, err
	}
	return &HealMatrix{
		Ops:           opts.Ops,
		Seed:          opts.Seed,
		WriteFailRate: opts.WriteFailRate,
		TornRate:      opts.TornRate,
		RotRate:       opts.RotRate,
		BudgetEntries: opts.BudgetEntries,
		Cells:         results,
	}, nil
}
