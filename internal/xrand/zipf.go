package xrand

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It is used to model skewed block reuse (hot working sets)
// in synthetic workloads.
//
// The implementation precomputes the cumulative distribution and samples
// by binary search, which is exact and fast for the table sizes used by
// workload generators (up to a few hundred thousand blocks).
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 0.
// It panics if n <= 0 or s <= 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	if s <= 0 {
		panic("xrand: NewZipf with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, r: r}
}

// N returns the size of the sampled domain.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sample in [0, N()).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
