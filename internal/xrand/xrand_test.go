package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the canonical splitmix64
	// implementation (Vigna).
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("splitmix64[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical first 10 outputs")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(7)
	const n = 10
	const samples = 100000
	var buckets [n]int
	for i := 0; i < samples; i++ {
		buckets[r.Uint64n(n)]++
	}
	want := samples / n
	for i, c := range buckets {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("bucket %d count %d deviates >5%% from %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	const samples = 100000
	hits := 0
	for i := 0; i < samples; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / samples
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v, want ~0.3", p)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := New(seed)
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(9)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	z := NewZipf(r, 100, 1.0)
	const samples = 200000
	counts := make([]int, 100)
	for i := 0; i < samples; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 10 by roughly 11x for s=1.
	if counts[0] < 5*counts[10] {
		t.Errorf("zipf not skewed: counts[0]=%d counts[10]=%d", counts[0], counts[10])
	}
	// All mass within domain and every early rank sampled.
	for i := 0; i < 5; i++ {
		if counts[i] == 0 {
			t.Errorf("rank %d never sampled", i)
		}
	}
}

func TestZipfDomain(t *testing.T) {
	r := New(17)
	z := NewZipf(r, 7, 0.8)
	if z.N() != 7 {
		t.Fatalf("N() = %d, want 7", z.N())
	}
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 7 {
			t.Fatalf("zipf sample %d out of range", v)
		}
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 65536, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
