// Package xrand provides small, deterministic pseudo-random number
// generators and distributions used to synthesize workloads.
//
// Simulation results must be exactly reproducible across runs and
// platforms, so the package avoids math/rand's global state and version
// drift: the generators here are fixed algorithms (splitmix64 and
// xoshiro256**) with explicit seeds.
package xrand

// SplitMix64 is the splitmix64 generator. It is used mainly to expand a
// single user seed into the larger state required by Rand.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** pseudo-random generator. The zero value is not
// usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v <= max {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
