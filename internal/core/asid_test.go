package core

import (
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
)

func TestDrainProcessOnlyDrainsOwnEntries(t *testing.T) {
	s, mc := newSecPB(t, config.SchemeCOBCM)
	// Two processes interleave entries in the same per-core SecPB.
	for i := uint64(0); i < 4; i++ {
		if _, err := s.AcceptStoreFor(1, addr.FromIndex(0x100+i), 0, 8, i, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AcceptStoreFor(2, addr.FromIndex(0x200+i), 0, 8, 100+i, nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("resident = %d", s.Len())
	}
	n, _, err := s.DrainProcess(1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("drain-process drained %d entries, want 4", n)
	}
	if s.Len() != 4 {
		t.Errorf("resident after drain-process = %d, want 4", s.Len())
	}
	// Process 1's blocks are persisted and verifiable.
	for i := uint64(0); i < 4; i++ {
		got, _, err := mc.FetchBlock(addr.FromIndex(0x100 + i))
		if err != nil {
			t.Fatalf("process-1 block %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Errorf("process-1 block %d wrong plaintext", i)
		}
	}
	// Process 2's entries are untouched (still coalescing-eligible).
	for i := uint64(0); i < 4; i++ {
		if s.Lookup(addr.FromIndex(0x200+i)) == nil {
			t.Errorf("process-2 block %d was drained by drain-process(1)", i)
		}
	}
}

func TestDrainProcessPreservesOrder(t *testing.T) {
	s, _ := newSecPB(t, config.SchemeCOBCM)
	blocks := []addr.Block{addr.FromIndex(9), addr.FromIndex(3), addr.FromIndex(7)}
	for i, b := range blocks {
		if _, err := s.AcceptStoreFor(5, b, 0, 8, uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Interject another process's entry between them.
	if _, err := s.AcceptStoreFor(6, addr.FromIndex(99), 0, 8, 0, nil); err != nil {
		t.Fatal(err)
	}
	var drained []addr.Block
	for {
		e := s.buf.DrainOldestWhere(func(e *Entry) bool { return e.ASID == 5 })
		if e == nil {
			break
		}
		drained = append(drained, e.Block)
	}
	if len(drained) != 3 {
		t.Fatalf("drained %d", len(drained))
	}
	for i, b := range blocks {
		if drained[i] != b {
			t.Errorf("drain order[%d] = %v, want %v (persist order invariant)", i, drained[i], b)
		}
	}
}

func TestCoalescingDoesNotRetag(t *testing.T) {
	s, _ := newSecPB(t, config.SchemeCOBCM)
	b := addr.FromIndex(0x42)
	s.AcceptStoreFor(7, b, 0, 8, 1, nil)
	s.AcceptStoreFor(8, b, 8, 8, 2, nil) // shared-memory write by asid 8
	if e := s.Lookup(b); e.ASID != 7 {
		t.Errorf("entry re-tagged to %d, want allocator's 7", e.ASID)
	}
	// Drain-process for the allocator includes the coalesced data.
	n, _, err := s.DrainProcess(7)
	if err != nil || n != 1 {
		t.Fatalf("drain = %d, %v", n, err)
	}
}

func TestAcceptStoreDefaultsToASIDZero(t *testing.T) {
	s, _ := newSecPB(t, config.SchemeCOBCM)
	s.AcceptStore(addr.FromIndex(1), 0, 8, 1, nil)
	if e := s.Lookup(addr.FromIndex(1)); e.ASID != 0 {
		t.Errorf("default ASID = %d", e.ASID)
	}
}
