// Package core implements SecPB — the secure persist buffer that is this
// paper's contribution. SecPB aligns the security point of persistency
// (SPoP) with the point of persistency (PoP): as a store enters the
// buffer it is persistent, and the buffer's controller coordinates when
// each element of the memory tuple (ciphertext, counter, MAC, BMT root)
// is generated — early, at store-persist time, or late, on battery after
// a crash — according to the configured scheme (NoGap, M, CM, BCM, OBCM,
// COBCM).
//
// Each entry carries the fields of the paper's Figure 5: the plaintext
// block Dp, the one-time pad O, the ciphertext Dc, the counter C, the
// BMT-updated bit B, and the MAC M, each with a valid bit. Which fields
// a scheme populates eagerly follows config.Scheme.Early().
//
// The data-value-independent coalescing optimization (Section IV.A) is
// implemented here: counter increment, OTP generation and the BMT walk
// happen once per newly dirtied entry, not once per store, because the
// crash observer may only see post-drain state.
package core

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/crashpoint"
	"secpb/internal/crypto"
	"secpb/internal/nvm"
	"secpb/internal/pb"
)

// SecMeta is the per-entry security-metadata extension: the O, Dc, C, B
// and M fields of a SecPB entry with their valid bits.
type SecMeta struct {
	OTP          [addr.BlockBytes]byte
	OTPValid     bool
	Cipher       [addr.BlockBytes]byte
	CipherValid  bool
	Counter      uint64
	CounterValid bool
	// CounterAdvance counts how many counter increments this entry owes
	// the storage counters at drain: 1 with the Section IV.A coalescing
	// optimization, one per store without it (ablation mode).
	CounterAdvance int
	BMTDone        bool
	MAC            [crypto.MACSize]byte
	MACValid       bool
}

// preparedInto fills the drain-side PreparedMeta the memory controller
// consumes from the entry's valid fields. Writing into a caller-owned
// struct (the SecPB's drain scratch) instead of returning by value
// keeps the ~280-byte struct off the per-drain copy path.
func (m *SecMeta) preparedInto(p *nvm.PreparedMeta) {
	p.CounterDone = m.CounterValid
	p.Counter = m.Counter
	p.CounterAdvance = m.CounterAdvance
	p.OTPDone = m.OTPValid
	p.OTP = m.OTP
	p.CipherDone = m.CipherValid
	p.Cipher = m.Cipher
	p.MACDone = m.MACValid
	p.MAC = m.MAC
	p.BMTDone = m.BMTDone
}

// PrepareInto is the exported form of preparedInto for callers outside
// the package (the recovery late-work path re-drains snapshot entries).
func (m *SecMeta) PrepareInto(p *nvm.PreparedMeta) { m.preparedInto(p) }

// Entry is a SecPB entry.
type Entry = pb.Entry[SecMeta]

// AcceptCost describes the work a store triggered at acceptance time so
// the engine can charge unit latencies. Booleans/counters refer to the
// early work actually performed for this store under the scheme.
type AcceptCost struct {
	Allocated    bool     // a new entry was allocated
	CtrCost      nvm.Cost // counter-cache access cost (if counter early)
	CounterStep  bool     // counter fetched+incremented early
	OTPGenerated bool     // AES engine used (per entry)
	BMTLevels    int      // BMT levels walked early (per entry)
	BMTNodeFetch int      // BMT cache misses during the early walk
	CipherXOR    bool     // per-store ciphertext regeneration
	MACGenerated bool     // per-store MAC regeneration
}

// SecPB is one core's secure persist buffer plus its controller FSM.
type SecPB struct {
	cfg    config.Config
	scheme config.Scheme
	early  config.EarlyWork
	buf    *pb.Buffer[SecMeta]
	mc     *nvm.Controller

	// prep is the drain-path scratch PreparedMeta handed to
	// PersistBlock by pointer; the SecPB is single-threaded.
	prep nvm.PreparedMeta

	// sink, when non-nil, receives the entry-allocation crash point.
	sink crashpoint.Sink
	// inflight is the entry whose drain is currently executing at the
	// memory controller: it has left the buffer but its tuple update is
	// not complete, so it is still battery-covered state that a crash
	// snapshot must capture (the MC's drain latches).
	inflight *Entry

	// Statistics.
	stores       uint64
	allocs       uint64
	earlyBMT     uint64 // BMT walks charged at allocation
	earlyOTP     uint64
	earlyMAC     uint64
	earlyXOR     uint64
	invalidated  uint64 // prepared-metadata invalidations (page re-encryption)
	migrationsIn uint64 // entries adopted from other cores' SecPBs
}

// New builds a SecPB attached to the given memory controller.
func New(cfg config.Config, mc *nvm.Controller) (*SecPB, error) {
	if !cfg.Scheme.Secure() && cfg.Scheme != config.SchemeBBB {
		return nil, fmt.Errorf("core: scheme %v not supported by SecPB", cfg.Scheme)
	}
	buf, err := pb.New[SecMeta](cfg.SecPBEntries, cfg.DrainHi, cfg.DrainLo)
	if err != nil {
		return nil, err
	}
	s := &SecPB{
		cfg:    cfg,
		scheme: cfg.Scheme,
		early:  cfg.Scheme.Early(),
		buf:    buf,
		mc:     mc,
	}
	if mc.Secure() {
		mc.SetReencryptHook(s.invalidatePage)
	}
	return s, nil
}

// Scheme returns the configured persistence scheme.
func (s *SecPB) Scheme() config.Scheme { return s.scheme }

// Len returns the current occupancy.
func (s *SecPB) Len() int { return s.buf.Len() }

// PeakLen returns the high-water entry occupancy over the run.
func (s *SecPB) PeakLen() int { return s.buf.PeakLen() }

// Full reports whether a new allocation would fail.
func (s *SecPB) Full() bool { return s.buf.Full() }

// AboveHigh reports whether draining should start.
func (s *SecPB) AboveHigh() bool { return s.buf.AboveHigh() }

// AboveLow reports whether draining should continue.
func (s *SecPB) AboveLow() bool { return s.buf.AboveLow() }

// NWPE returns mean writes per drained entry.
func (s *SecPB) NWPE() float64 { return s.buf.NWPE() }

// Stats returns (stores accepted, entries allocated).
func (s *SecPB) Stats() (stores, allocs uint64) { return s.stores, s.allocs }

// EarlyWorkStats returns how often each early mechanism ran: BMT walks,
// OTP generations, MAC generations, ciphertext XORs.
func (s *SecPB) EarlyWorkStats() (bmtWalks, otps, macs, xors uint64) {
	return s.earlyBMT, s.earlyOTP, s.earlyMAC, s.earlyXOR
}

// Invalidations returns how many entries had prepared metadata dropped
// because of page re-encryptions.
func (s *SecPB) Invalidations() uint64 { return s.invalidated }

// Lookup returns the resident entry for a block, or nil. Loads that
// miss the L1 consult the SecPB before PM, since the buffer is
// memory-side and holds the freshest data.
func (s *SecPB) Lookup(b addr.Block) *Entry { return s.buf.Lookup(b) }

// AcceptStore coalesces one store into the buffer and performs the
// scheme's early security-metadata work. fetch supplies the block's
// current contents for a newly allocated entry. It returns pb.ErrFull
// (wrapped) when the buffer needs a drain first; the caller drains and
// retries.
func (s *SecPB) AcceptStore(b addr.Block, off, size int, val uint64, fetch func() [addr.BlockBytes]byte) (AcceptCost, error) {
	return s.AcceptStoreFor(0, b, off, size, val, fetch)
}

// AcceptStoreFor is AcceptStore with an explicit address-space tag, for
// systems running multiple processes per core (the drain-process
// application-crash policy needs the tag; drain-all ignores it).
func (s *SecPB) AcceptStoreFor(asid uint16, b addr.Block, off, size int, val uint64, fetch func() [addr.BlockBytes]byte) (AcceptCost, error) {
	entry, allocated, err := s.buf.WriteFor(asid, b, off, size, val, fetch)
	if err != nil {
		return AcceptCost{}, err
	}
	var cost AcceptCost
	err = s.acceptEntry(entry, allocated, b, &cost)
	return cost, err
}

// AcceptStoreInit is the closure-free hot-path form of AcceptStoreFor:
// init, if non-nil, points at the block's current contents (copied only
// on allocation), and allocAt stamps the new entry's point-of-persistency
// cycle for the battery-exposure histogram. The accept cost fills the
// caller's out-param — AcceptCost embeds an nvm.Cost and returning it
// by value through two call layers was a measurable per-store copy.
func (s *SecPB) AcceptStoreInit(asid uint16, b addr.Block, off, size int, val uint64, init *[addr.BlockBytes]byte, allocAt uint64, cost *AcceptCost) error {
	entry, allocated, err := s.buf.WriteInit(asid, b, off, size, val, init)
	if err != nil {
		return err
	}
	if allocated {
		entry.AllocCycle = allocAt
	}
	return s.acceptEntry(entry, allocated, b, cost)
}

// CoalesceStore is the engine kernel's fast path for a store whose
// block already has a resident entry: the coalescing write plus the
// scheme's per-store (data-value-dependent) early work, with none of
// the allocation path's AcceptCost bookkeeping. It reports found=false
// — with no side effects — when the block has no resident entry, when
// the write is invalid, or under the DVI-coalescing ablation (which
// redoes per-entry work on every store); the caller then falls back to
// AcceptStoreInit, which re-checks everything and reports errors.
// xored/maced mirror AcceptCost.CipherXOR/MACGenerated for timing.
func (s *SecPB) CoalesceStore(b addr.Block, off, size int, val uint64) (found, xored, maced bool) {
	if s.cfg.DisableDVICoalescing {
		return false, false, false
	}
	e := s.buf.CoalesceWrite(b, off, size, val)
	if e == nil {
		return false, false, false
	}
	s.stores++
	if s.scheme == config.SchemeBBB {
		return true, false, false
	}
	if s.early.Ciphertext && e.Ext.OTPValid {
		crypto.XOR(&e.Ext.Cipher, &e.Data, &e.Ext.OTP)
		e.Ext.CipherValid = true
		s.earlyXOR++
		xored = true
	}
	if s.early.MAC && e.Ext.CipherValid {
		s.mc.MakeMACInto(&e.Ext.MAC, b, &e.Ext.Cipher, e.Ext.Counter)
		e.Ext.MACValid = true
		s.earlyMAC++
		maced = true
	}
	return true, xored, maced
}

// acceptEntry performs the scheme's early security-metadata work for a
// store just coalesced into entry, filling *cost.
func (s *SecPB) acceptEntry(entry *Entry, allocated bool, b addr.Block, cost *AcceptCost) error {
	s.stores++
	*cost = AcceptCost{Allocated: allocated}
	if allocated {
		s.allocs++
		if s.sink != nil {
			s.sink.CrashPoint(crashpoint.EntryAlloc, b)
		}
	}
	if s.scheme == config.SchemeBBB {
		return nil
	}

	// Per-entry (data-value-independent) early work, performed once at
	// allocation: Section IV.A's coalescing optimization. With the
	// optimization disabled (ablation), the work repeats on every store
	// and each store advances the counter, so a hot block burns through
	// its minor counter NWPE times faster.
	redo := allocated || s.cfg.DisableDVICoalescing
	if redo {
		if s.early.Counter {
			entry.Ext.CounterAdvance++
			ctr, c := s.mc.NextCounter(b)
			entry.Ext.Counter = ctr + uint64(entry.Ext.CounterAdvance) - 1
			entry.Ext.CounterValid = true
			cost.CtrCost = c
			cost.CounterStep = true
		}
		if s.early.OTP {
			s.mc.MakeOTPInto(&entry.Ext.OTP, b, entry.Ext.Counter)
			entry.Ext.OTPValid = true
			cost.OTPGenerated = true
			s.earlyOTP++
		}
		if s.early.BMT {
			c := s.mc.ChargeBMTWalk(b)
			entry.Ext.BMTDone = true
			cost.BMTLevels = c.BMTLevels
			cost.BMTNodeFetch = c.BMTNodeFetch
			s.earlyBMT++
		}
	}

	// Per-store (data-value-dependent) early work: ciphertext and MAC
	// must track every plaintext change.
	if s.early.Ciphertext && entry.Ext.OTPValid {
		crypto.XOR(&entry.Ext.Cipher, &entry.Data, &entry.Ext.OTP)
		entry.Ext.CipherValid = true
		cost.CipherXOR = true
		s.earlyXOR++
	}
	if s.early.MAC && entry.Ext.CipherValid {
		s.mc.MakeMACInto(&entry.Ext.MAC, b, &entry.Ext.Cipher, entry.Ext.Counter)
		entry.Ext.MACValid = true
		cost.MACGenerated = true
		s.earlyMAC++
	}
	return nil
}

// DrainOne removes the oldest entry and completes its memory tuple at
// the memory controller. It returns the drained entry (nil when empty)
// and the controller cost.
func (s *SecPB) DrainOne() (*Entry, nvm.Cost, error) {
	e := s.buf.DrainOldest()
	if e == nil {
		return nil, nvm.Cost{}, nil
	}
	cost, err := s.persistEntry(e)
	return e, cost, err
}

// persistEntry completes one removed entry's tuple at the MC, keeping it
// visible as in-flight battery-covered state for the duration.
func (s *SecPB) persistEntry(e *Entry) (nvm.Cost, error) {
	s.inflight = e
	e.Ext.preparedInto(&s.prep)
	cost, err := s.mc.PersistBlock(e.Block, &e.Data, &s.prep)
	s.inflight = nil
	return cost, err
}

// Recycle returns a fully-drained entry to the buffer's free list. The
// caller asserts it holds the only live reference: the drain loop may
// recycle an entry once its PersistBlock returned, because crash
// snapshots copy entries by value and the controller copies the data
// payload before returning.
func (s *SecPB) Recycle(e *Entry) { s.buf.Release(e) }

// InFlightDrain returns the entry currently mid-drain at the memory
// controller, or nil. Non-nil only while a drain's PersistBlock is
// executing — i.e. when observed from a crash-point callback.
func (s *SecPB) InFlightDrain() *Entry { return s.inflight }

// SetCrashSink installs (or, with nil, removes) the crash-injection
// sink receiving the SecPB's entry-allocation crash points.
func (s *SecPB) SetCrashSink(sink crashpoint.Sink) { s.sink = sink }

// SnapshotEntries returns value copies of the battery-covered entries at
// this instant: the in-flight drain entry first (it was the FIFO head),
// then the resident entries oldest-first. This is the state a crash
// snapshot preserves alongside the NV image.
func (s *SecPB) SnapshotEntries() []Entry {
	ents := s.buf.Entries()
	out := make([]Entry, 0, len(ents)+1)
	if s.inflight != nil {
		out = append(out, *s.inflight)
	}
	for _, e := range ents {
		out = append(out, *e)
	}
	return out
}

// RemoveForMigration extracts the entry for a block so it can migrate
// to another core's SecPB (a remote write request, Section IV.C). The
// data-value-independent metadata (counter, OTP, BMT-done bit) travels
// with the entry; the data-value-dependent fields are cleared because
// the requester will overwrite the data and must regenerate them.
func (s *SecPB) RemoveForMigration(b addr.Block) *Entry {
	e := s.buf.Remove(b)
	if e == nil {
		return nil
	}
	e.Ext.CipherValid = false
	e.Ext.MACValid = false
	return e
}

// AdoptMigrated inserts an entry migrated from another core's SecPB.
// Per the paper, migration avoids replication: the entry exists in
// exactly one SecPB afterwards, and the requester does not repeat the
// counter/OTP/BMT work the donor already performed. It returns
// pb.ErrFull when this buffer needs a drain first.
func (s *SecPB) AdoptMigrated(e *Entry) error {
	if err := s.buf.Insert(e); err != nil {
		return err
	}
	s.migrationsIn++
	return nil
}

// MigrationsIn returns how many entries were adopted from other cores.
func (s *SecPB) MigrationsIn() uint64 { return s.migrationsIn }

// PopOldest removes and returns the oldest entry WITHOUT completing its
// memory tuple at the controller. Correct operation never does this; it
// exists so the recovery package can model broken crash handling (the
// recoverability gap of Figure 1b) and measure the resulting corruption.
func (s *SecPB) PopOldest() *Entry { return s.buf.DrainOldest() }

// FlushBlock force-drains a specific block (cache coherence: another
// core read or wrote an address resident here, or the observer requires
// the block persisted). Returns whether the block was resident.
func (s *SecPB) FlushBlock(b addr.Block) (bool, nvm.Cost, error) {
	e := s.buf.Remove(b)
	if e == nil {
		return false, nvm.Cost{}, nil
	}
	cost, err := s.persistEntry(e)
	return true, cost, err
}

// DrainProcess drains and sec-syncs only the entries belonging to the
// given address space — the drain-process policy for application
// crashes (Section III.B). Other processes' entries keep their place
// and coalescing opportunities. It returns the number of entries
// drained and the total controller cost.
func (s *SecPB) DrainProcess(asid uint16) (entries int, total nvm.Cost, err error) {
	for {
		e := s.buf.DrainOldestWhere(func(e *Entry) bool { return e.ASID == asid })
		if e == nil {
			// End of the sec-sync epoch: commit the staged BMT walks in
			// one coalesced sweep.
			s.mc.CompleteSweep()
			return entries, total, nil
		}
		cost, perr := s.persistEntry(e)
		if perr != nil {
			return entries, total, perr
		}
		entries++
		total.Add(cost)
	}
}

// CrashDrain drains every entry in allocation order, completing all
// tuples — the battery-powered procedure after a crash is detected. It
// returns the total controller cost (which the energy model prices).
func (s *SecPB) CrashDrain() (entries int, total nvm.Cost, err error) {
	for {
		e, cost, derr := s.DrainOne()
		if derr != nil {
			return entries, total, derr
		}
		if e == nil {
			// The battery-powered drain is one epoch: all staged BMT
			// walks commit in a single coalesced sweep before the
			// recovery observer inspects the image.
			s.mc.CompleteSweep()
			return entries, total, nil
		}
		entries++
		total.Add(cost)
	}
}

// invalidatePage drops prepared metadata for entries whose page was
// re-encrypted: the counter reset made their C/O/Dc/M values stale, so
// the drain path must regenerate them (the directory-based coherence of
// Section IV.C between metadata caches and SecPBs).
func (s *SecPB) invalidatePage(page uint64) {
	for _, e := range s.buf.Entries() {
		if e.Block.Page() != page {
			continue
		}
		if e.Ext.CounterValid || e.Ext.OTPValid || e.Ext.CipherValid || e.Ext.MACValid || e.Ext.BMTDone {
			s.invalidated++
		}
		e.Ext = SecMeta{}
	}
}
