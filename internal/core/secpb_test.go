package core

import (
	"errors"
	"testing"

	"secpb/internal/addr"
	"secpb/internal/config"
	"secpb/internal/nvm"
	"secpb/internal/pb"
)

func newSecPB(t *testing.T, scheme config.Scheme) (*SecPB, *nvm.Controller) {
	t.Helper()
	cfg := config.Default().WithScheme(scheme)
	mc, err := nvm.NewController(cfg, []byte("test"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, mc)
	if err != nil {
		t.Fatal(err)
	}
	return s, mc
}

func TestEarlyWorkPerScheme(t *testing.T) {
	cases := []struct {
		scheme                    config.Scheme
		wantCtr, wantOTP, wantBMT bool
		wantXOR, wantMAC          bool
	}{
		{config.SchemeNoGap, true, true, true, true, true},
		{config.SchemeM, true, true, true, true, false},
		{config.SchemeCM, true, true, true, false, false},
		{config.SchemeBCM, true, true, false, false, false},
		{config.SchemeOBCM, true, false, false, false, false},
		{config.SchemeCOBCM, false, false, false, false, false},
	}
	for _, tc := range cases {
		s, _ := newSecPB(t, tc.scheme)
		cost, err := s.AcceptStore(addr.BlockOf(0x1000), 0, 8, 42, nil)
		if err != nil {
			t.Fatalf("%v: %v", tc.scheme, err)
		}
		if !cost.Allocated {
			t.Fatalf("%v: first store did not allocate", tc.scheme)
		}
		if cost.CounterStep != tc.wantCtr {
			t.Errorf("%v: counter early = %v, want %v", tc.scheme, cost.CounterStep, tc.wantCtr)
		}
		if cost.OTPGenerated != tc.wantOTP {
			t.Errorf("%v: OTP early = %v, want %v", tc.scheme, cost.OTPGenerated, tc.wantOTP)
		}
		if (cost.BMTLevels > 0) != tc.wantBMT {
			t.Errorf("%v: BMT early levels = %d, want early=%v", tc.scheme, cost.BMTLevels, tc.wantBMT)
		}
		if cost.CipherXOR != tc.wantXOR {
			t.Errorf("%v: XOR early = %v, want %v", tc.scheme, cost.CipherXOR, tc.wantXOR)
		}
		if cost.MACGenerated != tc.wantMAC {
			t.Errorf("%v: MAC early = %v, want %v", tc.scheme, cost.MACGenerated, tc.wantMAC)
		}
	}
}

func TestCoalescingOptimization(t *testing.T) {
	// Section IV.A: counter/OTP/BMT once per dirty entry; ciphertext and
	// MAC per store (NoGap).
	s, _ := newSecPB(t, config.SchemeNoGap)
	b := addr.BlockOf(0x2000)
	for i := 0; i < 5; i++ {
		cost, err := s.AcceptStore(b, i*8, 8, uint64(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && !cost.Allocated {
			t.Fatal("first store must allocate")
		}
		if i > 0 {
			if cost.Allocated || cost.CounterStep || cost.OTPGenerated || cost.BMTLevels > 0 {
				t.Errorf("store %d redid per-entry work: %+v", i, cost)
			}
			if !cost.CipherXOR || !cost.MACGenerated {
				t.Errorf("store %d skipped per-store work: %+v", i, cost)
			}
		}
	}
	bmtWalks, otps, macs, xors := s.EarlyWorkStats()
	if bmtWalks != 1 || otps != 1 {
		t.Errorf("per-entry work ran %d/%d times, want 1/1", bmtWalks, otps)
	}
	if macs != 5 || xors != 5 {
		t.Errorf("per-store work ran %d/%d times, want 5/5", macs, xors)
	}
}

func TestDrainRoundTripAllSchemes(t *testing.T) {
	for _, scheme := range config.SecPBSchemes() {
		s, mc := newSecPB(t, scheme)
		b := addr.BlockOf(0x3000)
		var want [addr.BlockBytes]byte
		for i := 0; i < 8; i++ {
			if _, err := s.AcceptStore(b, i*8, 8, uint64(i)+1000, nil); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 8; j++ {
				want[i*8+j] = byte((uint64(i) + 1000) >> (8 * j))
			}
		}
		e, _, err := s.DrainOne()
		if err != nil {
			t.Fatalf("%v: drain: %v", scheme, err)
		}
		if e == nil || e.Block != b {
			t.Fatalf("%v: drained %v", scheme, e)
		}
		got, _, err := mc.FetchBlock(b)
		if err != nil {
			t.Fatalf("%v: fetch after drain: %v", scheme, err)
		}
		if got != want {
			t.Errorf("%v: recovered plaintext mismatch", scheme)
		}
	}
}

func TestDrainCostReflectsEagerness(t *testing.T) {
	// A COBCM drain must pay for OTP and a full BMT walk; a NoGap drain
	// must pay for neither.
	lazy, _ := newSecPB(t, config.SchemeCOBCM)
	eager, _ := newSecPB(t, config.SchemeNoGap)
	b := addr.BlockOf(0x4000)
	lazy.AcceptStore(b, 0, 8, 1, nil)
	eager.AcceptStore(b, 0, 8, 1, nil)
	_, lazyCost, err := lazy.DrainOne()
	if err != nil {
		t.Fatal(err)
	}
	_, eagerCost, err := eager.DrainOne()
	if err != nil {
		t.Fatal(err)
	}
	if lazyCost.AESOps != 1 || lazyCost.BMTLevels != 8 || lazyCost.Hashes < 9 {
		t.Errorf("lazy drain cost = %+v, want full tuple work", lazyCost)
	}
	if eagerCost.AESOps != 0 || eagerCost.BMTLevels != 0 || eagerCost.Hashes != 0 {
		t.Errorf("eager drain cost = %+v, want no recompute", eagerCost)
	}
}

func TestFullBufferRejectsNewBlocks(t *testing.T) {
	cfg := config.Default().WithScheme(config.SchemeCOBCM).WithSecPBEntries(4)
	mc, _ := nvm.NewController(cfg, []byte("k"))
	s, err := New(cfg, mc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.AcceptStore(addr.FromIndex(uint64(i)), 0, 8, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Full() {
		t.Fatal("not full")
	}
	_, err = s.AcceptStore(addr.FromIndex(99), 0, 8, 0, nil)
	if !errors.Is(err, pb.ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	// Coalescing into a resident block still succeeds when full.
	if _, err := s.AcceptStore(addr.FromIndex(1), 8, 8, 0, nil); err != nil {
		t.Errorf("coalescing on full buffer failed: %v", err)
	}
}

func TestCrashDrainPersistsEverything(t *testing.T) {
	for _, scheme := range config.SecPBSchemes() {
		s, mc := newSecPB(t, scheme)
		blocks := []addr.Block{addr.BlockOf(0x1000), addr.BlockOf(0x2000), addr.BlockOf(0x55C0)}
		for i, b := range blocks {
			if _, err := s.AcceptStore(b, 0, 8, uint64(i)+7, nil); err != nil {
				t.Fatal(err)
			}
		}
		n, _, err := s.CrashDrain()
		if err != nil {
			t.Fatalf("%v: crash drain: %v", scheme, err)
		}
		if n != len(blocks) {
			t.Fatalf("%v: drained %d entries, want %d", scheme, n, len(blocks))
		}
		if s.Len() != 0 {
			t.Fatalf("%v: buffer not empty after crash drain", scheme)
		}
		for i, b := range blocks {
			got, _, err := mc.FetchBlock(b)
			if err != nil {
				t.Fatalf("%v: block %d failed verification after crash drain: %v", scheme, i, err)
			}
			if got[0] != byte(i)+7 {
				t.Errorf("%v: block %d wrong plaintext", scheme, i)
			}
		}
	}
}

func TestFlushBlock(t *testing.T) {
	s, mc := newSecPB(t, config.SchemeCM)
	b := addr.BlockOf(0x6000)
	s.AcceptStore(b, 0, 8, 0xAB, nil)
	found, _, err := s.FlushBlock(b)
	if err != nil || !found {
		t.Fatalf("flush: found=%v err=%v", found, err)
	}
	if got, _, err := mc.FetchBlock(b); err != nil || got[0] != 0xAB {
		t.Errorf("fetch after flush: %v err=%v", got[0], err)
	}
	found, _, err = s.FlushBlock(b)
	if err != nil || found {
		t.Error("second flush found the block again")
	}
}

func TestLookupServesResidentBlock(t *testing.T) {
	s, _ := newSecPB(t, config.SchemeCOBCM)
	b := addr.BlockOf(0x7000)
	s.AcceptStore(b, 0, 8, 0xCD, nil)
	e := s.Lookup(b)
	if e == nil || e.Data[0] != 0xCD {
		t.Fatal("Lookup missed resident block")
	}
	if s.Lookup(addr.BlockOf(0x8000)) != nil {
		t.Error("Lookup invented an entry")
	}
}

func TestReencryptionInvalidatesPreparedMeta(t *testing.T) {
	// Drive a sibling block's counter to overflow while an eager entry
	// is resident: the hook must clear its prepared metadata, and the
	// eventual drain must still produce verifiable state.
	cfg := config.Default().WithScheme(config.SchemeNoGap)
	mc, _ := nvm.NewController(cfg, []byte("k"))
	s, err := New(cfg, mc)
	if err != nil {
		t.Fatal(err)
	}
	hot := addr.BlockOf(0x9000)
	resident := addr.BlockOf(0x9040) // same page
	// Overflow needs 256 persists of hot.
	for i := 0; i < 255; i++ {
		if _, err := mc.PersistBlock(hot, &[addr.BlockBytes]byte{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AcceptStore(resident, 0, 8, 0x77, nil); err != nil {
		t.Fatal(err)
	}
	if s.Lookup(resident).Ext.MACValid != true {
		t.Fatal("NoGap entry should have valid MAC")
	}
	// 256th persist triggers page re-encryption -> hook fires.
	if _, err := mc.PersistBlock(hot, &[addr.BlockBytes]byte{}, nil); err != nil {
		t.Fatal(err)
	}
	if s.Invalidations() != 1 {
		t.Fatalf("invalidations = %d, want 1", s.Invalidations())
	}
	if s.Lookup(resident).Ext.CounterValid {
		t.Error("stale prepared counter survived re-encryption")
	}
	// Drain and verify.
	if _, _, err := s.FlushBlock(resident); err != nil {
		t.Fatal(err)
	}
	got, _, err := mc.FetchBlock(resident)
	if err != nil || got[0] != 0x77 {
		t.Errorf("post-reencryption drain broken: %v err=%v", got[0], err)
	}
}

func TestBBBSchemeSkipsAllMetadata(t *testing.T) {
	s, mc := newSecPB(t, config.SchemeBBB)
	b := addr.BlockOf(0xA000)
	cost, err := s.AcceptStore(b, 0, 8, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cost.CounterStep || cost.OTPGenerated || cost.BMTLevels > 0 || cost.CipherXOR || cost.MACGenerated {
		t.Errorf("BBB performed security work: %+v", cost)
	}
	if _, _, err := s.DrainOne(); err != nil {
		t.Fatal(err)
	}
	if d, _ := mc.PM().Peek(b); d[0] != 5 {
		t.Error("BBB drain did not store plaintext")
	}
}

func TestNWPEAccounting(t *testing.T) {
	s, _ := newSecPB(t, config.SchemeCOBCM)
	b := addr.BlockOf(0xB000)
	for i := 0; i < 4; i++ {
		s.AcceptStore(b, i*8, 8, 1, nil)
	}
	s.AcceptStore(addr.BlockOf(0xB040), 0, 8, 1, nil)
	s.DrainOne()
	s.DrainOne()
	if got := s.NWPE(); got != 2.5 {
		t.Errorf("NWPE = %v, want 2.5 ((4+1)/2)", got)
	}
	stores, allocs := s.Stats()
	if stores != 5 || allocs != 2 {
		t.Errorf("stats = %d/%d", stores, allocs)
	}
}
