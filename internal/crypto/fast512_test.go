package crypto

import (
	"fmt"
	"testing"

	"secpb/internal/xrand"
)

// TestFastPathActive pins the stdlib midstate machinery: if crypto/sha512
// ever stops supporting state capture the engine would silently fall back
// to the reference path, and this test makes that visible.
func TestFastPathActive(t *testing.T) {
	e, err := NewEngine([]byte("fast-path-probe"))
	if err != nil {
		t.Fatal(err)
	}
	if !e.fastOK {
		t.Fatal("stdlib midstate fast path unavailable; engine running on reference path")
	}
}

func TestMACMatchesReference(t *testing.T) {
	e, err := NewEngine([]byte("mac differential"))
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(11)
	for trial := 0; trial < 500; trial++ {
		var ct [CacheLineSize]byte
		for i := range ct {
			ct[i] = byte(r.Uint64())
		}
		addr := r.Uint64()
		ctr := r.Uint64()
		if fast, ref := e.MAC(&ct, addr, ctr), e.MACReference(&ct, addr, ctr); fast != ref {
			t.Fatalf("trial %d: fast MAC %x != reference %x", trial, fast[:8], ref[:8])
		}
	}
}

func TestHashNodeMatchesReference(t *testing.T) {
	e, err := NewEngine([]byte("node differential"))
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(13)
	// Sweep every length across the one-block/streaming boundary
	// (maxOneBlockTail = 111) and beyond a full second block.
	for n := 0; n <= 3*BlockBytes; n++ {
		children := make([]byte, n)
		for i := range children {
			children[i] = byte(r.Uint64())
		}
		if fast, ref := e.HashNode(children), e.HashNodeReference(children); fast != ref {
			t.Fatalf("length %d: fast HashNode != reference", n)
		}
	}
}

func TestMACConstructionIsKeyedMidstate(t *testing.T) {
	// The MAC must equal SHA-512(keyBlock || addr || ctr || ct) computed
	// from scratch — i.e. the midstate is an optimization, not a
	// construction change relative to the documented layout.
	e, err := NewEngine([]byte("construction check"))
	if err != nil {
		t.Fatal(err)
	}
	var ct [CacheLineSize]byte
	copy(ct[:], "construction check ciphertext")
	tag := e.MAC(&ct, 0x1234, 99)
	block := keyBlock(&e.macKey)
	msg := make([]byte, 0, BlockBytes+16+CacheLineSize)
	msg = append(msg, block[:]...)
	msg = append(msg, 0x34, 0x12, 0, 0, 0, 0, 0, 0) // addr LE
	msg = append(msg, 99, 0, 0, 0, 0, 0, 0, 0)      // ctr LE
	msg = append(msg, ct[:]...)
	if want := Sum512(msg); tag != want {
		t.Fatal("MAC does not equal the from-scratch keyed digest")
	}
}

func TestDeriveCacheSingleEviction(t *testing.T) {
	deriveMu.Lock()
	saved := deriveCache
	deriveCache = map[string]derived{}
	deriveMu.Unlock()
	defer func() {
		deriveMu.Lock()
		deriveCache = saved
		deriveMu.Unlock()
	}()

	size := func() int {
		deriveMu.RLock()
		defer deriveMu.RUnlock()
		return len(deriveCache)
	}
	for i := 0; i < deriveCacheMax; i++ {
		if _, err := NewEngine(fmt.Appendf(nil, "churn-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := size(); n != deriveCacheMax {
		t.Fatalf("cache holds %d entries, want %d", n, deriveCacheMax)
	}
	// The key past the bound must evict exactly one entry, not flush the
	// whole cache (the old behavior dropped every hot key mid-sweep).
	if _, err := NewEngine([]byte("one-past-the-bound")); err != nil {
		t.Fatal(err)
	}
	if n := size(); n != deriveCacheMax {
		t.Fatalf("cache holds %d entries after overflow, want %d (single eviction)", n, deriveCacheMax)
	}
	deriveMu.RLock()
	_, ok := deriveCache["one-past-the-bound"]
	deriveMu.RUnlock()
	if !ok {
		t.Error("newly derived key not cached after eviction")
	}
}

// FuzzMACFastVsReference differentially fuzzes the keyed-midstate MAC
// against the hand-rolled reference over arbitrary inputs.
func FuzzMACFastVsReference(f *testing.F) {
	f.Add([]byte("seed"), uint64(0x40), uint64(1))
	f.Add([]byte{}, uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, addr, ctr uint64) {
		e, err := NewEngine([]byte("fuzz mac key"))
		if err != nil {
			t.Fatal(err)
		}
		var ct [CacheLineSize]byte
		copy(ct[:], data)
		if fast, ref := e.MAC(&ct, addr, ctr), e.MACReference(&ct, addr, ctr); fast != ref {
			t.Fatalf("fast MAC != reference for addr %#x ctr %d", addr, ctr)
		}
	})
}

// FuzzHashNodeFastVsReference differentially fuzzes the fast SHA-512
// node hash (single-compression and streaming paths, split incrementally
// on the reference side) against the hand-rolled implementation at
// arbitrary lengths.
func FuzzHashNodeFastVsReference(f *testing.F) {
	f.Add([]byte("abc"), 1)
	f.Add(make([]byte, maxOneBlockTail), 0)
	f.Add(make([]byte, maxOneBlockTail+1), 50)
	f.Add(make([]byte, 4*BlockBytes), 200)
	f.Fuzz(func(t *testing.T, children []byte, split int) {
		e, err := NewEngine([]byte("fuzz node key"))
		if err != nil {
			t.Fatal(err)
		}
		fast := e.HashNode(children)
		if ref := e.HashNodeReference(children); fast != ref {
			t.Fatalf("fast HashNode != reference for %d bytes", len(children))
		}
		// Reference recomputed with an incremental split must agree too
		// (exercises the hand-rolled buffering that SumInto finalizes).
		if split < 0 {
			split = -split
		}
		if len(children) > 0 {
			split %= len(children) + 1
		} else {
			split = 0
		}
		block := keyBlock(&e.macKey, 0xB7)
		s := NewSHA512()
		s.Write(block[:])
		s.Write(children[:split])
		s.Write(children[split:])
		var inc [Size512]byte
		s.SumInto(&inc)
		if fast != inc {
			t.Fatalf("fast HashNode != incremental reference at split %d", split)
		}
	})
}

// FuzzOTPFastVsReference differentially fuzzes the stdlib-AES pad
// generator against the hand-rolled T-table reference over arbitrary
// (key, address, counter) triples: both compute the same AES-128, so
// every pad must match bit for bit.
func FuzzOTPFastVsReference(f *testing.F) {
	f.Add([]byte("seed"), uint64(0x1000_0000), uint64(1))
	f.Add([]byte{}, uint64(0), uint64(0))
	f.Add([]byte("secpb-experiment-key"), uint64(1)<<47, ^uint64(0))
	f.Fuzz(func(t *testing.T, key []byte, addr, ctr uint64) {
		e, err := NewEngine(key)
		if err != nil {
			t.Fatal(err)
		}
		if e.fastAES == nil {
			t.Skip("stdlib AES unavailable")
		}
		if fast, ref := e.OTP(addr, ctr), e.OTPReference(addr, ctr); fast != ref {
			t.Fatalf("fast OTP != reference for addr %#x ctr %d", addr, ctr)
		}
	})
}
