package crypto

import (
	"bytes"
	stdaes "crypto/aes"
	stdsha "crypto/sha512"
	"encoding/hex"
	"testing"
	"testing/quick"

	"secpb/internal/xrand"
)

// FIPS-197 Appendix C known-answer vectors.
func TestAESFIPS197Vectors(t *testing.T) {
	plain, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	cases := []struct {
		key, want string
	}{
		{"000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "8ea2b7ca516745bfeafc49904b496089"},
	}
	for _, tc := range cases {
		key, _ := hex.DecodeString(tc.key)
		want, _ := hex.DecodeString(tc.want)
		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		c.Encrypt(got, plain)
		if !bytes.Equal(got, want) {
			t.Errorf("AES-%d encrypt = %x, want %x", len(key)*8, got, want)
		}
		dec := make([]byte, 16)
		c.Decrypt(dec, got)
		if !bytes.Equal(dec, plain) {
			t.Errorf("AES-%d decrypt = %x, want %x", len(key)*8, dec, plain)
		}
	}
}

func TestAESMatchesStdlib(t *testing.T) {
	r := xrand.New(1)
	for trial := 0; trial < 200; trial++ {
		keyLen := []int{16, 24, 32}[trial%3]
		key := make([]byte, keyLen)
		src := make([]byte, 16)
		for i := range key {
			key[i] = byte(r.Uint64())
		}
		for i := range src {
			src[i] = byte(r.Uint64())
		}
		ours, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdaes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		want := make([]byte, 16)
		ours.Encrypt(got, src)
		ref.Encrypt(want, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: AES-%d mismatch vs stdlib", trial, keyLen*8)
		}
	}
}

// TestAESTableMatchesGeneric cross-checks the T-table encrypt fast path
// against the independent matrix implementation for all key sizes.
func TestAESTableMatchesGeneric(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 300; trial++ {
		keyLen := []int{16, 24, 32}[trial%3]
		key := make([]byte, keyLen)
		src := make([]byte, 16)
		for i := range key {
			key[i] = byte(r.Uint64())
		}
		for i := range src {
			src[i] = byte(r.Uint64())
		}
		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		fast := make([]byte, 16)
		ref := make([]byte, 16)
		c.Encrypt(fast, src)
		c.encryptGeneric(ref, src)
		if !bytes.Equal(fast, ref) {
			t.Fatalf("trial %d: AES-%d table path %x != generic %x", trial, keyLen*8, fast, ref)
		}
	}
}

func TestAESDecryptInverts(t *testing.T) {
	check := func(key [16]byte, block [16]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		ct := make([]byte, 16)
		pt := make([]byte, 16)
		c.Encrypt(ct, block[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAESKeySizeErrors(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 33} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("NewCipher accepted %d-byte key", n)
		}
	}
}

func TestAESShortBlockPanics(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("short block did not panic")
		}
	}()
	c.Encrypt(make([]byte, 16), make([]byte, 15))
}

func TestSHA512KnownVectors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"},
		{"abc", "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"},
		{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
			"8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"},
	}
	for _, tc := range cases {
		got := Sum512([]byte(tc.in))
		if hex.EncodeToString(got[:]) != tc.want {
			t.Errorf("SHA512(%q) = %x", tc.in, got)
		}
	}
}

func TestSHA512MatchesStdlibAllLengths(t *testing.T) {
	r := xrand.New(2)
	for n := 0; n < 300; n++ {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(r.Uint64())
		}
		got := Sum512(msg)
		want := stdsha.Sum512(msg)
		if got != want {
			t.Fatalf("length %d: digest mismatch vs stdlib", n)
		}
	}
}

func TestSHA512IncrementalWrite(t *testing.T) {
	msg := bytes.Repeat([]byte("secpb"), 100)
	whole := Sum512(msg)
	s := NewSHA512()
	for i := 0; i < len(msg); i += 7 {
		end := i + 7
		if end > len(msg) {
			end = len(msg)
		}
		s.Write(msg[i:end])
	}
	var got [Size512]byte
	copy(got[:], s.Sum(nil))
	if got != whole {
		t.Error("incremental digest differs from one-shot digest")
	}
}

func TestSHA512SumNonDestructive(t *testing.T) {
	s := NewSHA512()
	s.Write([]byte("hello "))
	first := s.Sum(nil)
	second := s.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatal("Sum modified state")
	}
	s.Write([]byte("world"))
	full := s.Sum(nil)
	want := stdsha.Sum512([]byte("hello world"))
	if !bytes.Equal(full, want[:]) {
		t.Error("continued write after Sum produced wrong digest")
	}
}

func TestSHA512Reset(t *testing.T) {
	s := NewSHA512()
	s.Write([]byte("garbage"))
	s.Reset()
	s.Write([]byte("abc"))
	got := s.Sum(nil)
	want := stdsha.Sum512([]byte("abc"))
	if !bytes.Equal(got, want[:]) {
		t.Error("Reset did not restore initial state")
	}
}

func TestEngineEncryptDecryptRoundTrip(t *testing.T) {
	e, err := NewEngine([]byte("test key"))
	if err != nil {
		t.Fatal(err)
	}
	check := func(data [CacheLineSize]byte, addr, ctr uint64) bool {
		ct := e.Encrypt(&data, addr, ctr)
		pt := e.Decrypt(&ct, addr, ctr)
		return pt == data
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEngineOTPDataIndependent(t *testing.T) {
	e, _ := NewEngine([]byte("k"))
	p1 := e.OTP(0x1000, 5)
	p2 := e.OTP(0x1000, 5)
	if p1 != p2 {
		t.Error("OTP not deterministic for same (addr, counter)")
	}
	if e.OTP(0x1000, 6) == p1 {
		t.Error("OTP unchanged when counter changed")
	}
	if e.OTP(0x1040, 5) == p1 {
		t.Error("OTP unchanged when address changed")
	}
}

func TestEngineCiphertextChangesWithCounter(t *testing.T) {
	// Counter freshness: re-encrypting the same plaintext with a bumped
	// counter must produce different ciphertext (defeats snooping of
	// repeated writes).
	e, _ := NewEngine([]byte("k"))
	var data [CacheLineSize]byte
	copy(data[:], "same plaintext")
	c1 := e.Encrypt(&data, 0x40, 1)
	c2 := e.Encrypt(&data, 0x40, 2)
	if c1 == c2 {
		t.Error("ciphertext identical across counter bump")
	}
}

func TestEngineMACDetectsTampering(t *testing.T) {
	e, _ := NewEngine([]byte("k"))
	var ct [CacheLineSize]byte
	copy(ct[:], "ciphertext block")
	tag := e.MAC(&ct, 0x80, 7)
	// Same inputs verify.
	if e.MAC(&ct, 0x80, 7) != tag {
		t.Fatal("MAC not deterministic")
	}
	// Spoofing: data modified.
	mod := ct
	mod[3] ^= 1
	if e.MAC(&mod, 0x80, 7) == tag {
		t.Error("MAC unchanged after data tamper")
	}
	// Splicing: moved to another address.
	if e.MAC(&ct, 0xC0, 7) == tag {
		t.Error("MAC unchanged after address splice")
	}
	// Replay: older counter.
	if e.MAC(&ct, 0x80, 6) == tag {
		t.Error("MAC unchanged after counter rollback")
	}
}

func TestEngineKeySeparation(t *testing.T) {
	e1, _ := NewEngine([]byte("key-one"))
	e2, _ := NewEngine([]byte("key-two"))
	var data [CacheLineSize]byte
	if e1.Encrypt(&data, 0, 0) == e2.Encrypt(&data, 0, 0) {
		t.Error("different engine keys produced same ciphertext")
	}
}

func TestHashNodeDomainSeparation(t *testing.T) {
	e, _ := NewEngine([]byte("k"))
	var blk [CacheLineSize]byte
	mac := e.MAC(&blk, 0, 0)
	node := e.HashNode(make([]byte, CacheLineSize))
	if bytes.Equal(mac[:], node[:MACSize]) {
		t.Error("MAC and HashNode collide on same-length input")
	}
	n2 := e.HashNode([]byte{1, 2, 3})
	if node == n2 {
		t.Error("HashNode ignores input")
	}
}

func BenchmarkAESEncryptBlock(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	src := make([]byte, 16)
	dst := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(dst, src)
	}
}

func BenchmarkSHA512Block(b *testing.B) {
	msg := make([]byte, 128)
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		Sum512(msg)
	}
}

func BenchmarkEngineEncryptLine(b *testing.B) {
	e, _ := NewEngine([]byte("k"))
	var data [CacheLineSize]byte
	b.SetBytes(CacheLineSize)
	for i := 0; i < b.N; i++ {
		_ = e.Encrypt(&data, uint64(i)<<6, uint64(i))
	}
}

func BenchmarkEngineMAC(b *testing.B) {
	e, _ := NewEngine([]byte("k"))
	var ct [CacheLineSize]byte
	b.SetBytes(CacheLineSize)
	for i := 0; i < b.N; i++ {
		_ = e.MAC(&ct, uint64(i)<<6, uint64(i))
	}
}

func TestPadReuseLeaksXOR(t *testing.T) {
	// WHY counter freshness is non-negotiable: encrypting two different
	// plaintexts under the same (address, counter) pad lets a snooping
	// attacker compute pt1 XOR pt2 without any key material. This is
	// the leak the split counters (and their crash consistency!)
	// prevent — and exactly what goes wrong if a crash rolls a counter
	// back while new data persisted (the recoverability gap).
	e, _ := NewEngine([]byte("k"))
	var pt1, pt2 [CacheLineSize]byte
	copy(pt1[:], "attack at dawn----------------")
	copy(pt2[:], "attack at dusk----------------")
	ct1 := e.Encrypt(&pt1, 0x1000, 5)
	ct2 := e.Encrypt(&pt2, 0x1000, 5) // same counter: pad reuse!
	var leaked, truth [CacheLineSize]byte
	XOR(&leaked, &ct1, &ct2)
	XOR(&truth, &pt1, &pt2)
	if leaked != truth {
		t.Fatal("pad reuse did not leak the plaintext XOR (model broken)")
	}
	// With a fresh counter the relationship disappears.
	ct2fresh := e.Encrypt(&pt2, 0x1000, 6)
	XOR(&leaked, &ct1, &ct2fresh)
	if leaked == truth {
		t.Fatal("fresh counter still leaks plaintext XOR")
	}
}
