package crypto

import (
	"bytes"
	stdsha "crypto/sha512"
	"testing"
)

// FuzzSHA512 compares our implementation against the standard library
// on arbitrary inputs and split points.
func FuzzSHA512(f *testing.F) {
	f.Add([]byte("abc"), 1)
	f.Add([]byte{}, 0)
	f.Add(bytes.Repeat([]byte{0x61}, 200), 111)
	f.Fuzz(func(t *testing.T, data []byte, split int) {
		got := Sum512(data)
		want := stdsha.Sum512(data)
		if got != want {
			t.Fatalf("digest mismatch for %d bytes", len(data))
		}
		// Incremental with an arbitrary split.
		if split < 0 {
			split = -split
		}
		if len(data) > 0 {
			split %= len(data) + 1
		} else {
			split = 0
		}
		s := NewSHA512()
		s.Write(data[:split])
		s.Write(data[split:])
		var inc [Size512]byte
		copy(inc[:], s.Sum(nil))
		if inc != want {
			t.Fatalf("incremental digest mismatch at split %d", split)
		}
	})
}

// FuzzAESRoundTrip checks Encrypt∘Decrypt = identity for arbitrary keys
// and blocks at all three key sizes.
func FuzzAESRoundTrip(f *testing.F) {
	f.Add(make([]byte, 32), make([]byte, 16))
	f.Fuzz(func(t *testing.T, keyMaterial, block []byte) {
		if len(keyMaterial) < 16 || len(block) < 16 {
			return
		}
		for _, n := range []int{16, 24, 32} {
			if len(keyMaterial) < n {
				continue
			}
			c, err := NewCipher(keyMaterial[:n])
			if err != nil {
				t.Fatal(err)
			}
			ct := make([]byte, 16)
			pt := make([]byte, 16)
			c.Encrypt(ct, block[:16])
			c.Decrypt(pt, ct)
			if !bytes.Equal(pt, block[:16]) {
				t.Fatalf("AES-%d round trip failed", n*8)
			}
		}
	})
}
