package crypto

import (
	"fmt"
	"testing"
)

// BenchmarkMACBatch measures MACBatch throughput per 8-tag batch at
// every lane policy: auto (scalar stdlib where available), pinned
// scalar, and the pure-Go interleaved widths. On targets with SHA-512
// assembly the scalar path wins — that asymmetry is why auto prefers
// it — while the lane widths show what the multi-buffer path delivers
// when state capture (and the assembly) is unavailable.
func BenchmarkMACBatch(b *testing.B) {
	e, err := NewEngine([]byte("bench-key"))
	if err != nil {
		b.Fatal(err)
	}
	reqs, _ := makeBatch(8, nil)
	for _, cfg := range []struct {
		name  string
		width int
	}{
		{"auto", 0}, {"scalar", 1}, {"lanes2", 2}, {"lanes4", 4},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			e.SetLanes(cfg.width)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := range reqs {
					reqs[j].Ctr = uint64(i)
				}
				e.MACBatch(reqs)
			}
		})
	}
	e.SetLanes(0)
}

// BenchmarkLaneCompression isolates the raw compression-function cost
// of 4 one-block digests: the scalar stdlib fast path, the interleaved
// lanes, and the non-interleaved pure-Go scalar loop.
func BenchmarkLaneCompression(b *testing.B) {
	e, err := NewEngine([]byte("bench-key"))
	if err != nil {
		b.Fatal(err)
	}
	var ct [CacheLineSize]byte
	b.Run("scalar4", func(b *testing.B) {
		var tag [MACSize]byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 4; j++ {
				e.MACInto(&tag, &ct, uint64(i)<<6, uint64(j))
			}
		}
	})
	for _, width := range []int{2, 4} {
		b.Run(fmt.Sprintf("lanes%d", width), func(b *testing.B) {
			mid := midwords(&[BlockBytes]byte{})
			var p [4][BlockBytes]byte
			var h [4][8]uint64
			var tail [16 + CacheLineSize]byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for g := 0; g < 4; g += width {
					for j := 0; j < width; j++ {
						h[j] = mid
						laneBlock(&p[j], tail[:])
					}
					if width == 2 {
						sha512Block2(&h[0], &h[1], &p[0], &p[1])
					} else {
						sha512Block4(&h[0], &h[1], &h[2], &h[3], &p[0], &p[1], &p[2], &p[3])
					}
				}
			}
		})
	}
	b.Run("purego1x4", func(b *testing.B) {
		mid := midwords(&[BlockBytes]byte{})
		var p0 [BlockBytes]byte
		var tail [16 + CacheLineSize]byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 4; j++ {
				h0 := mid
				laneBlock(&p0, tail[:])
				sha512Blocks(&h0, p0[:])
			}
		}
	})
}
