package crypto

import (
	"encoding/binary"
	"testing"
)

// makeBatch builds n deterministic MAC requests with distinct tags,
// ciphertexts, addresses, and counters seeded from a fuzz-controlled
// byte string.
func makeBatch(n int, seed []byte) ([]MACRequest, []*[MACSize]byte) {
	reqs := make([]MACRequest, n)
	tags := make([]*[MACSize]byte, n)
	for i := range reqs {
		ct := new([CacheLineSize]byte)
		for j := range ct {
			v := byte(i*CacheLineSize + j)
			if len(seed) > 0 {
				v ^= seed[(i*CacheLineSize+j)%len(seed)]
			}
			ct[j] = v
		}
		tags[i] = new([MACSize]byte)
		var addr, ctr uint64 = uint64(i) << 6, uint64(i) * 3
		if len(seed) >= 16 {
			addr ^= binary.LittleEndian.Uint64(seed[:8])
			ctr ^= binary.LittleEndian.Uint64(seed[8:16])
		}
		reqs[i] = MACRequest{Tag: tags[i], CT: ct, Addr: addr, Ctr: ctr}
	}
	return reqs, tags
}

// TestMACBatchWidthsMatchReference holds every lane width equal to the
// reference MAC over batch sizes that exercise the 4-lane groups, the
// 2-lane groups, and the scalar remainder in all combinations.
func TestMACBatchWidthsMatchReference(t *testing.T) {
	e, err := NewEngine([]byte("lanes test key"))
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{0, 1, 2, 4} {
		for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16} {
			reqs, tags := makeBatch(n, nil)
			e.SetLanes(width)
			e.MACBatch(reqs)
			for i := range reqs {
				want := e.MACReference(reqs[i].CT, reqs[i].Addr, reqs[i].Ctr)
				if *tags[i] != want {
					t.Fatalf("width %d, batch %d: tag %d differs from reference", width, n, i)
				}
			}
		}
	}
}

// TestMACBatchPackageDefault checks SetDefaultLanes steers engines that
// did not pin a width, without touching engines that did.
func TestMACBatchPackageDefault(t *testing.T) {
	e, err := NewEngine([]byte("lanes default key"))
	if err != nil {
		t.Fatal(err)
	}
	defer SetDefaultLanes(0)
	SetDefaultLanes(4)
	if got := e.laneWidth(); got != 4 {
		t.Fatalf("default lanes 4: engine resolved width %d", got)
	}
	e.SetLanes(1)
	if got := e.laneWidth(); got != 1 {
		t.Fatalf("pinned scalar under default 4: engine resolved width %d", got)
	}
	reqs, tags := makeBatch(6, []byte("default-path"))
	e.SetLanes(0)
	e.MACBatch(reqs)
	for i := range reqs {
		want := e.MACReference(reqs[i].CT, reqs[i].Addr, reqs[i].Ctr)
		if *tags[i] != want {
			t.Fatalf("package-default lane path: tag %d differs from reference", i)
		}
	}
}

// TestCloneSharesKeyMaterial checks a clone computes identical digests
// and pads, and that interleaving parent and clone use never corrupts
// either's scratch.
func TestCloneSharesKeyMaterial(t *testing.T) {
	e, err := NewEngine([]byte("clone key"))
	if err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	var ct [CacheLineSize]byte
	copy(ct[:], "interleaved clone use")
	for i := 0; i < 8; i++ {
		addr, ctr := uint64(i)<<6, uint64(i)
		if e.MAC(&ct, addr, ctr) != c.MAC(&ct, addr, ctr) {
			t.Fatalf("clone MAC differs at %d", i)
		}
		if e.OTP(addr, ctr) != c.OTP(addr, ctr) {
			t.Fatalf("clone OTP differs at %d", i)
		}
		if e.HashNode(ct[:]) != c.HashNode(ct[:]) {
			t.Fatalf("clone HashNode differs at %d", i)
		}
	}
	if h, ok := e.CloneHasher().(*Engine); !ok || h == e {
		t.Fatal("CloneHasher must return a fresh *Engine")
	}
}

// FuzzMACLanesVsScalar differentially fuzzes the interleaved lane MACs
// against the scalar fast path and the hand-rolled reference: same
// requests, three implementations, all tags equal.
func FuzzMACLanesVsScalar(f *testing.F) {
	f.Add(4, []byte("seed"))
	f.Add(0, []byte{})
	f.Add(1, []byte{0xff})
	f.Add(2, []byte("two-lane remainder"))
	f.Add(9, []byte("four plus four plus one"))
	f.Add(16, make([]byte, 80))
	f.Fuzz(func(t *testing.T, n int, seed []byte) {
		if n < 0 {
			n = -n
		}
		n %= 32
		e, err := NewEngine([]byte("fuzz lanes key"))
		if err != nil {
			t.Fatal(err)
		}
		for _, width := range []int{1, 2, 4} {
			reqs, tags := makeBatch(n, seed)
			e.SetLanes(width)
			e.MACBatch(reqs)
			for i := range reqs {
				scalar := e.MAC(reqs[i].CT, reqs[i].Addr, reqs[i].Ctr)
				ref := e.MACReference(reqs[i].CT, reqs[i].Addr, reqs[i].Ctr)
				if *tags[i] != scalar || *tags[i] != ref {
					t.Fatalf("width %d, batch %d: lane tag %d diverges (scalar match %v, reference match %v)",
						width, n, i, *tags[i] == scalar, *tags[i] == ref)
				}
			}
		}
	})
}
