// Race-detector instrumentation itself allocates, so these exact-zero
// pins only hold on uninstrumented builds; ci.sh runs them in a
// dedicated non-race pass.
//go:build !race

package crypto

import "testing"

// TestMACIntoZeroAlloc pins the per-block MAC on the drain path to
// zero heap allocations: MACInto writes through caller-owned buffers
// and the engine's preallocated hasher state.
func TestMACIntoZeroAlloc(t *testing.T) {
	e, err := NewEngine([]byte("alloc test key"))
	if err != nil {
		t.Fatal(err)
	}
	var cipher [CacheLineSize]byte
	for i := range cipher {
		cipher[i] = byte(i)
	}
	var mac [MACSize]byte
	ctr := uint64(0)
	if avg := testing.AllocsPerRun(20_000, func() {
		e.MACInto(&mac, &cipher, 0x40*ctr, ctr)
		ctr++
	}); avg != 0 {
		t.Fatalf("MACInto allocates: %g allocs/op", avg)
	}
}
