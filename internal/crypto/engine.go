package crypto

import (
	"encoding/binary"
	"sync"
)

// CacheLineSize is the size of a memory block protected as a unit (64B),
// matching the paper's cache line and SecPB entry data size.
const CacheLineSize = 64

// MACSize is the per-block MAC size in bytes. The paper's SecPB entry
// reserves 512 bits per MAC.
const MACSize = 64

// Engine is the memory controller's cryptographic engine: it derives
// one-time pads from (address, counter) seeds, XORs pads with plaintext
// (counter-mode encryption), and computes block MACs and BMT node hashes.
//
// Counter-mode encryption with address-dependent seeds is the split
// counter scheme of Yan et al. used by the paper: the OTP depends only on
// the data-value-independent (address, counter) pair, never on the data.
type Engine struct {
	aes    *Cipher
	macKey [32]byte
	// scratch is the reusable hash state: the engine models one
	// hardware unit and is not safe for concurrent use.
	scratch *SHA512
}

// derived is the cacheable, immutable part of an engine: the expanded
// AES key schedule and the MAC sub-key. Experiment sweeps build hundreds
// of controllers under the same master key (one per simulated system);
// caching the derivation means the SHA-512 key stretch and the Rijndael
// key expansion run once per distinct key, not once per simulation. The
// *Cipher is shared across engines — it is immutable and safe for
// concurrent use.
type derived struct {
	aes    *Cipher
	macKey [32]byte
}

var (
	deriveMu    sync.RWMutex
	deriveCache = map[string]derived{}
)

// NewEngine returns an engine keyed by the given secret. Different key
// material is derived internally for encryption and authentication.
// Engines sharing a key share the (read-only) key schedule but carry
// private hash scratch state; each engine instance remains single-
// threaded, as before.
func NewEngine(key []byte) (*Engine, error) {
	k := string(key)
	deriveMu.RLock()
	d, ok := deriveCache[k]
	deriveMu.RUnlock()
	if !ok {
		// Derive independent sub-keys via SHA-512 so a single master
		// secret configures the whole engine.
		sum := Sum512(append([]byte("secpb-engine-v1:"), key...))
		aes, err := NewCipher(sum[:16]) // AES-128 pad generator
		if err != nil {
			return nil, err
		}
		d = derived{aes: aes}
		copy(d.macKey[:], sum[16:48])
		deriveMu.Lock()
		if len(deriveCache) >= 1024 { // bound growth under adversarial key churn
			deriveCache = map[string]derived{}
		}
		deriveCache[k] = d
		deriveMu.Unlock()
	}
	return &Engine{aes: d.aes, macKey: d.macKey, scratch: NewSHA512()}, nil
}

// OTP computes the 64-byte one-time pad for a block at the given physical
// block address with the given counter value. The pad is the AES
// encryption of four distinct (addr, counter, lane) seeds.
func (e *Engine) OTP(blockAddr uint64, counter uint64) [CacheLineSize]byte {
	var pad [CacheLineSize]byte
	var seed [BlockSize]byte
	binary.LittleEndian.PutUint64(seed[0:], blockAddr)
	for lane := 0; lane < CacheLineSize/BlockSize; lane++ {
		binary.LittleEndian.PutUint64(seed[8:], counter<<2|uint64(lane))
		e.aes.Encrypt(pad[lane*BlockSize:], seed[:])
	}
	return pad
}

// XOR writes dst = a XOR b for 64-byte blocks. In hardware this is the
// single-cycle ciphertext generation step.
func XOR(dst, a, b *[CacheLineSize]byte) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

// Encrypt returns the ciphertext of a 64-byte plaintext block under the
// (blockAddr, counter) pad.
func (e *Engine) Encrypt(plain *[CacheLineSize]byte, blockAddr, counter uint64) [CacheLineSize]byte {
	pad := e.OTP(blockAddr, counter)
	var ct [CacheLineSize]byte
	XOR(&ct, plain, &pad)
	return ct
}

// Decrypt returns the plaintext of a 64-byte ciphertext block under the
// (blockAddr, counter) pad. Counter mode is symmetric, so this is the
// same operation as Encrypt.
func (e *Engine) Decrypt(cipher *[CacheLineSize]byte, blockAddr, counter uint64) [CacheLineSize]byte {
	return e.Encrypt(cipher, blockAddr, counter)
}

// MAC computes the 64-byte authentication tag over (ciphertext, address,
// counter). Binding the address defeats splicing and the counter defeats
// (counter-aware) replay; freshness of the counter itself is guaranteed
// by the BMT.
func (e *Engine) MAC(cipher *[CacheLineSize]byte, blockAddr, counter uint64) [MACSize]byte {
	s := e.scratch
	s.Reset()
	s.Write(e.macKey[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], blockAddr)
	binary.LittleEndian.PutUint64(hdr[8:], counter)
	s.Write(hdr[:])
	s.Write(cipher[:])
	var tag [MACSize]byte
	s.Sum(tag[:0])
	return tag
}

// HashNode computes a keyed BMT node hash over arbitrary child material.
func (e *Engine) HashNode(children []byte) [Size512]byte {
	s := e.scratch
	s.Reset()
	s.Write(e.macKey[:])
	s.Write([]byte{0xB7}) // domain separation from MAC
	s.Write(children)
	var out [Size512]byte
	s.Sum(out[:0])
	return out
}
