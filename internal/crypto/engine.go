package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// CacheLineSize is the size of a memory block protected as a unit (64B),
// matching the paper's cache line and SecPB entry data size.
const CacheLineSize = 64

// MACSize is the per-block MAC size in bytes. The paper's SecPB entry
// reserves 512 bits per MAC.
const MACSize = 64

// Engine is the memory controller's cryptographic engine: it derives
// one-time pads from (address, counter) seeds, XORs pads with plaintext
// (counter-mode encryption), and computes block MACs and BMT node hashes.
//
// Counter-mode encryption with address-dependent seeds is the split
// counter scheme of Yan et al. used by the paper: the OTP depends only on
// the data-value-independent (address, counter) pair, never on the data.
//
// MAC and HashNode are keyed-midstate constructions over a full 128-byte
// key block (see fast512.go): the hot path restores a cached midstate and
// compresses a single final block via stdlib crypto/sha512, while
// MACReference / HashNodeReference recompute the same digests on the
// hand-rolled SHA512 for differential testing.
type Engine struct {
	aes *Cipher
	// fastAES is the stdlib AES cipher for the same sub-key: on amd64 it
	// compiles to AES-NI instructions, so the pad-generation hot path
	// costs a few cycles per block instead of a T-table round loop. The
	// hand-rolled Cipher remains the differential-test reference
	// (OTPReference, FuzzOTPFastVsReference).
	fastAES cipher.Block
	macKey  [32]byte
	// fast is the per-engine stdlib digest (plus scratch) the midstates
	// are restored into; macMid/nodeMid are the shared, immutable
	// key-block midstates. The engine models one hardware unit and is
	// not safe for concurrent use.
	fast    *fastHasher
	macMid  []byte
	nodeMid []byte
	fastOK  bool
	// macMidW/nodeMidW are the same key-block midstates in raw hash-word
	// form, the representation the interleaved lane path (lanes.go)
	// resumes from. Always derivable (the lane compression is pure Go),
	// so the lane path works even when stdlib state capture does not.
	macMidW  [8]uint64
	nodeMidW [8]uint64
	// lanes pins this engine's multi-buffer width: 0 defers to the
	// package default (see SetDefaultLanes), 1 forces the scalar path,
	// 2/4 force that interleave width.
	lanes int
	// otpSeed/otpPad are per-engine scratch for pad generation. Stack
	// arrays sliced into the cipher.Block interface call escape to the
	// heap; routing them through these fields keeps OTPInto (and the
	// Encrypt/Decrypt convenience wrappers) allocation-free. The engine
	// models one hardware unit and is not concurrency-safe.
	otpSeed [BlockSize]byte
	otpPad  [CacheLineSize]byte
}

// derived is the cacheable, immutable part of an engine: the expanded
// AES key schedule, the MAC sub-key, and the key-block midstates for the
// fast hash path. Experiment sweeps build hundreds of controllers under
// the same master key (one per simulated system); caching the derivation
// means the SHA-512 key stretch, the Rijndael key expansion, and the two
// midstate captures run once per distinct key, not once per simulation.
// The *Cipher and midstate slices are shared across engines — they are
// immutable and safe for concurrent use.
type derived struct {
	aes      *Cipher
	fastAES  cipher.Block
	macKey   [32]byte
	macMid   []byte
	nodeMid  []byte
	fastOK   bool
	macMidW  [8]uint64
	nodeMidW [8]uint64
}

// deriveCacheMax bounds deriveCache growth under adversarial key churn.
const deriveCacheMax = 1024

var (
	deriveMu    sync.RWMutex
	deriveCache = map[string]derived{}
)

// NewEngine returns an engine keyed by the given secret. Different key
// material is derived internally for encryption and authentication.
// Engines sharing a key share the (read-only) key schedule and hash
// midstates but carry private hash scratch state; each engine instance
// remains single-threaded, as before.
func NewEngine(key []byte) (*Engine, error) {
	k := string(key)
	deriveMu.RLock()
	d, ok := deriveCache[k]
	deriveMu.RUnlock()
	if !ok {
		// Derive independent sub-keys via SHA-512 so a single master
		// secret configures the whole engine.
		sum := Sum512(append([]byte("secpb-engine-v1:"), key...))
		aesRef, err := NewCipher(sum[:16]) // AES-128 pad generator
		if err != nil {
			return nil, err
		}
		d = derived{aes: aesRef}
		// The stdlib cipher is pure acceleration: same AES-128 under the
		// same sub-key, hardware instructions where available. A nil
		// fastAES (cannot happen for a valid 16-byte key) would simply
		// leave the reference path in use.
		if std, err := aes.NewCipher(sum[:16]); err == nil {
			d.fastAES = std
		}
		copy(d.macKey[:], sum[16:48])
		macBlock := keyBlock(&d.macKey)
		nodeBlock := keyBlock(&d.macKey, 0xB7) // domain separation from MAC
		macMid, okMAC := midstate(&macBlock)
		nodeMid, okNode := midstate(&nodeBlock)
		d.fastOK = okMAC && okNode
		if d.fastOK {
			d.macMid, d.nodeMid = macMid, nodeMid
		}
		d.macMidW = midwords(&macBlock)
		d.nodeMidW = midwords(&nodeBlock)
		deriveMu.Lock()
		if len(deriveCache) >= deriveCacheMax {
			// Evict one random entry (map iteration order is
			// randomized) instead of flushing the whole cache: a full
			// flush evicted every hot key mid-sweep and forced all
			// concurrent simulations to re-derive at once.
			for old := range deriveCache {
				delete(deriveCache, old)
				break
			}
		}
		deriveCache[k] = d
		deriveMu.Unlock()
	}
	e := &Engine{aes: d.aes, fastAES: d.fastAES, macKey: d.macKey,
		macMidW: d.macMidW, nodeMidW: d.nodeMidW}
	if d.fastOK {
		if fast, ok := newFastHasher(); ok {
			e.fast = fast
			e.macMid = d.macMid
			e.nodeMid = d.nodeMid
			e.fastOK = true
		}
	}
	return e, nil
}

// Clone returns a new engine over the same key material with private
// scratch state. The shared fields (key schedules, midstates) are
// immutable, so a clone may run concurrently with its parent; each
// engine instance individually remains single-threaded. Parallel drain
// and sweep workers clone the controller's engine once per worker.
func (e *Engine) Clone() *Engine {
	c := &Engine{
		aes: e.aes, fastAES: e.fastAES, macKey: e.macKey,
		macMid: e.macMid, nodeMid: e.nodeMid,
		macMidW: e.macMidW, nodeMidW: e.nodeMidW,
		lanes: e.lanes,
	}
	if e.fastOK {
		if fast, ok := newFastHasher(); ok {
			c.fast = fast
			c.fastOK = true
		}
	}
	return c
}

// CloneHasher returns Clone as an untyped value. Packages that only
// consume the hashing side of the engine (the BMT) discover it through
// an interface assertion, avoiding an import cycle.
func (e *Engine) CloneHasher() any { return e.Clone() }

// defaultLanes is the package-wide multi-buffer width policy, settable
// by tooling (the secpb-bench -lanes flag): 0 auto, 1 scalar, 2/4 the
// pinned interleave width.
var defaultLanes atomic.Int32

// SetDefaultLanes sets the package-default multi-buffer MAC width for
// engines that do not pin their own: 0 restores the automatic choice,
// 1 forces the scalar path, 2 or 4 force that interleave width.
func SetDefaultLanes(n int) { defaultLanes.Store(int32(n)) }

// DefaultLanes returns the package-default multi-buffer width.
func DefaultLanes() int { return int(defaultLanes.Load()) }

// SetLanes pins this engine's multi-buffer width, overriding the
// package default (same encoding as SetDefaultLanes).
func (e *Engine) SetLanes(n int) { e.lanes = n }

// laneWidth resolves the effective multi-buffer width. Auto prefers the
// scalar stdlib path whenever its one-block midstate capture works: on
// the big targets that path is assembly, and one hand-scheduled
// compression beats the pure-Go lanes' per-digest cost even with the
// lanes' instruction-level overlap. The lanes win when state capture is
// unavailable and the alternative is the reference hasher re-absorbing
// the key block on every digest.
func (e *Engine) laneWidth() int {
	n := e.lanes
	if n == 0 {
		n = DefaultLanes()
	}
	switch {
	case n >= lanes4:
		return lanes4
	case n >= lanes2:
		return lanes2
	case n == 1:
		return 1
	}
	if e.fastOK {
		return 1
	}
	return lanes4
}

// OTP computes the 64-byte one-time pad for a block at the given physical
// block address with the given counter value. The pad is the AES
// encryption of four distinct (addr, counter, lane) seeds. The stdlib
// cipher (AES-NI on amd64) computes it when available; OTPReference is
// the hand-rolled oracle the differential fuzzer holds it against.
func (e *Engine) OTP(blockAddr uint64, counter uint64) [CacheLineSize]byte {
	var pad [CacheLineSize]byte
	e.OTPInto(&pad, blockAddr, counter)
	return pad
}

// OTPInto writes the pad for (blockAddr, counter) directly into dst —
// the hot-path form that spares the 64-byte return and reassignment
// copies when the pad's destination (a persist-buffer entry field)
// already exists.
func (e *Engine) OTPInto(dst *[CacheLineSize]byte, blockAddr uint64, counter uint64) {
	if e.fastAES == nil {
		*dst = e.OTPReference(blockAddr, counter)
		return
	}
	binary.LittleEndian.PutUint64(e.otpSeed[0:], blockAddr)
	for lane := 0; lane < CacheLineSize/BlockSize; lane++ {
		binary.LittleEndian.PutUint64(e.otpSeed[8:], counter<<2|uint64(lane))
		e.fastAES.Encrypt(dst[lane*BlockSize:], e.otpSeed[:])
	}
}

// OTPReference computes the same pad on the from-scratch T-table AES —
// the differential-test oracle for the fast path.
func (e *Engine) OTPReference(blockAddr uint64, counter uint64) [CacheLineSize]byte {
	var pad [CacheLineSize]byte
	var seed [BlockSize]byte
	binary.LittleEndian.PutUint64(seed[0:], blockAddr)
	for lane := 0; lane < CacheLineSize/BlockSize; lane++ {
		binary.LittleEndian.PutUint64(seed[8:], counter<<2|uint64(lane))
		e.aes.Encrypt(pad[lane*BlockSize:], seed[:])
	}
	return pad
}

// XOR writes dst = a XOR b for 64-byte blocks. In hardware this is the
// single-cycle ciphertext generation step.
func XOR(dst, a, b *[CacheLineSize]byte) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

// Encrypt returns the ciphertext of a 64-byte plaintext block under the
// (blockAddr, counter) pad.
func (e *Engine) Encrypt(plain *[CacheLineSize]byte, blockAddr, counter uint64) [CacheLineSize]byte {
	e.OTPInto(&e.otpPad, blockAddr, counter)
	var ct [CacheLineSize]byte
	XOR(&ct, plain, &e.otpPad)
	return ct
}

// Decrypt returns the plaintext of a 64-byte ciphertext block under the
// (blockAddr, counter) pad. Counter mode is symmetric, so this is the
// same operation as Encrypt.
func (e *Engine) Decrypt(cipher *[CacheLineSize]byte, blockAddr, counter uint64) [CacheLineSize]byte {
	return e.Encrypt(cipher, blockAddr, counter)
}

// MAC computes the 64-byte authentication tag over (ciphertext, address,
// counter). Binding the address defeats splicing and the counter defeats
// (counter-aware) replay; freshness of the counter itself is guaranteed
// by the BMT.
//
// The 80-byte (header || ciphertext) tail always fits the single-block
// fast path, so a MAC costs one SHA-512 compression from the cached key
// midstate.
func (e *Engine) MAC(cipher *[CacheLineSize]byte, blockAddr, counter uint64) [MACSize]byte {
	var tag [MACSize]byte
	e.MACInto(&tag, cipher, blockAddr, counter)
	return tag
}

// MACInto writes the tag directly into dst — the hot-path form for
// callers whose tag destination already exists (per-store early MAC
// regeneration writes straight into the entry's M field).
func (e *Engine) MACInto(dst *[MACSize]byte, cipher *[CacheLineSize]byte, blockAddr, counter uint64) {
	if e.fastOK {
		var tail [16 + CacheLineSize]byte
		binary.LittleEndian.PutUint64(tail[0:], blockAddr)
		binary.LittleEndian.PutUint64(tail[8:], counter)
		copy(tail[16:], cipher[:])
		if e.fast.oneBlock(e.macMid, tail[:], dst) {
			return
		}
	}
	*dst = e.MACReference(cipher, blockAddr, counter)
}

// MACReference computes the same tag as MAC on the hand-rolled SHA512,
// by literally assembling the documented message
//
//	macBlock || addr || ctr || ct
//
// and hashing it in one shot. It is the differential-test oracle for
// the fast path and the fallback when state capture is unavailable;
// like the other reference implementations it favors obvious
// correctness over speed.
func (e *Engine) MACReference(cipher *[CacheLineSize]byte, blockAddr, counter uint64) [MACSize]byte {
	block := keyBlock(&e.macKey)
	msg := make([]byte, 0, BlockBytes+16+CacheLineSize)
	msg = append(msg, block[:]...)
	msg = binary.LittleEndian.AppendUint64(msg, blockAddr)
	msg = binary.LittleEndian.AppendUint64(msg, counter)
	msg = append(msg, cipher[:]...)
	return Sum512(msg)
}

// HashNode computes a keyed BMT node hash over arbitrary child material.
// BMT interior nodes (8 children × 8-byte digests = 64 bytes) fit the
// single-compression fast path; longer inputs stream through the stdlib
// digest from the same midstate.
func (e *Engine) HashNode(children []byte) [Size512]byte {
	if e.fastOK {
		var out [Size512]byte
		if len(children) <= maxOneBlockTail {
			if e.fast.oneBlock(e.nodeMid, children, &out) {
				return out
			}
		} else if e.fast.long(e.nodeMid, children, &out) {
			return out
		}
	}
	return e.HashNodeReference(children)
}

// HashNodeReference computes the same digest as HashNode on the
// hand-rolled SHA512, assembling the documented nodeBlock || children
// message and hashing it in one shot, favoring obvious correctness over
// speed.
func (e *Engine) HashNodeReference(children []byte) [Size512]byte {
	block := keyBlock(&e.macKey, 0xB7)
	msg := make([]byte, 0, BlockBytes+len(children))
	msg = append(msg, block[:]...)
	msg = append(msg, children...)
	return Sum512(msg)
}
