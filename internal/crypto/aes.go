// Package crypto implements the cryptographic primitives SecPB's memory
// controller uses: AES (counter-mode one-time pads for data encryption)
// and SHA-512 (BMT node hashes and block MACs).
//
// The implementations are written from scratch so the repository is a
// self-contained model of the hardware crypto engine; tests validate them
// against the Go standard library and FIPS vectors. They are table-based
// and NOT constant time — they model a hardware engine inside a simulator
// and must never be used to protect real data.
package crypto

import "fmt"

// BlockSize is the AES block size in bytes.
const BlockSize = 16

var (
	sbox    [256]byte
	invSbox [256]byte
	// Round-constant words for key expansion.
	rcon = [11]byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}
)

func init() {
	// Generate the S-box algebraically: multiplicative inverse in
	// GF(2^8) followed by the affine transform. Generating it (rather
	// than pasting the table) gives the tests something independent to
	// verify against the standard library.
	p, q := byte(1), byte(1)
	for {
		// p := p * 3 in GF(2^8)
		p = p ^ (p << 1) ^ mulBranch(p)
		// q := q / 3 (multiply by inverse of 3)
		q ^= q << 1
		q ^= q << 2
		q ^= q << 4
		if q&0x80 != 0 {
			q ^= 0x09
		}
		// Affine transform of the inverse.
		x := q ^ rotl8(q, 1) ^ rotl8(q, 2) ^ rotl8(q, 3) ^ rotl8(q, 4)
		sbox[p] = x ^ 0x63
		if p == 1 {
			break
		}
	}
	sbox[0] = 0x63
	for i := 0; i < 256; i++ {
		invSbox[sbox[i]] = byte(i)
	}
}

func mulBranch(p byte) byte {
	if p&0x80 != 0 {
		return 0x1b
	}
	return 0
}

func rotl8(x byte, k uint) byte { return x<<k | x>>(8-k) }

// xtime multiplies by x (i.e. 2) in GF(2^8).
func xtime(b byte) byte { return b<<1 ^ mulBranch(b) }

// gmul multiplies two elements of GF(2^8).
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// Cipher is an AES block cipher with an expanded key schedule.
type Cipher struct {
	enc    [][4][4]byte // round keys as 4x4 state matrices (column major)
	rounds int
}

// NewCipher returns an AES cipher for a 16-, 24-, or 32-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, fmt.Errorf("crypto: invalid AES key size %d", len(key))
	}
	c := &Cipher{rounds: rounds}
	c.expandKey(key)
	return c, nil
}

// expandKey computes the Rijndael key schedule.
func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	nw := 4 * (c.rounds + 1)
	w := make([][4]byte, nw)
	for i := 0; i < nk; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	for i := nk; i < nw; i++ {
		t := w[i-1]
		if i%nk == 0 {
			// RotWord + SubWord + Rcon
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon[i/nk]
		} else if nk > 6 && i%nk == 4 {
			t = [4]byte{sbox[t[0]], sbox[t[1]], sbox[t[2]], sbox[t[3]]}
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-nk][j] ^ t[j]
		}
	}
	c.enc = make([][4][4]byte, c.rounds+1)
	for r := 0; r <= c.rounds; r++ {
		for col := 0; col < 4; col++ {
			for row := 0; row < 4; row++ {
				c.enc[r][row][col] = w[4*r+col][row]
			}
		}
	}
}

// state is the AES state matrix, s[row][col], column-major load order.
type state [4][4]byte

func loadState(src []byte) state {
	var s state
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			s[row][col] = src[4*col+row]
		}
	}
	return s
}

func (s *state) store(dst []byte) {
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			dst[4*col+row] = s[row][col]
		}
	}
}

func (s *state) addRoundKey(rk *[4][4]byte) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] ^= rk[r][c]
		}
	}
}

func (s *state) subBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = sbox[s[r][c]]
		}
	}
}

func (s *state) invSubBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = invSbox[s[r][c]]
		}
	}
}

func (s *state) shiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[c] = s[r][(c+r)%4]
		}
		s[r] = tmp
	}
}

func (s *state) invShiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[(c+r)%4] = s[r][c]
		}
		s[r] = tmp
	}
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		s[1][c] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		s[2][c] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		s[3][c] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09)
		s[1][c] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d)
		s[2][c] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b)
		s[3][c] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e)
	}
}

// Encrypt encrypts one 16-byte block from src into dst. dst and src may
// overlap. It panics if either slice is shorter than BlockSize.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("crypto: AES input not full block")
	}
	s := loadState(src)
	s.addRoundKey(&c.enc[0])
	for r := 1; r < c.rounds; r++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(&c.enc[r])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(&c.enc[c.rounds])
	s.store(dst)
}

// Decrypt decrypts one 16-byte block from src into dst. dst and src may
// overlap. It panics if either slice is shorter than BlockSize.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("crypto: AES input not full block")
	}
	s := loadState(src)
	s.addRoundKey(&c.enc[c.rounds])
	for r := c.rounds - 1; r >= 1; r-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(&c.enc[r])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(&c.enc[0])
	s.store(dst)
}
