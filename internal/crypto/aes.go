// Package crypto implements the cryptographic primitives SecPB's memory
// controller uses: AES (counter-mode one-time pads for data encryption)
// and SHA-512 (BMT node hashes and block MACs).
//
// The implementations are written from scratch so the repository is a
// self-contained model of the hardware crypto engine; tests validate them
// against the Go standard library and FIPS vectors. They are table-based
// and NOT constant time — they model a hardware engine inside a simulator
// and must never be used to protect real data.
package crypto

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

var (
	sbox    [256]byte
	invSbox [256]byte
	// Round-constant words for key expansion.
	rcon = [11]byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}
	// Encryption T-tables: each combines SubBytes with the byte's
	// MixColumns contribution at one row position, so a round is 16
	// lookups and XORs instead of per-byte matrix arithmetic. Built in
	// init from the generated S-box; the equivalence test checks the
	// table path against the matrix path (and both against stdlib).
	te0, te1, te2, te3 [256]uint32
)

func init() {
	// Generate the S-box algebraically: multiplicative inverse in
	// GF(2^8) followed by the affine transform. Generating it (rather
	// than pasting the table) gives the tests something independent to
	// verify against the standard library.
	p, q := byte(1), byte(1)
	for {
		// p := p * 3 in GF(2^8)
		p = p ^ (p << 1) ^ mulBranch(p)
		// q := q / 3 (multiply by inverse of 3)
		q ^= q << 1
		q ^= q << 2
		q ^= q << 4
		if q&0x80 != 0 {
			q ^= 0x09
		}
		// Affine transform of the inverse.
		x := q ^ rotl8(q, 1) ^ rotl8(q, 2) ^ rotl8(q, 3) ^ rotl8(q, 4)
		sbox[p] = x ^ 0x63
		if p == 1 {
			break
		}
	}
	sbox[0] = 0x63
	for i := 0; i < 256; i++ {
		invSbox[sbox[i]] = byte(i)
	}
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		te0[i] = uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te1[i] = uint32(s3)<<24 | uint32(s2)<<16 | uint32(s)<<8 | uint32(s)
		te2[i] = uint32(s)<<24 | uint32(s3)<<16 | uint32(s2)<<8 | uint32(s)
		te3[i] = uint32(s)<<24 | uint32(s)<<16 | uint32(s3)<<8 | uint32(s2)
	}
}

func mulBranch(p byte) byte {
	if p&0x80 != 0 {
		return 0x1b
	}
	return 0
}

func rotl8(x byte, k uint) byte { return x<<k | x>>(8-k) }

// xtime multiplies by x (i.e. 2) in GF(2^8).
func xtime(b byte) byte { return b<<1 ^ mulBranch(b) }

// gmul multiplies two elements of GF(2^8).
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// Cipher is an AES block cipher with an expanded key schedule. A Cipher
// is immutable after construction and safe for concurrent use.
type Cipher struct {
	encW   [60]uint32     // round-key words (big-endian columns), encrypt path
	enc    [15][4][4]byte // round keys as 4x4 state matrices, decrypt path
	rounds int
}

// NewCipher returns an AES cipher for a 16-, 24-, or 32-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, fmt.Errorf("crypto: invalid AES key size %d", len(key))
	}
	c := &Cipher{rounds: rounds}
	c.expandKey(key)
	return c, nil
}

// expandKey computes the Rijndael key schedule.
func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	nw := 4 * (c.rounds + 1)
	w := make([][4]byte, nw)
	for i := 0; i < nk; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	for i := nk; i < nw; i++ {
		t := w[i-1]
		if i%nk == 0 {
			// RotWord + SubWord + Rcon
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon[i/nk]
		} else if nk > 6 && i%nk == 4 {
			t = [4]byte{sbox[t[0]], sbox[t[1]], sbox[t[2]], sbox[t[3]]}
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-nk][j] ^ t[j]
		}
	}
	for r := 0; r <= c.rounds; r++ {
		for col := 0; col < 4; col++ {
			for row := 0; row < 4; row++ {
				c.enc[r][row][col] = w[4*r+col][row]
			}
		}
	}
	for i := 0; i < nw; i++ {
		c.encW[i] = uint32(w[i][0])<<24 | uint32(w[i][1])<<16 | uint32(w[i][2])<<8 | uint32(w[i][3])
	}
}

// state is the AES state matrix, s[row][col], column-major load order.
type state [4][4]byte

func loadState(src []byte) state {
	var s state
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			s[row][col] = src[4*col+row]
		}
	}
	return s
}

func (s *state) store(dst []byte) {
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			dst[4*col+row] = s[row][col]
		}
	}
}

func (s *state) addRoundKey(rk *[4][4]byte) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] ^= rk[r][c]
		}
	}
}

func (s *state) subBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = sbox[s[r][c]]
		}
	}
}

func (s *state) invSubBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = invSbox[s[r][c]]
		}
	}
}

func (s *state) shiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[c] = s[r][(c+r)%4]
		}
		s[r] = tmp
	}
}

func (s *state) invShiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[(c+r)%4] = s[r][c]
		}
		s[r] = tmp
	}
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		s[1][c] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		s[2][c] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		s[3][c] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09)
		s[1][c] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d)
		s[2][c] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b)
		s[3][c] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e)
	}
}

// Encrypt encrypts one 16-byte block from src into dst via the T-table
// fast path. dst and src may overlap. It panics if either slice is
// shorter than BlockSize.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("crypto: AES input not full block")
	}
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ c.encW[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ c.encW[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ c.encW[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ c.encW[3]
	k := 4
	for r := 1; r < c.rounds; r++ {
		t0 := te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ c.encW[k]
		t1 := te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ c.encW[k+1]
		t2 := te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ c.encW[k+2]
		t3 := te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ c.encW[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
	d0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	d1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	d2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	d3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	binary.BigEndian.PutUint32(dst[0:4], d0^c.encW[k])
	binary.BigEndian.PutUint32(dst[4:8], d1^c.encW[k+1])
	binary.BigEndian.PutUint32(dst[8:12], d2^c.encW[k+2])
	binary.BigEndian.PutUint32(dst[12:16], d3^c.encW[k+3])
}

// encryptGeneric is the straightforward matrix implementation of the
// cipher, kept as an independent reference for the T-table fast path
// (the equivalence test runs both over random blocks).
func (c *Cipher) encryptGeneric(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("crypto: AES input not full block")
	}
	s := loadState(src)
	s.addRoundKey(&c.enc[0])
	for r := 1; r < c.rounds; r++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(&c.enc[r])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(&c.enc[c.rounds])
	s.store(dst)
}

// Decrypt decrypts one 16-byte block from src into dst. dst and src may
// overlap. It panics if either slice is shorter than BlockSize.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("crypto: AES input not full block")
	}
	s := loadState(src)
	s.addRoundKey(&c.enc[c.rounds])
	for r := c.rounds - 1; r >= 1; r-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(&c.enc[r])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(&c.enc[0])
	s.store(dst)
}
