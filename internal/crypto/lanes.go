package crypto

import "encoding/binary"

// This file is the multi-buffer SHA-512 path: k independent one-block
// digests computed in one interleaved pass of the compression function.
//
// The scalar fast path (fast512.go) is latency-bound: each of the 80
// rounds depends on the previous one, so the core's ALUs sit mostly idle
// while one dependency chain crawls. Interleaving the rounds of several
// independent messages fills those idle slots — lane j's round i only
// depends on lane j's round i-1, so a superscalar core overlaps the
// lanes nearly for free. The win is throughput, not latency: one call
// finishes k digests in little more time than the scalar path takes for
// one or two.
//
// All messages on this path are keyed-midstate one-block digests — the
// per-store MACs and the BMT node hashes whose (key block || tail) fits
// a single compression after the cached key-block midstate. Batches come
// from the drain path: a drain burst's k MACs and a sweep level's k node
// hashes are mutually independent by construction.
//
// The lane compression is hand-rolled pure Go and therefore a distinct
// implementation from both the stdlib assembly and the reference SHA512;
// FuzzMACLanesVsScalar and the crypto unit tests hold all three equal.

// Lanes is the interleave width of the multi-buffer path. Width 2 keeps
// every state word in a register; width 4 trades some spill traffic for
// more independent chains. Both are always available — batch entry
// points pick the widest that the remaining work fills.
const (
	lanes2 = 2
	lanes4 = 4
)

// initH512 is the SHA-512 initial hash state (also in sha512.go's Reset;
// duplicated as a value so midstate derivation can start from a copy).
var initH512 = [8]uint64{
	0x6a09e667f3bcc908, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
	0x510e527fade682d1, 0x9b05688c2b3e6c1f, 0x1f83d9abfb41bd6b, 0x5be0cd19137e2179,
}

// midwords returns the eight hash words after absorbing one key block —
// the raw-register form of the midstate the lane path restores (the
// stdlib path keeps the same state marshaled; both derive from the same
// compression of the same block, so they are interchangeable).
func midwords(block *[BlockBytes]byte) [8]uint64 {
	h := initH512
	sha512Blocks(&h, block[:])
	return h
}

// laneBlock assembles the final padded compression block for a one-block
// keyed digest: tail, 0x80 terminator, zero fill, and the 128-bit
// big-endian bit length of (key block || tail).
func laneBlock(dst *[BlockBytes]byte, tail []byte) {
	n := copy(dst[:], tail)
	dst[n] = 0x80
	for i := n + 1; i < BlockBytes-8; i++ {
		dst[i] = 0
	}
	binary.BigEndian.PutUint64(dst[BlockBytes-16:], 0)
	binary.BigEndian.PutUint64(dst[BlockBytes-8:], uint64(BlockBytes+n)*8)
}

// MACRequest names one MAC computation of a batch: the destination tag
// and the (ciphertext, address, counter) tuple it authenticates.
type MACRequest struct {
	Tag  *[MACSize]byte
	CT   *[CacheLineSize]byte
	Addr uint64
	Ctr  uint64
}

// MACBatch computes every requested tag. It is observably identical to
// calling MACInto once per request; the batch form exists so mutually
// independent MACs — a drain burst's staged tuples — can share one
// interleaved pass of the compression function when the lane path is
// in effect (see laneWidth for the policy).
func (e *Engine) MACBatch(reqs []MACRequest) {
	if w := e.laneWidth(); w >= lanes2 && len(reqs) >= lanes2 {
		e.macLanes(reqs, w)
		return
	}
	for i := range reqs {
		r := &reqs[i]
		e.MACInto(r.Tag, r.CT, r.Addr, r.Ctr)
	}
}

// macLanes computes the batch on the interleaved pure-Go compression:
// groups of four (then two) requests per pass, scalar pure-Go for the
// remainder so the whole batch stays on one implementation.
func (e *Engine) macLanes(reqs []MACRequest, width int) {
	var p [lanes4][BlockBytes]byte
	var h [lanes4][8]uint64
	i := 0
	if width >= lanes4 {
		for ; i+lanes4 <= len(reqs); i += lanes4 {
			for j := 0; j < lanes4; j++ {
				macLaneBlock(&p[j], &reqs[i+j])
				h[j] = e.macMidW
			}
			sha512Block4(&h[0], &h[1], &h[2], &h[3], &p[0], &p[1], &p[2], &p[3])
			for j := 0; j < lanes4; j++ {
				putDigest(reqs[i+j].Tag, &h[j])
			}
		}
	}
	for ; i+lanes2 <= len(reqs); i += lanes2 {
		macLaneBlock(&p[0], &reqs[i])
		macLaneBlock(&p[1], &reqs[i+1])
		h[0], h[1] = e.macMidW, e.macMidW
		sha512Block2(&h[0], &h[1], &p[0], &p[1])
		putDigest(reqs[i].Tag, &h[0])
		putDigest(reqs[i+1].Tag, &h[1])
	}
	for ; i < len(reqs); i++ {
		macLaneBlock(&p[0], &reqs[i])
		h[0] = e.macMidW
		sha512Blocks(&h[0], p[0][:])
		putDigest(reqs[i].Tag, &h[0])
	}
}

// macLaneBlock assembles the single padded compression block for one
// MAC request: the documented addr || ctr || ct tail under the key
// midstate, padded for a (key block || tail) message.
func macLaneBlock(dst *[BlockBytes]byte, r *MACRequest) {
	var tail [16 + CacheLineSize]byte
	binary.LittleEndian.PutUint64(tail[0:], r.Addr)
	binary.LittleEndian.PutUint64(tail[8:], r.Ctr)
	copy(tail[16:], r.CT[:])
	laneBlock(dst, tail[:])
}

// putDigest serializes eight hash words big-endian into a tag.
func putDigest(dst *[MACSize]byte, h *[8]uint64) {
	for j := 0; j < 8; j++ {
		binary.BigEndian.PutUint64(dst[8*j:], h[j])
	}
}

// sha512Block2 compresses one 128-byte block into each of two
// independent hash states in a single interleaved pass.
func sha512Block2(h0, h1 *[8]uint64, p0, p1 *[BlockBytes]byte) {
	var w0, w1 [80]uint64
	for i := 0; i < 16; i++ {
		w0[i] = binary.BigEndian.Uint64(p0[8*i:])
		w1[i] = binary.BigEndian.Uint64(p1[8*i:])
	}
	for i := 16; i < 80; i++ {
		v0, u0 := w0[i-15], w0[i-2]
		v1, u1 := w1[i-15], w1[i-2]
		w0[i] = w0[i-16] + (rotr64(v0, 1) ^ rotr64(v0, 8) ^ (v0 >> 7)) + w0[i-7] + (rotr64(u0, 19) ^ rotr64(u0, 61) ^ (u0 >> 6))
		w1[i] = w1[i-16] + (rotr64(v1, 1) ^ rotr64(v1, 8) ^ (v1 >> 7)) + w1[i-7] + (rotr64(u1, 19) ^ rotr64(u1, 61) ^ (u1 >> 6))
	}
	a0, b0, c0, d0, e0, f0, g0, hh0 := h0[0], h0[1], h0[2], h0[3], h0[4], h0[5], h0[6], h0[7]
	a1, b1, c1, d1, e1, f1, g1, hh1 := h1[0], h1[1], h1[2], h1[3], h1[4], h1[5], h1[6], h1[7]
	for i := 0; i < 80; i++ {
		k := sha512K[i]
		t10 := hh0 + (rotr64(e0, 14) ^ rotr64(e0, 18) ^ rotr64(e0, 41)) + ((e0 & f0) ^ (^e0 & g0)) + k + w0[i]
		t11 := hh1 + (rotr64(e1, 14) ^ rotr64(e1, 18) ^ rotr64(e1, 41)) + ((e1 & f1) ^ (^e1 & g1)) + k + w1[i]
		t20 := (rotr64(a0, 28) ^ rotr64(a0, 34) ^ rotr64(a0, 39)) + ((a0 & b0) ^ (a0 & c0) ^ (b0 & c0))
		t21 := (rotr64(a1, 28) ^ rotr64(a1, 34) ^ rotr64(a1, 39)) + ((a1 & b1) ^ (a1 & c1) ^ (b1 & c1))
		hh0, g0, f0, e0, d0, c0, b0, a0 = g0, f0, e0, d0+t10, c0, b0, a0, t10+t20
		hh1, g1, f1, e1, d1, c1, b1, a1 = g1, f1, e1, d1+t11, c1, b1, a1, t11+t21
	}
	h0[0] += a0
	h0[1] += b0
	h0[2] += c0
	h0[3] += d0
	h0[4] += e0
	h0[5] += f0
	h0[6] += g0
	h0[7] += hh0
	h1[0] += a1
	h1[1] += b1
	h1[2] += c1
	h1[3] += d1
	h1[4] += e1
	h1[5] += f1
	h1[6] += g1
	h1[7] += hh1
}

// sha512Block4 compresses one 128-byte block into each of four
// independent hash states in a single interleaved pass.
func sha512Block4(h0, h1, h2, h3 *[8]uint64, p0, p1, p2, p3 *[BlockBytes]byte) {
	var w0, w1, w2, w3 [80]uint64
	for i := 0; i < 16; i++ {
		w0[i] = binary.BigEndian.Uint64(p0[8*i:])
		w1[i] = binary.BigEndian.Uint64(p1[8*i:])
		w2[i] = binary.BigEndian.Uint64(p2[8*i:])
		w3[i] = binary.BigEndian.Uint64(p3[8*i:])
	}
	for i := 16; i < 80; i++ {
		v0, u0 := w0[i-15], w0[i-2]
		v1, u1 := w1[i-15], w1[i-2]
		v2, u2 := w2[i-15], w2[i-2]
		v3, u3 := w3[i-15], w3[i-2]
		w0[i] = w0[i-16] + (rotr64(v0, 1) ^ rotr64(v0, 8) ^ (v0 >> 7)) + w0[i-7] + (rotr64(u0, 19) ^ rotr64(u0, 61) ^ (u0 >> 6))
		w1[i] = w1[i-16] + (rotr64(v1, 1) ^ rotr64(v1, 8) ^ (v1 >> 7)) + w1[i-7] + (rotr64(u1, 19) ^ rotr64(u1, 61) ^ (u1 >> 6))
		w2[i] = w2[i-16] + (rotr64(v2, 1) ^ rotr64(v2, 8) ^ (v2 >> 7)) + w2[i-7] + (rotr64(u2, 19) ^ rotr64(u2, 61) ^ (u2 >> 6))
		w3[i] = w3[i-16] + (rotr64(v3, 1) ^ rotr64(v3, 8) ^ (v3 >> 7)) + w3[i-7] + (rotr64(u3, 19) ^ rotr64(u3, 61) ^ (u3 >> 6))
	}
	a0, b0, c0, d0, e0, f0, g0, hh0 := h0[0], h0[1], h0[2], h0[3], h0[4], h0[5], h0[6], h0[7]
	a1, b1, c1, d1, e1, f1, g1, hh1 := h1[0], h1[1], h1[2], h1[3], h1[4], h1[5], h1[6], h1[7]
	a2, b2, c2, d2, e2, f2, g2, hh2 := h2[0], h2[1], h2[2], h2[3], h2[4], h2[5], h2[6], h2[7]
	a3, b3, c3, d3, e3, f3, g3, hh3 := h3[0], h3[1], h3[2], h3[3], h3[4], h3[5], h3[6], h3[7]
	for i := 0; i < 80; i++ {
		k := sha512K[i]
		t10 := hh0 + (rotr64(e0, 14) ^ rotr64(e0, 18) ^ rotr64(e0, 41)) + ((e0 & f0) ^ (^e0 & g0)) + k + w0[i]
		t11 := hh1 + (rotr64(e1, 14) ^ rotr64(e1, 18) ^ rotr64(e1, 41)) + ((e1 & f1) ^ (^e1 & g1)) + k + w1[i]
		t12 := hh2 + (rotr64(e2, 14) ^ rotr64(e2, 18) ^ rotr64(e2, 41)) + ((e2 & f2) ^ (^e2 & g2)) + k + w2[i]
		t13 := hh3 + (rotr64(e3, 14) ^ rotr64(e3, 18) ^ rotr64(e3, 41)) + ((e3 & f3) ^ (^e3 & g3)) + k + w3[i]
		t20 := (rotr64(a0, 28) ^ rotr64(a0, 34) ^ rotr64(a0, 39)) + ((a0 & b0) ^ (a0 & c0) ^ (b0 & c0))
		t21 := (rotr64(a1, 28) ^ rotr64(a1, 34) ^ rotr64(a1, 39)) + ((a1 & b1) ^ (a1 & c1) ^ (b1 & c1))
		t22 := (rotr64(a2, 28) ^ rotr64(a2, 34) ^ rotr64(a2, 39)) + ((a2 & b2) ^ (a2 & c2) ^ (b2 & c2))
		t23 := (rotr64(a3, 28) ^ rotr64(a3, 34) ^ rotr64(a3, 39)) + ((a3 & b3) ^ (a3 & c3) ^ (b3 & c3))
		hh0, g0, f0, e0, d0, c0, b0, a0 = g0, f0, e0, d0+t10, c0, b0, a0, t10+t20
		hh1, g1, f1, e1, d1, c1, b1, a1 = g1, f1, e1, d1+t11, c1, b1, a1, t11+t21
		hh2, g2, f2, e2, d2, c2, b2, a2 = g2, f2, e2, d2+t12, c2, b2, a2, t12+t22
		hh3, g3, f3, e3, d3, c3, b3, a3 = g3, f3, e3, d3+t13, c3, b3, a3, t13+t23
	}
	h0[0] += a0
	h0[1] += b0
	h0[2] += c0
	h0[3] += d0
	h0[4] += e0
	h0[5] += f0
	h0[6] += g0
	h0[7] += hh0
	h1[0] += a1
	h1[1] += b1
	h1[2] += c1
	h1[3] += d1
	h1[4] += e1
	h1[5] += f1
	h1[6] += g1
	h1[7] += hh1
	h2[0] += a2
	h2[1] += b2
	h2[2] += c2
	h2[3] += d2
	h2[4] += e2
	h2[5] += f2
	h2[6] += g2
	h2[7] += hh2
	h3[0] += a3
	h3[1] += b3
	h3[2] += c3
	h3[3] += d3
	h3[4] += e3
	h3[5] += f3
	h3[6] += g3
	h3[7] += hh3
}
