package crypto

import "encoding/binary"

// Size512 is the SHA-512 digest size in bytes.
const Size512 = 64

// sha512K holds the SHA-512 round constants (first 64 bits of the
// fractional parts of the cube roots of the first 80 primes).
var sha512K = [80]uint64{
	0x428a2f98d728ae22, 0x7137449123ef65cd, 0xb5c0fbcfec4d3b2f, 0xe9b5dba58189dbbc,
	0x3956c25bf348b538, 0x59f111f1b605d019, 0x923f82a4af194f9b, 0xab1c5ed5da6d8118,
	0xd807aa98a3030242, 0x12835b0145706fbe, 0x243185be4ee4b28c, 0x550c7dc3d5ffb4e2,
	0x72be5d74f27b896f, 0x80deb1fe3b1696b1, 0x9bdc06a725c71235, 0xc19bf174cf692694,
	0xe49b69c19ef14ad2, 0xefbe4786384f25e3, 0x0fc19dc68b8cd5b5, 0x240ca1cc77ac9c65,
	0x2de92c6f592b0275, 0x4a7484aa6ea6e483, 0x5cb0a9dcbd41fbd4, 0x76f988da831153b5,
	0x983e5152ee66dfab, 0xa831c66d2db43210, 0xb00327c898fb213f, 0xbf597fc7beef0ee4,
	0xc6e00bf33da88fc2, 0xd5a79147930aa725, 0x06ca6351e003826f, 0x142929670a0e6e70,
	0x27b70a8546d22ffc, 0x2e1b21385c26c926, 0x4d2c6dfc5ac42aed, 0x53380d139d95b3df,
	0x650a73548baf63de, 0x766a0abb3c77b2a8, 0x81c2c92e47edaee6, 0x92722c851482353b,
	0xa2bfe8a14cf10364, 0xa81a664bbc423001, 0xc24b8b70d0f89791, 0xc76c51a30654be30,
	0xd192e819d6ef5218, 0xd69906245565a910, 0xf40e35855771202a, 0x106aa07032bbd1b8,
	0x19a4c116b8d2d0c8, 0x1e376c085141ab53, 0x2748774cdf8eeb99, 0x34b0bcb5e19b48a8,
	0x391c0cb3c5c95a63, 0x4ed8aa4ae3418acb, 0x5b9cca4f7763e373, 0x682e6ff3d6b2b8a3,
	0x748f82ee5defb2fc, 0x78a5636f43172f60, 0x84c87814a1f0ab72, 0x8cc702081a6439ec,
	0x90befffa23631e28, 0xa4506cebde82bde9, 0xbef9a3f7b2c67915, 0xc67178f2e372532b,
	0xca273eceea26619c, 0xd186b8c721c0c207, 0xeada7dd6cde0eb1e, 0xf57d4f7fee6ed178,
	0x06f067aa72176fba, 0x0a637dc5a2c898a6, 0x113f9804bef90dae, 0x1b710b35131c471b,
	0x28db77f523047d84, 0x32caab7b40c72493, 0x3c9ebe0a15c9bebc, 0x431d67c49c100d4c,
	0x4cc5d4becb3e42b6, 0x597f299cfc657e2a, 0x5fcb6fab3ad6faec, 0x6c44198c4a475817,
}

// BlockBytes is the SHA-512 compression block size.
const BlockBytes = 128

// SHA512 is an incremental SHA-512 hash. The zero value is NOT valid;
// construct with NewSHA512.
//
// This is the hand-rolled reference implementation: the engine's hot
// paths (MAC, BMT node hashes) run on the stdlib-backed fast path in
// fast512.go, and differential tests cross-check every fast-path digest
// against this one. Keep it simple and obviously correct.
type SHA512 struct {
	h   [8]uint64
	buf [128]byte
	n   int    // bytes buffered in buf
	len uint64 // total message length in bytes
}

// NewSHA512 returns a fresh SHA-512 hash state.
func NewSHA512() *SHA512 {
	s := &SHA512{}
	s.Reset()
	return s
}

// Reset restores the initial hash state.
func (s *SHA512) Reset() {
	s.h = [8]uint64{
		0x6a09e667f3bcc908, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
		0x510e527fade682d1, 0x9b05688c2b3e6c1f, 0x1f83d9abfb41bd6b, 0x5be0cd19137e2179,
	}
	s.n = 0
	s.len = 0
}

func rotr64(x uint64, k uint) uint64 { return x>>k | x<<(64-k) }

func (s *SHA512) block(p []byte) { sha512Blocks(&s.h, p) }

// sha512Blocks runs the SHA-512 compression function over every full
// 128-byte block of p, updating h in place. Factoring it free of the
// SHA512 struct lets finalization work on a copy of the eight hash words
// alone instead of duplicating the whole ~200B state.
func sha512Blocks(h8 *[8]uint64, p []byte) {
	var w [80]uint64
	for len(p) >= 128 {
		for i := 0; i < 16; i++ {
			w[i] = binary.BigEndian.Uint64(p[8*i:])
		}
		for i := 16; i < 80; i++ {
			s0 := rotr64(w[i-15], 1) ^ rotr64(w[i-15], 8) ^ (w[i-15] >> 7)
			s1 := rotr64(w[i-2], 19) ^ rotr64(w[i-2], 61) ^ (w[i-2] >> 6)
			w[i] = w[i-16] + s0 + w[i-7] + s1
		}
		a, b, c, d, e, f, g, h := h8[0], h8[1], h8[2], h8[3], h8[4], h8[5], h8[6], h8[7]
		for i := 0; i < 80; i++ {
			S1 := rotr64(e, 14) ^ rotr64(e, 18) ^ rotr64(e, 41)
			ch := (e & f) ^ (^e & g)
			t1 := h + S1 + ch + sha512K[i] + w[i]
			S0 := rotr64(a, 28) ^ rotr64(a, 34) ^ rotr64(a, 39)
			maj := (a & b) ^ (a & c) ^ (b & c)
			t2 := S0 + maj
			h, g, f, e, d, c, b, a = g, f, e, d+t1, c, b, a, t1+t2
		}
		h8[0] += a
		h8[1] += b
		h8[2] += c
		h8[3] += d
		h8[4] += e
		h8[5] += f
		h8[6] += g
		h8[7] += h
		p = p[128:]
	}
}

// Write absorbs p into the hash state. It never fails.
func (s *SHA512) Write(p []byte) (int, error) {
	n := len(p)
	s.len += uint64(n)
	if s.n > 0 {
		c := copy(s.buf[s.n:], p)
		s.n += c
		p = p[c:]
		if s.n == 128 {
			s.block(s.buf[:])
			s.n = 0
		}
	}
	if len(p) >= 128 {
		full := len(p) &^ 127
		s.block(p[:full])
		p = p[full:]
	}
	if len(p) > 0 {
		s.n = copy(s.buf[:], p)
	}
	return n, nil
}

// Sum appends the digest of the absorbed data to b and returns the
// result. The hash state is not modified, so more data may be written
// afterwards.
func (s *SHA512) Sum(b []byte) []byte {
	var out [Size512]byte
	s.SumInto(&out)
	return append(b, out[:]...)
}

// SumInto finalizes the digest into out without modifying the hash
// state and without heap allocation: only the eight hash words are
// copied (not the whole buffered state), and the padded tail — at most
// two blocks — is assembled in a stack buffer and compressed directly.
func (s *SHA512) SumInto(out *[Size512]byte) {
	h := s.h
	var tail [2 * BlockBytes]byte
	n := copy(tail[:], s.buf[:s.n])
	tail[n] = 0x80
	// The message length in bits is a 128-bit big-endian integer; the
	// high 64 bits carry only the bits shifted out of len<<3.
	tlen := BlockBytes
	if n+17 > BlockBytes {
		tlen = 2 * BlockBytes
	}
	binary.BigEndian.PutUint64(tail[tlen-16:], s.len>>61)
	binary.BigEndian.PutUint64(tail[tlen-8:], s.len<<3)
	sha512Blocks(&h, tail[:tlen])
	for i, v := range h {
		binary.BigEndian.PutUint64(out[8*i:], v)
	}
}

// Sum512 returns the SHA-512 digest of data using the hand-rolled
// reference implementation.
func Sum512(data []byte) [Size512]byte {
	var s SHA512
	s.Reset()
	s.Write(data)
	var out [Size512]byte
	s.SumInto(&out)
	return out
}
