package crypto

import (
	stdsha "crypto/sha512"
	"encoding"
	"encoding/binary"
	"hash"
)

// This file is the engine's fast SHA-512 path. The hot hash primitives
// (per-store MACs and BMT node hashes) run on the standard library's
// crypto/sha512 — assembly-backed on amd64/arm64 — while the hand-rolled
// SHA512 in sha512.go stays as the cross-checked reference, mirroring
// the AES T-table + matrix-reference split introduced for the cipher.
//
// Both primitives are keyed-midstate constructions:
//
//	MAC(ct, a, c)   = SHA-512(macBlock  || addr || ctr || ct)
//	HashNode(child) = SHA-512(nodeBlock || child)
//
// where macBlock and nodeBlock are 128-byte key blocks (the 32-byte MAC
// key, zero padded; the node block additionally carries the 0xB7 domain
// byte so the two primitives can never collide). Because each key block
// is exactly one compression block, its midstate is computed once per
// distinct key and cached; a MAC then costs a single compression of the
// final padded block instead of re-absorbing the key every call, and
// finalization is allocation-free (the digest words are read straight
// out of the compressed state — no state copy, no pad-array build).

// stdState is what the fast path needs from the stdlib digest:
// incremental hashing plus state capture/restore for keyed midstates.
// crypto/sha512 has implemented the three encoding interfaces since
// Go 1.4 (marshal/unmarshal) and Go 1.24 (append); the constructor
// still self-checks and falls back to the reference path if the
// assertion or the state layout ever changes.
type stdState interface {
	hash.Hash
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
	encoding.BinaryAppender
}

// Offsets into the stdlib digest's marshaled state: a 4-byte magic
// ("sha\x07") followed by the eight big-endian hash words. For a state
// that has just compressed its final padded block, those words are
// exactly the SHA-512 digest.
const (
	stateMagicLen = 4
	stateLen      = stateMagicLen + Size512 + BlockBytes + 8
)

// suffix layout shared by both primitives: a message tail of up to
// maxOneBlockTail bytes after the key block still fits — with the 0x80
// terminator and the 16-byte length — in one compression block.
const maxOneBlockTail = BlockBytes - 17

// newStdState returns a fresh stdlib SHA-512 digest with state capture,
// or ok=false if the stdlib type ever stops satisfying stdState.
func newStdState() (stdState, bool) {
	d, ok := stdsha.New().(stdState)
	return d, ok
}

// keyBlock builds the 128-byte key block for a primitive: the MAC key
// followed by the domain-separation bytes, zero padded to a full
// compression block.
func keyBlock(key *[32]byte, domain ...byte) [BlockBytes]byte {
	var b [BlockBytes]byte
	copy(b[:], key[:])
	copy(b[32:], domain)
	return b
}

// fastHasher is the per-engine fast-path state: the stdlib digest the
// midstates are restored into plus fixed scratch buffers. Keeping the
// buffers here (stable heap memory) instead of on the stack matters:
// stack arrays passed through the hash.Hash interface escape, which
// would cost two heap allocations per digest.
type fastHasher struct {
	d     stdState
	final [BlockBytes]byte
	state [stateLen]byte
	sum   [Size512]byte
}

func newFastHasher() (*fastHasher, bool) {
	d, ok := newStdState()
	if !ok {
		return nil, false
	}
	return &fastHasher{d: d}, true
}

// midstate captures the stdlib digest state after absorbing one key
// block. The returned slice is immutable and safe to share across
// engines. ok is false if the stdlib digest no longer supports state
// capture or the captured state fails the self-check.
func midstate(block *[BlockBytes]byte) (mid []byte, ok bool) {
	f, isStd := newFastHasher()
	if !isStd {
		return nil, false
	}
	if _, err := f.d.Write(block[:]); err != nil {
		return nil, false
	}
	mid, err := f.d.MarshalBinary()
	if err != nil || len(mid) != stateLen {
		return nil, false
	}
	// Self-check: one digest through the midstate fast path must match
	// the hand-rolled reference on a representative suffix. This guards
	// the marshaled-state layout assumption at construction time, so
	// the per-call path can trust it unconditionally.
	probe := [48]byte{0: 1, 21: 0xA5, 47: 0xFF}
	var got [Size512]byte
	if !f.oneBlock(mid, probe[:], &got) {
		return nil, false
	}
	ref := NewSHA512()
	ref.Write(block[:])
	ref.Write(probe[:])
	var want [Size512]byte
	ref.SumInto(&want)
	if got != want {
		return nil, false
	}
	return mid, true
}

// oneBlock hashes (key block || tail) in a single compression from the
// key block's midstate: the final block — tail, 0x80 terminator, message
// bit length — is assembled in the scratch buffer, the midstate is
// restored into the digest, and the digest words are extracted from the
// re-marshaled state. No heap allocation on this path.
func (f *fastHasher) oneBlock(mid []byte, tail []byte, out *[Size512]byte) bool {
	if len(tail) > maxOneBlockTail {
		return false
	}
	n := copy(f.final[:], tail)
	f.final[n] = 0x80
	clear(f.final[n+1 : BlockBytes-8])
	binary.BigEndian.PutUint64(f.final[BlockBytes-8:], uint64(BlockBytes+n)*8)
	if err := f.d.UnmarshalBinary(mid); err != nil {
		return false
	}
	f.d.Write(f.final[:])
	st, err := f.d.AppendBinary(f.state[:0])
	if err != nil || len(st) < stateMagicLen+Size512 {
		return false
	}
	copy(out[:], st[stateMagicLen:stateMagicLen+Size512])
	return true
}

// long hashes (key block || tail) for tails too long for a single final
// block, streaming through the stdlib digest. Sum finalizes into the
// scratch sum buffer, not the caller's array: handing out[:0] to the
// hash.Hash interface would make the caller's stack variable escape.
func (f *fastHasher) long(mid []byte, tail []byte, out *[Size512]byte) bool {
	if err := f.d.UnmarshalBinary(mid); err != nil {
		return false
	}
	f.d.Write(tail)
	copy(out[:], f.d.Sum(f.sum[:0]))
	return true
}
