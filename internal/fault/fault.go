// Package fault models NVM media defects: a deterministic, seedable
// injector that the PM device consults on every write attempt and read.
// PCM-class media suffers transient write failures (a programmed cell
// does not latch), torn writes (power or controller glitches leave a
// line partially programmed), and latent bit rot (resistance drift flips
// stored bits over time). The injector decides each event from one
// seeded stream so any fault pattern is exactly reproducible, keeps a
// structured event log, and supports per-region rate scaling so wear-hot
// address ranges can be modelled as more fragile than the rest of the
// device.
//
// The package is a dependency leaf: the PM device owns an Injector and
// asks it questions; the injector never touches device state itself.
package fault

import (
	"fmt"

	"secpb/internal/addr"
	"secpb/internal/xrand"
)

// Kind classifies one media fault event.
type Kind uint8

const (
	// None means the operation completed faithfully.
	None Kind = iota
	// WriteFail is a transient write failure: no cell of the line
	// latches; the previous contents remain.
	WriteFail
	// TornWrite is a partial-line write: only a prefix of the line's
	// bytes latch before the program pulse is lost.
	TornWrite
	// BitRot is latent corruption: one stored bit has drifted since it
	// was written, observed on read or during an at-rest decay pass.
	BitRot
)

// String returns the fault-taxonomy name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case WriteFail:
		return "write-fail"
	case TornWrite:
		return "torn-write"
	case BitRot:
		return "bit-rot"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// Region scales the configured fault rates over an inclusive range of
// physical block indices, modelling wear-hot or end-of-life zones.
type Region struct {
	FirstBlock uint64  // first physical block index, inclusive
	LastBlock  uint64  // last physical block index, inclusive
	Scale      float64 // rate multiplier inside the region
}

// Config parameterizes an Injector. All rates are probabilities per
// operation in [0,1); a zero-rate config injects nothing.
type Config struct {
	Seed          uint64
	WriteFailRate float64  // per write attempt
	TornRate      float64  // per write attempt
	RotRate       float64  // per read and per block visited by a decay pass
	Regions       []Region // optional per-region scaling; first match wins
	LogCap        int      // retained events; <=0 uses DefaultLogCap
}

// DefaultLogCap bounds the structured event log when Config.LogCap is
// unset; later events are still counted, just not retained.
const DefaultLogCap = 256

// Enabled reports whether any fault class has a nonzero rate.
func (c Config) Enabled() bool {
	return c.WriteFailRate > 0 || c.TornRate > 0 || c.RotRate > 0
}

// Event is one structured fault-log record.
type Event struct {
	Seq   uint64 // ordinal among all fault decisions the injector made
	Kind  Kind
	Block uint64 // physical block index the fault struck
	Bit   int    // flipped bit within the line (BitRot)
	Bytes int    // bytes that latched (TornWrite)
}

// String renders the event for damage reports.
func (e Event) String() string {
	switch e.Kind {
	case TornWrite:
		return fmt.Sprintf("%s@%#x[%dB] (seq %d)", e.Kind, e.Block<<addr.BlockShift, e.Bytes, e.Seq)
	case BitRot:
		return fmt.Sprintf("%s@%#x bit %d (seq %d)", e.Kind, e.Block<<addr.BlockShift, e.Bit, e.Seq)
	default:
		return fmt.Sprintf("%s@%#x (seq %d)", e.Kind, e.Block<<addr.BlockShift, e.Seq)
	}
}

// Counts aggregates injected events by kind.
type Counts struct {
	WriteFails uint64
	TornWrites uint64
	RotFlips   uint64
}

// Total returns the number of injected events.
func (c Counts) Total() uint64 { return c.WriteFails + c.TornWrites + c.RotFlips }

// Injector draws fault decisions from one seeded stream. Determinism
// contract: decisions depend only on the seed and the sequence of
// OnWrite/OnRead/Decay calls, so an identical run replays an identical
// fault pattern. Not safe for concurrent use (the PM device is not
// either).
type Injector struct {
	cfg     Config
	rng     *xrand.Rand
	seq     uint64
	counts  Counts
	events  []Event
	dropped uint64
}

// New builds an injector; a nil return means cfg injects nothing, and
// every consumer treats a nil *Injector as fault-free media.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.LogCap <= 0 {
		cfg.LogCap = DefaultLogCap
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xFA017 // any fixed nonzero seed; zero would degrade xoshiro
	}
	return &Injector{cfg: cfg, rng: xrand.New(seed)}
}

// scale returns the rate multiplier for a physical block index.
func (in *Injector) scale(block uint64) float64 {
	for i := range in.cfg.Regions {
		r := &in.cfg.Regions[i]
		if block >= r.FirstBlock && block <= r.LastBlock {
			return r.Scale
		}
	}
	return 1
}

// record logs an injected event (bounded) and bumps its kind counter.
func (in *Injector) record(ev Event) Event {
	switch ev.Kind {
	case WriteFail:
		in.counts.WriteFails++
	case TornWrite:
		in.counts.TornWrites++
	case BitRot:
		in.counts.RotFlips++
	}
	if len(in.events) < in.cfg.LogCap {
		in.events = append(in.events, ev)
	} else {
		in.dropped++
	}
	return ev
}

// OnWrite decides the outcome of one write attempt to the physical
// block: a clean write (faulted=false), a full write failure, or a torn
// write of ev.Bytes leading bytes. Exactly one uniform draw is consumed
// per call (plus one for the torn length), keeping the decision stream
// cheap and reproducible.
func (in *Injector) OnWrite(block uint64) (ev Event, faulted bool) {
	if in == nil {
		return Event{}, false
	}
	seq := in.seq
	in.seq++
	s := in.scale(block)
	u := in.rng.Float64()
	switch wf, torn := in.cfg.WriteFailRate*s, in.cfg.TornRate*s; {
	case u < wf:
		return in.record(Event{Seq: seq, Kind: WriteFail, Block: block}), true
	case u < wf+torn:
		n := 1 + in.rng.Intn(addr.BlockBytes-1) // 1..63 bytes latch
		return in.record(Event{Seq: seq, Kind: TornWrite, Block: block, Bytes: n}), true
	}
	return Event{}, false
}

// rot is the shared bit-rot decision for OnRead and Decay.
func (in *Injector) rot(block uint64) (Event, bool) {
	if in == nil || in.cfg.RotRate <= 0 {
		return Event{}, false
	}
	seq := in.seq
	in.seq++
	if in.rng.Float64() >= in.cfg.RotRate*in.scale(block) {
		return Event{}, false
	}
	bit := in.rng.Intn(addr.BlockBytes * 8)
	return in.record(Event{Seq: seq, Kind: BitRot, Block: block, Bit: bit}), true
}

// OnRead decides whether this read of the physical block observes a
// fresh bit-rot flip (which is persistent: the caller applies it to the
// stored line, not just the returned copy).
func (in *Injector) OnRead(block uint64) (Event, bool) { return in.rot(block) }

// Decay decides whether the physical block rots during an at-rest decay
// pass (e.g. the dead time between a crash and recovery).
func (in *Injector) Decay(block uint64) (Event, bool) { return in.rot(block) }

// Counts returns the per-kind injected-event totals.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.counts
}

// Events returns the retained structured log (oldest first) and how many
// further events overflowed the cap.
func (in *Injector) Events() (retained []Event, dropped uint64) {
	if in == nil {
		return nil, 0
	}
	return in.events, in.dropped
}
