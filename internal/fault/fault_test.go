package fault

import (
	"testing"

	"secpb/internal/addr"
)

func TestDisabledConfigInjectsNothing(t *testing.T) {
	if in := New(Config{Seed: 7}); in != nil {
		t.Fatal("zero-rate config must build a nil injector")
	}
	// The nil injector is the fault-free fast path everywhere.
	var in *Injector
	if _, faulted := in.OnWrite(3); faulted {
		t.Error("nil injector faulted a write")
	}
	if _, rotted := in.OnRead(3); rotted {
		t.Error("nil injector rotted a read")
	}
	if c := in.Counts(); c.Total() != 0 {
		t.Error("nil injector has nonzero counts")
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{Seed: 42, WriteFailRate: 0.05, TornRate: 0.05, RotRate: 0.02}
	run := func() []Event {
		in := New(cfg)
		for i := uint64(0); i < 4000; i++ {
			in.OnWrite(i % 512)
			if i%3 == 0 {
				in.OnRead(i % 512)
			}
		}
		ev, _ := in.Events()
		return ev
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("expected events at these rates")
	}
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEventShapes(t *testing.T) {
	in := New(Config{Seed: 9, WriteFailRate: 0.25, TornRate: 0.25, RotRate: 0.5, LogCap: 1 << 16})
	for i := uint64(0); i < 5000; i++ {
		in.OnWrite(i)
		in.OnRead(i)
	}
	c := in.Counts()
	if c.WriteFails == 0 || c.TornWrites == 0 || c.RotFlips == 0 {
		t.Fatalf("expected all three kinds at high rates, got %+v", c)
	}
	evs, _ := in.Events()
	for _, ev := range evs {
		switch ev.Kind {
		case TornWrite:
			if ev.Bytes < 1 || ev.Bytes >= addr.BlockBytes {
				t.Fatalf("torn write latched %d bytes, want 1..%d", ev.Bytes, addr.BlockBytes-1)
			}
		case BitRot:
			if ev.Bit < 0 || ev.Bit >= addr.BlockBytes*8 {
				t.Fatalf("rot bit %d out of line range", ev.Bit)
			}
		}
	}
}

func TestRegionScaling(t *testing.T) {
	// Blocks 0..99 are immune (scale 0); everything else faults often.
	cfg := Config{
		Seed:          3,
		WriteFailRate: 0.2,
		Regions:       []Region{{FirstBlock: 0, LastBlock: 99, Scale: 0}},
		LogCap:        1 << 16,
	}
	in := New(cfg)
	for i := uint64(0); i < 3000; i++ {
		in.OnWrite(i % 200)
	}
	evs, _ := in.Events()
	if len(evs) == 0 {
		t.Fatal("expected faults outside the immune region")
	}
	for _, ev := range evs {
		if ev.Block < 100 {
			t.Fatalf("fault %v struck the zero-scale region", ev)
		}
	}
}

func TestLogCapDropsButCounts(t *testing.T) {
	in := New(Config{Seed: 1, WriteFailRate: 1, LogCap: 8})
	for i := uint64(0); i < 100; i++ {
		in.OnWrite(i)
	}
	evs, dropped := in.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want cap 8", len(evs))
	}
	if dropped != 92 {
		t.Fatalf("dropped %d events, want 92", dropped)
	}
	if in.Counts().WriteFails != 100 {
		t.Fatalf("counts must include dropped events, got %d", in.Counts().WriteFails)
	}
}
