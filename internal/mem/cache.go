// Package mem models the volatile memory-side structures: set-associative
// caches with LRU replacement (used for the L1/L2/L3 data hierarchy and
// the memory controller's metadata caches) and the core's store buffer.
//
// Caches here are timing/state models: they track which blocks are
// resident, not block contents (functional data lives in the persist
// buffer and the NVM model). Blocks written through a persist buffer are
// marked persist-dirty: because the PB guarantees they reach PM, their
// eviction is silently discarded like a clean block (paper Section IV.C).
package mem

import (
	"fmt"
	"math/bits"

	"secpb/internal/config"
)

// lineState tracks residency and writeback semantics of one cache line.
type lineState uint8

const (
	invalid lineState = iota
	clean
	dirty        // must be written back on eviction
	persistDirty // dirty but persisted via PB: silently droppable
)

// Cache is a set-associative cache with true-LRU replacement.
//
// The line metadata is stored structure-of-arrays: a probe scans only
// the tags slice, where one 8-way set's tags occupy exactly one
// 64-byte host cache line, instead of striding through 24-byte
// AoS line structs (three host lines per set). The used/state columns
// are touched only on the way that hit (or the victim being filled).
//
// Valid lines are kept prefix-dense: set s holds exactly valid[s]
// resident lines, in ways [0, valid[s]). Probes scan only that prefix
// (a cold set costs zero tag compares), fills of a non-full set append
// at the prefix end with no victim scan at all, and construction does
// not need to seed a sentinel tag — ways at or beyond the count are
// simply never read. Which way a line occupies is unobservable: hits
// depend only on residency, and LRU victim choice depends only on the
// used stamps, which are globally unique (every writer of used first
// increments the probe clock), so compaction on invalidate cannot
// change any modeled outcome.
type Cache struct {
	name     string
	setMask  uint64
	setShift uint
	ways     uint64
	tags     []uint64    // sets * ways, row major
	used     []uint64    // LRU timestamps, parallel to tags
	state    []lineState // parallel to tags
	valid    []uint16    // per-set count of resident (prefix-dense) ways
	mru      []uint16    // per-set way of the most recent hit or fill
	clock    uint64
	latency  uint64

	hits      uint64
	misses    uint64
	evictions uint64
	wbacks    uint64
}

// NewCache builds a cache from its configuration. The config must be
// valid (power-of-two set count).
func NewCache(name string, cfg config.CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %s has invalid set count %d", name, sets))
	}
	if cfg.Ways <= 0 || cfg.Ways > 1<<16-1 {
		panic(fmt.Sprintf("mem: cache %s has invalid way count %d", name, cfg.Ways))
	}
	n := sets * cfg.Ways
	return &Cache{
		name:     name,
		setMask:  uint64(sets - 1),
		setShift: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		ways:     uint64(cfg.Ways),
		tags:     make([]uint64, n),
		used:     make([]uint64, n),
		state:    make([]lineState, n),
		valid:    make([]uint16, sets),
		mru:      make([]uint16, sets),
		latency:  cfg.AccessCycles,
	}
}

// Latency returns the configured access latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// base returns the index of the block's set's first way.
func (c *Cache) base(blockAddr uint64) uint64 {
	return ((blockAddr >> c.setShift) & c.setMask) * c.ways
}

// Lookup reports whether the block is resident, without changing state.
func (c *Cache) Lookup(blockAddr uint64) bool {
	set := (blockAddr >> c.setShift) & c.setMask
	base := set * c.ways
	for _, t := range c.tags[base : base+uint64(c.valid[set])] {
		if t == blockAddr {
			return true
		}
	}
	return false
}

// Access touches the block: on hit the LRU state refreshes and, for
// writes, the line state upgrades. Returns whether it hit.
func (c *Cache) Access(blockAddr uint64, write, persist bool) bool {
	c.clock++
	set := (blockAddr >> c.setShift) & c.setMask
	base := set * c.ways
	cnt := uint64(c.valid[set])
	if m := uint64(c.mru[set]); m < cnt && c.tags[base+m] == blockAddr {
		j := base + m
		c.hits++
		c.used[j] = c.clock
		if write {
			if persist {
				c.state[j] = persistDirty
			} else if c.state[j] != persistDirty {
				c.state[j] = dirty
			}
		}
		return true
	}
	tags := c.tags[base : base+cnt]
	for i := range tags {
		if tags[i] == blockAddr {
			j := base + uint64(i)
			c.mru[set] = uint16(i)
			c.hits++
			c.used[j] = c.clock
			if write {
				if persist {
					c.state[j] = persistDirty
				} else if c.state[j] != persistDirty {
					c.state[j] = dirty
				}
			}
			return true
		}
	}
	c.misses++
	return false
}

// AccessRead is the specialized read probe — Access(blockAddr, false,
// false) with the write branches hoisted out. The engine's load path
// (scalar and columnar batch replay alike) issues one per load.
func (c *Cache) AccessRead(blockAddr uint64) bool {
	c.clock++
	set := (blockAddr >> c.setShift) & c.setMask
	base := set * c.ways
	cnt := uint64(c.valid[set])
	if m := uint64(c.mru[set]); m < cnt && c.tags[base+m] == blockAddr {
		j := base + m
		c.hits++
		c.used[j] = c.clock
		return true
	}
	tags := c.tags[base : base+cnt]
	for i := range tags {
		if tags[i] == blockAddr {
			j := base + uint64(i)
			c.mru[set] = uint16(i)
			c.hits++
			c.used[j] = c.clock
			return true
		}
	}
	c.misses++
	return false
}

// AccessWrite is the specialized non-persist write probe — Access(
// blockAddr, true, false): on a hit the line becomes dirty unless it
// is already persist-dirty. The memory controller's metadata caches
// (counter, MAC, BMT) issue one per metadata update.
func (c *Cache) AccessWrite(blockAddr uint64) bool {
	c.clock++
	set := (blockAddr >> c.setShift) & c.setMask
	base := set * c.ways
	cnt := uint64(c.valid[set])
	if m := uint64(c.mru[set]); m < cnt && c.tags[base+m] == blockAddr {
		j := base + m
		c.hits++
		c.used[j] = c.clock
		if c.state[j] != persistDirty {
			c.state[j] = dirty
		}
		return true
	}
	tags := c.tags[base : base+cnt]
	for i := range tags {
		if tags[i] == blockAddr {
			j := base + uint64(i)
			c.mru[set] = uint16(i)
			c.hits++
			c.used[j] = c.clock
			if c.state[j] != persistDirty {
				c.state[j] = dirty
			}
			return true
		}
	}
	c.misses++
	return false
}

// RecountMiss re-records a probe of a block this cache just reported
// missing, with no intervening fill: the rescan's outcome is already
// known, so only the probe clock and the miss counter advance — the
// exact state change the redundant scan would have made.
func (c *Cache) RecountMiss() {
	c.clock++
	c.misses++
}

// AccessPersist is the specialized persist-store probe — Access(
// blockAddr, true, true): on a hit the line unconditionally becomes
// persist-dirty. One per store on the engine's hot path.
func (c *Cache) AccessPersist(blockAddr uint64) bool {
	c.clock++
	set := (blockAddr >> c.setShift) & c.setMask
	base := set * c.ways
	cnt := uint64(c.valid[set])
	if m := uint64(c.mru[set]); m < cnt && c.tags[base+m] == blockAddr {
		j := base + m
		c.hits++
		c.used[j] = c.clock
		c.state[j] = persistDirty
		return true
	}
	tags := c.tags[base : base+cnt]
	for i := range tags {
		if tags[i] == blockAddr {
			j := base + uint64(i)
			c.mru[set] = uint16(i)
			c.hits++
			c.used[j] = c.clock
			c.state[j] = persistDirty
			return true
		}
	}
	c.misses++
	return false
}

// Victim describes a block evicted by Fill.
type Victim struct {
	Addr      uint64
	Dirty     bool // needs writeback (true dirty, not persist-dirty)
	Discarded bool // persist-dirty line silently dropped
}

// Fill allocates the block, evicting the LRU line if needed. The write
// and persist flags set the new line's state as in Access. A non-full
// set appends at the end of its valid prefix — no victim scan; a full
// set scans only the LRU stamps (every way is known resident, so the
// scan needs no tag loads or sentinel checks).
func (c *Cache) Fill(blockAddr uint64, write, persist bool) (Victim, bool) {
	c.clock++
	set := (blockAddr >> c.setShift) & c.setMask
	base := set * c.ways
	var v Victim
	hadVictim := false
	var victim uint64
	if cnt := uint64(c.valid[set]); cnt < c.ways {
		victim = base + cnt
		c.valid[set] = uint16(cnt + 1)
	} else {
		victim = base
		oldest := c.used[base]
		for j := base + 1; j < base+c.ways; j++ {
			if c.used[j] < oldest {
				oldest = c.used[j]
				victim = j
			}
		}
		hadVictim = true
		v.Addr = c.tags[victim]
		switch c.state[victim] {
		case dirty:
			v.Dirty = true
			c.wbacks++
		case persistDirty:
			v.Discarded = true
		}
		c.evictions++
	}
	st := clean
	if write {
		if persist {
			st = persistDirty
		} else {
			st = dirty
		}
	}
	c.tags[victim] = blockAddr
	c.state[victim] = st
	c.used[victim] = c.clock
	c.mru[set] = uint16(victim - base)
	return v, hadVictim
}

// Invalidate removes the block if resident, returning whether it was
// dirty (needing writeback). The last valid way moves into the vacated
// slot to keep the prefix dense; since hit detection depends only on
// residency and victim choice only on the (globally unique) LRU
// stamps, the compaction is unobservable.
func (c *Cache) Invalidate(blockAddr uint64) (wasDirty bool) {
	set := (blockAddr >> c.setShift) & c.setMask
	base := set * c.ways
	cnt := uint64(c.valid[set])
	for i := uint64(0); i < cnt; i++ {
		j := base + i
		if c.tags[j] == blockAddr {
			wasDirty = c.state[j] == dirty
			last := base + cnt - 1
			c.tags[j] = c.tags[last]
			c.used[j] = c.used[last]
			c.state[j] = c.state[last]
			c.valid[set] = uint16(cnt - 1)
			return wasDirty
		}
	}
	return false
}

// Stats returns (hits, misses, evictions, writebacks).
func (c *Cache) Stats() (hits, misses, evictions, wbacks uint64) {
	return c.hits, c.misses, c.evictions, c.wbacks
}

// HitRate returns hits/(hits+misses), or 0 when no accesses happened.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
