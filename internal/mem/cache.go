// Package mem models the volatile memory-side structures: set-associative
// caches with LRU replacement (used for the L1/L2/L3 data hierarchy and
// the memory controller's metadata caches) and the core's store buffer.
//
// Caches here are timing/state models: they track which blocks are
// resident, not block contents (functional data lives in the persist
// buffer and the NVM model). Blocks written through a persist buffer are
// marked persist-dirty: because the PB guarantees they reach PM, their
// eviction is silently discarded like a clean block (paper Section IV.C).
package mem

import (
	"fmt"
	"math/bits"

	"secpb/internal/config"
)

// lineState tracks residency and writeback semantics of one cache line.
type lineState uint8

const (
	invalid lineState = iota
	clean
	dirty        // must be written back on eviction
	persistDirty // dirty but persisted via PB: silently droppable
)

type line struct {
	tag   uint64
	state lineState
	used  uint64 // LRU timestamp
}

// badTag fills the tag of invalid lines. Real tags are block-aligned
// addresses, so the all-ones pattern can never match and the hot way
// scans need a single compare instead of a state check plus a tag
// check. Invariant: state == invalid ⟺ tag == badTag.
const badTag = ^uint64(0)

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	name      string
	setMask   uint64
	setShift  uint
	ways      int
	sets      []line // sets * ways, row major
	clock     uint64
	latency   uint64
	hits      uint64
	misses    uint64
	evictions uint64
	wbacks    uint64
}

// NewCache builds a cache from its configuration. The config must be
// valid (power-of-two set count).
func NewCache(name string, cfg config.CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %s has invalid set count %d", name, sets))
	}
	lines := make([]line, sets*cfg.Ways)
	for i := range lines {
		lines[i].tag = badTag
	}
	return &Cache{
		name:     name,
		setMask:  uint64(sets - 1),
		setShift: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		ways:     cfg.Ways,
		sets:     lines,
		latency:  cfg.AccessCycles,
	}
}

// Latency returns the configured access latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

func (c *Cache) set(blockAddr uint64) []line {
	idx := (blockAddr >> c.setShift) & c.setMask
	return c.sets[idx*uint64(c.ways) : (idx+1)*uint64(c.ways)]
}

// Lookup reports whether the block is resident, without changing state.
func (c *Cache) Lookup(blockAddr uint64) bool {
	set := c.set(blockAddr)
	for i := range set {
		if set[i].tag == blockAddr {
			return true
		}
	}
	return false
}

// Access touches the block: on hit the LRU state refreshes and, for
// writes, the line state upgrades. Returns whether it hit.
func (c *Cache) Access(blockAddr uint64, write, persist bool) bool {
	c.clock++
	set := c.set(blockAddr)
	for i := range set {
		l := &set[i]
		if l.tag == blockAddr {
			c.hits++
			l.used = c.clock
			if write {
				if persist {
					l.state = persistDirty
				} else if l.state != persistDirty {
					l.state = dirty
				}
			}
			return true
		}
	}
	c.misses++
	return false
}

// Victim describes a block evicted by Fill.
type Victim struct {
	Addr      uint64
	Dirty     bool // needs writeback (true dirty, not persist-dirty)
	Discarded bool // persist-dirty line silently dropped
}

// Fill allocates the block, evicting the LRU line if needed. The write
// and persist flags set the new line's state as in Access.
func (c *Cache) Fill(blockAddr uint64, write, persist bool) (Victim, bool) {
	c.clock++
	set := c.set(blockAddr)
	victimIdx := -1
	var oldest uint64 = ^uint64(0)
	for i := range set {
		l := &set[i]
		if l.state == invalid {
			victimIdx = i
			oldest = 0
			break
		}
		if l.used < oldest {
			oldest = l.used
			victimIdx = i
		}
	}
	l := &set[victimIdx]
	var v Victim
	hadVictim := false
	if l.state != invalid {
		hadVictim = true
		v.Addr = l.tag
		switch l.state {
		case dirty:
			v.Dirty = true
			c.wbacks++
		case persistDirty:
			v.Discarded = true
		}
		c.evictions++
	}
	st := clean
	if write {
		if persist {
			st = persistDirty
		} else {
			st = dirty
		}
	}
	*l = line{tag: blockAddr, state: st, used: c.clock}
	return v, hadVictim
}

// Invalidate removes the block if resident, returning whether it was
// dirty (needing writeback).
func (c *Cache) Invalidate(blockAddr uint64) (wasDirty bool) {
	set := c.set(blockAddr)
	for i := range set {
		l := &set[i]
		if l.tag == blockAddr {
			wasDirty = l.state == dirty
			l.state = invalid
			l.tag = badTag
			return wasDirty
		}
	}
	return false
}

// Stats returns (hits, misses, evictions, writebacks).
func (c *Cache) Stats() (hits, misses, evictions, wbacks uint64) {
	return c.hits, c.misses, c.evictions, c.wbacks
}

// HitRate returns hits/(hits+misses), or 0 when no accesses happened.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
