package mem

import (
	"testing"

	"secpb/internal/config"
)

func smallCacheCfg() config.CacheConfig {
	// 2 sets x 2 ways x 64B blocks.
	return config.CacheConfig{SizeBytes: 256, Ways: 2, BlockBytes: 64, AccessCycles: 2}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("t", smallCacheCfg())
	if c.Access(0x0, false, false) {
		t.Fatal("cold access hit")
	}
	c.Fill(0x0, false, false)
	if !c.Access(0x0, false, false) {
		t.Fatal("filled block missed")
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", smallCacheCfg())
	// Blocks 0x000, 0x080, 0x100 all map to set 0 (set index = bit 6).
	c.Fill(0x000, false, false)
	c.Fill(0x100, false, false)
	c.Access(0x000, false, false) // refresh 0x000: now 0x100 is LRU
	v, had := c.Fill(0x200, false, false)
	if !had || v.Addr != 0x100 {
		t.Fatalf("victim = %+v (had=%v), want 0x100", v, had)
	}
	if !c.Lookup(0x000) || c.Lookup(0x100) || !c.Lookup(0x200) {
		t.Error("post-eviction residency wrong")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache("t", smallCacheCfg())
	c.Fill(0x000, true, false) // truly dirty
	c.Fill(0x100, false, false)
	v, had := c.Fill(0x200, false, false)
	if !had || !v.Dirty || v.Discarded {
		t.Fatalf("dirty victim = %+v", v)
	}
	_, _, _, wbacks := c.Stats()
	if wbacks != 1 {
		t.Errorf("writebacks = %d", wbacks)
	}
}

func TestPersistDirtySilentDiscard(t *testing.T) {
	// Section IV.C: persist-dirty lines (already persisted via the PB)
	// are silently discarded on eviction — no writeback.
	c := NewCache("t", smallCacheCfg())
	c.Fill(0x000, true, true) // persist dirty
	c.Fill(0x100, false, false)
	v, had := c.Fill(0x200, false, false)
	if !had || v.Dirty || !v.Discarded {
		t.Fatalf("persist-dirty victim = %+v, want silent discard", v)
	}
	_, _, _, wbacks := c.Stats()
	if wbacks != 0 {
		t.Errorf("writebacks = %d, want 0", wbacks)
	}
}

func TestPersistWriteUpgradesState(t *testing.T) {
	c := NewCache("t", smallCacheCfg())
	c.Fill(0x000, false, false)
	c.Access(0x000, true, true)
	c.Fill(0x100, false, false)
	v, _ := c.Fill(0x200, false, false)
	if v.Addr != 0x000 || !v.Discarded {
		t.Errorf("upgraded line not persist-dirty: %+v", v)
	}
}

func TestPersistDirtyNotDowngradedByPlainWrite(t *testing.T) {
	c := NewCache("t", smallCacheCfg())
	c.Fill(0x000, true, true)
	c.Access(0x000, true, false) // plain write must not lose persist bit
	c.Fill(0x100, false, false)
	v, _ := c.Fill(0x200, false, false)
	if !v.Discarded {
		t.Error("persist-dirty line downgraded to dirty by plain write")
	}
}

func TestInvalidate(t *testing.T) {
	c := NewCache("t", smallCacheCfg())
	c.Fill(0x000, true, false)
	if !c.Invalidate(0x000) {
		t.Error("invalidating dirty line reported clean")
	}
	if c.Lookup(0x000) {
		t.Error("block resident after invalidate")
	}
	if c.Invalidate(0x000) {
		t.Error("invalidating absent line reported dirty")
	}
}

func TestHierarchyLoadLevels(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	r := h.Load(0x1000)
	if r.Level != 4 || !r.PMAccess {
		t.Fatalf("cold load = %+v, want PM access", r)
	}
	wantCold := cfg.L1.AccessCycles + cfg.L2.AccessCycles + cfg.L3.AccessCycles + cfg.PMReadCycles()
	if r.Cycles != wantCold {
		t.Errorf("cold load cycles = %d, want %d", r.Cycles, wantCold)
	}
	r = h.Load(0x1000)
	if r.Level != 1 || r.Cycles != cfg.L1.AccessCycles {
		t.Errorf("warm load = %+v, want L1 hit", r)
	}
}

func TestHierarchyStoreNoPMFetch(t *testing.T) {
	h := NewHierarchy(config.Default())
	r := h.Store(0x2000)
	if r.PMAccess {
		t.Error("PB-backed store fetched from PM")
	}
	if r.Level != 4 {
		t.Errorf("cold store level = %d", r.Level)
	}
	// Store-allocated line serves subsequent loads from L1.
	lr := h.Load(0x2000)
	if lr.Level != 1 {
		t.Errorf("load after store level = %d, want 1", lr.Level)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	h.Load(0x3000)
	// Evict from tiny... L1 is 64KB/8-way/128 sets: fill set with 8
	// conflicting blocks (stride = 128*64 = 8KB).
	for i := uint64(1); i <= 8; i++ {
		h.Load(0x3000 + i*8192)
	}
	r := h.Load(0x3000)
	if r.Level != 2 {
		t.Errorf("level = %d, want 2 (L1 evicted, L2 resident)", r.Level)
	}
	if r.Cycles != cfg.L1.AccessCycles+cfg.L2.AccessCycles {
		t.Errorf("cycles = %d", r.Cycles)
	}
}

func TestStoreBufferAbsorbsBurst(t *testing.T) {
	sb := NewStoreBuffer(4)
	// 4 stores with slow acceptance: no stall while buffer has room.
	for i := uint64(0); i < 4; i++ {
		if got := sb.Push(i, 1000+i); got != i {
			t.Fatalf("store %d stalled to %d", i, got)
		}
	}
	if sb.Occupancy() != 4 {
		t.Fatalf("occupancy = %d", sb.Occupancy())
	}
	// Fifth store blocks until the oldest acceptance (cycle 1000).
	if got := sb.Push(4, 2000); got != 1000 {
		t.Fatalf("full push proceeded at %d, want 1000", got)
	}
	if sb.StallCycles() != 996 {
		t.Errorf("stall cycles = %d, want 996", sb.StallCycles())
	}
}

func TestStoreBufferRetiresAccepted(t *testing.T) {
	sb := NewStoreBuffer(2)
	sb.Push(0, 5)
	sb.Push(1, 6)
	// At cycle 10 both have been accepted; no stall.
	if got := sb.Push(10, 12); got != 10 {
		t.Fatalf("push stalled to %d", got)
	}
	if sb.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1", sb.Occupancy())
	}
}

func TestStoreBufferDrainedBy(t *testing.T) {
	sb := NewStoreBuffer(8)
	sb.Push(0, 100)
	sb.Push(1, 50)
	sb.Push(2, 70)
	if got := sb.DrainedBy(); got != 100 {
		t.Errorf("DrainedBy = %d, want 100", got)
	}
}

func TestStoreBufferPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewStoreBuffer(0)
}

func BenchmarkHierarchyLoad(b *testing.B) {
	h := NewHierarchy(config.Default())
	for i := 0; i < b.N; i++ {
		h.Load(uint64(i%100000) * 64)
	}
}
