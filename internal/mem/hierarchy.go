package mem

import "secpb/internal/config"

// AccessResult describes where in the hierarchy an access was served and
// what it cost.
type AccessResult struct {
	// Level is 1..3 for cache hits, 4 for PM.
	Level int
	// Cycles is the load-to-use latency in core cycles (excluding any
	// PM queueing, which the memory-controller model adds).
	Cycles uint64
	// PMAccess reports whether PM was accessed (LLC miss).
	PMAccess bool
}

// Hierarchy models the three-level data cache hierarchy. All levels are
// non-inclusive; fills allocate in every level along the path (matching
// the common gem5 classic-cache setup the paper uses).
type Hierarchy struct {
	l1, l2, l3 *Cache
	pmCycles   uint64
	// Cumulative load-to-use latencies per serving level, precomputed so
	// the per-access path adds nothing: lat1 = L1, lat2 = L1+L2,
	// lat3 = L1+L2+L3, lat4 = lat3 + PM read.
	lat1, lat2, lat3, lat4 uint64
}

// NewHierarchy builds the L1/L2/L3 hierarchy from cfg.
func NewHierarchy(cfg config.Config) *Hierarchy {
	h := &Hierarchy{
		l1:       NewCache("l1d", cfg.L1),
		l2:       NewCache("l2", cfg.L2),
		l3:       NewCache("llc", cfg.L3),
		pmCycles: cfg.PMReadCycles(),
	}
	h.lat1 = h.l1.Latency()
	h.lat2 = h.lat1 + h.l2.Latency()
	h.lat3 = h.lat2 + h.l3.Latency()
	h.lat4 = h.lat3 + h.pmCycles
	return h
}

// L1 returns the L1D cache model.
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 returns the L2 cache model.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// L3 returns the last-level cache model.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// Load performs a read of the block, filling on the way in.
func (h *Hierarchy) Load(blockAddr uint64) AccessResult {
	if h.l1.AccessRead(blockAddr) {
		return AccessResult{Level: 1, Cycles: h.lat1}
	}
	if h.l2.AccessRead(blockAddr) {
		h.l1.Fill(blockAddr, false, false)
		return AccessResult{Level: 2, Cycles: h.lat2}
	}
	if h.l3.AccessRead(blockAddr) {
		h.l2.Fill(blockAddr, false, false)
		h.l1.Fill(blockAddr, false, false)
		return AccessResult{Level: 3, Cycles: h.lat3}
	}
	h.l3.Fill(blockAddr, false, false)
	h.l2.Fill(blockAddr, false, false)
	h.l1.Fill(blockAddr, false, false)
	return AccessResult{Level: 4, Cycles: h.lat4, PMAccess: true}
}

// LoadAfterL1Miss is Load for a caller that has just probed L1 for the
// block and missed. The engine's load path issues its own L1 probe
// first; Load would rescan the same set with a foreknown outcome, so
// this form recounts the L1 miss arithmetically (RecountMiss) and
// proceeds from L2 — the stats and clock trajectory are exactly
// Load's.
func (h *Hierarchy) LoadAfterL1Miss(blockAddr uint64) AccessResult {
	h.l1.RecountMiss()
	if h.l2.AccessRead(blockAddr) {
		h.l1.Fill(blockAddr, false, false)
		return AccessResult{Level: 2, Cycles: h.lat2}
	}
	if h.l3.AccessRead(blockAddr) {
		h.l2.Fill(blockAddr, false, false)
		h.l1.Fill(blockAddr, false, false)
		return AccessResult{Level: 3, Cycles: h.lat3}
	}
	h.l3.Fill(blockAddr, false, false)
	h.l2.Fill(blockAddr, false, false)
	h.l1.Fill(blockAddr, false, false)
	return AccessResult{Level: 4, Cycles: h.lat4, PMAccess: true}
}

// Store performs a write of the block. Under a persistent hierarchy the
// store simultaneously enters the persist buffer, so the line is marked
// persist-dirty: its eventual eviction is silently discarded because the
// PB guarantees the data reaches PM (paper Section IV.C). The store
// allocates in L1 on a miss (write-allocate) but does not need the old
// data from PM: the PB coalesces at word granularity.
func (h *Hierarchy) Store(blockAddr uint64) AccessResult {
	if h.l1.AccessPersist(blockAddr) {
		return AccessResult{Level: 1, Cycles: h.lat1}
	}
	// Write-allocate without fetch: a PB-backed store needs no fill
	// data from PM (the PB entry fetches/merges it), so the store pays
	// only the allocation latency of the levels it traverses.
	if h.l2.AccessPersist(blockAddr) {
		h.l1.Fill(blockAddr, true, true)
		return AccessResult{Level: 2, Cycles: h.lat2}
	}
	if h.l3.AccessPersist(blockAddr) {
		h.l2.Fill(blockAddr, true, true)
		h.l1.Fill(blockAddr, true, true)
		return AccessResult{Level: 3, Cycles: h.lat3}
	}
	h.l3.Fill(blockAddr, true, true)
	h.l2.Fill(blockAddr, true, true)
	h.l1.Fill(blockAddr, true, true)
	return AccessResult{Level: 4, Cycles: h.lat3}
}

// StoreTouch performs Store's cache-state mutations without assembling
// an AccessResult: the engine's store path ignores the result (PB
// acceptance, not the hierarchy, sets store timing), so the kernel
// replay loop calls this form.
func (h *Hierarchy) StoreTouch(blockAddr uint64) {
	if h.l1.AccessPersist(blockAddr) {
		return
	}
	if h.l2.AccessPersist(blockAddr) {
		h.l1.Fill(blockAddr, true, true)
		return
	}
	if h.l3.AccessPersist(blockAddr) {
		h.l2.Fill(blockAddr, true, true)
		h.l1.Fill(blockAddr, true, true)
		return
	}
	h.l3.Fill(blockAddr, true, true)
	h.l2.Fill(blockAddr, true, true)
	h.l1.Fill(blockAddr, true, true)
}

// StoreBuffer models the core's store queue: stores enter at commit and
// leave when the persist buffer accepts them. Because acceptance can be
// slow under eager SecPB schemes, the buffer absorbs bursts; the core
// stalls only when it is full. It is implemented as a ring of completion
// times.
type StoreBuffer struct {
	done  []uint64 // acceptance-completion cycle per in-flight store
	head  int      // oldest in-flight store
	tail  int      // next free slot
	count int
	stall uint64 // cumulative full-stall cycles
}

// NewStoreBuffer returns a buffer with the given capacity.
func NewStoreBuffer(capacity int) *StoreBuffer {
	if capacity <= 0 {
		panic("mem: store buffer capacity must be positive")
	}
	return &StoreBuffer{done: make([]uint64, capacity)}
}

// Push records a store committing at cycle `now` whose PB acceptance
// completes at `acceptDone`. It returns the cycle at which the core can
// actually proceed: `now` if the buffer has room, otherwise the time the
// oldest entry retires.
func (sb *StoreBuffer) Push(now, acceptDone uint64) uint64 {
	// Retire all entries already accepted by `now`. Wrap with a compare
	// instead of a modulo: the capacity is not a power of two, so the %
	// compiled to a divide on what is a once-per-store path.
	for sb.count > 0 && sb.done[sb.head] <= now {
		if sb.head++; sb.head == len(sb.done) {
			sb.head = 0
		}
		sb.count--
	}
	proceed := now
	if sb.count == len(sb.done) {
		// Full: wait for the oldest acceptance.
		proceed = sb.done[sb.head]
		sb.stall += proceed - now
		if sb.head++; sb.head == len(sb.done) {
			sb.head = 0
		}
		sb.count--
	}
	sb.done[sb.tail] = acceptDone
	if sb.tail++; sb.tail == len(sb.done) {
		sb.tail = 0
	}
	sb.count++
	return proceed
}

// DrainedBy returns the cycle at which every store currently in the
// buffer has been accepted (used at crash points and fences).
func (sb *StoreBuffer) DrainedBy() uint64 {
	var max uint64
	for i, c := 0, sb.count; c > 0; c-- {
		idx := (sb.head + i) % len(sb.done)
		if sb.done[idx] > max {
			max = sb.done[idx]
		}
		i++
	}
	return max
}

// Occupancy returns the number of in-flight stores.
func (sb *StoreBuffer) Occupancy() int { return sb.count }

// StallCycles returns the cumulative cycles the core spent blocked on a
// full store buffer.
func (sb *StoreBuffer) StallCycles() uint64 { return sb.stall }
