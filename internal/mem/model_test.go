package mem

import (
	"testing"

	"secpb/internal/config"
	"secpb/internal/xrand"
)

// refCache is an executable specification of a set-associative LRU
// cache: per set, an ordered slice from MRU to LRU.
type refCache struct {
	sets     [][]uint64
	ways     int
	setMask  uint64
	setShift uint
}

func newRefCache(cfg config.CacheConfig) *refCache {
	sets := cfg.Sets()
	return &refCache{
		sets:     make([][]uint64, sets),
		ways:     cfg.Ways,
		setMask:  uint64(sets - 1),
		setShift: 6,
	}
}

func (r *refCache) set(addr uint64) int {
	return int((addr >> r.setShift) & r.setMask)
}

// access touches addr, returns hit, and maintains LRU order.
func (r *refCache) access(addr uint64) bool {
	si := r.set(addr)
	s := r.sets[si]
	for i, a := range s {
		if a == addr {
			// Move to MRU.
			copy(s[1:i+1], s[:i])
			s[0] = addr
			return true
		}
	}
	return false
}

// fill allocates addr, evicting LRU if full; returns victim and whether
// one existed.
func (r *refCache) fill(addr uint64) (uint64, bool) {
	si := r.set(addr)
	s := r.sets[si]
	var victim uint64
	had := false
	if len(s) == r.ways {
		victim = s[len(s)-1]
		s = s[:len(s)-1]
		had = true
	}
	r.sets[si] = append([]uint64{addr}, s...)
	return victim, had
}

func TestCacheMatchesReferenceModel(t *testing.T) {
	cfg := config.CacheConfig{SizeBytes: 4096, Ways: 4, BlockBytes: 64, AccessCycles: 1}
	impl := NewCache("model", cfg)
	ref := newRefCache(cfg)
	r := xrand.New(0xCACE)
	const blocks = 64 // 4x the capacity to force evictions
	for step := 0; step < 20000; step++ {
		a := uint64(r.Intn(blocks)) * 64
		wantHit := ref.access(a)
		gotHit := impl.Access(a, false, false)
		if gotHit != wantHit {
			t.Fatalf("step %d addr %#x: hit=%v want %v", step, a, gotHit, wantHit)
		}
		if !gotHit {
			refVictim, refHad := ref.fill(a)
			v, had := impl.Fill(a, false, false)
			if had != refHad {
				t.Fatalf("step %d: victim presence %v want %v", step, had, refHad)
			}
			if had && v.Addr != refVictim {
				t.Fatalf("step %d: evicted %#x, reference evicts %#x", step, v.Addr, refVictim)
			}
		}
	}
}

func TestCacheOccupancyNeverExceedsWays(t *testing.T) {
	cfg := config.CacheConfig{SizeBytes: 1024, Ways: 2, BlockBytes: 64, AccessCycles: 1}
	c := NewCache("cap", cfg)
	r := xrand.New(7)
	resident := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		a := uint64(r.Intn(40)) * 64
		if !c.Access(a, false, false) {
			if v, had := c.Fill(a, false, false); had {
				delete(resident, v.Addr)
			}
			resident[a] = true
		}
		// Count per-set residency.
		perSet := map[uint64]int{}
		for b := range resident {
			perSet[(b>>6)&uint64(cfg.Sets()-1)]++
		}
		for set, n := range perSet {
			if n > cfg.Ways {
				t.Fatalf("step %d: set %d holds %d > %d ways", i, set, n, cfg.Ways)
			}
		}
	}
}
