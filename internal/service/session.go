package service

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"secpb/internal/engine"
	"secpb/internal/recovery"
	"secpb/internal/trace"
)

// Options tunes the service's robustness envelope.
type Options struct {
	DataDir      string        // root of durable state (sessions/, quarantine/)
	MaxSessions  int           // admission cap: reject new sessions past this
	QueueCap     int           // per-session bounded ingest queue
	CkptEvery    int           // checkpoint every N applied segments
	MaxBody      int64         // largest accepted upload body in bytes
	FinalizeWait time.Duration // how long a finalize request blocks for the result
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 32
	}
	if o.CkptEvery <= 0 {
		o.CkptEvery = 4
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 16 << 20
	}
	if o.FinalizeWait <= 0 {
		o.FinalizeWait = 30 * time.Second
	}
	return o
}

// Typed ingestion rejections. Handlers map each to a status code and a
// machine-readable error tag; crashsim and tests assert on the types.

// OutOfOrderError rejects a segment whose ordinal is ahead of the next
// expected one — accepting it would leave a hole in the log.
type OutOfOrderError struct {
	Want, Got uint64
}

func (e *OutOfOrderError) Error() string {
	return fmt.Sprintf("service: out-of-order segment %d (next expected %d)", e.Got, e.Want)
}

// QueueFullError is backpressure: the session's bounded ingest queue is
// full, so the client must back off and retry the same ordinal.
type QueueFullError struct {
	Depth int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: ingest queue full (%d segments pending)", e.Depth)
}

// CapacityError is admission control: the global session cap is
// reached, so the newest session is shed rather than risking the
// established ones.
type CapacityError struct {
	Active, Cap int
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("service: session cap reached (%d/%d active)", e.Active, e.Cap)
}

// StateError rejects an operation invalid in the session's current
// lifecycle state (e.g. streaming into a finalized session).
type StateError struct {
	Name, State, Op string
}

func (e *StateError) Error() string {
	return fmt.Sprintf("service: session %q is %s: cannot %s", e.Name, e.State, e.Op)
}

// Session lifecycle.
type sessionState int

const (
	stateActive sessionState = iota
	stateFinalizing
	stateFinalized
	stateFailed
)

func (s sessionState) String() string {
	switch s {
	case stateActive:
		return "active"
	case stateFinalizing:
		return "finalizing"
	case stateFinalized:
		return "finalized"
	case stateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// segMsg is one unit of worker input: a segment to apply, a finalize
// request, or a checkpoint barrier (graceful shutdown).
type segMsg struct {
	ordinal uint64
	frame   []byte
	batch   *trace.Batch
	final   bool
	ckpt    chan error
}

// Session is one named streaming simulation. The HTTP handlers (any
// goroutine) talk to the single worker goroutine through a bounded
// queue; the worker exclusively owns the engine and the log file, so
// the simulation itself is single-threaded and deterministic.
type Session struct {
	spec Spec
	dir  string
	opts Options

	mu         sync.Mutex
	state      sessionState
	failErr    error
	nextSeg    uint64 // next upload ordinal the session will accept
	durSegs    uint64 // segments sealed by the last checkpoint
	durOps     uint64
	durBytes   uint64 // durable log length (incl. header)
	durDigest  uint64
	lastCkpt   time.Time
	result     []byte // canonical result artifact once finalized
	queue      chan segMsg
	done       chan struct{} // closed once finalized or failed
	stop       chan struct{} // per-session abort (DELETE)
	kill       <-chan struct{}
	workerDone chan struct{}

	// Worker-owned; never touched by handler goroutines.
	eng       *engine.Engine
	logF      *os.File
	logW      *bufio.Writer
	procSegs  uint64
	procOps   uint64
	procBytes uint64
	procChain uint64
	segsSince int

	metrics *Metrics
}

// newSession creates a fresh session directory (header-only log plus
// an initial checkpoint) and starts its worker. A kill at any instant
// afterwards resumes to a valid state.
func newSession(spec Spec, dir string, opts Options, kill <-chan struct{}, metrics *Metrics) (*Session, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg, prof, err := spec.Build()
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(cfg, prof, engineKey)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	logPath := filepath.Join(dir, logFile)
	logF, err := os.OpenFile(logPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := logF.Write(trace.SPB2Header()); err != nil {
		logF.Close()
		return nil, err
	}
	if err := logF.Sync(); err != nil {
		logF.Close()
		return nil, err
	}
	s := &Session{
		spec:      spec,
		dir:       dir,
		opts:      opts,
		queue:     make(chan segMsg, opts.QueueCap),
		done:      make(chan struct{}),
		stop:      make(chan struct{}),
		kill:      kill,
		eng:       eng,
		logF:      logF,
		logW:      bufio.NewWriter(logF),
		procChain: fnvInit(),
		metrics:   metrics,
	}
	if err := s.checkpoint(ckptStateActive); err != nil {
		logF.Close()
		return nil, err
	}
	s.startWorker()
	return s, nil
}

// resumeSession rebuilds a session from its durable directory: verify
// the sealed manifest, truncate the log to the durable cursor (a kill
// may have left a torn tail past it), replay exactly the sealed prefix
// through a fresh engine, and cross-check the log hash chain and the
// engine state digest. Any disagreement is a *CorruptCheckpointError —
// there is no partial restore.
func resumeSession(dir string, opts Options, kill <-chan struct{}, metrics *Metrics) (*Session, error) {
	m, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	corrupt := func(path, format string, args ...interface{}) error {
		return &CorruptCheckpointError{Path: path, Detail: fmt.Sprintf(format, args...)}
	}
	if err := m.Spec.Validate(); err != nil {
		return nil, corrupt(filepath.Join(dir, ckptFile), "sealed spec no longer valid: %v", err)
	}
	if filepath.Base(dir) != m.Spec.Name {
		return nil, corrupt(filepath.Join(dir, ckptFile),
			"manifest names session %q but lives in %q", m.Spec.Name, filepath.Base(dir))
	}

	s := &Session{
		spec:      m.Spec,
		dir:       dir,
		opts:      opts,
		nextSeg:   m.Segs,
		durSegs:   m.Segs,
		durOps:    m.Ops,
		durBytes:  m.LogBytes,
		durDigest: m.Digest,
		lastCkpt:  time.Now(),
		queue:     make(chan segMsg, opts.QueueCap),
		done:      make(chan struct{}),
		stop:      make(chan struct{}),
		kill:      kill,
		metrics:   metrics,
	}

	if m.State == ckptStateFinalized {
		resPath := filepath.Join(dir, resFile)
		enc, err := os.ReadFile(resPath)
		if err != nil {
			return nil, corrupt(resPath, "finalized session missing result: %v", err)
		}
		if got := fnvUpdate(fnvInit(), enc); got != m.ResultDigest {
			return nil, corrupt(resPath, "result digest %016x, manifest sealed %016x", got, m.ResultDigest)
		}
		s.state = stateFinalized
		s.result = enc
		close(s.done)
		return s, nil
	}

	logPath := filepath.Join(dir, logFile)
	fi, err := os.Stat(logPath)
	if err != nil {
		return nil, corrupt(logPath, "missing segment log: %v", err)
	}
	if uint64(fi.Size()) < m.LogBytes {
		return nil, corrupt(logPath, "log is %d bytes, durable cursor expects %d", fi.Size(), m.LogBytes)
	}
	// Bytes past the durable cursor are an abandoned tail (killed before
	// a checkpoint sealed them): discard, the client re-uploads.
	if uint64(fi.Size()) > m.LogBytes {
		if err := os.Truncate(logPath, int64(m.LogBytes)); err != nil {
			return nil, err
		}
	}

	chain, err := hashLogTail(logPath, m.LogBytes)
	if err != nil {
		return nil, err
	}
	if chain != m.Chain {
		return nil, corrupt(logPath, "log chain %016x, manifest sealed %016x", chain, m.Chain)
	}

	cfg, prof, err := m.Spec.Build()
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(cfg, prof, engineKey)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(logPath)
	if err != nil {
		return nil, err
	}
	sr := trace.NewSegReader(f)
	b := trace.NewBatch(trace.DefaultSegOps)
	var ops uint64
	for i := uint64(0); i < m.Segs; i++ {
		if err := sr.ReadSegment(b); err != nil {
			f.Close()
			return nil, corrupt(logPath, "replaying sealed segment %d: %v", i, err)
		}
		// Replay with the same per-segment batching the live worker
		// used, so the engine trajectory is identical.
		if err := eng.StepBatch(b); err != nil {
			f.Close()
			return nil, err
		}
		ops += uint64(b.Len())
	}
	if err := sr.ReadSegment(b); err != io.EOF {
		f.Close()
		return nil, corrupt(logPath, "log holds segments past the sealed cursor (%v)", err)
	}
	f.Close()
	if ops != m.Ops {
		return nil, corrupt(logPath, "replayed %d ops, manifest sealed %d", ops, m.Ops)
	}
	if got := stateDigest(eng.Collect()); got != m.Digest {
		return nil, corrupt(logPath, "replayed state digest %016x, manifest sealed %016x", got, m.Digest)
	}

	logF, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	s.logF = logF
	s.logW = bufio.NewWriter(logF)
	s.procSegs = m.Segs
	s.procOps = m.Ops
	s.procBytes = m.LogBytes - trace.SPB2HeaderLen
	s.procChain = m.Chain
	s.startWorker()
	return s, nil
}

// hashLogTail computes the FNV-64a chain over log bytes
// [SPB2HeaderLen, n) and verifies the header bytes themselves.
func hashLogTail(path string, n uint64) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [trace.SPB2HeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, &CorruptCheckpointError{Path: path, Detail: fmt.Sprintf("short log header: %v", err)}
	}
	if string(hdr[:]) != string(trace.SPB2Header()) {
		return 0, &CorruptCheckpointError{Path: path, Detail: "log header is not SPB2"}
	}
	chain := fnvInit()
	buf := make([]byte, 64<<10)
	remain := n - trace.SPB2HeaderLen
	for remain > 0 {
		chunk := uint64(len(buf))
		if chunk > remain {
			chunk = remain
		}
		k, err := io.ReadFull(f, buf[:chunk])
		if err != nil {
			return 0, &CorruptCheckpointError{Path: path, Detail: fmt.Sprintf("short log body: %v", err)}
		}
		chain = fnvUpdate(chain, buf[:k])
		remain -= uint64(k)
	}
	return chain, nil
}

// AcceptOutcome reports what Accept did with an uploaded segment.
type AcceptOutcome int

const (
	// Accepted: enqueued for application; durable after the next checkpoint.
	Accepted AcceptOutcome = iota
	// Duplicate: ordinal already accepted — the retry is acknowledged
	// without re-applying (idempotent at-least-once upload).
	Duplicate
)

// Accept offers one decoded segment at the given ordinal. It takes
// ownership of frame and batch. Exactly one of: accepted (enqueued),
// duplicate (ordinal below the cursor), or a typed rejection —
// *OutOfOrderError, *QueueFullError, *StateError, or the session's
// terminal failure.
func (s *Session) Accept(ordinal uint64, frame []byte, batch *trace.Batch) (AcceptOutcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case stateFinalizing, stateFinalized:
		return 0, &StateError{Name: s.spec.Name, State: s.state.String(), Op: "accept segments"}
	case stateFailed:
		return 0, s.failErr
	}
	if ordinal < s.nextSeg {
		return Duplicate, nil
	}
	if ordinal > s.nextSeg {
		return 0, &OutOfOrderError{Want: s.nextSeg, Got: ordinal}
	}
	select {
	case s.queue <- segMsg{ordinal: ordinal, frame: frame, batch: batch}:
		s.nextSeg++
		return Accepted, nil
	default:
		return 0, &QueueFullError{Depth: len(s.queue)}
	}
}

// Finalize asks the worker to close the trace, audit the settled NV
// image, and seal the result artifact, then waits up to wait for it.
// Idempotent: a finalized session returns its artifact again.
func (s *Session) Finalize(wait time.Duration) ([]byte, error) {
	s.mu.Lock()
	switch s.state {
	case stateFailed:
		err := s.failErr
		s.mu.Unlock()
		return nil, err
	case stateActive:
		select {
		case s.queue <- segMsg{final: true}:
			s.state = stateFinalizing
		default:
			depth := len(s.queue)
			s.mu.Unlock()
			return nil, &QueueFullError{Depth: depth}
		}
	}
	s.mu.Unlock()

	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-s.done:
	case <-t.C:
		return nil, &StateError{Name: s.spec.Name, State: "finalizing", Op: "return result yet (retry)"}
	}
	return s.Result()
}

// Result returns the sealed artifact of a finalized session.
func (s *Session) Result() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case stateFinalized:
		return s.result, nil
	case stateFailed:
		return nil, s.failErr
	default:
		return nil, &StateError{Name: s.spec.Name, State: s.state.String(), Op: "serve a result"}
	}
}

// Status is the client-visible session snapshot. DurableSegs is the
// re-upload cursor after a crash: every ordinal below it is sealed,
// everything at or above it must be sent again.
type Status struct {
	Name        string  `json:"name"`
	Scheme      string  `json:"scheme"`
	Bench       string  `json:"bench"`
	State       string  `json:"state"`
	NextSeg     uint64  `json:"next_seg"`
	DurableSegs uint64  `json:"durable_segs"`
	DurableOps  uint64  `json:"durable_ops"`
	LogBytes    uint64  `json:"log_bytes"`
	QueueDepth  int     `json:"queue_depth"`
	QueueCap    int     `json:"queue_cap"`
	StateDigest string  `json:"state_digest"`
	CkptAgeSec  float64 `json:"ckpt_age_seconds"`
}

// Status snapshots the session.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		Name:        s.spec.Name,
		Scheme:      s.spec.Scheme,
		Bench:       s.spec.Bench,
		State:       s.state.String(),
		NextSeg:     s.nextSeg,
		DurableSegs: s.durSegs,
		DurableOps:  s.durOps,
		LogBytes:    s.durBytes,
		QueueDepth:  len(s.queue),
		QueueCap:    s.opts.QueueCap,
		StateDigest: fmt.Sprintf("%016x", s.durDigest),
		CkptAgeSec:  time.Since(s.lastCkpt).Seconds(),
	}
}

// startWorker launches the single goroutine that owns the engine.
func (s *Session) startWorker() {
	s.workerDone = make(chan struct{})
	go func() {
		defer close(s.workerDone)
		s.runWorker()
	}()
}

// runWorker is the session event loop. Power loss (kill) abandons the
// session mid-flight without flushing anything — write()s that already
// reached the kernel survive, buffered bytes die — which is exactly
// the torn state resume is built to absorb.
func (s *Session) runWorker() {
	for {
		select {
		case <-s.kill:
			s.abandon()
			return
		case <-s.stop:
			s.abandon()
			return
		case m := <-s.queue:
			if !s.handle(m) {
				return
			}
		}
	}
}

// handle processes one message; false stops the worker.
func (s *Session) handle(m segMsg) bool {
	if m.ckpt != nil {
		m.ckpt <- s.checkpoint(ckptStateActive)
		return true
	}
	if m.final {
		s.doFinalize()
		return false
	}
	if err := s.apply(m); err != nil {
		s.fail(err)
		return false
	}
	return true
}

// apply appends the sealed frame to the log, folds it into the hash
// chain, and steps the engine over the decoded batch.
func (s *Session) apply(m segMsg) error {
	if _, err := s.logW.Write(m.frame); err != nil {
		return err
	}
	s.procChain = fnvUpdate(s.procChain, m.frame)
	s.procBytes += uint64(len(m.frame))
	if err := s.eng.StepBatch(m.batch); err != nil {
		return err
	}
	s.procSegs++
	s.procOps += uint64(m.batch.Len())
	s.segsSince++
	s.metrics.Add(mOpsStreamed, uint64(m.batch.Len()))
	if s.segsSince >= s.opts.CkptEvery {
		return s.checkpoint(ckptStateActive)
	}
	return nil
}

// checkpoint makes everything applied so far durable: flush + fsync
// the log, then atomically publish a sealed manifest pointing at it.
// Crash-ordering: the log bytes are durable before the manifest that
// references them, so the manifest never names bytes that might not
// exist.
func (s *Session) checkpoint(state uint64) error {
	if err := s.logW.Flush(); err != nil {
		return err
	}
	if err := s.logF.Sync(); err != nil {
		return err
	}
	res := s.eng.Collect()
	if res.IntegrityErr != nil {
		return fmt.Errorf("service: integrity violation in session %q: %w", s.spec.Name, res.IntegrityErr)
	}
	m := manifest{
		Spec:     s.spec,
		State:    state,
		Segs:     s.procSegs,
		Ops:      s.procOps,
		LogBytes: trace.SPB2HeaderLen + s.procBytes,
		Chain:    s.procChain,
		Digest:   stateDigest(res),
	}
	n, err := writeManifest(s.dir, &m)
	if err != nil {
		return err
	}
	s.segsSince = 0
	s.metrics.Inc(mCheckpoints)
	s.metrics.Add(mCheckpointBytes, uint64(n))
	s.mu.Lock()
	s.durSegs = s.procSegs
	s.durOps = s.procOps
	s.durBytes = m.LogBytes
	s.durDigest = m.Digest
	s.lastCkpt = time.Now()
	s.mu.Unlock()
	return nil
}

// doFinalize seals the session: checkpoint the complete log, close the
// trace exactly as a batch run does, audit the settled NV image, and
// publish the canonical result artifact plus a finalized manifest.
func (s *Session) doFinalize() {
	if err := s.checkpoint(ckptStateActive); err != nil {
		s.fail(err)
		return
	}
	if err := s.eng.Finish(); err != nil {
		s.fail(err)
		return
	}
	res := s.eng.Collect()
	if res.IntegrityErr != nil {
		s.fail(fmt.Errorf("service: integrity violation in session %q: %w", s.spec.Name, res.IntegrityErr))
		return
	}
	enc := EncodeResult(res)

	// Battery-drain the SecPB and prove the whole settled image is
	// mutually consistent before the artifact is served — the service
	// analogue of the paper's recovery-time audit.
	if _, err := s.eng.CrashDrain(); err != nil {
		s.fail(err)
		return
	}
	if err := recovery.AuditClean(s.eng.Controller()); err != nil {
		s.fail(err)
		return
	}

	if err := writeFileAtomic(filepath.Join(s.dir, resFile), enc); err != nil {
		s.fail(err)
		return
	}
	m := manifest{
		Spec:         s.spec,
		State:        ckptStateFinalized,
		Segs:         s.procSegs,
		Ops:          s.procOps,
		LogBytes:     trace.SPB2HeaderLen + s.procBytes,
		Chain:        s.procChain,
		Digest:       stateDigest(res),
		ResultDigest: fnvUpdate(fnvInit(), enc),
	}
	n, err := writeManifest(s.dir, &m)
	if err != nil {
		s.fail(err)
		return
	}
	s.metrics.Inc(mCheckpoints)
	s.metrics.Add(mCheckpointBytes, uint64(n))
	s.metrics.Inc(mSessionsFinalized)
	s.logF.Close()
	s.mu.Lock()
	s.state = stateFinalized
	s.result = enc
	s.durSegs = s.procSegs
	s.durOps = s.procOps
	s.durBytes = m.LogBytes
	s.durDigest = m.Digest
	s.lastCkpt = time.Now()
	s.mu.Unlock()
	close(s.done)
}

// fail moves the session to its terminal failure state.
func (s *Session) fail(err error) {
	s.logF.Close()
	s.metrics.Inc(mSessionsFailed)
	s.mu.Lock()
	s.state = stateFailed
	s.failErr = err
	s.mu.Unlock()
	close(s.done)
}

// abandon is power loss: drop everything volatile on the floor. The
// bufio buffer is NOT flushed — bytes that did not reach a write() are
// lost, exactly as they would be in a real SIGKILL.
func (s *Session) abandon() {
	if s.logF != nil {
		s.logF.Close()
	}
}

// syncCkpt runs a checkpoint barrier through the worker (graceful
// shutdown). No-op for sessions whose worker already exited.
func (s *Session) syncCkpt() error {
	ack := make(chan error, 1)
	select {
	case s.queue <- segMsg{ckpt: ack}:
	case <-s.done:
		return nil
	case <-s.kill:
		return nil
	}
	select {
	case err := <-ack:
		return err
	case <-s.done:
		return nil
	case <-s.kill:
		return nil
	}
}

// halt aborts the session worker (DELETE).
func (s *Session) halt() {
	s.mu.Lock()
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	wd := s.workerDone
	s.mu.Unlock()
	if wd != nil {
		<-wd
	}
}

// writeFileAtomic writes data with the temp+fsync+rename discipline.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}
