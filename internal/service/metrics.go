package service

import (
	"fmt"
	"io"
	"sync"

	"secpb/internal/stats"
)

// Counter names. Rendered on /metrics with a "secpb_" prefix.
const (
	mSessionsCreated     = "sessions_created_total"
	mSessionsResumed     = "sessions_resumed_total"
	mSessionsQuarantined = "sessions_quarantined_total"
	mSessionsFinalized   = "sessions_finalized_total"
	mSessionsFailed      = "sessions_failed_total"
	mSessionsShed        = "sessions_shed_total"
	mSegsAccepted        = "segments_accepted_total"
	mSegsDuplicate       = "segments_duplicate_total"
	mSegsRejCorrupt      = "segments_rejected_corrupt_total"
	mSegsRejOrder        = "segments_rejected_out_of_order_total"
	mSegsRejQueue        = "segments_rejected_queue_full_total"
	mSegsRejOther        = "segments_rejected_other_total"
	mOpsStreamed         = "ops_streamed_total"
	mCheckpoints         = "checkpoints_total"
	mCheckpointBytes     = "checkpoint_bytes_total"
)

// Metrics wraps the harness's stats.Set (not goroutine-safe on its
// own) with a mutex so handler goroutines and session workers can
// share one counter set — the /metrics endpoint reuses the existing
// stats machinery rather than pulling in a metrics dependency.
type Metrics struct {
	mu  sync.Mutex
	set *stats.Set
}

func newMetrics() *Metrics { return &Metrics{set: stats.NewSet()} }

// Inc bumps the named counter by one.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Add bumps the named counter by delta.
func (m *Metrics) Add(name string, delta uint64) {
	m.mu.Lock()
	m.set.Counter(name).Add(delta)
	m.mu.Unlock()
}

// Get returns the named counter's value.
func (m *Metrics) Get(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.set.Get(name)
}

// writeCounters renders every counter in sorted order as
// Prometheus-style text exposition.
func (m *Metrics) writeCounters(w io.Writer) {
	m.mu.Lock()
	names := m.set.Names()
	vals := make([]uint64, len(names))
	for i, n := range names {
		vals[i] = m.set.Get(n)
	}
	m.mu.Unlock()
	for i, n := range names {
		fmt.Fprintf(w, "# TYPE secpb_%s counter\nsecpb_%s %d\n", n, n, vals[i])
	}
}
