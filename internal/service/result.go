package service

import (
	"encoding/json"
	"fmt"

	"secpb/internal/engine"
)

// FNV-64a, carried as a resumable uint64 chain. hash/fnv cannot be
// re-seeded from a stored state, so the service keeps the running hash
// of its segment log as a plain integer that survives checkpoints.
const (
	fnvOffset64 = 14695981039346269159
	fnvPrime64  = 1099511628211
)

// fnvInit is the FNV-64a offset basis — the chain value of an empty log.
func fnvInit() uint64 { return fnvOffset64 }

// fnvUpdate folds p into a running FNV-64a state.
func fnvUpdate(h uint64, p []byte) uint64 {
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// resultJSON is the canonical wire/artifact mirror of engine.Result.
// Field order is fixed by the struct, floats render via Go's shortest
// round-trip formatting, and the integrity error is flattened to a
// string — so the same Result always encodes to the same bytes. That
// byte-stability is load-bearing: the service's state digest and the
// crash-survival differential both hash these bytes.
type resultJSON struct {
	Benchmark    string  `json:"benchmark"`
	Scheme       string  `json:"scheme"`
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	Loads        uint64  `json:"loads"`
	Stores       uint64  `json:"stores"`
	PPTI         float64 `json:"ppti"`
	NWPE         float64 `json:"nwpe"`
	IPC          float64 `json:"ipc"`
	Entries      uint64  `json:"entries_allocated"`
	PeakOcc      int     `json:"peak_occupancy"`
	BMTRoot      uint64  `json:"bmt_root_updates"`
	EarlyBMT     uint64  `json:"early_bmt_walks"`
	PBServed     uint64  `json:"pb_served_loads"`
	Backpressure uint64  `json:"backpressure"`
	SBStall      uint64  `json:"sb_stall"`
	LoadStall    uint64  `json:"load_stall"`
	GapMean      float64 `json:"gap_mean"`
	GapP99       uint64  `json:"gap_p99"`
	PMReads      uint64  `json:"pm_reads"`
	PMWrites     uint64  `json:"pm_writes"`
	L1Hit        float64 `json:"l1_hit"`
	LLCHit       float64 `json:"llc_hit"`
	Reencrypt    uint64  `json:"reencryptions"`
	IntegrityErr string  `json:"integrity_err"`
}

// EncodeResult renders a Result as canonical newline-terminated JSON.
func EncodeResult(r engine.Result) []byte {
	m := resultJSON{
		Benchmark:    r.Benchmark,
		Scheme:       r.Scheme.String(),
		Cycles:       r.Cycles,
		Instructions: r.Instructions,
		Loads:        r.Loads,
		Stores:       r.Stores,
		PPTI:         r.PPTI,
		NWPE:         r.NWPE,
		IPC:          r.IPC,
		Entries:      r.EntriesAllocated,
		PeakOcc:      r.PeakOccupancy,
		BMTRoot:      r.BMTRootUpdates,
		EarlyBMT:     r.EarlyBMTWalks,
		PBServed:     r.PBServedLoads,
		Backpressure: r.Backpressure,
		SBStall:      r.SBStall,
		LoadStall:    r.LoadStall,
		GapMean:      r.GapMean,
		GapP99:       r.GapP99,
		PMReads:      r.PMReads,
		PMWrites:     r.PMWrites,
		L1Hit:        r.L1Hit,
		LLCHit:       r.LLCHit,
		Reencrypt:    r.Reencryptions,
	}
	if r.IntegrityErr != nil {
		m.IntegrityErr = r.IntegrityErr.Error()
	}
	b, err := json.Marshal(m)
	if err != nil {
		// A fixed struct of scalars cannot fail to marshal.
		panic(fmt.Sprintf("service: encode result: %v", err))
	}
	return append(b, '\n')
}

// stateDigest hashes an engine's full observable result state. Equal
// digests after equal op streams are the service's committed-prefix
// identity check: a resumed session must reproduce the digest its
// checkpoint sealed before it may accept new segments.
func stateDigest(r engine.Result) uint64 {
	return fnvUpdate(fnvInit(), EncodeResult(r))
}
