package service

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"secpb/internal/engine"
	"secpb/internal/trace"
	"secpb/internal/workload"
)

// genOps records the deterministic op stream a spec's workload yields.
func genOps(t *testing.T, spec Spec, nops uint64) []trace.Op {
	t.Helper()
	cfg, prof, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, cfg.Seed, nops)
	if err != nil {
		t.Fatal(err)
	}
	var ops []trace.Op
	for {
		op, ok := gen.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

// segBodies encodes ops as SPB2 and splits them into one-segment
// upload bodies (header + sealed frame each).
func segBodies(t *testing.T, ops []trace.Op, segOps int) [][]byte {
	t.Helper()
	var buf bytes.Buffer
	sw := trace.NewSegWriter(&buf, segOps)
	for _, op := range ops {
		if err := sw.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	var bodies [][]byte
	if _, err := trace.ScanSegments(bytes.NewReader(buf.Bytes()), func(seg int, frame []byte) error {
		bodies = append(bodies, append(trace.SPB2Header(), frame...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return bodies
}

// goldenResult is the uninterrupted batch replay the service must match.
func goldenResult(t *testing.T, spec Spec, ops []trace.Op) []byte {
	t.Helper()
	cfg, prof, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.RunRecorded(cfg, prof, trace.NewSliceSource(ops))
	if err != nil {
		t.Fatal(err)
	}
	return EncodeResult(res)
}

func httpDo(t *testing.T, sv *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	sv.ServeHTTP(rec, req)
	return rec
}

// uploadAll streams bodies[from:] into the named session over HTTP,
// honouring 429 backpressure by retrying the same ordinal.
func uploadAll(t *testing.T, sv *Server, name string, bodies [][]byte, from int) {
	t.Helper()
	for i := from; i < len(bodies); i++ {
		for {
			rec := httpDo(t, sv, "PUT", fmt.Sprintf("/v1/sessions/%s/segments/%d", name, i), bodies[i])
			if rec.Code == http.StatusAccepted || rec.Code == http.StatusOK {
				break
			}
			if rec.Code == http.StatusTooManyRequests {
				if rec.Header().Get("Retry-After") == "" {
					t.Fatalf("429 without Retry-After: %s", rec.Body)
				}
				time.Sleep(time.Millisecond)
				continue
			}
			t.Fatalf("upload seg %d: %d %s", i, rec.Code, rec.Body)
		}
	}
}

func createSession(t *testing.T, sv *Server, spec Spec) {
	t.Helper()
	body := []byte(fmt.Sprintf(`{"name":%q,"scheme":%q,"bench":%q,"seed":%d}`,
		spec.Name, spec.Scheme, spec.Bench, spec.Seed))
	rec := httpDo(t, sv, "POST", "/v1/sessions", body)
	if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
}

func finalize(t *testing.T, sv *Server, name string) []byte {
	t.Helper()
	rec := httpDo(t, sv, "POST", "/v1/sessions/"+name+"/finalize", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("finalize: %d %s", rec.Code, rec.Body)
	}
	return rec.Body.Bytes()
}

func testSpec(name string) Spec {
	return Spec{Name: name, Scheme: "cobcm", Bench: "gcc", Seed: 7}
}

// The central identity: streaming a trace through the service segment
// by segment produces a result byte-identical to the batch RunRecorded
// replay of the same trace.
func TestStreamMatchesBatch(t *testing.T) {
	spec := testSpec("s1")
	ops := genOps(t, spec, 5000)
	bodies := segBodies(t, ops, 300)
	golden := goldenResult(t, spec, ops)

	sv, err := Open(Options{DataDir: t.TempDir(), CkptEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	createSession(t, sv, spec)
	uploadAll(t, sv, spec.Name, bodies, 0)
	got := finalize(t, sv, spec.Name)
	if !bytes.Equal(got, golden) {
		t.Fatalf("streamed result diverges from batch replay:\n got %s\nwant %s", got, golden)
	}
	// Finalize is idempotent and the result endpoint serves the same bytes.
	if again := finalize(t, sv, spec.Name); !bytes.Equal(again, got) {
		t.Fatalf("second finalize returned different bytes")
	}
	rec := httpDo(t, sv, "GET", "/v1/sessions/"+spec.Name+"/result", nil)
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), got) {
		t.Fatalf("result endpoint: %d", rec.Code)
	}
}

// At-least-once upload: re-sending an accepted ordinal is a duplicate
// ack, skipping ahead is a typed 409.
func TestIdempotentAndOutOfOrder(t *testing.T) {
	spec := testSpec("s2")
	bodies := segBodies(t, genOps(t, spec, 1200), 256)
	sv, err := Open(Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	createSession(t, sv, spec)
	uploadAll(t, sv, spec.Name, bodies[:2], 0)

	rec := httpDo(t, sv, "PUT", "/v1/sessions/"+spec.Name+"/segments/0", bodies[0])
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "duplicate") {
		t.Fatalf("duplicate upload: %d %s", rec.Code, rec.Body)
	}
	rec = httpDo(t, sv, "PUT", "/v1/sessions/"+spec.Name+"/segments/7", bodies[2])
	if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), "out_of_order") {
		t.Fatalf("out-of-order upload: %d %s", rec.Code, rec.Body)
	}
}

// Corrupt and empty upload bodies are rejected with typed 400s before
// touching session state.
func TestUploadRejections(t *testing.T) {
	spec := testSpec("s3")
	bodies := segBodies(t, genOps(t, spec, 600), 256)
	sv, err := Open(Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	createSession(t, sv, spec)

	cases := []struct {
		name string
		body []byte
		tag  string
	}{
		{"empty body", nil, "empty_trace"},
		{"header only", trace.SPB2Header(), "empty_trace"},
		{"bad magic", []byte("nope!"), "corrupt_trace"},
		{"flipped byte", flip(bodies[0], len(bodies[0])/2), "corrupt_trace"},
		{"trailing garbage", append(append([]byte(nil), bodies[0]...), 0xff, 0xee), "corrupt_trace"},
		{"two segments", append(append([]byte(nil), bodies[0]...), bodies[1][trace.SPB2HeaderLen:]...), "multi_segment"},
	}
	for _, tc := range cases {
		rec := httpDo(t, sv, "PUT", "/v1/sessions/"+spec.Name+"/segments/0", tc.body)
		if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), tc.tag) {
			t.Errorf("%s: got %d %s, want 400 %s", tc.name, rec.Code, rec.Body, tc.tag)
		}
	}
	// None of the rejects consumed the ordinal.
	uploadAll(t, sv, spec.Name, bodies, 0)
	finalize(t, sv, spec.Name)
}

func flip(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0xff
	return c
}

// Backpressure: with the worker dead (power lost) and a queue of one,
// the second accept must report a typed queue-full error.
func TestQueueFullBackpressure(t *testing.T) {
	spec := testSpec("s4")
	bodies := segBodies(t, genOps(t, spec, 600), 256)
	sv, err := Open(Options{DataDir: t.TempDir(), QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	createSession(t, sv, spec)
	s, _ := sv.Session(spec.Name)
	sv.Kill() // worker abandons; queue no longer drains

	frame0, batch0, err := parseSegmentBody(bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	if out, err := s.Accept(0, frame0, batch0); err != nil || out != Accepted {
		t.Fatalf("first accept: %v %v", out, err)
	}
	frame1, batch1, err := parseSegmentBody(bodies[1])
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Accept(1, frame1, batch1)
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("second accept: %v, want *QueueFullError", err)
	}
	if code, tag, retry := errStatus(err); code != http.StatusTooManyRequests || tag != "queue_full" || retry <= 0 {
		t.Fatalf("queue-full maps to %d %s retry=%d", code, tag, retry)
	}
}

// Admission control: past the cap the newest session is shed with 429,
// existing sessions keep working.
func TestSessionCap(t *testing.T) {
	sv, err := Open(Options{DataDir: t.TempDir(), MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	createSession(t, sv, testSpec("a"))
	createSession(t, sv, testSpec("b"))
	rec := httpDo(t, sv, "POST", "/v1/sessions",
		[]byte(`{"name":"c","scheme":"cobcm","bench":"gcc","seed":7}`))
	if rec.Code != http.StatusTooManyRequests || !strings.Contains(rec.Body.String(), "session_cap") {
		t.Fatalf("over-cap create: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed create lacks Retry-After")
	}
	// Idempotent re-create of an existing session is not an admission.
	createSession(t, sv, testSpec("a"))
	// A different spec under an existing name is a typed conflict.
	rec = httpDo(t, sv, "POST", "/v1/sessions",
		[]byte(`{"name":"a","scheme":"bcm","bench":"gcc","seed":7}`))
	if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), "spec_conflict") {
		t.Fatalf("conflicting re-create: %d %s", rec.Code, rec.Body)
	}
}

// Kill/resume: a server killed mid-stream (plus a torn tail appended
// to the log, as a crashed write would leave) resumes from its last
// checkpoint, tells the client where to resume, and the completed
// session is byte-identical to the uninterrupted batch run.
func TestKillResumeByteIdentical(t *testing.T) {
	spec := testSpec("s5")
	ops := genOps(t, spec, 4000)
	bodies := segBodies(t, ops, 256)
	golden := goldenResult(t, spec, ops)
	for _, killAfter := range []int{1, 5, len(bodies) - 1, len(bodies)} {
		dataDir := t.TempDir()
		sv, err := Open(Options{DataDir: dataDir, CkptEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		createSession(t, sv, spec)
		uploadAll(t, sv, spec.Name, bodies[:killAfter], 0)
		sv.Kill()

		// Torn tail: a crashed append leaves partial frame bytes past
		// the durable cursor; resume must discard them.
		logPath := filepath.Join(dataDir, "sessions", spec.Name, logFile)
		f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte{0x13, 0x37, 0xde, 0xad})
		f.Close()

		sv2, err := Open(Options{DataDir: dataDir, CkptEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		if q := sv2.Quarantined(); len(q) != 0 {
			t.Fatalf("kill@%d: healthy session quarantined: %+v", killAfter, q)
		}
		s, ok := sv2.Session(spec.Name)
		if !ok {
			t.Fatalf("kill@%d: session lost", killAfter)
		}
		st := s.Status()
		if st.DurableSegs > uint64(killAfter) {
			t.Fatalf("kill@%d: durable cursor %d ahead of uploads", killAfter, st.DurableSegs)
		}
		uploadAll(t, sv2, spec.Name, bodies, int(st.DurableSegs))
		got := finalize(t, sv2, spec.Name)
		if !bytes.Equal(got, golden) {
			t.Fatalf("kill@%d: resumed result diverges:\n got %s\nwant %s", killAfter, got, golden)
		}
		sv2.Close()
	}
}

// A finalized session survives restart and serves the same artifact
// without replay.
func TestFinalizedSessionSurvivesRestart(t *testing.T) {
	spec := testSpec("s6")
	ops := genOps(t, spec, 1500)
	bodies := segBodies(t, ops, 256)
	dataDir := t.TempDir()
	sv, err := Open(Options{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	createSession(t, sv, spec)
	uploadAll(t, sv, spec.Name, bodies, 0)
	want := finalize(t, sv, spec.Name)
	sv.Kill()

	sv2, err := Open(Options{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer sv2.Close()
	rec := httpDo(t, sv2, "GET", "/v1/sessions/"+spec.Name+"/result", nil)
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("restarted result: %d", rec.Code)
	}
	// Streaming into it is a typed state rejection.
	rec = httpDo(t, sv2, "PUT", "/v1/sessions/"+spec.Name+"/segments/99", bodies[0])
	if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), "bad_state") {
		t.Fatalf("stream into finalized: %d %s", rec.Code, rec.Body)
	}
}

// Graceful Close checkpoints everything accepted, so a restart needs
// no re-uploads.
func TestGracefulCloseSealsEverything(t *testing.T) {
	spec := testSpec("s7")
	ops := genOps(t, spec, 2000)
	bodies := segBodies(t, ops, 256)
	dataDir := t.TempDir()
	sv, err := Open(Options{DataDir: dataDir, CkptEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	createSession(t, sv, spec)
	uploadAll(t, sv, spec.Name, bodies, 0)
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	sv2, err := Open(Options{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer sv2.Close()
	s, ok := sv2.Session(spec.Name)
	if !ok {
		t.Fatal("session lost across graceful restart")
	}
	if st := s.Status(); st.DurableSegs != uint64(len(bodies)) {
		t.Fatalf("durable %d of %d segments after graceful close", st.DurableSegs, len(bodies))
	}
	got := finalize(t, sv2, spec.Name)
	if !bytes.Equal(got, goldenResult(t, spec, ops)) {
		t.Fatal("graceful-restart result diverges from batch replay")
	}
}

// DELETE aborts a session and frees its name and disk state.
func TestDeleteSession(t *testing.T) {
	spec := testSpec("s8")
	sv, err := Open(Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	createSession(t, sv, spec)
	rec := httpDo(t, sv, "DELETE", "/v1/sessions/"+spec.Name, nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body)
	}
	if rec := httpDo(t, sv, "GET", "/v1/sessions/"+spec.Name, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("status after delete: %d", rec.Code)
	}
	createSession(t, sv, spec) // name is free again
}

// /metrics exposes the robustness counters in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	spec := testSpec("s9")
	bodies := segBodies(t, genOps(t, spec, 900), 256)
	sv, err := Open(Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	createSession(t, sv, spec)
	uploadAll(t, sv, spec.Name, bodies, 0)
	httpDo(t, sv, "PUT", "/v1/sessions/"+spec.Name+"/segments/0", bodies[0]) // duplicate
	finalize(t, sv, spec.Name)

	rec := httpDo(t, sv, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"secpb_sessions_created_total 1",
		"secpb_segments_accepted_total " + fmt.Sprint(len(bodies)),
		"secpb_segments_duplicate_total 1",
		"secpb_checkpoints_total",
		"secpb_checkpoint_bytes_total",
		"secpb_sessions_active 1",
		`secpb_session_durable_segs{session="s9"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}
