// Package service turns the batch simulator into a long-running
// trace-streaming service: clients create named sessions and stream
// SPB2 trace segments into them; each session steps the same engine
// RunRecorded drives, appends accepted segments to a sealed on-disk
// log, and periodically checkpoints its cursor state with the
// temp+rename discipline of harness/diskcache, so a killed-and-
// restarted server resumes every session from its last checkpoint and
// produces results byte-identical to an uninterrupted run. Robustness
// is the contract: bounded ingest queues with backpressure, admission
// control with a global session cap, idempotent segment upload keyed
// by segment ordinal (at-least-once delivery is safe), and typed
// rejection of anything corrupt — a tampered checkpoint refuses resume
// and falls back to a clean session, never a partial restore.
package service

import (
	"fmt"

	"secpb/internal/config"
	"secpb/internal/engine"
	"secpb/internal/workload"
)

// engineKey is the memory-encryption key every session engine uses —
// the same fixed experiment key engine.RunBenchmark and RunRecorded
// use, so a streamed session is byte-identical to a batch replay of
// the same trace.
var engineKey = engine.ExperimentKey

// Spec is the client-visible session parameterization. The simulated
// configuration is rebuilt deterministically from the spec (the same
// way crashsim derives cell configs), so a checkpoint only needs to
// seal the spec, never a serialized config.
type Spec struct {
	Name    string `json:"name"`
	Scheme  string `json:"scheme"`
	Bench   string `json:"bench"`
	Seed    uint64 `json:"seed"`
	Entries int    `json:"secpb_entries,omitempty"` // 0 = config default
}

// Validate checks the spec is well formed and resolvable.
func (s Spec) Validate() error {
	if err := ValidateName(s.Name); err != nil {
		return err
	}
	if _, err := config.SchemeByName(s.Scheme); err != nil {
		return err
	}
	if _, err := workload.ByName(s.Bench); err != nil {
		return err
	}
	if s.Entries < 0 {
		return fmt.Errorf("service: negative secpb_entries %d", s.Entries)
	}
	return nil
}

// ValidateName rejects session names that are empty, oversized, or
// not filesystem-safe (names become directory names under the data
// dir, so the alphabet is deliberately strict).
func ValidateName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("service: session name must be 1..64 characters")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("service: session name %q contains %q (want [a-zA-Z0-9._-])", name, c)
		}
	}
	if name[0] == '.' {
		return fmt.Errorf("service: session name must not start with '.'")
	}
	return nil
}

// Build rebuilds the simulated configuration and workload profile the
// spec names. Deterministic: the same spec always yields the same
// config, which is what makes a resume-by-replay byte-identical.
func (s Spec) Build() (config.Config, workload.Profile, error) {
	scheme, err := config.SchemeByName(s.Scheme)
	if err != nil {
		return config.Config{}, workload.Profile{}, err
	}
	prof, err := workload.ByName(s.Bench)
	if err != nil {
		return config.Config{}, workload.Profile{}, err
	}
	cfg := config.Default().WithScheme(scheme)
	cfg.Seed = s.Seed
	if s.Entries > 0 {
		cfg = cfg.WithSecPBEntries(s.Entries)
	}
	return cfg, prof, nil
}

// equal reports whether two specs request the identical session (used
// to make session creation idempotent for crash-retrying clients).
func (s Spec) equal(o Spec) bool { return s == o }
