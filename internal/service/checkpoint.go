package service

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"secpb/internal/engine"
)

// Checkpoint manifest format — the same sealed-record discipline as
// harness/diskcache: magic, a kind+version stamp, a fixed payload, and
// a trailing FNV-64a seal over everything before it, written to a temp
// file and atomically renamed into place. A manifest is tiny on
// purpose: the durable session state is the append-only segment log,
// and the manifest just seals a *cursor* into it (byte offset, segment
// count, log hash chain, engine state digest). Resume replays the log
// prefix the manifest names and refuses to proceed unless every seal,
// chain, and digest agrees — there is no partial restore.
const (
	ckptMagic = "SPBK"
	ckptFile  = "ckpt.spbk"
	logFile   = "trace.spb2"
	resFile   = "result.json"
)

// ckptKind stamps manifests with the service layout version and the
// engine results version: either changing makes old checkpoints
// unreadable (typed refusal), never silently misinterpreted.
const ckptKind = "session-ckpt-v1/" + engine.ResultsVersion

// Session lifecycle states persisted in the manifest.
const (
	ckptStateActive    = 1 // accepting segments
	ckptStateFinalized = 2 // result.json sealed; log closed
)

// CorruptCheckpointError reports a session checkpoint (manifest, log,
// or result artifact) that fails verification. The server treats it as
// grounds for quarantine: the session directory is moved aside and the
// name becomes available for a clean session.
type CorruptCheckpointError struct {
	Path   string
	Detail string
}

func (e *CorruptCheckpointError) Error() string {
	return fmt.Sprintf("service: corrupt checkpoint %s: %s", e.Path, e.Detail)
}

// manifest is a session's sealed durable cursor.
type manifest struct {
	Spec         Spec
	State        uint64 // ckptStateActive | ckptStateFinalized
	Segs         uint64 // segments durably applied
	Ops          uint64 // operations durably applied
	LogBytes     uint64 // durable byte length of the segment log (incl. header)
	Chain        uint64 // FNV-64a chain over log bytes [SPB2HeaderLen, LogBytes)
	Digest       uint64 // stateDigest of the engine after Segs segments
	ResultDigest uint64 // FNV-64a of result.json (finalized manifests only)
}

func (m *manifest) encode() []byte {
	var buf []byte
	buf = append(buf, ckptMagic...)
	buf = appendStr(buf, ckptKind)
	buf = appendStr(buf, m.Spec.Name)
	buf = appendStr(buf, m.Spec.Scheme)
	buf = appendStr(buf, m.Spec.Bench)
	buf = binary.LittleEndian.AppendUint64(buf, m.Spec.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Spec.Entries))
	buf = binary.LittleEndian.AppendUint64(buf, m.State)
	buf = binary.LittleEndian.AppendUint64(buf, m.Segs)
	buf = binary.LittleEndian.AppendUint64(buf, m.Ops)
	buf = binary.LittleEndian.AppendUint64(buf, m.LogBytes)
	buf = binary.LittleEndian.AppendUint64(buf, m.Chain)
	buf = binary.LittleEndian.AppendUint64(buf, m.Digest)
	buf = binary.LittleEndian.AppendUint64(buf, m.ResultDigest)
	seal := fnvUpdate(fnvInit(), buf)
	return binary.LittleEndian.AppendUint64(buf, seal)
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeManifest verifies the seal, magic, and kind stamp before
// trusting a single payload byte, mirroring diskStore.load.
func decodeManifest(path string, raw []byte) (*manifest, error) {
	bad := func(detail string) (*manifest, error) {
		return nil, &CorruptCheckpointError{Path: path, Detail: detail}
	}
	if len(raw) < len(ckptMagic)+8 {
		return bad(fmt.Sprintf("short manifest: %d bytes", len(raw)))
	}
	body, tail := raw[:len(raw)-8], raw[len(raw)-8:]
	if got, want := binary.LittleEndian.Uint64(tail), fnvUpdate(fnvInit(), body); got != want {
		return bad(fmt.Sprintf("seal mismatch: stored %016x computed %016x", got, want))
	}
	if string(body[:len(ckptMagic)]) != ckptMagic {
		return bad("bad magic")
	}
	r := manifestReader{buf: body[len(ckptMagic):], path: path}
	kind := r.str()
	if r.err == nil && kind != ckptKind {
		return bad(fmt.Sprintf("kind stamp %q (want %q)", kind, ckptKind))
	}
	var m manifest
	m.Spec.Name = r.str()
	m.Spec.Scheme = r.str()
	m.Spec.Bench = r.str()
	m.Spec.Seed = r.u64()
	m.Spec.Entries = int(r.u64())
	m.State = r.u64()
	m.Segs = r.u64()
	m.Ops = r.u64()
	m.LogBytes = r.u64()
	m.Chain = r.u64()
	m.Digest = r.u64()
	m.ResultDigest = r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return bad(fmt.Sprintf("%d trailing bytes after payload", len(r.buf)))
	}
	if m.State != ckptStateActive && m.State != ckptStateFinalized {
		return bad(fmt.Sprintf("unknown session state %d", m.State))
	}
	return &m, nil
}

type manifestReader struct {
	buf  []byte
	path string
	err  error
}

func (r *manifestReader) fail(detail string) {
	if r.err == nil {
		r.err = &CorruptCheckpointError{Path: r.path, Detail: detail}
	}
}

func (r *manifestReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *manifestReader) str() string {
	if r.err != nil {
		return ""
	}
	n, used := binary.Uvarint(r.buf)
	if used <= 0 || n > uint64(len(r.buf)-used) {
		r.fail("truncated string")
		return ""
	}
	s := string(r.buf[used : used+int(n)])
	r.buf = r.buf[used+int(n):]
	return s
}

// writeManifest persists a manifest with crash-safe atomicity: temp
// file in the same directory, contents fsynced, rename over the old
// manifest, directory fsynced. A kill at any instant leaves either the
// previous sealed manifest or the new one — never a torn mix.
func writeManifest(dir string, m *manifest) (int, error) {
	path := filepath.Join(dir, ckptFile)
	enc := m.encode()
	tmp, err := os.CreateTemp(dir, ckptFile+".tmp-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return len(enc), syncDir(dir)
}

// loadManifest reads and verifies a session's manifest.
func loadManifest(dir string) (*manifest, error) {
	path := filepath.Join(dir, ckptFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &CorruptCheckpointError{Path: path, Detail: "missing manifest"}
		}
		return nil, err
	}
	return decodeManifest(path, raw)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
