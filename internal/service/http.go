package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"secpb/internal/trace"
)

// errMultiSegment rejects an upload body carrying more than one sealed
// segment: the ordinal in the URL names exactly one.
var errMultiSegment = errors.New("service: upload body must contain exactly one segment")

// buildMux wires the HTTP surface.
func (sv *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", sv.handleCreate)
	mux.HandleFunc("GET /v1/sessions", sv.handleList)
	mux.HandleFunc("GET /v1/sessions/{name}", sv.handleStatus)
	mux.HandleFunc("DELETE /v1/sessions/{name}", sv.handleDelete)
	mux.HandleFunc("PUT /v1/sessions/{name}/segments/{seg}", sv.handleSegment)
	mux.HandleFunc("POST /v1/sessions/{name}/finalize", sv.handleFinalize)
	mux.HandleFunc("GET /v1/sessions/{name}/result", sv.handleResult)
	mux.HandleFunc("GET /metrics", sv.handleMetrics)
	mux.HandleFunc("GET /healthz", sv.handleHealthz)
	return mux
}

// ServeHTTP makes the server mountable directly (and lets crashsim
// drive it in-process with no sockets).
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if sv.down() {
		writeErr(w, http.StatusServiceUnavailable, "server_down", "server is shutting down", 0)
		return
	}
	sv.mux.ServeHTTP(w, r)
}

// errStatus maps a typed service error to an HTTP status, a stable
// machine-readable tag, and a Retry-After hint in seconds (0 = none).
func errStatus(err error) (code int, tag string, retryAfter int) {
	var (
		qf  *QueueFullError
		ce  *CapacityError
		ooo *OutOfOrderError
		st  *StateError
		sc  *SpecConflictError
		et  *trace.EmptyTraceError
		ct  *trace.CorruptTraceError
		cc  *CorruptCheckpointError
	)
	switch {
	case errors.As(err, &qf):
		return http.StatusTooManyRequests, "queue_full", 1
	case errors.As(err, &ce):
		return http.StatusTooManyRequests, "session_cap", 5
	case errors.As(err, &ooo):
		return http.StatusConflict, "out_of_order", 0
	case errors.As(err, &sc):
		return http.StatusConflict, "spec_conflict", 0
	case errors.As(err, &st):
		return http.StatusConflict, "bad_state", 0
	case errors.As(err, &et):
		return http.StatusBadRequest, "empty_trace", 0
	case errors.As(err, &ct):
		return http.StatusBadRequest, "corrupt_trace", 0
	case errors.Is(err, errMultiSegment):
		return http.StatusBadRequest, "multi_segment", 0
	case errors.As(err, &cc):
		return http.StatusInternalServerError, "corrupt_checkpoint", 0
	default:
		return http.StatusInternalServerError, "internal", 0
	}
}

func writeErr(w http.ResponseWriter, code int, tag, detail string, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, code, map[string]string{"error": tag, "detail": detail})
}

func failWith(w http.ResponseWriter, err error) {
	code, tag, retry := errStatus(err)
	writeErr(w, code, tag, err.Error(), retry)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (sv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_body", err.Error(), 0)
		return
	}
	if err := json.Unmarshal(body, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_spec", err.Error(), 0)
		return
	}
	if err := spec.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_spec", err.Error(), 0)
		return
	}
	s, created, err := sv.CreateSession(spec)
	if err != nil {
		failWith(w, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, s.Status())
}

func (sv *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"sessions":    sv.Statuses(),
		"quarantined": sv.Quarantined(),
	})
}

func (sv *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.Session(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no_such_session", r.PathValue("name"), 0)
		return
	}
	writeJSON(w, http.StatusOK, s.Status())
}

func (sv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := sv.DeleteSession(r.PathValue("name")); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeErr(w, http.StatusNotFound, "no_such_session", r.PathValue("name"), 0)
			return
		}
		failWith(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// parseSegmentBody validates an upload: a complete SPB2 stream (header
// plus exactly one sealed segment frame), returning the raw frame for
// the log and the decoded batch for the engine. Every structural
// defect — empty body, bad seal, trailing garbage, extra frames — is a
// typed error before anything touches session state.
func parseSegmentBody(body []byte) ([]byte, *trace.Batch, error) {
	var frame []byte
	n, err := trace.ScanSegments(bytes.NewReader(body), func(seg int, f []byte) error {
		if seg > 0 {
			return errMultiSegment
		}
		frame = append([]byte(nil), f...)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, nil, &trace.EmptyTraceError{Detail: "upload carries zero segments"}
	}
	sr := trace.NewSegReader(bytes.NewReader(body))
	b := trace.NewBatch(trace.DefaultSegOps)
	if err := sr.ReadSegment(b); err != nil {
		return nil, nil, err
	}
	return frame, b, nil
}

func (sv *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ordinal, err := strconv.ParseUint(r.PathValue("seg"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_ordinal", r.PathValue("seg"), 0)
		return
	}
	s, ok := sv.Session(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no_such_session", name, 0)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, sv.opts.MaxBody+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_body", err.Error(), 0)
		return
	}
	if int64(len(body)) > sv.opts.MaxBody {
		sv.metrics.Inc(mSegsRejOther)
		writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("body exceeds %d bytes", sv.opts.MaxBody), 0)
		return
	}
	frame, batch, err := parseSegmentBody(body)
	if err != nil {
		sv.metrics.Inc(mSegsRejCorrupt)
		failWith(w, err)
		return
	}
	outcome, err := s.Accept(ordinal, frame, batch)
	if err != nil {
		var qf *QueueFullError
		var ooo *OutOfOrderError
		switch {
		case errors.As(err, &qf):
			sv.metrics.Inc(mSegsRejQueue)
		case errors.As(err, &ooo):
			sv.metrics.Inc(mSegsRejOrder)
		default:
			sv.metrics.Inc(mSegsRejOther)
		}
		failWith(w, err)
		return
	}
	switch outcome {
	case Duplicate:
		sv.metrics.Inc(mSegsDuplicate)
		writeJSON(w, http.StatusOK, map[string]interface{}{"status": "duplicate", "seg": ordinal})
	default:
		sv.metrics.Inc(mSegsAccepted)
		// 202: applied asynchronously; durable after the next checkpoint
		// (poll status.durable_segs, or rely on finalize to seal all).
		writeJSON(w, http.StatusAccepted, map[string]interface{}{"status": "accepted", "seg": ordinal})
	}
}

func (sv *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.Session(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no_such_session", r.PathValue("name"), 0)
		return
	}
	res, err := s.Finalize(sv.opts.FinalizeWait)
	if err != nil {
		failWith(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(res)
}

func (sv *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.Session(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no_such_session", r.PathValue("name"), 0)
		return
	}
	res, err := s.Result()
	if err != nil {
		failWith(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(res)
}

func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	sv.metrics.writeCounters(w)
	statuses := sv.Statuses()
	fmt.Fprintf(w, "# TYPE secpb_sessions_active gauge\nsecpb_sessions_active %d\n", len(statuses))
	for _, st := range statuses {
		fmt.Fprintf(w, "secpb_session_queue_depth{session=%q} %d\n", st.Name, st.QueueDepth)
		fmt.Fprintf(w, "secpb_session_durable_segs{session=%q} %d\n", st.Name, st.DurableSegs)
		fmt.Fprintf(w, "secpb_session_log_bytes{session=%q} %d\n", st.Name, st.LogBytes)
		fmt.Fprintf(w, "secpb_session_checkpoint_age_seconds{session=%q} %.3f\n", st.Name, st.CkptAgeSec)
	}
}

func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "sessions": len(sv.Statuses())})
}
