package service

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SpecConflictError rejects re-creating an existing session with a
// different spec: the name is taken by durable state that the new spec
// would not reproduce.
type SpecConflictError struct {
	Name string
}

func (e *SpecConflictError) Error() string {
	return fmt.Sprintf("service: session %q exists with a different spec", e.Name)
}

// QuarantineReport records one session directory the server refused to
// resume and moved aside.
type QuarantineReport struct {
	Name string `json:"name"`
	Dir  string `json:"dir"`
	Err  string `json:"error"`
}

// Server is the session registry plus its HTTP surface. All durable
// state lives under Options.DataDir:
//
//	sessions/<name>/trace.spb2  append-only sealed segment log
//	sessions/<name>/ckpt.spbk   sealed checkpoint manifest
//	sessions/<name>/result.json canonical artifact (finalized only)
//	quarantine/<name>.<nanos>/  directories that failed resume
type Server struct {
	opts    Options
	metrics *Metrics
	mux     *http.ServeMux

	mu          sync.Mutex
	sessions    map[string]*Session
	quarantined []QuarantineReport
	quarCauses  []error
	kill        chan struct{}
	killed      bool
}

// Open starts a server over the data directory, resuming every session
// found there. Directories that fail resume verification are moved to
// quarantine — the startup never aborts on one bad session, and a
// quarantined name immediately becomes available for a clean session
// (fail to a clean slate, never a partial restore).
func Open(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.DataDir == "" {
		return nil, fmt.Errorf("service: Options.DataDir is required")
	}
	if err := os.MkdirAll(opts.sessionsDir(), 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.quarantineDir(), 0o755); err != nil {
		return nil, err
	}
	sv := &Server{
		opts:     opts,
		metrics:  newMetrics(),
		sessions: make(map[string]*Session),
		kill:     make(chan struct{}),
	}
	entries, err := os.ReadDir(opts.sessionsDir())
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(opts.sessionsDir(), e.Name())
		s, err := resumeSession(dir, opts, sv.kill, sv.metrics)
		if err != nil {
			sv.quarantine(e.Name(), dir, err)
			continue
		}
		sv.sessions[e.Name()] = s
		sv.metrics.Inc(mSessionsResumed)
	}
	sv.mux = sv.buildMux()
	return sv, nil
}

func (o Options) sessionsDir() string   { return filepath.Join(o.DataDir, "sessions") }
func (o Options) quarantineDir() string { return filepath.Join(o.DataDir, "quarantine") }

// quarantine moves a directory that failed resume out of the sessions
// tree. Called with sv.mu NOT required (startup is single-threaded).
func (sv *Server) quarantine(name, dir string, cause error) {
	dest := filepath.Join(sv.opts.quarantineDir(),
		name+"."+strconv.FormatInt(time.Now().UnixNano(), 10))
	if err := os.Rename(dir, dest); err != nil {
		// Leaving it in place would re-fail every restart, but silently
		// deleting evidence is worse; record both errors.
		cause = fmt.Errorf("%w (quarantine move also failed: %v)", cause, err)
		dest = dir
	}
	sv.quarantined = append(sv.quarantined, QuarantineReport{Name: name, Dir: dest, Err: cause.Error()})
	sv.quarCauses = append(sv.quarCauses, cause)
	sv.metrics.Inc(mSessionsQuarantined)
}

// Quarantined lists the sessions refused at startup.
func (sv *Server) Quarantined() []QuarantineReport {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return append([]QuarantineReport(nil), sv.quarantined...)
}

// QuarantineCauses returns the typed resume errors behind Quarantined,
// index-aligned with it (crashsim's negative control asserts the type).
func (sv *Server) QuarantineCauses() []error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return append([]error(nil), sv.quarCauses...)
}

// Metrics exposes the server's counter set.
func (sv *Server) Metrics() *Metrics { return sv.metrics }

// CreateSession admits a new named session, idempotently: re-creating
// an existing session with an equal spec returns it unchanged (so a
// client that crashed mid-handshake can blindly retry), a different
// spec is a typed conflict, and past the global cap the NEW session is
// the one shed — established sessions are never evicted to make room.
func (sv *Server) CreateSession(spec Spec) (*Session, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.killed {
		return nil, false, &StateError{Name: spec.Name, State: "server down", Op: "create session"}
	}
	if s, ok := sv.sessions[spec.Name]; ok {
		if s.spec.equal(spec) {
			return s, false, nil
		}
		return nil, false, &SpecConflictError{Name: spec.Name}
	}
	if len(sv.sessions) >= sv.opts.MaxSessions {
		sv.metrics.Inc(mSessionsShed)
		return nil, false, &CapacityError{Active: len(sv.sessions), Cap: sv.opts.MaxSessions}
	}
	dir := filepath.Join(sv.opts.sessionsDir(), spec.Name)
	s, err := newSession(spec, dir, sv.opts, sv.kill, sv.metrics)
	if err != nil {
		return nil, false, err
	}
	sv.sessions[spec.Name] = s
	sv.metrics.Inc(mSessionsCreated)
	return s, true, nil
}

// Session looks up a session by name.
func (sv *Server) Session(name string) (*Session, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	s, ok := sv.sessions[name]
	return s, ok
}

// DeleteSession aborts a session and removes its durable state.
func (sv *Server) DeleteSession(name string) error {
	sv.mu.Lock()
	s, ok := sv.sessions[name]
	if ok {
		delete(sv.sessions, name)
	}
	sv.mu.Unlock()
	if !ok {
		return os.ErrNotExist
	}
	s.halt()
	return os.RemoveAll(s.dir)
}

// Statuses snapshots every session, name-sorted.
func (sv *Server) Statuses() []Status {
	sv.mu.Lock()
	list := make([]*Session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		list = append(list, s)
	}
	sv.mu.Unlock()
	out := make([]Status, len(list))
	for i, s := range list {
		out[i] = s.Status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Kill simulates power loss: every worker abandons mid-flight with no
// flush, no checkpoint, no goodbye. Only resume-from-disk remains.
func (sv *Server) Kill() {
	sv.mu.Lock()
	if !sv.killed {
		sv.killed = true
		close(sv.kill)
	}
	list := make([]*Session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		list = append(list, s)
	}
	sv.mu.Unlock()
	for _, s := range list {
		if s.workerDone != nil {
			<-s.workerDone
		}
	}
}

// Close shuts down gracefully: checkpoint every live session (so
// nothing uploaded is lost), then stop the workers.
func (sv *Server) Close() error {
	sv.mu.Lock()
	list := make([]*Session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		list = append(list, s)
	}
	sv.mu.Unlock()
	var first error
	for _, s := range list {
		if err := s.syncCkpt(); err != nil && first == nil {
			first = err
		}
	}
	sv.Kill()
	return first
}

// down reports whether the server has been killed/closed.
func (sv *Server) down() bool {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.killed
}
