package service

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Corruption suite, mirroring harness/diskcache_test.go at session
// scope: damage a sealed checkpoint every way a disk can and prove the
// server (a) refuses resume with a typed *CorruptCheckpointError, and
// (b) falls back to a clean session under the same name — never a
// partial restore.

// pristineDir builds one sealed session directory (a few segments
// streamed, graceful close) and returns the data dir.
func pristineDir(t *testing.T) string {
	t.Helper()
	spec := testSpec("victim")
	bodies := segBodies(t, genOps(t, spec, 1200), 256)
	dataDir := t.TempDir()
	sv, err := Open(Options{DataDir: dataDir, CkptEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	createSession(t, sv, spec)
	uploadAll(t, sv, spec.Name, bodies, 0)
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	return dataDir
}

// copyTree clones the pristine data dir so each corruption runs
// against fresh bytes.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyTree(t, s, d)
			continue
		}
		raw, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// expectQuarantine opens a server over dataDir and asserts the victim
// session was refused with a typed error and that its name is free for
// a clean session.
func expectQuarantine(t *testing.T, dataDir, label string) {
	t.Helper()
	sv, err := Open(Options{DataDir: dataDir})
	if err != nil {
		t.Fatalf("%s: server startup must survive one bad session: %v", label, err)
	}
	defer sv.Close()
	if _, ok := sv.Session("victim"); ok {
		t.Fatalf("%s: corrupt session resumed", label)
	}
	causes := sv.QuarantineCauses()
	if len(causes) != 1 {
		t.Fatalf("%s: %d quarantine reports, want 1", label, len(causes))
	}
	var cc *CorruptCheckpointError
	if !errors.As(causes[0], &cc) {
		t.Fatalf("%s: quarantine cause %T (%v), want *CorruptCheckpointError", label, causes[0], causes[0])
	}
	// Clean-session fallback: the name is immediately reusable.
	createSession(t, sv, testSpec("victim"))
	s, _ := sv.Session("victim")
	if st := s.Status(); st.DurableSegs != 0 || st.State != "active" {
		t.Fatalf("%s: fallback session not clean: %+v", label, st)
	}
}

// Every single-byte flip of the manifest must be caught — the FNV seal
// covers the whole record, so there is no byte an attacker or a dying
// disk can touch silently.
func TestCheckpointRejectsEveryFlippedByte(t *testing.T) {
	pristine := pristineDir(t)
	ckpt := filepath.Join(pristine, "sessions", "victim", ckptFile)
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		dataDir := t.TempDir()
		copyTree(t, pristine, dataDir)
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xff
		target := filepath.Join(dataDir, "sessions", "victim", ckptFile)
		if err := os.WriteFile(target, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		expectQuarantine(t, dataDir, "flip byte "+itoa(i))
	}
}

// Every truncation length must be caught, down to the empty file.
func TestCheckpointRejectsEveryTruncation(t *testing.T) {
	pristine := pristineDir(t)
	ckpt := filepath.Join(pristine, "sessions", "victim", ckptFile)
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(raw); n++ {
		dataDir := t.TempDir()
		copyTree(t, pristine, dataDir)
		target := filepath.Join(dataDir, "sessions", "victim", ckptFile)
		if err := os.WriteFile(target, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		expectQuarantine(t, dataDir, "truncate to "+itoa(n))
	}
}

// A missing manifest, a tampered log body, and a log shorter than the
// sealed cursor are all typed refusals too.
func TestCheckpointRejectsDamagedLog(t *testing.T) {
	pristine := pristineDir(t)
	sessDir := filepath.Join(pristine, "sessions", "victim")
	logRaw, err := os.ReadFile(filepath.Join(sessDir, logFile))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		do   func(t *testing.T, dir string)
	}{
		{"missing manifest", func(t *testing.T, dir string) {
			os.Remove(filepath.Join(dir, ckptFile))
		}},
		{"log byte flipped", func(t *testing.T, dir string) {
			mut := append([]byte(nil), logRaw...)
			mut[len(mut)/2] ^= 0x01
			os.WriteFile(filepath.Join(dir, logFile), mut, 0o644)
		}},
		{"log header flipped", func(t *testing.T, dir string) {
			mut := append([]byte(nil), logRaw...)
			mut[0] ^= 0x01
			os.WriteFile(filepath.Join(dir, logFile), mut, 0o644)
		}},
		{"log truncated below cursor", func(t *testing.T, dir string) {
			os.Truncate(filepath.Join(dir, logFile), int64(len(logRaw)/2))
		}},
		{"log missing", func(t *testing.T, dir string) {
			os.Remove(filepath.Join(dir, logFile))
		}},
	}
	for _, tc := range cases {
		dataDir := t.TempDir()
		copyTree(t, pristine, dataDir)
		tc.do(t, filepath.Join(dataDir, "sessions", "victim"))
		expectQuarantine(t, dataDir, tc.name)
	}
}

// Finalized sessions get the same treatment: a tampered result
// artifact fails its sealed digest and the session is quarantined.
func TestCheckpointRejectsTamperedResult(t *testing.T) {
	spec := testSpec("victim")
	bodies := segBodies(t, genOps(t, spec, 900), 256)
	pristine := t.TempDir()
	sv, err := Open(Options{DataDir: pristine})
	if err != nil {
		t.Fatal(err)
	}
	createSession(t, sv, spec)
	uploadAll(t, sv, spec.Name, bodies, 0)
	finalize(t, sv, spec.Name)
	sv.Close()

	for _, tc := range []string{"flip", "remove"} {
		dataDir := t.TempDir()
		copyTree(t, pristine, dataDir)
		resPath := filepath.Join(dataDir, "sessions", "victim", resFile)
		if tc == "remove" {
			os.Remove(resPath)
		} else {
			raw, err := os.ReadFile(resPath)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/3] ^= 0x20
			os.WriteFile(resPath, raw, 0o644)
		}
		expectQuarantine(t, dataDir, "result "+tc)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
